package spatialest_test

import (
	"math"
	"path/filepath"
	"testing"

	spatialest "repro"
)

// TestWrapperSurface exercises the remaining thin public wrappers so
// the whole exported API is covered end to end.
func TestWrapperSurface(t *testing.T) {
	d := spatialest.Charminar(4000, 1000, 10, 9)
	bounds, _ := d.MBR()

	// Feedback wrapper.
	base, err := spatialest.NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := spatialest.NewFeedback(base, bounds, spatialest.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := spatialest.NewRect(100, 100, 400, 400)
	oracle := spatialest.NewOracle(d)
	fb.Observe(q, oracle.Count(q))
	if got := fb.Estimate(q); got < 0 || math.IsNaN(got) {
		t.Fatalf("feedback estimate = %g", got)
	}

	// Trace capture / save / load / evaluate.
	queries, err := spatialest.GenerateQueries(d, spatialest.QueryConfig{Count: 50, QSize: 0.1, Seed: 2, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := spatialest.CaptureTrace(oracle, queries)
	path := filepath.Join(t.TempDir(), "w.trace")
	if err := spatialest.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := spatialest.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := back.Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != 50 {
		t.Fatalf("trace summary = %+v", sum)
	}

	// Auto-tuned Min-Skew.
	auto, info, err := spatialest.NewMinSkewAuto(d, spatialest.AutoMinSkewOptions{Buckets: 40})
	if err != nil {
		t.Fatal(err)
	}
	if info.Regions < 64 || len(auto.Buckets()) == 0 {
		t.Fatalf("auto tune info = %+v", info)
	}

	// Quadtree histogram + optimal BSP + partition skews.
	qh, err := spatialest.NewQuadTreeHist(d, 40)
	if err != nil {
		t.Fatal(err)
	}
	if qh.Estimate(q) < 0 {
		t.Fatal("quadtree estimate negative")
	}
	opt, err := spatialest.NewOptimalBSP(d, spatialest.OptimalBSPOptions{Buckets: 6, Regions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Estimate(q) < 0 {
		t.Fatal("optimal estimate negative")
	}
	greedy, optimal, err := spatialest.PartitionSkews(d, spatialest.OptimalBSPOptions{Buckets: 6, Regions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if optimal > greedy+1e-9 {
		t.Fatalf("optimal %g exceeds greedy %g", optimal, greedy)
	}

	// AVI.
	avi, err := spatialest.NewAVI(d, 40, spatialest.AVIVOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if avi.Estimate(q) < 0 {
		t.Fatal("AVI estimate negative")
	}

	// GeoJSON single-geometry parse.
	r, ok, err := spatialest.ParseGeoJSON([]byte(`{"type":"Point","coordinates":[1,2]}`))
	if err != nil || !ok || r != spatialest.NewRect(1, 2, 1, 2) {
		t.Fatalf("ParseGeoJSON = %v %v %v", r, ok, err)
	}

	// Sequoia generator and kNN through the public index.
	pts := spatialest.SequoiaPoints(500, 1000, 3)
	tree := spatialest.STRLoad(pts.Rects(), 16)
	nbs := tree.NearestNeighbors(5, spatialest.Rect{MinX: 500, MinY: 500, MaxX: 500, MaxY: 500}.Center())
	if len(nbs) != 5 {
		t.Fatalf("kNN = %d results", len(nbs))
	}
	var prev spatialest.Neighbor
	for i, nb := range nbs {
		if i > 0 && nb.Dist < prev.Dist {
			t.Fatal("kNN not sorted")
		}
		prev = nb
	}
}

func TestDatasetSaveLoadWrapper(t *testing.T) {
	d := spatialest.UniformData(100, 100, 1, 5, 1)
	path := filepath.Join(t.TempDir(), "d.bin")
	if err := spatialest.SaveDataset(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := spatialest.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 100 {
		t.Fatalf("N = %d", back.N())
	}
}
