// Package spatialest is a library for selectivity estimation over
// two-dimensional spatial (rectangle) data, implementing the
// techniques of Acharya, Poosala and Ramaswamy, "Selectivity
// Estimation in Spatial Databases", SIGMOD 1999.
//
// The library answers the question a spatial query optimizer asks: how
// many of the N input rectangles intersect a given query rectangle?
// Exact answers require scanning the data or an index; the estimators
// here answer from a summary of a few hundred bytes.
//
// # Quick start
//
//	data := spatialest.NJRoad(50000) // or LoadDataset / NewDataset
//	est, err := spatialest.NewMinSkew(data, spatialest.MinSkewOptions{
//		Buckets: 100,
//		Regions: 10000,
//	})
//	if err != nil { ... }
//	count := est.Estimate(spatialest.NewRect(x1, y1, x2, y2))
//	selectivity := count / float64(data.N())
//
// # Techniques
//
// The paper's headline technique is Min-Skew (NewMinSkew): a binary
// space partitioning built greedily over a uniform density grid,
// minimizing the spatial skew — the count-weighted variance of spatial
// density — within each bucket, optionally with progressive grid
// refinement. The baselines it was evaluated against are also
// provided: NewUniform, NewEquiArea, NewEquiCount, NewRTreeHistogram,
// NewSample and NewFractal.
//
// The package also exposes the substrates: an R*-tree (NewRTree,
// STRLoad), dataset generators (Charminar, RoadNetwork, UniformData,
// Clusters), query workload generation (GenerateQueries), exact
// oracles (NewOracle) and the paper's error metric (AvgRelativeError).
package spatialest

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/synthetic"
	"repro/internal/tiger"
	"repro/internal/workload"
)

// Geometry.

// Point is a location in the plane.
type Point = geom.Point

// Rect is an axis-aligned rectangle; see geom.Rect for semantics
// (closed region; touching boundaries intersect).
type Rect = geom.Rect

// NewRect builds a rectangle from two corner points, normalizing the
// corner order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// PointQuery returns the degenerate rectangle representing a point
// query at (x, y).
func PointQuery(x, y float64) Rect { return geom.PointRect(Point{X: x, Y: y}) }

// Datasets.

// Dataset is a distribution of input rectangles with cached aggregate
// statistics (N, MBR, total area, average width and height).
type Dataset = dataset.Distribution

// NewDataset builds a dataset from rectangles (the slice is copied).
func NewDataset(rects []Rect) *Dataset { return dataset.New(rects) }

// LoadDataset reads a dataset from a file; ".bin" selects the binary
// format, anything else the text format ("minx miny maxx maxy" per
// line).
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }

// SaveDataset writes a dataset to a file, choosing the format by
// extension as in LoadDataset.
func SaveDataset(path string, d *Dataset) error { return dataset.Save(path, d) }

// Generators.

// Charminar generates the paper's synthetic corner-skewed dataset: n
// size x size rectangles in a space x space region concentrated in the
// four corners.
func Charminar(n int, space, size float64, seed int64) *Dataset {
	return synthetic.Charminar(n, space, size, seed)
}

// UniformData generates n rectangles with uniform placement and sides
// in [minSide, maxSide].
func UniformData(n int, space, minSide, maxSide float64, seed int64) *Dataset {
	return synthetic.Uniform(n, space, minSide, maxSide, seed)
}

// Clusters generates n rectangles in k Zipf-weighted Gaussian clusters.
func Clusters(n, k int, space, stddevFrac, minSide, maxSide float64, seed int64) *Dataset {
	return synthetic.Clusters(n, k, space, stddevFrac, minSide, maxSide, seed)
}

// SkewedData generates a dataset with Zipf placement and size skew.
type SkewedDataConfig = synthetic.SkewConfig

// Skewed generates a dataset per SkewedDataConfig.
func Skewed(cfg SkewedDataConfig) *Dataset { return synthetic.Skewed(cfg) }

// NJRoad generates the synthetic stand-in for the paper's TIGER NJ
// Road dataset, scaled to n segments (0 selects the full 414,442).
func NJRoad(n int) *Dataset { return tiger.NJRoad(n) }

// RoadNetworkConfig parameterizes RoadNetwork.
type RoadNetworkConfig = tiger.RoadNetConfig

// RoadNetwork generates a synthetic state road network and returns the
// bounding boxes of its segments.
func RoadNetwork(cfg RoadNetworkConfig) *Dataset { return tiger.RoadNetwork(cfg) }

// Estimators.

// Estimator is the common interface of all selectivity estimation
// techniques: Estimate returns the expected number of input rectangles
// intersecting the query.
type Estimator = core.Estimator

// Histogram is a bucket-based estimator (Uniform, Equi-Area,
// Equi-Count, R-Tree and Min-Skew all produce one).
type Histogram = core.BucketEstimator

// Bucket is one histogram bucket: bounding box, rectangle count,
// average width/height and average spatial density.
type Bucket = core.Bucket

// MinSkewOptions configures NewMinSkew; see core.MinSkewConfig.
type MinSkewOptions = core.MinSkewConfig

// NewMinSkew builds the paper's Min-Skew partitioning: a greedy binary
// space partitioning over a uniform density grid that minimizes
// spatial skew, with optional progressive refinement.
func NewMinSkew(d *Dataset, opts MinSkewOptions) (*Histogram, error) {
	return core.NewMinSkew(d, opts)
}

// NewUniform builds the single-bucket uniformity-assumption baseline.
func NewUniform(d *Dataset) (*Histogram, error) { return core.NewUniform(d) }

// NewEquiArea builds the Equi-Area partitioning.
func NewEquiArea(d *Dataset, buckets int) (*Histogram, error) {
	return core.NewEquiArea(d, buckets)
}

// NewEquiCount builds the Equi-Count partitioning.
func NewEquiCount(d *Dataset, buckets int) (*Histogram, error) {
	return core.NewEquiCount(d, buckets)
}

// RTreeHistogramOptions configures NewRTreeHistogram.
type RTreeHistogramOptions = core.RTreeHistConfig

// NewRTreeHistogram builds buckets from the node MBRs of an R*-tree
// over the input.
func NewRTreeHistogram(d *Dataset, opts RTreeHistogramOptions) (*Histogram, error) {
	return core.NewRTreeHist(d, opts)
}

// NewSample builds the sampling estimator with the given sample size.
func NewSample(d *Dataset, size int, seed int64) (*core.SampleEstimator, error) {
	return core.NewSample(d, size, seed)
}

// NewFractal builds the Belussi-Faloutsos parametric estimator using
// box-counting grid exponents minExp..maxExp (2..8 is a good default).
func NewFractal(d *Dataset, minExp, maxExp int) (*core.FractalEstimator, error) {
	return core.NewFractal(d, minExp, maxExp)
}

// Exact answers.

// Oracle answers exact selectivity queries (ground truth).
type Oracle = exact.Oracle

// NewOracle builds a grid-accelerated exact oracle over the dataset.
func NewOracle(d *Dataset) Oracle { return exact.NewAuto(d) }

// Workloads and metrics.

// QueryConfig describes a generated query workload (Section 5.2 of the
// paper).
type QueryConfig = workload.Config

// GenerateQueries produces a query workload over the dataset.
func GenerateQueries(d *Dataset, cfg QueryConfig) ([]Rect, error) {
	return workload.Generate(d, cfg)
}

// AvgRelativeError computes the paper's error metric
// (sum |actual-estimate|) / (sum actual).
func AvgRelativeError(actual []int, estimates []float64) (float64, error) {
	return metrics.AvgRelativeError(actual, estimates)
}

// ErrorSummary holds descriptive statistics of estimation errors.
type ErrorSummary = metrics.Summary

// SummarizeErrors computes an ErrorSummary.
func SummarizeErrors(actual []int, estimates []float64) (ErrorSummary, error) {
	return metrics.Summarize(actual, estimates)
}

// Spatial index.

// RTree is a dynamic R*-tree spatial index over rectangles with
// integer identifiers.
type RTree = rtree.Tree

// NewRTree creates an empty R*-tree with the given node capacity (0
// selects the default).
func NewRTree(maxEntries int) *RTree { return rtree.New(maxEntries) }

// STRLoad bulk-loads an R-tree over the rectangles with the
// Sort-Tile-Recursive algorithm; entry i gets identifier i.
func STRLoad(rects []Rect, maxEntries int) *RTree { return rtree.STRLoad(rects, maxEntries) }
