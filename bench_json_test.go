// BenchmarkEstimateSuite measures per-query estimation latency for
// the estimators a running system would deploy — Uniform, Min-Skew,
// and the R-tree histogram — across bucket budgets, and writes the
// results to BENCH_estimate.json so CI and regression tooling can
// diff ns/op across commits without parsing `go test -bench` output.
//
// The file is rewritten after every sub-benchmark completes, so a
// cheap CI smoke run is just:
//
//	go test -run '^$' -bench BenchmarkEstimateSuite -benchtime=1x .
package spatialest_test

import (
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	spatialest "repro"
)

// benchRow is one line of BENCH_estimate.json.
type benchRow struct {
	Estimator string  `json:"estimator"`
	Buckets   int     `json:"buckets"`
	NsPerOp   float64 `json:"ns_per_op"`
	N         int     `json:"iterations"`
}

// benchJSON accumulates rows across sub-benchmark runs. The harness
// re-invokes each sub-benchmark with growing b.N until -benchtime is
// satisfied; keying by configuration keeps only the final (highest-N,
// most accurate) measurement per estimator.
var benchJSON struct {
	mu   sync.Mutex
	rows map[string]benchRow
}

// recordBenchRow stores the row and rewrites BENCH_estimate.json with
// everything measured so far, sorted for deterministic diffs.
func recordBenchRow(b *testing.B, row benchRow) {
	b.Helper()
	benchJSON.mu.Lock()
	defer benchJSON.mu.Unlock()
	if benchJSON.rows == nil {
		benchJSON.rows = make(map[string]benchRow)
	}
	benchJSON.rows[row.Estimator+"/"+strconv.Itoa(row.Buckets)] = row
	keys := make([]string, 0, len(benchJSON.rows))
	for k := range benchJSON.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]benchRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, benchJSON.rows[k])
	}
	f, err := os.Create("BENCH_estimate.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		_ = f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEstimateSuite(b *testing.B) {
	d := spatialest.NJRoad(50000)
	queries, err := spatialest.GenerateQueries(d, spatialest.QueryConfig{
		Count: 1024, QSize: 0.10, Seed: 11, Clamp: true,
	})
	if err != nil {
		b.Fatal(err)
	}

	build := func(b *testing.B, name string, buckets int) spatialest.Estimator {
		b.Helper()
		var est spatialest.Estimator
		var err error
		switch name {
		case "Uniform":
			est, err = spatialest.NewUniform(d)
		case "Min-Skew":
			est, err = spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: buckets, Regions: 10000})
		case "R-Tree":
			est, err = spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: buckets})
		}
		if err != nil {
			b.Fatal(err)
		}
		return est
	}

	run := func(name string, buckets int) {
		label := name
		if buckets > 0 {
			label += "/" + benchName("b", buckets)
		}
		b.Run(label, func(b *testing.B) {
			est := build(b, name, buckets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.Estimate(queries[i%len(queries)])
			}
			b.StopTimer()
			recordBenchRow(b, benchRow{
				Estimator: name,
				Buckets:   buckets,
				NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				N:         b.N,
			})
		})
	}

	buildMinSkew := func(b *testing.B, buckets int) *spatialest.Histogram {
		b.Helper()
		est, err := spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: buckets, Regions: 10000})
		if err != nil {
			b.Fatal(err)
		}
		return est
	}

	// Min-Skew-Linear is the retained linear-scan reference: the
	// indexed-vs-linear gap across bucket budgets is the point of the
	// read-optimized layout, and the differential tests hold the two
	// bit-identical so the gap is pure walk cost.
	runLinear := func(buckets int) {
		b.Run("Min-Skew-Linear/"+benchName("b", buckets), func(b *testing.B) {
			est := buildMinSkew(b, buckets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.EstimateLinear(queries[i%len(queries)])
			}
			b.StopTimer()
			recordBenchRow(b, benchRow{
				Estimator: "Min-Skew-Linear",
				Buckets:   buckets,
				NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				N:         b.N,
			})
		})
	}

	// Min-Skew-Batch amortizes the scratch checkout across the whole
	// query set; ns_per_op is per query, not per batch.
	runBatch := func(buckets int) {
		b.Run("Min-Skew-Batch/"+benchName("b", buckets), func(b *testing.B) {
			est := buildMinSkew(b, buckets)
			dst := make([]float64, 0, len(queries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = est.EstimateBatch(queries, dst[:0])
			}
			b.StopTimer()
			recordBenchRow(b, benchRow{
				Estimator: "Min-Skew-Batch",
				Buckets:   buckets,
				NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(queries)),
				N:         b.N * len(queries),
			})
		})
	}

	// Uniform has no buckets; record it once with buckets=0.
	run("Uniform", 0)
	for _, buckets := range []int{100, 1000, 10000} {
		run("Min-Skew", buckets)
		run("R-Tree", buckets)
		runLinear(buckets)
		runBatch(buckets)
	}
}
