package spatialest_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	spatialest "repro"
)

func TestCatalogPublicAPI(t *testing.T) {
	cat := spatialest.NewCatalog(spatialest.CatalogConfig{Buckets: 30, Regions: 400})
	d := spatialest.UniformData(2000, 1000, 5, 15, 1)
	if err := cat.Analyze("parcels", d); err != nil {
		t.Fatal(err)
	}
	got, err := cat.Estimate("parcels", spatialest.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2000) > 200 {
		t.Fatalf("covering estimate = %g", got)
	}
}

func TestPlannerPublicAPI(t *testing.T) {
	d := spatialest.UniformData(50000, 10000, 10, 40, 2)
	hist, err := spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	p, err := spatialest.NewPlanner(hist, d.N(), spatialest.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Choose(spatialest.NewRect(0, 0, 100, 100))
	if plan.Rows < 0 || plan.Cost <= 0 {
		t.Fatalf("plan = %v", plan)
	}
	// Join estimate on identical sets roughly squares the density.
	j, err := spatialest.EstimateJoin(hist, hist)
	if err != nil {
		t.Fatal(err)
	}
	if j <= 0 {
		t.Fatalf("join estimate = %g", j)
	}
}

func TestWKTPublicAPI(t *testing.T) {
	r, ok, err := spatialest.ParseWKT("POLYGON ((0 0, 4 0, 4 4, 0 0))")
	if err != nil || !ok {
		t.Fatalf("ParseWKT: %v, ok=%v", err, ok)
	}
	if r != spatialest.NewRect(0, 0, 4, 4) {
		t.Fatalf("MBR = %v", r)
	}
	d, err := spatialest.ReadWKTDataset(strings.NewReader("POINT (1 2)\nPOINT (3 4)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatalf("N = %d", d.N())
	}
}

func TestHistogramPersistencePublicAPI(t *testing.T) {
	d := spatialest.Charminar(2000, 1000, 10, 3)
	hist, err := spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: 20, Regions: 400})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := hist.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := spatialest.ReadHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := spatialest.NewRect(50, 50, 400, 400)
	if hist.Estimate(q) != back.Estimate(q) {
		t.Fatal("persisted histogram estimates differ")
	}
}

func TestHilbertAndRTreeMethodsPublicAPI(t *testing.T) {
	d := spatialest.Clusters(3000, 4, 1000, 0.03, 2, 10, 4)
	h := spatialest.HilbertLoad(d.Rects(), 32)
	if h.Len() != d.N() {
		t.Fatalf("Hilbert Len = %d", h.Len())
	}
	q := spatialest.NewRect(0, 0, 400, 400)
	str := spatialest.STRLoad(d.Rects(), 32)
	if h.Count(q) != str.Count(q) {
		t.Fatalf("Hilbert (%d) and STR (%d) disagree", h.Count(q), str.Count(q))
	}
	// Histogram via each load method.
	for _, m := range []spatialest.RTreeLoad{spatialest.LoadInsert, spatialest.LoadSTR, spatialest.LoadHilbert} {
		hist, err := spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: 30, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := hist.Estimate(q); got <= 0 {
			t.Fatalf("%v: estimate = %g", m, got)
		}
	}
}
