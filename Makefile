# Convenience targets for the spatialest reproduction.

GO ?= go

.PHONY: all build lint test race bench bench-json experiments figures examples cover clean faultsim

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# spatialvet: the repo's own analyzers (floatcmp, globalrand, locksafe,
# errdrop, ctxfirst) enforcing numeric, concurrency and determinism
# invariants. See DESIGN.md "Static analysis & invariants".
lint:
	$(GO) run ./cmd/spatialvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection suite: replays seeded workload traces
# against the sharded serving stack on a simulated clock and checks
# the serving invariants. See DESIGN.md "Failure model & simulation"
# and "Degradation ladder & resilience".
faultsim:
	$(GO) test -race -count=1 ./internal/faultsim/ ./internal/vclock/ ./internal/resilience/
	$(GO) run ./cmd/faultsim -seeds 1,42,7 -o faultsim-report.json
	@echo "report: faultsim-report.json"

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_estimate.json (estimation ns/op per estimator and
# bucket budget) and BENCH_resilience.json (virtual-time p50/p99 with
# and without hedging) at full benchtime.
bench-json:
	$(GO) test -run '^$$' -bench BenchmarkEstimateSuite .
	$(GO) test -run '^$$' -bench BenchmarkResilienceSuite .

# Regenerate every table and figure of the paper at full scale.
experiments:
	$(GO) run ./cmd/experiments

# Render the paper's illustrations (Figures 1-4, 7) as SVG.
figures:
	$(GO) run ./cmd/partview -all figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/queryoptimizer
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/ingest

cover:
	$(GO) test -cover ./...

clean:
	rm -rf figures
