# Convenience targets for the spatialest reproduction.

GO ?= go

.PHONY: all build lint vet-strict test race bench bench-json experiments figures examples cover clean faultsim determinism

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# spatialvet: the repo's own analyzers (floatcmp, globalrand, locksafe,
# errdrop, ctxfirst, walltime, nilrecv, mapiter, lockhold) enforcing
# numeric, concurrency and determinism invariants. See DESIGN.md
# "Static analysis & invariants".
lint:
	$(GO) run ./cmd/spatialvet ./...

# lint plus go vet, with machine-readable output — the full static
# gate CI runs. Suppress an intentional violation with
# `//spatialvet:ignore <analyzer> <reason>` on the preceding line.
vet-strict:
	$(GO) vet ./...
	$(GO) run ./cmd/spatialvet -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection suite: replays seeded workload traces
# against the sharded serving stack on a simulated clock and checks
# the serving invariants. See DESIGN.md "Failure model & simulation"
# and "Degradation ladder & resilience".
faultsim:
	$(GO) test -race -count=1 ./internal/faultsim/ ./internal/vclock/ ./internal/resilience/
	$(GO) run ./cmd/faultsim -seeds 1,42,7 -o faultsim-report.json
	@echo "report: faultsim-report.json"

# Replay determinism gate: the same seeds must produce byte-identical
# reports on consecutive runs. Catches wall-clock or map-order leaks
# into anything the report aggregates. -sequential pins Workers=1 so
# the virtual clock only advances at quiescence; multi-worker queue
# contention is covered by the faultsim target instead.
determinism:
	$(GO) run ./cmd/faultsim -sequential -seeds 1,42 -o /tmp/faultsim-det-1.json
	$(GO) run ./cmd/faultsim -sequential -seeds 1,42 -o /tmp/faultsim-det-2.json
	diff /tmp/faultsim-det-1.json /tmp/faultsim-det-2.json
	@echo "determinism: reports byte-identical"

# One testing.B benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_estimate.json (estimation ns/op per estimator and
# bucket budget) and BENCH_resilience.json (virtual-time p50/p99 with
# and without hedging) at full benchtime.
bench-json:
	$(GO) test -run '^$$' -bench BenchmarkEstimateSuite .
	$(GO) test -run '^$$' -bench BenchmarkResilienceSuite .

# Regenerate every table and figure of the paper at full scale.
experiments:
	$(GO) run ./cmd/experiments

# Render the paper's illustrations (Figures 1-4, 7) as SVG.
figures:
	$(GO) run ./cmd/partview -all figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/compare
	$(GO) run ./examples/queryoptimizer
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/ingest

cover:
	$(GO) test -cover ./...

clean:
	rm -rf figures
