package spatialest_test

import (
	"math"
	"path/filepath"
	"testing"

	spatialest "repro"
)

// TestPublicAPIPipeline walks the full public surface: generate data,
// persist and reload it, build every estimator, generate a workload,
// and score the estimates against the exact oracle.
func TestPublicAPIPipeline(t *testing.T) {
	data := spatialest.Charminar(8000, 1000, 10, 42)
	if data.N() != 8000 {
		t.Fatalf("N = %d", data.N())
	}

	// Round-trip through both file formats.
	dir := t.TempDir()
	for _, name := range []string{"d.txt", "d.bin"} {
		path := filepath.Join(dir, name)
		if err := spatialest.SaveDataset(path, data); err != nil {
			t.Fatal(err)
		}
		back, err := spatialest.LoadDataset(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != data.N() {
			t.Fatalf("%s: N = %d", name, back.N())
		}
	}

	ms, err := spatialest.NewMinSkew(data, spatialest.MinSkewOptions{Buckets: 50, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	u, err := spatialest.NewUniform(data)
	if err != nil {
		t.Fatal(err)
	}

	queries, err := spatialest.GenerateQueries(data, spatialest.QueryConfig{
		Count: 200, QSize: 0.10, Seed: 1, Clamp: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := spatialest.NewOracle(data)
	actual := make([]int, len(queries))
	msEst := make([]float64, len(queries))
	uEst := make([]float64, len(queries))
	for i, q := range queries {
		actual[i] = oracle.Count(q)
		msEst[i] = ms.Estimate(q)
		uEst[i] = u.Estimate(q)
	}
	msErr, err := spatialest.AvgRelativeError(actual, msEst)
	if err != nil {
		t.Fatal(err)
	}
	uErr, err := spatialest.AvgRelativeError(actual, uEst)
	if err != nil {
		t.Fatal(err)
	}
	if msErr >= uErr {
		t.Fatalf("Min-Skew error %.3f not better than Uniform %.3f", msErr, uErr)
	}
	sum, err := spatialest.SummarizeErrors(actual, msEst)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != len(queries) {
		t.Fatalf("summary queries = %d", sum.Queries)
	}
}

func TestPublicAPIEstimators(t *testing.T) {
	data := spatialest.UniformData(3000, 500, 2, 10, 7)
	q := spatialest.NewRect(100, 100, 250, 250)
	oracle := spatialest.NewOracle(data)
	want := float64(oracle.Count(q))

	build := []struct {
		name string
		est  func() (spatialest.Estimator, error)
	}{
		{"minskew", func() (spatialest.Estimator, error) {
			return spatialest.NewMinSkew(data, spatialest.MinSkewOptions{Buckets: 40})
		}},
		{"equiarea", func() (spatialest.Estimator, error) { return spatialest.NewEquiArea(data, 40) }},
		{"equicount", func() (spatialest.Estimator, error) { return spatialest.NewEquiCount(data, 40) }},
		{"rtree", func() (spatialest.Estimator, error) {
			return spatialest.NewRTreeHistogram(data, spatialest.RTreeHistogramOptions{Buckets: 40})
		}},
		{"sample", func() (spatialest.Estimator, error) { return spatialest.NewSample(data, 160, 1) }},
		{"fractal", func() (spatialest.Estimator, error) { return spatialest.NewFractal(data, 2, 6) }},
		{"uniform", func() (spatialest.Estimator, error) { return spatialest.NewUniform(data) }},
	}
	for _, b := range build {
		est, err := b.est()
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		got := est.Estimate(q)
		// On uniform data every technique should be within 2x of truth.
		if got < want/2 || got > want*2 {
			t.Errorf("%s: estimate %.1f vs exact %.0f", b.name, got, want)
		}
	}
}

func TestPublicAPIRTree(t *testing.T) {
	data := spatialest.Clusters(2000, 3, 1000, 0.05, 1, 8, 5)
	tr := spatialest.NewRTree(16)
	for i, r := range data.Rects() {
		tr.Insert(r, i)
	}
	str := spatialest.STRLoad(data.Rects(), 16)
	q := spatialest.NewRect(0, 0, 500, 500)
	if tr.Count(q) != str.Count(q) {
		t.Fatalf("dynamic (%d) and STR (%d) trees disagree", tr.Count(q), str.Count(q))
	}
	oracle := spatialest.NewOracle(data)
	if tr.Count(q) != oracle.Count(q) {
		t.Fatalf("index count %d != oracle %d", tr.Count(q), oracle.Count(q))
	}
}

func TestPointQueryHelper(t *testing.T) {
	q := spatialest.PointQuery(3, 4)
	if q.Width() != 0 || q.Height() != 0 || q.MinX != 3 || q.MinY != 4 {
		t.Fatalf("PointQuery = %v", q)
	}
}

func TestRoadNetworkPublic(t *testing.T) {
	cfg := spatialest.RoadNetworkConfig{Segments: 500, Space: 100, Cities: 3, UrbanShare: 0.5, HighwayShare: 0.2, Seed: 2}
	d := spatialest.RoadNetwork(cfg)
	if d.N() != 500 {
		t.Fatalf("N = %d", d.N())
	}
	s := spatialest.Skewed(spatialest.SkewedDataConfig{N: 100, Space: 50, PlacementTheta: 1, MaxSide: 5, Seed: 3})
	if s.N() != 100 {
		t.Fatalf("skewed N = %d", s.N())
	}
	if got := spatialest.NJRoad(100).N(); got != 100 {
		t.Fatalf("njroad N = %d", got)
	}
	if math.IsNaN(d.AvgWidth()) {
		t.Fatal("NaN stats")
	}
}
