package spatialest

// Additional public surface: the statistics catalog, the cost-based
// planner with spatial join estimation, WKT ingestion, persisted
// histograms, and the Hilbert-packed R-tree loader.

import (
	"io"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/geojson"
	"repro/internal/planner"
	"repro/internal/rtree"
	"repro/internal/synthetic"
	"repro/internal/trace"
	"repro/internal/wkt"
)

// Catalog is a thread-safe statistics catalog: named Min-Skew
// histograms with ANALYZE-style builds, churn-driven staleness
// tracking and directory persistence.
type Catalog = catalog.Catalog

// CatalogConfig sets the catalog's statistics policy.
type CatalogConfig = catalog.Config

// NewCatalog creates an empty statistics catalog.
func NewCatalog(cfg CatalogConfig) *Catalog { return catalog.New(cfg) }

// Planner chooses access paths for range predicates from estimates.
type Planner = planner.Planner

// CostModel holds the planner's cost constants.
type CostModel = planner.CostModel

// Plan is a planner decision.
type Plan = planner.Plan

// DefaultCostModel mirrors the usual random-versus-sequential penalty.
func DefaultCostModel() CostModel { return planner.DefaultCostModel() }

// NewPlanner creates a planner over a table of n tuples summarized by
// est.
func NewPlanner(est Estimator, n int, model CostModel) (*Planner, error) {
	return planner.New(est, n, model)
}

// EstimateJoin estimates the intersection-join cardinality of the two
// rectangle sets summarized by the histograms.
func EstimateJoin(r, s *Histogram) (float64, error) { return planner.EstimateJoin(r, s) }

// ParseWKT parses one Well-Known Text geometry (POINT, LINESTRING,
// POLYGON and MULTI variants) and returns its minimum bounding
// rectangle; ok is false for EMPTY geometries.
func ParseWKT(s string) (r Rect, ok bool, err error) { return wkt.ParseMBR(s) }

// ReadWKTDataset parses one WKT geometry per line and returns their
// MBRs as a dataset.
func ReadWKTDataset(r io.Reader) (*Dataset, error) { return wkt.ReadDataset(r) }

// ParseGeoJSON parses a GeoJSON document (geometry, Feature or
// FeatureCollection) and returns the MBR of its contents; ok is false
// when the document holds no coordinates.
func ParseGeoJSON(data []byte) (r Rect, ok bool, err error) { return geojson.ParseMBR(data) }

// ReadGeoJSONDataset parses a GeoJSON document into one MBR per
// geometry.
func ReadGeoJSONDataset(r io.Reader) (*Dataset, error) { return geojson.ReadDataset(r) }

// ReadHistogram deserializes a histogram persisted with
// Histogram.WriteTo.
func ReadHistogram(r io.Reader) (*Histogram, error) { return core.ReadHistogram(r) }

// Neighbor is one k-nearest-neighbor result from RTree.NearestNeighbors.
type Neighbor = rtree.Neighbor

// HilbertLoad bulk-loads an R-tree by Hilbert-sorting the rectangle
// centers; entry i gets identifier i.
func HilbertLoad(rects []Rect, maxEntries int) *RTree {
	return rtree.HilbertLoad(rects, maxEntries)
}

// FeedbackConfig controls the adaptive correction grid of
// NewFeedback.
type FeedbackConfig = feedback.Config

// FeedbackEstimator wraps a base estimator with query-feedback
// learning: Observe folds executed queries' true result sizes into a
// grid of multiplicative corrections (adaptive estimation in the
// spirit of [CR94]).
type FeedbackEstimator = feedback.Estimator

// NewFeedback wraps base with a feedback correction grid over bounds.
func NewFeedback(base Estimator, bounds Rect, cfg FeedbackConfig) (*FeedbackEstimator, error) {
	return feedback.New(base, bounds, cfg)
}

// AVIKind selects the marginal histogram type used by NewAVI.
type AVIKind = core.AVIKind

// Marginal histogram kinds for NewAVI.
const (
	AVIEquiDepth = core.AVIEquiDepth
	AVIEquiWidth = core.AVIEquiWidth
	AVIVOptimal  = core.AVIVOptimal
)

// NewAVI builds the attribute-value-independence baseline: two
// one-dimensional histograms over the x and y centers whose range
// fractions are multiplied. It ignores coordinate correlation and
// quantifies what the two-dimensional partitionings buy.
func NewAVI(d *Dataset, buckets int, kind AVIKind) (*core.AVIEstimator, error) {
	return core.NewAVI(d, buckets, kind)
}

// AutoMinSkewOptions configures NewMinSkewAuto.
type AutoMinSkewOptions = core.AutoMinSkewConfig

// AutoTuneInfo reports the resolutions NewMinSkewAuto considered and
// chose.
type AutoTuneInfo = core.AutoTuneInfo

// NewMinSkewAuto builds Min-Skew with an automatically selected grid
// resolution — the paper's open question of picking the region count,
// answered by measuring each candidate partition's spatial skew on
// the finest grid and stopping at the knee.
func NewMinSkewAuto(d *Dataset, opts AutoMinSkewOptions) (*Histogram, AutoTuneInfo, error) {
	return core.NewMinSkewAuto(d, opts)
}

// OptimalBSPOptions configures NewOptimalBSP.
type OptimalBSPOptions = core.OptimalBSPConfig

// NewOptimalBSP builds the exact minimum-spatial-skew BSP by dynamic
// programming. Only small grids and budgets are accepted; it exists to
// measure how close greedy Min-Skew gets to optimal.
func NewOptimalBSP(d *Dataset, opts OptimalBSPOptions) (*Histogram, error) {
	return core.NewOptimalBSP(d, opts)
}

// PartitionSkews returns the total spatial skew achieved by greedy
// Min-Skew and by the exact optimal BSP on the same grid.
func PartitionSkews(d *Dataset, opts OptimalBSPOptions) (greedy, optimal float64, err error) {
	return core.PartitionSkews(d, opts)
}

// SequoiaPoints generates a Sequoia-2000-like point dataset.
func SequoiaPoints(n int, space float64, seed int64) *Dataset {
	return synthetic.SequoiaPoints(n, space, seed)
}

// Trace is a persisted evaluation workload: queries plus their exact
// result sizes, replayable against any estimator.
type Trace = trace.Trace

// CaptureTrace records the exact answers of the queries.
func CaptureTrace(oracle Oracle, queries []Rect) *Trace { return trace.Capture(oracle, queries) }

// SaveTrace writes a trace to a file.
func SaveTrace(path string, t *Trace) error { return trace.Save(path, t) }

// LoadTrace reads a trace from a file.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// NewQuadTreeHist builds buckets from the leaves of a PR quadtree over
// the input, a second index-derived grouping alongside the R-tree
// technique.
func NewQuadTreeHist(d *Dataset, buckets int) (*Histogram, error) {
	return core.NewQuadTreeHist(d, buckets)
}

// RTreeLoad selects the construction method of NewRTreeHistogram.
type RTreeLoad = core.RTreeLoad

// R-tree histogram construction methods.
const (
	LoadInsert  = core.LoadInsert
	LoadSTR     = core.LoadSTR
	LoadHilbert = core.LoadHilbert
)
