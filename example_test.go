package spatialest_test

import (
	"fmt"
	"strings"

	spatialest "repro"
)

// ExampleNewMinSkew builds the paper's headline estimator and answers
// a range query.
func ExampleNewMinSkew() {
	// 10,000 uniformly placed 10x10 rectangles in a 1000x1000 space.
	data := spatialest.UniformData(10000, 1000, 10, 10, 42)

	est, err := spatialest.NewMinSkew(data, spatialest.MinSkewOptions{
		Buckets: 100,
		Regions: 2500,
	})
	if err != nil {
		panic(err)
	}

	// A quarter-space query over uniform data intersects about a
	// quarter of the rectangles.
	q := spatialest.NewRect(0, 0, 500, 500)
	sel := est.Estimate(q) / float64(data.N())
	fmt.Printf("selectivity ~ %.2f\n", sel)
	// Output: selectivity ~ 0.26
}

// ExampleNewRTree exercises the dynamic spatial index.
func ExampleNewRTree() {
	tree := spatialest.NewRTree(16)
	tree.Insert(spatialest.NewRect(0, 0, 10, 10), 1)
	tree.Insert(spatialest.NewRect(20, 20, 30, 30), 2)
	tree.Insert(spatialest.NewRect(5, 5, 25, 25), 3)

	fmt.Println("hits:", tree.Count(spatialest.NewRect(0, 0, 12, 12)))
	tree.Delete(spatialest.NewRect(5, 5, 25, 25), 3)
	fmt.Println("after delete:", tree.Count(spatialest.NewRect(0, 0, 12, 12)))
	// Output:
	// hits: 2
	// after delete: 1
}

// ExampleParseWKT reduces a GIS geometry to the MBR the estimators
// consume.
func ExampleParseWKT() {
	r, ok, err := spatialest.ParseWKT("POLYGON ((0 0, 4 0, 4 3, 0 3, 0 0))")
	if err != nil || !ok {
		panic(err)
	}
	fmt.Println(r)
	// Output: [(0,0),(4,3)]
}

// ExampleReadGeoJSONDataset ingests a FeatureCollection.
func ExampleReadGeoJSONDataset() {
	doc := `{"type":"FeatureCollection","features":[
	  {"type":"Feature","geometry":{"type":"Point","coordinates":[2,3]}},
	  {"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[9,9]]}}
	]}`
	d, err := spatialest.ReadGeoJSONDataset(strings.NewReader(doc))
	if err != nil {
		panic(err)
	}
	mbr, _ := d.MBR()
	fmt.Println(d.N(), "geometries, MBR", mbr)
	// Output: 2 geometries, MBR [(0,0),(9,9)]
}

// ExampleEstimateJoin estimates a spatial join size from two
// histograms without touching the data.
func ExampleEstimateJoin() {
	parcels := spatialest.UniformData(5000, 1000, 8, 8, 1)
	roads := spatialest.UniformData(3000, 1000, 20, 2, 2)

	hp, _ := spatialest.NewMinSkew(parcels, spatialest.MinSkewOptions{Buckets: 50, Regions: 2500})
	hr, _ := spatialest.NewMinSkew(roads, spatialest.MinSkewOptions{Buckets: 50, Regions: 2500})

	est, err := spatialest.EstimateJoin(hp, hr)
	if err != nil {
		panic(err)
	}
	// Exact answer for comparison.
	index := spatialest.STRLoad(roads.Rects(), 32)
	exact := 0
	for _, p := range parcels.Rects() {
		exact += index.Count(p)
	}
	ratio := est / float64(exact)
	fmt.Printf("estimate within %.0f%% of exact\n", 100*absf(ratio-1))
	// Output: estimate within 2% of exact
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
