package planner

import (
	"fmt"

	"repro/internal/core"
)

// Spatial join cardinality estimation. The output size of an
// intersection join R ⋈ S is estimated from the two relations' bucket
// histograms: within a bucket pair, centers are uniform in the bucket
// boxes and rectangle extents equal the bucket averages, so the
// probability that one rectangle from each bucket intersects has a
// closed form — per axis, the measure of the band |x1 - x2| <= d
// inside the box [a1,b1] x [a2,b2], with d half the summed average
// extents.

// EstimateJoin returns the estimated number of intersecting pairs
// between the rectangle sets summarized by the two histograms.
func EstimateJoin(r, s *core.BucketEstimator) (float64, error) {
	if r == nil || s == nil {
		return 0, fmt.Errorf("planner: nil histogram")
	}
	var total float64
	for _, br := range r.Buckets() {
		if br.Count == 0 {
			continue
		}
		for _, bs := range s.Buckets() {
			if bs.Count == 0 {
				continue
			}
			dx := (br.AvgW + bs.AvgW) / 2
			dy := (br.AvgH + bs.AvgH) / 2
			px := axisIntersectProb(br.Box.MinX, br.Box.MaxX, bs.Box.MinX, bs.Box.MaxX, dx)
			py := axisIntersectProb(br.Box.MinY, br.Box.MaxY, bs.Box.MinY, bs.Box.MaxY, dy)
			total += float64(br.Count) * float64(bs.Count) * px * py
		}
	}
	return total, nil
}

// axisIntersectProb returns P(|x1 - x2| <= d) for x1 uniform in
// [a1,b1] and x2 uniform in [a2,b2], d >= 0. Degenerate intervals
// (points) are handled as atoms.
func axisIntersectProb(a1, b1, a2, b2, d float64) float64 {
	w1, w2 := b1-a1, b2-a2
	switch {
	case w1 <= 0 && w2 <= 0:
		// Two atoms.
		if abs(a1-a2) <= d {
			return 1
		}
		return 0
	case w1 <= 0:
		// x1 is an atom: P = overlap([x1-d, x1+d], [a2,b2]) / w2.
		return clamp01(overlapLen(a1-d, a1+d, a2, b2) / w2)
	case w2 <= 0:
		return clamp01(overlapLen(a2-d, a2+d, a1, b1) / w1)
	}
	// General case: integrate len(x) = |[x-d, x+d] ∩ [a2,b2]| for x in
	// [a1,b1]. len is piecewise linear with breakpoints where the band
	// edges cross the interval ends.
	breaks := []float64{a1, b1, a2 - d, a2 + d, b2 - d, b2 + d}
	// Sort the breakpoints and integrate trapezoids inside [a1,b1].
	sortSix(breaks)
	var area float64
	for i := 0; i+1 < len(breaks); i++ {
		lo, hi := breaks[i], breaks[i+1]
		if hi <= a1 || lo >= b1 || hi <= lo {
			continue
		}
		if lo < a1 {
			lo = a1
		}
		if hi > b1 {
			hi = b1
		}
		// len is linear on (lo, hi): trapezoid rule is exact.
		area += (hi - lo) * (bandLen(lo, a2, b2, d) + bandLen(hi, a2, b2, d)) / 2
	}
	return clamp01(area / (w1 * w2))
}

// bandLen is |[x-d, x+d] ∩ [a,b]|.
func bandLen(x, a, b, d float64) float64 {
	return overlapLen(x-d, x+d, a, b)
}

// overlapLen is the length of [lo1,hi1] ∩ [lo2,hi2].
func overlapLen(lo1, hi1, lo2, hi2 float64) float64 {
	lo := lo1
	if lo2 > lo {
		lo = lo2
	}
	hi := hi1
	if hi2 < hi {
		hi = hi2
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// sortSix sorts a six-element slice with insertion sort; the join
// estimator calls this per bucket pair and per axis, so avoiding
// sort.Float64s' allocation matters.
func sortSix(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
