package planner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 10, DefaultCostModel()); err == nil {
		t.Fatal("nil estimator should fail")
	}
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	u, _ := core.NewUniform(d)
	if _, err := New(u, -1, DefaultCostModel()); err == nil {
		t.Fatal("negative size should fail")
	}
}

func TestChoosePicksIndexForSelectiveQueries(t *testing.T) {
	d := synthetic.Uniform(100000, 10000, 10, 30, 2)
	hist, err := core.NewMinSkew(d, core.MinSkewConfig{Buckets: 50, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(hist, d.N(), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny query: index.
	tiny := p.Choose(geom.NewRect(5000, 5000, 5050, 5050))
	if tiny.Access != IndexScan {
		t.Fatalf("tiny query plan = %v", tiny)
	}
	// Whole-space query: scan.
	all := p.Choose(geom.NewRect(0, 0, 10000, 10000))
	if all.Access != SeqScan {
		t.Fatalf("covering query plan = %v", all)
	}
	if all.Rows > float64(d.N())+1e-9 {
		t.Fatalf("rows %g exceed table size", all.Rows)
	}
	if !strings.Contains(all.String(), "SeqScan") {
		t.Fatalf("String = %q", all.String())
	}
	if got := (Access(99)).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown access String = %q", got)
	}
}

func TestChooseCostsConsistent(t *testing.T) {
	d := synthetic.Uniform(1000, 100, 1, 3, 3)
	u, _ := core.NewUniform(d)
	p, _ := New(u, d.N(), CostModel{SeqPerTuple: 2, IndexPerResult: 10, IndexFixed: 5})
	plan := p.Choose(geom.NewRect(0, 0, 50, 50))
	if plan.SeqCost != 2000 {
		t.Fatalf("SeqCost = %g", plan.SeqCost)
	}
	wantIdx := 5 + 10*plan.Rows
	if math.Abs(plan.IndexCost-wantIdx) > 1e-9 {
		t.Fatalf("IndexCost = %g, want %g", plan.IndexCost, wantIdx)
	}
	if plan.Cost != math.Min(plan.SeqCost, plan.IndexCost) {
		t.Fatalf("Cost = %g", plan.Cost)
	}
}

// monteCarloAxis estimates P(|x1-x2|<=d) by sampling.
func monteCarloAxis(rng *rand.Rand, a1, b1, a2, b2, d float64, n int) float64 {
	hit := 0
	for i := 0; i < n; i++ {
		x1 := a1 + rng.Float64()*(b1-a1)
		x2 := a2 + rng.Float64()*(b2-a2)
		if math.Abs(x1-x2) <= d {
			hit++
		}
	}
	return float64(hit) / float64(n)
}

func TestAxisIntersectProbAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := []struct{ a1, b1, a2, b2, d float64 }{
		{0, 10, 0, 10, 1},
		{0, 10, 5, 15, 2},
		{0, 10, 20, 30, 3},  // disjoint, far
		{0, 10, 11, 12, 2},  // band reaches partially
		{0, 1, 0, 100, 0.5}, // very different widths
		{0, 10, 3, 4, 0},    // zero extent band
	}
	for _, c := range cases {
		got := axisIntersectProb(c.a1, c.b1, c.a2, c.b2, c.d)
		want := monteCarloAxis(rng, c.a1, c.b1, c.a2, c.b2, c.d, 200000)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("axisIntersectProb(%v) = %g, Monte Carlo %g", c, got, want)
		}
	}
}

func TestAxisIntersectProbDegenerate(t *testing.T) {
	// Two atoms.
	if got := axisIntersectProb(5, 5, 7, 7, 1); got != 0 {
		t.Fatalf("far atoms = %g", got)
	}
	if got := axisIntersectProb(5, 5, 6, 6, 2); got != 1 {
		t.Fatalf("near atoms = %g", got)
	}
	// Atom vs interval: band [4,8] over [0,10] -> 0.4.
	if got := axisIntersectProb(6, 6, 0, 10, 2); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("atom vs interval = %g, want 0.4", got)
	}
	if got := axisIntersectProb(0, 10, 6, 6, 2); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("interval vs atom = %g, want 0.4", got)
	}
}

func TestEstimateJoinErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 4)
	u, _ := core.NewUniform(d)
	if _, err := EstimateJoin(nil, u); err == nil {
		t.Fatal("nil left should fail")
	}
	if _, err := EstimateJoin(u, nil); err == nil {
		t.Fatal("nil right should fail")
	}
}

// bruteJoin counts intersecting pairs exactly.
func bruteJoin(r, s *dataset.Distribution) int {
	count := 0
	for _, a := range r.Rects() {
		for _, b := range s.Rects() {
			if a.Intersects(b) {
				count++
			}
		}
	}
	return count
}

func TestEstimateJoinAccuracy(t *testing.T) {
	// Two modest uniform sets: the estimate should land within 25% of
	// the exact join size.
	r := synthetic.Uniform(2000, 1000, 5, 20, 5)
	s := synthetic.Uniform(1500, 1000, 5, 20, 6)
	hr, err := core.NewMinSkew(r, core.MinSkewConfig{Buckets: 60, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := core.NewMinSkew(s, core.MinSkewConfig{Buckets: 60, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateJoin(hr, hs)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(bruteJoin(r, s))
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("join estimate %g vs exact %g", got, want)
	}
}

func TestEstimateJoinSkewedBeatsUniform(t *testing.T) {
	// On skewed data the Min-Skew join estimate should beat the
	// single-bucket (uniform) join estimate.
	r := synthetic.Charminar(3000, 1000, 15, 7)
	s := synthetic.Charminar(2000, 1000, 15, 8)
	exactJoin := float64(bruteJoin(r, s))

	hr, _ := core.NewMinSkew(r, core.MinSkewConfig{Buckets: 80, Regions: 2500})
	hs, _ := core.NewMinSkew(s, core.MinSkewConfig{Buckets: 80, Regions: 2500})
	ur, _ := core.NewUniform(r)
	us, _ := core.NewUniform(s)

	msEst, err := EstimateJoin(hr, hs)
	if err != nil {
		t.Fatal(err)
	}
	uEst, err := EstimateJoin(ur, us)
	if err != nil {
		t.Fatal(err)
	}
	msErr := math.Abs(msEst - exactJoin)
	uErr := math.Abs(uEst - exactJoin)
	if msErr >= uErr {
		t.Fatalf("Min-Skew join error %g not better than uniform %g (exact %g, est %g vs %g)",
			msErr, uErr, exactJoin, msEst, uEst)
	}
}

func TestSortSix(t *testing.T) {
	v := []float64{5, 1, 4, 2, 6, 3}
	sortSix(v)
	for i := 1; i < len(v); i++ {
		if v[i-1] > v[i] {
			t.Fatalf("not sorted: %v", v)
		}
	}
}
