// Package planner shows the estimators doing the job the paper built
// them for: cost-based access path selection. Given a table's
// statistics and a cost model, the planner chooses between a
// sequential scan and an index scan for a spatial range predicate, and
// estimates the output cardinality of spatial intersection joins from
// two histograms.
package planner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

// CostModel holds the planner's cost constants in abstract cost units
// (a common choice is "one sequential page read = 1").
type CostModel struct {
	// SeqPerTuple is the cost of examining one tuple during a
	// sequential scan.
	SeqPerTuple float64
	// IndexPerResult is the cost of fetching one matching tuple
	// through the index (random access is more expensive).
	IndexPerResult float64
	// IndexFixed is the fixed overhead of descending the index.
	IndexFixed float64
}

// DefaultCostModel mirrors the usual ~25x random-versus-sequential
// penalty.
func DefaultCostModel() CostModel {
	return CostModel{SeqPerTuple: 1, IndexPerResult: 25, IndexFixed: 100}
}

// Access is the chosen access path.
type Access int

const (
	// SeqScan reads the whole table.
	SeqScan Access = iota
	// IndexScan probes the spatial index.
	IndexScan
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IndexScan"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Plan is the planner's decision for one range predicate.
type Plan struct {
	Access Access
	// Rows is the estimated number of matching tuples.
	Rows float64
	// Selectivity is Rows over the table size.
	Selectivity float64
	// Cost is the estimated cost of the chosen path.
	Cost float64
	// SeqCost and IndexCost are both candidates' costs.
	SeqCost   float64
	IndexCost float64
}

// String renders the plan like an EXPLAIN line.
func (p Plan) String() string {
	return fmt.Sprintf("%v (rows=%.1f sel=%.5f cost=%.0f; seq=%.0f index=%.0f)",
		p.Access, p.Rows, p.Selectivity, p.Cost, p.SeqCost, p.IndexCost)
}

// Planner chooses access paths for one table.
type Planner struct {
	est   core.Estimator
	n     int
	model CostModel
}

// New creates a planner over a table of n tuples whose spatial
// attribute is summarized by est.
func New(est core.Estimator, n int, model CostModel) (*Planner, error) {
	if est == nil {
		return nil, fmt.Errorf("planner: nil estimator")
	}
	if n < 0 {
		return nil, fmt.Errorf("planner: negative table size %d", n)
	}
	return &Planner{est: est, n: n, model: model}, nil
}

// Choose plans the range predicate q.
func (p *Planner) Choose(q geom.Rect) Plan {
	rows := p.est.Estimate(q)
	if rows < 0 {
		rows = 0
	}
	if rows > float64(p.n) {
		rows = float64(p.n)
	}
	seq := p.model.SeqPerTuple * float64(p.n)
	idx := p.model.IndexFixed + p.model.IndexPerResult*rows
	plan := Plan{Rows: rows, SeqCost: seq, IndexCost: idx}
	if p.n > 0 {
		plan.Selectivity = rows / float64(p.n)
	}
	if idx < seq {
		plan.Access, plan.Cost = IndexScan, idx
	} else {
		plan.Access, plan.Cost = SeqScan, seq
	}
	return plan
}
