package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestQuadTreeHistErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	if _, err := NewQuadTreeHist(d, 0); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := NewQuadTreeHist(dataset.New(nil), 10); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestQuadTreeHistBudgetAndTiling(t *testing.T) {
	d := synthetic.Charminar(10000, 1000, 10, 2)
	h, err := NewQuadTreeHist(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := len(h.Buckets())
	if got > 100 {
		t.Fatalf("%d buckets exceeds quota", got)
	}
	if got < 4 {
		t.Fatalf("only %d buckets; tuning failed", got)
	}
	mbr, _ := d.MBR()
	var area float64
	total := 0
	for _, b := range h.Buckets() {
		area += b.Box.Area()
		total += b.Count
	}
	if math.Abs(area-mbr.Area())/mbr.Area() > 1e-9 {
		t.Fatalf("areas sum to %g, want %g", area, mbr.Area())
	}
	if total != d.N() {
		t.Fatalf("counts sum to %d", total)
	}
	if got := h.Estimate(geom.NewRect(0, 0, 1000, 1000)); math.Abs(got-float64(d.N())) > 1e-6 {
		t.Fatalf("covering estimate = %g", got)
	}
}

func TestQuadTreeHistBeatsUniformOnSkew(t *testing.T) {
	d := synthetic.Charminar(20000, 10000, 100, 3)
	qh, err := NewQuadTreeHist(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := NewUniform(d)
	if eq, eu := avgRelErr(t, d, qh, 0.10), avgRelErr(t, d, u, 0.10); eq >= eu {
		t.Fatalf("quadtree error %g not better than uniform %g", eq, eu)
	}
}

func TestQuadTreeHistDegenerate(t *testing.T) {
	// All-identical rectangles: single leaf, still answers.
	rects := make([]geom.Rect, 64)
	for i := range rects {
		rects[i] = geom.NewRect(5, 5, 7, 7)
	}
	d := dataset.New(rects)
	h, err := NewQuadTreeHist(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Estimate(geom.NewRect(0, 0, 10, 10)); math.Abs(got-64) > 1e-9 {
		t.Fatalf("estimate = %g, want 64", got)
	}
}
