package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

// Allocation regression tests for the estimate hot path. These run in
// the tier-1 suite so a reintroduced per-query slice (a fresh scratch,
// a candidate slice, an interface box) fails CI, not just a benchmark
// eyeball. testing.AllocsPerRun reports the integral average, so a
// single cold-pool refill across the runs does not trip them.

func allocTestEstimator(t *testing.T) *BucketEstimator {
	t.Helper()
	data := synthetic.Clusters(4000, 6, 800, 0.05, 1, 20, 29)
	est, err := NewMinSkew(data, MinSkewConfig{Buckets: 100, Regions: 512})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestEstimateZeroAllocs(t *testing.T) {
	e := allocTestEstimator(t)
	q := geom.NewRect(200, 200, 400, 400)
	e.Estimate(q) // warm the scratch pool
	if allocs := testing.AllocsPerRun(200, func() {
		e.Estimate(q)
	}); allocs != 0 {
		t.Fatalf("Estimate allocates %v per op, want 0", allocs)
	}
}

func TestEstimateStatsZeroAllocs(t *testing.T) {
	e := allocTestEstimator(t)
	q := geom.NewRect(200, 200, 400, 400)
	e.EstimateStats(q)
	if allocs := testing.AllocsPerRun(200, func() {
		e.EstimateStats(q)
	}); allocs != 0 {
		t.Fatalf("EstimateStats allocates %v per op, want 0", allocs)
	}
}

func TestEstimateBatchAmortizedAllocs(t *testing.T) {
	e := allocTestEstimator(t)
	qs := make([]geom.Rect, 128)
	for i := range qs {
		x := float64(i * 7 % 900)
		qs[i] = geom.NewRect(x, x, x+50, x+50)
	}
	dst := make([]float64, 0, len(qs))
	dst = e.EstimateBatch(qs, dst[:0]) // warm pool and dst
	perBatch := testing.AllocsPerRun(50, func() {
		dst = e.EstimateBatch(qs, dst[:0])
	})
	// The contract is amortized ≤1 alloc/query; with a preallocated dst
	// the whole batch should in fact be allocation-free.
	if perBatch > float64(len(qs)) {
		t.Fatalf("EstimateBatch allocates %v per batch of %d (> 1/query)", perBatch, len(qs))
	}
	if perBatch != 0 {
		t.Fatalf("EstimateBatch with preallocated dst allocates %v per batch, want 0", perBatch)
	}
}
