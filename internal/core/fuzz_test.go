package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
)

// FuzzReadHistogram asserts the histogram deserializer rejects garbage
// without panicking and that accepted histograms produce sane
// estimates.
func FuzzReadHistogram(f *testing.F) {
	good := NewBucketEstimator("seed", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 5, AvgW: 1, AvgH: 1, AvgDensity: 0.05},
		{Box: geom.NewRect(10, 0, 20, 10), Count: 3, AvgW: 2, AvgH: 1, AvgDensity: 0.06},
	})
	raw, _ := good.MarshalBinary()
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("SPHIST1\n"))
	f.Add(raw[:len(raw)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		h, err := ReadHistogram(bytes.NewReader(data))
		if err != nil {
			return
		}
		got := h.Estimate(geom.NewRect(-1e9, -1e9, 1e9, 1e9))
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("accepted histogram with bad estimate %g", got)
		}
	})
}
