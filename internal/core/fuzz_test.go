package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
)

// FuzzReadHistogram asserts the histogram deserializer rejects garbage
// without panicking and that accepted histograms produce sane
// estimates.
func FuzzReadHistogram(f *testing.F) {
	good := NewBucketEstimator("seed", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 5, AvgW: 1, AvgH: 1, AvgDensity: 0.05},
		{Box: geom.NewRect(10, 0, 20, 10), Count: 3, AvgW: 2, AvgH: 1, AvgDensity: 0.06},
	})
	raw, _ := good.MarshalBinary()
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("SPHIST1\n"))
	f.Add([]byte("SPHIST2\n"))
	f.Add(raw[:len(raw)-5])
	// Legacy v1 payload: v2 body without version field or checksum.
	f.Add(append([]byte("SPHIST1\n"), raw[10:len(raw)-4]...))
	// Valid payload with a corrupted checksum trailer.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	// Version from the future.
	future := append([]byte(nil), raw...)
	future[9] = 0x63
	f.Add(future)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		h, err := ReadHistogram(bytes.NewReader(data))
		if err != nil {
			return
		}
		got := h.Estimate(geom.NewRect(-1e9, -1e9, 1e9, 1e9))
		if math.IsNaN(got) || got < 0 {
			t.Fatalf("accepted histogram with bad estimate %g", got)
		}
	})
}
