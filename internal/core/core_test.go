package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestBucketEstimateEmpty(t *testing.T) {
	b := Bucket{Box: geom.NewRect(0, 0, 10, 10)}
	if got := b.Estimate(geom.NewRect(1, 1, 2, 2)); got != 0 {
		t.Fatalf("empty bucket estimate = %g", got)
	}
}

func TestBucketEstimateFullCoverage(t *testing.T) {
	// A query whose extended region covers the whole bucket must report
	// the full count.
	b := Bucket{Box: geom.NewRect(0, 0, 10, 10), Count: 40, AvgW: 2, AvgH: 2, AvgDensity: 1.6}
	if got := b.Estimate(geom.NewRect(-5, -5, 15, 15)); math.Abs(got-40) > 1e-9 {
		t.Fatalf("covering query estimate = %g, want 40", got)
	}
}

func TestBucketEstimateDisjoint(t *testing.T) {
	b := Bucket{Box: geom.NewRect(0, 0, 10, 10), Count: 40, AvgW: 2, AvgH: 2}
	// Far away: even the extended query misses the bucket.
	if got := b.Estimate(geom.NewRect(100, 100, 110, 110)); got != 0 {
		t.Fatalf("disjoint estimate = %g", got)
	}
	// Just outside by less than half the average width: the extension
	// catches rectangles hanging over the box edge.
	if got := b.Estimate(geom.NewRect(10.5, 0, 11, 10)); got <= 0 {
		t.Fatalf("near-edge estimate = %g, want > 0", got)
	}
}

func TestBucketEstimateProportional(t *testing.T) {
	// Uniform math: bucket 10x10 with 100 rects of 0 extent; a query
	// covering a quarter of the box should estimate ~25.
	b := Bucket{Box: geom.NewRect(0, 0, 10, 10), Count: 100, AvgW: 0, AvgH: 0}
	if got := b.Estimate(geom.NewRect(0, 0, 5, 5)); math.Abs(got-25) > 1e-9 {
		t.Fatalf("quarter query = %g, want 25", got)
	}
	// Extension grows the effective region: with AvgW=AvgH=2 the
	// extended query is 7x7 clipped to 6x6 within the box... compute:
	// Expand(1,1) of (0,0,5,5) = (-1,-1,6,6); clipped to box = (0,0,6,6)
	// -> 36/100 of the box.
	b.AvgW, b.AvgH = 2, 2
	if got := b.Estimate(geom.NewRect(0, 0, 5, 5)); math.Abs(got-36) > 1e-9 {
		t.Fatalf("extended quarter query = %g, want 36", got)
	}
}

func TestBucketEstimatePointQuery(t *testing.T) {
	b := Bucket{Box: geom.NewRect(0, 0, 10, 10), Count: 100, AvgW: 1, AvgH: 1, AvgDensity: 1.0}
	q := geom.PointRect(geom.Point{X: 5, Y: 5})
	if got := b.Estimate(q); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("point query = %g, want density 1.0", got)
	}
	// Point outside the box but within half an average width: the
	// extension formula yields a small positive value.
	out := geom.PointRect(geom.Point{X: 10.3, Y: 5})
	if got := b.Estimate(out); got <= 0 {
		t.Fatalf("overhang point query = %g, want > 0", got)
	}
	// Point far outside.
	far := geom.PointRect(geom.Point{X: 50, Y: 50})
	if got := b.Estimate(far); got != 0 {
		t.Fatalf("far point query = %g", got)
	}
}

func TestBucketDegenerateBox(t *testing.T) {
	// All centers identical: zero-area box; any query touching the
	// extended region sees the whole count.
	b := Bucket{Box: geom.NewRect(5, 5, 5, 5), Count: 10, AvgW: 2, AvgH: 2, AvgDensity: 10}
	if got := b.Estimate(geom.NewRect(4, 4, 6, 6)); got != 10 {
		t.Fatalf("degenerate box estimate = %g, want 10", got)
	}
	if got := b.Estimate(geom.NewRect(8, 8, 9, 9)); got != 0 {
		t.Fatalf("degenerate box miss = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	box := geom.NewRect(0, 0, 10, 10)
	members := []geom.Rect{
		geom.NewRect(0, 0, 2, 2),
		geom.NewRect(4, 4, 8, 6),
	}
	b := summarize(box, members)
	if b.Count != 2 {
		t.Fatalf("Count = %d", b.Count)
	}
	if b.AvgW != 3 || b.AvgH != 2 {
		t.Fatalf("AvgW/H = %g/%g, want 3/2", b.AvgW, b.AvgH)
	}
	wantDensity := (4.0 + 8.0) / 100.0
	if math.Abs(b.AvgDensity-wantDensity) > 1e-12 {
		t.Fatalf("AvgDensity = %g, want %g", b.AvgDensity, wantDensity)
	}
	// Empty members.
	if got := summarize(box, nil); got.Count != 0 || got.AvgW != 0 {
		t.Fatalf("empty summarize = %+v", got)
	}
	// Degenerate box with members.
	pb := summarize(geom.NewRect(1, 1, 1, 1), []geom.Rect{geom.NewRect(1, 1, 1, 1)})
	if pb.AvgDensity != 1 {
		t.Fatalf("degenerate box density = %g, want count fallback", pb.AvgDensity)
	}
}

func TestBucketEstimatorSumsBuckets(t *testing.T) {
	e := NewBucketEstimator("test", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 10},
		{Box: geom.NewRect(10, 0, 20, 10), Count: 30},
	})
	// Query covering both boxes entirely.
	if got := e.Estimate(geom.NewRect(-1, -1, 21, 11)); math.Abs(got-40) > 1e-9 {
		t.Fatalf("sum = %g, want 40", got)
	}
	if e.Name() != "test" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.SpaceBuckets() != 2 {
		t.Fatalf("SpaceBuckets = %g", e.SpaceBuckets())
	}
	if len(e.Buckets()) != 2 {
		t.Fatalf("Buckets len = %d", len(e.Buckets()))
	}
	if e.String() != "test{2 buckets}" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestUniformEstimator(t *testing.T) {
	if _, err := NewUniform(dataset.New(nil)); err == nil {
		t.Fatal("empty distribution should fail")
	}
	// 100 unit squares uniformly placed in [0,100]^2 (snapped grid).
	var rects []geom.Rect
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			x, y := float64(i)*10, float64(j)*10
			rects = append(rects, geom.NewRect(x, y, x+1, y+1))
		}
	}
	d := dataset.New(rects)
	u, err := NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "Uniform" || u.SpaceBuckets() != 1 {
		t.Fatalf("uniform meta: %q/%g", u.Name(), u.SpaceBuckets())
	}
	// Whole-space query returns ~N.
	mbr, _ := d.MBR()
	got := u.Estimate(mbr)
	if math.Abs(got-100) > 5 {
		t.Fatalf("whole query = %g, want ~100", got)
	}
	// Quarter query: ~25 plus edge-extension effects.
	got = u.Estimate(geom.NewRect(0, 0, 45, 45))
	if got < 20 || got > 35 {
		t.Fatalf("quarter query = %g, want ~25", got)
	}
}
