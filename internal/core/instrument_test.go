package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

func instrumentTestData(t *testing.T) *dataset.Distribution {
	t.Helper()
	rects := make([]geom.Rect, 0, 64)
	for i := 0; i < 64; i++ {
		x := float64(i%8) * 10
		y := float64(i/8) * 10
		rects = append(rects, geom.NewRect(x, y, x+5, y+5))
	}
	return dataset.New(rects)
}

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	d := instrumentTestData(t)
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 8, Regions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := Instrument(est, nil); got != Estimator(est) {
		t.Fatal("nil registry must return the base estimator unchanged")
	}
	if got := Instrument(nil, telemetry.NewRegistry()); got != nil {
		t.Fatal("nil base must pass through")
	}
}

func TestInstrumentRecordsAndPreservesEstimates(t *testing.T) {
	d := instrumentTestData(t)
	base, err := NewMinSkew(d, MinSkewConfig{Buckets: 8, Regions: 64})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	wrapped := Instrument(base, reg, telemetry.Label{Key: "table", Value: "t"})

	if wrapped.Name() != base.Name() {
		t.Errorf("Name = %q, want %q", wrapped.Name(), base.Name())
	}
	if wrapped.SpaceBuckets() != base.SpaceBuckets() {
		t.Errorf("SpaceBuckets = %g, want %g", wrapped.SpaceBuckets(), base.SpaceBuckets())
	}

	queries := []geom.Rect{
		geom.NewRect(0, 0, 40, 40),
		geom.NewRect(10, 10, 20, 20),
		geom.NewRect(-5, -5, 100, 100),
	}
	for _, q := range queries {
		if got, want := wrapped.Estimate(q), base.Estimate(q); got != want {
			t.Errorf("Estimate(%v) = %g, want %g", q, got, want)
		}
	}

	labels := []telemetry.Label{
		{Key: "table", Value: "t"},
		{Key: "estimator", Value: base.Name()},
	}
	if got := reg.Counter("spatialest_estimates_total", "", labels...).Value(); got != uint64(len(queries)) {
		t.Errorf("estimates_total = %d, want %d", got, len(queries))
	}
	if got := reg.Histogram("spatialest_estimate_seconds", "", nil, labels...).Count(); got != uint64(len(queries)) {
		t.Errorf("estimate_seconds count = %d, want %d", got, len(queries))
	}
	// The counter records the buckets the index actually let each walk
	// visit, so derive the expectation from EstimateStats.
	var wantVisits uint64
	for _, q := range queries {
		_, st := base.EstimateStats(q)
		wantVisits += uint64(st.Visited)
	}
	if wantVisits == 0 {
		t.Fatal("expected at least one bucket visit across the queries")
	}
	if got := reg.Counter("spatialest_bucket_visits_total", "", labels...).Value(); got != wantVisits {
		t.Errorf("bucket_visits_total = %d, want %d", got, wantVisits)
	}
}

func TestMinSkewBuildTrace(t *testing.T) {
	d := instrumentTestData(t)
	tr := &telemetry.BuildTrace{}
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 6, Regions: 64, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// A fully splittable input yields exactly buckets-1 splits.
	if got, want := tr.Splits(), len(est.Buckets())-1; got != want {
		t.Errorf("splits = %d, want %d", got, want)
	}
	evs := tr.Events()
	if len(evs) == 0 || evs[len(evs)-1].Kind != telemetry.EventFinalize {
		t.Fatalf("last event must be finalize, got %+v", evs)
	}
	buckets := 1
	for _, e := range evs {
		switch e.Kind {
		case telemetry.EventSplit:
			buckets++
			if e.Buckets != buckets {
				t.Errorf("split event reports %d buckets, want %d", e.Buckets, buckets)
			}
			if e.Axis != 0 && e.Axis != 1 {
				t.Errorf("split axis = %d", e.Axis)
			}
			// Splitting can only reduce (never increase) spatial skew.
			if e.SkewAfter > e.SkewBefore+1e-9 {
				t.Errorf("skew grew on split: before=%g after=%g", e.SkewBefore, e.SkewAfter)
			}
		case telemetry.EventFinalize:
			if e.Buckets != len(est.Buckets()) {
				t.Errorf("finalize reports %d buckets, want %d", e.Buckets, len(est.Buckets()))
			}
		}
	}
}

func TestMinSkewBuildTraceRefinement(t *testing.T) {
	d := instrumentTestData(t)
	tr := &telemetry.BuildTrace{}
	_, err := NewMinSkew(d, MinSkewConfig{Buckets: 8, Regions: 256, Refinements: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	refines := 0
	var lastCells int
	for _, e := range tr.Events() {
		if e.Kind != telemetry.EventRefine {
			continue
		}
		refines++
		cells := e.GridNX * e.GridNY
		if lastCells > 0 && cells != 4*lastCells {
			t.Errorf("refinement did not quadruple the grid: %d -> %d cells", lastCells, cells)
		}
		lastCells = cells
	}
	if refines != 2 {
		t.Errorf("refine events = %d, want 2", refines)
	}
}

func TestMinSkewBuildTraceLocalGreedy(t *testing.T) {
	d := instrumentTestData(t)
	tr := &telemetry.BuildTrace{}
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 6, Regions: 64, LocalGreedy: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Splits(), len(est.Buckets())-1; got != want {
		t.Errorf("local-greedy splits = %d, want %d", got, want)
	}
}
