package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// Differential property suite for the indexed estimate hot path: the
// grid-routed SoA walk must be bit-identical (math.Float64bits) to the
// retained linear reference over every histogram shape we can build —
// seeded random bucket sets with degenerate members, Min-Skew
// histograms over synthetic data, and histograms mutated by the
// incremental-maintenance methods.

// randomHistogram builds a bucket list with deliberately nasty shapes:
// ordinary boxes, zero-area lines, point buckets, a full-domain
// bucket, and empty buckets.
func randomHistogram(r *rand.Rand, n int) *BucketEstimator {
	buckets := make([]Bucket, 0, n)
	for i := 0; i < n; i++ {
		x := r.Float64()*200 - 100
		y := r.Float64()*200 - 100
		w := r.Float64() * 30
		h := r.Float64() * 30
		switch i % 7 {
		case 3: // horizontal line (zero area)
			h = 0
		case 4: // vertical line (zero area)
			w = 0
		case 5: // point bucket
			w, h = 0, 0
		case 6: // full-domain bucket
			x, y, w, h = -100, -100, 200, 200
		}
		b := Bucket{
			Box:   geom.NewRect(x, y, x+w, y+h),
			Count: r.Intn(50),
			AvgW:  r.Float64() * 10,
			AvgH:  r.Float64() * 10,
		}
		if b.Count == 0 {
			b.AvgW, b.AvgH = 0, 0
		} else if area := b.Box.Area(); area > 0 {
			b.AvgDensity = float64(b.Count) * b.AvgW * b.AvgH / area
		} else {
			b.AvgDensity = float64(b.Count)
		}
		buckets = append(buckets, b)
	}
	return NewBucketEstimator("random", buckets)
}

// randomQueries mixes range queries, point queries, boundary-aligned
// queries (edges exactly on a bucket box's edges), whole-domain and
// far-outside queries.
func randomQueries(r *rand.Rand, e *BucketEstimator, n int) []geom.Rect {
	bs := e.Buckets()
	qs := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%5 == 1 && len(bs) > 0:
			// Exactly a bucket's box: every edge is a boundary tie.
			qs = append(qs, bs[r.Intn(len(bs))].Box)
		case i%5 == 2:
			// Point query, sometimes exactly on a bucket corner.
			if len(bs) > 0 && i%2 == 0 {
				b := bs[r.Intn(len(bs))].Box
				qs = append(qs, geom.PointRect(geom.Point{X: b.MinX, Y: b.MaxY}))
			} else {
				qs = append(qs, geom.PointRect(geom.Point{
					X: r.Float64()*240 - 120, Y: r.Float64()*240 - 120,
				}))
			}
		case i%5 == 3:
			// Whole domain and beyond.
			qs = append(qs, geom.NewRect(-500, -500, 500, 500))
		case i%5 == 4:
			// Far outside every bucket: must prune to nothing.
			qs = append(qs, geom.NewRect(1e6, 1e6, 1e6+5, 1e6+5))
		default:
			x := r.Float64()*220 - 110
			y := r.Float64()*220 - 110
			qs = append(qs, geom.NewRect(x, y, x+r.Float64()*40, y+r.Float64()*40))
		}
	}
	return qs
}

// assertBitIdentical runs every query through both walks and requires
// bit-for-bit equality, consistent stats, and visible pruning bounds.
func assertBitIdentical(t *testing.T, e *BucketEstimator, qs []geom.Rect) {
	t.Helper()
	for _, q := range qs {
		got := e.Estimate(q)
		want := e.EstimateLinear(q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("Estimate(%v) = %v (bits %x), linear %v (bits %x)",
				q, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		sGot, stGot := e.EstimateStats(q)
		sWant, stWant := e.EstimateStatsLinear(q)
		if math.Float64bits(sGot) != math.Float64bits(sWant) {
			t.Fatalf("EstimateStats(%v) = %v, linear %v", q, sGot, sWant)
		}
		if stGot.Buckets != stWant.Buckets {
			t.Fatalf("Buckets = %d, want %d", stGot.Buckets, stWant.Buckets)
		}
		if stGot.Contributing != stWant.Contributing {
			t.Fatalf("Contributing(%v) = %d, linear %d", q, stGot.Contributing, stWant.Contributing)
		}
		if stGot.Visited < stGot.Contributing || stGot.Visited > stGot.Buckets {
			t.Fatalf("Visited = %d outside [%d, %d]", stGot.Visited, stGot.Contributing, stGot.Buckets)
		}
	}
}

func TestIndexedEstimateBitIdenticalRandom(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 300} {
		for seed := int64(1); seed <= 6; seed++ {
			r := rand.New(rand.NewSource(seed*1000 + int64(n)))
			e := randomHistogram(r, n)
			assertBitIdentical(t, e, randomQueries(r, e, 150))
		}
	}
}

func TestIndexedEstimateBitIdenticalMinSkew(t *testing.T) {
	data := synthetic.Clusters(4000, 6, 800, 0.05, 1, 20, 97)
	for _, nb := range []int{16, 100} {
		est, err := NewMinSkew(data, MinSkewConfig{Buckets: nb, Regions: 512})
		if err != nil {
			t.Fatal(err)
		}
		qs, err := workload.Generate(data, workload.Config{
			Count: 300, QSize: 0.1, Seed: 7, Clamp: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(nb)))
		qs = append(qs, randomQueries(r, est, 100)...)
		assertBitIdentical(t, est, qs)
	}
}

func TestIndexedEstimateDegenerateBuckets(t *testing.T) {
	e := NewBucketEstimator("degenerate", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 5, AvgW: 2, AvgH: 2, AvgDensity: 0.2},
		// Zero-area bucket: a horizontal segment.
		{Box: geom.NewRect(20, 5, 30, 5), Count: 3, AvgW: 1, AvgH: 1, AvgDensity: 3},
		// Point bucket.
		{Box: geom.NewRect(40, 40, 40, 40), Count: 2, AvgW: 4, AvgH: 4, AvgDensity: 2},
		// Full-domain bucket.
		{Box: geom.NewRect(-100, -100, 100, 100), Count: 7, AvgW: 0.5, AvgH: 0.5, AvgDensity: 0.001},
		// Empty bucket.
		{Box: geom.NewRect(60, 60, 70, 70)},
	})
	qs := []geom.Rect{
		geom.NewRect(0, 0, 10, 10),               // exactly the first box
		geom.NewRect(10, 0, 20, 10),              // shares only the MaxX edge
		geom.NewRect(25, 5, 26, 5),               // degenerate query on the segment
		geom.PointRect(geom.Point{X: 40, Y: 40}), // point query on the point bucket
		geom.PointRect(geom.Point{X: 41, Y: 40}), // just outside it
		geom.NewRect(-100, -100, 100, 100),       // whole domain
		geom.NewRect(-1e3, -1e3, 1e3, 1e3),       // beyond the domain
		geom.NewRect(200, 200, 210, 210),         // reaches nothing
		geom.NewRect(60, 60, 70, 70),             // only the empty bucket
	}
	assertBitIdentical(t, e, qs)
}

// TestIndexedEstimateAfterMaintenance holds the equivalence through
// Insert/Delete churn, including inserts wide enough to grow the
// indexed maximum half-extents.
func TestIndexedEstimateAfterMaintenance(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	e := randomHistogram(r, 48)
	for i := 0; i < 200; i++ {
		x := r.Float64()*200 - 100
		y := r.Float64()*200 - 100
		w, h := r.Float64()*5, r.Float64()*5
		if i%17 == 0 {
			// Much wider than anything summarized at build time.
			w, h = 80, 80
		}
		rect := geom.NewRect(x, y, x+w, y+h)
		if i%3 == 0 {
			e.Delete(rect)
		} else {
			e.Insert(rect)
		}
	}
	assertBitIdentical(t, e, randomQueries(r, e, 200))
}

func TestEstimateBatchMatchesSingle(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	e := randomHistogram(r, 80)
	qs := randomQueries(r, e, 64)
	got := e.EstimateBatch(qs, nil)
	if len(got) != len(qs) {
		t.Fatalf("EstimateBatch returned %d results for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want := e.Estimate(q)
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("batch[%d] = %v, single = %v", i, got[i], want)
		}
	}
	// Appending semantics: results land after any existing prefix.
	pre := []float64{-1, -2}
	out := e.EstimateBatch(qs[:4], pre)
	if len(out) != 6 || out[0] != -1 || out[1] != -2 {
		t.Fatalf("EstimateBatch must append to dst, got %v", out[:2])
	}
}
