package core

import (
	"fmt"

	"repro/internal/dataset"
)

// NewUniform builds the Uniform technique of Section 3.1: a single
// bucket covering the entire input MBR under the uniformity
// assumption. It is the spatial analogue of the classic
// uniform-distribution assumption of relational optimizers.
func NewUniform(d *dataset.Distribution) (*BucketEstimator, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("core: uniform over empty distribution")
	}
	b := summarize(mbr, d.Rects())
	return NewBucketEstimator("Uniform", []Bucket{b}), nil
}
