package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// SampleEstimator implements the sampling technique of Section 5.3: a
// uniform random sample of the input rectangles is retained; a query's
// selectivity on the sample is scaled up by N/n. Each stored sample
// rectangle costs half a bucket of space (only its bounding box is
// kept, Section 5.4).
type SampleEstimator struct {
	sample []geom.Rect
	n      int // input size
}

// NewSample draws a uniform sample of size rectangles (without
// replacement) from d using the given seed. A size of at least the
// input keeps everything, making the estimator exact.
func NewSample(d *dataset.Distribution, size int, seed int64) (*SampleEstimator, error) {
	return NewSampleRand(d, size, rand.New(rand.NewSource(seed)))
}

// NewSampleRand is NewSample drawing from an injected generator, so a
// single seeded *rand.Rand can drive a whole experiment pipeline
// reproducibly.
func NewSampleRand(d *dataset.Distribution, size int, rng *rand.Rand) (*SampleEstimator, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: sample size %d < 1", size)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: sampling an empty distribution")
	}
	if size > d.N() {
		size = d.N()
	}
	perm := rng.Perm(d.N())
	sample := make([]geom.Rect, size)
	for i := 0; i < size; i++ {
		sample[i] = d.Rect(perm[i])
	}
	return &SampleEstimator{sample: sample, n: d.N()}, nil
}

// Estimate implements Estimator: m * N / n for m sample hits.
func (s *SampleEstimator) Estimate(q geom.Rect) float64 {
	m := 0
	for _, r := range s.sample {
		if r.Intersects(q) {
			m++
		}
	}
	return float64(m) * float64(s.n) / float64(len(s.sample))
}

// Name implements Estimator.
func (s *SampleEstimator) Name() string { return "Sample" }

// SpaceBuckets implements Estimator: two sample rectangles per bucket
// equivalent.
func (s *SampleEstimator) SpaceBuckets() float64 { return float64(len(s.sample)) / 2 }

// Size returns the number of retained sample rectangles.
func (s *SampleEstimator) Size() int { return len(s.sample) }
