package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

// MinSkewPartition returns the first k top-level blocks of a Min-Skew
// build over the distribution as rectangles tiling the input MBR: the
// greedy loop of Section 4.1 run until exactly k buckets exist, with
// no statistics pass. It is how a sharding layer obtains skew-aware
// shard regions — the splits that reduce spatial skew the most are
// exactly the boundaries along which the data divides into
// internally-uniform pieces, so per-region histograms start from the
// best possible coarse partitioning.
//
// The regions argument bounds the grid used to evaluate splits; it can
// be far coarser than a full build's grid (a few thousand cells
// suffice to place k splits). When the distribution cannot support k
// splits (fewer occupied cells than k), fewer rectangles are returned.
func MinSkewPartition(d *dataset.Distribution, k, regions int) ([]geom.Rect, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: partition needs at least one piece, got %d", k)
	}
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("core: partition over empty distribution")
	}
	if regions < 1 {
		regions = DefaultRegions
	}
	nx, ny := grid.Dims(regions, mbr)
	g, err := grid.Build(d, nx, ny)
	if err != nil {
		return nil, err
	}
	blocks := []*msBlock{newMSBlock(g, g.FullBlock(), false)}
	growTo(g, &blocks, k, false, nil, 0)
	out := make([]geom.Rect, len(blocks))
	for i, mb := range blocks {
		out[i] = g.BlockRect(mb.blk)
	}
	return out, nil
}
