package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fractal"
	"repro/internal/geom"
)

// FractalEstimator adapts the Belussi–Faloutsos parametric technique
// to rectangle data the way the paper does (Section 5.3): the
// rectangles are represented by their centroids, the correlation
// fractal dimension of the centroid set is measured by box counting,
// and a query's result size follows the power law N * (eps/L)^D2. To
// account for rectangle extent the query is first extended by half the
// average rectangle dimensions, exactly as in the uniformity formula.
type FractalEstimator struct {
	model      *fractal.Model
	avgW, avgH float64
}

// NewFractal fits the fractal model over d using box-counting grid
// exponents minExp..maxExp (the experiments use 2..8).
func NewFractal(d *dataset.Distribution, minExp, maxExp int) (*FractalEstimator, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("core: fractal over empty distribution")
	}
	m, err := fractal.Fit(d.Centers(), mbr, minExp, maxExp)
	if err != nil {
		return nil, err
	}
	return &FractalEstimator{model: m, avgW: d.AvgWidth(), avgH: d.AvgHeight()}, nil
}

// Estimate implements Estimator.
func (f *FractalEstimator) Estimate(q geom.Rect) float64 {
	return f.model.EstimateRange(q.Width()+f.avgW, q.Height()+f.avgH)
}

// Name implements Estimator.
func (f *FractalEstimator) Name() string { return "Fractal" }

// SpaceBuckets implements Estimator: the model is a handful of scalars
// (D2, N, bounds), well under one bucket; report one for accounting.
func (f *FractalEstimator) SpaceBuckets() float64 { return 1 }

// Dimension exposes the fitted fractal dimensions.
func (f *FractalEstimator) Dimension() fractal.Dimension { return f.model.Dim }
