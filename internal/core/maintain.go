package core

import (
	"math"

	"repro/internal/geom"
)

// Incremental maintenance. A histogram is built from a snapshot of the
// data; as the underlying table changes, the statistics drift. Rather
// than rebuilding on every modification — construction costs a data
// sweep — the histogram absorbs inserts and deletes into the affected
// bucket's statistics and tracks how much churn it has seen, so a
// catalog can trigger a rebuild once the drift crosses a threshold
// (the usual ANALYZE policy in database systems).

// Insert updates the histogram for a newly inserted rectangle. The
// rectangle is credited to the bucket containing its center; if no
// bucket covers the center (the data outgrew the original MBR) it is
// counted as uncovered and only the churn counter advances.
func (e *BucketEstimator) Insert(r geom.Rect) {
	e.churn++
	i := e.bucketFor(r.Center())
	if i < 0 {
		e.uncovered++
		return
	}
	b := &e.buckets[i]
	n := float64(b.Count)
	b.AvgW = (b.AvgW*n + r.Width()) / (n + 1)
	b.AvgH = (b.AvgH*n + r.Height()) / (n + 1)
	if area := b.Box.Area(); area > 0 {
		b.AvgDensity += r.Area() / area
	} else {
		b.AvgDensity++
	}
	b.Count++
	e.syncDerived(i)
}

// Delete updates the histogram for a removed rectangle. It is the
// inverse of Insert; deleting from an empty or non-covering bucket
// only advances the churn counter.
func (e *BucketEstimator) Delete(r geom.Rect) {
	e.churn++
	i := e.bucketFor(r.Center())
	if i < 0 {
		if e.uncovered > 0 {
			e.uncovered--
		}
		return
	}
	b := &e.buckets[i]
	if b.Count == 0 {
		return
	}
	n := float64(b.Count)
	if b.Count == 1 {
		b.AvgW, b.AvgH, b.AvgDensity = 0, 0, 0
		b.Count = 0
		e.syncDerived(i)
		return
	}
	b.AvgW = math.Max(0, (b.AvgW*n-r.Width())/(n-1))
	b.AvgH = math.Max(0, (b.AvgH*n-r.Height())/(n-1))
	if area := b.Box.Area(); area > 0 {
		b.AvgDensity = math.Max(0, b.AvgDensity-r.Area()/area)
	} else if b.AvgDensity > 0 {
		b.AvgDensity--
	}
	b.Count--
	e.syncDerived(i)
}

// bucketFor returns the index of the first bucket whose box contains
// the point, or -1. Buckets from BSP techniques tile the space so at
// most a boundary tie is ambiguous; first match is deterministic. The
// grid index narrows the scan to the point's cell: every bucket
// containing p is listed there (its box overlaps p's cell), and the
// per-cell id list is ascending, so the first match in the cell is the
// first match globally.
func (e *BucketEstimator) bucketFor(p geom.Point) int {
	if ix := e.idx; ix != nil {
		c := ix.cellY(p.Y)*ix.nx + ix.cellX(p.X)
		for _, id := range ix.cellIDs[ix.cellStart[c]:ix.cellStart[c+1]] {
			if e.buckets[id].Box.ContainsPoint(p) {
				return int(id)
			}
		}
		return -1
	}
	for i := range e.buckets {
		if e.buckets[i].Box.ContainsPoint(p) {
			return i
		}
	}
	return -1
}

// Churn returns the number of Insert/Delete operations absorbed since
// construction (or since ResetChurn).
func (e *BucketEstimator) Churn() int { return e.churn }

// Uncovered returns how many live inserted rectangles fell outside
// every bucket; a growing value means the data has outgrown the
// histogram's extent and a rebuild is overdue.
func (e *BucketEstimator) Uncovered() int { return e.uncovered }

// StaleFraction returns churn relative to the current total count; a
// catalog typically rebuilds statistics when this passes ~0.1-0.2.
func (e *BucketEstimator) StaleFraction() float64 {
	total := e.uncovered
	for i := range e.buckets {
		total += e.buckets[i].Count
	}
	if total == 0 {
		if e.churn == 0 {
			return 0
		}
		return 1
	}
	return float64(e.churn) / float64(total)
}

// ResetChurn zeroes the churn tracking, e.g. after a rebuild decision
// was evaluated.
func (e *BucketEstimator) ResetChurn() { e.churn = 0 }
