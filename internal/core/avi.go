package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/onedim"
)

// AVIEstimator is the straightforward relational transplant the
// paper's introduction warns about: two one-dimensional histograms
// over the x and y centers combined under the attribute-value-
// independence assumption, P(x in range, y in range) = P(x) * P(y).
// It ignores all correlation between the coordinates — precisely the
// structure spatial data has — and serves as a baseline quantifying
// what the two-dimensional partitionings buy.
type AVIEstimator struct {
	hx, hy     *onedim.Histogram
	n          int
	avgW, avgH float64
}

// AVIKind selects the underlying one-dimensional histogram type.
type AVIKind int

const (
	// AVIEquiDepth uses Equi-Depth marginals (the common system
	// default).
	AVIEquiDepth AVIKind = iota
	// AVIEquiWidth uses Equi-Width marginals.
	AVIEquiWidth
	// AVIVOptimal uses V-Optimal marginals.
	AVIVOptimal
)

// NewAVI builds the attribute-value-independence estimator with
// buckets split evenly between the two marginal histograms.
func NewAVI(d *dataset.Distribution, buckets int, kind AVIKind) (*AVIEstimator, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("core: AVI needs at least 2 buckets, got %d", buckets)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: AVI over empty distribution")
	}
	xs := make([]float64, d.N())
	ys := make([]float64, d.N())
	for i, r := range d.Rects() {
		c := r.Center()
		xs[i], ys[i] = c.X, c.Y
	}
	per := buckets / 2
	build := func(vals []float64) (*onedim.Histogram, error) {
		switch kind {
		case AVIEquiWidth:
			return onedim.EquiWidth(vals, per)
		case AVIVOptimal:
			return onedim.VOptimal(vals, per, 512)
		default:
			return onedim.EquiDepth(vals, per)
		}
	}
	hx, err := build(xs)
	if err != nil {
		return nil, err
	}
	hy, err := build(ys)
	if err != nil {
		return nil, err
	}
	return &AVIEstimator{hx: hx, hy: hy, n: d.N(), avgW: d.AvgWidth(), avgH: d.AvgHeight()}, nil
}

// Estimate implements Estimator: the query is extended by half the
// average extents (as in Section 3.1) and the marginal fractions are
// multiplied.
func (a *AVIEstimator) Estimate(q geom.Rect) float64 {
	px := a.hx.Fraction(q.MinX-a.avgW/2, q.MaxX+a.avgW/2)
	py := a.hy.Fraction(q.MinY-a.avgH/2, q.MaxY+a.avgH/2)
	return float64(a.n) * px * py
}

// Name implements Estimator.
func (a *AVIEstimator) Name() string { return "AVI" }

// SpaceBuckets implements Estimator: a one-dimensional bucket stores
// three words (lo, hi, count) against the spatial bucket's eight.
func (a *AVIEstimator) SpaceBuckets() float64 {
	return 3 * float64(len(a.hx.Buckets())+len(a.hy.Buckets())) / 8
}
