package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// MinSkewConfig controls construction of the Min-Skew partitioning
// (Section 4.1) and its progressive refinement (Section 5.6).
type MinSkewConfig struct {
	// Buckets is the bucket budget beta.
	Buckets int
	// Regions is the (final) number of uniform grid regions used to
	// approximate the input; the paper's experiments default to 10000.
	Regions int
	// Refinements is the number of progressive refinement steps. Zero
	// runs plain Min-Skew on the full grid. With k refinements the
	// construction starts on a grid of Regions/4^k cells, emits
	// Buckets/(k+1) buckets per stage, and quadruples the grid between
	// stages (Example 3 in the paper).
	Refinements int
	// FullSplitSearch evaluates candidate splits against the exact
	// two-dimensional spatial skew instead of the paper's marginal
	// frequency heuristic. Ablation knob.
	FullSplitSearch bool
	// LocalGreedy replaces the paper's global greedy loop (always split
	// the bucket with the largest skew reduction anywhere) with local
	// recursion: each split divides the remaining bucket budget between
	// the two halves in proportion to their skew. Ablation knob; not
	// compatible with progressive refinement.
	LocalGreedy bool
	// Trace, when non-nil, receives one structured build event per
	// greedy split (chosen bucket, axis, position, skew before/after),
	// per progressive-refinement step, and for the final statistics
	// pass. A nil trace costs nothing.
	Trace *telemetry.BuildTrace
}

// DefaultRegions is the grid size the paper uses for its headline
// experiments.
const DefaultRegions = 10000

// msBlock is one bucket under construction: a rectangular block of
// grid cells plus its cached best split.
type msBlock struct {
	blk       grid.Block
	axis      int // 0 = split along x, 1 = along y, -1 = unsplittable
	pos       int // split after this many columns/rows of the block
	reduction float64
}

// NewMinSkew builds the Min-Skew partitioning over the distribution.
func NewMinSkew(d *dataset.Distribution, cfg MinSkewConfig) (*BucketEstimator, error) {
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: Min-Skew needs at least one bucket, got %d", cfg.Buckets)
	}
	if cfg.Regions < 1 {
		cfg.Regions = DefaultRegions
	}
	if cfg.Refinements < 0 {
		return nil, fmt.Errorf("core: negative refinement count %d", cfg.Refinements)
	}
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("core: Min-Skew over empty distribution")
	}

	// Initial grid: Regions/4^k cells, so that k quadruplings land on
	// the requested final resolution.
	initRegions := cfg.Regions
	for i := 0; i < cfg.Refinements; i++ {
		initRegions = (initRegions + 3) / 4
	}
	nx, ny := grid.Dims(initRegions, mbr)
	g, err := grid.Build(d, nx, ny)
	if err != nil {
		return nil, err
	}

	if cfg.LocalGreedy {
		if cfg.Refinements > 0 {
			return nil, fmt.Errorf("core: LocalGreedy does not support progressive refinement")
		}
		blocks := splitLocal(g, g.FullBlock(), cfg.Buckets, cfg.FullSplitSearch, cfg.Trace)
		cfg.Trace.Record(telemetry.BuildEvent{
			Kind: telemetry.EventFinalize, Bucket: -1, Axis: -1,
			Buckets: len(blocks), GridNX: g.NX(), GridNY: g.NY(),
		})
		return NewBucketEstimator("Min-Skew", finalizeBuckets(d, g, blocks)), nil
	}

	blocks := []*msBlock{newMSBlock(g, g.FullBlock(), cfg.FullSplitSearch)}
	stages := cfg.Refinements + 1
	for stage := 0; stage < stages; stage++ {
		target := cfg.Buckets * (stage + 1) / stages
		growTo(g, &blocks, target, cfg.FullSplitSearch, cfg.Trace, stage)
		if stage < stages-1 {
			// Refine: quadruple the grid and remap the blocks onto it.
			g, err = grid.Build(d, g.NX()*2, g.NY()*2)
			if err != nil {
				return nil, err
			}
			for i, mb := range blocks {
				refined := grid.Block{
					X0: mb.blk.X0 * 2, Y0: mb.blk.Y0 * 2,
					X1: mb.blk.X1*2 + 1, Y1: mb.blk.Y1*2 + 1,
				}
				blocks[i] = newMSBlock(g, refined, cfg.FullSplitSearch)
			}
			cfg.Trace.Record(telemetry.BuildEvent{
				Kind: telemetry.EventRefine, Stage: stage + 1, Bucket: -1, Axis: -1,
				Buckets: len(blocks), GridNX: g.NX(), GridNY: g.NY(),
			})
		}
	}

	cfg.Trace.Record(telemetry.BuildEvent{
		Kind: telemetry.EventFinalize, Stage: stages - 1, Bucket: -1, Axis: -1,
		Buckets: len(blocks), GridNX: g.NX(), GridNY: g.NY(),
	})
	return NewBucketEstimator("Min-Skew", finalizeBuckets(d, g, blocks)), nil
}

// growTo splits blocks greedily — always the block whose best split
// yields the largest reduction in spatial skew — until the target
// count is reached or nothing can be split. Each split is recorded in
// tr (nil drops the records).
func growTo(g *grid.Grid, blocks *[]*msBlock, target int, full bool, tr *telemetry.BuildTrace, stage int) {
	for len(*blocks) < target {
		best, bestRed := -1, -1.0
		for i, mb := range *blocks {
			if mb.axis >= 0 && mb.reduction > bestRed {
				best, bestRed = i, mb.reduction
			}
		}
		if best < 0 {
			return
		}
		mb := (*blocks)[best]
		left, right := splitBlock(mb.blk, mb.axis, mb.pos)
		(*blocks)[best] = newMSBlock(g, left, full)
		*blocks = append(*blocks, newMSBlock(g, right, full))
		if tr != nil {
			// The exact 2-D skews are O(1) prefix-sum queries; only
			// computed when tracing.
			tr.Record(telemetry.BuildEvent{
				Kind: telemetry.EventSplit, Stage: stage,
				Bucket: best, Axis: mb.axis, Pos: mb.pos,
				SkewBefore: g.Skew(mb.blk),
				SkewAfter:  g.Skew(left) + g.Skew(right),
				Buckets:    len(*blocks), GridNX: g.NX(), GridNY: g.NY(),
			})
		}
	}
}

// splitLocal recursively divides a block, splitting the remaining
// bucket budget between the halves in proportion to their spatial
// skew (plus one guaranteed bucket each). It is the local alternative
// to the paper's global greedy loop.
func splitLocal(g *grid.Grid, b grid.Block, budget int, full bool, tr *telemetry.BuildTrace) []*msBlock {
	mb := newMSBlock(g, b, full)
	if budget <= 1 || mb.axis < 0 {
		return []*msBlock{mb}
	}
	left, right := splitBlock(b, mb.axis, mb.pos)
	ls, rs := g.Skew(left), g.Skew(right)
	// The local recursion has no global bucket index; record -1.
	tr.Record(telemetry.BuildEvent{
		Kind: telemetry.EventSplit, Bucket: -1, Axis: mb.axis, Pos: mb.pos,
		SkewBefore: g.Skew(b), SkewAfter: ls + rs,
		GridNX: g.NX(), GridNY: g.NY(),
	})
	// Budget for the left half: proportional to skew share, with each
	// side keeping at least one bucket.
	remaining := budget - 2
	lb := 1
	if total := ls + rs; total > 0 {
		lb += int(float64(remaining) * ls / total)
	} else {
		lb += remaining / 2
	}
	rb := budget - lb
	out := splitLocal(g, left, lb, full, tr)
	return append(out, splitLocal(g, right, rb, full, tr)...)
}

// splitBlock cuts the block after pos columns (axis 0) or rows (axis 1).
func splitBlock(b grid.Block, axis, pos int) (left, right grid.Block) {
	if axis == 0 {
		cut := b.X0 + pos
		return grid.Block{X0: b.X0, Y0: b.Y0, X1: cut, Y1: b.Y1},
			grid.Block{X0: cut + 1, Y0: b.Y0, X1: b.X1, Y1: b.Y1}
	}
	cut := b.Y0 + pos
	return grid.Block{X0: b.X0, Y0: b.Y0, X1: b.X1, Y1: cut},
		grid.Block{X0: b.X0, Y0: cut + 1, X1: b.X1, Y1: b.Y1}
}

// newMSBlock computes and caches the best split of the block.
func newMSBlock(g *grid.Grid, b grid.Block, full bool) *msBlock {
	mb := &msBlock{blk: b, axis: -1}
	w := b.X1 - b.X0 + 1
	h := b.Y1 - b.Y0 + 1
	if w < 2 && h < 2 {
		return mb
	}
	if full {
		mb.bestSplitFull(g)
	} else {
		mb.bestSplitMarginal(g)
	}
	return mb
}

// bestSplitMarginal evaluates candidate splits on the marginal
// frequency distributions along each dimension, the complexity
// reduction Section 4.1 describes. The skew of a marginal segment is
// its sum of squared deviations (count times variance), computable for
// every cut in one pass with running prefix sums.
func (mb *msBlock) bestSplitMarginal(g *grid.Grid) {
	b := mb.blk
	if b.X1 > b.X0 {
		m := g.MarginalX(b, nil)
		pos, red, ok := bestCut(m)
		if ok && (mb.axis < 0 || red > mb.reduction) {
			mb.axis, mb.pos, mb.reduction = 0, pos, red
		}
	}
	if b.Y1 > b.Y0 {
		m := g.MarginalY(b, nil)
		pos, red, ok := bestCut(m)
		if ok && (mb.axis < 0 || red > mb.reduction) {
			mb.axis, mb.pos, mb.reduction = 1, pos, red
		}
	}
}

// bestCut returns the cut index (split after element pos) minimizing
// the summed SSE of the two segments of vals, i.e. maximizing the skew
// reduction. ok is false when vals has fewer than two elements.
func bestCut(vals []float64) (pos int, reduction float64, ok bool) {
	n := len(vals)
	if n < 2 {
		return 0, 0, false
	}
	var total, totalSq float64
	for _, v := range vals {
		total += v
		totalSq += v * v
	}
	totalSSE := sse(total, totalSq, n)

	bestPos, bestSSE := 0, 0.0
	var ls, lsq float64
	first := true
	for i := 0; i < n-1; i++ {
		ls += vals[i]
		lsq += vals[i] * vals[i]
		s := sse(ls, lsq, i+1) + sse(total-ls, totalSq-lsq, n-1-i)
		if first || s < bestSSE {
			bestPos, bestSSE, first = i, s, false
		}
	}
	red := totalSSE - bestSSE
	if red < 0 {
		red = 0
	}
	return bestPos, red, true
}

// sse returns sum of squared deviations given a segment's sum, sum of
// squares and length.
func sse(sum, sumsq float64, n int) float64 {
	v := sumsq - sum*sum/float64(n)
	if v < 0 {
		return 0
	}
	return v
}

// bestSplitFull evaluates candidate splits against the exact
// two-dimensional spatial skew (Definition 4.1) using the grid's O(1)
// block skew queries.
func (mb *msBlock) bestSplitFull(g *grid.Grid) {
	b := mb.blk
	total := g.Skew(b)
	consider := func(axis, pos int, l, r grid.Block) {
		red := total - g.Skew(l) - g.Skew(r)
		if red < 0 {
			red = 0
		}
		if mb.axis < 0 || red > mb.reduction {
			mb.axis, mb.pos, mb.reduction = axis, pos, red
		}
	}
	for x := b.X0; x < b.X1; x++ {
		l := grid.Block{X0: b.X0, Y0: b.Y0, X1: x, Y1: b.Y1}
		r := grid.Block{X0: x + 1, Y0: b.Y0, X1: b.X1, Y1: b.Y1}
		consider(0, x-b.X0, l, r)
	}
	for y := b.Y0; y < b.Y1; y++ {
		l := grid.Block{X0: b.X0, Y0: b.Y0, X1: b.X1, Y1: y}
		r := grid.Block{X0: b.X0, Y0: y + 1, X1: b.X1, Y1: b.Y1}
		consider(1, y-b.Y0, l, r)
	}
}

// finalizeBuckets assigns each input rectangle to the block containing
// its center (the last step of Algorithm Min-Skew) and computes the
// stored bucket statistics.
func finalizeBuckets(d *dataset.Distribution, g *grid.Grid, blocks []*msBlock) []Bucket {
	// Cell -> bucket index.
	cellOwner := make([]int32, g.NX()*g.NY())
	for i, mb := range blocks {
		for y := mb.blk.Y0; y <= mb.blk.Y1; y++ {
			row := y * g.NX()
			for x := mb.blk.X0; x <= mb.blk.X1; x++ {
				cellOwner[row+x] = int32(i)
			}
		}
	}
	type acc struct {
		count            int
		sumW, sumH, sumA float64
	}
	accs := make([]acc, len(blocks))
	bounds := g.Bounds()
	cw, ch := g.CellWidth(), g.CellHeight()
	for _, r := range d.Rects() {
		c := r.Center()
		cx, cy := 0, 0
		if cw > 0 {
			cx = int((c.X - bounds.MinX) / cw)
		}
		if ch > 0 {
			cy = int((c.Y - bounds.MinY) / ch)
		}
		if cx >= g.NX() {
			cx = g.NX() - 1
		}
		if cy >= g.NY() {
			cy = g.NY() - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		a := &accs[cellOwner[cy*g.NX()+cx]]
		a.count++
		a.sumW += r.Width()
		a.sumH += r.Height()
		a.sumA += r.Area()
	}
	out := make([]Bucket, len(blocks))
	for i, mb := range blocks {
		box := g.BlockRect(mb.blk)
		b := Bucket{Box: box, Count: accs[i].count}
		if accs[i].count > 0 {
			n := float64(accs[i].count)
			b.AvgW = accs[i].sumW / n
			b.AvgH = accs[i].sumH / n
			if area := box.Area(); area > 0 {
				b.AvgDensity = accs[i].sumA / area
			} else {
				b.AvgDensity = n
			}
		}
		out[i] = b
	}
	return out
}
