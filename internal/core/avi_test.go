package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestAVIErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	if _, err := NewAVI(d, 1, AVIEquiDepth); err == nil {
		t.Fatal("1 bucket should fail")
	}
	if _, err := NewAVI(dataset.New(nil), 10, AVIEquiDepth); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestAVIOnUniformData(t *testing.T) {
	// With truly independent coordinates AVI is accurate.
	d := synthetic.Uniform(20000, 1000, 2, 2, 3)
	for _, kind := range []AVIKind{AVIEquiDepth, AVIEquiWidth, AVIVOptimal} {
		avi, err := NewAVI(d, 100, kind)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		q := geom.NewRect(100, 200, 400, 600)
		exact := 0
		for _, r := range d.Rects() {
			if r.Intersects(q) {
				exact++
			}
		}
		got := avi.Estimate(q)
		if math.Abs(got-float64(exact))/float64(exact) > 0.15 {
			t.Fatalf("kind %d: estimate %g vs exact %d", kind, got, exact)
		}
	}
}

func TestAVIFailsOnCorrelatedData(t *testing.T) {
	// Points on the diagonal: x and y are perfectly correlated. AVI
	// estimates P(x)·P(y) and badly overestimates off-diagonal regions.
	var rects []geom.Rect
	for i := 0; i < 5000; i++ {
		v := float64(i) / 5
		rects = append(rects, geom.NewRect(v, v, v, v))
	}
	d := dataset.New(rects)
	avi, err := NewAVI(d, 100, AVIEquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	// Off-diagonal query: truth 0, AVI predicts ~ N * 0.25 * 0.25.
	offDiag := geom.NewRect(0, 750, 250, 1000)
	got := avi.Estimate(offDiag)
	if got < 100 {
		t.Fatalf("AVI off-diagonal estimate = %g; expected the AVI flaw (large overestimate)", got)
	}
	// Min-Skew with the exact 2-D split objective nails the query.
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 50, Regions: 2500, FullSplitSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	if msGot := ms.Estimate(offDiag); msGot > 1 {
		t.Fatalf("full-search Min-Skew off-diagonal estimate %g, want ~0 (AVI gave %g)", msGot, got)
	}
}

func TestMarginalHeuristicBlindSpot(t *testing.T) {
	// A perfect diagonal has *uniform* marginal distributions along
	// both axes, so the marginal split heuristic sees no skew anywhere
	// and degenerates to arbitrary splits, while the exact 2-D
	// objective separates the diagonal cleanly. Documents the known
	// limitation of the paper's Section 4.1 complexity reduction.
	var rects []geom.Rect
	for i := 0; i < 5000; i++ {
		v := float64(i) / 5
		rects = append(rects, geom.NewRect(v, v, v, v))
	}
	d := dataset.New(rects)
	offDiag := geom.NewRect(0, 750, 250, 1000)
	marginal, err := NewMinSkew(d, MinSkewConfig{Buckets: 50, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewMinSkew(d, MinSkewConfig{Buckets: 50, Regions: 2500, FullSplitSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	mErr := marginal.Estimate(offDiag) // truth is 0
	fErr := full.Estimate(offDiag)
	if fErr > 1 {
		t.Fatalf("full-search estimate %g, want ~0", fErr)
	}
	if mErr < 50 {
		t.Fatalf("marginal estimate %g; expected the heuristic to struggle on diagonals", mErr)
	}
}

func TestAVIMetadata(t *testing.T) {
	d := synthetic.Uniform(1000, 100, 1, 5, 4)
	avi, err := NewAVI(d, 80, AVIEquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if avi.Name() != "AVI" {
		t.Fatalf("Name = %q", avi.Name())
	}
	// 40 + 40 one-dim buckets at 3 words = 30 spatial-bucket
	// equivalents.
	if got := avi.SpaceBuckets(); got > 40 || got < 10 {
		t.Fatalf("SpaceBuckets = %g", got)
	}
	// Point query support.
	if got := avi.Estimate(geom.PointRect(geom.Point{X: 50, Y: 50})); got < 0 || math.IsNaN(got) {
		t.Fatalf("point estimate = %g", got)
	}
}
