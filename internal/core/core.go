// Package core implements the spatial selectivity estimators studied
// in the paper: the Uniform single-bucket baseline (Section 3.1), the
// Equi-Area and Equi-Count partitionings (Section 3.3), the R-tree
// index-based grouping (Section 3.4), sampling and the fractal
// parametric technique (Section 5.3), and the paper's contribution —
// the Min-Skew binary space partitioning with optional progressive
// refinement (Sections 4.1 and 5.6).
//
// All bucket-based techniques share the Bucket representation and the
// per-bucket uniformity-assumption formulas of Section 3.1; an
// estimate for a query is the sum of per-bucket contributions because
// buckets partition the input.
//
// # Concurrency
//
// Estimate on every estimator in this package is a pure read and is
// safe to call from any number of goroutines concurrently — query
// planners estimate from many sessions at once. The incremental
// maintenance methods (Insert, Delete, ResetChurn on BucketEstimator)
// mutate state and require external synchronization against concurrent
// Estimates; the catalog package provides that locking, and the
// feedback package's adaptive wrapper is internally synchronized.
package core

import (
	"fmt"

	"repro/internal/geom"
)

// Estimator estimates the result size of spatial range and point
// queries: the number of input rectangles intersecting the query.
type Estimator interface {
	// Estimate returns the estimated number of input rectangles with a
	// non-empty intersection with q. Point queries are degenerate
	// rectangles (geom.PointRect).
	Estimate(q geom.Rect) float64
	// Name identifies the technique, e.g. "Min-Skew".
	Name() string
	// SpaceBuckets returns the estimator's space consumption in bucket
	// equivalents per the paper's accounting (Section 5.4): a bucket is
	// eight words; a stored sample rectangle is four words, i.e. half a
	// bucket.
	SpaceBuckets() float64
}

// Bucket is the unit of the bucket-based techniques: the eight words
// the paper charges per bucket (Section 5.4) — the bounding box, the
// average spatial density, and the number, average width and average
// height of the rectangles assigned to the bucket.
type Bucket struct {
	Box geom.Rect
	// Count is the number of input rectangles whose centers fall in
	// the bucket.
	Count int
	// AvgW and AvgH are the average width and height of those
	// rectangles.
	AvgW, AvgH float64
	// AvgDensity is the average spatial density inside the bucket: the
	// summed area of the bucket's rectangles divided by the bucket box
	// area. It answers point queries directly.
	AvgDensity float64
}

// Estimate applies the uniformity assumption of Section 3.1 within the
// bucket: the query is extended by half the average rectangle
// dimensions on each side (so that any rectangle whose center falls in
// the extended region intersects the query), clipped to the bucket
// box, and the bucket's rectangles are assumed uniformly placed.
func (b Bucket) Estimate(q geom.Rect) float64 {
	if b.Count == 0 {
		return 0
	}
	if geom.IsZero(q.Area()) && geom.IsZero(q.Width()) && geom.IsZero(q.Height()) {
		// Point query: the expected number of rectangles covering a
		// point equals the average spatial density (Section 3.1).
		if b.Box.ContainsPoint(geom.Point{X: q.MinX, Y: q.MinY}) {
			return b.AvgDensity
		}
		// Points outside the box can still be covered by rectangles
		// whose centers are inside it; fall through to the extended
		// formula which handles the overhang.
	}
	ext := q.Expand(b.AvgW/2, b.AvgH/2)
	inter, ok := ext.Intersection(b.Box)
	if !ok {
		return 0
	}
	boxArea := b.Box.Area()
	if geom.IsZero(boxArea) {
		// Degenerate bucket (all centers collinear or identical): every
		// rectangle is assumed to intersect any query whose extended
		// region touches the box.
		return float64(b.Count)
	}
	return float64(b.Count) * inter.Area() / boxArea
}

// BucketEstimator sums per-bucket estimates; it implements Estimator
// for every bucket-based technique. Construction finalizes the bucket
// list into a read-optimized layout (see soa.go): struct-of-arrays
// mirrors for cache-friendly scans plus a coarse grid index over the
// bucket boxes, so Estimate visits only the buckets a query can reach
// and allocates nothing. The indexed walk is bit-identical to the
// retained linear reference (EstimateLinear).
type BucketEstimator struct {
	name    string
	buckets []Bucket

	// Derived read-optimized state, built by finalize and kept in sync
	// by the maintenance methods. Never serialized.
	soa soaBuckets
	idx *bucketIndex

	// Incremental-maintenance state (see maintain.go).
	churn     int
	uncovered int
}

// NewBucketEstimator wraps a finished bucket list and finalizes it
// into the read-optimized layout. The bucket boxes must not change
// afterwards (maintenance mutates only the per-bucket statistics).
func NewBucketEstimator(name string, buckets []Bucket) *BucketEstimator {
	e := &BucketEstimator{name: name, buckets: buckets}
	e.finalize()
	return e
}

// Estimate implements Estimator.
func (e *BucketEstimator) Estimate(q geom.Rect) float64 {
	s := e.getScratch()
	total, _ := e.walkIndexed(q, s)
	putScratch(s)
	return total
}

// WalkStats describes one histogram walk for trace attribution: how
// many buckets the histogram holds, how many the index let the walk
// visit, and how many actually contributed to the estimate.
type WalkStats struct {
	Buckets      int
	Visited      int
	Contributing int
}

// EstimateStats is Estimate plus the walk statistics the request
// tracer attaches to its core.walk span.
func (e *BucketEstimator) EstimateStats(q geom.Rect) (float64, WalkStats) {
	s := e.getScratch()
	total, st := e.walkIndexed(q, s)
	putScratch(s)
	return total, st
}

// Name implements Estimator.
func (e *BucketEstimator) Name() string { return e.name }

// SpaceBuckets implements Estimator: one bucket each.
func (e *BucketEstimator) SpaceBuckets() float64 { return float64(len(e.buckets)) }

// Buckets exposes the bucket list (read-only) for inspection and
// visualization.
func (e *BucketEstimator) Buckets() []Bucket { return e.buckets }

// String summarizes the estimator.
func (e *BucketEstimator) String() string {
	return fmt.Sprintf("%s{%d buckets}", e.name, len(e.buckets))
}

// summarize computes the bucket statistics for a set of member
// rectangles given the bucket box.
func summarize(box geom.Rect, members []geom.Rect) Bucket {
	b := Bucket{Box: box, Count: len(members)}
	if len(members) == 0 {
		return b
	}
	var sumW, sumH, sumArea float64
	for _, r := range members {
		sumW += r.Width()
		sumH += r.Height()
		sumArea += r.Area()
	}
	n := float64(len(members))
	b.AvgW = sumW / n
	b.AvgH = sumH / n
	if area := box.Area(); area > 0 {
		b.AvgDensity = sumArea / area
	} else {
		b.AvgDensity = n
	}
	return b
}
