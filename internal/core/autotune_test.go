package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synthetic"
)

func TestMinSkewAutoErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	if _, _, err := NewMinSkewAuto(d, AutoMinSkewConfig{Buckets: 0}); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, _, err := NewMinSkewAuto(dataset.New(nil), AutoMinSkewConfig{Buckets: 10}); err == nil {
		t.Fatal("empty distribution should fail")
	}
	if _, _, err := NewMinSkewAuto(d, AutoMinSkewConfig{Buckets: 10, MaxRegions: 1}); err == nil {
		t.Fatal("max regions below coarsest ladder step should fail")
	}
}

func TestMinSkewAutoLadder(t *testing.T) {
	d := synthetic.Charminar(20000, 10000, 100, 5)
	est, info, err := NewMinSkewAuto(d, AutoMinSkewConfig{Buckets: 100, MaxRegions: 65536})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Candidates) < 3 {
		t.Fatalf("only %d ladder steps", len(info.Candidates))
	}
	// Candidates quadruple and skews are non-negative.
	for i := 1; i < len(info.Candidates); i++ {
		if info.Candidates[i] != info.Candidates[i-1]*4 {
			t.Fatalf("ladder not quadrupling: %v", info.Candidates)
		}
	}
	for _, s := range info.Skews {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("bad skew %g", s)
		}
	}
	// The chosen resolution is one of the candidates.
	found := false
	for _, c := range info.Candidates {
		if c == info.Regions {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen %d not among candidates %v", info.Regions, info.Candidates)
	}
	if got := len(est.Buckets()); got != 100 {
		t.Fatalf("bucket count = %d", got)
	}
}

func TestMinSkewAutoPicksKnee(t *testing.T) {
	// Diminishing-returns rule: every ladder step up to the chosen
	// resolution must have improved skew by at least the tolerance, and
	// the step just past it (if any) must not have.
	d := synthetic.Charminar(20000, 10000, 100, 6)
	_, info, err := NewMinSkewAuto(d, AutoMinSkewConfig{Buckets: 100, MaxRegions: 65536, Tolerance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, c := range info.Candidates {
		if c == info.Regions {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("chosen %d not among candidates %v", info.Regions, info.Candidates)
	}
	improvement := func(i int) float64 {
		return (info.Skews[i-1] - info.Skews[i]) / info.Skews[i-1]
	}
	for i := 1; i <= idx; i++ {
		if improvement(i) < 0.05 {
			t.Fatalf("step to candidate %d improved only %.3f yet a finer grid was chosen",
				info.Candidates[i], improvement(i))
		}
	}
	if idx+1 < len(info.Candidates) && improvement(idx+1) >= 0.05 {
		t.Fatalf("step past the chosen resolution still improved %.3f; knee missed", improvement(idx+1))
	}
	// The tuner should not pick the finest grid on this instance: the
	// curve flattens well before 65536 regions (Figure 10 behavior).
	if info.Regions == info.Candidates[len(info.Candidates)-1] {
		t.Fatalf("tuner picked the maximum resolution %d; knee detection failed", info.Regions)
	}
}

func TestMinSkewAutoAccuracyComparable(t *testing.T) {
	// Auto-tuned Min-Skew should be in the same accuracy class as the
	// paper's fixed 10000-region default.
	d := synthetic.Charminar(20000, 10000, 100, 7)
	auto, _, err := NewMinSkewAuto(d, AutoMinSkewConfig{Buckets: 100})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 10000})
	if err != nil {
		t.Fatal(err)
	}
	ea, ef := avgRelErr(t, d, auto, 0.10), avgRelErr(t, d, fixed, 0.10)
	if ea > ef*2+0.05 {
		t.Fatalf("auto-tuned error %g much worse than fixed %g", ea, ef)
	}
}
