package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/grid"
)

// Optimal BSP construction. The paper notes (Section 4) that building
// partitionings that minimize spatial skew is NP-hard in general and
// that the best known BSP algorithms use dynamic programming with at
// least O(N^2.5) cost, which motivates Min-Skew's greedy heuristic.
// For small instances the DP is perfectly feasible, and having it lets
// the test suite and ablations measure how much skew the greedy
// heuristic leaves on the table.

// optimalLimits bound the DP's input so its O(cells^2 * (nx+ny) * k^2)
// cost stays in check.
const (
	maxOptimalCells   = 1024
	maxOptimalBuckets = 24
)

// OptimalBSPConfig configures NewOptimalBSP.
type OptimalBSPConfig struct {
	// Buckets is the bucket budget (at most maxOptimalBuckets).
	Buckets int
	// Regions is the grid resolution (at most maxOptimalCells cells).
	Regions int
}

// NewOptimalBSP builds the binary space partitioning of the density
// grid that exactly minimizes the total spatial skew (Definition 4.1)
// within the bucket budget, by dynamic programming over (sub-block,
// budget) states. It is exponential in nothing but still expensive:
// only small grids and budgets are accepted.
func NewOptimalBSP(d *dataset.Distribution, cfg OptimalBSPConfig) (*BucketEstimator, error) {
	blocks, g, err := optimalBlocks(d, cfg)
	if err != nil {
		return nil, err
	}
	return NewBucketEstimator("Optimal-BSP", finalizeBuckets(d, g, blocks)), nil
}

func optimalBlocks(d *dataset.Distribution, cfg OptimalBSPConfig) ([]*msBlock, *grid.Grid, error) {
	if cfg.Buckets < 1 || cfg.Buckets > maxOptimalBuckets {
		return nil, nil, fmt.Errorf("core: optimal BSP budget %d outside [1,%d]", cfg.Buckets, maxOptimalBuckets)
	}
	if cfg.Regions < 1 || cfg.Regions > maxOptimalCells {
		return nil, nil, fmt.Errorf("core: optimal BSP regions %d outside [1,%d]", cfg.Regions, maxOptimalCells)
	}
	mbr, ok := d.MBR()
	if !ok {
		return nil, nil, fmt.Errorf("core: optimal BSP over empty distribution")
	}
	nx, ny := grid.Dims(cfg.Regions, mbr)
	if nx*ny > maxOptimalCells {
		return nil, nil, fmt.Errorf("core: optimal BSP grid %dx%d too large", nx, ny)
	}
	g, err := grid.Build(d, nx, ny)
	if err != nil {
		return nil, nil, err
	}

	dp := &optimalDP{g: g, memo: make(map[dpKey]dpVal)}
	blocks := dp.partition(g.FullBlock(), cfg.Buckets)
	out := make([]*msBlock, len(blocks))
	for i, b := range blocks {
		out[i] = &msBlock{blk: b, axis: -1}
	}
	return out, g, nil
}

type dpKey struct {
	b grid.Block
	k int
}

type dpVal struct {
	cost float64
	// Split decision: axis -1 means keep whole.
	axis, pos, leftK int
}

type optimalDP struct {
	g    *grid.Grid
	memo map[dpKey]dpVal
}

// solve returns the minimum total skew of partitioning b into at most
// k buckets.
func (dp *optimalDP) solve(b grid.Block, k int) dpVal {
	key := dpKey{b: b, k: k}
	if v, ok := dp.memo[key]; ok {
		return v
	}
	best := dpVal{cost: dp.g.Skew(b), axis: -1}
	if k > 1 && best.cost > 0 {
		// Vertical cuts.
		for x := b.X0; x < b.X1; x++ {
			l := grid.Block{X0: b.X0, Y0: b.Y0, X1: x, Y1: b.Y1}
			r := grid.Block{X0: x + 1, Y0: b.Y0, X1: b.X1, Y1: b.Y1}
			dp.splitCosts(l, r, k, 0, x-b.X0, &best)
		}
		// Horizontal cuts.
		for y := b.Y0; y < b.Y1; y++ {
			l := grid.Block{X0: b.X0, Y0: b.Y0, X1: b.X1, Y1: y}
			r := grid.Block{X0: b.X0, Y0: y + 1, X1: b.X1, Y1: b.Y1}
			dp.splitCosts(l, r, k, 1, y-b.Y0, &best)
		}
	}
	dp.memo[key] = best
	return best
}

// splitCosts tries every budget division between the two halves.
func (dp *optimalDP) splitCosts(l, r grid.Block, k, axis, pos int, best *dpVal) {
	// Budgets beyond the cell count are wasted; cap to keep the state
	// space tight.
	maxL := l.Cells()
	for kl := 1; kl <= k-1; kl++ {
		if kl > maxL {
			break
		}
		kr := k - kl
		cost := dp.solve(l, kl).cost + dp.solve(r, kr).cost
		if cost < best.cost {
			*best = dpVal{cost: cost, axis: axis, pos: pos, leftK: kl}
		}
	}
}

// partition reconstructs the optimal block list.
func (dp *optimalDP) partition(b grid.Block, k int) []grid.Block {
	v := dp.solve(b, k)
	if v.axis < 0 {
		return []grid.Block{b}
	}
	l, r := splitBlock(b, v.axis, v.pos)
	out := dp.partition(l, v.leftK)
	return append(out, dp.partition(r, k-v.leftK)...)
}

// PartitionSkews builds both the greedy Min-Skew and the optimal BSP
// over the same grid and returns their total spatial skews, for
// measuring how close the greedy heuristic gets to the optimum.
func PartitionSkews(d *dataset.Distribution, cfg OptimalBSPConfig) (greedy, optimal float64, err error) {
	optBlocks, g, err := optimalBlocks(d, cfg)
	if err != nil {
		return 0, 0, err
	}
	for _, mb := range optBlocks {
		optimal += g.Skew(mb.blk)
	}

	blocks := []*msBlock{newMSBlock(g, g.FullBlock(), true)}
	growTo(g, &blocks, cfg.Buckets, true, nil, 0)
	for _, mb := range blocks {
		greedy += g.Skew(mb.blk)
	}
	return greedy, optimal, nil
}
