package core

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
)

// FuzzGridIndex hammers the grid-index builder with arbitrary bucket
// geometry and asserts its two load-bearing properties:
//
//  1. No false pruning: for any query, the routed candidate set is a
//     superset of the buckets whose own expanded query reaches their
//     box (the only buckets that can contribute non-zero).
//  2. Bit-identity: the indexed walk returns exactly the linear scan's
//     float, bit for bit.
func FuzzGridIndex(f *testing.F) {
	seed := make([]byte, 0, 8*13)
	for _, v := range []float64{0, 0, 10, 10, 2, 1, 1, 20, 5, 20, 5, 0.5, 0.5} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 8*9))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := fuzzFloats(data, 8+6*64) // query + up to 64 buckets
		if len(vals) < 8+6 {
			return
		}
		q := fuzzRect(vals[0], vals[1], vals[2], vals[3])
		if vals[4] < 0.5 {
			// Exercise the point-query branch too.
			q = geom.PointRect(geom.Point{X: q.MinX, Y: q.MinY})
		}
		var buckets []Bucket
		for i := 8; i+6 <= len(vals); i += 6 {
			buckets = append(buckets, Bucket{
				Box:        fuzzRect(vals[i], vals[i+1], vals[i+2], vals[i+3]),
				Count:      int(math.Abs(vals[i+4])) % 100,
				AvgW:       math.Abs(vals[i+4]),
				AvgH:       math.Abs(vals[i+5]),
				AvgDensity: math.Abs(vals[i+5]) / 2,
			})
		}
		e := NewBucketEstimator("fuzz", buckets)

		// Property 1: candidate superset. Recompute the routed candidate
		// set exactly as walkIndexed does and require every bucket whose
		// per-bucket expanded query intersects its box to be in it.
		ix := e.idx
		if ix == nil {
			t.Fatalf("nil index for %d buckets", len(buckets))
		}
		candidates := make(map[int32]bool)
		x0 := ix.cellX(q.MinX - ix.maxHalfW)
		x1 := ix.cellX(q.MaxX + ix.maxHalfW)
		y0 := ix.cellY(q.MinY - ix.maxHalfH)
		y1 := ix.cellY(q.MaxY + ix.maxHalfH)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*ix.nx + cx
				for _, id := range ix.cellIDs[ix.cellStart[c]:ix.cellStart[c+1]] {
					candidates[id] = true
				}
			}
		}
		for i, b := range buckets {
			ext := q.Expand(b.AvgW/2, b.AvgH/2)
			if _, overlaps := ext.Intersection(b.Box); overlaps && !candidates[int32(i)] {
				t.Fatalf("bucket %d (%v) reachable by %v but pruned", i, b.Box, q)
			}
		}

		// Property 2: bit-identical estimates.
		got, lin := e.Estimate(q), e.EstimateLinear(q)
		if math.Float64bits(got) != math.Float64bits(lin) {
			t.Fatalf("Estimate(%v) = %v, linear %v", q, got, lin)
		}
	})
}

// fuzzFloats decodes data into finite float64s in a bounded range,
// mapping NaN/Inf/overflow deterministically instead of rejecting so
// the fuzzer keeps its coverage.
func fuzzFloats(data []byte, max int) []float64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	vals := make([]float64, n)
	for i := range vals {
		u := binary.LittleEndian.Uint64(data[i*8:])
		v := math.Float64frombits(u)
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
			v = float64(u%2_000_000)/1000 - 1000
		}
		vals[i] = v
	}
	return vals
}

// fuzzRect orders the coordinates into a valid rectangle.
func fuzzRect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.NewRect(x1, y1, x2, y2)
}
