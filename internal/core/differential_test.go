package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/metrics"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// Differential suite: every estimator runs against the exact oracle
// (internal/exact) over paper-style workloads, and its average
// relative error — the paper's Σ|actual−estimate| / Σactual metric —
// must stay inside a per-estimator envelope.
//
// The envelopes are regression ceilings, not aspirations: they were
// set at roughly 1.5x the observed error of the current
// implementation, so an accuracy regression (a broken split search, a
// mis-clipped extension, a density bug) trips the suite while normal
// cross-platform float noise does not. The relative ordering asserted
// in TestDifferentialMinSkewBeatsBaselines is the paper's headline
// claim and is checked separately from the absolute ceilings.
type envelope struct {
	uniform, equiArea, equiCount, rtree, minSkew float64
}

// differentialCase is one dataset/workload pairing.
type differentialCase struct {
	name string
	data *dataset.Distribution
	// env holds the per-estimator average-relative-error ceilings for
	// this dataset (dimensionless fractions; 0.35 means 35%).
	env envelope
}

func differentialCases() []differentialCase {
	return []differentialCase{
		{
			// Highly skewed point-like clusters: the regime the paper
			// built Min-Skew for. Uniform is far off; partitioned
			// histograms recover most of the error.
			name: "charminar-skewed",
			data: synthetic.Charminar(6000, 1000, 10, 41),
			env:  envelope{uniform: 1.35, equiArea: 0.47, equiCount: 0.30, rtree: 0.12, minSkew: 0.10},
		},
		{
			// Uniform data: every technique must be accurate; this pins
			// the uniformity-assumption formulas themselves.
			name: "uniform",
			data: synthetic.Uniform(6000, 1000, 2, 10, 43),
			env:  envelope{uniform: 0.15, equiArea: 0.15, equiCount: 0.15, rtree: 0.15, minSkew: 0.15},
		},
		{
			// Mixed clusters over a uniform floor: intermediate skew.
			name: "clusters",
			data: synthetic.Clusters(6000, 8, 1000, 0.05, 1, 20, 47),
			// Equi-Count's ceiling is the loosest: equal-count slabs
			// straddle cluster boundaries, the failure mode Section 3.3
			// describes, so its honest error here is ~0.6.
			env: envelope{uniform: 1.30, equiArea: 0.40, equiCount: 0.95, rtree: 0.30, minSkew: 0.15},
		},
	}
}

// runDifferential builds the five estimators over tc.data, replays a
// paper-style workload against the exact oracle, and returns each
// estimator's average relative error.
func runDifferential(t *testing.T, tc differentialCase, qsize float64) map[string]float64 {
	t.Helper()
	queries, err := workload.Generate(tc.data, workload.Config{
		Count: 400, QSize: qsize, Seed: 4099, Clamp: true,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	oracle := exact.NewAuto(tc.data)
	actual := make([]int, len(queries))
	for i, q := range queries {
		actual[i] = oracle.Count(q)
	}
	ests := buildNamed(t, tc.data, 50)
	out := make(map[string]float64, len(ests))
	for name, e := range ests {
		estimates := make([]float64, len(queries))
		for i, q := range queries {
			estimates[i] = e.Estimate(q)
		}
		avg, err := metrics.AvgRelativeError(actual, estimates)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = avg
	}
	return out
}

// TestDifferentialErrorEnvelopes checks the absolute ceilings on the
// paper's 10% query-size workload.
func TestDifferentialErrorEnvelopes(t *testing.T) {
	for _, tc := range differentialCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := runDifferential(t, tc, 0.10)
			bounds := map[string]float64{
				"Uniform":    tc.env.uniform,
				"Equi-Area":  tc.env.equiArea,
				"Equi-Count": tc.env.equiCount,
				"R-Tree":     tc.env.rtree,
				"Min-Skew":   tc.env.minSkew,
			}
			for name, limit := range bounds {
				err := got[name]
				t.Logf("%-10s avg relative error %.4f (ceiling %.2f)", name, err, limit)
				if err > limit {
					t.Errorf("%s: avg relative error %.4f exceeds envelope %.2f", name, err, limit)
				}
			}
		})
	}
}

// TestDifferentialMinSkewBeatsBaselines pins the paper's ordering on
// skewed data: Min-Skew must beat the Uniform baseline by a wide
// margin and never trail far behind the best partitioned competitor.
func TestDifferentialMinSkewBeatsBaselines(t *testing.T) {
	tc := differentialCases()[0] // charminar-skewed
	got := runDifferential(t, tc, 0.10)
	if got["Min-Skew"] > 0.5*got["Uniform"] {
		t.Errorf("Min-Skew error %.4f not well below Uniform %.4f", got["Min-Skew"], got["Uniform"])
	}
	best := got["Equi-Count"]
	for _, name := range []string{"Equi-Area", "R-Tree"} {
		if got[name] < best {
			best = got[name]
		}
	}
	if got["Min-Skew"] > 1.5*best {
		t.Errorf("Min-Skew error %.4f trails best competitor %.4f by more than 50%%",
			got["Min-Skew"], best)
	}
}
