package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// The Equi-Area and Equi-Count groupings of Section 3.3 are binary
// space partitionings built directly over the rectangles (they require
// the input in memory, one of the drawbacks Section 3.5 notes). Both
// repeatedly split one bucket in two, assigning rectangles by where
// their centers lie and recomputing the bucket MBRs so the partition
// tracks the data rather than the empty space:
//
//   - Equi-Area picks the bucket with the longest dimension among all
//     current buckets and halves its MBR along that dimension;
//   - Equi-Count picks the bucket and dimension with the highest
//     projected rectangle count (distinct projected centers) and splits
//     at the median so the halves hold equal numbers of rectangles.

// workBucket is a bucket under construction.
type workBucket struct {
	box     geom.Rect // MBR of member rectangles
	members []int32
	// Cached distinct projected-center counts (Equi-Count criterion).
	distinctX, distinctY int
	// Dimensions that have already failed to split.
	deadX, deadY bool
}

func newWorkBucket(d *dataset.Distribution, members []int32, wantDistinct bool) *workBucket {
	wb := &workBucket{members: members}
	for i, idx := range members {
		r := d.Rect(int(idx))
		if i == 0 {
			wb.box = r
		} else {
			wb.box = wb.box.Union(r)
		}
	}
	if wantDistinct {
		wb.distinctX = distinctProjected(d, members, true)
		wb.distinctY = distinctProjected(d, members, false)
	}
	return wb
}

// distinctProjected counts distinct center coordinates of the members
// along one axis — the paper's "projected rectangle count".
func distinctProjected(d *dataset.Distribution, members []int32, xAxis bool) int {
	vals := make([]float64, len(members))
	for i, idx := range members {
		c := d.Rect(int(idx)).Center()
		if xAxis {
			vals[i] = c.X
		} else {
			vals[i] = c.Y
		}
	}
	sort.Float64s(vals)
	n := 0
	for i, v := range vals {
		if i == 0 || !geom.FloatEq(v, vals[i-1]) {
			n++
		}
	}
	return n
}

// splitAt partitions the members by center coordinate: proj <= cut goes
// left. It returns nil slices when one side would be empty.
func splitAt(d *dataset.Distribution, members []int32, xAxis bool, cut float64) (left, right []int32) {
	for _, idx := range members {
		c := d.Rect(int(idx)).Center()
		v := c.X
		if !xAxis {
			v = c.Y
		}
		if v <= cut {
			left = append(left, idx)
		} else {
			right = append(right, idx)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil
	}
	return left, right
}

// medianCut returns a center-coordinate threshold that separates the
// members into two non-empty halves as evenly as possible, and whether
// such a cut exists (it does not when all projections coincide).
func medianCut(d *dataset.Distribution, members []int32, xAxis bool) (float64, bool) {
	vals := make([]float64, len(members))
	for i, idx := range members {
		c := d.Rect(int(idx)).Center()
		if xAxis {
			vals[i] = c.X
		} else {
			vals[i] = c.Y
		}
	}
	sort.Float64s(vals)
	if geom.FloatEq(vals[0], vals[len(vals)-1]) {
		return 0, false
	}
	// The ideal cut is after the midpoint; move it to the nearest value
	// boundary so both sides are non-empty.
	mid := len(vals) / 2
	cut := vals[mid-1]
	if geom.FloatEq(cut, vals[len(vals)-1]) {
		// Everything from mid-1 up is the same value; cut below it.
		for i := mid - 1; i >= 0; i-- {
			if vals[i] < cut {
				return vals[i], true
			}
		}
		return 0, false
	}
	return cut, true
}

// NewEquiArea builds the Equi-Area grouping with the given bucket
// budget.
func NewEquiArea(d *dataset.Distribution, buckets int) (*BucketEstimator, error) {
	return buildEqui(d, buckets, "Equi-Area", false)
}

// NewEquiCount builds the Equi-Count grouping with the given bucket
// budget.
func NewEquiCount(d *dataset.Distribution, buckets int) (*BucketEstimator, error) {
	return buildEqui(d, buckets, "Equi-Count", true)
}

func buildEqui(d *dataset.Distribution, buckets int, name string, byCount bool) (*BucketEstimator, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("core: %s needs at least one bucket, got %d", name, buckets)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: %s over empty distribution", name)
	}
	all := make([]int32, d.N())
	for i := range all {
		all[i] = int32(i)
	}
	work := []*workBucket{newWorkBucket(d, all, byCount)}

	for len(work) < buckets {
		// Choose the bucket and dimension per the technique's criterion.
		bi, xAxis, ok := chooseSplit(work, byCount)
		if !ok {
			break // nothing splittable remains
		}
		wb := work[bi]
		var left, right []int32
		if byCount {
			if cut, ok := medianCut(d, wb.members, xAxis); ok {
				left, right = splitAt(d, wb.members, xAxis, cut)
			}
		} else {
			// Equi-Area: halve the bucket MBR.
			var cut float64
			if xAxis {
				cut = (wb.box.MinX + wb.box.MaxX) / 2
			} else {
				cut = (wb.box.MinY + wb.box.MaxY) / 2
			}
			left, right = splitAt(d, wb.members, xAxis, cut)
			if left == nil {
				// All centers landed on one side of the geometric
				// midpoint; fall back to a median cut so the split
				// still makes progress.
				if cut, ok := medianCut(d, wb.members, xAxis); ok {
					left, right = splitAt(d, wb.members, xAxis, cut)
				}
			}
		}
		if left == nil {
			// This dimension cannot separate the members; disable it
			// and try again.
			if xAxis {
				wb.deadX = true
			} else {
				wb.deadY = true
			}
			continue
		}
		work[bi] = newWorkBucket(d, left, byCount)
		work = append(work, newWorkBucket(d, right, byCount))
	}

	out := make([]Bucket, len(work))
	for i, wb := range work {
		members := make([]geom.Rect, len(wb.members))
		for j, idx := range wb.members {
			members[j] = d.Rect(int(idx))
		}
		out[i] = summarize(wb.box, members)
	}
	return NewBucketEstimator(name, out), nil
}

// chooseSplit picks the next bucket and axis: longest dimension for
// Equi-Area, highest projected count for Equi-Count. Buckets with one
// member or dead axes are skipped.
func chooseSplit(work []*workBucket, byCount bool) (idx int, xAxis bool, ok bool) {
	best := -1.0
	for i, wb := range work {
		if len(wb.members) < 2 {
			continue
		}
		var scoreX, scoreY float64
		if byCount {
			scoreX, scoreY = float64(wb.distinctX), float64(wb.distinctY)
			// A dimension with a single distinct value cannot split.
			if wb.distinctX < 2 {
				scoreX = -1
			}
			if wb.distinctY < 2 {
				scoreY = -1
			}
		} else {
			scoreX, scoreY = wb.box.Width(), wb.box.Height()
		}
		if wb.deadX {
			scoreX = -1
		}
		if wb.deadY {
			scoreY = -1
		}
		if scoreX > best {
			best, idx, xAxis, ok = scoreX, i, true, true
		}
		if scoreY > best {
			best, idx, xAxis, ok = scoreY, i, false, true
		}
	}
	if best <= 0 {
		return 0, false, false
	}
	return idx, xAxis, ok
}
