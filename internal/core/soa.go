package core

import (
	"math/bits"
	"sync"

	"repro/internal/geom"
)

// Read-optimized estimate hot path. A BucketEstimator's Estimate is
// the inner loop of the serving tier — millions of calls between
// rebuilds — so the bucket list is finalized into two derived
// structures at construction:
//
//   - soaBuckets: struct-of-arrays mirrors of the per-bucket fields
//     (box coordinates, precomputed half-extents, count as float64,
//     density, box area), so the walk streams through flat float64
//     slices instead of striding over 72-byte Bucket structs;
//   - bucketIndex: a coarse uniform grid over the bucket boxes, so a
//     query visits only the O(k) buckets whose cells it can reach
//     instead of all B.
//
// Both are derived state: they are rebuilt from the bucket list on
// construction, kept in sync by the incremental-maintenance methods,
// and never serialized (the SPHIST1/SPHIST2 wire formats carry only
// the buckets).
//
// # Bit-identical equivalence
//
// The indexed walk must be indistinguishable from the retained linear
// reference (EstimateLinear): it visits the candidate buckets in
// ascending bucket order and evaluates exactly the IEEE-754 operation
// sequence of Bucket.Estimate, and the index may only prune buckets
// whose contribution is exactly zero — the query expanded by the
// histogram-wide maximum half-extent cannot reach their box — so the
// float sum is bit-for-bit the linear scan's (skipped zeros cannot
// change a non-negative partial sum). The differential tests assert
// this with math.Float64bits.
//
// # Scratch ownership
//
// The walk needs one bitmap of B bits to deduplicate bucket ids
// across grid cells. Estimate borrows it from a sync.Pool (zero
// allocations steady-state, safe for any number of concurrent
// callers); EstimateBatch checks one scratch out per batch and reuses
// it across queries, so a caller amortizes even the cold-pool
// allocation over the whole batch.

// soaBuckets mirrors the bucket fields as parallel slices.
type soaBuckets struct {
	xlo, ylo, xhi, yhi []float64
	// halfW and halfH are AvgW/2 and AvgH/2 — the query expansion of
	// Section 3.1, precomputed (division by two is exact).
	halfW, halfH []float64
	// count is float64(Count), the conversion Bucket.Estimate performs.
	count   []float64
	density []float64
	// boxArea is Box.Area() evaluated exactly as the reference does;
	// zeroArea caches geom.IsZero(boxArea) for the degenerate branch.
	boxArea  []float64
	zeroArea []bool
}

// syncFrom refreshes bucket i's mirrors after maintenance mutated the
// authoritative Bucket.
func (s *soaBuckets) syncFrom(b *Bucket, i int) {
	s.halfW[i] = b.AvgW / 2
	s.halfH[i] = b.AvgH / 2
	s.count[i] = float64(b.Count)
	s.density[i] = b.AvgDensity
}

// build populates the mirrors from a finished bucket list.
func (s *soaBuckets) build(buckets []Bucket) {
	n := len(buckets)
	s.xlo = make([]float64, n)
	s.ylo = make([]float64, n)
	s.xhi = make([]float64, n)
	s.yhi = make([]float64, n)
	s.halfW = make([]float64, n)
	s.halfH = make([]float64, n)
	s.count = make([]float64, n)
	s.density = make([]float64, n)
	s.boxArea = make([]float64, n)
	s.zeroArea = make([]bool, n)
	for i := range buckets {
		b := &buckets[i]
		s.xlo[i] = b.Box.MinX
		s.ylo[i] = b.Box.MinY
		s.xhi[i] = b.Box.MaxX
		s.yhi[i] = b.Box.MaxY
		area := b.Box.Area()
		s.boxArea[i] = area
		s.zeroArea[i] = geom.IsZero(area)
		s.syncFrom(b, i)
	}
}

// estimateAt evaluates bucket i's contribution to q, replicating
// Bucket.Estimate operation for operation so the result is
// bit-identical. isPoint is the hoisted per-query degenerate check;
// the expansion never needs Expand's collapse normalization because
// half-extents are non-negative.
func (e *BucketEstimator) estimateAt(i int, q geom.Rect, isPoint bool) float64 {
	s := &e.soa
	cnt := s.count[i]
	//spatialvet:ignore floatcmp count mirrors the integer Bucket.Count exactly; == 0 must match the reference's b.Count == 0, a tolerance would diverge
	if cnt == 0 {
		return 0
	}
	if isPoint &&
		s.xlo[i] <= q.MinX && q.MinX <= s.xhi[i] &&
		s.ylo[i] <= q.MinY && q.MinY <= s.yhi[i] {
		// Point query inside the box: the average spatial density
		// (Section 3.1). Points outside fall through to the extended
		// formula, as in the reference.
		return s.density[i]
	}
	// ext := q.Expand(AvgW/2, AvgH/2); inter, ok := ext.Intersection(Box)
	ixlo := q.MinX - s.halfW[i]
	if bl := s.xlo[i]; bl > ixlo {
		ixlo = bl
	}
	ixhi := q.MaxX + s.halfW[i]
	if bh := s.xhi[i]; bh < ixhi {
		ixhi = bh
	}
	iylo := q.MinY - s.halfH[i]
	if bl := s.ylo[i]; bl > iylo {
		iylo = bl
	}
	iyhi := q.MaxY + s.halfH[i]
	if bh := s.yhi[i]; bh < iyhi {
		iyhi = bh
	}
	if ixlo > ixhi || iylo > iyhi {
		return 0
	}
	if s.zeroArea[i] {
		// Degenerate bucket: every rectangle is assumed to intersect.
		return cnt
	}
	return cnt * ((ixhi - ixlo) * (iyhi - iylo)) / s.boxArea[i]
}

// bucketIndex is a coarse uniform grid over the bucket boxes in CSR
// layout: cell c's bucket ids are cellIDs[cellStart[c]:cellStart[c+1]],
// ascending. Routing expands the query by the histogram-wide maximum
// half-extents, so every bucket whose own (smaller or equal) expansion
// could reach the query is among the candidates — pruning is always
// conservative. The geometry is immutable (bucket boxes never change);
// only maxHalfW/maxHalfH may grow when maintenance raises an average
// extent, under the same external synchronization the maintenance
// methods already require.
type bucketIndex struct {
	minX, minY float64
	invW, invH float64 // cells per coordinate unit; 0 collapses the axis
	nx, ny     int
	cellStart  []int32
	cellIDs    []int32
	maxHalfW   float64
	maxHalfH   float64
	// words is the scratch bitmap length: (B+63)/64.
	words int
}

// maxIndexEntries bounds the CSR size relative to the bucket count;
// when huge buckets would overflow it (each bucket is charged one
// entry per covered cell) the grid is coarsened until they fit.
const maxIndexEntries = 32

// cellX maps an x coordinate to its grid column, clamped to the grid.
// The mapping is monotone, so two real intervals that overlap always
// map to overlapping cell ranges — the conservativeness proof of the
// routing step. Non-positive and NaN offsets clamp to column zero.
func (ix *bucketIndex) cellX(x float64) int {
	f := (x - ix.minX) * ix.invW
	if !(f > 0) {
		return 0
	}
	if f >= float64(ix.nx) {
		return ix.nx - 1
	}
	return int(f)
}

// cellY is cellX for rows.
func (ix *bucketIndex) cellY(y float64) int {
	f := (y - ix.minY) * ix.invH
	if !(f > 0) {
		return 0
	}
	if f >= float64(ix.ny) {
		return ix.ny - 1
	}
	return int(f)
}

// buildIndex constructs the grid over a finished bucket list, or
// returns nil for an empty one (the walk then degenerates to the
// trivial empty scan).
func buildIndex(buckets []Bucket, soa *soaBuckets) *bucketIndex {
	n := len(buckets)
	if n == 0 {
		return nil
	}
	bounds := buckets[0].Box
	for i := 1; i < n; i++ {
		bounds = bounds.Union(buckets[i].Box)
	}
	ix := &bucketIndex{
		minX:  bounds.MinX,
		minY:  bounds.MinY,
		words: (n + 63) / 64,
	}
	for i := range buckets {
		if hw := soa.halfW[i]; hw > ix.maxHalfW {
			ix.maxHalfW = hw
		}
		if hh := soa.halfH[i]; hh > ix.maxHalfH {
			ix.maxHalfH = hh
		}
	}
	// Start near sqrt(B) cells per side and coarsen until the CSR fits
	// the entry budget; a 1x1 grid always fits (exactly B entries).
	side := 1
	for side*side < n {
		side++
	}
	if side > 512 {
		side = 512
	}
	width, height := bounds.Width(), bounds.Height()
	for {
		ix.nx, ix.ny = side, side
		ix.invW, ix.invH = 0, 0
		if width > 0 {
			ix.invW = float64(ix.nx) / width
		}
		if height > 0 {
			ix.invH = float64(ix.ny) / height
		}
		entries, ok := countEntries(buckets, ix, n*maxIndexEntries+4096)
		if ok {
			fillIndex(buckets, ix, entries)
			return ix
		}
		side /= 2
		if side < 1 {
			side = 1
		}
	}
}

// countEntries runs the counting pass of the CSR build, aborting early
// when the budget is exceeded (the caller then coarsens the grid).
func countEntries(buckets []Bucket, ix *bucketIndex, budget int) (int, bool) {
	total := 0
	for i := range buckets {
		b := &buckets[i]
		cells := (ix.cellX(b.Box.MaxX) - ix.cellX(b.Box.MinX) + 1) *
			(ix.cellY(b.Box.MaxY) - ix.cellY(b.Box.MinY) + 1)
		total += cells
		if total > budget && ix.nx > 1 {
			return 0, false
		}
	}
	return total, true
}

// fillIndex runs the filling pass: per-cell counts, prefix sums, then
// ids appended in ascending bucket order (so each cell's candidate
// list is sorted, which bucketFor's first-match contract relies on).
func fillIndex(buckets []Bucket, ix *bucketIndex, entries int) {
	ncells := ix.nx * ix.ny
	counts := make([]int32, ncells+1)
	for i := range buckets {
		b := &buckets[i]
		x0, x1 := ix.cellX(b.Box.MinX), ix.cellX(b.Box.MaxX)
		y0, y1 := ix.cellY(b.Box.MinY), ix.cellY(b.Box.MaxY)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				counts[cy*ix.nx+cx+1]++
			}
		}
	}
	for c := 1; c <= ncells; c++ {
		counts[c] += counts[c-1]
	}
	ix.cellStart = counts
	ix.cellIDs = make([]int32, entries)
	next := make([]int32, ncells)
	for c := range next {
		next[c] = counts[c]
	}
	for i := range buckets {
		b := &buckets[i]
		x0, x1 := ix.cellX(b.Box.MinX), ix.cellX(b.Box.MaxX)
		y0, y1 := ix.cellY(b.Box.MinY), ix.cellY(b.Box.MaxY)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*ix.nx + cx
				ix.cellIDs[next[c]] = int32(i)
				next[c]++
			}
		}
	}
}

// walkScratch is the per-query candidate bitmap, pooled so the hot
// path never allocates.
type walkScratch struct {
	words []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(walkScratch) }}

// getScratch checks a bitmap out of the pool, sized for this
// histogram.
func (e *BucketEstimator) getScratch() *walkScratch {
	s := scratchPool.Get().(*walkScratch)
	if e.idx != nil && cap(s.words) < e.idx.words {
		s.words = make([]uint64, e.idx.words)
	}
	return s
}

// putScratch returns the bitmap to the pool.
func putScratch(s *walkScratch) { scratchPool.Put(s) }

// finalize builds the derived read-optimized state from the bucket
// list. Called once at construction; the buckets' boxes are immutable
// afterwards (maintenance only mutates the statistics, via
// syncDerived).
func (e *BucketEstimator) finalize() {
	e.soa.build(e.buckets)
	e.idx = buildIndex(e.buckets, &e.soa)
}

// syncDerived refreshes bucket i's SoA mirrors and, when an average
// extent grew past the indexed maximum, widens the routing expansion
// so pruning stays conservative. Shrinking extents leave the maxima
// alone — a too-wide expansion only costs candidates, never
// correctness.
func (e *BucketEstimator) syncDerived(i int) {
	b := &e.buckets[i]
	e.soa.syncFrom(b, i)
	if e.idx == nil {
		return
	}
	if hw := e.soa.halfW[i]; hw > e.idx.maxHalfW {
		e.idx.maxHalfW = hw
	}
	if hh := e.soa.halfH[i]; hh > e.idx.maxHalfH {
		e.idx.maxHalfH = hh
	}
}

// isPointQuery hoists Bucket.Estimate's degenerate-query test, which
// depends only on q.
func isPointQuery(q geom.Rect) bool {
	return geom.IsZero(q.Area()) && geom.IsZero(q.Width()) && geom.IsZero(q.Height())
}

// walkIndexed is the indexed, allocation-free estimate walk: route the
// expanded query through the grid, mark candidate buckets in the
// scratch bitmap, then evaluate them in ascending bucket order.
func (e *BucketEstimator) walkIndexed(q geom.Rect, s *walkScratch) (float64, WalkStats) {
	st := WalkStats{Buckets: len(e.buckets)}
	ix := e.idx
	if ix == nil {
		return 0, st
	}
	isPoint := isPointQuery(q)
	x0 := ix.cellX(q.MinX - ix.maxHalfW)
	x1 := ix.cellX(q.MaxX + ix.maxHalfW)
	y0 := ix.cellY(q.MinY - ix.maxHalfH)
	y1 := ix.cellY(q.MaxY + ix.maxHalfH)
	var total float64
	if x0 == 0 && y0 == 0 && x1 == ix.nx-1 && y1 == ix.ny-1 {
		// The expanded query covers every cell — the common
		// whole-domain query. Skip the bitmap and stream the SoA
		// directly; order and operations match the reference exactly.
		for i := range e.soa.count {
			c := e.estimateAt(i, q, isPoint)
			if c > 0 {
				st.Contributing++
			}
			total += c
		}
		st.Visited = len(e.soa.count)
		return total, st
	}
	words := s.words[:ix.words]
	for i := range words {
		words[i] = 0
	}
	for cy := y0; cy <= y1; cy++ {
		base := cy * ix.nx
		for cx := x0; cx <= x1; cx++ {
			c := base + cx
			for _, id := range ix.cellIDs[ix.cellStart[c]:ix.cellStart[c+1]] {
				words[id>>6] |= 1 << (uint(id) & 63)
			}
		}
	}
	// Iterating set bits word-by-word visits candidates in ascending
	// bucket order; pruned buckets contribute exactly zero in the
	// linear scan, and a non-negative partial sum is unchanged by
	// adding +0.0, so the total is bit-identical to the reference.
	for w, word := range words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			i := w<<6 + bit
			st.Visited++
			c := e.estimateAt(i, q, isPoint)
			if c > 0 {
				st.Contributing++
			}
			total += c
		}
	}
	return total, st
}

// EstimateLinear is the retained reference implementation: the linear
// scan over every bucket via Bucket.Estimate. The differential tests
// hold the indexed hot path bit-identical to it; it is exported so
// benchmarks and external verification can do the same.
func (e *BucketEstimator) EstimateLinear(q geom.Rect) float64 {
	total, _ := e.EstimateStatsLinear(q)
	return total
}

// EstimateStatsLinear is EstimateLinear plus walk statistics; Visited
// always equals Buckets (nothing is pruned).
func (e *BucketEstimator) EstimateStatsLinear(q geom.Rect) (float64, WalkStats) {
	var total float64
	st := WalkStats{Buckets: len(e.buckets), Visited: len(e.buckets)}
	for _, b := range e.buckets {
		c := b.Estimate(q)
		if c > 0 {
			st.Contributing++
		}
		total += c
	}
	return total, st
}

// EstimateBatch estimates every query in qs, appending the results to
// dst (pass nil, or a slice with spare capacity to avoid the growth
// allocation) and returning the extended slice. One scratch is checked
// out for the whole batch, so per-query cost is allocation-free and
// even a cold pool amortizes to well under one allocation per query.
func (e *BucketEstimator) EstimateBatch(qs []geom.Rect, dst []float64) []float64 {
	s := e.getScratch()
	for _, q := range qs {
		v, _ := e.walkIndexed(q, s)
		dst = append(dst, v)
	}
	putScratch(s)
	return dst
}
