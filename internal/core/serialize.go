package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
)

// Histogram serialization: database systems persist statistics in the
// catalog between sessions, and the distributed tier ships them
// between nodes. The binary format is versioned and self-describing:
//
//	magic "SPHIST2\n"
//	uint16 format version (currently 2)
//	uint16 name length, name bytes
//	uint32 bucket count
//	per bucket: 4 float64 box coords, uint64 count,
//	            3 float64 (avg width, avg height, avg density)
//	uint32 CRC-32C checksum of everything after the magic
//
// All integers are big-endian; floats are IEEE-754 bits. Readers also
// accept the legacy "SPHIST1\n" format, which is identical except that
// it carries no version field and no checksum.

const (
	histMagicV1 = "SPHIST1\n"
	histMagicV2 = "SPHIST2\n"

	// histVersion is the version stamped into new snapshots. Bump it
	// when the payload layout changes; readers reject versions they do
	// not understand rather than guessing.
	histVersion = 2
)

// Sentinel errors for snapshot decoding. Every decode failure wraps
// one of these, so callers can distinguish "not a snapshot at all"
// from "a snapshot from the future" from "bits rotted in transit".
var (
	// ErrSnapshotMagic: the payload does not start with a known magic.
	ErrSnapshotMagic = errors.New("core: unrecognized histogram snapshot magic")
	// ErrSnapshotVersion: recognized magic, unsupported format version.
	ErrSnapshotVersion = errors.New("core: unsupported histogram snapshot version")
	// ErrSnapshotChecksum: payload parsed but the trailing CRC-32C
	// does not match — corruption in storage or transit.
	ErrSnapshotChecksum = errors.New("core: histogram snapshot checksum mismatch")
	// ErrSnapshotCorrupt: truncated or semantically invalid payload
	// (impossible boxes, negative statistics, implausible counts).
	ErrSnapshotCorrupt = errors.New("core: corrupt histogram snapshot")
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64 and with better error-detection spread than IEEE.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the histogram in the current (v2) format. It
// implements io.WriterTo.
func (e *BucketEstimator) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	sum := crc32.New(crcTable)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	// Checksummed write: everything between magic and trailer.
	writeSum := func(p []byte) error {
		_, _ = sum.Write(p) // hash.Hash.Write never errors
		return write(p)
	}
	if err := write([]byte(histMagicV2)); err != nil {
		return n, err
	}
	if len(e.name) > math.MaxUint16 {
		return n, fmt.Errorf("core: histogram name too long (%d bytes)", len(e.name))
	}
	var buf [8]byte
	binary.BigEndian.PutUint16(buf[:2], histVersion)
	if err := writeSum(buf[:2]); err != nil {
		return n, err
	}
	binary.BigEndian.PutUint16(buf[:2], uint16(len(e.name)))
	if err := writeSum(buf[:2]); err != nil {
		return n, err
	}
	if err := writeSum([]byte(e.name)); err != nil {
		return n, err
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(e.buckets)))
	if err := writeSum(buf[:4]); err != nil {
		return n, err
	}
	for _, b := range e.buckets {
		for _, v := range [...]float64{b.Box.MinX, b.Box.MinY, b.Box.MaxX, b.Box.MaxY} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			if err := writeSum(buf[:]); err != nil {
				return n, err
			}
		}
		binary.BigEndian.PutUint64(buf[:], uint64(b.Count))
		if err := writeSum(buf[:]); err != nil {
			return n, err
		}
		for _, v := range [...]float64{b.AvgW, b.AvgH, b.AvgDensity} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			if err := writeSum(buf[:]); err != nil {
				return n, err
			}
		}
	}
	binary.BigEndian.PutUint32(buf[:4], sum.Sum32())
	if err := write(buf[:4]); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// crcReader tees everything read through a running CRC so streaming
// decode and checksum verification share one pass.
type crcReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		_, _ = c.h.Write(p[:n]) // hash.Hash.Write never errors
	}
	return n, err
}

// ReadHistogram deserializes a histogram written by WriteTo. It
// accepts the current v2 format (verifying the trailing checksum) and
// the legacy unchecksummed v1 format. Failures wrap ErrSnapshotMagic,
// ErrSnapshotVersion, ErrSnapshotChecksum, or ErrSnapshotCorrupt.
func ReadHistogram(r io.Reader) (*BucketEstimator, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(histMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: read magic: %v", ErrSnapshotMagic, err)
	}
	switch string(magic) {
	case histMagicV1:
		// Legacy format: bare payload, no version, no checksum.
		return readHistogramPayload(br)
	case histMagicV2:
	default:
		return nil, fmt.Errorf("%w: %q", ErrSnapshotMagic, magic)
	}
	sum := crc32.New(crcTable)
	cr := &crcReader{r: br, h: sum}
	var buf [2]byte
	if _, err := io.ReadFull(cr, buf[:]); err != nil {
		return nil, fmt.Errorf("%w: read version: %v", ErrSnapshotCorrupt, err)
	}
	if v := binary.BigEndian.Uint16(buf[:]); v != histVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrSnapshotVersion, v, histVersion)
	}
	e, err := readHistogramPayload(cr)
	if err != nil {
		return nil, err
	}
	want := sum.Sum32() // trailer is read outside the CRC tee
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: read checksum: %v", ErrSnapshotCorrupt, err)
	}
	if got := binary.BigEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrSnapshotChecksum, got, want)
	}
	return e, nil
}

// readHistogramPayload decodes the common name/count/buckets body.
// Validation is inline with the stream, so on a corrupt v2 payload a
// semantic error may surface before the checksum is ever reached —
// both wrap ErrSnapshotCorrupt-family sentinels, so callers that only
// care about "bad payload" need not distinguish.
func readHistogramPayload(r io.Reader) (*BucketEstimator, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return nil, fmt.Errorf("%w: read name length: %v", ErrSnapshotCorrupt, err)
	}
	nameLen := binary.BigEndian.Uint16(buf[:2])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("%w: read name: %v", ErrSnapshotCorrupt, err)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: read bucket count: %v", ErrSnapshotCorrupt, err)
	}
	count := binary.BigEndian.Uint32(buf[:4])
	const maxBuckets = 1 << 24
	if count > maxBuckets {
		return nil, fmt.Errorf("%w: implausible bucket count %d", ErrSnapshotCorrupt, count)
	}
	readF := func() (float64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
	}
	// The count is untrusted: bound the preallocation and let append
	// grow with actual payload.
	capHint := count
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	buckets := make([]Bucket, 0, capHint)
	for i := uint32(0); i < count; i++ {
		var vals [4]float64
		for j := range vals {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("%w: bucket %d box: %v", ErrSnapshotCorrupt, i, err)
			}
			vals[j] = v
		}
		box := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if !box.Valid() {
			return nil, fmt.Errorf("%w: bucket %d has invalid box %v", ErrSnapshotCorrupt, i, box)
		}
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: bucket %d count: %v", ErrSnapshotCorrupt, i, err)
		}
		cnt := binary.BigEndian.Uint64(buf[:])
		if cnt > math.MaxInt32 {
			return nil, fmt.Errorf("%w: bucket %d implausible count %d", ErrSnapshotCorrupt, i, cnt)
		}
		w, err := readF()
		if err != nil {
			return nil, fmt.Errorf("%w: bucket %d stats: %v", ErrSnapshotCorrupt, i, err)
		}
		h, err := readF()
		if err != nil {
			return nil, fmt.Errorf("%w: bucket %d stats: %v", ErrSnapshotCorrupt, i, err)
		}
		dens, err := readF()
		if err != nil {
			return nil, fmt.Errorf("%w: bucket %d stats: %v", ErrSnapshotCorrupt, i, err)
		}
		if math.IsNaN(w) || math.IsNaN(h) || math.IsNaN(dens) || w < 0 || h < 0 || dens < 0 {
			return nil, fmt.Errorf("%w: bucket %d has invalid statistics", ErrSnapshotCorrupt, i)
		}
		buckets = append(buckets, Bucket{Box: box, Count: int(cnt), AvgW: w, AvgH: h, AvgDensity: dens})
	}
	return NewBucketEstimator(string(name), buckets), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *BucketEstimator) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *BucketEstimator) UnmarshalBinary(data []byte) error {
	h, err := ReadHistogram(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*e = *h
	return nil
}
