package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Histogram serialization: database systems persist statistics in the
// catalog between sessions. The binary format is versioned and
// self-describing:
//
//	magic "SPHIST1\n"
//	uint16 name length, name bytes
//	uint32 bucket count
//	per bucket: 4 float64 box coords, uint64 count,
//	            3 float64 (avg width, avg height, avg density)
//
// All integers are big-endian; floats are IEEE-754 bits.

const histMagic = "SPHIST1\n"

// WriteTo serializes the histogram. It implements io.WriterTo.
func (e *BucketEstimator) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(histMagic)); err != nil {
		return n, err
	}
	if len(e.name) > math.MaxUint16 {
		return n, fmt.Errorf("core: histogram name too long (%d bytes)", len(e.name))
	}
	var buf [8]byte
	binary.BigEndian.PutUint16(buf[:2], uint16(len(e.name)))
	if err := write(buf[:2]); err != nil {
		return n, err
	}
	if err := write([]byte(e.name)); err != nil {
		return n, err
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(e.buckets)))
	if err := write(buf[:4]); err != nil {
		return n, err
	}
	for _, b := range e.buckets {
		for _, v := range [...]float64{b.Box.MinX, b.Box.MinY, b.Box.MaxX, b.Box.MaxY} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			if err := write(buf[:]); err != nil {
				return n, err
			}
		}
		binary.BigEndian.PutUint64(buf[:], uint64(b.Count))
		if err := write(buf[:]); err != nil {
			return n, err
		}
		for _, v := range [...]float64{b.AvgW, b.AvgH, b.AvgDensity} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			if err := write(buf[:]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadHistogram deserializes a histogram written by WriteTo.
func ReadHistogram(r io.Reader) (*BucketEstimator, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(histMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: read histogram magic: %v", err)
	}
	if string(magic) != histMagic {
		return nil, fmt.Errorf("core: bad histogram magic %q", magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:2]); err != nil {
		return nil, fmt.Errorf("core: read name length: %v", err)
	}
	nameLen := binary.BigEndian.Uint16(buf[:2])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("core: read name: %v", err)
	}
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("core: read bucket count: %v", err)
	}
	count := binary.BigEndian.Uint32(buf[:4])
	const maxBuckets = 1 << 24
	if count > maxBuckets {
		return nil, fmt.Errorf("core: implausible bucket count %d", count)
	}
	readF := func() (float64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
	}
	// The count is untrusted: bound the preallocation and let append
	// grow with actual payload.
	capHint := count
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	buckets := make([]Bucket, 0, capHint)
	for i := uint32(0); i < count; i++ {
		var vals [4]float64
		for j := range vals {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("core: bucket %d box: %v", i, err)
			}
			vals[j] = v
		}
		box := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if !box.Valid() {
			return nil, fmt.Errorf("core: bucket %d has invalid box %v", i, box)
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("core: bucket %d count: %v", i, err)
		}
		cnt := binary.BigEndian.Uint64(buf[:])
		if cnt > math.MaxInt32 {
			return nil, fmt.Errorf("core: bucket %d implausible count %d", i, cnt)
		}
		w, err := readF()
		if err != nil {
			return nil, fmt.Errorf("core: bucket %d stats: %v", i, err)
		}
		h, err := readF()
		if err != nil {
			return nil, fmt.Errorf("core: bucket %d stats: %v", i, err)
		}
		dens, err := readF()
		if err != nil {
			return nil, fmt.Errorf("core: bucket %d stats: %v", i, err)
		}
		if math.IsNaN(w) || math.IsNaN(h) || math.IsNaN(dens) || w < 0 || h < 0 || dens < 0 {
			return nil, fmt.Errorf("core: bucket %d has invalid statistics", i)
		}
		buckets = append(buckets, Bucket{Box: box, Count: int(cnt), AvgW: w, AvgH: h, AvgDensity: dens})
	}
	return NewBucketEstimator(string(name), buckets), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e *BucketEstimator) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *BucketEstimator) UnmarshalBinary(data []byte) error {
	h, err := ReadHistogram(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*e = *h
	return nil
}
