package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

func TestMinSkewConfigErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	if _, err := NewMinSkew(d, MinSkewConfig{Buckets: 0}); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := NewMinSkew(d, MinSkewConfig{Buckets: 10, Refinements: -1}); err == nil {
		t.Fatal("negative refinements should fail")
	}
	if _, err := NewMinSkew(dataset.New(nil), MinSkewConfig{Buckets: 10}); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestMinSkewBucketCountAndTiling(t *testing.T) {
	d := synthetic.Charminar(5000, 1000, 10, 1)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 50, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	bs := ms.Buckets()
	if len(bs) != 50 {
		t.Fatalf("bucket count = %d, want 50", len(bs))
	}
	// Buckets tile the MBR: total area equals MBR area, counts sum to N.
	mbr, _ := d.MBR()
	var area float64
	total := 0
	for _, b := range bs {
		area += b.Box.Area()
		total += b.Count
		if !mbr.Contains(b.Box) {
			t.Fatalf("bucket %v escapes MBR %v", b.Box, mbr)
		}
	}
	if math.Abs(area-mbr.Area())/mbr.Area() > 1e-9 {
		t.Fatalf("bucket areas sum to %g, MBR area %g", area, mbr.Area())
	}
	if total != d.N() {
		t.Fatalf("bucket counts sum to %d, want %d", total, d.N())
	}
	// Disjointness: pairwise intersection area is zero.
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			if bs[i].Box.IntersectionArea(bs[j].Box) > 1e-9 {
				t.Fatalf("buckets %d and %d overlap: %v vs %v", i, j, bs[i].Box, bs[j].Box)
			}
		}
	}
}

func TestMinSkewSingleBucketEqualsUniform(t *testing.T) {
	d := synthetic.Uniform(2000, 500, 2, 10, 2)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 1, Regions: 100})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := workload.Generate(d, workload.Config{Count: 50, QSize: 0.1, Seed: 1, Clamp: true})
	for _, q := range qs {
		a, b := ms.Estimate(q), u.Estimate(q)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("1-bucket Min-Skew %g != Uniform %g for %v", a, b, q)
		}
	}
}

// avgRelErr builds the estimator error on a standard workload.
func avgRelErr(t *testing.T, d *dataset.Distribution, e Estimator, qsize float64) float64 {
	t.Helper()
	qs, err := workload.Generate(d, workload.Config{Count: 400, QSize: qsize, Seed: 42, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.NewAuto(d)
	actual := make([]int, len(qs))
	est := make([]float64, len(qs))
	for i, q := range qs {
		actual[i] = oracle.Count(q)
		est[i] = e.Estimate(q)
	}
	rel, err := metrics.AvgRelativeError(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestMinSkewBeatsUniformOnSkewedData(t *testing.T) {
	d := synthetic.Charminar(20000, 10000, 100, 3)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 10000})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	msErr := avgRelErr(t, d, ms, 0.10)
	uErr := avgRelErr(t, d, u, 0.10)
	if msErr >= uErr {
		t.Fatalf("Min-Skew error %g not better than Uniform %g", msErr, uErr)
	}
	if msErr > 0.5 {
		t.Fatalf("Min-Skew error %g unexpectedly high", msErr)
	}
}

func TestMinSkewMoreBucketsHelp(t *testing.T) {
	d := synthetic.Charminar(20000, 10000, 100, 4)
	few, err := NewMinSkew(d, MinSkewConfig{Buckets: 10, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewMinSkew(d, MinSkewConfig{Buckets: 200, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	errFew := avgRelErr(t, d, few, 0.05)
	errMany := avgRelErr(t, d, many, 0.05)
	if errMany >= errFew {
		t.Fatalf("200 buckets (%g) not better than 10 buckets (%g)", errMany, errFew)
	}
}

func TestMinSkewFullSearchComparable(t *testing.T) {
	d := synthetic.Charminar(10000, 1000, 10, 5)
	marg, err := NewMinSkew(d, MinSkewConfig{Buckets: 60, Regions: 2500})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewMinSkew(d, MinSkewConfig{Buckets: 60, Regions: 2500, FullSplitSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	em := avgRelErr(t, d, marg, 0.10)
	ef := avgRelErr(t, d, full, 0.10)
	// The heuristics should be in the same ballpark (within 3x).
	if em > 3*ef+0.05 && em > 0.2 {
		t.Fatalf("marginal search (%g) much worse than full search (%g)", em, ef)
	}
}

func TestMinSkewProgressiveRefinement(t *testing.T) {
	d := synthetic.Charminar(20000, 10000, 100, 6)
	for _, refs := range []int{1, 2, 3} {
		ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 60, Regions: 16000, Refinements: refs})
		if err != nil {
			t.Fatalf("refinements=%d: %v", refs, err)
		}
		if got := len(ms.Buckets()); got != 60 {
			t.Fatalf("refinements=%d: bucket count %d, want 60", refs, got)
		}
		// Tiling still holds after refinement.
		mbr, _ := d.MBR()
		var area float64
		total := 0
		for _, b := range ms.Buckets() {
			area += b.Box.Area()
			total += b.Count
		}
		if math.Abs(area-mbr.Area())/mbr.Area() > 1e-9 {
			t.Fatalf("refinements=%d: area %g != MBR %g", refs, area, mbr.Area())
		}
		if total != d.N() {
			t.Fatalf("refinements=%d: counts %d != N", refs, total)
		}
	}
}

func TestMinSkewLocalGreedy(t *testing.T) {
	d := synthetic.Charminar(10000, 1000, 10, 21)
	local, err := NewMinSkew(d, MinSkewConfig{Buckets: 60, Regions: 2500, LocalGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Local budget splitting can strand budget in unsplittable
	// subtrees, so the count may fall slightly short of the target.
	if got := len(local.Buckets()); got < 50 || got > 60 {
		t.Fatalf("local-greedy bucket count = %d, want 50-60", got)
	}
	// Tiling and count invariants hold for the local variant too.
	mbr, _ := d.MBR()
	var area float64
	total := 0
	for _, b := range local.Buckets() {
		area += b.Box.Area()
		total += b.Count
	}
	if math.Abs(area-mbr.Area())/mbr.Area() > 1e-9 || total != d.N() {
		t.Fatalf("local-greedy tiling broken: area %g vs %g, count %d vs %d",
			area, mbr.Area(), total, d.N())
	}
	// Still clearly better than a single bucket.
	u, _ := NewUniform(d)
	if el, eu := avgRelErr(t, d, local, 0.10), avgRelErr(t, d, u, 0.10); el >= eu {
		t.Fatalf("local-greedy error %g not better than uniform %g", el, eu)
	}
	// Refinement combination is rejected.
	if _, err := NewMinSkew(d, MinSkewConfig{Buckets: 10, LocalGreedy: true, Refinements: 2}); err == nil {
		t.Fatal("LocalGreedy + Refinements should fail")
	}
}

func TestMinSkewEstimatesNonNegative(t *testing.T) {
	d := synthetic.Clusters(5000, 4, 1000, 0.03, 1, 10, 7)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 40, Regions: 1600})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*1200-100, rng.Float64()*1200-100
		q := geom.NewRect(x, y, x+rng.Float64()*300, y+rng.Float64()*300)
		if got := ms.Estimate(q); got < 0 || math.IsNaN(got) {
			t.Fatalf("estimate(%v) = %g", q, got)
		}
	}
	// Point queries.
	for i := 0; i < 100; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if got := ms.Estimate(geom.PointRect(p)); got < 0 || math.IsNaN(got) {
			t.Fatalf("point estimate = %g", got)
		}
	}
}

func TestMinSkewDegenerateData(t *testing.T) {
	// Identical rectangles: zero-size MBR grid must not crash.
	rects := make([]geom.Rect, 100)
	for i := range rects {
		rects[i] = geom.NewRect(5, 5, 5, 5)
	}
	d := dataset.New(rects)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 10, Regions: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.Estimate(geom.NewRect(0, 0, 10, 10)); math.Abs(got-100) > 1e-6 {
		t.Fatalf("covering query on degenerate data = %g, want 100", got)
	}
	// Single rectangle.
	one := dataset.New([]geom.Rect{geom.NewRect(0, 0, 4, 4)})
	ms, err = NewMinSkew(one, MinSkewConfig{Buckets: 5, Regions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.Estimate(geom.NewRect(1, 1, 2, 2)); got <= 0 {
		t.Fatalf("single-rect estimate = %g", got)
	}
}

func TestBestCut(t *testing.T) {
	// Two-level step: 0,0,0,9,9,9 — best cut after index 2.
	pos, red, ok := bestCut([]float64{0, 0, 0, 9, 9, 9})
	if !ok || pos != 2 {
		t.Fatalf("bestCut = %d, %v; want pos 2", pos, ok)
	}
	// SSE of whole = 6 * var([0,0,0,9,9,9]) = 6 * 20.25 = 121.5;
	// each side is constant so reduction equals total SSE.
	if math.Abs(red-121.5) > 1e-9 {
		t.Fatalf("reduction = %g, want 121.5", red)
	}
	// Uniform values: any cut gives zero reduction.
	_, red, ok = bestCut([]float64{4, 4, 4, 4})
	if !ok || red != 0 {
		t.Fatalf("uniform reduction = %g, ok=%v", red, ok)
	}
	// Too short.
	if _, _, ok := bestCut([]float64{1}); ok {
		t.Fatal("singleton should not be cuttable")
	}
}

func TestSplitBlock(t *testing.T) {
	b := grid.Block{X0: 2, Y0: 3, X1: 7, Y1: 9}
	l, r := splitBlock(b, 0, 1)
	if l != (grid.Block{X0: 2, Y0: 3, X1: 3, Y1: 9}) || r != (grid.Block{X0: 4, Y0: 3, X1: 7, Y1: 9}) {
		t.Fatalf("x split = %+v, %+v", l, r)
	}
	l, r = splitBlock(b, 1, 0)
	if l != (grid.Block{X0: 2, Y0: 3, X1: 7, Y1: 3}) || r != (grid.Block{X0: 2, Y0: 4, X1: 7, Y1: 9}) {
		t.Fatalf("y split = %+v, %+v", l, r)
	}
	// Split results must partition the cells.
	if l.Cells()+r.Cells() != b.Cells() {
		t.Fatalf("split loses cells: %d + %d != %d", l.Cells(), r.Cells(), b.Cells())
	}
}
