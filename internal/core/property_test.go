package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

// Cross-technique invariants, checked over randomized queries:
//
//  1. Estimates are finite and within [0, N].
//  2. Estimates are monotone under query containment: a larger query
//     never has a smaller estimate.
//  3. A query covering the whole extended input estimates exactly N
//     for the tiling (histogram) techniques.

func allEstimators(t *testing.T) (map[string]Estimator, int) {
	t.Helper()
	d := synthetic.Clusters(4000, 5, 1000, 0.04, 1, 20, 77)
	out := map[string]Estimator{}
	var err error
	add := func(name string, e Estimator, buildErr error) {
		if buildErr != nil {
			t.Fatalf("%s: %v", name, buildErr)
		}
		out[name] = e
	}
	var u, ea, ec, rt, ms, opt *BucketEstimator
	u, err = NewUniform(d)
	add("Uniform", u, err)
	ea, err = NewEquiArea(d, 30)
	add("Equi-Area", ea, err)
	ec, err = NewEquiCount(d, 30)
	add("Equi-Count", ec, err)
	rt, err = NewRTreeHist(d, RTreeHistConfig{Buckets: 30})
	add("R-Tree", rt, err)
	ms, err = NewMinSkew(d, MinSkewConfig{Buckets: 30, Regions: 900})
	add("Min-Skew", ms, err)
	msr, err := NewMinSkew(d, MinSkewConfig{Buckets: 30, Regions: 1024, Refinements: 2})
	add("Min-Skew-PR", msr, err)
	opt, err = NewOptimalBSP(d, OptimalBSPConfig{Buckets: 8, Regions: 100})
	add("Optimal-BSP", opt, err)
	sp, err := NewSample(d, 120, 5)
	add("Sample", sp, err)
	fr, err := NewFractal(d, 2, 7)
	add("Fractal", fr, err)
	return out, d.N()
}

func randQuery(rng *rand.Rand) geom.Rect {
	x := rng.Float64()*1400 - 200
	y := rng.Float64()*1400 - 200
	w := rng.Float64() * 600
	h := rng.Float64() * 600
	if rng.Intn(10) == 0 {
		w, h = 0, 0 // point queries too
	}
	return geom.NewRect(x, y, x+w, y+h)
}

func TestPropertyEstimatesBounded(t *testing.T) {
	ests, n := allEstimators(t)
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 400; i++ {
		q := randQuery(rng)
		for name, e := range ests {
			got := e.Estimate(q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%s.Estimate(%v) = %g", name, q, got)
			}
			if got < 0 {
				t.Fatalf("%s.Estimate(%v) = %g < 0", name, q, got)
			}
			if got > float64(n)+1e-6 {
				t.Fatalf("%s.Estimate(%v) = %g > N = %d", name, q, got, n)
			}
		}
	}
}

func TestPropertyEstimatesMonotone(t *testing.T) {
	ests, _ := allEstimators(t)
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 300; i++ {
		inner := randQuery(rng)
		// Grow the query outward by random margins.
		outer := geom.NewRect(
			inner.MinX-rng.Float64()*100, inner.MinY-rng.Float64()*100,
			inner.MaxX+rng.Float64()*100, inner.MaxY+rng.Float64()*100)
		for name, e := range ests {
			a, b := e.Estimate(inner), e.Estimate(outer)
			if a > b+1e-9 {
				t.Fatalf("%s: estimate(%v)=%g > estimate(%v)=%g despite containment",
					name, inner, a, outer, b)
			}
		}
	}
}

func TestPropertyCoveringQueryIsExactForTilings(t *testing.T) {
	ests, n := allEstimators(t)
	huge := geom.NewRect(-1e6, -1e6, 1e6, 1e6)
	// Tiling techniques account for every rectangle exactly once.
	for _, name := range []string{"Uniform", "Min-Skew", "Min-Skew-PR", "Optimal-BSP", "Sample"} {
		got := ests[name].Estimate(huge)
		if math.Abs(got-float64(n)) > 1e-6 {
			t.Errorf("%s: covering estimate = %g, want %d", name, got, n)
		}
	}
	// Equi-* and R-Tree buckets can overlap, but each rectangle still
	// belongs to exactly one bucket, so the covering estimate is N too.
	for _, name := range []string{"Equi-Area", "Equi-Count", "R-Tree"} {
		got := ests[name].Estimate(huge)
		if math.Abs(got-float64(n)) > 1e-6 {
			t.Errorf("%s: covering estimate = %g, want %d", name, got, n)
		}
	}
}
