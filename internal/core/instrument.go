package core

import (
	"time"

	"repro/internal/geom"
	"repro/internal/telemetry"
)

// instrumented wraps an Estimator with runtime telemetry: an
// estimate-latency histogram, an estimate counter, and a bucket-visit
// counter (for bucket-based estimators, counting the buckets the
// index actually let the walk examine). All series carry the caller's
// labels plus an "estimator" label with the technique name.
type instrumented struct {
	base    Estimator
	latency *telemetry.Histogram
	total   *telemetry.Counter
	visits  *telemetry.Counter
	// bucketed, when non-nil, is the wrapped bucket-based histogram;
	// its EstimateStats reports the exact per-call visit count under
	// the grid index, at no extra walk.
	bucketed *BucketEstimator
}

// Instrument wraps base so every Estimate is timed and counted in reg.
// When reg (or base) is nil it returns base unchanged, so a disabled
// telemetry path pays nothing — not even a wrapper allocation. The
// wrapper adds one time.Now call and three atomic updates per
// Estimate; Estimate remains safe for concurrent use.
func Instrument(base Estimator, reg *telemetry.Registry, labels ...telemetry.Label) Estimator {
	if reg == nil || base == nil {
		return base
	}
	ls := make([]telemetry.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, telemetry.Label{Key: "estimator", Value: base.Name()})
	in := &instrumented{
		base: base,
		latency: reg.Histogram("spatialest_estimate_seconds",
			"Latency of selectivity estimates.", telemetry.DefaultLatencyBuckets, ls...),
		total: reg.Counter("spatialest_estimates_total",
			"Selectivity estimates served.", ls...),
		visits: reg.Counter("spatialest_bucket_visits_total",
			"Histogram buckets inspected while estimating.", ls...),
	}
	if be, ok := base.(*BucketEstimator); ok {
		in.bucketed = be
	}
	return in
}

// Estimate implements Estimator.
func (in *instrumented) Estimate(q geom.Rect) float64 {
	t0 := time.Now()
	var v float64
	var visited uint64
	if in.bucketed != nil {
		var st WalkStats
		v, st = in.bucketed.EstimateStats(q)
		visited = uint64(st.Visited)
	} else {
		v = in.base.Estimate(q)
	}
	in.latency.ObserveSince(t0)
	in.total.Inc()
	in.visits.Add(visited)
	return v
}

// Name implements Estimator.
func (in *instrumented) Name() string { return in.base.Name() }

// SpaceBuckets implements Estimator.
func (in *instrumented) SpaceBuckets() float64 { return in.base.SpaceBuckets() }

// Unwrap returns the wrapped estimator.
func (in *instrumented) Unwrap() Estimator { return in.base }
