package core

import (
	"math/rand"
	"testing"

	"repro/internal/synthetic"
)

// NewSampleRand with a generator seeded like the seed argument must
// reproduce NewSample exactly.
func TestNewSampleRandMatchesSeeded(t *testing.T) {
	d := synthetic.Uniform(1000, 1000, 1, 20, 5)

	seeded, err := NewSample(d, 100, 31)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := NewSampleRand(d, 100, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Size() != injected.Size() {
		t.Fatalf("sample sizes differ: %d vs %d", seeded.Size(), injected.Size())
	}
	for i := range seeded.sample {
		if seeded.sample[i] != injected.sample[i] {
			t.Fatalf("sample %d differs: %v != %v", i, seeded.sample[i], injected.sample[i])
		}
	}
}
