package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestHistogramRoundTrip(t *testing.T) {
	d := synthetic.Charminar(3000, 1000, 10, 11)
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: 40, Regions: 900})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ms.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadHistogram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != ms.Name() {
		t.Fatalf("name = %q, want %q", back.Name(), ms.Name())
	}
	if len(back.Buckets()) != len(ms.Buckets()) {
		t.Fatalf("buckets = %d, want %d", len(back.Buckets()), len(ms.Buckets()))
	}
	for i, b := range ms.Buckets() {
		if back.Buckets()[i] != b {
			t.Fatalf("bucket %d: %+v != %+v", i, back.Buckets()[i], b)
		}
	}
	// Estimates are identical after the round trip.
	q := geom.NewRect(100, 100, 600, 700)
	if a, b := ms.Estimate(q), back.Estimate(q); a != b {
		t.Fatalf("estimates differ after round trip: %g vs %g", a, b)
	}
}

func TestHistogramMarshalBinary(t *testing.T) {
	e := NewBucketEstimator("demo", []Bucket{
		{Box: geom.NewRect(0, 0, 5, 5), Count: 7, AvgW: 1, AvgH: 2, AvgDensity: 0.3},
	})
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back BucketEstimator
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Name() != "demo" || len(back.Buckets()) != 1 || back.Buckets()[0].Count != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestReadHistogramErrors(t *testing.T) {
	good := NewBucketEstimator("x", []Bucket{
		{Box: geom.NewRect(0, 0, 1, 1), Count: 1, AvgW: 0.5, AvgH: 0.5, AvgDensity: 0.25},
	})
	raw, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		data     []byte
		sentinel error
	}{
		{"empty", nil, ErrSnapshotMagic},
		{"bad magic", []byte("NOTHIST!rest"), ErrSnapshotMagic},
		{"truncated header", raw[:11], ErrSnapshotCorrupt},
		{"truncated buckets", raw[:len(raw)-16], ErrSnapshotCorrupt},
		{"missing checksum", raw[:len(raw)-4], ErrSnapshotCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadHistogram(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, c.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, c.sentinel)
			}
		})
	}

	// Corrupt box: make MinX > MaxX. Inline payload validation fires
	// before the checksum trailer is ever reached.
	bad := append([]byte(nil), raw...)
	// Header: 8 magic + 2 version + 2 len + 1 name + 4 count = 17;
	// first float is MinX.
	const firstFloat = 17
	// Set MinX = +Inf.
	inf := math.Float64bits(math.Inf(1))
	for i := 0; i < 8; i++ {
		bad[firstFloat+i] = byte(inf >> (56 - 8*i))
	}
	if _, err := ReadHistogram(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "invalid box") {
		t.Fatalf("corrupt box error = %v", err)
	} else if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt box error %v does not wrap ErrSnapshotCorrupt", err)
	}

	// Implausible bucket count.
	badCount := append([]byte(nil), raw[:13]...)
	badCount = append(badCount, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadHistogram(bytes.NewReader(badCount)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("huge bucket count error = %v", err)
	}

	// Flipped payload bit that keeps the payload semantically valid:
	// only the checksum catches it. Byte 12 is the one-byte name "x".
	flipped := append([]byte(nil), raw...)
	flipped[12] ^= 0x01
	if _, err := ReadHistogram(bytes.NewReader(flipped)); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("flipped-name error = %v, want checksum mismatch", err)
	}

	// Unsupported future version.
	future := append([]byte(nil), raw...)
	future[8], future[9] = 0x00, 0x63 // version 99
	if _, err := ReadHistogram(bytes.NewReader(future)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version error = %v", err)
	}
}

// TestReadHistogramLegacyV1 verifies that unchecksummed SPHIST1
// payloads written before the version stamp still decode. The v1 body
// is byte-identical to the v2 payload, so a legacy snapshot is the v2
// bytes minus the version field and checksum trailer.
func TestReadHistogramLegacyV1(t *testing.T) {
	good := NewBucketEstimator("legacy", []Bucket{
		{Box: geom.NewRect(0, 0, 2, 3), Count: 4, AvgW: 0.5, AvgH: 0.25, AvgDensity: 0.125},
		{Box: geom.NewRect(2, 0, 5, 3), Count: 9, AvgW: 1, AvgH: 1, AvgDensity: 0.4},
	})
	raw, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte("SPHIST1\n"), raw[10:len(raw)-4]...)
	back, err := ReadHistogram(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if back.Name() != "legacy" || len(back.Buckets()) != 2 {
		t.Fatalf("legacy round trip lost data: %+v", back)
	}
	for i, b := range good.Buckets() {
		if back.Buckets()[i] != b {
			t.Fatalf("legacy bucket %d: %+v != %+v", i, back.Buckets()[i], b)
		}
	}
}

func TestMaintainInsertDelete(t *testing.T) {
	e := NewBucketEstimator("m", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 2, AvgW: 2, AvgH: 2, AvgDensity: 0.08},
		{Box: geom.NewRect(10, 0, 20, 10), Count: 0},
	})
	// Insert into the first bucket.
	e.Insert(geom.NewRect(1, 1, 5, 5)) // 4x4
	b := e.Buckets()[0]
	if b.Count != 3 {
		t.Fatalf("Count = %d", b.Count)
	}
	if math.Abs(b.AvgW-(2+2+4)/3.0) > 1e-12 {
		t.Fatalf("AvgW = %g", b.AvgW)
	}
	if math.Abs(b.AvgDensity-(0.08+0.16)) > 1e-12 {
		t.Fatalf("AvgDensity = %g", b.AvgDensity)
	}
	// Insert into the empty second bucket.
	e.Insert(geom.NewRect(12, 2, 14, 4))
	if got := e.Buckets()[1]; got.Count != 1 || got.AvgW != 2 {
		t.Fatalf("second bucket = %+v", got)
	}
	// Delete restores the first bucket's stats.
	e.Delete(geom.NewRect(1, 1, 5, 5))
	b = e.Buckets()[0]
	if b.Count != 2 || math.Abs(b.AvgW-2) > 1e-9 || math.Abs(b.AvgDensity-0.08) > 1e-9 {
		t.Fatalf("after delete: %+v", b)
	}
	if e.Churn() != 3 {
		t.Fatalf("Churn = %d", e.Churn())
	}
	e.ResetChurn()
	if e.Churn() != 0 {
		t.Fatal("ResetChurn failed")
	}
}

func TestMaintainUncoveredAndEdgeCases(t *testing.T) {
	e := NewBucketEstimator("m", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 1, AvgW: 1, AvgH: 1, AvgDensity: 0.01},
	})
	// Center outside every bucket.
	e.Insert(geom.NewRect(100, 100, 102, 102))
	if e.Uncovered() != 1 {
		t.Fatalf("Uncovered = %d", e.Uncovered())
	}
	e.Delete(geom.NewRect(100, 100, 102, 102))
	if e.Uncovered() != 0 {
		t.Fatalf("Uncovered after delete = %d", e.Uncovered())
	}
	// Delete the last member: bucket zeroes cleanly.
	e.Delete(geom.NewRect(4, 4, 6, 6))
	b := e.Buckets()[0]
	if b.Count != 0 || b.AvgW != 0 || b.AvgDensity != 0 {
		t.Fatalf("emptied bucket = %+v", b)
	}
	// Deleting from an empty bucket is a no-op.
	e.Delete(geom.NewRect(4, 4, 6, 6))
	if e.Buckets()[0].Count != 0 {
		t.Fatal("delete from empty bucket changed count")
	}
}

func TestStaleFraction(t *testing.T) {
	e := NewBucketEstimator("m", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 10, AvgW: 1, AvgH: 1, AvgDensity: 0.1},
	})
	if e.StaleFraction() != 0 {
		t.Fatalf("fresh StaleFraction = %g", e.StaleFraction())
	}
	for i := 0; i < 5; i++ {
		e.Insert(geom.NewRect(1, 1, 2, 2))
	}
	// 5 churn over 15 live entries.
	if got := e.StaleFraction(); math.Abs(got-5.0/15.0) > 1e-12 {
		t.Fatalf("StaleFraction = %g, want 1/3", got)
	}
	// All-empty histogram with churn reports fully stale.
	empty := NewBucketEstimator("e", []Bucket{{Box: geom.NewRect(0, 0, 1, 1)}})
	empty.Delete(geom.NewRect(0, 0, 1, 1))
	if empty.StaleFraction() != 1 {
		t.Fatalf("empty churned StaleFraction = %g", empty.StaleFraction())
	}
}

func TestMaintainedEstimatesTrackData(t *testing.T) {
	// Build on half the data, then Insert the other half; estimates
	// should roughly double.
	d := synthetic.Uniform(4000, 1000, 5, 15, 13)
	half := d.Rects()[:2000]
	rest := d.Rects()[2000:]
	hist, err := NewMinSkew(dataset.New(half), MinSkewConfig{Buckets: 30, Regions: 400})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(200, 200, 800, 800)
	before := hist.Estimate(q)
	for _, r := range rest {
		hist.Insert(r)
	}
	after := hist.Estimate(q)
	if after < before*1.7 || after > before*2.3 {
		t.Fatalf("estimate went %g -> %g, want ~2x", before, after)
	}
}
