package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/tiger"
)

// Construction benchmarks over a 50K road-like dataset (Table 1's
// smaller column), plus estimation latency per technique.

func benchData(b *testing.B) *dataset.Distribution {
	b.Helper()
	return tiger.NJRoad(50000)
}

func BenchmarkConstructMinSkew(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 10000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructMinSkewRefined(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 16384, Refinements: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructEquiArea(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEquiArea(d, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructEquiCount(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEquiCount(d, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructRTreeSTR(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRTreeHist(d, RTreeHistConfig{Buckets: 100, Method: LoadSTR}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructRTreeHilbert(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRTreeHist(d, RTreeHistConfig{Buckets: 100, Method: LoadHilbert}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructSample(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSample(d, 400, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructFractal(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFractal(d, 2, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructAVI(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAVI(d, 266, AVIEquiDepth); err != nil {
			b.Fatal(err)
		}
	}
}

// Estimation latency at the paper's default configuration.
func benchEstimate(b *testing.B, est Estimator) {
	b.Helper()
	queries := make([]geom.Rect, 256)
	d := synthetic.Charminar(1000, 10000, 100, 1)
	for i := range queries {
		c := d.Rect(i % d.N()).Center()
		queries[i] = geom.RectAround(c, 800, 800)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(queries[i%len(queries)])
	}
}

func BenchmarkEstimateMinSkew100(b *testing.B) {
	d := benchData(b)
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 10000})
	if err != nil {
		b.Fatal(err)
	}
	benchEstimate(b, est)
}

func BenchmarkEstimateMinSkew750(b *testing.B) {
	d := benchData(b)
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 750, Regions: 10000})
	if err != nil {
		b.Fatal(err)
	}
	benchEstimate(b, est)
}

func BenchmarkEstimateSample400(b *testing.B) {
	d := benchData(b)
	est, err := NewSample(d, 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchEstimate(b, est)
}

// BenchmarkEstimateParallel measures concurrent estimation throughput:
// Estimate is a pure read, so it should scale with cores.
func BenchmarkEstimateParallel(b *testing.B) {
	d := benchData(b)
	est, err := NewMinSkew(d, MinSkewConfig{Buckets: 100, Regions: 10000})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geom.Rect, 256)
	for i := range queries {
		c := d.Rect(i % d.N()).Center()
		queries[i] = geom.RectAround(c, 500, 500)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			est.Estimate(queries[i%len(queries)])
			i++
		}
	})
}

func BenchmarkEstimateAVI(b *testing.B) {
	d := benchData(b)
	est, err := NewAVI(d, 266, AVIEquiDepth)
	if err != nil {
		b.Fatal(err)
	}
	benchEstimate(b, est)
}
