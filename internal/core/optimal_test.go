package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestOptimalBSPConfigErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	cases := []OptimalBSPConfig{
		{Buckets: 0, Regions: 100},
		{Buckets: 100, Regions: 100}, // over bucket cap
		{Buckets: 8, Regions: 0},
		{Buckets: 8, Regions: 100000}, // over cell cap
	}
	for _, cfg := range cases {
		if _, err := NewOptimalBSP(d, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := NewOptimalBSP(dataset.New(nil), OptimalBSPConfig{Buckets: 4, Regions: 64}); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestOptimalBSPTilesAndCounts(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 2)
	opt, err := NewOptimalBSP(d, OptimalBSPConfig{Buckets: 8, Regions: 144})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(opt.Buckets()); got < 2 || got > 8 {
		t.Fatalf("bucket count = %d", got)
	}
	mbr, _ := d.MBR()
	var area float64
	total := 0
	for _, b := range opt.Buckets() {
		area += b.Box.Area()
		total += b.Count
	}
	if math.Abs(area-mbr.Area())/mbr.Area() > 1e-9 {
		t.Fatalf("areas sum to %g, want %g", area, mbr.Area())
	}
	if total != d.N() {
		t.Fatalf("counts sum to %d, want %d", total, d.N())
	}
	if got := opt.Estimate(geom.NewRect(0, 0, 1000, 1000)); math.Abs(got-float64(d.N())) > 1 {
		t.Fatalf("covering estimate = %g", got)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	// The DP is exact, so its skew must lower-bound the greedy result
	// on every instance.
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		d := synthetic.Clusters(1500, 3, 500, 0.06, 2, 15, seed)
		greedy, optimal, err := PartitionSkews(d, OptimalBSPConfig{Buckets: 6, Regions: 100})
		if err != nil {
			t.Fatal(err)
		}
		if optimal > greedy+1e-6 {
			t.Fatalf("seed %d: optimal skew %g exceeds greedy %g", seed, optimal, greedy)
		}
		if optimal < 0 || greedy < 0 {
			t.Fatalf("seed %d: negative skew (%g, %g)", seed, optimal, greedy)
		}
	}
}

func TestOptimalExactOnSeparableInstance(t *testing.T) {
	// Four uniform clusters in the four quadrants of a 4x4 grid: with 4
	// buckets the optimal partition separates the quadrants for zero
	// skew... within each quadrant densities equalize only if the data
	// is exactly uniform per cell, so accept near-zero.
	var rects []geom.Rect
	add := func(x0, y0 float64, n int) {
		// n point-rects per cell of the quadrant; the quadrant spans
		// 2x2 grid cells of size 25.
		for cy := 0; cy < 2; cy++ {
			for cx := 0; cx < 2; cx++ {
				for i := 0; i < n; i++ {
					px := x0 + float64(cx)*25 + 12.5
					py := y0 + float64(cy)*25 + 12.5
					rects = append(rects, geom.NewRect(px, py, px, py))
				}
			}
		}
	}
	add(0, 0, 8)   // dense quadrant
	add(50, 0, 2)  // sparse
	add(0, 50, 4)  // medium
	add(50, 50, 1) // sparsest
	// Pin the MBR to the full square.
	rects = append(rects, geom.NewRect(0, 0, 100, 100))
	d := dataset.New(rects)

	greedy, optimal, err := PartitionSkews(d, OptimalBSPConfig{Buckets: 4, Regions: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 4 buckets can isolate the 4 quadrants; each quadrant is uniform,
	// so optimal skew is ~0 (the MBR-pinning rect adds 1 everywhere,
	// which shifts densities uniformly and cancels in the variance).
	if optimal > 1e-9 {
		t.Fatalf("optimal skew = %g, want 0 on separable instance", optimal)
	}
	if greedy < optimal {
		t.Fatalf("greedy %g below optimal %g", greedy, optimal)
	}
}

func TestGreedyNearOptimalTypically(t *testing.T) {
	// Not a guarantee, but on mild instances greedy should land within
	// a small constant of optimal; this guards against regressions that
	// silently cripple the greedy search.
	d := synthetic.Charminar(3000, 1000, 10, 9)
	greedy, optimal, err := PartitionSkews(d, OptimalBSPConfig{Buckets: 8, Regions: 100})
	if err != nil {
		t.Fatal(err)
	}
	if optimal == 0 {
		if greedy > 1e-6 {
			t.Fatalf("optimal 0 but greedy %g", greedy)
		}
		return
	}
	if greedy/optimal > 3 {
		t.Fatalf("greedy skew %g more than 3x optimal %g", greedy, optimal)
	}
}
