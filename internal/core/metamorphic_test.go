package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

// Metamorphic properties of the estimators: relations that must hold
// between estimates on systematically transformed inputs, with no
// oracle required. They complement property_test.go (bounds,
// containment monotonicity, whole-space ≈ N) and the differential
// suite (differential_test.go).

// latticeDataset quantizes a synthetic distribution onto a 1/64
// lattice. Every coordinate is then a dyadic rational well inside the
// double mantissa, so translating by a power of two is exact and a
// translated build performs bit-identical arithmetic (grid boundaries
// at multiples of 1000/32 = 31.25 are dyadic too).
func latticeDataset(n int, seed int64) *dataset.Distribution {
	raw := synthetic.Charminar(n, 1000, 10, seed)
	quant := func(v float64) float64 { return math.Round(v*64) / 64 }
	rects := make([]geom.Rect, 0, n)
	for _, r := range raw.Rects() {
		q := geom.Rect{MinX: quant(r.MinX), MinY: quant(r.MinY), MaxX: quant(r.MaxX), MaxY: quant(r.MaxY)}
		if q.Valid() {
			rects = append(rects, q)
		}
	}
	return dataset.New(rects)
}

func translateRects(d *dataset.Distribution, dx, dy float64) *dataset.Distribution {
	rects := make([]geom.Rect, 0, d.N())
	for _, r := range d.Rects() {
		rects = append(rects, geom.Rect{
			MinX: r.MinX + dx, MinY: r.MinY + dy,
			MaxX: r.MaxX + dx, MaxY: r.MaxY + dy,
		})
	}
	return dataset.New(rects)
}

// buildNamed constructs the five paper estimators over d with a shared
// bucket budget.
func buildNamed(t *testing.T, d *dataset.Distribution, buckets int) map[string]Estimator {
	t.Helper()
	out := map[string]Estimator{}
	u, err := NewUniform(d)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	out["Uniform"] = u
	ea, err := NewEquiArea(d, buckets)
	if err != nil {
		t.Fatalf("Equi-Area: %v", err)
	}
	out["Equi-Area"] = ea
	ec, err := NewEquiCount(d, buckets)
	if err != nil {
		t.Fatalf("Equi-Count: %v", err)
	}
	out["Equi-Count"] = ec
	rt, err := NewRTreeHist(d, RTreeHistConfig{Buckets: buckets})
	if err != nil {
		t.Fatalf("R-Tree: %v", err)
	}
	out["R-Tree"] = rt
	ms, err := NewMinSkew(d, MinSkewConfig{Buckets: buckets, Regions: 1024})
	if err != nil {
		t.Fatalf("Min-Skew: %v", err)
	}
	out["Min-Skew"] = ms
	return out
}

// TestMetamorphicTranslationInvariance: selectivity depends only on
// the relative geometry of data and query, so translating both by the
// same vector must not change any estimate. The lattice dataset and
// power-of-two offsets make the transformed build numerically exact,
// leaving only benign last-bit noise from absorbing the offset.
func TestMetamorphicTranslationInvariance(t *testing.T) {
	const dx, dy = 512.0, 256.0
	d := latticeDataset(4000, 31)
	dT := translateRects(d, dx, dy)
	if d.N() != dT.N() {
		t.Fatalf("translation changed N: %d != %d", d.N(), dT.N())
	}
	base := buildNamed(t, d, 40)
	moved := buildNamed(t, dT, 40)

	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 300; i++ {
		q := randQuery(rng)
		qT := geom.Rect{MinX: q.MinX + dx, MinY: q.MinY + dy, MaxX: q.MaxX + dx, MaxY: q.MaxY + dy}
		for name := range base {
			a, b := base[name].Estimate(q), moved[name].Estimate(qT)
			diff := math.Abs(a - b)
			if diff > 1e-9*math.Max(1, math.Max(a, b)) {
				t.Fatalf("%s: estimate changed under translation: %.12g vs %.12g (query %v)",
					name, a, b, q)
			}
		}
	}
}

// TestMetamorphicSplitSubadditivity: splitting a query rectangle into
// two halves can only overcount — a data rectangle intersecting the
// whole intersects at least one half, and the extended-query region of
// the whole is covered by the halves' extended regions. So
// estimate(A) + estimate(B) >= estimate(A ∪ B) for every straight
// split.
func TestMetamorphicSplitSubadditivity(t *testing.T) {
	d := synthetic.Clusters(4000, 5, 1000, 0.04, 1, 20, 77)
	ests := buildNamed(t, d, 40)
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 300; i++ {
		q := randQuery(rng)
		if geom.IsZero(q.Width()) || geom.IsZero(q.Height()) {
			continue
		}
		frac := 0.1 + 0.8*rng.Float64()
		var a, b geom.Rect
		if i%2 == 0 {
			s := q.MinX + frac*q.Width()
			a = geom.Rect{MinX: q.MinX, MinY: q.MinY, MaxX: s, MaxY: q.MaxY}
			b = geom.Rect{MinX: s, MinY: q.MinY, MaxX: q.MaxX, MaxY: q.MaxY}
		} else {
			s := q.MinY + frac*q.Height()
			a = geom.Rect{MinX: q.MinX, MinY: q.MinY, MaxX: q.MaxX, MaxY: s}
			b = geom.Rect{MinX: q.MinX, MinY: s, MaxX: q.MaxX, MaxY: q.MaxY}
		}
		for name, e := range ests {
			whole, left, right := e.Estimate(q), e.Estimate(a), e.Estimate(b)
			if left+right < whole-1e-9*math.Max(1, whole) {
				t.Fatalf("%s: split halves %g + %g < whole %g (query %v)",
					name, left, right, whole, q)
			}
		}
	}
}

// TestMetamorphicFarQueryIsZero: a query far outside the data MBR —
// beyond any average-extent extension — must estimate exactly zero,
// for range and point queries alike.
func TestMetamorphicFarQueryIsZero(t *testing.T) {
	d := synthetic.Charminar(3000, 1000, 10, 39)
	ests := buildNamed(t, d, 40)
	far := []geom.Rect{
		geom.NewRect(1e5, 1e5, 1e5+50, 1e5+50),
		geom.NewRect(-1e5, -1e5, -1e5+50, -1e5+50),
		geom.PointRect(geom.Point{X: 1e5, Y: -1e5}),
	}
	for name, e := range ests {
		for _, q := range far {
			if got := e.Estimate(q); got != 0 {
				t.Errorf("%s: far query %v estimated %g, want 0", name, q, got)
			}
		}
	}
}
