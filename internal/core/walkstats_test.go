package core

import (
	"testing"

	"repro/internal/geom"
)

// TestEstimateStats pins the walk-statistics contract the request
// tracer depends on: EstimateStats returns the exact Estimate total,
// Buckets counts every bucket walked, and Contributing counts only
// those with a positive contribution.
func TestEstimateStats(t *testing.T) {
	e := NewBucketEstimator("test", []Bucket{
		{Box: geom.NewRect(0, 0, 10, 10), Count: 100, AvgW: 1, AvgH: 1, AvgDensity: 1},
		{Box: geom.NewRect(20, 0, 30, 10), Count: 50, AvgW: 1, AvgH: 1, AvgDensity: 0.5},
		{Box: geom.NewRect(40, 0, 50, 10), Count: 0},
	})

	q := geom.NewRect(0, 0, 12, 12) // overlaps bucket 0 only
	total, st := e.EstimateStats(q)
	if got := e.Estimate(q); got != total {
		t.Fatalf("Estimate %g != EstimateStats total %g", got, total)
	}
	if st.Buckets != 3 {
		t.Errorf("Buckets = %d, want 3", st.Buckets)
	}
	if st.Contributing != 1 {
		t.Errorf("Contributing = %d, want 1 (one overlapped bucket)", st.Contributing)
	}

	q = geom.NewRect(0, 0, 50, 10) // overlaps buckets 0 and 1; 2 is empty
	total, st = e.EstimateStats(q)
	if total <= 0 {
		t.Fatalf("total = %g", total)
	}
	if st.Contributing != 2 {
		t.Errorf("Contributing = %d, want 2 (empty bucket contributes zero)", st.Contributing)
	}

	q = geom.NewRect(100, 100, 110, 110) // disjoint from everything
	total, st = e.EstimateStats(q)
	if total != 0 || st.Contributing != 0 {
		t.Errorf("disjoint query: total %g contributing %d, want 0/0", total, st.Contributing)
	}
}
