package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/quadtree"
)

// NewQuadTreeHist builds buckets from the leaves of a PR quadtree over
// the input — a second index-derived grouping to set against the
// paper's R-tree technique. Quadtree leaves form a disjoint tiling
// (like Min-Skew's buckets) but their boundaries come from regular
// quartering rather than from the data's skew, so the comparison
// isolates the value of skew-aware split placement.
//
// As with the R-tree, the bucket count is hard to hit exactly: the
// leaf capacity is retuned upward until the leaf count fits the
// budget, which can leave the histogram under quota.
func NewQuadTreeHist(d *dataset.Distribution, buckets int) (*BucketEstimator, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("core: quadtree grouping needs at least one bucket, got %d", buckets)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: quadtree grouping over empty distribution")
	}
	// Initial leaf capacity sized for a balanced tree; double until the
	// leaf count fits the budget.
	leafCap := 2 * d.N() / buckets
	if leafCap < 1 {
		leafCap = 1
	}
	var leaves []quadtree.LeafSummary
	for attempt := 0; attempt < 20; attempt++ {
		t, err := quadtree.Build(d, quadtree.Config{LeafCap: leafCap})
		if err != nil {
			return nil, err
		}
		leaves = t.Leaves()
		if len(leaves) <= buckets {
			break
		}
		leafCap *= 2
	}
	if len(leaves) > buckets {
		return nil, fmt.Errorf("core: quadtree grouping could not fit %d leaves into %d buckets", len(leaves), buckets)
	}
	out := make([]Bucket, 0, len(leaves))
	for _, l := range leaves {
		b := Bucket{Box: l.Box, Count: l.Count}
		if l.Count > 0 {
			n := float64(l.Count)
			b.AvgW = l.SumW / n
			b.AvgH = l.SumH / n
			if area := l.Box.Area(); area > 0 {
				b.AvgDensity = l.SumA / area
			} else {
				b.AvgDensity = n
			}
		}
		out = append(out, b)
	}
	return NewBucketEstimator("QuadTree", out), nil
}
