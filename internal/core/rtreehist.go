package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/rtree"
)

// RTreeLoad selects how the R-tree behind the histogram is built.
type RTreeLoad int

const (
	// LoadInsert is the paper's method: repeated R* insertion.
	LoadInsert RTreeLoad = iota
	// LoadSTR bulk-loads with Sort-Tile-Recursive packing.
	LoadSTR
	// LoadHilbert bulk-loads by Hilbert-sorting the centers.
	LoadHilbert
)

// String implements fmt.Stringer.
func (l RTreeLoad) String() string {
	switch l {
	case LoadInsert:
		return "repeated-insert"
	case LoadSTR:
		return "STR"
	case LoadHilbert:
		return "Hilbert"
	default:
		return fmt.Sprintf("RTreeLoad(%d)", int(l))
	}
}

// RTreeHistConfig controls the R-tree index-based grouping of Section
// 3.4.
type RTreeHistConfig struct {
	// Buckets is the bucket budget. The construction tweaks the tree's
	// branching factor so the chosen level produces close to, but never
	// more than, this many buckets (Section 5.4).
	Buckets int
	// Method selects the tree construction; the default LoadInsert is
	// the paper's repeated R* insertion.
	Method RTreeLoad
	// BulkLoad is a deprecated alias: true selects LoadSTR when Method
	// is LoadInsert.
	BulkLoad bool
	// MaxFanout caps the tuned branching factor (0 means the default
	// 16384). Small bucket budgets over large inputs need enormous
	// fanouts; a cap below N/(0.7*Buckets) makes the leaf level exceed
	// the budget so the histogram falls back to a higher (coarser)
	// level.
	MaxFanout int
}

// NewRTreeHist builds buckets from the MBRs of the nodes of an R*-tree
// over the input: the deepest level whose node count does not exceed
// the budget supplies the buckets, each annotated with the aggregate
// statistics of its subtree.
func NewRTreeHist(d *dataset.Distribution, cfg RTreeHistConfig) (*BucketEstimator, error) {
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("core: R-Tree grouping needs at least one bucket, got %d", cfg.Buckets)
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("core: R-Tree grouping over empty distribution")
	}
	fanout := tuneFanout(d.N(), cfg.Buckets, cfg.MaxFanout)
	method := cfg.Method
	if cfg.BulkLoad && method == LoadInsert {
		method = LoadSTR
	}

	var t *rtree.Tree
	switch method {
	case LoadSTR:
		t = rtree.STRLoad(d.Rects(), fanout)
	case LoadHilbert:
		t = rtree.HilbertLoad(d.Rects(), fanout)
	default:
		t = rtree.New(fanout)
		for i, r := range d.Rects() {
			t.Insert(r, i)
		}
	}

	// Use the deepest level with at most the budgeted node count.
	var sums []rtree.NodeSummary
	for level := 0; level < t.Height(); level++ {
		s, err := t.LevelNodes(level)
		if err != nil {
			return nil, err
		}
		if len(s) <= cfg.Buckets {
			sums = s
			break
		}
	}
	if sums == nil {
		// Even the root exceeds the budget: impossible since the root
		// is one node, but guard anyway.
		s, err := t.LevelNodes(t.Height() - 1)
		if err != nil {
			return nil, err
		}
		sums = s
	}

	buckets := make([]Bucket, len(sums))
	for i, s := range sums {
		b := Bucket{Box: s.MBR, Count: s.Count}
		if s.Count > 0 {
			b.AvgW = s.SumW / float64(s.Count)
			b.AvgH = s.SumH / float64(s.Count)
			if area := s.MBR.Area(); area > 0 {
				// Approximate the bucket's covered area from the
				// average dimensions (the tree does not retain the
				// exact summed rectangle areas).
				b.AvgDensity = float64(s.Count) * b.AvgW * b.AvgH / area
			} else {
				b.AvgDensity = float64(s.Count)
			}
		}
		buckets[i] = b
	}
	return NewBucketEstimator("R-Tree", buckets), nil
}

// tuneFanout chooses a branching factor so the leaf level lands close
// to the bucket budget assuming ~70% node fill, clamped to a sane
// range.
func tuneFanout(n, buckets, maxFanout int) int {
	if maxFanout <= 0 {
		maxFanout = 16384
	}
	f := int(math.Ceil(float64(n) / (0.7 * float64(buckets))))
	if f < 8 {
		f = 8
	}
	if f > maxFanout {
		f = maxFanout
	}
	return f
}
