package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/grid"
)

// Automatic grid-resolution selection. The paper leaves "finding the
// correct number of regions which provides the least error" as an
// open problem (Section 5.5.3): too few regions blur the
// distribution, too many push every bucket into compact hot spots and
// hurt large queries. This implements a practical answer: build
// candidate partitionings along a geometric ladder of grid
// resolutions and score each partition by its spatial skew measured
// on the finest grid — a workload-independent, consistent objective.
// The chosen resolution is the one where the marginal skew
// improvement from the previous ladder step falls below a tolerance:
// the knee of the resolution/benefit curve. (Skew keeps creeping down
// with ever finer grids — the finest candidate optimizes directly
// against the scoring grid — so a compare-to-best rule would always
// pick the maximum resolution; the diminishing-returns rule matches
// the flattening the paper observes in Figure 10(a).)

// AutoMinSkewConfig controls NewMinSkewAuto.
type AutoMinSkewConfig struct {
	// Buckets is the bucket budget.
	Buckets int
	// MaxRegions bounds the resolution ladder (default 65536).
	MaxRegions int
	// Tolerance is the marginal relative improvement below which a
	// finer resolution is not considered worth it (default 0.05).
	Tolerance float64
	// FullSplitSearch selects the exact 2-D split objective.
	FullSplitSearch bool
}

// AutoTuneInfo reports what the tuner considered and chose.
type AutoTuneInfo struct {
	// Regions is the chosen resolution (cells of the chosen grid).
	Regions int
	// Candidates are the ladder resolutions considered.
	Candidates []int
	// Skews are the candidates' partition skews measured on the finest
	// grid (lower is better).
	Skews []float64
}

// NewMinSkewAuto builds Min-Skew with an automatically selected grid
// resolution.
func NewMinSkewAuto(d *dataset.Distribution, cfg AutoMinSkewConfig) (*BucketEstimator, AutoTuneInfo, error) {
	var info AutoTuneInfo
	if cfg.Buckets < 1 {
		return nil, info, fmt.Errorf("core: Min-Skew needs at least one bucket, got %d", cfg.Buckets)
	}
	if cfg.MaxRegions <= 0 {
		cfg.MaxRegions = 65536
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.05
	}
	mbr, ok := d.MBR()
	if !ok {
		return nil, info, fmt.Errorf("core: Min-Skew over empty distribution")
	}

	// Resolution ladder: dims double per level so every coarse cell is
	// exactly 4 fine cells and partitions map onto the finest grid.
	nx, ny := grid.Dims(64, mbr)
	var grids []*grid.Grid
	for nx*ny <= cfg.MaxRegions {
		g, err := grid.Build(d, nx, ny)
		if err != nil {
			return nil, info, err
		}
		grids = append(grids, g)
		nx, ny = nx*2, ny*2
	}
	if len(grids) == 0 {
		return nil, info, fmt.Errorf("core: MaxRegions %d below the coarsest grid", cfg.MaxRegions)
	}
	fine := grids[len(grids)-1]

	allBlocks := make([][]*msBlock, len(grids))
	for i, g := range grids {
		blocks := []*msBlock{newMSBlock(g, g.FullBlock(), cfg.FullSplitSearch)}
		growTo(g, &blocks, cfg.Buckets, cfg.FullSplitSearch, nil, 0)
		allBlocks[i] = blocks

		// Score on the finest grid: scale the block coordinates up.
		scale := 1 << (len(grids) - 1 - i)
		var skew float64
		for _, mb := range blocks {
			fb := grid.Block{
				X0: mb.blk.X0 * scale, Y0: mb.blk.Y0 * scale,
				X1: (mb.blk.X1+1)*scale - 1, Y1: (mb.blk.Y1+1)*scale - 1,
			}
			skew += fine.Skew(fb)
		}
		info.Candidates = append(info.Candidates, g.Regions())
		info.Skews = append(info.Skews, skew)
	}

	// Diminishing-returns knee: stop at the first step whose relative
	// improvement over the previous resolution drops below tolerance.
	chosen := len(grids) - 1
	for i := 1; i < len(grids); i++ {
		prev, cur := info.Skews[i-1], info.Skews[i]
		if prev <= 0 {
			chosen = i - 1
			break
		}
		if (prev-cur)/prev < cfg.Tolerance {
			// The step to this resolution wasn't worth it; keep the
			// previous one.
			chosen = i - 1
			break
		}
	}
	info.Regions = grids[chosen].Regions()
	return NewBucketEstimator("Min-Skew", finalizeBuckets(d, grids[chosen], allBlocks[chosen])), info, nil
}
