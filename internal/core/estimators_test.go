package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

func TestEquiAreaErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	if _, err := NewEquiArea(d, 0); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := NewEquiArea(dataset.New(nil), 10); err == nil {
		t.Fatal("empty distribution should fail")
	}
	if _, err := NewEquiCount(dataset.New(nil), 10); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestEquiAreaBucketCountAndCoverage(t *testing.T) {
	d := synthetic.Charminar(5000, 1000, 10, 2)
	ea, err := NewEquiArea(d, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ea.Buckets()); got != 50 {
		t.Fatalf("bucket count = %d, want 50", got)
	}
	total := 0
	for _, b := range ea.Buckets() {
		total += b.Count
		if b.Count == 0 {
			t.Fatal("Equi-Area produced an empty bucket")
		}
	}
	if total != d.N() {
		t.Fatalf("counts sum to %d, want %d", total, d.N())
	}
	// Equi-Area buckets have roughly comparable box areas: max within
	// ~100x of positive min (loose sanity bound; recomputed MBRs shrink
	// some buckets a lot).
	minA, maxA := math.Inf(1), 0.0
	for _, b := range ea.Buckets() {
		a := b.Box.Area()
		if a > 0 && a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	if maxA == 0 {
		t.Fatal("all buckets degenerate")
	}
}

func TestEquiCountBalancedCounts(t *testing.T) {
	d := synthetic.Charminar(8000, 1000, 10, 3)
	ec, err := NewEquiCount(d, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ec.Buckets()); got != 64 {
		t.Fatalf("bucket count = %d, want 64", got)
	}
	total, max := 0, 0
	for _, b := range ec.Buckets() {
		total += b.Count
		if b.Count > max {
			max = b.Count
		}
		if b.Count == 0 {
			t.Fatal("Equi-Count produced an empty bucket")
		}
	}
	if total != d.N() {
		t.Fatalf("counts sum to %d", total)
	}
	// Perfect balance would be 125 per bucket; allow generous slack for
	// the median-split heuristic but catch gross imbalance.
	if max > 4*d.N()/64 {
		t.Fatalf("largest bucket has %d of %d rects; Equi-Count is not balancing", max, d.N())
	}
}

func TestEquiSplitDegenerateData(t *testing.T) {
	// All identical centers: cannot split at all; both techniques must
	// terminate with a single bucket.
	rects := make([]geom.Rect, 64)
	for i := range rects {
		rects[i] = geom.NewRect(5, 5, 7, 7)
	}
	d := dataset.New(rects)
	ea, err := NewEquiArea(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ea.Buckets()); got != 1 {
		t.Fatalf("Equi-Area on identical rects: %d buckets, want 1", got)
	}
	ec, err := NewEquiCount(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ec.Buckets()); got != 1 {
		t.Fatalf("Equi-Count on identical rects: %d buckets, want 1", got)
	}
	// Two distinct x positions only: exactly 2 buckets are possible.
	rects = append(rects, geom.NewRect(50, 5, 52, 7), geom.NewRect(50, 5, 52, 7))
	d = dataset.New(rects)
	ec, err = NewEquiCount(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ec.Buckets()); got != 2 {
		t.Fatalf("two-position data: %d buckets, want 2", got)
	}
}

func TestRTreeHistErrors(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 4)
	if _, err := NewRTreeHist(d, RTreeHistConfig{Buckets: 0}); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := NewRTreeHist(dataset.New(nil), RTreeHistConfig{Buckets: 10}); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestRTreeHistBucketBudget(t *testing.T) {
	d := synthetic.Charminar(20000, 1000, 10, 5)
	for _, bulk := range []bool{false, true} {
		rt, err := NewRTreeHist(d, RTreeHistConfig{Buckets: 100, BulkLoad: bulk})
		if err != nil {
			t.Fatalf("bulk=%v: %v", bulk, err)
		}
		got := len(rt.Buckets())
		if got > 100 {
			t.Fatalf("bulk=%v: %d buckets exceeds quota 100", bulk, got)
		}
		if got < 10 {
			t.Fatalf("bulk=%v: only %d buckets; fanout tuning failed", bulk, got)
		}
		total := 0
		for _, b := range rt.Buckets() {
			total += b.Count
		}
		if total != d.N() {
			t.Fatalf("bulk=%v: counts sum to %d, want %d", bulk, total, d.N())
		}
	}
}

func TestTuneFanout(t *testing.T) {
	// The full NJ Road at 100 buckets needs fanout ~5921, within the
	// default cap.
	if got := tuneFanout(414442, 100, 0); got < 5900 || got > 6000 {
		t.Fatalf("large-N fanout = %d, want ~5921", got)
	}
	if got := tuneFanout(10000000, 50, 0); got != 16384 {
		t.Fatalf("huge-N fanout = %d, want cap 16384", got)
	}
	if got := tuneFanout(100, 100, 0); got != 8 {
		t.Fatalf("small fanout = %d, want floor 8", got)
	}
	if got := tuneFanout(50000, 750, 0); got < 90 || got > 110 {
		t.Fatalf("tuned fanout = %d, want ~96", got)
	}
	if got := tuneFanout(1000000, 10, 512); got != 512 {
		t.Fatalf("capped fanout = %d, want 512", got)
	}
}

func TestSampleEstimator(t *testing.T) {
	d := synthetic.Uniform(10000, 1000, 5, 15, 6)
	if _, err := NewSample(d, 0, 1); err == nil {
		t.Fatal("zero sample should fail")
	}
	if _, err := NewSample(dataset.New(nil), 10, 1); err == nil {
		t.Fatal("empty distribution should fail")
	}
	s, err := NewSample(d, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 400 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.Name() != "Sample" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.SpaceBuckets() != 200 {
		t.Fatalf("SpaceBuckets = %g, want 200 (half a bucket per rect)", s.SpaceBuckets())
	}
	// Covering query is exact.
	mbr, _ := d.MBR()
	if got := s.Estimate(mbr.Expand(1, 1)); math.Abs(got-float64(d.N())) > 1e-9 {
		t.Fatalf("covering estimate = %g, want %d", got, d.N())
	}
	// Oversized sample keeps everything -> exact estimator.
	full, err := NewSample(d, d.N()*2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 400, 400)
	exactCount := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			exactCount++
		}
	}
	if got := full.Estimate(q); math.Abs(got-float64(exactCount)) > 1e-9 {
		t.Fatalf("full-sample estimate = %g, want %d", got, exactCount)
	}
}

func TestSampleUnbiasedOnUniform(t *testing.T) {
	d := synthetic.Uniform(20000, 1000, 5, 15, 7)
	s, err := NewSample(d, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 500, 500)
	exactCount := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			exactCount++
		}
	}
	got := s.Estimate(q)
	if math.Abs(got-float64(exactCount))/float64(exactCount) > 0.15 {
		t.Fatalf("sample estimate %g too far from exact %d", got, exactCount)
	}
}

func TestFractalEstimator(t *testing.T) {
	if _, err := NewFractal(dataset.New(nil), 2, 7); err == nil {
		t.Fatal("empty distribution should fail")
	}
	d := synthetic.Uniform(20000, 1000, 2, 2, 8)
	f, err := NewFractal(d, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "Fractal" || f.SpaceBuckets() != 1 {
		t.Fatalf("meta: %q/%g", f.Name(), f.SpaceBuckets())
	}
	dim := f.Dimension()
	if math.Abs(dim.D2-2) > 0.4 {
		t.Fatalf("uniform data D2 = %g, want ~2", dim.D2)
	}
	// On uniform data the power law should estimate a central query
	// reasonably (within 2x).
	q := geom.NewRect(250, 250, 750, 750)
	exactCount := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			exactCount++
		}
	}
	got := f.Estimate(q)
	if got < float64(exactCount)/2 || got > float64(exactCount)*2 {
		t.Fatalf("fractal estimate %g vs exact %d", got, exactCount)
	}
}

// TestEstimatorInterfaceCompliance pins the Estimator implementations.
func TestEstimatorInterfaceCompliance(t *testing.T) {
	d := synthetic.Uniform(500, 100, 1, 3, 9)
	var es []Estimator
	u, _ := NewUniform(d)
	es = append(es, u)
	ea, _ := NewEquiArea(d, 10)
	es = append(es, ea)
	ec, _ := NewEquiCount(d, 10)
	es = append(es, ec)
	rt, _ := NewRTreeHist(d, RTreeHistConfig{Buckets: 10})
	es = append(es, rt)
	ms, _ := NewMinSkew(d, MinSkewConfig{Buckets: 10, Regions: 100})
	es = append(es, ms)
	sp, _ := NewSample(d, 20, 1)
	es = append(es, sp)
	fr, _ := NewFractal(d, 2, 6)
	es = append(es, fr)

	qs, err := workload.Generate(d, workload.Config{Count: 50, QSize: 0.15, Seed: 2, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if e.Name() == "" || e.SpaceBuckets() <= 0 {
			t.Fatalf("%T: bad metadata", e)
		}
		for _, q := range qs {
			got := e.Estimate(q)
			if got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%s.Estimate(%v) = %g", e.Name(), q, got)
			}
		}
	}
}
