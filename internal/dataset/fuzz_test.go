package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

// FuzzReadText asserts the text reader never panics and every accepted
// distribution has consistent statistics.
func FuzzReadText(f *testing.F) {
	seeds := []string{
		"0 0 1 1\n",
		"# comment\n\n0 0 1 1\n2 2 3 3\n",
		"0 0 1\n",
		"a b c d\n",
		"1e308 0 1e309 1\n",
		"0 0 0 0\n",
		"-1 -2 -0.5 -0.25\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return
		}
		d, err := ReadText(strings.NewReader(s))
		if err != nil {
			return
		}
		if d.N() > 0 {
			mbr, ok := d.MBR()
			if !ok || !mbr.Valid() {
				t.Fatalf("accepted distribution with bad MBR %v", mbr)
			}
			for _, r := range d.Rects() {
				if !mbr.Contains(r) {
					t.Fatalf("MBR %v does not contain %v", mbr, r)
				}
			}
		}
	})
}

// FuzzReadBinary asserts the binary reader handles arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	var good bytes.Buffer
	_ = WriteBinary(&good, New([]geom.Rect{geom.NewRect(0, 0, 1, 1)}))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SPRECT1\n"))
	f.Add([]byte("SPRECT1\n\x00\x00\x00\x00\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range d.Rects() {
			if !r.Valid() {
				t.Fatalf("accepted invalid rect %v", r)
			}
		}
	})
}
