package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

func mustAdd(t *testing.T, d *Distribution, r geom.Rect) {
	t.Helper()
	if err := d.Add(r); err != nil {
		t.Fatalf("Add(%v): %v", r, err)
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := &Distribution{}
	if d.N() != 0 {
		t.Fatalf("N = %d, want 0", d.N())
	}
	if _, ok := d.MBR(); ok {
		t.Fatal("empty distribution should have no MBR")
	}
	if d.Area() != 0 || d.TotalArea() != 0 || d.AvgWidth() != 0 || d.AvgHeight() != 0 {
		t.Fatal("empty distribution stats should all be zero")
	}
	if got := d.String(); got != "Distribution{empty}" {
		t.Fatalf("String = %q", got)
	}
}

func TestStatsIncremental(t *testing.T) {
	d := &Distribution{}
	mustAdd(t, d, geom.NewRect(0, 0, 2, 2))
	mustAdd(t, d, geom.NewRect(4, 4, 10, 6))

	if d.N() != 2 {
		t.Fatalf("N = %d", d.N())
	}
	mbr, ok := d.MBR()
	if !ok || mbr != geom.NewRect(0, 0, 10, 6) {
		t.Fatalf("MBR = %v, %v", mbr, ok)
	}
	if got := d.Area(); got != 60 {
		t.Errorf("Area = %g, want 60", got)
	}
	if got := d.TotalArea(); got != 4+12 {
		t.Errorf("TotalArea = %g, want 16", got)
	}
	if got := d.AvgWidth(); got != (2+6)/2.0 {
		t.Errorf("AvgWidth = %g, want 4", got)
	}
	if got := d.AvgHeight(); got != (2+2)/2.0 {
		t.Errorf("AvgHeight = %g, want 2", got)
	}
	s := d.Stats()
	if s.N != 2 || s.MBR != mbr || s.TotalArea != 16 {
		t.Errorf("Stats snapshot mismatch: %+v", s)
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	d := &Distribution{}
	bad := []geom.Rect{
		{MinX: 2, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1},
	}
	for _, r := range bad {
		if err := d.Add(r); err == nil {
			t.Errorf("Add(%v) should fail", r)
		}
	}
	if d.N() != 0 {
		t.Fatalf("invalid adds must not change the distribution, N = %d", d.N())
	}
}

func TestNewCopiesInput(t *testing.T) {
	rects := []geom.Rect{geom.NewRect(0, 0, 1, 1)}
	d := New(rects)
	rects[0] = geom.NewRect(50, 50, 60, 60)
	if d.Rect(0) != geom.NewRect(0, 0, 1, 1) {
		t.Fatal("New must copy the input slice")
	}
}

func TestFromRectsAllPointsMBR(t *testing.T) {
	// Regression: with zero-area rectangles, FromRects used to reset
	// the MBR on every element, leaving the MBR of the last point only.
	rects := []geom.Rect{
		geom.NewRect(0, 0, 0, 0),
		geom.NewRect(10, 20, 10, 20),
		geom.NewRect(5, 5, 5, 5),
	}
	d := FromRects(rects)
	mbr, ok := d.MBR()
	if !ok || mbr != geom.NewRect(0, 0, 10, 20) {
		t.Fatalf("MBR = %v, %v; want [(0,0),(10,20)]", mbr, ok)
	}
	// Same through incremental Add.
	d2 := &Distribution{}
	for _, r := range rects {
		mustAdd(t, d2, r)
	}
	mbr2, _ := d2.MBR()
	if mbr2 != mbr {
		t.Fatalf("Add path MBR = %v", mbr2)
	}
}

func TestFromRectsStats(t *testing.T) {
	rects := []geom.Rect{geom.NewRect(0, 0, 2, 2), geom.NewRect(1, 1, 5, 3)}
	d := FromRects(rects)
	if d.N() != 2 {
		t.Fatalf("N = %d", d.N())
	}
	mbr, _ := d.MBR()
	if mbr != geom.NewRect(0, 0, 5, 3) {
		t.Fatalf("MBR = %v", mbr)
	}
	if d.TotalArea() != 4+8 {
		t.Fatalf("TotalArea = %g", d.TotalArea())
	}
}

func TestCenters(t *testing.T) {
	d := New([]geom.Rect{geom.NewRect(0, 0, 2, 2), geom.NewRect(2, 2, 6, 4)})
	got := d.Centers()
	want := []geom.Point{{X: 1, Y: 1}, {X: 4, Y: 3}}
	if len(got) != len(want) {
		t.Fatalf("Centers len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Centers[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	d := New([]geom.Rect{
		geom.NewRect(0, 0, 1.5, 2.25),
		geom.NewRect(-3, -4, -1, -2),
		geom.NewRect(7, 7, 7, 7), // degenerate point
	})
	var buf bytes.Buffer
	if err := WriteText(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRects(t, d, got)
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rects []geom.Rect
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10))
	}
	d := New(rects)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRects(t, d, got)
}

func requireSameRects(t *testing.T, want, got *Distribution) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	for i := range want.Rects() {
		if got.Rect(i) != want.Rect(i) {
			t.Fatalf("rect %d = %v, want %v", i, got.Rect(i), want.Rect(i))
		}
	}
	if math.Abs(got.TotalArea()-want.TotalArea()) > 1e-9 {
		t.Fatalf("TotalArea = %g, want %g", got.TotalArea(), want.TotalArea())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"too few fields", "1 2 3\n"},
		{"too many fields", "1 2 3 4 5\n"},
		{"non-numeric", "a b c d\n"},
		{"inverted rect", "5 5 1 1\n"},
		{"nan", "NaN 0 1 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(c.in)); err == nil {
				t.Fatalf("ReadText(%q) should fail", c.in)
			}
		})
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n  \n0 0 1 1\n# trailing comment\n2 2 3 3\n"
	d, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 {
		t.Fatalf("N = %d, want 2", d.N())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte(binaryMagic))); err == nil {
		t.Fatal("truncated count should fail")
	}
	// Magic plus count 1 but no payload.
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("truncated payload should fail")
	}
	// Implausible count.
	buf.Reset()
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("huge count should fail")
	}
}

func TestSaveLoadFiles(t *testing.T) {
	d := New([]geom.Rect{geom.NewRect(0, 0, 1, 1), geom.NewRect(5, 5, 8, 9)})
	dir := t.TempDir()

	txt := filepath.Join(dir, "d.txt")
	if err := Save(txt, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(txt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRects(t, d, got)

	bin := filepath.Join(dir, "d.bin")
	if err := Save(bin, d); err != nil {
		t.Fatal(err)
	}
	got, err = Load(bin)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRects(t, d, got)

	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("loading missing file should fail")
	}
}
