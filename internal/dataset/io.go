package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Text format: one rectangle per line as "minx miny maxx maxy".
// Blank lines and lines starting with '#' are ignored.
//
// Binary format: the magic "SPRECT1\n" followed by a big-endian uint64
// count and count*4 big-endian float64 coordinates.

const binaryMagic = "SPRECT1\n"

// WriteText writes the distribution in the text interchange format.
func WriteText(w io.Writer, d *Distribution) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# spatialest rectangles n=%d\n", d.N()); err != nil {
		return err
	}
	for _, r := range d.Rects() {
		if _, err := fmt.Fprintf(bw, "%g %g %g %g\n", r.MinX, r.MinY, r.MaxX, r.MaxY); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text interchange format.
func ReadText(r io.Reader) (*Distribution, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	d := &Distribution{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("dataset: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var coords [4]float64
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad coordinate %q: %v", lineNo, f, err)
			}
			coords[i] = v
		}
		rect := geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
		if err := d.Add(rect); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %v", err)
	}
	return d, nil
}

// WriteBinary writes the distribution in the compact binary format.
func WriteBinary(w io.Writer, d *Distribution) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(d.N()))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, r := range d.Rects() {
		for _, v := range [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*Distribution, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: read magic: %v", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("dataset: read count: %v", err)
	}
	n := binary.BigEndian.Uint64(buf[:])
	const maxRects = 1 << 30
	if n > maxRects {
		return nil, fmt.Errorf("dataset: implausible rectangle count %d", n)
	}
	// The count is untrusted input: never preallocate more than a
	// bounded amount, and let append grow as real payload arrives
	// (truncated files fail at the first missing byte).
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	d := &Distribution{rects: make([]geom.Rect, 0, capHint)}
	for i := uint64(0); i < n; i++ {
		var coords [4]float64
		for j := range coords {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("dataset: rect %d: %v", i, err)
			}
			coords[j] = math.Float64frombits(binary.BigEndian.Uint64(buf[:]))
		}
		rect := geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
		if err := d.Add(rect); err != nil {
			return nil, fmt.Errorf("dataset: rect %d: %v", i, err)
		}
	}
	return d, nil
}

// Save writes the distribution to path; the format is chosen by
// extension: ".bin" selects the binary format, anything else the text
// format.
func Save(path string, d *Distribution) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := WriteBinary(f, d); err != nil {
			return err
		}
	} else if err := WriteText(f, d); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a distribution from path, selecting the format by
// extension as in Save.
func Load(path string) (*Distribution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadText(f)
}
