// Package dataset defines the input of the selectivity estimation
// problem: a distribution T of two-dimensional rectangles (Section 2 of
// the paper), together with the aggregate statistics the estimators
// need — the number of rectangles N, the minimum bounding rectangle and
// its area Area(T), the total rectangle area TA, and the average width
// Wavg and height Havg.
//
// The package also provides a simple line-oriented text interchange
// format and a compact binary format for persisting distributions.
package dataset

import (
	"fmt"

	"repro/internal/geom"
)

// Distribution is a set of input rectangles with cached aggregate
// statistics. The zero value is an empty distribution; use New or Add
// followed by the accessor methods. Statistics are maintained
// incrementally so Add is O(1).
type Distribution struct {
	rects []geom.Rect

	hasMBR    bool
	mbr       geom.Rect
	totalArea float64 // TA: sum of areas of all rectangles
	sumW      float64
	sumH      float64
}

// New creates a Distribution from the given rectangles. The slice is
// copied, so the caller may reuse it.
func New(rects []geom.Rect) *Distribution {
	d := &Distribution{rects: make([]geom.Rect, 0, len(rects))}
	for _, r := range rects {
		// Invalid rectangles are skipped; callers that need loud
		// validation use Add directly.
		_ = d.Add(r)
	}
	return d
}

// FromRects creates a Distribution that takes ownership of the given
// slice without copying. The caller must not modify rects afterwards.
func FromRects(rects []geom.Rect) *Distribution {
	d := &Distribution{}
	d.rects = d.rects[:0]
	for _, r := range rects {
		d.accumulate(r)
	}
	d.rects = rects
	return d
}

// Add appends one rectangle to the distribution, updating statistics.
// Invalid rectangles (NaN/Inf or inverted corners) are rejected with an
// error and not added.
func (d *Distribution) Add(r geom.Rect) error {
	if !r.Valid() {
		return fmt.Errorf("dataset: invalid rectangle %v", r)
	}
	d.accumulate(r)
	d.rects = append(d.rects, r)
	return nil
}

func (d *Distribution) accumulate(r geom.Rect) {
	if !d.hasMBR {
		d.mbr = r
		d.hasMBR = true
	} else {
		d.mbr = d.mbr.Union(r)
	}
	d.totalArea += r.Area()
	d.sumW += r.Width()
	d.sumH += r.Height()
}

// N returns the number of rectangles in the distribution.
func (d *Distribution) N() int { return len(d.rects) }

// Rects returns the underlying rectangle slice. Callers must treat it as
// read-only.
func (d *Distribution) Rects() []geom.Rect { return d.rects }

// Rect returns the i-th rectangle.
func (d *Distribution) Rect(i int) geom.Rect { return d.rects[i] }

// MBR returns the minimum bounding rectangle of the distribution and
// whether the distribution is non-empty.
func (d *Distribution) MBR() (geom.Rect, bool) {
	if len(d.rects) == 0 {
		return geom.Rect{}, false
	}
	return d.mbr, true
}

// Area returns Area(T), the area of the MBR of the input, zero when the
// distribution is empty.
func (d *Distribution) Area() float64 {
	if len(d.rects) == 0 {
		return 0
	}
	return d.mbr.Area()
}

// TotalArea returns TA, the sum of the areas of all input rectangles.
func (d *Distribution) TotalArea() float64 { return d.totalArea }

// AvgWidth returns Wavg, the average rectangle width (0 for an empty
// distribution).
func (d *Distribution) AvgWidth() float64 {
	if len(d.rects) == 0 {
		return 0
	}
	return d.sumW / float64(len(d.rects))
}

// AvgHeight returns Havg, the average rectangle height (0 for an empty
// distribution).
func (d *Distribution) AvgHeight() float64 {
	if len(d.rects) == 0 {
		return 0
	}
	return d.sumH / float64(len(d.rects))
}

// Centers returns the centers of all rectangles, in input order.
func (d *Distribution) Centers() []geom.Point {
	out := make([]geom.Point, len(d.rects))
	for i, r := range d.rects {
		out[i] = r.Center()
	}
	return out
}

// Stats is a snapshot of the aggregate statistics of a distribution.
type Stats struct {
	N         int
	MBR       geom.Rect
	Area      float64 // area of the MBR
	TotalArea float64 // TA
	AvgWidth  float64 // Wavg
	AvgHeight float64 // Havg
}

// Stats returns a snapshot of the distribution's aggregate statistics.
func (d *Distribution) Stats() Stats {
	return Stats{
		N:         d.N(),
		MBR:       d.mbr,
		Area:      d.Area(),
		TotalArea: d.totalArea,
		AvgWidth:  d.AvgWidth(),
		AvgHeight: d.AvgHeight(),
	}
}

// String summarizes the distribution.
func (d *Distribution) String() string {
	if d.N() == 0 {
		return "Distribution{empty}"
	}
	return fmt.Sprintf("Distribution{N=%d, MBR=%v, TA=%.4g, Wavg=%.4g, Havg=%.4g}",
		d.N(), d.mbr, d.totalArea, d.AvgWidth(), d.AvgHeight())
}
