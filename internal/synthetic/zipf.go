package synthetic

import (
	"math"
	"math/rand"
)

// Zipf draws values in {1, ..., n} with P(k) proportional to 1/k^theta,
// the distribution the paper uses to model size and placement skew
// [Zip49]. theta = 0 degenerates to uniform; larger theta is more
// skewed. Sampling is by inversion over the precomputed CDF, O(log n)
// per draw.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf creates a Zipf sampler over ranks 1..n with skew theta >= 0.
// It panics if n < 1 or theta < 0, which indicate programmer error.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		panic("synthetic: Zipf needs n >= 1")
	}
	if theta < 0 {
		panic("synthetic: Zipf needs theta >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), theta)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// DrawFloat returns a value in [0, 1): the drawn rank scaled to the
// unit interval with uniform jitter within the rank's cell, giving a
// continuous Zipf-skewed coordinate concentrated near 0.
func (z *Zipf) DrawFloat() float64 {
	k := z.Draw()
	n := float64(len(z.cdf))
	return (float64(k-1) + z.rng.Float64()) / n
}
