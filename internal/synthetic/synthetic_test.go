package synthetic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewZipf(rng, 0, 1) },
		func() { NewZipf(rng, 10, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 100, 1.0)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		k := z.Draw()
		if k < 1 || k > 100 {
			t.Fatalf("Draw out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 1 must dominate rank 10 roughly 10:1 under theta=1.
	ratio := float64(counts[1]) / float64(counts[10]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("Zipf skew ratio rank1/rank10 = %g, want ~10", ratio)
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 11)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for k := 1; k <= 10; k++ {
		frac := float64(counts[k]) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("rank %d frequency %g, want ~0.1", k, frac)
		}
	}
}

func TestZipfDrawFloatInUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipf(rng, 50, 1.5)
	below := 0
	for i := 0; i < 10000; i++ {
		v := z.DrawFloat()
		if v < 0 || v >= 1 {
			t.Fatalf("DrawFloat out of [0,1): %g", v)
		}
		if v < 0.1 {
			below++
		}
	}
	// Skew toward zero: far more than 10% of mass below 0.1.
	if below < 3000 {
		t.Fatalf("only %d/10000 draws below 0.1; expected heavy skew to 0", below)
	}
}

func checkInsideSpace(t *testing.T, d *dataset.Distribution, space float64) {
	t.Helper()
	bound := geom.NewRect(0, 0, space, space)
	for i, r := range d.Rects() {
		if !r.Valid() || !bound.Contains(r) {
			t.Fatalf("rect %d = %v escapes space %v", i, r, bound)
		}
	}
}

func TestCharminar(t *testing.T) {
	const n, space, size = 40000, 10000.0, 100.0
	d := Charminar(n, space, size, 1)
	if d.N() != n {
		t.Fatalf("N = %d, want %d", d.N(), n)
	}
	checkInsideSpace(t, d, space)
	// All rectangles are identical size.
	for _, r := range d.Rects() {
		if math.Abs(r.Width()-size) > 1e-9 || math.Abs(r.Height()-size) > 1e-9 {
			t.Fatalf("rect %v is not %gx%g", r, size, size)
		}
	}
	// Corners must be much denser than the center: compare counts in a
	// corner box and an equal-size center box.
	corner := geom.NewRect(0, 0, space/5, space/5)
	center := geom.NewRect(2*space/5, 2*space/5, 3*space/5, 3*space/5)
	cc, cm := 0, 0
	for _, r := range d.Rects() {
		c := r.Center()
		if corner.ContainsPoint(c) {
			cc++
		}
		if center.ContainsPoint(c) {
			cm++
		}
	}
	if cc < 4*cm {
		t.Fatalf("corner count %d not >> center count %d", cc, cm)
	}
	if cm == 0 {
		t.Fatal("center must have some background rectangles")
	}
}

func TestCharminarDeterministic(t *testing.T) {
	a := Charminar(1000, 1000, 10, 7)
	b := Charminar(1000, 1000, 10, 7)
	for i := range a.Rects() {
		if a.Rect(i) != b.Rect(i) {
			t.Fatalf("rect %d differs across identical seeds", i)
		}
	}
	c := Charminar(1000, 1000, 10, 8)
	if a.Rect(0) == c.Rect(0) && a.Rect(1) == c.Rect(1) && a.Rect(2) == c.Rect(2) {
		t.Fatal("different seeds look identical")
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(5000, 1000, 5, 20, 3)
	if d.N() != 5000 {
		t.Fatalf("N = %d", d.N())
	}
	checkInsideSpace(t, d, 1000)
	for _, r := range d.Rects() {
		if r.Width() < 5-1e-9 || r.Width() > 20+1e-9 {
			t.Fatalf("width %g outside [5,20]", r.Width())
		}
	}
	// Quadrant counts are roughly balanced.
	quad := [4]int{}
	for _, r := range d.Rects() {
		c := r.Center()
		i := 0
		if c.X > 500 {
			i |= 1
		}
		if c.Y > 500 {
			i |= 2
		}
		quad[i]++
	}
	for i, q := range quad {
		if q < 1000 || q > 1500 {
			t.Fatalf("quadrant %d count %d far from 1250", i, q)
		}
	}
}

func TestSkewedPlacement(t *testing.T) {
	d := Skewed(SkewConfig{N: 10000, Space: 1000, PlacementTheta: 1.0, SizeTheta: 0, MaxSide: 10, Seed: 5})
	if d.N() != 10000 {
		t.Fatalf("N = %d", d.N())
	}
	checkInsideSpace(t, d, 1000)
	// Placement skew concentrates mass near the origin.
	nearOrigin := 0
	for _, r := range d.Rects() {
		c := r.Center()
		if c.X < 100 && c.Y < 100 {
			nearOrigin++
		}
	}
	if nearOrigin < 1000 {
		t.Fatalf("only %d/10000 rects near origin; expected placement skew", nearOrigin)
	}
}

func TestSkewedSizes(t *testing.T) {
	d := Skewed(SkewConfig{N: 10000, Space: 1000, PlacementTheta: 0, SizeTheta: 1.0, MaxSide: 100, Seed: 6})
	small, large := 0, 0
	for _, r := range d.Rects() {
		if r.Width() <= 2 {
			small++
		}
		if r.Width() >= 50 {
			large++
		}
	}
	if large == 0 || small == 0 {
		t.Fatalf("size skew should produce both small (%d) and large (%d) widths", small, large)
	}
	if large < small/100 {
		t.Fatalf("rank-1 (largest) widths should be common under Zipf: small=%d large=%d", small, large)
	}
}

func TestSequoiaPoints(t *testing.T) {
	const n, space = 20000, 10000.0
	d := SequoiaPoints(n, space, 11)
	if d.N() != n {
		t.Fatalf("N = %d", d.N())
	}
	checkInsideSpace(t, d, space)
	// All entries are points.
	for _, r := range d.Rects() {
		if r.Area() != 0 || r.Width() != 0 {
			t.Fatalf("non-point entry %v", r)
		}
	}
	// The coastal band (left ~third) must hold most of the mass.
	coastal := 0
	for _, r := range d.Rects() {
		if r.MinX < 0.38*space {
			coastal++
		}
	}
	if coastal < n/2 {
		t.Fatalf("coastal mass %d/%d too small", coastal, n)
	}
	// Deterministic in the seed.
	e := SequoiaPoints(n, space, 11)
	for i := range d.Rects() {
		if d.Rect(i) != e.Rect(i) {
			t.Fatalf("rect %d differs across identical seeds", i)
		}
	}
}

func TestClusters(t *testing.T) {
	d := Clusters(8000, 5, 1000, 0.02, 1, 5, 9)
	if d.N() != 8000 {
		t.Fatalf("N = %d", d.N())
	}
	checkInsideSpace(t, d, 1000)
	// Clustered data should be far from uniform: the densest 5% x 5%
	// cell grid cell should hold much more than the uniform share.
	const g = 20
	var counts [g * g]int
	for _, r := range d.Rects() {
		c := r.Center()
		x := int(c.X / (1000.0 / g))
		y := int(c.Y / (1000.0 / g))
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		counts[y*g+x]++
	}
	max := 0
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	uniformShare := 8000 / (g * g)
	if max < 5*uniformShare {
		t.Fatalf("densest cell %d not >> uniform share %d", max, uniformShare)
	}
}
