// Package synthetic generates the synthetic rectangle datasets of
// Section 5.1.2 of the paper: inputs with controlled size, sparsity,
// placement skew and size skew. Placement skew is modeled with
// two-dimensional Zipf distributions, size skew with Zipf-distributed
// widths and heights, and the Charminar dataset concentrates
// fixed-size rectangles in the four corners of the space at varying
// densities.
//
// All generators are deterministic in their seed.
package synthetic

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Charminar generates the paper's Charminar dataset: n rectangles of
// identical width and height `size`, in a space x space region, with
// most rectangles concentrated around the four corners at different
// densities and a light uniform background in the middle. The paper's
// instance is Charminar(40000, 10000, 100, seed).
func Charminar(n int, space, size float64, seed int64) *dataset.Distribution {
	return CharminarRand(rand.New(rand.NewSource(seed)), n, space, size)
}

// CharminarRand is Charminar drawing from an injected generator.
func CharminarRand(rng *rand.Rand, n int, space, size float64) *dataset.Distribution {
	rects := make([]geom.Rect, 0, n)

	// Corner cluster weights differ so the corners have varying levels
	// of spatial density, as in Figure 1. The remainder is spread
	// uniformly so interior queries are non-empty.
	corners := []struct {
		cx, cy float64 // corner position (fractions of space)
		weight float64 // fraction of n
		spread float64 // cluster radius as fraction of space
	}{
		{0.0, 0.0, 0.30, 0.18},
		{1.0, 0.0, 0.25, 0.15},
		{0.0, 1.0, 0.20, 0.13},
		{1.0, 1.0, 0.15, 0.10},
	}
	place := func(cx, cy, spread float64) geom.Point {
		// Exponential falloff from the corner, clamped inside the space.
		dx := rng.ExpFloat64() * spread * space / 2
		dy := rng.ExpFloat64() * spread * space / 2
		x := cx*space + dx*sign(0.5-cx)
		y := cy*space + dy*sign(0.5-cy)
		return geom.Point{X: clampf(x, 0, space), Y: clampf(y, 0, space)}
	}

	for _, c := range corners {
		count := int(c.weight * float64(n))
		for i := 0; i < count; i++ {
			p := place(c.cx, c.cy, c.spread)
			rects = append(rects, clampedRect(p, size, size, space))
		}
	}
	// The remaining ~10% (plus rounding shortfall) is a light uniform
	// background so interior queries are non-empty.
	for len(rects) < n {
		p := geom.Point{X: rng.Float64() * space, Y: rng.Float64() * space}
		rects = append(rects, clampedRect(p, size, size, space))
	}
	return dataset.FromRects(rects)
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampedRect builds a w x h rectangle centered at p, shifted to lie
// inside [0,space]^2.
func clampedRect(p geom.Point, w, h, space float64) geom.Rect {
	x0 := clampf(p.X-w/2, 0, space-w)
	y0 := clampf(p.Y-h/2, 0, space-h)
	if w > space {
		x0, w = 0, space
	}
	if h > space {
		y0, h = 0, space
	}
	return geom.NewRect(x0, y0, x0+w, y0+h)
}

// Uniform generates n rectangles with centers uniform in
// [0,space]^2 and sides uniform in [minSide, maxSide].
func Uniform(n int, space, minSide, maxSide float64, seed int64) *dataset.Distribution {
	return UniformRand(rand.New(rand.NewSource(seed)), n, space, minSide, maxSide)
}

// UniformRand is Uniform drawing from an injected generator.
func UniformRand(rng *rand.Rand, n int, space, minSide, maxSide float64) *dataset.Distribution {
	rects := make([]geom.Rect, n)
	for i := range rects {
		w := minSide + rng.Float64()*(maxSide-minSide)
		h := minSide + rng.Float64()*(maxSide-minSide)
		p := geom.Point{X: rng.Float64() * space, Y: rng.Float64() * space}
		rects[i] = clampedRect(p, w, h, space)
	}
	return dataset.FromRects(rects)
}

// SkewConfig parameterizes the general synthetic generator.
type SkewConfig struct {
	N     int     // number of rectangles
	Space float64 // side of the square input space
	// PlacementTheta is the Zipf skew of the rectangle centers along
	// each axis (0 = uniform placement).
	PlacementTheta float64
	// SizeTheta is the Zipf skew of widths and heights (0 = all sides
	// equal to MaxSide).
	SizeTheta float64
	// MaxSide is the largest rectangle side; Zipf rank k gets side
	// MaxSide/k.
	MaxSide float64
	Seed    int64
}

// Skewed generates a dataset with independent two-dimensional Zipf
// placement skew and Zipf size skew per the paper's synthetic data
// methodology.
func Skewed(cfg SkewConfig) *dataset.Distribution {
	return SkewedRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// SkewedRand is Skewed drawing from an injected generator; cfg.Seed is
// ignored in favor of the generator's state.
func SkewedRand(rng *rand.Rand, cfg SkewConfig) *dataset.Distribution {
	placement := NewZipf(rng, 1000, cfg.PlacementTheta)
	sizeRanks := 100
	size := NewZipf(rng, sizeRanks, cfg.SizeTheta)
	rects := make([]geom.Rect, cfg.N)
	for i := range rects {
		p := geom.Point{
			X: placement.DrawFloat() * cfg.Space,
			Y: placement.DrawFloat() * cfg.Space,
		}
		w := cfg.MaxSide / float64(size.Draw())
		h := cfg.MaxSide / float64(size.Draw())
		rects[i] = clampedRect(p, w, h, cfg.Space)
	}
	return dataset.FromRects(rects)
}

// SequoiaPoints generates a point dataset (degenerate rectangles)
// shaped like the Sequoia 2000 benchmark's California sites, the other
// real-life dataset the paper references: a curved coastal band
// holding most of the mass, Zipf-weighted inland clusters, and a
// sparse rural background. Point data is where the fractal technique
// of [BF95] was designed to operate.
func SequoiaPoints(n int, space float64, seed int64) *dataset.Distribution {
	return SequoiaPointsRand(rand.New(rand.NewSource(seed)), n, space)
}

// SequoiaPointsRand is SequoiaPoints drawing from an injected
// generator.
func SequoiaPointsRand(rng *rand.Rand, n int, space float64) *dataset.Distribution {
	rects := make([]geom.Rect, 0, n)
	addPoint := func(x, y float64) {
		p := geom.Point{X: clampf(x, 0, space), Y: clampf(y, 0, space)}
		rects = append(rects, geom.PointRect(p))
	}

	// Coastline: a parametric arc down the left side of the space with
	// Gaussian cross-shore spread; 60% of the points.
	coast := int(0.6 * float64(n))
	for i := 0; i < coast; i++ {
		t := rng.Float64()
		// Arc bulging right around mid-latitude.
		cx := 0.15*space + 0.18*space*math.Sin(t*3.1)
		cy := t * space
		addPoint(cx+rng.NormFloat64()*0.03*space, cy+rng.NormFloat64()*0.01*space)
	}
	// Inland clusters: 30% of the points across Zipf-weighted towns.
	towns := 12
	weights := NewZipf(rng, towns, 1.0)
	type town struct{ x, y float64 }
	ts := make([]town, towns)
	for i := range ts {
		ts[i] = town{x: 0.3*space + rng.Float64()*0.65*space, y: rng.Float64() * space}
	}
	inland := int(0.3 * float64(n))
	for i := 0; i < inland; i++ {
		tw := ts[weights.Draw()-1]
		addPoint(tw.x+rng.NormFloat64()*0.02*space, tw.y+rng.NormFloat64()*0.02*space)
	}
	// Background: the rest, uniform.
	for len(rects) < n {
		addPoint(rng.Float64()*space, rng.Float64()*space)
	}
	return dataset.FromRects(rects)
}

// Clusters generates n rectangles grouped into k Gaussian clusters with
// the given standard deviation (as a fraction of space) and side
// lengths uniform in [minSide, maxSide]. Cluster weights are Zipf
// distributed so some clusters are much denser than others.
func Clusters(n, k int, space, stddevFrac, minSide, maxSide float64, seed int64) *dataset.Distribution {
	return ClustersRand(rand.New(rand.NewSource(seed)), n, k, space, stddevFrac, minSide, maxSide)
}

// ClustersRand is Clusters drawing from an injected generator.
func ClustersRand(rng *rand.Rand, n, k int, space, stddevFrac, minSide, maxSide float64) *dataset.Distribution {
	type cluster struct{ cx, cy float64 }
	cs := make([]cluster, k)
	for i := range cs {
		cs[i] = cluster{cx: rng.Float64() * space, cy: rng.Float64() * space}
	}
	weights := NewZipf(rng, k, 1.0)
	rects := make([]geom.Rect, n)
	for i := range rects {
		c := cs[weights.Draw()-1]
		p := geom.Point{
			X: clampf(c.cx+rng.NormFloat64()*stddevFrac*space, 0, space),
			Y: clampf(c.cy+rng.NormFloat64()*stddevFrac*space, 0, space),
		}
		w := minSide + rng.Float64()*(maxSide-minSide)
		h := minSide + rng.Float64()*(maxSide-minSide)
		rects[i] = clampedRect(p, w, h, space)
	}
	return dataset.FromRects(rects)
}
