package synthetic

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// equalDist reports whether two distributions hold identical rectangle
// sequences.
func equalDist(a, b *dataset.Distribution) bool {
	if a.N() != b.N() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		if a.Rect(i) != b.Rect(i) {
			return false
		}
	}
	return true
}

// The seed-based entry points must be exactly the injected-rng variants
// driven by a generator seeded the same way.
func TestRandVariantsMatchSeeded(t *testing.T) {
	const seed = 777
	if !equalDist(Charminar(500, 1000, 10, seed), CharminarRand(rand.New(rand.NewSource(seed)), 500, 1000, 10)) {
		t.Errorf("CharminarRand diverges from Charminar")
	}
	if !equalDist(Uniform(500, 1000, 1, 20, seed), UniformRand(rand.New(rand.NewSource(seed)), 500, 1000, 1, 20)) {
		t.Errorf("UniformRand diverges from Uniform")
	}
	cfg := SkewConfig{N: 400, Space: 1000, PlacementTheta: 1, SizeTheta: 0.5, MaxSide: 50, Seed: seed}
	if !equalDist(Skewed(cfg), SkewedRand(rand.New(rand.NewSource(seed)), cfg)) {
		t.Errorf("SkewedRand diverges from Skewed")
	}
	if !equalDist(SequoiaPoints(400, 1000, seed), SequoiaPointsRand(rand.New(rand.NewSource(seed)), 400, 1000)) {
		t.Errorf("SequoiaPointsRand diverges from SequoiaPoints")
	}
	if !equalDist(Clusters(400, 5, 1000, 0.05, 1, 20, seed), ClustersRand(rand.New(rand.NewSource(seed)), 400, 5, 1000, 0.05, 1, 20)) {
		t.Errorf("ClustersRand diverges from Clusters")
	}
}

// A single injected generator threaded through several builders yields
// the same experiment end-to-end when re-seeded — the reproducibility
// contract the globalrand analyzer protects.
func TestSharedGeneratorReproducible(t *testing.T) {
	run := func() []*dataset.Distribution {
		rng := rand.New(rand.NewSource(42))
		return []*dataset.Distribution{
			CharminarRand(rng, 300, 1000, 10),
			UniformRand(rng, 300, 1000, 1, 20),
			SequoiaPointsRand(rng, 300, 1000),
		}
	}
	a, b := run(), run()
	for i := range a {
		if !equalDist(a[i], b[i]) {
			t.Errorf("dataset %d differs across identically seeded runs", i)
		}
	}
}
