// Package quadtree implements a point-region quadtree over rectangle
// centers, the other classic spatial decomposition the paper's
// background cites (Samet). Unlike the R-tree, a quadtree partitions
// space by regular recursive quartering, so its leaves form a
// disjoint tiling — which makes it directly usable both as an index
// and as yet another index-derived histogram source to compare with
// the paper's techniques.
package quadtree

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Tree is a PR quadtree storing rectangles by their center points.
// Rectangles themselves are kept in the leaves they map to, so range
// searches must consult neighboring leaves for overhang; the tree
// keeps the maximum rectangle extents to bound that search.
type Tree struct {
	root     *node
	bounds   geom.Rect
	size     int
	leafCap  int
	maxDepth int
	// maxW, maxH bound the extent of any stored rectangle; range
	// queries are expanded by half of these so center-based placement
	// still finds every intersecting rectangle.
	maxW, maxH float64
}

type node struct {
	box geom.Rect
	// Leaf storage; nil children means leaf.
	entries  []entry
	children *[4]*node
	depth    int
	// count is the number of entries in this subtree.
	count int
	// Aggregates for histogram extraction.
	sumW, sumH, sumA float64
}

type entry struct {
	rect geom.Rect
	id   int
}

// Config controls tree shape.
type Config struct {
	// LeafCap is the number of entries a leaf holds before splitting
	// (default 32).
	LeafCap int
	// MaxDepth bounds recursion for pathological inputs (default 16).
	MaxDepth int
}

// New creates an empty tree over the given bounds.
func New(bounds geom.Rect, cfg Config) (*Tree, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("quadtree: invalid bounds %v", bounds)
	}
	if cfg.LeafCap <= 0 {
		cfg.LeafCap = 32
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 16
	}
	return &Tree{
		root:     &node{box: bounds},
		bounds:   bounds,
		leafCap:  cfg.LeafCap,
		maxDepth: cfg.MaxDepth,
	}, nil
}

// Build constructs a quadtree over a distribution.
func Build(d *dataset.Distribution, cfg Config) (*Tree, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("quadtree: empty distribution")
	}
	t, err := New(mbr, cfg)
	if err != nil {
		return nil, err
	}
	for i, r := range d.Rects() {
		if err := t.Insert(r, i); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of stored rectangles.
func (t *Tree) Len() int { return t.size }

// Bounds returns the tree's coverage rectangle.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Insert stores a rectangle under its center. Centers outside the
// tree bounds are rejected.
func (t *Tree) Insert(r geom.Rect, id int) error {
	if !r.Valid() {
		return fmt.Errorf("quadtree: invalid rectangle %v", r)
	}
	c := r.Center()
	if !t.bounds.ContainsPoint(c) {
		return fmt.Errorf("quadtree: center %v outside bounds %v", c, t.bounds)
	}
	if w := r.Width(); w > t.maxW {
		t.maxW = w
	}
	if h := r.Height(); h > t.maxH {
		t.maxH = h
	}
	t.insert(t.root, entry{rect: r, id: id})
	t.size++
	return nil
}

func (t *Tree) insert(n *node, e entry) {
	n.count++
	n.sumW += e.rect.Width()
	n.sumH += e.rect.Height()
	n.sumA += e.rect.Area()
	if n.children == nil {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.leafCap && n.depth < t.maxDepth {
			t.split(n)
		}
		return
	}
	child := n.children[quadrant(n.box, e.rect.Center())]
	t.insert(child, e)
}

// split converts a leaf into an internal node, redistributing entries.
func (t *Tree) split(n *node) {
	cx, cy := n.box.Center().X, n.box.Center().Y
	var kids [4]*node
	boxes := [4]geom.Rect{
		{MinX: n.box.MinX, MinY: n.box.MinY, MaxX: cx, MaxY: cy}, // SW
		{MinX: cx, MinY: n.box.MinY, MaxX: n.box.MaxX, MaxY: cy}, // SE
		{MinX: n.box.MinX, MinY: cy, MaxX: cx, MaxY: n.box.MaxY}, // NW
		{MinX: cx, MinY: cy, MaxX: n.box.MaxX, MaxY: n.box.MaxY}, // NE
	}
	for i := range kids {
		kids[i] = &node{box: boxes[i], depth: n.depth + 1}
	}
	n.children = &kids
	entries := n.entries
	n.entries = nil
	for _, e := range entries {
		child := kids[quadrant(n.box, e.rect.Center())]
		// Insert without re-propagating the parent aggregates (they
		// already include these entries).
		t.insertChildOnly(child, e)
	}
}

func (t *Tree) insertChildOnly(n *node, e entry) {
	n.count++
	n.sumW += e.rect.Width()
	n.sumH += e.rect.Height()
	n.sumA += e.rect.Area()
	if n.children == nil {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.leafCap && n.depth < t.maxDepth {
			t.split(n)
		}
		return
	}
	t.insertChildOnly(n.children[quadrant(n.box, e.rect.Center())], e)
}

// quadrant maps a point to the child index (SW, SE, NW, NE).
func quadrant(box geom.Rect, p geom.Point) int {
	c := box.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	return i
}

// Search invokes fn for every stored rectangle intersecting q; fn
// returning false stops early.
func (t *Tree) Search(q geom.Rect, fn func(r geom.Rect, id int) bool) {
	if t.size == 0 {
		return
	}
	// A rectangle's center can be up to half its extent away from any
	// point it covers; widen the probe so leaf pruning stays sound.
	probe := q.Expand(t.maxW/2, t.maxH/2)
	t.search(t.root, probe, q, fn)
}

func (t *Tree) search(n *node, probe, q geom.Rect, fn func(geom.Rect, int) bool) bool {
	if !n.box.Intersects(probe) {
		return true
	}
	if n.children == nil {
		for _, e := range n.entries {
			if e.rect.Intersects(q) {
				if !fn(e.rect, e.id) {
					return false
				}
			}
		}
		return true
	}
	for _, child := range n.children {
		if !t.search(child, probe, q, fn) {
			return false
		}
	}
	return true
}

// Count returns the number of stored rectangles intersecting q.
func (t *Tree) Count(q geom.Rect) int {
	c := 0
	t.Search(q, func(geom.Rect, int) bool { c++; return true })
	return c
}

// LeafSummary describes one leaf tile for histogram extraction.
type LeafSummary struct {
	Box   geom.Rect
	Count int
	SumW  float64
	SumH  float64
	SumA  float64
}

// Leaves returns a summary per leaf, a disjoint tiling of the bounds.
func (t *Tree) Leaves() []LeafSummary {
	var out []LeafSummary
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			out = append(out, LeafSummary{
				Box: n.box, Count: n.count, SumW: n.sumW, SumH: n.sumH, SumA: n.sumA,
			})
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Depth returns the maximum leaf depth.
func (t *Tree) Depth() int {
	max := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			if n.depth > max {
				max = n.depth
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return max
}
