package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func randRects(rng *rand.Rand, n int, space, maxSide float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64()*space, rng.Float64()*space
		w, h := rng.Float64()*maxSide, rng.Float64()*maxSide
		out[i] = geom.NewRect(x, y, math.Min(x+w, space), math.Min(y+h, space))
	}
	return out
}

func TestNewErrors(t *testing.T) {
	if _, err := New(geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, Config{}); err == nil {
		t.Fatal("invalid bounds should fail")
	}
	if _, err := Build(dataset.New(nil), Config{}); err == nil {
		t.Fatal("empty distribution should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, err := New(geom.NewRect(0, 0, 100, 100), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}, 0); err == nil {
		t.Fatal("invalid rect should fail")
	}
	if err := tr.Insert(geom.NewRect(500, 500, 510, 510), 0); err == nil {
		t.Fatal("center outside bounds should fail")
	}
	if tr.Len() != 0 {
		t.Fatal("failed inserts must not count")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rects := randRects(rng, 3000, 1000, 40)
	d := dataset.New(rects)
	tr, err := Build(d, Config{LeafCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(rects) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 300; i++ {
		x, y := rng.Float64()*1100-50, rng.Float64()*1100-50
		q := geom.NewRect(x, y, x+rng.Float64()*300, y+rng.Float64()*300)
		want := 0
		for _, r := range rects {
			if r.Intersects(q) {
				want++
			}
		}
		if got := tr.Count(q); got != want {
			t.Fatalf("query %v: Count = %d, want %d", q, got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr, _ := New(geom.NewRect(0, 0, 10, 10), Config{LeafCap: 4})
	for i := 0; i < 50; i++ {
		if err := tr.Insert(geom.NewRect(1, 1, 2, 2), i); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	tr.Search(geom.NewRect(0, 0, 10, 10), func(geom.Rect, int) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestLeavesTileBounds(t *testing.T) {
	d := synthetic.Charminar(5000, 1000, 10, 3)
	tr, err := Build(d, Config{LeafCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	var area float64
	total := 0
	var sumW float64
	for _, l := range leaves {
		area += l.Box.Area()
		total += l.Count
		sumW += l.SumW
	}
	bounds := tr.Bounds()
	if math.Abs(area-bounds.Area())/bounds.Area() > 1e-9 {
		t.Fatalf("leaf areas %g != bounds area %g", area, bounds.Area())
	}
	if total != d.N() {
		t.Fatalf("leaf counts %d != N %d", total, d.N())
	}
	var wantW float64
	for _, r := range d.Rects() {
		wantW += r.Width()
	}
	if math.Abs(sumW-wantW) > 1e-6 {
		t.Fatalf("leaf sumW %g != %g", sumW, wantW)
	}
	// Pairwise disjoint (spot check first 50).
	n := len(leaves)
	if n > 50 {
		n = 50
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if leaves[i].Box.IntersectionArea(leaves[j].Box) > 1e-9 {
				t.Fatalf("leaves %d and %d overlap", i, j)
			}
		}
	}
}

func TestAdaptiveDepth(t *testing.T) {
	// Clustered data splits deeper where the data is.
	d := synthetic.Clusters(20000, 2, 1000, 0.01, 1, 3, 5)
	tr, err := Build(d, Config{LeafCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() < 4 {
		t.Fatalf("Depth = %d; clusters should force deep splits", tr.Depth())
	}
	// Uniform sparse data stays shallow.
	sparse := synthetic.Uniform(50, 1000, 1, 3, 6)
	tr2, err := Build(sparse, Config{LeafCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Depth() != 0 {
		t.Fatalf("sparse Depth = %d, want 0 (single leaf)", tr2.Depth())
	}
}

func TestMaxDepthBoundsPathologicalInput(t *testing.T) {
	// Identical centers cannot be separated: depth must respect the
	// cap and not recurse forever.
	tr, _ := New(geom.NewRect(0, 0, 100, 100), Config{LeafCap: 2, MaxDepth: 6})
	for i := 0; i < 100; i++ {
		if err := tr.Insert(geom.NewRect(50, 50, 50, 50), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Depth() > 6 {
		t.Fatalf("Depth = %d exceeds cap", tr.Depth())
	}
	if got := tr.Count(geom.PointRect(geom.Point{X: 50, Y: 50})); got != 100 {
		t.Fatalf("Count = %d", got)
	}
}
