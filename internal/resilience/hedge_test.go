package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// latencyHist builds a histogram with the given bounds (seconds) and
// observations.
func latencyHist(t *testing.T, bounds []float64, obs []float64) *telemetry.Histogram {
	t.Helper()
	h, err := telemetry.NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range obs {
		h.Observe(v)
	}
	return h
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestHedgeDelayFrom pins the adaptive-delay ladder: disabled → 0,
// too few samples → Default, enough samples → the configured quantile,
// always clamped to [Min, Max].
func TestHedgeDelayFrom(t *testing.T) {
	bounds := []float64{0.010, 0.100, 1.0}

	t.Run("disabled", func(t *testing.T) {
		c := HedgeConfig{Disable: true}
		if d := c.DelayFrom(latencyHist(t, bounds, repeat(0.05, 100))); d != 0 {
			t.Fatalf("disabled hedging delay = %v, want 0", d)
		}
	})

	t.Run("nil-histogram-uses-default", func(t *testing.T) {
		var c HedgeConfig
		if d := c.DelayFrom(nil); d != 25*time.Millisecond {
			t.Fatalf("delay = %v, want the 25ms default", d)
		}
	})

	t.Run("below-min-samples-uses-default", func(t *testing.T) {
		var c HedgeConfig // MinSamples defaults to 32
		h := latencyHist(t, bounds, repeat(0.05, 31))
		if d := c.DelayFrom(h); d != 25*time.Millisecond {
			t.Fatalf("31 samples: delay = %v, want the 25ms default", d)
		}
	})

	t.Run("default-is-clamped-too", func(t *testing.T) {
		c := HedgeConfig{Default: 500 * time.Millisecond} // above the 100ms Max
		if d := c.DelayFrom(nil); d != 100*time.Millisecond {
			t.Fatalf("oversized default delay = %v, want clamped to 100ms", d)
		}
	})

	t.Run("quantile-once-warm", func(t *testing.T) {
		var c HedgeConfig // quantile 0.95
		// 100 observations of 50ms land in the (10ms, 100ms] bucket; the
		// p95 interpolates to 10ms + 90ms*95/100 = 95.5ms.
		h := latencyHist(t, bounds, repeat(0.05, 100))
		d := c.DelayFrom(h)
		if d < 94*time.Millisecond || d > 97*time.Millisecond {
			t.Fatalf("warm delay = %v, want ~95.5ms (interpolated p95)", d)
		}
	})

	t.Run("min-clamp", func(t *testing.T) {
		c := HedgeConfig{Min: 10 * time.Millisecond}
		// 64 sub-millisecond observations: the p95 is far below Min.
		h := latencyHist(t, []float64{0.001, 1.0}, repeat(0.0005, 64))
		if d := c.DelayFrom(h); d != 10*time.Millisecond {
			t.Fatalf("delay = %v, want clamped up to the 10ms Min", d)
		}
	})

	t.Run("max-clamp-via-overflow", func(t *testing.T) {
		var c HedgeConfig
		// Every observation overflows into +Inf: the quantile reports the
		// largest finite bound (1s), which Max clamps to 100ms.
		h := latencyHist(t, bounds, repeat(10.0, 64))
		if d := c.DelayFrom(h); d != 100*time.Millisecond {
			t.Fatalf("delay = %v, want clamped down to the 100ms Max", d)
		}
	})
}

// TestDoHedgeWins races a primary stuck in a 200ms virtual sleep
// against a hedge launched after 5ms: the hedge must win, the stats
// must say so, and the win must land at roughly the hedge delay —
// that is the whole point of hedging. Virtual time only.
func TestDoHedgeWins(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	t0 := sim.Now()
	var (
		mu      sync.Mutex
		hedgeAt time.Time
	)
	fn := func(ctx context.Context, attempt int) (int, error) {
		if attempt == 0 {
			sim.Sleep(200 * time.Millisecond) // slow shard
			return 1, nil
		}
		mu.Lock()
		hedgeAt = sim.Now()
		mu.Unlock()
		return 99, nil
	}

	var (
		v     int
		stats Stats
		err   error
	)
	done := make(chan struct{})
	go func() {
		v, stats, err = Do(context.Background(), CallPolicy{Clock: sim, HedgeDelay: 5 * time.Millisecond}, fn)
		close(done)
	}()
	driveRetries(sim, done) // primary's sleep + hedge timer = 2 pending events
	<-done
	sim.Advance(300 * time.Millisecond) // release the sleeping primary

	if err != nil || v != 99 {
		t.Fatalf("Do = (%d, %v), want the hedge's 99", v, err)
	}
	if stats.Hedges != 1 || !stats.HedgeWon || stats.Attempts != 2 || stats.Retries != 0 {
		t.Fatalf("stats = %+v, want one winning hedge and no retries", stats)
	}
	elapsed := hedgeAt.Sub(t0)
	if elapsed < 5*time.Millisecond || elapsed > 7*time.Millisecond {
		t.Fatalf("hedge launched %v after start, want ~5ms (the hedge delay)", elapsed)
	}
}

// TestDoFastPrimaryNeverHedges: a primary that answers before the
// hedge delay leaves the hedge unlaunched — hedges must be free on the
// healthy path.
func TestDoFastPrimaryNeverHedges(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	v, stats, err := Do(context.Background(), CallPolicy{Clock: sim, HedgeDelay: 5 * time.Millisecond},
		func(ctx context.Context, attempt int) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("Do = (%d, %v), want (7, nil)", v, err)
	}
	if stats.Hedges != 0 || stats.HedgeWon || stats.Attempts != 1 {
		t.Fatalf("stats = %+v, want a single unhedged attempt", stats)
	}
}

// TestDoHedgeLosesToPrimary: when the hedge fires but the primary still
// answers first, the primary's value wins and HedgeWon stays false.
func TestDoHedgeLosesToPrimary(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	fn := func(ctx context.Context, attempt int) (int, error) {
		if attempt == 0 {
			sim.Sleep(10 * time.Millisecond) // slower than the hedge delay...
			return 1, nil
		}
		sim.Sleep(50 * time.Millisecond) // ...but faster than the hedge
		return 99, nil
	}
	var (
		v     int
		stats Stats
		err   error
	)
	done := make(chan struct{})
	go func() {
		v, stats, err = Do(context.Background(), CallPolicy{Clock: sim, HedgeDelay: 5 * time.Millisecond}, fn)
		close(done)
	}()
	driveRetries(sim, done)
	<-done
	sim.Advance(100 * time.Millisecond) // release the losing hedge

	if err != nil || v != 1 {
		t.Fatalf("Do = (%d, %v), want the primary's 1", v, err)
	}
	if stats.Hedges != 1 || stats.HedgeWon {
		t.Fatalf("stats = %+v, want a launched-but-losing hedge", stats)
	}
}

// TestDoHedgeAfterFailureStillCounts: hedging and retries compose — a
// failing primary plus a winning hedge reports both truthfully.
func TestDoHedgedRetryComposition(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	ctx, cancel := vclock.WithTimeout(context.Background(), sim, 80*time.Millisecond)
	defer cancel()
	retrier := NewRetrier(RetryConfig{}, sim, nil)
	fn := func(ctx context.Context, attempt int) (int, error) {
		switch attempt {
		case 0:
			return 0, errors.New("primary fails instantly")
		case 1: // hedge (launched at 5ms, before the first ~2ms+ backoff expires… or retry; either way it blocks)
			sim.Sleep(30 * time.Millisecond)
			return 50, nil
		default: // whichever of retry/hedge launched later
			sim.Sleep(30 * time.Millisecond)
			return 60, nil
		}
	}
	var (
		stats Stats
		err   error
	)
	done := make(chan struct{})
	go func() {
		_, stats, err = Do(ctx, CallPolicy{Clock: sim, Retry: retrier, HedgeDelay: 5 * time.Millisecond}, fn)
		close(done)
	}()
	driveRetries(sim, done)
	<-done
	sim.Advance(200 * time.Millisecond)

	if err != nil {
		t.Fatalf("Do err = %v, want a late attempt to succeed", err)
	}
	if stats.Retries != 1 || stats.Hedges != 1 || stats.Attempts != 3 {
		t.Fatalf("stats = %+v, want 3 attempts: failed primary + retry + hedge", stats)
	}
}
