// Package resilience is the failure-containment layer of the sharded
// estimation service: per-shard circuit breakers, deadline-budgeted
// retries with decorrelated-jitter backoff, and hedged calls that
// launch a second attempt once the first overstays an adaptive
// latency percentile.
//
// The package exists because one bad shard must not poison a whole
// scatter-gather: a shard that errors repeatedly should be walled off
// (breaker) and answered from a coarser summary, a transiently failing
// shard should be retried while the deadline still affords it, and a
// merely slow shard should be raced against a hedge attempt instead of
// dragging the whole request to its deadline. The degradation target —
// the multi-resolution Min-Skew ladder — lives in internal/shard; this
// package only decides *when* to stop trying for the full answer.
//
// Everything is deterministic under test: time comes from an injected
// vclock.Clock and jitter from an injected *rand.Rand, so the fault
// simulation harness replays identical schedules from a seed.
package resilience

import (
	"context"
	"time"

	"repro/internal/reqtrace"
	"repro/internal/vclock"
)

// Config bundles the whole layer's tuning. The zero value enables
// breakers, retries and hedging with the component defaults; each
// component has its own Disable flag, and Disable here turns the whole
// layer off.
type Config struct {
	// Disable turns the entire resilience layer off: no breakers, no
	// retries, no hedging.
	Disable bool
	// Breaker tunes the per-shard circuit breakers.
	Breaker BreakerConfig
	// Retry tunes the per-call retry policy.
	Retry RetryConfig
	// Hedge tunes the hedged-call trigger.
	Hedge HedgeConfig
	// Seed seeds the jitter generator. Default 1; the same seed and
	// schedule reproduce the same backoffs.
	Seed int64
}

// WithDefaults resolves every zero field to its documented default.
func (c Config) WithDefaults() Config {
	c.Breaker = c.Breaker.withDefaults()
	c.Retry = c.Retry.withDefaults()
	c.Hedge = c.Hedge.withDefaults()
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BreakersEnabled reports whether per-shard breakers should be built.
func (c Config) BreakersEnabled() bool { return !c.Disable && !c.Breaker.Disable }

// RetriesEnabled reports whether the retry policy is active.
func (c Config) RetriesEnabled() bool { return !c.Disable && !c.Retry.Disable }

// HedgingEnabled reports whether hedged calls are active.
func (c Config) HedgingEnabled() bool { return !c.Disable && !c.Hedge.Disable }

// Stats reports what one Do invocation actually did.
type Stats struct {
	// Attempts is the total number of attempts launched (primary,
	// retries and hedge).
	Attempts int
	// Retries is how many attempts were launched because an earlier one
	// failed.
	Retries int
	// Hedges is 1 if the hedge attempt was launched.
	Hedges int
	// HedgeWon reports that the hedge attempt produced the winning
	// result.
	HedgeWon bool
}

// CallPolicy configures one Do invocation.
type CallPolicy struct {
	// Clock times the backoff and hedge triggers; nil means real time.
	Clock vclock.Clock
	// Retry, when non-nil, relaunches failed attempts within the
	// deadline budget.
	Retry *Retrier
	// HedgeDelay, when positive, launches one extra concurrent attempt
	// after this long without a result.
	HedgeDelay time.Duration
	// JitterKey, when nonzero, derives retry backoff jitter from a
	// pure function of this key and the draw number instead of the
	// retrier's shared generator, so the backoff schedule does not
	// depend on how concurrent calls interleave their draws. Callers
	// fold the call's identity (shard, epoch, query) into the key.
	JitterKey uint64
}

// attemptResult carries one attempt's outcome back to the Do loop.
type attemptResult[T any] struct {
	v     T
	err   error
	hedge bool
}

// Do runs fn with retries and hedging per the policy and returns the
// first successful result. fn receives a child context that is
// cancelled as soon as Do returns, so losing attempts stop promptly,
// and the attempt's sequence number (0 = primary; retries and the
// hedge get successive numbers in launch order).
//
// Do returns when an attempt succeeds, when ctx is done, or when every
// launched attempt has failed and the retry budget (count or deadline)
// affords no further one. The error is then ctx.Err() or the last
// attempt error.
func Do[T any](ctx context.Context, p CallPolicy, fn func(ctx context.Context, attempt int) (T, error)) (T, Stats, error) {
	var zero T
	clk := p.Clock
	if clk == nil {
		clk = vclock.Real()
	}
	maxAttempts := 1
	if p.Retry != nil {
		maxAttempts = p.Retry.MaxAttempts()
	}
	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts()

	// Buffered to every attempt that could ever launch, so losers
	// deliver without blocking after Do has returned.
	results := make(chan attemptResult[T], maxAttempts+1)
	var stats Stats
	launch := func(hedge bool) {
		seq := stats.Attempts
		stats.Attempts++
		go func() {
			v, err := fn(attemptCtx, seq)
			results <- attemptResult[T]{v: v, err: err, hedge: hedge}
		}()
	}
	launch(false)
	errAttempts := 1 // attempts consumed from the retry budget
	pending := 1     // attempts in flight

	var hedgeCh <-chan time.Time
	if p.HedgeDelay > 0 {
		t := clk.NewTimer(p.HedgeDelay)
		defer t.Stop()
		hedgeCh = t.C
	}
	var (
		retryTimer *vclock.Timer
		retryCh    <-chan time.Time
		prev       time.Duration
		lastErr    error
	)
	defer func() { retryTimer.Stop() }()

	// Retry and hedge decisions are emitted as events on the caller's
	// span (nil — a no-op — when the request carries no trace). They
	// fire only in this coordinator goroutine, so event order within
	// the span is the decision order.
	sp := reqtrace.SpanFrom(ctx)

	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				stats.HedgeWon = r.hedge
				if r.hedge {
					sp.Event("resilience.hedge_win")
				}
				return r.v, stats, nil
			}
			lastErr = r.err
			// Schedule a retry if the budget — both the attempt count and
			// the remaining deadline — still affords one.
			if p.Retry != nil && errAttempts < maxAttempts && retryCh == nil {
				var d time.Duration
				if p.JitterKey != 0 {
					d = p.Retry.NextBackoffKeyed(prev, p.JitterKey, errAttempts-1)
				} else {
					d = p.Retry.NextBackoff(prev)
				}
				prev = d
				if p.Retry.FitsBudget(ctx, d) {
					retryTimer = clk.NewTimer(d)
					retryCh = retryTimer.C
				}
			}
			if retryCh == nil && pending == 0 {
				return zero, stats, lastErr
			}
		case <-retryCh:
			retryTimer, retryCh = nil, nil
			errAttempts++
			pending++
			stats.Retries++
			sp.Event("resilience.retry", reqtrace.Int("attempt", stats.Attempts))
			launch(false)
		case <-hedgeCh:
			hedgeCh = nil
			pending++
			stats.Hedges++
			sp.Event("resilience.hedge", reqtrace.Int("attempt", stats.Attempts))
			launch(true)
		case <-ctx.Done():
			return zero, stats, ctx.Err()
		}
	}
}
