package resilience

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

var errBoom = errors.New("boom")

// TestNextBackoffProperty: thousands of decorrelated-jitter draws under
// several seeds, every one within [Base, min(Cap, 3*max(prev, Base))]
// — and therefore always within [Base, Cap].
func TestNextBackoffProperty(t *testing.T) {
	cfg := RetryConfig{Base: 2 * time.Millisecond, Cap: 100 * time.Millisecond}
	for _, seed := range []int64{1, 7, 42, 99, 12345} {
		r := NewRetrier(cfg, nil, rand.New(rand.NewSource(seed)))
		prev := time.Duration(0)
		for i := 0; i < 5000; i++ {
			d := r.NextBackoff(prev)
			anchor := prev
			if anchor < cfg.Base {
				anchor = cfg.Base
			}
			hi := 3 * anchor
			if hi > cfg.Cap {
				hi = cfg.Cap
			}
			if hi < cfg.Base {
				hi = cfg.Base
			}
			if d < cfg.Base || d > hi {
				t.Fatalf("seed %d draw %d: backoff %v outside [%v, %v] (prev %v)",
					seed, i, d, cfg.Base, hi, prev)
			}
			prev = d
		}
	}
}

// TestFitsBudget pins the deadline arithmetic on a virtual clock: a
// backoff fits only if backoff+Margin still precedes the deadline from
// the clock's current reading.
func TestFitsBudget(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	ctx, cancel := vclock.WithTimeout(context.Background(), sim, 10*time.Millisecond)
	defer cancel()
	r := NewRetrier(RetryConfig{Margin: time.Millisecond}, sim, nil)

	if !r.FitsBudget(ctx, 5*time.Millisecond) {
		t.Error("5ms backoff + 1ms margin fits a 10ms budget")
	}
	if r.FitsBudget(ctx, 9*time.Millisecond) {
		t.Error("9ms backoff + 1ms margin overruns a 10ms budget")
	}
	sim.Advance(6 * time.Millisecond)
	if r.FitsBudget(ctx, 4*time.Millisecond) {
		t.Error("4ms backoff no longer fits with 4ms of budget left")
	}
	if !r.FitsBudget(ctx, 2*time.Millisecond) {
		t.Error("2ms backoff + 1ms margin fits 4ms of remaining budget")
	}
	if !r.FitsBudget(context.Background(), time.Hour) {
		t.Error("a context without a deadline always fits")
	}
}

// driveRetries advances the virtual clock only while more than one
// event is pending — the request deadline is always registered, so a
// second event means Do armed a backoff (or hedge) timer and is
// genuinely waiting. Stopping at one pending event keeps the driver
// from racing past the deadline while an instant attempt's result is
// still in flight, which makes the Do tests below deterministic.
func driveRetries(sim *vclock.Sim, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if sim.Pending() > 1 {
			sim.Advance(100 * time.Microsecond)
		}
		runtime.Gosched()
	}
}

// TestDoBudgetNeverSchedulesPastDeadline is the retry-budget property
// test: an always-failing call under a 10ms virtual deadline and a
// huge attempt allowance must stop because the budget says so — Do
// returns the attempt error, never context.DeadlineExceeded — and no
// attempt may launch at or after the deadline. Entirely on virtual
// time; no real sleeps.
func TestDoBudgetNeverSchedulesPastDeadline(t *testing.T) {
	const deadline = 10 * time.Millisecond
	for _, seed := range []int64{1, 7, 42, 99, 12345} {
		sim := vclock.NewSim(time.Unix(0, 0))
		ctx, cancel := vclock.WithTimeout(context.Background(), sim, deadline)
		retrier := NewRetrier(RetryConfig{
			MaxAttempts: 100, // far beyond what the deadline affords
			Base:        2 * time.Millisecond,
			Cap:         6 * time.Millisecond,
			Margin:      time.Millisecond,
		}, sim, rand.New(rand.NewSource(seed)))

		var mu sync.Mutex
		var starts []time.Time
		fn := func(ctx context.Context, attempt int) (int, error) {
			mu.Lock()
			starts = append(starts, sim.Now())
			mu.Unlock()
			return 0, errBoom
		}

		var (
			stats Stats
			err   error
		)
		done := make(chan struct{})
		go func() {
			_, stats, err = Do(ctx, CallPolicy{Clock: sim, Retry: retrier}, fn)
			close(done)
		}()
		driveRetries(sim, done)
		<-done
		cancel()

		if !errors.Is(err, errBoom) {
			t.Fatalf("seed %d: err = %v, want the attempt error — budget exhaustion, not deadline overrun", seed, err)
		}
		if stats.Retries == 0 {
			t.Errorf("seed %d: a 10ms budget with 2ms backoffs afforded no retry at all", seed)
		}
		if stats.Attempts > retrier.MaxAttempts() {
			t.Errorf("seed %d: %d attempts exceed MaxAttempts %d", seed, stats.Attempts, retrier.MaxAttempts())
		}
		dl := time.Unix(0, 0).Add(deadline)
		for i, st := range starts {
			if !st.Before(dl) {
				t.Errorf("seed %d: attempt %d launched at +%v, at/after the %v deadline",
					seed, i, st.Sub(time.Unix(0, 0)), deadline)
			}
		}
	}
}

// TestDoBudgetRejectsImmediately: when even the first backoff cannot
// fit before the deadline, Do fails fast with the attempt error — no
// timer is armed, no clock driving needed.
func TestDoBudgetRejectsImmediately(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	ctx, cancel := vclock.WithTimeout(context.Background(), sim, 2*time.Millisecond)
	defer cancel()
	// Base 2ms + Margin 1ms can never fit a 2ms budget.
	retrier := NewRetrier(RetryConfig{}, sim, rand.New(rand.NewSource(1)))

	_, stats, err := Do(ctx, CallPolicy{Clock: sim, Retry: retrier},
		func(ctx context.Context, attempt int) (int, error) { return 0, errBoom })
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want immediate attempt error", err)
	}
	if stats.Attempts != 1 || stats.Retries != 0 {
		t.Fatalf("stats = %+v, want exactly one attempt and no retries", stats)
	}
}

// TestDoRetrySucceeds: first attempt fails, the backoff timer fires on
// virtual time, the second attempt wins.
func TestDoRetrySucceeds(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	ctx, cancel := vclock.WithTimeout(context.Background(), sim, 50*time.Millisecond)
	defer cancel()
	retrier := NewRetrier(RetryConfig{}, sim, rand.New(rand.NewSource(1)))

	var (
		v     int
		stats Stats
		err   error
	)
	done := make(chan struct{})
	go func() {
		v, stats, err = Do(ctx, CallPolicy{Clock: sim, Retry: retrier},
			func(ctx context.Context, attempt int) (int, error) {
				if attempt == 0 {
					return 0, errBoom
				}
				return 41 + attempt, nil
			})
		close(done)
	}()
	driveRetries(sim, done)
	<-done

	if err != nil || v != 42 {
		t.Fatalf("Do = (%d, %v), want (42, nil)", v, err)
	}
	if stats.Attempts != 2 || stats.Retries != 1 || stats.Hedges != 0 || stats.HedgeWon {
		t.Fatalf("stats = %+v, want 2 attempts / 1 retry / no hedge", stats)
	}
}

// TestDoNoRetryPolicy: without a Retrier a failure is final after one
// attempt.
func TestDoNoRetryPolicy(t *testing.T) {
	_, stats, err := Do(context.Background(), CallPolicy{},
		func(ctx context.Context, attempt int) (int, error) { return 0, errBoom })
	if !errors.Is(err, errBoom) || stats.Attempts != 1 {
		t.Fatalf("Do = (%+v, %v), want one failed attempt", stats, err)
	}
}

// TestDoContextCancelled: cancelling the request context unblocks Do
// with ctx.Err() even while an attempt is still running.
func TestDoContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan struct{})
	var err error
	go func() {
		_, _, err = Do(ctx, CallPolicy{},
			func(ctx context.Context, attempt int) (int, error) {
				close(started)
				<-ctx.Done() // attempt blocks until Do's child context dies
				return 0, ctx.Err()
			})
		close(done)
	}()
	<-started
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
