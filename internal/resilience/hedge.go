package resilience

import (
	"time"

	"repro/internal/telemetry"
)

// HedgeConfig tunes the hedged-call trigger: how long the primary
// attempt may run before a second attempt is raced against it. The
// delay adapts to the observed latency distribution — the classic
// tail-at-scale recipe of hedging at a high percentile, so hedges are
// rare on the healthy path and prompt when a shard is slow.
type HedgeConfig struct {
	// Disable turns hedging off.
	Disable bool
	// Quantile of the observed latency histogram used as the hedge
	// delay. Default 0.95.
	Quantile float64
	// Default is the delay used before MinSamples observations exist.
	// Default 25ms.
	Default time.Duration
	// Min and Max clamp the adaptive delay. Defaults 1ms and 100ms.
	Min time.Duration
	Max time.Duration
	// MinSamples is how many latency observations must exist before
	// the quantile is trusted over Default. Default 32.
	MinSamples int
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Default == 0 {
		c.Default = 25 * time.Millisecond
	}
	if c.Min == 0 {
		c.Min = time.Millisecond
	}
	if c.Max == 0 {
		c.Max = 100 * time.Millisecond
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
	return c
}

// DelayFrom computes the hedge delay from a latency histogram whose
// observations are in seconds: the configured quantile, clamped to
// [Min, Max]; the Default (clamped the same way) while the histogram
// is nil or has fewer than MinSamples observations. Returns 0 when
// hedging is disabled — callers treat 0 as "no hedge".
func (c HedgeConfig) DelayFrom(h *telemetry.Histogram) time.Duration {
	if c.Disable {
		return 0
	}
	c = c.withDefaults()
	d := c.Default
	if h.Count() >= uint64(c.MinSamples) {
		if q, ok := h.Quantile(c.Quantile); ok {
			d = time.Duration(q * float64(time.Second))
		}
	}
	if d < c.Min {
		d = c.Min
	}
	if d > c.Max {
		d = c.Max
	}
	return d
}
