package resilience

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// State is a circuit breaker state.
type State int

const (
	// StateClosed admits every call (the healthy state).
	StateClosed State = iota
	// StateHalfOpen admits a bounded number of probe calls after the
	// open cooldown; their outcomes decide between Closed and Open.
	StateHalfOpen
	// StateOpen rejects every call until the cooldown elapses.
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// BreakerConfig tunes one circuit breaker. The zero value takes every
// default below.
type BreakerConfig struct {
	// Disable turns breakers off (Allow always admits).
	Disable bool
	// Window is the rolling failure-rate window. Default 10s.
	Window time.Duration
	// WindowBuckets is the number of time cells the window is divided
	// into; old cells age out wholesale. Default 10.
	WindowBuckets int
	// MinRequests is the minimum number of calls inside the window
	// before the failure rate is evaluated at all. Default 10.
	MinRequests int
	// FailureRate opens the breaker when failures/total inside the
	// window reaches it. Default 0.5.
	FailureRate float64
	// OpenTimeout is the cooldown before an open breaker admits
	// half-open probes. Default 2s.
	OpenTimeout time.Duration
	// HalfOpenProbes bounds the concurrently admitted probe calls while
	// half-open. Default 1.
	HalfOpenProbes int
	// SuccessesToClose is how many consecutive probe successes close
	// the breaker again. Default 2.
	SuccessesToClose int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window == 0 {
		c.Window = 10 * time.Second
	}
	if c.WindowBuckets == 0 {
		c.WindowBuckets = 10
	}
	if c.MinRequests == 0 {
		c.MinRequests = 10
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.5
	}
	if c.OpenTimeout == 0 {
		c.OpenTimeout = 2 * time.Second
	}
	if c.HalfOpenProbes == 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose == 0 {
		c.SuccessesToClose = 2
	}
	return c
}

// Token ties a Record back to the Allow that admitted the call. A
// record whose token predates a state transition is discarded, so a
// straggler call finishing after the breaker already tripped cannot
// corrupt the half-open probe accounting.
type Token struct {
	gen   uint64
	probe bool
}

// windowCell is one time slice of the rolling failure window.
type windowCell struct {
	epoch      int64 // absolute cell index since the breaker's origin
	succ, fail int
}

// Breaker is a circuit breaker over an injected clock. All methods are
// safe for concurrent use; a nil *Breaker admits everything and
// records nothing, so disabled-breaker call sites need no branches.
//
// Transitions are lazy: an open breaker flips to half-open when Allow
// first runs after the cooldown, not on a timer — the breaker owns no
// goroutines.
type Breaker struct {
	cfg      BreakerConfig
	clk      vclock.Clock
	onChange func(from, to State)

	mu        sync.Mutex
	state     State
	gen       uint64 // bumped on every transition; stale tokens are dropped
	origin    time.Time
	cells     []windowCell
	openedAt  time.Time
	probes    int // half-open probes currently in flight
	probeSucc int // consecutive probe successes this half-open phase
}

// NewBreaker builds a breaker on clk (nil means real time). onChange,
// when non-nil, observes every state transition; it is called without
// the breaker lock held, so it may call back into the breaker.
func NewBreaker(cfg BreakerConfig, clk vclock.Clock, onChange func(from, to State)) *Breaker {
	if clk == nil {
		clk = vclock.Real()
	}
	return &Breaker{cfg: cfg.withDefaults(), clk: clk, onChange: onChange, origin: clk.Now()}
}

// State returns the current state (StateClosed for nil), applying any
// due lazy open→half-open transition first.
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	st, notify := b.state, b.maybeCooldownLocked(b.clk.Now())
	if notify != nil {
		st = b.state
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return st
}

// Allow reports whether a call may proceed, returning the token the
// caller must pass to Record. Nil breakers always admit.
func (b *Breaker) Allow() (Token, bool) {
	if b == nil {
		return Token{}, true
	}
	b.mu.Lock()
	now := b.clk.Now()
	notify := b.maybeCooldownLocked(now)
	var (
		tok Token
		ok  bool
	)
	switch b.state {
	case StateClosed:
		tok, ok = Token{gen: b.gen}, true
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			tok, ok = Token{gen: b.gen, probe: true}, true
		}
	case StateOpen:
		// still cooling down
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return tok, ok
}

// Record reports the outcome of a call admitted by Allow. Records
// carrying a stale token (the breaker transitioned since Allow) are
// discarded. Nil breakers ignore everything.
func (b *Breaker) Record(tok Token, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	now := b.clk.Now()
	var notify func()
	if tok.gen != b.gen {
		b.mu.Unlock()
		return
	}
	switch b.state {
	case StateClosed:
		cell := b.cellLocked(now)
		if success {
			cell.succ++
		} else {
			cell.fail++
			if succ, fail := b.windowTotalsLocked(now); succ+fail >= b.cfg.MinRequests &&
				float64(fail) >= b.cfg.FailureRate*float64(succ+fail) {
				notify = b.transitionLocked(StateOpen, now)
			}
		}
	case StateHalfOpen:
		if !tok.probe {
			break
		}
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.probeSucc++
			if b.probeSucc >= b.cfg.SuccessesToClose {
				notify = b.transitionLocked(StateClosed, now)
			}
		} else {
			notify = b.transitionLocked(StateOpen, now)
		}
	case StateOpen:
		// A record can only reach here with a current-gen token, which
		// Open never hands out; nothing to do.
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// maybeCooldownLocked applies the lazy open→half-open transition once
// the cooldown has elapsed, returning the deferred onChange call (nil
// if no transition happened). Callers hold b.mu.
func (b *Breaker) maybeCooldownLocked(now time.Time) func() {
	if b.state != StateOpen || now.Sub(b.openedAt) < b.cfg.OpenTimeout {
		return nil
	}
	return b.transitionLocked(StateHalfOpen, now)
}

// transitionLocked moves to the new state, bumps the token generation,
// and resets per-state bookkeeping. It returns the onChange callback
// to run after unlocking (nil when there is none or no change).
func (b *Breaker) transitionLocked(to State, now time.Time) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	b.gen++
	b.probes = 0
	b.probeSucc = 0
	switch to {
	case StateOpen:
		b.openedAt = now
	case StateClosed:
		b.cells = b.cells[:0] // a fresh window: old failures are forgiven
	}
	if b.onChange == nil {
		return nil
	}
	cb := b.onChange
	return func() { cb(from, to) }
}

// cellLocked returns the window cell for now, recycling its slot if
// the slot's previous epoch has aged out.
func (b *Breaker) cellLocked(now time.Time) *windowCell {
	if len(b.cells) < b.cfg.WindowBuckets {
		b.cells = append(b.cells, make([]windowCell, b.cfg.WindowBuckets-len(b.cells))...)
	}
	epoch := b.epochAt(now)
	c := &b.cells[int(epoch%int64(b.cfg.WindowBuckets))]
	if c.epoch != epoch {
		*c = windowCell{epoch: epoch}
	}
	return c
}

// windowTotalsLocked sums successes and failures over the cells still
// inside the rolling window.
func (b *Breaker) windowTotalsLocked(now time.Time) (succ, fail int) {
	epoch := b.epochAt(now)
	oldest := epoch - int64(b.cfg.WindowBuckets) + 1
	for i := range b.cells {
		if c := &b.cells[i]; c.epoch >= oldest && c.epoch <= epoch {
			succ += c.succ
			fail += c.fail
		}
	}
	return succ, fail
}

// epochAt maps a time to its absolute window-cell index.
func (b *Breaker) epochAt(now time.Time) int64 {
	cell := b.cfg.Window / time.Duration(b.cfg.WindowBuckets)
	if cell <= 0 {
		cell = time.Nanosecond
	}
	return int64(now.Sub(b.origin) / cell)
}
