package resilience

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

// transitions records breaker state changes for assertions.
type transitions struct {
	mu  sync.Mutex
	log []string
}

func (tr *transitions) note(from, to State) {
	tr.mu.Lock()
	tr.log = append(tr.log, fmt.Sprintf("%s->%s", from, to))
	tr.mu.Unlock()
}

func (tr *transitions) snapshot() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.log...)
}

// testBreakerConfig is small enough to drive through every state by
// hand: 4 requests minimum, 50% failure rate, 2s cooldown, 1 probe,
// 2 successes to close.
func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           10 * time.Second,
		WindowBuckets:    10,
		MinRequests:      4,
		FailureRate:      0.5,
		OpenTimeout:      2 * time.Second,
		HalfOpenProbes:   1,
		SuccessesToClose: 2,
	}
}

// fail records one admitted failure, failing the test if the breaker
// refused the call.
func fail(t *testing.T, b *Breaker) {
	t.Helper()
	tok, ok := b.Allow()
	if !ok {
		t.Fatal("closed/half-open breaker refused a call it should admit")
	}
	b.Record(tok, false)
}

func succeed(t *testing.T, b *Breaker) {
	t.Helper()
	tok, ok := b.Allow()
	if !ok {
		t.Fatal("breaker refused a call it should admit")
	}
	b.Record(tok, true)
}

// TestBreakerLifecycle walks the full state machine on virtual time:
// closed → open on failure rate, cooldown → half-open, probe failure →
// open again, probe successes → closed with a forgiven window.
func TestBreakerLifecycle(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	var tr transitions
	b := NewBreaker(testBreakerConfig(), sim, tr.note)

	// Closed admits; below MinRequests nothing trips even at 100% failures.
	fail(t, b)
	fail(t, b)
	fail(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("3 failures < MinRequests=4 must not trip, state %v", got)
	}
	// The 4th failure reaches MinRequests at 100% failure rate: open.
	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("failure rate 4/4 must open, state %v", got)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	// Cooldown elapses on the virtual clock: next Allow flips half-open
	// and admits exactly HalfOpenProbes concurrent probes.
	sim.Advance(2 * time.Second)
	tok1, ok := b.Allow()
	if !ok {
		t.Fatal("cooled-down breaker must admit a half-open probe")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", got)
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted beyond HalfOpenProbes=1")
	}

	// Probe failure: straight back to open.
	b.Record(tok1, false)
	if got := b.State(); got != StateOpen {
		t.Fatalf("failed probe must reopen, state %v", got)
	}

	// Cooldown again; this time the probes succeed and close the breaker.
	sim.Advance(2 * time.Second)
	succeed(t, b) // probe 1 of SuccessesToClose=2
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("one probe success of two must stay half-open, state %v", got)
	}
	succeed(t, b) // probe 2: closes
	if got := b.State(); got != StateClosed {
		t.Fatalf("two probe successes must close, state %v", got)
	}

	// Closing forgave the window: a single new failure is 1/1 — above
	// the rate but below MinRequests — so the breaker stays closed.
	fail(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("fresh window must absorb one failure, state %v", got)
	}

	want := []string{"closed->open", "open->half_open", "half_open->open", "open->half_open", "half_open->closed"}
	got := tr.snapshot()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transition log %v, want %v", got, want)
	}
}

// TestBreakerFailureRateThreshold pins the rate arithmetic: below the
// configured rate the breaker holds, at it the breaker opens.
func TestBreakerFailureRateThreshold(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))

	// 3 failures / 7 successes = 30% < 50%: stays closed.
	b := NewBreaker(testBreakerConfig(), sim, nil)
	for i := 0; i < 7; i++ {
		succeed(t, b)
	}
	for i := 0; i < 3; i++ {
		fail(t, b)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("30%% failures opened the breaker (state %v)", got)
	}

	// 5 failures / 5 successes = 50%: trips exactly at the threshold.
	b2 := NewBreaker(testBreakerConfig(), sim, nil)
	for i := 0; i < 5; i++ {
		succeed(t, b2)
	}
	for i := 0; i < 5; i++ {
		fail(t, b2)
	}
	if got := b2.State(); got != StateOpen {
		t.Fatalf("50%% failures must open at the threshold (state %v)", got)
	}
}

// TestBreakerWindowAges proves old outcomes age out: failures recorded
// more than Window ago cannot contribute to tripping.
func TestBreakerWindowAges(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	b := NewBreaker(testBreakerConfig(), sim, nil)

	// 3 failures now; then the whole window slides past them.
	for i := 0; i < 3; i++ {
		fail(t, b)
	}
	sim.Advance(11 * time.Second) // > Window=10s

	// 3 fresh failures: in-window total is 3 < MinRequests=4, so the
	// aged-out failures must not combine with them.
	for i := 0; i < 3; i++ {
		fail(t, b)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("aged-out failures contributed to tripping (state %v)", got)
	}
	// One more makes 4 in-window at 100%: now it opens.
	fail(t, b)
	if got := b.State(); got != StateOpen {
		t.Fatalf("4 in-window failures must open (state %v)", got)
	}
}

// TestBreakerStaleTokenDropped proves a straggler call finishing after
// a state transition cannot corrupt the new state's accounting: its
// token generation is stale and the record is discarded.
func TestBreakerStaleTokenDropped(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	b := NewBreaker(testBreakerConfig(), sim, nil)

	// An in-flight call admitted while closed...
	staleTok, ok := b.Allow()
	if !ok {
		t.Fatal("closed breaker must admit")
	}
	// ...then the breaker trips on other calls and cools into half-open.
	for i := 0; i < 4; i++ {
		fail(t, b)
	}
	sim.Advance(2 * time.Second)
	probeTok, ok := b.Allow()
	if !ok {
		t.Fatal("cooled-down breaker must admit a probe")
	}

	// The straggler reports failure with its stale token: must be
	// ignored — the breaker stays half-open with the probe in flight.
	b.Record(staleTok, false)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("stale record moved the state to %v", got)
	}
	// And the probe accounting still works: two successes close. The
	// stale record must not have consumed the probe slot either.
	b.Record(probeTok, true)
	succeed(t, b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("probe successes after stale record must close, state %v", got)
	}
}

// TestBreakerNilSafe pins the nil-receiver contract disabled-breaker
// call sites rely on.
func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	tok, ok := b.Allow()
	if !ok {
		t.Fatal("nil breaker must admit everything")
	}
	b.Record(tok, false) // must not panic
	if got := b.State(); got != StateClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
}

// TestBreakerDisabledConfig: a catalog-level disable means no breaker
// is constructed at all; this pins the helper predicates.
func TestConfigEnablePredicates(t *testing.T) {
	var c Config
	c = c.WithDefaults()
	if !c.BreakersEnabled() || !c.RetriesEnabled() || !c.HedgingEnabled() {
		t.Fatal("zero config must enable the whole layer")
	}
	c.Disable = true
	if c.BreakersEnabled() || c.RetriesEnabled() || c.HedgingEnabled() {
		t.Fatal("layer Disable must turn every component off")
	}
	var c2 Config
	c2.Breaker.Disable = true
	c2.Hedge.Disable = true
	if c2.BreakersEnabled() || c2.HedgingEnabled() || !c2.RetriesEnabled() {
		t.Fatal("component Disable flags must act independently")
	}
}
