package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// RetryConfig tunes the retry policy. The zero value takes every
// default below.
type RetryConfig struct {
	// Disable turns retries off.
	Disable bool
	// MaxAttempts is the total number of error-driven attempts
	// (including the first). Default 3.
	MaxAttempts int
	// Base is the backoff floor. Default 2ms.
	Base time.Duration
	// Cap is the backoff ceiling. Default 100ms.
	Cap time.Duration
	// Margin is the minimum useful time an attempt needs: a retry is
	// scheduled only if backoff+Margin still fits before the context
	// deadline. Default 1ms.
	Margin time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Base == 0 {
		c.Base = 2 * time.Millisecond
	}
	if c.Cap == 0 {
		c.Cap = 100 * time.Millisecond
	}
	if c.Cap < c.Base {
		c.Cap = c.Base
	}
	if c.Margin == 0 {
		c.Margin = time.Millisecond
	}
	return c
}

// Retrier draws decorrelated-jitter backoffs and budgets them against
// the request deadline. Safe for concurrent use: the injected
// generator is guarded by a mutex (math/rand.Rand is not
// concurrency-safe).
type Retrier struct {
	cfg RetryConfig
	clk vclock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier on clk (nil means real time) drawing
// jitter from rng (nil seeds a fixed default — callers who care about
// the schedule inject their own).
func NewRetrier(cfg RetryConfig, clk vclock.Clock, rng *rand.Rand) *Retrier {
	if clk == nil {
		clk = vclock.Real()
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Retrier{cfg: cfg.withDefaults(), clk: clk, rng: rng}
}

// MaxAttempts returns the total attempt budget.
func (r *Retrier) MaxAttempts() int { return r.cfg.MaxAttempts }

// backoffWindow resolves the decorrelated-jitter bounds that follow a
// previous backoff of prev (0 for the first retry): [Base,
// min(Cap, 3*max(prev, Base))].
func (r *Retrier) backoffWindow(prev time.Duration) (lo, hi time.Duration) {
	lo = r.cfg.Base
	anchor := prev
	if anchor < lo {
		anchor = lo
	}
	hi = 3 * anchor
	if hi > r.cfg.Cap {
		hi = r.cfg.Cap
	}
	return lo, hi
}

// NextBackoff draws the decorrelated-jitter delay from the shared
// generator, uniform in the backoffWindow. The result is always
// within [Base, Cap].
func (r *Retrier) NextBackoff(prev time.Duration) time.Duration {
	lo, hi := r.backoffWindow(prev)
	if hi <= lo {
		return lo
	}
	r.mu.Lock()
	d := lo + time.Duration(r.rng.Int63n(int64(hi-lo)+1))
	r.mu.Unlock()
	return d
}

// NextBackoffKeyed is NextBackoff with the jitter derived from a pure
// function of (key, draw) instead of the shared generator. Concurrent
// calls drawing from one generator consume it in scheduling order, so
// their backoffs swap between runs even when everything else is
// seeded; a keyed draw pins each call's schedule to its identity,
// which the deterministic fault simulation requires.
func (r *Retrier) NextBackoffKeyed(prev time.Duration, key uint64, draw int) time.Duration {
	lo, hi := r.backoffWindow(prev)
	if hi <= lo {
		return lo
	}
	x := splitmix64(key ^ (uint64(draw)+1)*0x9e3779b97f4a7c15)
	return lo + time.Duration(x%uint64(hi-lo+1))
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix
// turning a structured key into uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FitsBudget reports whether sleeping backoff and then running an
// attempt of at least Margin still fits before ctx's deadline. A
// context without a deadline always fits.
func (r *Retrier) FitsBudget(ctx context.Context, backoff time.Duration) bool {
	deadline, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return r.clk.Now().Add(backoff + r.cfg.Margin).Before(deadline)
}
