package feedback

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// TestFeedbackRaceStress interleaves Estimate, Observe, and
// Observations from concurrent goroutines. Under -race this covers the
// correction-grid lock discipline: observations rewrite factors under
// the write lock while estimators average them under the read lock.
func TestFeedbackRaceStress(t *testing.T) {
	d := synthetic.Charminar(3000, 1000, 10, 5)
	base, err := core.NewMinSkew(d, core.MinSkewConfig{Buckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	mbr, ok := d.MBR()
	if !ok {
		t.Fatal("empty dataset MBR")
	}
	f, err := New(base, mbr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Generate(d, workload.Config{Count: 200, QSize: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup

	// Estimators: read the correction surface continuously.
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 600; i++ {
				q := queries[rng.Intn(len(queries))]
				if est := f.Estimate(q); est < 0 {
					t.Errorf("negative estimate %g for %v", est, q)
					return
				}
				f.Observations()
			}
		}(int64(p))
	}

	// Observers: fold synthetic feedback into the surface.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(200 + seed))
			for i := 0; i < 300; i++ {
				q := queries[rng.Intn(len(queries))]
				f.Observe(q, rng.Intn(500))
			}
		}(int64(p))
	}

	wg.Wait()

	if got := f.Observations(); got != 4*300 {
		t.Fatalf("Observations() = %d, want %d", got, 4*300)
	}
	// Factors must have stayed within the configured clamp.
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i, v := range f.factors {
		if v < f.cfg.MinFactor || v > f.cfg.MaxFactor {
			t.Fatalf("factor %d = %g escaped clamp [%g,%g]", i, v, f.cfg.MinFactor, f.cfg.MaxFactor)
		}
	}
}
