package feedback

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	d := synthetic.Uniform(100, 100, 1, 5, 1)
	u, err := core.NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := d.MBR()
	if _, err := New(nil, bounds, Config{}); err == nil {
		t.Fatal("nil base should fail")
	}
	if _, err := New(u, geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, Config{}); err == nil {
		t.Fatal("invalid bounds should fail")
	}
	if _, err := New(u, bounds, Config{LearningRate: 2}); err == nil {
		t.Fatal("bad learning rate should fail")
	}
	if _, err := New(u, bounds, Config{MinFactor: 5, MaxFactor: 1}); err == nil {
		t.Fatal("inverted clamp should fail")
	}
	f, err := New(u, bounds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "Uniform+feedback" {
		t.Fatalf("Name = %q", f.Name())
	}
	if f.SpaceBuckets() <= u.SpaceBuckets() {
		t.Fatal("correction grid must be charged space")
	}
}

func TestNoFeedbackIsIdentity(t *testing.T) {
	d := synthetic.Clusters(3000, 4, 1000, 0.04, 2, 12, 2)
	base, err := core.NewMinSkew(d, core.MinSkewConfig{Buckets: 30, Regions: 900})
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := d.MBR()
	f, err := New(base, bounds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 400, 500)
	if f.Estimate(q) != base.Estimate(q) {
		t.Fatal("fresh wrapper must match the base estimator")
	}
}

func TestFeedbackReducesSystematicBias(t *testing.T) {
	// The base estimator is Uniform over heavily clustered data, so it
	// is systematically wrong region by region. A feedback pass over a
	// training workload must cut the error on a held-out workload.
	d := synthetic.Clusters(20000, 5, 1000, 0.03, 2, 10, 3)
	base, err := core.NewUniform(d)
	if err != nil {
		t.Fatal(err)
	}
	bounds, _ := d.MBR()
	f, err := New(base, bounds, Config{GridX: 24, GridY: 24, LearningRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	oracle := exact.NewAuto(d)

	train, err := workload.Generate(d, workload.Config{Count: 3000, QSize: 0.08, Seed: 5, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range train {
		f.Observe(q, oracle.Count(q))
	}
	if f.Observations() != len(train) {
		t.Fatalf("Observations = %d", f.Observations())
	}

	test, err := workload.Generate(d, workload.Config{Count: 800, QSize: 0.08, Seed: 99, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	actual := make([]int, len(test))
	baseEst := make([]float64, len(test))
	fbEst := make([]float64, len(test))
	for i, q := range test {
		actual[i] = oracle.Count(q)
		baseEst[i] = base.Estimate(q)
		fbEst[i] = f.Estimate(q)
	}
	baseErr, err := metrics.AvgRelativeError(actual, baseEst)
	if err != nil {
		t.Fatal(err)
	}
	fbErr, err := metrics.AvgRelativeError(actual, fbEst)
	if err != nil {
		t.Fatal(err)
	}
	if fbErr >= baseErr*0.8 {
		t.Fatalf("feedback error %.3f not clearly better than base %.3f", fbErr, baseErr)
	}
}

func TestObserveEdgeCases(t *testing.T) {
	d := synthetic.Uniform(500, 100, 1, 5, 7)
	base, _ := core.NewUniform(d)
	bounds, _ := d.MBR()
	f, _ := New(base, bounds, Config{})
	// Query outside the bounds: no panic, no learning.
	f.Observe(geom.NewRect(1000, 1000, 1100, 1100), 50)
	q := geom.NewRect(10, 10, 50, 50)
	if f.Estimate(q) != base.Estimate(q) {
		t.Fatal("outside observation should not change estimates")
	}
	// Zero base and zero actual: nothing to learn.
	f.Observe(geom.NewRect(0, 0, 0, 0), 0)
	// Factors stay clamped even under absurd feedback.
	for i := 0; i < 50; i++ {
		f.Observe(q, 1e9)
	}
	got := f.Estimate(q)
	if got > base.Estimate(q)*10.001 {
		t.Fatalf("factor clamp failed: %g vs base %g", got, base.Estimate(q))
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("estimate = %g", got)
	}
}

func TestConcurrentObserveEstimate(t *testing.T) {
	d := synthetic.Uniform(2000, 1000, 5, 20, 9)
	base, _ := core.NewMinSkew(d, core.MinSkewConfig{Buckets: 20, Regions: 400})
	bounds, _ := d.MBR()
	f, _ := New(base, bounds, Config{})
	oracle := exact.NewAuto(d)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := geom.NewRect(float64(g*100), 100, float64(g*100+200), 400)
			for i := 0; i < 200; i++ {
				if i%2 == 0 {
					f.Observe(q, oracle.Count(q))
				} else if v := f.Estimate(q); v < 0 || math.IsNaN(v) {
					t.Errorf("estimate = %g", v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
