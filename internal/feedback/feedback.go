// Package feedback implements adaptive selectivity estimation driven
// by query feedback, the approach of Chen and Roussopoulos [CR94] that
// the paper lists among the relational techniques (Section 1): after a
// query executes, the system knows the true result size and can fold
// the observed error back into its statistics. The adapter here wraps
// any base Estimator with a grid of learned multiplicative correction
// factors, in the spirit of self-tuning histograms.
//
// Feedback learning is complementary to Min-Skew: the base histogram
// captures the built-time distribution, and the correction grid tracks
// drift and systematic bias in the regions queries actually visit.
package feedback

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// Config controls the correction grid.
type Config struct {
	// GridX, GridY are the correction-grid dimensions (default 16x16).
	GridX, GridY int
	// LearningRate in (0, 1] scales each observation's pull on the
	// affected cells (default 0.2).
	LearningRate float64
	// MinFactor and MaxFactor clamp the learned multipliers so sparse
	// feedback cannot drive corrections to extremes (defaults 0.1 and
	// 10).
	MinFactor, MaxFactor float64
}

func (c Config) withDefaults() Config {
	if c.GridX == 0 {
		c.GridX = 16
	}
	if c.GridY == 0 {
		c.GridY = 16
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.2
	}
	if c.MinFactor == 0 {
		c.MinFactor = 0.1
	}
	if c.MaxFactor == 0 {
		c.MaxFactor = 10
	}
	return c
}

// Estimator wraps a base estimator with a learned correction surface.
// All methods are safe for concurrent use.
type Estimator struct {
	base   core.Estimator
	bounds geom.Rect
	cfg    Config

	mu      sync.RWMutex
	factors []float64 // row-major GridY x GridX, multiplicative
	fed     int

	// Telemetry (nil until EnableTelemetry; all no-ops then). Guarded
	// by mu alongside the state they describe.
	observations *telemetry.Counter
	lastRelErr   *telemetry.Gauge
	drift        *telemetry.Gauge
	targets      *telemetry.Histogram
}

// factorBuckets are histogram bounds for observed correction targets,
// spanning the default clamp range [0.1, 10].
var factorBuckets = []float64{0.1, 0.25, 0.5, 0.8, 1, 1.25, 2, 4, 10}

// New wraps base. bounds is the region the correction grid covers
// (normally the dataset MBR).
func New(base core.Estimator, bounds geom.Rect, cfg Config) (*Estimator, error) {
	if base == nil {
		return nil, fmt.Errorf("feedback: nil base estimator")
	}
	if !bounds.Valid() {
		return nil, fmt.Errorf("feedback: invalid bounds %v", bounds)
	}
	cfg = cfg.withDefaults()
	if cfg.GridX < 1 || cfg.GridY < 1 {
		return nil, fmt.Errorf("feedback: bad grid %dx%d", cfg.GridX, cfg.GridY)
	}
	if cfg.LearningRate <= 0 || cfg.LearningRate > 1 {
		return nil, fmt.Errorf("feedback: learning rate %g outside (0,1]", cfg.LearningRate)
	}
	if cfg.MinFactor <= 0 || cfg.MaxFactor < cfg.MinFactor {
		return nil, fmt.Errorf("feedback: bad factor clamp [%g,%g]", cfg.MinFactor, cfg.MaxFactor)
	}
	f := &Estimator{base: base, bounds: bounds, cfg: cfg}
	f.factors = make([]float64, cfg.GridX*cfg.GridY)
	for i := range f.factors {
		f.factors[i] = 1
	}
	return f, nil
}

// EnableTelemetry registers the wrapper's drift metrics in reg:
// observation counts, the relative error of the last corrected
// estimate, a drift gauge (mean |log factor| over the grid — 0 means
// the base histogram still matches the data), and a histogram of
// observed correction targets. A nil reg leaves telemetry disabled.
func (f *Estimator) EnableTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observations = reg.Counter("feedback_observations_total",
		"Executed-query observations folded into the correction grid.", labels...)
	f.lastRelErr = reg.Gauge("feedback_last_rel_error",
		"Relative error of the corrected estimate at the last observation.", labels...)
	f.drift = reg.Gauge("feedback_drift",
		"Mean absolute log correction factor; 0 means no learned bias.", labels...)
	f.targets = reg.Histogram("feedback_target_factor",
		"Correction-factor targets observed (actual/estimate, clamped).", factorBuckets, labels...)
}

// cellRange returns the correction cells the query touches.
func (f *Estimator) cellRange(q geom.Rect) (x0, y0, x1, y1 int, ok bool) {
	inter, has := q.Intersection(f.bounds)
	if !has {
		return 0, 0, 0, 0, false
	}
	cw := f.bounds.Width() / float64(f.cfg.GridX)
	ch := f.bounds.Height() / float64(f.cfg.GridY)
	cell := func(v, lo, size float64, n int) int {
		if size <= 0 {
			return 0
		}
		i := int((v - lo) / size)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	x0 = cell(inter.MinX, f.bounds.MinX, cw, f.cfg.GridX)
	x1 = cell(inter.MaxX, f.bounds.MinX, cw, f.cfg.GridX)
	y0 = cell(inter.MinY, f.bounds.MinY, ch, f.cfg.GridY)
	y1 = cell(inter.MaxY, f.bounds.MinY, ch, f.cfg.GridY)
	return x0, y0, x1, y1, true
}

// correction returns the average learned factor over the query's cells.
func (f *Estimator) correction(q geom.Rect) float64 {
	x0, y0, x1, y1, ok := f.cellRange(q)
	if !ok {
		return 1
	}
	var sum float64
	cells := 0
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			sum += f.factors[y*f.cfg.GridX+x]
			cells++
		}
	}
	if cells == 0 {
		return 1
	}
	return sum / float64(cells)
}

// Estimate implements core.Estimator: the base estimate scaled by the
// learned correction for the query's region.
func (f *Estimator) Estimate(q geom.Rect) float64 {
	base := f.base.Estimate(q)
	f.mu.RLock()
	c := f.correction(q)
	f.mu.RUnlock()
	return base * c
}

// Observe folds one executed query's true result size back into the
// correction surface: cells covered by the query move toward the
// factor that would have made the estimate exact.
func (f *Estimator) Observe(q geom.Rect, actual int) {
	base := f.base.Estimate(q)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fed++
	f.observations.Inc()
	if f.lastRelErr != nil {
		// Estimate-vs-feedback error: the corrected estimate (what
		// Estimate would have returned) against the executed truth.
		corrected := base * f.correction(q)
		f.lastRelErr.Set(math.Abs(float64(actual)-corrected) / math.Max(float64(actual), 1))
	}
	x0, y0, x1, y1, ok := f.cellRange(q)
	if !ok {
		return
	}
	var target float64
	switch {
	case base > 0:
		target = float64(actual) / base
	case actual > 0:
		// Base said zero but rows exist: push factors up hard.
		target = f.cfg.MaxFactor
	default:
		return // both zero: nothing to learn
	}
	if target < f.cfg.MinFactor {
		target = f.cfg.MinFactor
	}
	if target > f.cfg.MaxFactor {
		target = f.cfg.MaxFactor
	}
	f.targets.Observe(target)
	lr := f.cfg.LearningRate
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			i := y*f.cfg.GridX + x
			// Geometric interpolation keeps factors positive and
			// symmetric in log space.
			f.factors[i] = clampFactor(
				math.Exp((1-lr)*math.Log(f.factors[i])+lr*math.Log(target)),
				f.cfg.MinFactor, f.cfg.MaxFactor)
		}
	}
	if f.drift != nil {
		// O(grid) log pass, only paid when telemetry is enabled.
		var sum float64
		for _, v := range f.factors {
			sum += math.Abs(math.Log(v))
		}
		f.drift.Set(sum / float64(len(f.factors)))
	}
}

func clampFactor(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name implements core.Estimator.
func (f *Estimator) Name() string { return f.base.Name() + "+feedback" }

// SpaceBuckets implements core.Estimator: the correction grid costs
// one word per cell, an eighth of a bucket each.
func (f *Estimator) SpaceBuckets() float64 {
	return f.base.SpaceBuckets() + float64(f.cfg.GridX*f.cfg.GridY)/8
}

// Observations returns how many feedback observations were absorbed.
func (f *Estimator) Observations() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.fed
}
