package shard

import (
	"context"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

// TestEstimateContextZeroShardsComplete pins the deepest degradation
// the scatter-gather can suffer: the deadline is already gone when the
// scatter starts and not a single shard reports. The contract is a
// Partial result computed purely from each shard's degradation ladder
// — the coarsest Min-Skew rung, never an error, never a zero estimate
// for a query that covers data — with FallbackShards naming exactly
// the shards that degraded.
func TestEstimateContextZeroShardsComplete(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 17)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	if sc.Shards() < 2 {
		t.Fatalf("need >= 2 shards, got %d", sc.Shards())
	}

	// Every shard blocks until the test is over, so zero shards can
	// complete before the (already expired) deadline.
	release := make(chan struct{})
	defer close(release)
	sc.SetEstimateHook(func(int, int) error { <-release; return nil })

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	q := geom.NewRect(0, 0, 1000, 1000)
	res, err := sc.EstimateContext(ctx, q)
	if err != nil {
		t.Fatalf("zero completed shards must degrade, not error: %v", err)
	}
	if !res.Partial {
		t.Fatal("zero completed shards must flag Partial")
	}
	if res.Quality != QualityCoarse {
		t.Fatalf("ladder-enabled degradation must be coarse, got %v", res.Quality)
	}
	if res.ShardsQueried == 0 {
		t.Fatal("whole-space query must route to at least one shard")
	}
	if res.ShardsMissed != res.ShardsQueried {
		t.Fatalf("missed %d of %d queried shards, want every one", res.ShardsMissed, res.ShardsQueried)
	}
	if len(res.FallbackShards) != res.ShardsMissed {
		t.Fatalf("FallbackShards lists %d shards, ShardsMissed says %d",
			len(res.FallbackShards), res.ShardsMissed)
	}

	// FallbackShards must name exactly the routed shards, and the
	// degraded answer must be exactly the sum of each listed shard's
	// coarsest ladder rung.
	sc.mu.RLock()
	var wantIdx []int
	var want float64
	for i, s := range sc.shards {
		if s.routeBox.Intersects(q) {
			wantIdx = append(wantIdx, i)
			est, ql := s.degraded(q, s.coarsestRung())
			if ql != QualityCoarse {
				t.Errorf("shard %d: expected a coarse ladder rung, got %v", i, ql)
			}
			want += est
		}
	}
	sc.mu.RUnlock()
	if len(res.FallbackShards) != len(wantIdx) {
		t.Fatalf("FallbackShards = %v, want %v", res.FallbackShards, wantIdx)
	}
	for i := range wantIdx {
		if res.FallbackShards[i] != wantIdx[i] {
			t.Fatalf("FallbackShards = %v, want %v", res.FallbackShards, wantIdx)
		}
	}
	if diff := res.Estimate - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("degraded estimate %.6f, want coarse-ladder sum %.6f", res.Estimate, want)
	}
	if res.Estimate <= 0 {
		t.Fatalf("whole-space fallback estimate %.1f, want > 0", res.Estimate)
	}

	// A plain cancellation (not a deadline) must degrade identically.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	res2, err := sc.EstimateContext(cctx, q)
	if err != nil {
		t.Fatalf("cancelled context must degrade, not error: %v", err)
	}
	if !res2.Partial || res2.ShardsMissed != res2.ShardsQueried {
		t.Fatalf("cancelled scatter: %+v, want fully-missed Partial", res2)
	}
}

// TestEstimateContextLadderDisabledFallsToUniform pins the pre-ladder
// behavior behind LadderRungs < 0: with no coarser rungs built, total
// degradation lands on the single-bucket uniformity fallback and the
// result says so (QualityUniform).
func TestEstimateContextLadderDisabledFallsToUniform(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 17)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024, LadderRungs: -1})

	release := make(chan struct{})
	defer close(release)
	sc.SetEstimateHook(func(int, int) error { <-release; return nil })

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	q := geom.NewRect(0, 0, 1000, 1000)
	res, err := sc.EstimateContext(ctx, q)
	if err != nil {
		t.Fatalf("degradation must not error: %v", err)
	}
	if !res.Partial || res.Quality != QualityUniform {
		t.Fatalf("ladder-disabled degradation must be uniform Partial, got %+v", res)
	}

	// The estimate is the pure-uniform sum over exactly the shards in
	// FallbackShards.
	sc.mu.RLock()
	var want float64
	for _, idx := range res.FallbackShards {
		want += sc.shards[idx].fallback.Estimate(q)
	}
	for _, s := range sc.shards {
		if len(s.ladder) != 0 {
			t.Error("LadderRungs < 0 must build no ladder rungs")
		}
	}
	sc.mu.RUnlock()
	if diff := res.Estimate - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("degraded estimate %.6f, want pure-uniform sum %.6f", res.Estimate, want)
	}
}
