package shard

import (
	"context"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

// TestEstimateContextZeroShardsComplete pins the deepest degradation
// the scatter-gather can suffer: the deadline is already gone when the
// scatter starts and not a single shard reports. The contract is a
// Partial result computed purely from the per-shard uniformity
// fallbacks — never an error, never a zero estimate for a query that
// covers data.
func TestEstimateContextZeroShardsComplete(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 17)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	if sc.Shards() < 2 {
		t.Fatalf("need >= 2 shards, got %d", sc.Shards())
	}

	// Every shard blocks until the test is over, so zero shards can
	// complete before the (already expired) deadline.
	release := make(chan struct{})
	defer close(release)
	sc.SetEstimateHook(func(int) { <-release })

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	q := geom.NewRect(0, 0, 1000, 1000)
	res, err := sc.EstimateContext(ctx, q)
	if err != nil {
		t.Fatalf("zero completed shards must degrade, not error: %v", err)
	}
	if !res.Partial {
		t.Fatal("zero completed shards must flag Partial")
	}
	if res.ShardsQueried == 0 {
		t.Fatal("whole-space query must route to at least one shard")
	}
	if res.ShardsMissed != res.ShardsQueried {
		t.Fatalf("missed %d of %d queried shards, want every one", res.ShardsMissed, res.ShardsQueried)
	}

	// The degraded answer is exactly the sum of the uniformity
	// fallbacks of the routed shards — the pure-uniform estimate.
	sc.mu.RLock()
	var want float64
	for _, s := range sc.shards {
		if s.routeBox.Intersects(q) {
			want += s.fallback.Estimate(q)
		}
	}
	sc.mu.RUnlock()
	if diff := res.Estimate - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("degraded estimate %.6f, want pure-uniform sum %.6f", res.Estimate, want)
	}
	if res.Estimate <= 0 {
		t.Fatalf("whole-space fallback estimate %.1f, want > 0", res.Estimate)
	}

	// A plain cancellation (not a deadline) must degrade identically.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	res2, err := sc.EstimateContext(cctx, q)
	if err != nil {
		t.Fatalf("cancelled context must degrade, not error: %v", err)
	}
	if !res2.Partial || res2.ShardsMissed != res2.ShardsQueried {
		t.Fatalf("cancelled scatter: %+v, want fully-missed Partial", res2)
	}
}
