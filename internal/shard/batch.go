package shard

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/reqtrace"
)

// Batch estimation. A batch takes the catalog read lock once, walks
// every query against the same statistics snapshot (one Epoch for the
// whole batch), and reuses the routing scratch across queries — the
// per-query overhead a planner pays when it probes hundreds of
// candidate predicates is the histogram walk itself and nothing else.
//
// Semantics per query are identical to EstimateContext: exact padded-MBR
// routing, breaker-gated full walks, and graceful degradation to the
// coarsest ladder rung once the deadline is spent. When a test hook is
// installed the batch routes each query through the full scatter path
// instead, so fault injection sees every call.

// EstimateBatch is EstimateBatchContext without a deadline.
func (sc *ShardedCatalog) EstimateBatch(qs []geom.Rect) ([]Result, error) {
	return sc.EstimateBatchContext(context.Background(), qs)
}

// EstimateBatchContext estimates every query in qs against one
// statistics snapshot and returns one Result per query, in order. The
// only errors are structural — no statistics yet, or an invalid
// rectangle (reported with its index, before any walking starts);
// deadline pressure degrades per-query quality exactly as
// EstimateContext does.
func (sc *ShardedCatalog) EstimateBatchContext(ctx context.Context, qs []geom.Rect) ([]Result, error) {
	for i, q := range qs {
		if !q.Valid() {
			return nil, fmt.Errorf("shard: invalid query rectangle %v at index %d", q, i)
		}
	}
	sc.mu.RLock()
	snap := &scatterSnap{
		shards:  sc.shards,
		breaker: sc.breakers,
		hook:    sc.estimateHook,
		retrier: sc.retrier,
		clk:     sc.cfg.Clock,
		epoch:   sc.epoch,

		fanout:       sc.fanout,
		estimates:    sc.estimates,
		partials:     sc.partials,
		missedShards: sc.missedShards,
		retries:      sc.retries,
		hedges:       sc.hedges,
		hedgeWins:    sc.hedgeWins,
		qualityCtr:   sc.qualityCtr,
		walkLatency:  sc.walkLatency,
	}
	sc.mu.RUnlock()
	if snap.shards == nil {
		return nil, fmt.Errorf("shard: no statistics; run AnalyzeContext first")
	}
	if snap.hook != nil {
		// Fault-injection hook installed: take the scatter path per
		// query so breakers, retries and hedges stay exercisable.
		out := make([]Result, 0, len(qs))
		for _, q := range qs {
			r, err := sc.EstimateContext(ctx, q)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	batch := reqtrace.SpanFrom(ctx).StartChild("shard.batch")
	batch.SetInt("queries", len(qs))
	batch.SetInt("shards_total", len(snap.shards))
	defer batch.End()

	out := make([]Result, 0, len(qs))
	relevant := make([]int, 0, len(snap.shards))
	ests := make(map[int]float64, len(snap.shards))
	quality := make(map[int]Quality, len(snap.shards))
	degradedAll := false
	for _, q := range qs {
		relevant = relevant[:0]
		for i, s := range snap.shards {
			if s.routeBox.Intersects(q) {
				relevant = append(relevant, i)
			}
		}
		snap.estimates.Inc()
		snap.fanout.Observe(float64(len(relevant)))
		res := Result{ShardsTotal: len(snap.shards), ShardsQueried: len(relevant), Epoch: snap.epoch}
		for k := range ests {
			delete(ests, k)
		}
		for k := range quality {
			delete(quality, k)
		}

		// Once the deadline is spent, every remaining query answers from
		// the cheapest skew-aware rung — the batch never returns fewer
		// results than queries.
		if !degradedAll {
			if deadline, ok := ctx.Deadline(); ctx.Err() != nil ||
				(ok && deadline.Sub(snap.clk.Now()) < minScatterBudget) {
				degradedAll = true
				batch.Event("deadline.mid_batch", reqtrace.Int("answered_full", len(out)))
			}
		}
		for _, idx := range relevant {
			var a shardAnswer
			if degradedAll {
				s := snap.shards[idx]
				est, ql := s.degraded(q, s.coarsestRung())
				a = shardAnswer{idx: idx, est: est, quality: ql}
			} else {
				a = snap.walkOne(idx, q, nil)
			}
			ests[idx] = a.est
			quality[idx] = a.quality
		}
		res.Estimate = sumInOrder(relevant, ests)
		out = append(out, sc.finish(snap, res, relevant, quality))
	}
	return out, nil
}
