package shard

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

func batchQueries() []geom.Rect {
	return []geom.Rect{
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(100, 100, 400, 400),
		geom.NewRect(900, 900, 950, 950),
		geom.PointRect(geom.Point{X: 500, Y: 500}),
		geom.NewRect(-50, -50, 10, 10),
	}
}

// TestEstimateBatchMatchesPerQuery holds the batch path to the
// single-query path bit for bit: same snapshot, same routing, same
// walks, so the merged floats must be identical.
func TestEstimateBatchMatchesPerQuery(t *testing.T) {
	d := synthetic.Charminar(3000, 1000, 10, 17)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	qs := batchQueries()
	got, err := sc.EstimateBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("batch returned %d results for %d queries", len(got), len(qs))
	}
	for i, q := range qs {
		want, err := sc.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		g := got[i]
		if math.Float64bits(g.Estimate) != math.Float64bits(want.Estimate) {
			t.Errorf("query %d: batch estimate %v, single %v", i, g.Estimate, want.Estimate)
		}
		if g.Quality != want.Quality || g.Partial != want.Partial {
			t.Errorf("query %d: quality %v/%v, single %v/%v",
				i, g.Quality, g.Partial, want.Quality, want.Partial)
		}
		if g.ShardsQueried != want.ShardsQueried || g.ShardsTotal != want.ShardsTotal {
			t.Errorf("query %d: routed %d/%d, single %d/%d",
				i, g.ShardsQueried, g.ShardsTotal, want.ShardsQueried, want.ShardsTotal)
		}
		if g.Epoch != want.Epoch {
			t.Errorf("query %d: epoch %d, single %d", i, g.Epoch, want.Epoch)
		}
	}
}

func TestEstimateBatchInvalidQueryReportsIndex(t *testing.T) {
	sc := buildSharded(t, synthetic.Uniform(200, 100, 1, 5, 1), Config{Shards: 2, Regions: 512})
	qs := []geom.Rect{
		geom.NewRect(0, 0, 10, 10),
		{MinX: 5, MinY: 0, MaxX: 0, MaxY: 5}, // inverted
	}
	if _, err := sc.EstimateBatchContext(context.Background(), qs); err == nil {
		t.Fatal("invalid rectangle must fail the batch before walking")
	}
}

func TestEstimateBatchBeforeAnalyzeFails(t *testing.T) {
	sc := New(Config{})
	if _, err := sc.EstimateBatch(batchQueries()); err == nil {
		t.Fatal("batch before Analyze should error")
	}
}

// TestEstimateBatchExpiredDeadlineDegrades: a spent deadline answers
// every query from the coarsest ladder rung — degraded, never an
// error, and never fewer results than queries.
func TestEstimateBatchExpiredDeadlineDegrades(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 11)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := batchQueries()
	got, err := sc.EstimateBatchContext(ctx, qs)
	if err != nil {
		t.Fatalf("degradation must not be an error: %v", err)
	}
	if len(got) != len(qs) {
		t.Fatalf("batch returned %d results for %d queries", len(got), len(qs))
	}
	full := got[0] // whole-domain query surely routes to shards
	if !full.Partial || full.ShardsMissed == 0 {
		t.Fatalf("expired context must degrade: %+v", full)
	}
	if full.Estimate < 0.5*float64(d.N()) || full.Estimate > 1.5*float64(d.N()) {
		t.Errorf("degraded estimate %.1f far from N=%d", full.Estimate, d.N())
	}
}

// TestEstimateBatchHookTakesScatterPath: with a fault-injection hook
// installed the batch must route through the full scatter machinery,
// so injected failures still degrade per query.
func TestEstimateBatchHookTakesScatterPath(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 13)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	var calls atomic.Int64
	sc.SetEstimateHook(func(idx, attempt int) error {
		calls.Add(1)
		return nil
	})
	got, err := sc.EstimateBatch([]geom.Rect{geom.NewRect(0, 0, 1000, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("hooked batch must exercise the scatter path")
	}
	if got[0].Partial {
		t.Fatalf("healthy hook must stay full quality: %+v", got[0])
	}
}
