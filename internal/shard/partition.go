package shard

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
)

// piece is one partition cell before its histogram is built: the
// region rectangle the partitioner assigned and the member rectangles
// (those whose centers fall in the region).
type piece struct {
	region geom.Rect
	rects  []geom.Rect
}

func (p piece) n() int { return len(p.rects) }

// partition divides the distribution into at most cfg.Shards non-empty
// pieces using the configured strategy. Assignment is by rectangle
// center, mirroring the bucket-membership rule of Algorithm Min-Skew;
// pieces that receive no centers are dropped (an empty shard has
// nothing to estimate).
func partition(d *dataset.Distribution, cfg Config) ([]piece, error) {
	if cfg.Shards <= 1 || d.N() <= 1 {
		mbr, _ := d.MBR()
		return []piece{{region: mbr, rects: append([]geom.Rect(nil), d.Rects()...)}}, nil
	}
	switch cfg.Strategy {
	case StrategySTR:
		return partitionSTR(d, cfg.Shards), nil
	default:
		return partitionMinSkew(d, cfg)
	}
}

// partitionMinSkew obtains shard regions from the first K-1 greedy
// Min-Skew splits over a coarse grid and assigns each rectangle to the
// region containing its center (ties go to the first region, the same
// first-match rule BucketEstimator uses).
func partitionMinSkew(d *dataset.Distribution, cfg Config) ([]piece, error) {
	// A coarse grid suffices to place K-1 splits; cap it well below the
	// per-shard build grids so partitioning stays a small fraction of
	// the total ANALYZE cost.
	regions := cfg.Regions / cfg.Shards
	if regions > 4096 {
		regions = 4096
	}
	if regions < 256 {
		regions = 256
	}
	cells, err := core.MinSkewPartition(d, cfg.Shards, regions)
	if err != nil {
		return nil, err
	}
	pieces := make([]piece, len(cells))
	for i, r := range cells {
		pieces[i].region = r
	}
	for _, r := range d.Rects() {
		c := r.Center()
		target := -1
		for i := range pieces {
			if pieces[i].region.ContainsPoint(c) {
				target = i
				break
			}
		}
		if target < 0 {
			// The regions tile the MBR, but a center sitting exactly on a
			// block boundary can miss every closed region by one ulp of
			// the boundary arithmetic. Losing the rectangle would bias
			// every estimate; route it to the nearest region instead.
			target = nearestRegion(pieces, c)
		}
		pieces[target].rects = append(pieces[target].rects, r)
	}
	return compact(pieces), nil
}

// partitionSTR tiles the centers Sort-Tile-Recursive style into
// exactly k cardinality-balanced tiles: ceil(sqrt(k)) vertical slices,
// each cut into a near-equal share of k horizontal tiles.
func partitionSTR(d *dataset.Distribution, k int) []piece {
	rects := append([]geom.Rect(nil), d.Rects()...)
	if k > len(rects) {
		k = len(rects)
	}
	sort.Slice(rects, func(i, j int) bool {
		ci, cj := rects[i].Center(), rects[j].Center()
		if ci.X != cj.X { //spatialvet:ignore floatcmp exact sort tiebreak, equality only picks the secondary key
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	slices := isqrtCeil(k)
	base, extra := k/slices, k%slices
	var pieces []piece
	offset := 0
	for s := 0; s < slices; s++ {
		tiles := base
		if s < extra {
			tiles++
		}
		// Rows for this slice: proportional share of what remains.
		slicesLeft := slices - s
		rows := (len(rects) - offset + slicesLeft - 1) / slicesLeft
		sl := rects[offset : offset+rows]
		offset += rows
		sort.Slice(sl, func(i, j int) bool {
			ci, cj := sl[i].Center(), sl[j].Center()
			if ci.Y != cj.Y { //spatialvet:ignore floatcmp exact sort tiebreak, equality only picks the secondary key
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		for t := 0; t < tiles; t++ {
			tilesLeft := tiles - t
			n := (len(sl) + tilesLeft - 1) / tilesLeft
			tile := sl[:n]
			sl = sl[n:]
			if len(tile) == 0 {
				continue
			}
			region, _ := geom.MBR(tile)
			pieces = append(pieces, piece{region: region, rects: tile})
		}
	}
	return compact(pieces)
}

// nearestRegion returns the index of the piece whose region is
// closest to p (squared axis distance; 0 inside).
func nearestRegion(pieces []piece, p geom.Point) int {
	best, bestD := 0, -1.0
	for i := range pieces {
		r := pieces[i].region
		dx := axisDist(p.X, r.MinX, r.MaxX)
		dy := axisDist(p.Y, r.MinY, r.MaxY)
		d := dx*dx + dy*dy
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// axisDist is the distance from v to the interval [lo, hi] (0 inside).
func axisDist(v, lo, hi float64) float64 {
	if v < lo {
		return lo - v
	}
	if v > hi {
		return v - hi
	}
	return 0
}

// compact drops empty pieces.
func compact(pieces []piece) []piece {
	out := pieces[:0]
	for _, p := range pieces {
		if p.n() > 0 {
			out = append(out, p)
		}
	}
	return out
}

// isqrtCeil returns ceil(sqrt(k)) for small positive k without
// floating-point round-trips.
func isqrtCeil(k int) int {
	s := 1
	for s*s < k {
		s++
	}
	return s
}
