package shard

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/telemetry"
)

// buildSharded analyzes a fresh catalog over d, failing the test on
// error.
func buildSharded(t *testing.T, d *dataset.Distribution, cfg Config) *ShardedCatalog {
	t.Helper()
	sc := New(cfg)
	if err := sc.Analyze(d); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return sc
}

func TestAnalyzePartitionsAllRows(t *testing.T) {
	d := synthetic.Charminar(3000, 1000, 10, 7)
	for _, strategy := range []Strategy{StrategyMinSkew, StrategySTR} {
		for _, k := range []int{1, 3, 8} {
			sc := buildSharded(t, d, Config{Shards: k, Buckets: 60, Regions: 1024, Strategy: strategy})
			if sc.Shards() < 1 || sc.Shards() > k {
				t.Errorf("%v K=%d: got %d shards", strategy, k, sc.Shards())
			}
			info := sc.Info()
			sortInfoByRegion(info)
			rows := 0
			for _, s := range info {
				if s.Rows == 0 {
					t.Errorf("%v K=%d: empty shard survived", strategy, k)
				}
				rows += s.Rows
			}
			if rows != d.N() {
				t.Errorf("%v K=%d: shards cover %d rows, want %d", strategy, k, rows, d.N())
			}
		}
	}
}

func TestEstimateBeforeAnalyzeFails(t *testing.T) {
	sc := New(Config{})
	if _, err := sc.Estimate(geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("Estimate before Analyze should error")
	}
}

func TestEstimateInvalidQuery(t *testing.T) {
	sc := buildSharded(t, synthetic.Uniform(200, 100, 1, 5, 1), Config{Shards: 2, Regions: 512})
	bad := geom.Rect{MinX: 1, MinY: 0, MaxX: 0, MaxY: 1}
	if _, err := sc.Estimate(bad); err == nil {
		t.Fatal("invalid rectangle should error")
	}
}

func TestEstimateMatchesExactOnUniform(t *testing.T) {
	// On a uniform distribution the estimate should be in the right
	// ballpark of the true count (the paper's uniform-case sanity).
	d := synthetic.Uniform(5000, 1000, 2, 10, 3)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 100, Regions: 2048})
	q := geom.NewRect(100, 100, 400, 400)
	exact := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			exact++
		}
	}
	res, err := sc.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("no-deadline estimate must not be partial")
	}
	if res.Estimate < 0.5*float64(exact) || res.Estimate > 1.5*float64(exact) {
		t.Errorf("estimate %.1f far from exact %d", res.Estimate, exact)
	}
}

func TestRoutingPrunesDistantShards(t *testing.T) {
	// Two well-separated clusters: a query inside one must not fan out
	// to the other.
	rects := make([]geom.Rect, 0, 400)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		rects = append(rects, geom.NewRect(x, y, x+0.5, y+0.5))
		x, y = 1000+rng.Float64()*10, 1000+rng.Float64()*10
		rects = append(rects, geom.NewRect(x, y, x+0.5, y+0.5))
	}
	d := dataset.New(rects)
	sc := buildSharded(t, d, Config{Shards: 2, Buckets: 20, Regions: 512})
	if sc.Shards() != 2 {
		t.Fatalf("expected 2 shards, got %d", sc.Shards())
	}
	res, err := sc.Estimate(geom.NewRect(2, 2, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 1 {
		t.Errorf("fan-out %d, want 1 (distant cluster should be pruned)", res.ShardsQueried)
	}
	if res.Estimate <= 0 {
		t.Errorf("estimate %.1f, want > 0", res.Estimate)
	}
}

func TestEstimateContextExpiredUpFront(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 11)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sc.EstimateContext(ctx, geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatalf("degradation must not be an error: %v", err)
	}
	if !res.Partial {
		t.Fatal("expired context must flag Partial")
	}
	if res.ShardsMissed == 0 {
		t.Fatal("expired context should miss at least one shard")
	}
	if res.Estimate <= 0 {
		t.Errorf("fallback estimate %.1f, want > 0", res.Estimate)
	}
}

func TestEstimateContextDeadlineMidScatter(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 13)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	if sc.Shards() < 2 {
		t.Fatalf("need >= 2 shards, got %d", sc.Shards())
	}
	// Shard 0 answers instantly; every other shard blocks until the
	// deadline has long expired.
	release := make(chan struct{})
	defer close(release)
	sc.SetEstimateHook(func(idx, _ int) error {
		if idx != 0 {
			<-release
		}
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	full := geom.NewRect(0, 0, 1000, 1000)
	res, err := sc.EstimateContext(ctx, full)
	if err != nil {
		t.Fatalf("mid-scatter expiry must degrade, not error: %v", err)
	}
	if !res.Partial {
		t.Fatal("mid-scatter expiry must flag Partial")
	}
	if res.ShardsMissed != res.ShardsQueried-1 {
		t.Errorf("missed %d of %d queried shards, want all but the fast one",
			res.ShardsMissed, res.ShardsQueried)
	}
	// The degraded answer still approximates the total: fallbacks are
	// full-shard uniform summaries, and the query covers everything, so
	// the estimate must stay near N.
	if res.Estimate < 0.5*float64(d.N()) || res.Estimate > 1.5*float64(d.N()) {
		t.Errorf("degraded estimate %.1f far from N=%d", res.Estimate, d.N())
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	d := synthetic.Charminar(2000, 1000, 10, 17)
	sc := New(Config{Shards: 4, Buckets: 40, Regions: 1024})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sc.AnalyzeContext(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if sc.Analyzed() {
		t.Fatal("cancelled analyze must not install statistics")
	}
}

func TestAnalyzeContextCancelKeepsPreviousShards(t *testing.T) {
	d := synthetic.Uniform(1000, 500, 1, 5, 19)
	sc := buildSharded(t, d, Config{Shards: 2, Buckets: 30, Regions: 512})
	want := sc.Shards()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sc.AnalyzeContext(ctx, d); err == nil {
		t.Fatal("cancelled rebuild should report the cancellation")
	}
	if sc.Shards() != want {
		t.Fatalf("cancelled rebuild clobbered live shards: %d != %d", sc.Shards(), want)
	}
}

func TestAnalyzeEmptyDistribution(t *testing.T) {
	sc := New(Config{})
	if err := sc.Analyze(dataset.New(nil)); err == nil {
		t.Fatal("empty distribution should error")
	}
}

func TestTelemetryCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := New(Config{Shards: 4, Buckets: 40, Regions: 1024})
	sc.EnableTelemetry(reg)
	d := synthetic.Charminar(2000, 1000, 10, 23)
	if err := sc.Analyze(d); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("shard_builds_total", "").Value(); got != uint64(sc.Shards()) {
		t.Errorf("shard_builds_total = %d, want %d", got, sc.Shards())
	}
	if got := reg.Gauge("shard_shards", "").Value(); got != float64(sc.Shards()) {
		t.Errorf("shard_shards gauge = %v, want %d", got, sc.Shards())
	}
	if _, err := sc.Estimate(geom.NewRect(0, 0, 1000, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("shard_estimates_total", "").Value(); got != 1 {
		t.Errorf("shard_estimates_total = %d, want 1", got)
	}
	// Degrade once and check the partial counters move.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.EstimateContext(ctx, geom.NewRect(0, 0, 1000, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("shard_partial_results_total", "").Value(); got != 1 {
		t.Errorf("shard_partial_results_total = %d, want 1", got)
	}
	if got := reg.Counter("shard_fallback_shards_total", "").Value(); got == 0 {
		t.Error("shard_fallback_shards_total should be > 0 after degradation")
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	// Workers=1 must serialize builds and still produce a correct
	// shard set (exercises the semaphore path).
	d := synthetic.Charminar(2000, 1000, 10, 29)
	sc := buildSharded(t, d, Config{Shards: 8, Buckets: 80, Regions: 2048, Workers: 1})
	rows := 0
	for _, s := range sc.Info() {
		rows += s.Rows
	}
	if rows != d.N() {
		t.Fatalf("rows %d != N %d", rows, d.N())
	}
}
