package shard

// Concurrency stress: estimates, rebuilds and telemetry enablement
// race against each other. Run with -race (CI does); the assertions
// here are secondary to the detector.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/telemetry"
)

func TestRaceEstimateDuringRebuild(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 31)
	sc := buildSharded(t, d, Config{Shards: 4, Buckets: 40, Regions: 1024})
	sc.EnableTelemetry(telemetry.NewRegistry())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := geom.RectAround(geom.Point{
					X: rng.Float64() * 1000, Y: rng.Float64() * 1000,
				}, rng.Float64()*200, rng.Float64()*200)
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if g%2 == 0 {
					// Half the readers carry tight deadlines so the
					// degradation path races too.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(50))*time.Microsecond)
				}
				_, err := sc.EstimateContext(ctx, q)
				cancel()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := sc.Analyze(d); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
