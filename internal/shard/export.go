package shard

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Export is one built shard lifted out of the catalog for snapshot
// shipping: everything a remote node needs to serve this shard's
// estimates — routing geometry, the full histogram, the degradation
// ladder, and the uniformity fallback — plus the build epoch so the
// receiver can tell which statistics generation it is serving. The
// histograms are the catalog's own immutable-by-contract instances;
// callers must treat them as read-only.
type Export struct {
	// Index is the shard's position in the catalog (routing order).
	Index int
	// Epoch is the build epoch of the shard set the export was taken
	// from (see ShardedCatalog.Epoch).
	Epoch uint64
	// Region is the partition cell the shard was assigned.
	Region geom.Rect
	// MBR bounds the shard's member rectangles.
	MBR geom.Rect
	// RouteBox is the MBR padded for exact pruning (see shardStat).
	RouteBox geom.Rect
	// Rows is the shard's rectangle count.
	Rows int
	// Hist is the shard's full Min-Skew histogram.
	Hist *core.BucketEstimator
	// Ladder holds the coarser degradation rungs, finest first.
	Ladder []*core.BucketEstimator
	// Fallback is the single-bucket uniformity summary.
	Fallback core.Bucket
}

// Export returns the live shard set as per-shard exports in routing
// order, all stamped with the same epoch. It returns nil before the
// first AnalyzeContext. The snapshot is consistent: a rebuild racing
// the call yields either the old set or the new one, never a mix.
func (sc *ShardedCatalog) Export() []Export {
	sc.mu.RLock()
	shards, epoch := sc.shards, sc.epoch
	sc.mu.RUnlock()
	if shards == nil {
		return nil
	}
	out := make([]Export, len(shards))
	for i, s := range shards {
		out[i] = Export{
			Index:    i,
			Epoch:    epoch,
			Region:   s.region,
			MBR:      s.mbr,
			RouteBox: s.routeBox,
			Rows:     s.n,
			Hist:     s.hist,
			Ladder:   s.ladder,
			Fallback: s.fallback,
		}
	}
	return out
}
