package shard

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Quality grades how an estimate was produced. Larger is worse, and
// the zero value is QualityFull, so results built without the
// resilience layer in mind (the monolithic path) read as full quality.
type Quality int

const (
	// QualityFull: every relevant shard answered from its full
	// Min-Skew histogram.
	QualityFull Quality = iota
	// QualityCoarse: at least one shard answered from a coarser
	// degradation-ladder rung (still skew-aware), none from the
	// uniformity fallback.
	QualityCoarse
	// QualityUniform: at least one shard answered from the
	// single-bucket uniformity fallback, the worst estimator.
	QualityUniform

	qualityLevels = 3
)

func (q Quality) String() string {
	switch q {
	case QualityFull:
		return "full"
	case QualityCoarse:
		return "coarse"
	case QualityUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Quality(%d)", int(q))
	}
}

// worseQuality returns the lower of the two grades (larger value).
func worseQuality(a, b Quality) Quality {
	if b > a {
		return b
	}
	return a
}

// minScatterBudget is the remaining-deadline floor below which the
// scatter is not worth starting: the request steps straight down the
// degradation ladder instead of launching goroutines it will only
// abandon.
const minScatterBudget = 500 * time.Microsecond

// Result is a scatter-gather estimate. When Quality is QualityFull
// the estimate is exactly the sum of every relevant shard's histogram
// contribution — equal (up to float summation order) to walking the
// union of all shard buckets in one thread. Otherwise some shards
// were answered from the degradation ladder: a coarser Min-Skew rung
// (QualityCoarse) or the single-bucket uniformity fallback
// (QualityUniform) — a degraded but well-defined answer, never an
// error.
type Result struct {
	// Estimate is the estimated number of input rectangles
	// intersecting the query.
	Estimate float64
	// Partial reports any degradation: at least one shard did not
	// answer from its full histogram. Equivalent to
	// Quality != QualityFull.
	Partial bool
	// Quality is the worst grade any relevant shard answered at.
	Quality Quality
	// ShardsTotal is the number of live shards.
	ShardsTotal int
	// ShardsQueried is the scatter fan-out: shards whose padded MBR
	// intersects the query.
	ShardsQueried int
	// ShardsMissed is how many of the queried shards were answered
	// below full quality (== len(FallbackShards)).
	ShardsMissed int
	// FallbackShards lists the exact shard indices answered below full
	// quality, ascending — so clients and tests can assert precisely
	// what degraded.
	FallbackShards []int
	// Breakers is the circuit-breaker state per shard index at the
	// time of the estimate ("closed", "half_open", "open"); nil when
	// breakers are disabled.
	Breakers []string
	// Epoch is the build epoch of the statistics snapshot the estimate
	// walked (see ShardedCatalog.Epoch). An estimate that raced a
	// rebuild carries the epoch of the set it actually used, never a
	// mix.
	Epoch uint64
}

// shardAnswer carries one shard's partial count and its quality back
// to the gatherer.
type shardAnswer struct {
	idx     int
	est     float64
	quality Quality
}

// scatterSnap is the immutable view of the catalog one estimate works
// against, taken under the read lock so scatter goroutines never touch
// catalog fields.
type scatterSnap struct {
	shards  []*shardStat
	breaker []*resilience.Breaker
	hook    func(shardIdx, attempt int) error
	retrier *resilience.Retrier
	clk     vclock.Clock
	epoch   uint64

	fanout       *telemetry.Histogram
	estimates    *telemetry.Counter
	partials     *telemetry.Counter
	missedShards *telemetry.Counter
	retries      *telemetry.Counter
	hedges       *telemetry.Counter
	hedgeWins    *telemetry.Counter
	qualityCtr   [qualityLevels]*telemetry.Counter
	walkLatency  *telemetry.Histogram
}

// breakerAt returns the shard's breaker (nil when disabled).
func (sn *scatterSnap) breakerAt(idx int) *resilience.Breaker {
	if idx < len(sn.breaker) {
		return sn.breaker[idx]
	}
	return nil
}

// Estimate scatter-gathers without a deadline; it never degrades
// unless a breaker is already open or a shard call fails outright.
func (sc *ShardedCatalog) Estimate(q geom.Rect) (Result, error) {
	return sc.EstimateContext(context.Background(), q)
}

// EstimateContext estimates the result size of q by scatter-gathering
// the shards whose padded MBRs intersect q and merging their partial
// counts. Degradation is graceful and explicit, never an error: a
// shard whose circuit breaker is open, whose retry budget is spent, or
// whose answer the deadline ran past is answered from its degradation
// ladder — a coarser Min-Skew summary when one exists, else the
// uniformity fallback — and the Result reports exactly which shards
// degraded and to what overall Quality. The only errors are
// structural: no statistics yet, or an invalid query rectangle.
func (sc *ShardedCatalog) EstimateContext(ctx context.Context, q geom.Rect) (Result, error) {
	if !q.Valid() {
		return Result{}, fmt.Errorf("shard: invalid query rectangle %v", q)
	}
	sc.mu.RLock()
	snap := &scatterSnap{
		shards:  sc.shards,
		breaker: sc.breakers,
		hook:    sc.estimateHook,
		retrier: sc.retrier,
		clk:     sc.cfg.Clock,
		epoch:   sc.epoch,

		fanout:       sc.fanout,
		estimates:    sc.estimates,
		partials:     sc.partials,
		missedShards: sc.missedShards,
		retries:      sc.retries,
		hedges:       sc.hedges,
		hedgeWins:    sc.hedgeWins,
		qualityCtr:   sc.qualityCtr,
		walkLatency:  sc.walkLatency,
	}
	sc.mu.RUnlock()
	if snap.shards == nil {
		return Result{}, fmt.Errorf("shard: no statistics; run AnalyzeContext first")
	}

	// Route: only shards whose padded MBR the query can reach. The
	// padding makes pruning exact (see shardStat.routeBox), so the
	// pruned shards would have contributed zero anyway.
	relevant := make([]int, 0, len(snap.shards))
	for i, s := range snap.shards {
		if s.routeBox.Intersects(q) {
			relevant = append(relevant, i)
		}
	}
	snap.estimates.Inc()
	snap.fanout.Observe(float64(len(relevant)))
	res := Result{ShardsTotal: len(snap.shards), ShardsQueried: len(relevant), Epoch: snap.epoch}

	// The scatter span (nil — a no-op — when the request carries no
	// trace). done grades the result and seals the span with the merge
	// decision: the overall quality plus the per-shard used-quality
	// list, written by this goroutine only, so the trace-driven
	// invariant checks read the gatherer's verdict, not a racing shard
	// goroutine's.
	scat := reqtrace.SpanFrom(ctx).StartChild("shard.scatter")
	scat.SetInt("shards_total", len(snap.shards))
	scat.SetInt("fanout", len(relevant))
	done := func(relevant []int, quality map[int]Quality) (Result, error) {
		res = sc.finish(snap, res, relevant, quality)
		if scat != nil {
			scat.SetAttr("quality", res.Quality.String())
			scat.SetAttr("shard_quality", qualityList(relevant, quality))
			if len(res.FallbackShards) > 0 {
				scat.SetAttr("fallback_shards", intList(res.FallbackShards))
			}
			scat.End()
		}
		return res, nil
	}
	if len(relevant) == 0 {
		return done(nil, nil)
	}

	// Deadline nearly spent (or already gone): don't start a scatter
	// the context will only abandon — answer every shard from the
	// cheapest skew-aware rung immediately.
	if deadline, ok := ctx.Deadline(); ctx.Err() != nil ||
		(ok && deadline.Sub(snap.clk.Now()) < minScatterBudget) {
		scat.Event("deadline.pre_scatter")
		quality := make(map[int]Quality, len(relevant))
		var total float64
		for _, idx := range relevant {
			s := snap.shards[idx]
			sp := startShardSpan(scat, idx, s)
			est, ql := s.degraded(q, s.coarsestRung())
			endShardSpan(sp, s, s.coarsestRung(), est, ql)
			total += est
			quality[idx] = ql
		}
		res.Estimate = total
		return done(relevant, quality)
	}

	// Fast path: a single relevant shard with no hook installed is a
	// pure in-memory bucket walk — no goroutine, no hedge, no retry (an
	// in-process walk cannot transiently fail). The breaker still
	// gates and records, so its state stays live. A test hook forces
	// the scatter path so degradation stays exercisable.
	if len(relevant) == 1 && snap.hook == nil {
		idx := relevant[0]
		a := snap.walkOne(idx, q, startShardSpan(scat, idx, snap.shards[idx]))
		res.Estimate = a.est
		quality := map[int]Quality{idx: a.quality}
		return done(relevant, quality)
	}

	// Scatter. The answer channel is buffered to the fan-out so late
	// finishers never block after the gatherer has bailed out; they
	// write their answer and exit, and the channel is garbage. Shard
	// spans are pre-created here, in routing order, so the trace's
	// child order is deterministic regardless of goroutine scheduling;
	// each span is then written only by its own goroutine. The pprof
	// labels attribute CPU samples to (request, shard).
	hedgeDelay := sc.hedgeDelay(snap)
	answers := make(chan shardAnswer, len(relevant))
	reqID := reqtrace.RequestIDFrom(ctx)
	for _, idx := range relevant {
		go func(idx int, sp *reqtrace.Span) {
			pprof.Do(ctx, pprof.Labels("request_id", reqID, "shard", strconv.Itoa(idx)),
				func(ctx context.Context) {
					answers <- snap.callShard(ctx, idx, q, hedgeDelay, sp)
				})
		}(idx, startShardSpan(scat, idx, snap.shards[idx]))
	}

	// Gather until every shard reported or the context is done.
	// Answers accumulate per shard and are totalled in routing order at
	// the end: float addition is not associative, so summing in arrival
	// order would let goroutine scheduling perturb the last bits of the
	// merged estimate — enough to break the byte-identical trace and
	// query-log replay gates.
	quality := make(map[int]Quality, len(relevant))
	ests := make(map[int]float64, len(relevant))
	for len(quality) < len(relevant) {
		select {
		case a := <-answers:
			ests[a.idx] = a.est
			quality[a.idx] = a.quality
		case <-ctx.Done():
			// Deadline or cancellation mid-scatter. Drain anything that
			// raced in first — a real answer beats any fallback — then
			// step the missing shards down the ladder. The gatherer's
			// ladder answers are recorded as scatter-span events, not on
			// the shard spans: those belong to their still-running
			// goroutines, which will seal them with the answer that
			// arrived too late.
			scat.Event("deadline.mid_scatter")
			for drained := true; drained && len(quality) < len(relevant); {
				select {
				case a := <-answers:
					ests[a.idx] = a.est
					quality[a.idx] = a.quality
				default:
					drained = false
				}
			}
			for _, idx := range relevant {
				if _, ok := quality[idx]; ok {
					continue
				}
				s := snap.shards[idx]
				est, ql := s.degraded(q, s.coarsestRung())
				scat.Event("ladder.fallback", reqtrace.Int("shard", idx),
					reqtrace.Str("rung", rungName(s, s.coarsestRung())),
					reqtrace.Str("quality", ql.String()))
				ests[idx] = est
				quality[idx] = ql
			}
			res.Estimate = sumInOrder(relevant, ests)
			return done(relevant, quality)
		}
	}
	res.Estimate = sumInOrder(relevant, ests)
	return done(relevant, quality)
}

// sumInOrder totals per-shard estimates in routing order, so the merge
// is a pure function of the answers regardless of which shard finished
// first.
func sumInOrder(relevant []int, ests map[int]float64) float64 {
	var total float64
	for _, idx := range relevant {
		total += ests[idx]
	}
	return total
}

// startShardSpan opens one shard's span under the scatter span with
// its static routing attributes: index, route box and full-histogram
// bucket count.
func startShardSpan(scat *reqtrace.Span, idx int, s *shardStat) *reqtrace.Span {
	sp := scat.StartChild("shard.estimate")
	sp.SetInt("shard", idx)
	sp.SetAttr("route_box", s.routeBox.String())
	sp.SetInt("buckets", len(s.hist.Buckets()))
	return sp
}

// endShardSpan seals one shard's span with the answer it produced.
func endShardSpan(sp *reqtrace.Span, s *shardStat, rung int, est float64, ql Quality) {
	sp.SetAttr("quality", ql.String())
	if ql != QualityFull {
		sp.SetAttr("rung", rungName(s, rung))
	}
	sp.SetFloat("estimate", est)
	sp.End()
}

// rungName names the degradation-ladder rung a shard answered from:
// the rung index when the ladder has it, else "uniform".
func rungName(s *shardStat, rung int) string {
	if rung >= 0 && rung < len(s.ladder) {
		return strconv.Itoa(rung)
	}
	return "uniform"
}

// qualityList renders the gatherer's per-shard used qualities in
// routing order ("0:full,2:coarse"): the merge decision the
// trace-driven invariant checks grade the response against.
func qualityList(relevant []int, quality map[int]Quality) string {
	var b strings.Builder
	for i, idx := range relevant {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
		b.WriteByte(':')
		b.WriteString(quality[idx].String())
	}
	return b.String()
}

// intList renders ints as "1,3,7".
func intList(v []int) string {
	var b strings.Builder
	for i, n := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// hedgeDelay resolves the adaptive hedge trigger for this request: 0
// (no hedging) unless hedging is enabled and a hook is installed — a
// pure in-memory walk has no tail worth hedging, so production scatter
// paths skip the extra timer entirely.
func (sc *ShardedCatalog) hedgeDelay(snap *scatterSnap) time.Duration {
	if snap.hook == nil || !sc.cfg.Resilience.HedgingEnabled() {
		return 0
	}
	return sc.cfg.Resilience.Hedge.DelayFrom(snap.walkLatency)
}

// walkOne runs the direct, attempt-free shard call used by the
// single-shard fast path: breaker-gated full walk, degrading to the
// first ladder rung when the breaker is open.
func (sn *scatterSnap) walkOne(idx int, q geom.Rect, sp *reqtrace.Span) shardAnswer {
	s := sn.shards[idx]
	br := sn.breakerAt(idx)
	tok, ok := br.Allow()
	if !ok {
		sp.SetAttr("breaker", "refused")
		est, ql := s.degraded(q, 0)
		endShardSpan(sp, s, 0, est, ql)
		return shardAnswer{idx: idx, est: est, quality: ql}
	}
	est := sn.walk(s, q, sp)
	br.Record(tok, true)
	endShardSpan(sp, s, -1, est, QualityFull)
	return shardAnswer{idx: idx, est: est, quality: QualityFull}
}

// jitterKey folds one shard call's identity into the key that pins
// its retry-backoff jitter (see resilience.CallPolicy.JitterKey), so
// concurrent calls never swap backoff draws between same-seed runs.
// The cluster coordinator keys its remote calls the same way.
func jitterKey(shardIdx int, epoch uint64, q geom.Rect) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	mix(uint64(shardIdx))
	mix(epoch)
	mix(math.Float64bits(q.MinX))
	mix(math.Float64bits(q.MinY))
	mix(math.Float64bits(q.MaxX))
	mix(math.Float64bits(q.MaxY))
	if h == 0 {
		h = 1 // zero disables keyed jitter; keep the key always-on
	}
	return h
}

// walk runs the full histogram walk with its core.walk span and
// latency observation.
func (sn *scatterSnap) walk(s *shardStat, q geom.Rect, sp *reqtrace.Span) float64 {
	ws := sp.StartChild("core.walk")
	t0 := sn.clk.Now()
	est, wst := s.hist.EstimateStats(q)
	sn.walkLatency.Observe(sn.clk.Since(t0).Seconds())
	ws.SetInt("buckets", wst.Buckets)
	ws.SetInt("visited", wst.Visited)
	ws.SetInt("contributing", wst.Contributing)
	ws.End()
	return est
}

// callShard produces one shard's answer on the scatter path: breaker
// admission, then the full histogram walk under the retry/hedge
// policy, stepping down the degradation ladder when the breaker is
// open or every attempt failed.
func (sn *scatterSnap) callShard(ctx context.Context, idx int, q geom.Rect, hedgeDelay time.Duration, sp *reqtrace.Span) shardAnswer {
	s := sn.shards[idx]
	br := sn.breakerAt(idx)
	tok, ok := br.Allow()
	if !ok {
		sp.SetAttr("breaker", "refused")
		est, ql := s.degraded(q, 0)
		endShardSpan(sp, s, 0, est, ql)
		return shardAnswer{idx: idx, est: est, quality: ql}
	}
	if sn.hook == nil {
		// No hook: the walk cannot fail or stall; skip the attempt
		// machinery (see hedgeDelay).
		est := sn.walk(s, q, sp)
		br.Record(tok, true)
		endShardSpan(sp, s, -1, est, QualityFull)
		return shardAnswer{idx: idx, est: est, quality: QualityFull}
	}
	// Carry the shard span to resilience.Do, whose coordinator emits
	// retry/hedge events onto it.
	est, stats, err := resilience.Do(reqtrace.ContextWithSpan(ctx, sp), resilience.CallPolicy{
		Clock:      sn.clk,
		Retry:      sn.retrier,
		HedgeDelay: hedgeDelay,
		JitterKey:  jitterKey(idx, sn.epoch, q),
	}, func(actx context.Context, attempt int) (float64, error) {
		t0 := sn.clk.Now()
		if err := sn.hook(idx, attempt); err != nil {
			return 0, err
		}
		if err := actx.Err(); err != nil {
			return 0, err
		}
		v := s.hist.Estimate(q)
		sn.walkLatency.Observe(sn.clk.Since(t0).Seconds())
		return v, nil
	})
	sn.retries.Add(uint64(stats.Retries))
	sn.hedges.Add(uint64(stats.Hedges))
	if stats.HedgeWon {
		sn.hedgeWins.Inc()
	}
	sp.SetInt("attempts", stats.Attempts)
	if err != nil {
		// Breaker-visible failure: retry budget spent or deadline hit
		// while this shard still owed its answer.
		br.Record(tok, false)
		sp.SetAttr("breaker", "recorded_failure")
		dest, ql := s.degraded(q, 0)
		endShardSpan(sp, s, 0, dest, ql)
		return shardAnswer{idx: idx, est: dest, quality: ql}
	}
	br.Record(tok, true)
	endShardSpan(sp, s, -1, est, QualityFull)
	return shardAnswer{idx: idx, est: est, quality: QualityFull}
}

// finish grades the result from the per-shard qualities, fills the
// fallback index list and breaker states, and bumps the telemetry.
func (sc *ShardedCatalog) finish(snap *scatterSnap, res Result, relevant []int, quality map[int]Quality) Result {
	for _, idx := range relevant {
		ql := quality[idx]
		res.Quality = worseQuality(res.Quality, ql)
		if ql != QualityFull {
			res.FallbackShards = append(res.FallbackShards, idx)
		}
	}
	sort.Ints(res.FallbackShards)
	res.ShardsMissed = len(res.FallbackShards)
	res.Partial = res.Quality != QualityFull
	if len(snap.breaker) > 0 {
		res.Breakers = make([]string, len(snap.breaker))
		for i, b := range snap.breaker {
			res.Breakers[i] = b.State().String()
		}
	}
	if res.Partial {
		snap.partials.Inc()
		snap.missedShards.Add(uint64(res.ShardsMissed))
	}
	snap.qualityCtr[res.Quality].Inc()
	return res
}
