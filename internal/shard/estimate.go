package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Quality grades how an estimate was produced. Larger is worse, and
// the zero value is QualityFull, so results built without the
// resilience layer in mind (the monolithic path) read as full quality.
type Quality int

const (
	// QualityFull: every relevant shard answered from its full
	// Min-Skew histogram.
	QualityFull Quality = iota
	// QualityCoarse: at least one shard answered from a coarser
	// degradation-ladder rung (still skew-aware), none from the
	// uniformity fallback.
	QualityCoarse
	// QualityUniform: at least one shard answered from the
	// single-bucket uniformity fallback, the worst estimator.
	QualityUniform

	qualityLevels = 3
)

func (q Quality) String() string {
	switch q {
	case QualityFull:
		return "full"
	case QualityCoarse:
		return "coarse"
	case QualityUniform:
		return "uniform"
	default:
		return fmt.Sprintf("Quality(%d)", int(q))
	}
}

// worseQuality returns the lower of the two grades (larger value).
func worseQuality(a, b Quality) Quality {
	if b > a {
		return b
	}
	return a
}

// minScatterBudget is the remaining-deadline floor below which the
// scatter is not worth starting: the request steps straight down the
// degradation ladder instead of launching goroutines it will only
// abandon.
const minScatterBudget = 500 * time.Microsecond

// Result is a scatter-gather estimate. When Quality is QualityFull
// the estimate is exactly the sum of every relevant shard's histogram
// contribution — equal (up to float summation order) to walking the
// union of all shard buckets in one thread. Otherwise some shards
// were answered from the degradation ladder: a coarser Min-Skew rung
// (QualityCoarse) or the single-bucket uniformity fallback
// (QualityUniform) — a degraded but well-defined answer, never an
// error.
type Result struct {
	// Estimate is the estimated number of input rectangles
	// intersecting the query.
	Estimate float64
	// Partial reports any degradation: at least one shard did not
	// answer from its full histogram. Equivalent to
	// Quality != QualityFull.
	Partial bool
	// Quality is the worst grade any relevant shard answered at.
	Quality Quality
	// ShardsTotal is the number of live shards.
	ShardsTotal int
	// ShardsQueried is the scatter fan-out: shards whose padded MBR
	// intersects the query.
	ShardsQueried int
	// ShardsMissed is how many of the queried shards were answered
	// below full quality (== len(FallbackShards)).
	ShardsMissed int
	// FallbackShards lists the exact shard indices answered below full
	// quality, ascending — so clients and tests can assert precisely
	// what degraded.
	FallbackShards []int
	// Breakers is the circuit-breaker state per shard index at the
	// time of the estimate ("closed", "half_open", "open"); nil when
	// breakers are disabled.
	Breakers []string
}

// shardAnswer carries one shard's partial count and its quality back
// to the gatherer.
type shardAnswer struct {
	idx     int
	est     float64
	quality Quality
}

// scatterSnap is the immutable view of the catalog one estimate works
// against, taken under the read lock so scatter goroutines never touch
// catalog fields.
type scatterSnap struct {
	shards  []*shardStat
	breaker []*resilience.Breaker
	hook    func(shardIdx, attempt int) error
	retrier *resilience.Retrier
	clk     vclock.Clock

	fanout       *telemetry.Histogram
	estimates    *telemetry.Counter
	partials     *telemetry.Counter
	missedShards *telemetry.Counter
	retries      *telemetry.Counter
	hedges       *telemetry.Counter
	hedgeWins    *telemetry.Counter
	qualityCtr   [qualityLevels]*telemetry.Counter
	walkLatency  *telemetry.Histogram
}

// breakerAt returns the shard's breaker (nil when disabled).
func (sn *scatterSnap) breakerAt(idx int) *resilience.Breaker {
	if idx < len(sn.breaker) {
		return sn.breaker[idx]
	}
	return nil
}

// Estimate scatter-gathers without a deadline; it never degrades
// unless a breaker is already open or a shard call fails outright.
func (sc *ShardedCatalog) Estimate(q geom.Rect) (Result, error) {
	return sc.EstimateContext(context.Background(), q)
}

// EstimateContext estimates the result size of q by scatter-gathering
// the shards whose padded MBRs intersect q and merging their partial
// counts. Degradation is graceful and explicit, never an error: a
// shard whose circuit breaker is open, whose retry budget is spent, or
// whose answer the deadline ran past is answered from its degradation
// ladder — a coarser Min-Skew summary when one exists, else the
// uniformity fallback — and the Result reports exactly which shards
// degraded and to what overall Quality. The only errors are
// structural: no statistics yet, or an invalid query rectangle.
func (sc *ShardedCatalog) EstimateContext(ctx context.Context, q geom.Rect) (Result, error) {
	if !q.Valid() {
		return Result{}, fmt.Errorf("shard: invalid query rectangle %v", q)
	}
	sc.mu.RLock()
	snap := &scatterSnap{
		shards:  sc.shards,
		breaker: sc.breakers,
		hook:    sc.estimateHook,
		retrier: sc.retrier,
		clk:     sc.cfg.Clock,

		fanout:       sc.fanout,
		estimates:    sc.estimates,
		partials:     sc.partials,
		missedShards: sc.missedShards,
		retries:      sc.retries,
		hedges:       sc.hedges,
		hedgeWins:    sc.hedgeWins,
		qualityCtr:   sc.qualityCtr,
		walkLatency:  sc.walkLatency,
	}
	sc.mu.RUnlock()
	if snap.shards == nil {
		return Result{}, fmt.Errorf("shard: no statistics; run AnalyzeContext first")
	}

	// Route: only shards whose padded MBR the query can reach. The
	// padding makes pruning exact (see shardStat.routeBox), so the
	// pruned shards would have contributed zero anyway.
	relevant := make([]int, 0, len(snap.shards))
	for i, s := range snap.shards {
		if s.routeBox.Intersects(q) {
			relevant = append(relevant, i)
		}
	}
	snap.estimates.Inc()
	snap.fanout.Observe(float64(len(relevant)))
	res := Result{ShardsTotal: len(snap.shards), ShardsQueried: len(relevant)}
	if len(relevant) == 0 {
		return sc.finish(snap, res, nil, nil), nil
	}

	// Deadline nearly spent (or already gone): don't start a scatter
	// the context will only abandon — answer every shard from the
	// cheapest skew-aware rung immediately.
	if deadline, ok := ctx.Deadline(); ctx.Err() != nil ||
		(ok && deadline.Sub(snap.clk.Now()) < minScatterBudget) {
		quality := make(map[int]Quality, len(relevant))
		var total float64
		for _, idx := range relevant {
			s := snap.shards[idx]
			est, ql := s.degraded(q, s.coarsestRung())
			total += est
			quality[idx] = ql
		}
		res.Estimate = total
		return sc.finish(snap, res, relevant, quality), nil
	}

	// Fast path: a single relevant shard with no hook installed is a
	// pure in-memory bucket walk — no goroutine, no hedge, no retry (an
	// in-process walk cannot transiently fail). The breaker still
	// gates and records, so its state stays live. A test hook forces
	// the scatter path so degradation stays exercisable.
	if len(relevant) == 1 && snap.hook == nil {
		idx := relevant[0]
		a := snap.walkOne(idx, q)
		res.Estimate = a.est
		quality := map[int]Quality{idx: a.quality}
		return sc.finish(snap, res, relevant, quality), nil
	}

	// Scatter. The answer channel is buffered to the fan-out so late
	// finishers never block after the gatherer has bailed out; they
	// write their answer and exit, and the channel is garbage.
	hedgeDelay := sc.hedgeDelay(snap)
	answers := make(chan shardAnswer, len(relevant))
	for _, idx := range relevant {
		go func(idx int) { answers <- snap.callShard(ctx, idx, q, hedgeDelay) }(idx)
	}

	// Gather until every shard reported or the context is done.
	quality := make(map[int]Quality, len(relevant))
	var total float64
	for len(quality) < len(relevant) {
		select {
		case a := <-answers:
			total += a.est
			quality[a.idx] = a.quality
		case <-ctx.Done():
			// Deadline or cancellation mid-scatter. Drain anything that
			// raced in first — a real answer beats any fallback — then
			// step the missing shards down the ladder.
			for drained := true; drained && len(quality) < len(relevant); {
				select {
				case a := <-answers:
					total += a.est
					quality[a.idx] = a.quality
				default:
					drained = false
				}
			}
			for _, idx := range relevant {
				if _, ok := quality[idx]; ok {
					continue
				}
				s := snap.shards[idx]
				est, ql := s.degraded(q, s.coarsestRung())
				total += est
				quality[idx] = ql
			}
			res.Estimate = total
			return sc.finish(snap, res, relevant, quality), nil
		}
	}
	res.Estimate = total
	return sc.finish(snap, res, relevant, quality), nil
}

// hedgeDelay resolves the adaptive hedge trigger for this request: 0
// (no hedging) unless hedging is enabled and a hook is installed — a
// pure in-memory walk has no tail worth hedging, so production scatter
// paths skip the extra timer entirely.
func (sc *ShardedCatalog) hedgeDelay(snap *scatterSnap) time.Duration {
	if snap.hook == nil || !sc.cfg.Resilience.HedgingEnabled() {
		return 0
	}
	return sc.cfg.Resilience.Hedge.DelayFrom(snap.walkLatency)
}

// walkOne runs the direct, attempt-free shard call used by the
// single-shard fast path: breaker-gated full walk, degrading to the
// first ladder rung when the breaker is open.
func (sn *scatterSnap) walkOne(idx int, q geom.Rect) shardAnswer {
	s := sn.shards[idx]
	br := sn.breakerAt(idx)
	tok, ok := br.Allow()
	if !ok {
		est, ql := s.degraded(q, 0)
		return shardAnswer{idx: idx, est: est, quality: ql}
	}
	t0 := sn.clk.Now()
	est := s.hist.Estimate(q)
	sn.walkLatency.Observe(sn.clk.Since(t0).Seconds())
	br.Record(tok, true)
	return shardAnswer{idx: idx, est: est, quality: QualityFull}
}

// callShard produces one shard's answer on the scatter path: breaker
// admission, then the full histogram walk under the retry/hedge
// policy, stepping down the degradation ladder when the breaker is
// open or every attempt failed.
func (sn *scatterSnap) callShard(ctx context.Context, idx int, q geom.Rect, hedgeDelay time.Duration) shardAnswer {
	s := sn.shards[idx]
	br := sn.breakerAt(idx)
	tok, ok := br.Allow()
	if !ok {
		est, ql := s.degraded(q, 0)
		return shardAnswer{idx: idx, est: est, quality: ql}
	}
	if sn.hook == nil {
		// No hook: the walk cannot fail or stall; skip the attempt
		// machinery (see hedgeDelay).
		t0 := sn.clk.Now()
		est := s.hist.Estimate(q)
		sn.walkLatency.Observe(sn.clk.Since(t0).Seconds())
		br.Record(tok, true)
		return shardAnswer{idx: idx, est: est, quality: QualityFull}
	}
	est, stats, err := resilience.Do(ctx, resilience.CallPolicy{
		Clock:      sn.clk,
		Retry:      sn.retrier,
		HedgeDelay: hedgeDelay,
	}, func(actx context.Context, attempt int) (float64, error) {
		t0 := sn.clk.Now()
		if err := sn.hook(idx, attempt); err != nil {
			return 0, err
		}
		if err := actx.Err(); err != nil {
			return 0, err
		}
		v := s.hist.Estimate(q)
		sn.walkLatency.Observe(sn.clk.Since(t0).Seconds())
		return v, nil
	})
	sn.retries.Add(uint64(stats.Retries))
	sn.hedges.Add(uint64(stats.Hedges))
	if stats.HedgeWon {
		sn.hedgeWins.Inc()
	}
	if err != nil {
		// Breaker-visible failure: retry budget spent or deadline hit
		// while this shard still owed its answer.
		br.Record(tok, false)
		dest, ql := s.degraded(q, 0)
		return shardAnswer{idx: idx, est: dest, quality: ql}
	}
	br.Record(tok, true)
	return shardAnswer{idx: idx, est: est, quality: QualityFull}
}

// finish grades the result from the per-shard qualities, fills the
// fallback index list and breaker states, and bumps the telemetry.
func (sc *ShardedCatalog) finish(snap *scatterSnap, res Result, relevant []int, quality map[int]Quality) Result {
	for _, idx := range relevant {
		ql := quality[idx]
		res.Quality = worseQuality(res.Quality, ql)
		if ql != QualityFull {
			res.FallbackShards = append(res.FallbackShards, idx)
		}
	}
	sort.Ints(res.FallbackShards)
	res.ShardsMissed = len(res.FallbackShards)
	res.Partial = res.Quality != QualityFull
	if len(snap.breaker) > 0 {
		res.Breakers = make([]string, len(snap.breaker))
		for i, b := range snap.breaker {
			res.Breakers[i] = b.State().String()
		}
	}
	if res.Partial {
		snap.partials.Inc()
		snap.missedShards.Add(uint64(res.ShardsMissed))
	}
	snap.qualityCtr[res.Quality].Inc()
	return res
}
