package shard

import (
	"context"
	"fmt"

	"repro/internal/geom"
)

// Result is a scatter-gather estimate. When Partial is false the
// estimate is exactly the sum of every relevant shard's histogram
// contribution — equal (up to float summation order) to walking the
// union of all shard buckets in one thread. When Partial is true the
// context expired mid-scatter: Estimate sums the shards that completed
// plus the single-bucket uniformity fallback for each missed shard,
// a degraded but well-defined answer (never an error).
type Result struct {
	// Estimate is the estimated number of input rectangles
	// intersecting the query.
	Estimate float64
	// Partial reports that at least one shard was approximated by its
	// uniformity fallback because the context was done first.
	Partial bool
	// ShardsTotal is the number of live shards.
	ShardsTotal int
	// ShardsQueried is the scatter fan-out: shards whose padded MBR
	// intersects the query.
	ShardsQueried int
	// ShardsMissed is how many of the queried shards were answered by
	// the fallback (0 unless Partial).
	ShardsMissed int
}

// shardAnswer carries one shard's partial count back to the gatherer.
type shardAnswer struct {
	idx int
	est float64
}

// Estimate scatter-gathers without a deadline; it never degrades.
func (sc *ShardedCatalog) Estimate(q geom.Rect) (Result, error) {
	return sc.EstimateContext(context.Background(), q)
}

// EstimateContext estimates the result size of q by scatter-gathering
// the shards whose padded MBRs intersect q and merging their partial
// counts. If ctx is cancelled or its deadline expires mid-scatter, the
// missed shards are approximated by their uniformity fallback and the
// result is flagged Partial — degradation is graceful, not an error.
// The only errors are structural: no statistics yet, or an invalid
// query rectangle.
func (sc *ShardedCatalog) EstimateContext(ctx context.Context, q geom.Rect) (Result, error) {
	if !q.Valid() {
		return Result{}, fmt.Errorf("shard: invalid query rectangle %v", q)
	}
	sc.mu.RLock()
	shards := sc.shards
	hook := sc.estimateHook
	fanout, estimates, partials, missedCtr := sc.fanout, sc.estimates, sc.partials, sc.missedShards
	sc.mu.RUnlock()
	if shards == nil {
		return Result{}, fmt.Errorf("shard: no statistics; run AnalyzeContext first")
	}

	// Route: only shards whose padded MBR the query can reach. The
	// padding makes pruning exact (see shardStat.routeBox), so the
	// pruned shards would have contributed zero anyway.
	relevant := make([]int, 0, len(shards))
	for i, s := range shards {
		if s.routeBox.Intersects(q) {
			relevant = append(relevant, i)
		}
	}
	estimates.Inc()
	fanout.Observe(float64(len(relevant)))
	res := Result{ShardsTotal: len(shards), ShardsQueried: len(relevant)}
	if len(relevant) == 0 {
		return res, nil
	}

	// Fast path: a single relevant shard with a live context needs no
	// goroutine — the estimate is a pure in-memory bucket walk. (A test
	// hook forces the scatter path so degradation stays exercisable.)
	if len(relevant) == 1 && hook == nil && ctx.Err() == nil {
		res.Estimate = shards[relevant[0]].hist.Estimate(q)
		return res, nil
	}

	// Scatter. The answer channel is buffered to the fan-out so late
	// finishers never block after the gatherer has bailed out; they
	// write their answer and exit, and the channel is garbage.
	answers := make(chan shardAnswer, len(relevant))
	for _, idx := range relevant {
		go func(idx int) {
			if hook != nil {
				hook(idx)
			}
			answers <- shardAnswer{idx: idx, est: shards[idx].hist.Estimate(q)}
		}(idx)
	}

	// Gather until every shard reported or the context is done.
	done := make(map[int]bool, len(relevant))
	var total float64
	for len(done) < len(relevant) {
		select {
		case a := <-answers:
			total += a.est
			done[a.idx] = true
		case <-ctx.Done():
			// Degrade: uniformity fallback for every shard still out.
			// Drain anything that raced in first — a real partial count
			// beats the fallback.
			for drained := true; drained && len(done) < len(relevant); {
				select {
				case a := <-answers:
					total += a.est
					done[a.idx] = true
				default:
					drained = false
				}
			}
			for _, idx := range relevant {
				if !done[idx] {
					total += shards[idx].fallback.Estimate(q)
					res.ShardsMissed++
				}
			}
			res.Estimate = total
			res.Partial = true
			partials.Inc()
			missedCtr.Add(uint64(res.ShardsMissed))
			return res, nil
		}
	}
	res.Estimate = total
	return res, nil
}
