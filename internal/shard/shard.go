// Package shard scales the statistics catalog out horizontally: a
// ShardedCatalog spatially partitions one distribution into K shards,
// builds an independent Min-Skew histogram per shard concurrently on a
// bounded worker pool, and answers estimates by scatter-gathering only
// the shards a query can touch, merging the partial counts.
//
// The paper's construction-cost results (Table 1) are the motivation
// on the build side: Min-Skew construction is dominated by the grid
// sweep and the greedy split loop, both of which shrink superlinearly
// with the per-shard data and grid size, so K parallel builds over
// K-th sized inputs finish far sooner than one monolithic build. On
// the query side, sharding bounds tail latency: a context deadline
// expiring mid-scatter degrades the answer (uniformity fallback for
// the missed shards, flagged Partial) instead of failing it.
//
// # Concurrency and immutability
//
// A built shard set is immutable: AnalyzeContext assembles a complete
// new shard slice and swaps it in under the write lock, and
// EstimateContext snapshots the slice under the read lock and then
// scatters without holding any lock. Goroutines that outlive a
// deadline therefore never race with a rebuild — they read the old
// snapshot until they finish and the garbage collector reclaims it.
// Churn (NoteInsert/NoteDelete) is intentionally not absorbed at this
// layer; the serving tier rebuilds via AnalyzeContext instead.
package shard

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Strategy selects how the input is divided into shard regions.
type Strategy int

const (
	// StrategyMinSkew derives shard regions from the first K-1 greedy
	// Min-Skew splits over a coarse grid (core.MinSkewPartition): shard
	// boundaries follow the skew structure of the data, so each shard's
	// histogram models an internally more uniform piece.
	StrategyMinSkew Strategy = iota
	// StrategySTR tiles the rectangle centers Sort-Tile-Recursive
	// style: sort by center x, cut into vertical slices of equal
	// cardinality, sort each slice by center y and cut again. Shards
	// are balanced in row count regardless of skew.
	StrategySTR
)

func (s Strategy) String() string {
	switch s {
	case StrategyMinSkew:
		return "minskew"
	case StrategySTR:
		return "str"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config sets the sharding and per-shard statistics policy.
type Config struct {
	// Shards is K, the number of spatial shards. Default 4.
	Shards int
	// Buckets is the total bucket budget across all shards, divided
	// among shards in proportion to their row counts (each shard keeps
	// at least one bucket). Default 100, matching the monolithic
	// catalog default so sharded and monolithic configurations occupy
	// the same space.
	Buckets int
	// Regions is the total Min-Skew grid budget, divided like Buckets
	// (each shard gets at least 64 cells). Default core.DefaultRegions.
	Regions int
	// Refinements is the per-shard progressive refinement count.
	Refinements int
	// Workers bounds the concurrent per-shard builds during
	// AnalyzeContext. Default runtime.GOMAXPROCS(0).
	Workers int
	// Strategy selects the partitioner. Default StrategyMinSkew.
	Strategy Strategy
	// Clock is the time source for build and estimate timing
	// telemetry. Nil means the system clock; the fault simulation
	// harness injects a vclock.Sim so shard timings advance with
	// simulated time.
	Clock vclock.Clock
	// LadderRungs is how many progressively coarser Min-Skew summaries
	// each shard builds beside its full histogram — the degradation
	// ladder. Rung r gets the shard's bucket budget divided by 4^(r+1)
	// (β/4, β/16, ...), so stepping down trades accuracy for an answer
	// that is still skew-aware, per the paper's §5 result that even a
	// coarse Min-Skew histogram beats the uniformity assumption.
	// Default 2; negative disables the ladder (degradation falls
	// straight to the uniformity fallback, the pre-ladder behavior).
	LadderRungs int
	// Resilience tunes the per-shard circuit breakers, retry policy and
	// hedged calls on the scatter path. The zero value enables all of
	// them with defaults; set Resilience.Disable to turn the layer off.
	Resilience resilience.Config
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Buckets == 0 {
		c.Buckets = 100
	}
	if c.Regions == 0 {
		c.Regions = core.DefaultRegions
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.LadderRungs == 0 {
		c.LadderRungs = 2
	}
	if c.LadderRungs < 0 {
		c.LadderRungs = 0 // normalized: 0 rungs after defaulting means disabled
	}
	c.Resilience = c.Resilience.WithDefaults()
	return c
}

// shardStat is one built shard: the routing geometry, the histogram,
// and the single-bucket uniformity fallback used when a deadline
// expires before the shard's partial count arrives. All fields are
// immutable after construction.
type shardStat struct {
	// region is the partition cell the shard was assigned (tiles the
	// input MBR); it is retained for inspection and visualization.
	region geom.Rect
	// mbr bounds the shard's member rectangles themselves.
	mbr geom.Rect
	// routeBox is mbr padded by half the largest average rectangle
	// extent of any bucket, so that MBR pruning is exact: a query whose
	// extension cannot reach routeBox contributes zero in every bucket
	// of this shard (Bucket.Estimate extends the query by AvgW/2 and
	// AvgH/2 before clipping).
	routeBox geom.Rect
	n        int
	hist     *core.BucketEstimator
	// ladder holds the progressively coarser Min-Skew summaries of the
	// same subdistribution, finest first (β/4 buckets, then β/16, ...).
	// Degradation steps down the ladder before ever reaching the
	// uniformity fallback. Empty when Config.LadderRungs is negative or
	// the shard's budget is too small for a strictly coarser rung.
	ladder []*core.BucketEstimator
	// fallback is the shard summarized as one bucket under the
	// uniformity assumption of Section 3.1 — the last rung of the
	// degradation ladder.
	fallback core.Bucket
}

// degraded answers q from rung r of the degradation ladder, falling
// through to the uniformity fallback when the ladder has no rung r.
// The returned Quality tells which it was.
func (s *shardStat) degraded(q geom.Rect, rung int) (float64, Quality) {
	if rung >= 0 && rung < len(s.ladder) {
		return s.ladder[rung].Estimate(q), QualityCoarse
	}
	return s.fallback.Estimate(q), QualityUniform
}

// coarsestRung is the cheapest still-skew-aware rung index (the last
// ladder entry); shards with no ladder return -1, selecting the
// uniformity fallback in degraded.
func (s *shardStat) coarsestRung() int { return len(s.ladder) - 1 }

// ShardedCatalog is a spatially sharded statistics catalog for one
// distribution. All methods are safe for concurrent use.
type ShardedCatalog struct {
	cfg Config

	mu     sync.RWMutex
	shards []*shardStat
	bounds geom.Rect
	rows   int
	// epoch counts successful shard-set swaps: it starts at 0 (nothing
	// built) and increments under the write lock every time
	// AnalyzeContext installs a new shard slice. Estimates report the
	// epoch of the snapshot they walked, so readers — and the
	// distributed tier's coordinator — can detect stale statistics.
	epoch uint64

	// estimateHook, when non-nil, runs inside every shard-call attempt
	// before the bucket walk; tests and the fault simulation harness
	// install it (SetEstimateHook) to simulate slow or failing shards.
	// attempt is the resilience attempt number (0 = primary; retries
	// and the hedge get successive numbers), and a non-nil error fails
	// the attempt, feeding the retry policy and the breaker.
	estimateHook func(shardIdx, attempt int) error
	// buildHook, when non-nil, runs at the start of each shard build
	// during AnalyzeContext; a non-nil return aborts the rebuild,
	// simulating a shard build failure (SetBuildHook).
	buildHook func(shardIdx int) error

	// breakers holds one circuit breaker per shard index, aligned with
	// shards. Breakers survive rebuilds (a rebuilt shard keeps its
	// failure history); the slice is resized under the write lock when
	// the shard count changes. Nil when breakers are disabled.
	breakers []*resilience.Breaker
	// retrier is the shared retry policy (nil when retries disabled).
	retrier *resilience.Retrier
	// walkLatency is the always-on bucket-walk latency histogram
	// feeding the adaptive hedge delay; independent of EnableTelemetry
	// so hedging adapts even with exposition off.
	walkLatency *telemetry.Histogram

	// Telemetry (nil until EnableTelemetry; all no-ops then).
	reg            *telemetry.Registry
	buildSeconds   *telemetry.Histogram // per-shard build latency
	analyzeSeconds *telemetry.Histogram // whole-rebuild latency
	builds         *telemetry.Counter
	fanout         *telemetry.Histogram
	estimates      *telemetry.Counter
	partials       *telemetry.Counter
	missedShards   *telemetry.Counter
	shardGauge     *telemetry.Gauge
	retries        *telemetry.Counter
	hedges         *telemetry.Counter
	hedgeWins      *telemetry.Counter
	qualityCtr     [qualityLevels]*telemetry.Counter
}

// New creates an empty sharded catalog; call AnalyzeContext to build.
func New(cfg Config) *ShardedCatalog {
	cfg = cfg.withDefaults()
	sc := &ShardedCatalog{cfg: cfg}
	// Bounds are the package defaults, which are valid by construction.
	sc.walkLatency, _ = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets)
	if cfg.Resilience.RetriesEnabled() {
		sc.retrier = resilience.NewRetrier(cfg.Resilience.Retry, cfg.Clock,
			rand.New(rand.NewSource(cfg.Resilience.Seed)))
	}
	return sc
}

// Config returns the effective (defaulted) configuration.
func (sc *ShardedCatalog) Config() Config { return sc.cfg }

// fanoutBuckets are upper bounds for the scatter fan-out histogram:
// how many shards a query touched.
var fanoutBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// EnableTelemetry registers the sharded catalog's metrics in reg:
// per-shard build latency, rebuild latency, scatter fan-out, estimate
// and degradation counters. A nil reg leaves telemetry disabled.
func (sc *ShardedCatalog) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.reg = reg
	sc.buildSeconds = reg.Histogram("shard_build_seconds",
		"Per-shard Min-Skew build latency.", telemetry.DefaultLatencyBuckets)
	sc.analyzeSeconds = reg.Histogram("shard_analyze_seconds",
		"End-to-end sharded ANALYZE latency (all shards).", telemetry.DefaultLatencyBuckets)
	sc.builds = reg.Counter("shard_builds_total",
		"Individual shard histogram builds completed.")
	sc.fanout = reg.Histogram("shard_scatter_fanout",
		"Shards queried per estimate after MBR pruning.", fanoutBuckets)
	sc.estimates = reg.Counter("shard_estimates_total",
		"Scatter-gather estimates served.")
	sc.partials = reg.Counter("shard_partial_results_total",
		"Estimates degraded by a deadline or cancellation mid-scatter.")
	sc.missedShards = reg.Counter("shard_fallback_shards_total",
		"Shards answered by a degradation-ladder rung or the uniformity fallback instead of their full histogram.")
	sc.shardGauge = reg.Gauge("shard_shards",
		"Shards in the live partitioning.")
	sc.retries = reg.Counter("resilience_retries_total",
		"Shard-call attempts relaunched after a failed attempt.")
	sc.hedges = reg.Counter("resilience_hedges_total",
		"Hedged shard-call attempts launched.")
	sc.hedgeWins = reg.Counter("resilience_hedge_wins_total",
		"Hedged attempts that produced the winning result.")
	for lvl := Quality(0); lvl < qualityLevels; lvl++ {
		sc.qualityCtr[lvl] = reg.Counter("shard_quality_total",
			"Scatter-gather estimates served at each quality level.",
			telemetry.Label{Key: "level", Value: lvl.String()})
	}
}

// noteBreakerTransition records one breaker state change in telemetry:
// the per-shard state gauge and the transition counter labeled by the
// destination state. Always called outside the breaker's lock.
func (sc *ShardedCatalog) noteBreakerTransition(shardIdx int, to resilience.State) {
	sc.mu.RLock()
	reg := sc.reg
	sc.mu.RUnlock()
	if reg == nil {
		return
	}
	reg.Gauge("shard_breaker_state",
		"Per-shard circuit breaker state (0 closed, 1 half-open, 2 open).",
		telemetry.Label{Key: "shard", Value: strconv.Itoa(shardIdx)}).Set(float64(to))
	reg.Counter("resilience_breaker_transitions_total",
		"Circuit breaker state transitions by destination state.",
		telemetry.Label{Key: "to", Value: to.String()}).Inc()
}

// BreakerStates returns the current circuit-breaker state per shard
// index, or nil when breakers are disabled (or nothing is built yet).
func (sc *ShardedCatalog) BreakerStates() []string {
	sc.mu.RLock()
	breakers := sc.breakers
	sc.mu.RUnlock()
	if len(breakers) == 0 {
		return nil
	}
	out := make([]string, len(breakers))
	for i, b := range breakers {
		out[i] = b.State().String()
	}
	return out
}

// SetEstimateHook installs (or, with nil, removes) a callback that
// runs inside every shard-call attempt before the bucket walk. It
// exists for tests and the fault-injection harness: a hook that sleeps
// simulates a slow shard, one that blocks until released simulates a
// stuck one, and one that returns an error simulates a failing shard
// (the attempt fails, feeding the retry policy and circuit breaker).
// attempt is the resilience attempt number — 0 for the primary call,
// higher for retries and the hedge — so a hook can model faults that
// clear on re-issue. Installing a hook also forces the scatter path
// for single-shard fan-outs, so degradation stays exercisable. Must
// not be called concurrently with EstimateContext.
func (sc *ShardedCatalog) SetEstimateHook(hook func(shardIdx, attempt int) error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.estimateHook = hook
}

// SetBuildHook installs (or, with nil, removes) a callback that runs
// at the start of each per-shard histogram build during
// AnalyzeContext. A non-nil error aborts the rebuild — the previously
// installed shard set stays live — simulating a partial build failure.
// Must not be called concurrently with AnalyzeContext.
func (sc *ShardedCatalog) SetBuildHook(hook func(shardIdx int) error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.buildHook = hook
}

// Analyzed reports whether the catalog has live statistics.
func (sc *ShardedCatalog) Analyzed() bool {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.shards != nil
}

// Shards returns the number of live shards (0 before AnalyzeContext).
func (sc *ShardedCatalog) Shards() int {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return len(sc.shards)
}

// Rows returns the number of rectangles covered by the live shards.
func (sc *ShardedCatalog) Rows() int {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.rows
}

// Epoch returns the build epoch of the live shard set: 0 before the
// first AnalyzeContext, then +1 per successful swap. Comparing the
// epoch on a Result against the current value detects stale reads
// across a rebuild.
func (sc *ShardedCatalog) Epoch() uint64 {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	return sc.epoch
}

// ShardInfo describes one live shard for inspection.
type ShardInfo struct {
	Region  geom.Rect // partition cell assigned by the partitioner
	MBR     geom.Rect // bounds of the member rectangles
	Rows    int
	Buckets int
	// Ladder lists the bucket counts of the degradation-ladder rungs,
	// finest first (empty when the ladder is disabled or the shard is
	// too small for a coarser rung).
	Ladder []int
}

// Info returns a snapshot describing the live shards, ordered as built.
func (sc *ShardedCatalog) Info() []ShardInfo {
	sc.mu.RLock()
	shards := sc.shards
	sc.mu.RUnlock()
	out := make([]ShardInfo, len(shards))
	for i, s := range shards {
		info := ShardInfo{Region: s.region, MBR: s.mbr, Rows: s.n, Buckets: len(s.hist.Buckets())}
		for _, rung := range s.ladder {
			info.Ladder = append(info.Ladder, len(rung.Buckets()))
		}
		out[i] = info
	}
	return out
}

// Analyze builds the sharded statistics without a deadline. It is a
// convenience wrapper around AnalyzeContext.
func (sc *ShardedCatalog) Analyze(d *dataset.Distribution) error {
	return sc.AnalyzeContext(context.Background(), d)
}

// AnalyzeContext partitions d into K shards and builds each shard's
// Min-Skew histogram on a bounded worker pool. The context cancels the
// build between shards: workers check ctx before starting each shard,
// so cancellation takes effect within one shard-build granule. On
// error or cancellation the previous shard set (if any) stays live.
func (sc *ShardedCatalog) AnalyzeContext(ctx context.Context, d *dataset.Distribution) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("shard: analyze: %w", err)
	}
	bounds, ok := d.MBR()
	if !ok {
		return fmt.Errorf("shard: analyze over empty distribution")
	}
	clk := sc.cfg.Clock
	start := clk.Now()
	// Snapshot the metric pointers and hook: workers must not touch sc
	// fields while EnableTelemetry could be swapping them under the
	// lock.
	sc.mu.RLock()
	buildSeconds, builds := sc.buildSeconds, sc.builds
	buildHook := sc.buildHook
	sc.mu.RUnlock()
	parts, err := partition(d, sc.cfg)
	if err != nil {
		return fmt.Errorf("shard: analyze: %v", err)
	}

	built := make([]*shardStat, len(parts))
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, sc.cfg.Workers)
		errOnce  sync.Once
		firstErr error
	)
	for i := range parts {
		if err := ctx.Err(); err != nil {
			errOnce.Do(func() { firstErr = err })
			break
		}
		sem <- struct{}{} // bounded pool: blocks until a worker slot frees
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			if buildHook != nil {
				if err := buildHook(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
			t0 := clk.Now()
			s, err := buildShard(parts[i], sc.cfg, len(parts), d.N())
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			buildSeconds.Observe(clk.Since(t0).Seconds())
			builds.Inc()
			built[i] = s
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("shard: analyze: %w", firstErr)
	}

	sc.mu.Lock()
	sc.shards = built
	sc.bounds = bounds
	sc.rows = d.N()
	sc.epoch++
	if sc.cfg.Resilience.BreakersEnabled() {
		// Size the breaker slice to the new shard count, preserving the
		// failure history of surviving indices: a rebuilt shard is the
		// same replica, so its breaker state carries over.
		for len(sc.breakers) < len(built) {
			idx := len(sc.breakers)
			sc.breakers = append(sc.breakers, resilience.NewBreaker(
				sc.cfg.Resilience.Breaker, clk,
				func(_, to resilience.State) { sc.noteBreakerTransition(idx, to) }))
		}
		sc.breakers = sc.breakers[:len(built)]
	}
	sc.analyzeSeconds.Observe(clk.Since(start).Seconds())
	sc.shardGauge.Set(float64(len(built)))
	sc.mu.Unlock()
	return nil
}

// buildShard constructs one shard's histogram, degradation ladder and
// fallback from its partition piece. totalShards and totalRows size
// the shard's slice of the global bucket and grid budgets.
func buildShard(p piece, cfg Config, totalShards, totalRows int) (*shardStat, error) {
	sd := dataset.FromRects(p.rects)
	buckets := proportional(cfg.Buckets, p.n(), totalRows, 1)
	regions := proportional(cfg.Regions, p.n(), totalRows, 64)
	hist, err := core.NewMinSkew(sd, core.MinSkewConfig{
		Buckets:     buckets,
		Regions:     regions,
		Refinements: cfg.Refinements,
	})
	if err != nil {
		return nil, err
	}
	mbr, _ := sd.MBR()
	s := &shardStat{
		region: p.region,
		mbr:    mbr,
		n:      sd.N(),
		hist:   hist,
	}
	// Degradation ladder: the same subdistribution summarized at β/4,
	// β/16, ... buckets (grid budget shrinking alongside). Rungs that
	// cannot be strictly coarser than the one above are skipped — a
	// one-bucket shard gets no ladder and degrades straight to the
	// uniformity fallback.
	prev := buckets
	for r := 0; r < cfg.LadderRungs; r++ {
		div := 1 << (2 * uint(r+1)) // 4, 16, 64, ...
		rb := buckets / div
		if rb < 1 {
			rb = 1
		}
		if rb >= prev {
			break
		}
		rg := regions / div
		if rg < 64 {
			rg = 64
		}
		rung, err := core.NewMinSkew(sd, core.MinSkewConfig{Buckets: rb, Regions: rg})
		if err != nil {
			return nil, err
		}
		s.ladder = append(s.ladder, rung)
		prev = rb
	}
	s.fallback = uniformBucket(sd, mbr)
	// Route with the MBR padded by half the largest per-bucket average
	// extent: beyond that reach, every bucket's extended-query clip is
	// empty, so pruning the shard cannot change the estimate.
	var maxW, maxH float64
	for _, b := range hist.Buckets() {
		if b.AvgW > maxW {
			maxW = b.AvgW
		}
		if b.AvgH > maxH {
			maxH = b.AvgH
		}
	}
	// Ladder rungs group rects differently, so their per-bucket average
	// extents can exceed the full histogram's; include them so pruning
	// stays conservative for degraded answers too.
	for _, rung := range s.ladder {
		for _, b := range rung.Buckets() {
			if b.AvgW > maxW {
				maxW = b.AvgW
			}
			if b.AvgH > maxH {
				maxH = b.AvgH
			}
		}
	}
	if s.fallback.AvgW > maxW {
		maxW = s.fallback.AvgW
	}
	if s.fallback.AvgH > maxH {
		maxH = s.fallback.AvgH
	}
	s.routeBox = s.mbr.Expand(maxW/2, maxH/2)
	return s, nil
}

// uniformBucket summarizes the shard as one bucket under the
// uniformity assumption (the Uniform technique of Section 3.1).
func uniformBucket(d *dataset.Distribution, box geom.Rect) core.Bucket {
	b := core.Bucket{Box: box, Count: d.N()}
	if d.N() == 0 {
		return b
	}
	b.AvgW = d.AvgWidth()
	b.AvgH = d.AvgHeight()
	if area := box.Area(); area > 0 {
		b.AvgDensity = d.TotalArea() / area
	} else {
		b.AvgDensity = float64(d.N())
	}
	return b
}

// proportional divides a total budget in proportion to rows/totalRows,
// never below min.
func proportional(total, rows, totalRows, min int) int {
	v := min
	if totalRows > 0 {
		if p := total * rows / totalRows; p > v {
			v = p
		}
	}
	return v
}

// sortInfoByRegion is a test helper ordering: shards sorted by region
// MinX then MinY, so assertions are stable across build scheduling.
func sortInfoByRegion(info []ShardInfo) {
	sort.Slice(info, func(i, j int) bool {
		if info[i].Region.MinX != info[j].Region.MinX { //spatialvet:ignore floatcmp exact sort tiebreak on partition boundaries
			return info[i].Region.MinX < info[j].Region.MinX
		}
		return info[i].Region.MinY < info[j].Region.MinY
	})
}
