package shard

// Sharded-vs-monolithic equivalence properties. Three statements, in
// decreasing strength:
//
//  P1 (scatter-gather losslessness, exact): for any K and any query, a
//     complete (non-partial) EstimateContext equals a single-threaded
//     walk over the union of all shard buckets within geom.FloatEq.
//     Routing, concurrency and merging add zero estimation error; only
//     float summation order differs.
//
//  P2 (K=1 degeneracy, exact): with one shard the sharded catalog IS
//     the monolithic catalog — same Min-Skew build over the same data
//     and budgets — so estimates match within geom.FloatEq everywhere.
//
//  P3 (cross-partitioning consistency, bounded): for K>1 the per-shard
//     histograms partition the budget differently than one global
//     build, so estimates differ — but both approximate the same
//     ground truth under the same uniformity assumption. On queries
//     fully inside a single shard region the deviation is bounded by
//     the per-bucket approximation error of the coarser build; on the
//     deterministic workloads here the observed worst case is under
//     0.10·N_exact + 10, and the test enforces the documented bound of
//     0.25·N_exact + 15 (comfortable headroom, deterministic seeds).

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

// flatten builds a single monolithic BucketEstimator over the union of
// every live shard's buckets.
func flatten(sc *ShardedCatalog) *core.BucketEstimator {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	var all []core.Bucket
	for _, s := range sc.shards {
		all = append(all, s.hist.Buckets()...)
	}
	return core.NewBucketEstimator("flat", all)
}

// randQueries returns count random valid query rectangles across the
// distribution's MBR, a mix of small, large and degenerate (point)
// queries.
func randQueries(rng *rand.Rand, d *dataset.Distribution, count int) []geom.Rect {
	mbr, _ := d.MBR()
	w, h := mbr.Width(), mbr.Height()
	out := make([]geom.Rect, 0, count)
	for i := 0; i < count; i++ {
		cx := mbr.MinX + rng.Float64()*w
		cy := mbr.MinY + rng.Float64()*h
		var qw, qh float64
		switch i % 3 {
		case 0: // small range query
			qw, qh = w*0.02*rng.Float64(), h*0.02*rng.Float64()
		case 1: // large range query
			qw, qh = w*0.5*rng.Float64(), h*0.5*rng.Float64()
		default: // point query
		}
		out = append(out, geom.RectAround(geom.Point{X: cx, Y: cy}, qw, qh))
	}
	return out
}

func TestPropertyScatterGatherLossless(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		d := synthetic.Charminar(2500, 1000, 10, seed)
		for _, k := range []int{1, 2, 4, 8} {
			for _, strategy := range []Strategy{StrategyMinSkew, StrategySTR} {
				sc := buildSharded(t, d, Config{
					Shards: k, Buckets: 64, Regions: 2048, Strategy: strategy,
				})
				flat := flatten(sc)
				rng := rand.New(rand.NewSource(seed * 100))
				for _, q := range randQueries(rng, d, 60) {
					res, err := sc.Estimate(q)
					if err != nil {
						t.Fatalf("seed=%d K=%d %v: %v", seed, k, strategy, err)
					}
					if res.Partial {
						t.Fatalf("seed=%d K=%d %v: unexpected partial", seed, k, strategy)
					}
					want := flat.Estimate(q)
					if !geom.FloatEq(res.Estimate, want) {
						t.Errorf("seed=%d K=%d %v q=%v: scatter %.10g != flat %.10g",
							seed, k, strategy, q, res.Estimate, want)
					}
				}
			}
		}
	}
}

func TestPropertyK1EqualsMonolithicCatalog(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		d := synthetic.Charminar(2500, 1000, 10, seed)
		sc := buildSharded(t, d, Config{Shards: 1, Buckets: 64, Regions: 2048})
		cat := catalog.New(catalog.Config{Buckets: 64, Regions: 2048})
		if err := cat.Analyze("t", d); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 100))
		for _, q := range randQueries(rng, d, 80) {
			res, err := sc.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cat.Estimate("t", q)
			if err != nil {
				t.Fatal(err)
			}
			if !geom.FloatEq(res.Estimate, want) {
				t.Errorf("seed=%d q=%v: sharded(K=1) %.10g != monolithic %.10g",
					seed, q, res.Estimate, want)
			}
		}
	}
}

// exactCount is the ground truth: input rectangles intersecting q.
func exactCount(d *dataset.Distribution, q geom.Rect) int {
	n := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			n++
		}
	}
	return n
}

// insideOneShard reports whether q lies inside exactly one live shard
// region.
func insideOneShard(sc *ShardedCatalog, q geom.Rect) bool {
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	n := 0
	for _, s := range sc.shards {
		if s.region.Contains(q) {
			n++
		}
	}
	return n == 1
}

func TestPropertyStraddleFreeQueriesNearMonolithic(t *testing.T) {
	// The documented cross-partitioning bound (see the package comment
	// at the top of this file): on queries fully inside one shard,
	// |sharded - monolithic| <= 0.25*exact + 15.
	const relBound, absBound = 0.25, 15.0
	seeds := []int64{6, 7, 8}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		d := synthetic.Charminar(2500, 1000, 10, seed)
		cat := catalog.New(catalog.Config{Buckets: 64, Regions: 2048})
		if err := cat.Analyze("t", d); err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4, 8} {
			sc := buildSharded(t, d, Config{Shards: k, Buckets: 64, Regions: 2048})
			rng := rand.New(rand.NewSource(seed * 1000))
			checked := 0
			for _, q := range randQueries(rng, d, 200) {
				if !insideOneShard(sc, q) {
					continue
				}
				checked++
				res, err := sc.Estimate(q)
				if err != nil {
					t.Fatal(err)
				}
				mono, err := cat.Estimate("t", q)
				if err != nil {
					t.Fatal(err)
				}
				exact := float64(exactCount(d, q))
				diff := res.Estimate - mono
				if diff < 0 {
					diff = -diff
				}
				if diff > relBound*exact+absBound {
					t.Errorf("seed=%d K=%d q=%v: |sharded %.2f - mono %.2f| = %.2f exceeds %.2f (exact %.0f)",
						seed, k, q, res.Estimate, mono, diff, relBound*exact+absBound, exact)
				}
			}
			if checked == 0 {
				t.Fatalf("seed=%d K=%d: no straddle-free queries generated", seed, k)
			}
		}
	}
}
