package workload

import (
	"math/rand"
	"testing"

	"repro/internal/synthetic"
)

// GenerateRand with a generator seeded like cfg.Seed must reproduce
// Generate exactly, and identically seeded runs must agree.
func TestGenerateRandMatchesSeeded(t *testing.T) {
	d := synthetic.Uniform(500, 1000, 1, 20, 7)
	cfg := Config{Count: 200, QSize: 0.1, Seed: 99, Clamp: true}

	seeded, err := Generate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected, err := GenerateRand(d, cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeded) != len(injected) {
		t.Fatalf("got %d vs %d queries", len(seeded), len(injected))
	}
	for i := range seeded {
		if seeded[i] != injected[i] {
			t.Fatalf("query %d: %v != %v", i, seeded[i], injected[i])
		}
	}
}
