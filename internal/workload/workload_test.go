package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func testDist(n int) *dataset.Distribution {
	rng := rand.New(rand.NewSource(99))
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		rects[i] = geom.NewRect(x, y, x+100, y+100)
	}
	return dataset.New(rects)
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(dataset.New(nil), Config{Count: 10}); err == nil {
		t.Fatal("empty distribution should fail")
	}
	d := testDist(10)
	if _, err := Generate(d, Config{Count: -1}); err == nil {
		t.Fatal("negative count should fail")
	}
	if _, err := Generate(d, Config{Count: 1, QSize: 1.5}); err == nil {
		t.Fatal("QSize > 1 should fail")
	}
	if _, err := Generate(d, Config{Count: 1, QSize: -0.1}); err == nil {
		t.Fatal("negative QSize should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := testDist(100)
	cfg := Config{Count: 50, QSize: 0.1, Seed: 7, Clamp: true}
	a, err := Generate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
	c, err := Generate(d, Config{Count: 50, QSize: 0.1, Seed: 8, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateClampAndBounds(t *testing.T) {
	d := testDist(500)
	mbr, _ := d.MBR()
	qs, err := Generate(d, Config{Count: 2000, QSize: 0.25, Seed: 3, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2000 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if !q.Valid() {
			t.Fatalf("invalid query %v", q)
		}
		if !mbr.Contains(q) {
			t.Fatalf("clamped query %v escapes MBR %v", q, mbr)
		}
	}
}

func TestGenerateSizeDistribution(t *testing.T) {
	d := testDist(500)
	mbr, _ := d.MBR()
	qsize := 0.10
	qs, err := Generate(d, Config{Count: 5000, QSize: qsize, Seed: 5, Clamp: false})
	if err != nil {
		t.Fatal(err)
	}
	side := math.Sqrt(qsize * mbr.Width() * qsize * mbr.Height())
	var sumW float64
	for _, q := range qs {
		w := q.Width()
		// Every side must lie in [0.5*side, 1.5*side].
		if w < 0.5*side-1e-9 || w > 1.5*side+1e-9 {
			t.Fatalf("query width %g outside [%g, %g]", w, 0.5*side, 1.5*side)
		}
		sumW += w
	}
	avg := sumW / float64(len(qs))
	// Mean of U[0.5s, 1.5s] is s; allow 3% sampling slack.
	if math.Abs(avg-side)/side > 0.03 {
		t.Fatalf("average query width %g too far from target %g", avg, side)
	}
}

func TestQueryCentersComeFromInput(t *testing.T) {
	d := testDist(50)
	qs, err := Generate(d, Config{Count: 500, QSize: 0.05, Seed: 1, Clamp: false})
	if err != nil {
		t.Fatal(err)
	}
	// Centers must coincide with input rectangle centers up to floating
	// point round-trip error.
	for _, q := range qs {
		c := q.Center()
		best := math.Inf(1)
		for _, r := range d.Rects() {
			rc := r.Center()
			dx, dy := c.X-rc.X, c.Y-rc.Y
			if d2 := dx*dx + dy*dy; d2 < best {
				best = d2
			}
		}
		if best > 1e-12 {
			t.Fatalf("query center %v is %g away from any input center", c, math.Sqrt(best))
		}
	}
}

func TestUniformCenters(t *testing.T) {
	// Skewed data: all rect centers in one corner. With
	// CentersFromData all queries cluster there; with CentersUniform
	// they spread over the MBR.
	rects := make([]geom.Rect, 200)
	for i := range rects {
		rects[i] = geom.NewRect(float64(i%10), float64(i/10), float64(i%10)+1, float64(i/10)+1)
	}
	// Pin a wide MBR.
	rects = append(rects, geom.NewRect(0, 0, 1000, 1000))
	d := dataset.New(rects)

	uni, err := Generate(d, Config{Count: 2000, QSize: 0.02, Seed: 9, Centers: CentersUniform})
	if err != nil {
		t.Fatal(err)
	}
	farHalf := 0
	for _, q := range uni {
		if q.Center().X > 500 {
			farHalf++
		}
	}
	// Uniform centers put roughly half the queries in the far half.
	if farHalf < 700 || farHalf > 1300 {
		t.Fatalf("uniform centers: %d/2000 in far half, want ~1000", farHalf)
	}
	biased, err := Generate(d, Config{Count: 2000, QSize: 0.02, Seed: 9, Centers: CentersFromData})
	if err != nil {
		t.Fatal(err)
	}
	farBiased := 0
	for _, q := range biased {
		if q.Center().X > 500 {
			farBiased++
		}
	}
	// Data-biased centers almost never land in the far half (only the
	// MBR-pinning rect's center is out there).
	if farBiased > 100 {
		t.Fatalf("biased centers: %d/2000 in far half, want ~0", farBiased)
	}
}

func TestPointQueries(t *testing.T) {
	d := testDist(100)
	qs, err := PointQueries(d, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Area() != 0 || q.Width() != 0 || q.Height() != 0 {
			t.Fatalf("point query %v has extent", q)
		}
	}
}

func TestQSizesSweep(t *testing.T) {
	if len(QSizes) == 0 || QSizes[0] != 0.02 || QSizes[len(QSizes)-1] != 0.25 {
		t.Fatalf("QSizes = %v; paper sweeps 2%% to 25%%", QSizes)
	}
}
