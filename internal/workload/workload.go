// Package workload generates the query sets of Section 5.2 of the
// paper: rectangles lying within the MBR of the input whose centers are
// drawn at random from the centers of the input rectangles, and whose
// average side length is a chosen fraction (QSize) of the corresponding
// side of the input bounding box. A desired average query area a is
// achieved by drawing each side uniformly from [0.5*sqrt(a),
// 1.5*sqrt(a)].
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// CenterMode selects where query centers come from.
type CenterMode int

const (
	// CentersFromData draws query centers from the centers of input
	// rectangles — the paper's "biased" workload (Section 5.2), which
	// guarantees non-empty answers and models queries issued where the
	// data is.
	CentersFromData CenterMode = iota
	// CentersUniform draws query centers uniformly from the input MBR,
	// an unbiased workload that also probes empty regions.
	CentersUniform
)

// Config describes a query workload.
type Config struct {
	// Count is the number of queries to generate (the paper uses 10000).
	Count int
	// QSize is the average query side length as a fraction of the input
	// MBR side (the paper varies it from 0.02 to 0.25). Zero generates
	// point queries.
	QSize float64
	// Seed drives the deterministic pseudo-random generator.
	Seed int64
	// Clamp restricts the generated rectangles to the input MBR, as the
	// paper's queries "lie within the MBR of the input".
	Clamp bool
	// Centers selects the center distribution; the zero value is the
	// paper's data-biased model.
	Centers CenterMode
}

// Generate produces a query set over the distribution per the paper's
// model. It returns an error for an empty distribution or an invalid
// configuration.
func Generate(d *dataset.Distribution, cfg Config) ([]geom.Rect, error) {
	return GenerateRand(d, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// GenerateRand is Generate drawing from an injected generator, so one
// seeded *rand.Rand can drive datasets and workloads reproducibly;
// cfg.Seed is ignored in favor of the generator's state.
func GenerateRand(d *dataset.Distribution, cfg Config, rng *rand.Rand) ([]geom.Rect, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("workload: empty distribution")
	}
	if cfg.Count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", cfg.Count)
	}
	if cfg.QSize < 0 || cfg.QSize > 1 {
		return nil, fmt.Errorf("workload: QSize %g outside [0,1]", cfg.QSize)
	}
	queries := make([]geom.Rect, 0, cfg.Count)

	// Desired average area: (QSize*W) x (QSize*H).
	a := cfg.QSize * mbr.Width() * cfg.QSize * mbr.Height()
	side := math.Sqrt(a)

	for i := 0; i < cfg.Count; i++ {
		var c geom.Point
		switch cfg.Centers {
		case CentersUniform:
			c = geom.Point{
				X: mbr.MinX + rng.Float64()*mbr.Width(),
				Y: mbr.MinY + rng.Float64()*mbr.Height(),
			}
		default:
			c = d.Rect(rng.Intn(d.N())).Center()
		}
		var q geom.Rect
		if cfg.QSize == 0 {
			q = geom.PointRect(c)
		} else {
			w := (0.5 + rng.Float64()) * side
			h := (0.5 + rng.Float64()) * side
			q = geom.RectAround(c, w, h)
		}
		if cfg.Clamp {
			q = q.Clamp(mbr)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// PointQueries produces count point queries at centers of randomly
// chosen input rectangles.
func PointQueries(d *dataset.Distribution, count int, seed int64) ([]geom.Rect, error) {
	return Generate(d, Config{Count: count, QSize: 0, Seed: seed, Clamp: true})
}

// QSizes is the sweep of query sizes used in the paper's experiments
// (2% to 25% of the input bounding box side).
var QSizes = []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25}
