// Package onedim implements classic one-dimensional relational
// histograms — Equi-Width, Equi-Depth [Koo80, PSC84] and V-Optimal
// [PIHS96] — over a numeric attribute. They are the relational
// ancestors the paper's spatial partitionings generalize (Equi-Area
// and Equi-Count are their two-dimensional analogues, Section 3.3),
// and combining two of them under the attribute-value-independence
// assumption yields another baseline spatial estimator: exactly the
// kind of straightforward one-dimensional transplant the paper argues
// is insufficient for spatial data.
package onedim

import (
	"fmt"
	"math"
	"sort"
)

// Bucket is a half-open value range [Lo, Hi) holding Count values; the
// last bucket of a histogram is closed on the right.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Histogram approximates the distribution of a numeric attribute.
type Histogram struct {
	buckets []Bucket
	n       int
}

// Buckets exposes the bucket list (read-only).
func (h *Histogram) Buckets() []Bucket { return h.buckets }

// N returns the number of summarized values.
func (h *Histogram) N() int { return h.n }

// EquiWidth builds k buckets of equal value-range width.
func EquiWidth(vals []float64, k int) (*Histogram, error) {
	if err := checkInput(vals, k); err != nil {
		return nil, err
	}
	lo, hi := minMax(vals)
	if lo == hi {
		return &Histogram{buckets: []Bucket{{Lo: lo, Hi: hi, Count: len(vals)}}, n: len(vals)}, nil
	}
	width := (hi - lo) / float64(k)
	buckets := make([]Bucket, k)
	for i := range buckets {
		buckets[i] = Bucket{Lo: lo + float64(i)*width, Hi: lo + float64(i+1)*width}
	}
	buckets[k-1].Hi = hi
	for _, v := range vals {
		idx := int((v - lo) / width)
		if idx >= k {
			idx = k - 1
		}
		buckets[idx].Count++
	}
	return &Histogram{buckets: buckets, n: len(vals)}, nil
}

// EquiDepth builds k buckets holding (as nearly as possible) equal
// numbers of values.
func EquiDepth(vals []float64, k int) (*Histogram, error) {
	if err := checkInput(vals, k); err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if k > n {
		k = n
	}
	var buckets []Bucket
	start := 0
	for i := 0; i < k && start < n; i++ {
		end := (i + 1) * n / k
		if end <= start {
			end = start + 1
		}
		// Bucket boundaries cannot split equal values; extend to cover
		// the run.
		for end < n && sorted[end] == sorted[end-1] {
			end++
		}
		buckets = append(buckets, Bucket{Lo: sorted[start], Hi: sorted[end-1], Count: end - start})
		start = end
	}
	return &Histogram{buckets: buckets, n: n}, nil
}

// VOptimal builds the k-bucket histogram minimizing the total variance
// of a density vector over a uniform quantization of the value domain,
// by the classic O(m^2 k) dynamic program of [PIHS96] (m is the number
// of quantization cells, capped for tractability).
func VOptimal(vals []float64, k, cells int) (*Histogram, error) {
	if err := checkInput(vals, k); err != nil {
		return nil, err
	}
	const maxCells = 2048
	if cells < 1 {
		cells = 512
	}
	if cells > maxCells {
		return nil, fmt.Errorf("onedim: %d cells exceeds the cap %d", cells, maxCells)
	}
	lo, hi := minMax(vals)
	if lo == hi {
		return &Histogram{buckets: []Bucket{{Lo: lo, Hi: hi, Count: len(vals)}}, n: len(vals)}, nil
	}
	// Quantize to cell frequencies.
	freq := make([]float64, cells)
	width := (hi - lo) / float64(cells)
	for _, v := range vals {
		idx := int((v - lo) / width)
		if idx >= cells {
			idx = cells - 1
		}
		freq[idx]++
	}
	if k > cells {
		k = cells
	}
	// Prefix sums for O(1) segment SSE.
	ps := make([]float64, cells+1)
	ps2 := make([]float64, cells+1)
	for i, f := range freq {
		ps[i+1] = ps[i] + f
		ps2[i+1] = ps2[i] + f*f
	}
	sse := func(a, b int) float64 { // cells [a, b)
		s := ps[b] - ps[a]
		v := ps2[b] - ps2[a] - s*s/float64(b-a)
		if v < 0 {
			return 0
		}
		return v
	}
	// dp[j][i]: min cost of covering cells [0, i) with j buckets.
	// choice[j][i]: start of the last bucket.
	dp := make([][]float64, k+1)
	choice := make([][]int, k+1)
	for j := range dp {
		dp[j] = make([]float64, cells+1)
		choice[j] = make([]int, cells+1)
		for i := range dp[j] {
			dp[j][i] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for j := 1; j <= k; j++ {
		for i := j; i <= cells; i++ {
			for s := j - 1; s < i; s++ {
				if c := dp[j-1][s] + sse(s, i); c < dp[j][i] {
					dp[j][i] = c
					choice[j][i] = s
				}
			}
		}
	}
	// Pick the bucket count with the lowest cost (fewer buckets can
	// tie; prefer k for resolution, walking back from infeasible).
	bestJ := k
	for bestJ > 1 && math.IsInf(dp[bestJ][cells], 1) {
		bestJ--
	}
	// Reconstruct.
	var bounds []int
	i := cells
	for j := bestJ; j > 0; j-- {
		s := choice[j][i]
		bounds = append(bounds, s)
		i = s
	}
	sort.Ints(bounds)
	buckets := make([]Bucket, 0, bestJ)
	for bi := range bounds {
		start := bounds[bi]
		end := cells
		if bi+1 < len(bounds) {
			end = bounds[bi+1]
		}
		buckets = append(buckets, Bucket{
			Lo:    lo + float64(start)*width,
			Hi:    lo + float64(end)*width,
			Count: int(ps[end] - ps[start]),
		})
	}
	return &Histogram{buckets: buckets, n: len(vals)}, nil
}

// EstimateRange returns the estimated number of values in [a, b]
// (inclusive) under per-bucket uniformity.
func (h *Histogram) EstimateRange(a, b float64) float64 {
	if b < a {
		a, b = b, a
	}
	var total float64
	for _, bk := range h.buckets {
		if bk.Count == 0 {
			continue
		}
		width := bk.Hi - bk.Lo
		if width <= 0 {
			// Singleton bucket: all mass at Lo.
			if a <= bk.Lo && bk.Lo <= b {
				total += float64(bk.Count)
			}
			continue
		}
		lo := math.Max(a, bk.Lo)
		hi := math.Min(b, bk.Hi)
		if hi <= lo {
			continue
		}
		total += float64(bk.Count) * (hi - lo) / width
	}
	return total
}

// Fraction returns EstimateRange normalized by N.
func (h *Histogram) Fraction(a, b float64) float64 {
	if h.n == 0 {
		return 0
	}
	return h.EstimateRange(a, b) / float64(h.n)
}

func checkInput(vals []float64, k int) error {
	if len(vals) == 0 {
		return fmt.Errorf("onedim: no values")
	}
	if k < 1 {
		return fmt.Errorf("onedim: bucket count %d < 1", k)
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("onedim: non-finite value %g", v)
		}
	}
	return nil
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
