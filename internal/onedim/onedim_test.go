package onedim

import (
	"math"
	"math/rand"
	"testing"
)

func TestInputValidation(t *testing.T) {
	if _, err := EquiWidth(nil, 4); err == nil {
		t.Fatal("empty values should fail")
	}
	if _, err := EquiDepth([]float64{1}, 0); err == nil {
		t.Fatal("zero buckets should fail")
	}
	if _, err := VOptimal([]float64{math.NaN()}, 2, 16); err == nil {
		t.Fatal("NaN should fail")
	}
	if _, err := VOptimal([]float64{1, 2}, 2, 1<<20); err == nil {
		t.Fatal("excessive cells should fail")
	}
}

func TestEquiWidthBasics(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}
	h, err := EquiWidth(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 10 || len(h.Buckets()) != 5 {
		t.Fatalf("N=%d buckets=%d", h.N(), len(h.Buckets()))
	}
	total := 0
	var prevHi float64
	for i, b := range h.Buckets() {
		total += b.Count
		if i > 0 && b.Lo != prevHi {
			t.Fatalf("bucket %d not contiguous: Lo=%g prev Hi=%g", i, b.Lo, prevHi)
		}
		prevHi = b.Hi
		if got := b.Hi - b.Lo; math.Abs(got-2) > 1e-9 {
			t.Fatalf("bucket %d width = %g, want 2", i, got)
		}
	}
	if total != 10 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestEquiDepthBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	h, err := EquiDepth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range h.Buckets() {
		total += b.Count
		if b.Count < 80 || b.Count > 120 {
			t.Fatalf("bucket count %d far from 100", b.Count)
		}
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestEquiDepthDuplicates(t *testing.T) {
	// Heavy duplicates: boundaries must not split equal values.
	vals := make([]float64, 0, 100)
	for i := 0; i < 90; i++ {
		vals = append(vals, 5)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, float64(i))
	}
	h, err := EquiDepth(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestSingleValueHistograms(t *testing.T) {
	vals := []float64{7, 7, 7, 7}
	for name, build := range map[string]func() (*Histogram, error){
		"equiwidth": func() (*Histogram, error) { return EquiWidth(vals, 3) },
		"voptimal":  func() (*Histogram, error) { return VOptimal(vals, 3, 64) },
	} {
		h, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(h.Buckets()) != 1 || h.Buckets()[0].Count != 4 {
			t.Fatalf("%s: %+v", name, h.Buckets())
		}
		if got := h.EstimateRange(6, 8); got != 4 {
			t.Fatalf("%s: EstimateRange = %g", name, got)
		}
		if got := h.EstimateRange(8, 9); got != 0 {
			t.Fatalf("%s: miss EstimateRange = %g", name, got)
		}
	}
}

func TestVOptimalIsolatesStep(t *testing.T) {
	// A two-level step distribution: V-Optimal with 2 buckets must put
	// the boundary at the step, achieving ~zero SSE.
	var vals []float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 900; i++ {
		vals = append(vals, rng.Float64()*10) // dense [0,10)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, 10+rng.Float64()*10) // sparse [10,20)
	}
	h, err := VOptimal(vals, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets()) != 2 {
		t.Fatalf("buckets = %d", len(h.Buckets()))
	}
	boundary := h.Buckets()[0].Hi
	if math.Abs(boundary-10) > 0.5 {
		t.Fatalf("V-Optimal boundary = %g, want ~10", boundary)
	}
	// The dense bucket holds ~900.
	if c := h.Buckets()[0].Count; c < 850 || c > 950 {
		t.Fatalf("dense bucket count = %d", c)
	}
}

func TestEstimateRangeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	for name, build := range map[string]func() (*Histogram, error){
		"equiwidth": func() (*Histogram, error) { return EquiWidth(vals, 50) },
		"equidepth": func() (*Histogram, error) { return EquiDepth(vals, 50) },
		"voptimal":  func() (*Histogram, error) { return VOptimal(vals, 50, 512) },
	} {
		h, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 50; i++ {
			a := rng.Float64() * 900
			b := a + rng.Float64()*100
			exact := 0
			for _, v := range vals {
				if v >= a && v <= b {
					exact++
				}
			}
			got := h.EstimateRange(a, b)
			if exact > 100 && math.Abs(got-float64(exact))/float64(exact) > 0.25 {
				t.Fatalf("%s: range [%g,%g] estimate %g vs exact %d", name, a, b, got, exact)
			}
		}
		if got := h.Fraction(0, 1000); math.Abs(got-1) > 0.01 {
			t.Fatalf("%s: full-range fraction = %g", name, got)
		}
		// Inverted arguments are normalized.
		if h.EstimateRange(500, 400) != h.EstimateRange(400, 500) {
			t.Fatalf("%s: inverted range differs", name)
		}
	}
}

func TestFractionEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Fraction(0, 1) != 0 {
		t.Fatal("empty histogram fraction should be 0")
	}
}
