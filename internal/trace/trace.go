// Package trace captures and replays evaluation workloads: a set of
// queries together with their exact result sizes. Persisting the
// ground truth makes estimator comparisons reproducible across runs
// and machines without re-running the (expensive) exact oracle, and
// lets real production query logs be replayed against candidate
// statistics configurations.
//
// The format is line-oriented text: "minx miny maxx maxy actual",
// with '#' comments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/metrics"
)

// Trace is a workload with ground truth.
type Trace struct {
	Queries []geom.Rect
	Actual  []int
}

// Capture evaluates the queries against the oracle and records the
// answers.
func Capture(oracle exact.Oracle, queries []geom.Rect) *Trace {
	t := &Trace{
		Queries: append([]geom.Rect(nil), queries...),
		Actual:  make([]int, len(queries)),
	}
	for i, q := range queries {
		t.Actual[i] = oracle.Count(q)
	}
	return t
}

// Len returns the number of recorded queries.
func (t *Trace) Len() int { return len(t.Queries) }

// Evaluate replays the trace against an estimator and summarizes the
// errors.
func (t *Trace) Evaluate(est core.Estimator) (metrics.Summary, error) {
	if len(t.Queries) == 0 {
		return metrics.Summary{}, fmt.Errorf("trace: empty trace")
	}
	ests := make([]float64, len(t.Queries))
	for i, q := range t.Queries {
		ests[i] = est.Estimate(q)
	}
	return metrics.Summarize(t.Actual, ests)
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# spatialest trace n=%d\n", len(t.Queries)); err != nil {
		return err
	}
	for i, q := range t.Queries {
		if _, err := fmt.Fprintf(bw, "%g %g %g %g %d\n", q.MinX, q.MinY, q.MaxX, q.MaxY, t.Actual[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		var coords [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad coordinate %q", lineNo, fields[i])
			}
			coords[i] = v
		}
		actual, err := strconv.Atoi(fields[4])
		if err != nil || actual < 0 {
			return nil, fmt.Errorf("trace: line %d: bad actual %q", lineNo, fields[4])
		}
		q := geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
		if !q.Valid() {
			return nil, fmt.Errorf("trace: line %d: invalid query %v", lineNo, q)
		}
		t.Queries = append(t.Queries, q)
		t.Actual = append(t.Actual, actual)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %v", err)
	}
	return t, nil
}

// Save writes the trace to a file.
func Save(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save %s: %v", path, err)
	}
	if err := t.Write(f); err != nil {
		// The write error is what matters; Close can only add noise.
		_ = f.Close()
		return fmt.Errorf("trace: save %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: save %s: %v", path, err)
	}
	return nil
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %v", path, err)
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %v", path, err)
	}
	return tr, nil
}
