package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

func captureTest(t *testing.T) *Trace {
	t.Helper()
	d := synthetic.Clusters(3000, 3, 1000, 0.05, 2, 12, 1)
	queries, err := workload.Generate(d, workload.Config{Count: 200, QSize: 0.1, Seed: 4, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	return Capture(exact.NewAuto(d), queries)
}

func TestCaptureAndEvaluate(t *testing.T) {
	d := synthetic.Clusters(3000, 3, 1000, 0.05, 2, 12, 1)
	queries, err := workload.Generate(d, workload.Config{Count: 200, QSize: 0.1, Seed: 4, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(exact.NewAuto(d), queries)
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ms, err := core.NewMinSkew(d, core.MinSkewConfig{Buckets: 40, Regions: 900})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := tr.Evaluate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queries != 200 || sum.AvgRelError < 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if _, err := (&Trace{}).Evaluate(ms); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := captureTest(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Queries {
		if back.Queries[i] != tr.Queries[i] || back.Actual[i] != tr.Actual[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"1 2 3 4\n",     // missing actual
		"1 2 3 4 5 6\n", // too many fields
		"a b c d 5\n",   // bad coords
		"1 2 3 4 x\n",   // bad actual
		"1 2 3 4 -5\n",  // negative actual
		"5 5 1 1 3\n",   // inverted rect
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
	// Comments and blanks are fine.
	tr, err := Read(strings.NewReader("# hello\n\n0 0 1 1 7\n"))
	if err != nil || tr.Len() != 1 || tr.Actual[0] != 7 {
		t.Fatalf("comment parse: %v, %+v", err, tr)
	}
}

func TestSaveLoad(t *testing.T) {
	tr := captureTest(t)
	path := filepath.Join(t.TempDir(), "w.trace")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestSaveLoadErrorsCarryPath asserts file-level failures name the
// offending path, so multi-file workflows can tell which file broke.
func TestSaveLoadErrorsCarryPath(t *testing.T) {
	tr := captureTest(t)
	badDir := filepath.Join(t.TempDir(), "missing-dir", "w.trace")
	if err := Save(badDir, tr); err == nil || !strings.Contains(err.Error(), badDir) {
		t.Fatalf("Save error should contain path %q, got: %v", badDir, err)
	}
	missing := filepath.Join(t.TempDir(), "nope.trace")
	if _, err := Load(missing); err == nil || !strings.Contains(err.Error(), missing) {
		t.Fatalf("Load error should contain path %q, got: %v", missing, err)
	}
	// Parse errors surface the path too, not just the line number.
	corrupt := filepath.Join(t.TempDir(), "corrupt.trace")
	if err := os.WriteFile(corrupt, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt); err == nil || !strings.Contains(err.Error(), corrupt) {
		t.Fatalf("Load parse error should contain path %q, got: %v", corrupt, err)
	}
}
