package wkt

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func mustParse(t *testing.T, s string) geom.Rect {
	t.Helper()
	r, ok, err := ParseMBR(s)
	if err != nil {
		t.Fatalf("ParseMBR(%q): %v", s, err)
	}
	if !ok {
		t.Fatalf("ParseMBR(%q): unexpectedly empty", s)
	}
	return r
}

func TestParsePoint(t *testing.T) {
	r := mustParse(t, "POINT (3 4)")
	if r != geom.NewRect(3, 4, 3, 4) {
		t.Fatalf("POINT MBR = %v", r)
	}
	// Case-insensitive, flexible whitespace, scientific notation.
	r = mustParse(t, "  point(1e1   -2.5)")
	if r != geom.NewRect(10, -2.5, 10, -2.5) {
		t.Fatalf("point MBR = %v", r)
	}
}

func TestParseLineString(t *testing.T) {
	r := mustParse(t, "LINESTRING (0 0, 10 5, -2 3)")
	if r != geom.NewRect(-2, 0, 10, 5) {
		t.Fatalf("LINESTRING MBR = %v", r)
	}
}

func TestParsePolygon(t *testing.T) {
	// Outer ring plus a hole; the hole is inside so it doesn't change
	// the MBR.
	r := mustParse(t, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 3 2, 3 3, 2 2))")
	if r != geom.NewRect(0, 0, 10, 10) {
		t.Fatalf("POLYGON MBR = %v", r)
	}
}

func TestParseMulti(t *testing.T) {
	r := mustParse(t, "MULTIPOINT (1 1, 5 5)")
	if r != geom.NewRect(1, 1, 5, 5) {
		t.Fatalf("MULTIPOINT MBR = %v", r)
	}
	r = mustParse(t, "MULTIPOINT ((1 1), (5 5))")
	if r != geom.NewRect(1, 1, 5, 5) {
		t.Fatalf("MULTIPOINT paren MBR = %v", r)
	}
	r = mustParse(t, "MULTILINESTRING ((0 0, 1 1), (5 5, 9 2))")
	if r != geom.NewRect(0, 0, 9, 5) {
		t.Fatalf("MULTILINESTRING MBR = %v", r)
	}
	r = mustParse(t, "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))")
	if r != geom.NewRect(0, 0, 6, 6) {
		t.Fatalf("MULTIPOLYGON MBR = %v", r)
	}
}

func TestParseGeometryCollection(t *testing.T) {
	r := mustParse(t, "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 4 4))")
	if r != geom.NewRect(0, 0, 4, 4) {
		t.Fatalf("GEOMETRYCOLLECTION MBR = %v", r)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"POINT EMPTY", "POLYGON EMPTY", "GEOMETRYCOLLECTION EMPTY"} {
		_, ok, err := ParseMBR(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if ok {
			t.Fatalf("%q should report empty", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (1 2, 3)",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) garbage",
		"POINT Z (1 2 3)",
		"LINESTRING (0 0, )",
		"POLYGON (0 0, 1 1)", // missing ring parens
		"POINT (a b)",
	}
	for _, s := range bad {
		if _, _, err := ParseMBR(s); err == nil {
			t.Errorf("ParseMBR(%q) should fail", s)
		}
	}
}

func TestReadDataset(t *testing.T) {
	in := `# roads
POINT (1 1)

LINESTRING (0 0, 10 10)
POLYGON EMPTY
POLYGON ((2 2, 4 2, 4 4, 2 2))
`
	d, err := ReadDataset(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3 (EMPTY skipped)", d.N())
	}
	mbr, _ := d.MBR()
	if mbr != geom.NewRect(0, 0, 10, 10) {
		t.Fatalf("MBR = %v", mbr)
	}
}

func TestReadDatasetError(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("POINT (1 1)\nBOGUS (2 2)\n")); err == nil {
		t.Fatal("bad line should fail")
	}
	if err := errContains(t, "POINT(1,2)"); err == "" {
		t.Fatal("comma inside point should fail with position info")
	}
}

// errContains parses and returns the error text (empty if none).
func errContains(t *testing.T, s string) string {
	t.Helper()
	_, _, err := ParseMBR(s)
	if err == nil {
		return ""
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %q lacks position info", err)
	}
	return err.Error()
}
