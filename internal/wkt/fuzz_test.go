package wkt

import "testing"

// FuzzParseMBR asserts the parser never panics and that every
// successfully parsed geometry yields a valid rectangle. The seeds run
// in every normal `go test`; `go test -fuzz=FuzzParseMBR ./internal/wkt`
// explores further.
func FuzzParseMBR(f *testing.F) {
	seeds := []string{
		"POINT (1 2)",
		"POINT EMPTY",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 1 0, 1 1, 0 0), (0.2 0.2, 0.4 0.2, 0.4 0.4, 0.2 0.2))",
		"MULTIPOINT ((1 1), (2 2))",
		"MULTIPOINT (1 1, 2 2)",
		"MULTILINESTRING ((0 0, 1 1))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))",
		"GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 2 2))",
		"GEOMETRYCOLLECTION EMPTY",
		"POINT (1e308 -1e308)",
		"point(((((",
		"POLYGON ((,,,))",
		"POINT (1 2) POINT (3 4)",
		"  \t POINT \n ( 1 \t 2 ) ",
		"POINT Z (1 2 3)",
		"",
		"(((((((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return // bound worst-case runtime
		}
		r, ok, err := ParseMBR(s)
		if err != nil {
			return
		}
		if ok && !r.Valid() {
			t.Fatalf("ParseMBR(%q) returned invalid rect %v", s, r)
		}
	})
}
