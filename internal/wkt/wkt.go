// Package wkt parses the Well-Known Text geometry format that GIS
// tools exchange (POINT, LINESTRING, POLYGON and their MULTI
// variants), reducing every geometry to its minimum bounding rectangle
// — the representation the paper's techniques operate on, and the way
// spatial database systems approximate objects for query processing.
//
// The parser is a hand-written recursive descent over a small
// tokenizer; it accepts arbitrary whitespace, EMPTY geometries, and
// nested parentheses, and reports positional errors.
package wkt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// ParseMBR parses one WKT geometry and returns its minimum bounding
// rectangle. EMPTY geometries return ok == false with no error.
func ParseMBR(s string) (r geom.Rect, ok bool, err error) {
	p := &parser{input: s}
	r, ok, err = p.geometry()
	if err != nil {
		return geom.Rect{}, false, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return geom.Rect{}, false, p.errorf("trailing input after geometry")
	}
	return r, ok, nil
}

// ReadDataset parses one WKT geometry per line from r and returns the
// MBRs as a Distribution. Blank lines and lines starting with '#' are
// skipped; EMPTY geometries are ignored.
func ReadDataset(r io.Reader) (*dataset.Distribution, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	d := &dataset.Distribution{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rect, ok, err := ParseMBR(line)
		if err != nil {
			return nil, fmt.Errorf("wkt: line %d: %v", lineNo, err)
		}
		if !ok {
			continue
		}
		if err := d.Add(rect); err != nil {
			return nil, fmt.Errorf("wkt: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wkt: read: %v", err)
	}
	return d, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("wkt: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) {
		switch p.input[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// word consumes an identifier (letters only) and returns it uppercased.
func (p *parser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.input[start:p.pos])
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

// number consumes a float.
func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, p.errorf("expected number")
	}
	v, err := strconv.ParseFloat(p.input[start:p.pos], 64)
	if err != nil {
		return 0, p.errorf("bad number %q", p.input[start:p.pos])
	}
	return v, nil
}

// geometry parses any supported geometry tag.
func (p *parser) geometry() (geom.Rect, bool, error) {
	tag := p.word()
	switch tag {
	case "POINT":
		return p.taggedBody(p.point)
	case "LINESTRING":
		return p.taggedBody(p.pointList)
	case "POLYGON":
		return p.taggedBody(p.ringList)
	case "MULTIPOINT":
		return p.taggedBody(p.multiPointBody)
	case "MULTILINESTRING":
		return p.taggedBody(p.ringList) // same shape: list of point lists
	case "MULTIPOLYGON":
		return p.taggedBody(p.polygonList)
	case "GEOMETRYCOLLECTION":
		return p.taggedBody(p.collectionBody)
	case "":
		return geom.Rect{}, false, p.errorf("expected geometry tag")
	default:
		return geom.Rect{}, false, p.errorf("unsupported geometry %q", tag)
	}
}

// taggedBody handles the optional EMPTY keyword and the parenthesized
// body of a geometry.
func (p *parser) taggedBody(body func() (geom.Rect, bool, error)) (geom.Rect, bool, error) {
	p.skipSpace()
	// Optional Z/M/ZM dimension markers: reject explicitly, since the
	// MBR of higher-dimensional data would silently drop coordinates.
	save := p.pos
	if w := p.word(); w != "" {
		if w == "EMPTY" {
			return geom.Rect{}, false, nil
		}
		if w == "Z" || w == "M" || w == "ZM" {
			return geom.Rect{}, false, p.errorf("dimension marker %s not supported (2-D only)", w)
		}
		p.pos = save
		return geom.Rect{}, false, p.errorf("unexpected token before geometry body")
	}
	if err := p.expect('('); err != nil {
		return geom.Rect{}, false, err
	}
	r, ok, err := body()
	if err != nil {
		return geom.Rect{}, false, err
	}
	if err := p.expect(')'); err != nil {
		return geom.Rect{}, false, err
	}
	return r, ok, nil
}

// point parses "x y" and returns its (degenerate) MBR.
func (p *parser) point() (geom.Rect, bool, error) {
	x, err := p.number()
	if err != nil {
		return geom.Rect{}, false, err
	}
	y, err := p.number()
	if err != nil {
		return geom.Rect{}, false, err
	}
	return geom.PointRect(geom.Point{X: x, Y: y}), true, nil
}

// pointList parses "x y, x y, ..." returning the MBR of the points.
func (p *parser) pointList() (geom.Rect, bool, error) {
	mbr, any, err := p.point()
	if err != nil {
		return geom.Rect{}, false, err
	}
	for p.peek() == ',' {
		p.pos++
		r, _, err := p.point()
		if err != nil {
			return geom.Rect{}, false, err
		}
		mbr = mbr.Union(r)
	}
	return mbr, any, nil
}

// parenList parses "( inner ), ( inner ), ..." unioning the inner MBRs.
func (p *parser) parenList(inner func() (geom.Rect, bool, error)) (geom.Rect, bool, error) {
	var mbr geom.Rect
	any := false
	for {
		if err := p.expect('('); err != nil {
			return geom.Rect{}, false, err
		}
		r, ok, err := inner()
		if err != nil {
			return geom.Rect{}, false, err
		}
		if err := p.expect(')'); err != nil {
			return geom.Rect{}, false, err
		}
		if ok {
			if !any {
				mbr, any = r, true
			} else {
				mbr = mbr.Union(r)
			}
		}
		if p.peek() != ',' {
			return mbr, any, nil
		}
		p.pos++
	}
}

// ringList parses polygon rings (or multilinestring members): a comma
// list of parenthesized point lists.
func (p *parser) ringList() (geom.Rect, bool, error) {
	return p.parenList(p.pointList)
}

// polygonList parses multipolygon members: a comma list of
// parenthesized ring lists.
func (p *parser) polygonList() (geom.Rect, bool, error) {
	return p.parenList(p.ringList)
}

// multiPointBody accepts both MULTIPOINT(1 2, 3 4) and
// MULTIPOINT((1 2), (3 4)).
func (p *parser) multiPointBody() (geom.Rect, bool, error) {
	if p.peek() == '(' {
		return p.parenList(p.point)
	}
	return p.pointList()
}

// collectionBody parses a comma list of full geometries.
func (p *parser) collectionBody() (geom.Rect, bool, error) {
	var mbr geom.Rect
	any := false
	for {
		r, ok, err := p.geometry()
		if err != nil {
			return geom.Rect{}, false, err
		}
		if ok {
			if !any {
				mbr, any = r, true
			} else {
				mbr = mbr.Union(r)
			}
		}
		if p.peek() != ',' {
			return mbr, any, nil
		}
		p.pos++
	}
}
