// Package geojson ingests GeoJSON (RFC 7946) geometries, reducing each
// to its minimum bounding rectangle — the representation the
// estimators and the R-tree consume. FeatureCollections, Features,
// bare geometries and GeometryCollections are supported; coordinates
// beyond the second (elevation) are ignored per the 2-D scope of the
// library.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// object is the superset of the GeoJSON shapes we traverse.
type object struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
	Geometries  []object        `json:"geometries"`
	Geometry    *object         `json:"geometry"`
	Features    []object        `json:"features"`
}

var geometryTypes = map[string]bool{
	"Point": true, "MultiPoint": true,
	"LineString": true, "MultiLineString": true,
	"Polygon": true, "MultiPolygon": true,
	"GeometryCollection": true,
}

// ParseMBR parses one GeoJSON document (a geometry, Feature or
// FeatureCollection) and returns the MBR of everything in it. ok is
// false when the document contains no coordinates (e.g. an empty
// collection or a Feature with null geometry).
func ParseMBR(data []byte) (geom.Rect, bool, error) {
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		return geom.Rect{}, false, fmt.Errorf("geojson: %v", err)
	}
	return objectMBR(&obj)
}

// ReadDataset parses a GeoJSON document from r and returns one MBR per
// geometry: each Feature of a FeatureCollection (and each member of a
// GeometryCollection) becomes one rectangle. A bare geometry yields a
// single-rectangle dataset.
func ReadDataset(r io.Reader) (*dataset.Distribution, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		return nil, fmt.Errorf("geojson: read: %v", err)
	}
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, fmt.Errorf("geojson: %v", err)
	}
	d := &dataset.Distribution{}
	if err := collectRects(&obj, d); err != nil {
		return nil, err
	}
	return d, nil
}

// collectRects appends one MBR per leaf geometry group.
func collectRects(obj *object, d *dataset.Distribution) error {
	switch obj.Type {
	case "FeatureCollection":
		for i := range obj.Features {
			if err := collectRects(&obj.Features[i], d); err != nil {
				return err
			}
		}
		return nil
	case "Feature":
		if obj.Geometry == nil {
			return nil // null geometry is legal
		}
		return collectRects(obj.Geometry, d)
	case "GeometryCollection":
		for i := range obj.Geometries {
			if err := collectRects(&obj.Geometries[i], d); err != nil {
				return err
			}
		}
		return nil
	default:
		r, ok, err := objectMBR(obj)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return d.Add(r)
	}
}

// objectMBR computes the MBR of one object, recursing through
// containers.
func objectMBR(obj *object) (geom.Rect, bool, error) {
	switch obj.Type {
	case "":
		return geom.Rect{}, false, fmt.Errorf("geojson: missing \"type\"")
	case "FeatureCollection":
		return unionChildren(obj.Features)
	case "Feature":
		if obj.Geometry == nil {
			return geom.Rect{}, false, nil
		}
		return objectMBR(obj.Geometry)
	case "GeometryCollection":
		return unionChildren(obj.Geometries)
	default:
		if !geometryTypes[obj.Type] {
			return geom.Rect{}, false, fmt.Errorf("geojson: unsupported type %q", obj.Type)
		}
		if len(obj.Coordinates) == 0 {
			return geom.Rect{}, false, nil
		}
		var raw interface{}
		if err := json.Unmarshal(obj.Coordinates, &raw); err != nil {
			return geom.Rect{}, false, fmt.Errorf("geojson: coordinates: %v", err)
		}
		acc := &mbrAccum{}
		if err := walkCoordinates(raw, acc); err != nil {
			return geom.Rect{}, false, err
		}
		if !acc.any {
			return geom.Rect{}, false, nil
		}
		return acc.mbr, true, nil
	}
}

func unionChildren(children []object) (geom.Rect, bool, error) {
	var mbr geom.Rect
	any := false
	for i := range children {
		r, ok, err := objectMBR(&children[i])
		if err != nil {
			return geom.Rect{}, false, err
		}
		if !ok {
			continue
		}
		if !any {
			mbr, any = r, true
		} else {
			mbr = mbr.Union(r)
		}
	}
	return mbr, any, nil
}

type mbrAccum struct {
	mbr geom.Rect
	any bool
}

func (a *mbrAccum) add(x, y float64) {
	p := geom.PointRect(geom.Point{X: x, Y: y})
	if !a.any {
		a.mbr, a.any = p, true
	} else {
		a.mbr = a.mbr.Union(p)
	}
}

// walkCoordinates descends arbitrarily nested coordinate arrays. A
// position is an array whose first two elements are numbers.
func walkCoordinates(v interface{}, acc *mbrAccum) error {
	arr, ok := v.([]interface{})
	if !ok {
		return fmt.Errorf("geojson: coordinates must be arrays, got %T", v)
	}
	if len(arr) == 0 {
		return nil
	}
	if x, isNum := arr[0].(float64); isNum {
		// A position: [x, y, (z...)].
		if len(arr) < 2 {
			return fmt.Errorf("geojson: position with %d coordinates", len(arr))
		}
		y, isNum := arr[1].(float64)
		if !isNum {
			return fmt.Errorf("geojson: non-numeric y coordinate %v", arr[1])
		}
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return fmt.Errorf("geojson: non-finite coordinate (%v, %v)", x, y)
		}
		acc.add(x, y)
		return nil
	}
	for _, child := range arr {
		if err := walkCoordinates(child, acc); err != nil {
			return err
		}
	}
	return nil
}
