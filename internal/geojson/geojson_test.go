package geojson

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func mustMBR(t *testing.T, doc string) geom.Rect {
	t.Helper()
	r, ok, err := ParseMBR([]byte(doc))
	if err != nil {
		t.Fatalf("ParseMBR(%s): %v", doc, err)
	}
	if !ok {
		t.Fatalf("ParseMBR(%s): unexpectedly empty", doc)
	}
	return r
}

func TestParsePoint(t *testing.T) {
	r := mustMBR(t, `{"type":"Point","coordinates":[3,4]}`)
	if r != geom.NewRect(3, 4, 3, 4) {
		t.Fatalf("MBR = %v", r)
	}
	// Elevation is ignored.
	r = mustMBR(t, `{"type":"Point","coordinates":[1,2,999]}`)
	if r != geom.NewRect(1, 2, 1, 2) {
		t.Fatalf("3-D point MBR = %v", r)
	}
}

func TestParseLineAndPolygon(t *testing.T) {
	r := mustMBR(t, `{"type":"LineString","coordinates":[[0,0],[10,5],[-2,3]]}`)
	if r != geom.NewRect(-2, 0, 10, 5) {
		t.Fatalf("LineString MBR = %v", r)
	}
	r = mustMBR(t, `{"type":"Polygon","coordinates":[[[0,0],[10,0],[10,10],[0,10],[0,0]],[[2,2],[3,2],[3,3],[2,2]]]}`)
	if r != geom.NewRect(0, 0, 10, 10) {
		t.Fatalf("Polygon MBR = %v", r)
	}
	r = mustMBR(t, `{"type":"MultiPolygon","coordinates":[[[[0,0],[1,0],[1,1],[0,0]]],[[[5,5],[6,5],[6,6],[5,5]]]]}`)
	if r != geom.NewRect(0, 0, 6, 6) {
		t.Fatalf("MultiPolygon MBR = %v", r)
	}
}

func TestParseFeatureAndCollections(t *testing.T) {
	r := mustMBR(t, `{"type":"Feature","properties":{"name":"x"},"geometry":{"type":"Point","coordinates":[7,8]}}`)
	if r != geom.NewRect(7, 8, 7, 8) {
		t.Fatalf("Feature MBR = %v", r)
	}
	fc := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Point","coordinates":[0,0]}},
		{"type":"Feature","geometry":null},
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[5,5],[9,2]]}}
	]}`
	r = mustMBR(t, fc)
	if r != geom.NewRect(0, 0, 9, 5) {
		t.Fatalf("FeatureCollection MBR = %v", r)
	}
	gc := `{"type":"GeometryCollection","geometries":[
		{"type":"Point","coordinates":[1,1]},
		{"type":"Point","coordinates":[4,9]}
	]}`
	r = mustMBR(t, gc)
	if r != geom.NewRect(1, 1, 4, 9) {
		t.Fatalf("GeometryCollection MBR = %v", r)
	}
}

func TestParseEmptyAndNull(t *testing.T) {
	for _, doc := range []string{
		`{"type":"FeatureCollection","features":[]}`,
		`{"type":"Feature","geometry":null}`,
		`{"type":"GeometryCollection","geometries":[]}`,
		`{"type":"MultiPoint","coordinates":[]}`,
	} {
		_, ok, err := ParseMBR([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if ok {
			t.Fatalf("%s: should be empty", doc)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"coordinates":[1,2]}`,
		`{"type":"Circle","coordinates":[1,2]}`,
		`{"type":"Point","coordinates":[1]}`,
		`{"type":"Point","coordinates":[1,"a"]}`,
		`{"type":"Point","coordinates":"x"}`,
		`{"type":"LineString","coordinates":[[0,0],"x"]}`,
	}
	for _, doc := range bad {
		if _, _, err := ParseMBR([]byte(doc)); err == nil {
			t.Errorf("ParseMBR(%s) should fail", doc)
		}
	}
}

func TestReadDataset(t *testing.T) {
	fc := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Point","coordinates":[1,1]}},
		{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,0]]]}},
		{"type":"Feature","geometry":null},
		{"type":"Feature","geometry":{"type":"GeometryCollection","geometries":[
			{"type":"Point","coordinates":[10,10]},
			{"type":"Point","coordinates":[12,12]}
		]}}
	]}`
	d, err := ReadDataset(strings.NewReader(fc))
	if err != nil {
		t.Fatal(err)
	}
	// Point + polygon + two collection members = 4 rectangles.
	if d.N() != 4 {
		t.Fatalf("N = %d, want 4", d.N())
	}
	mbr, _ := d.MBR()
	if mbr != geom.NewRect(0, 0, 12, 12) {
		t.Fatalf("MBR = %v", mbr)
	}
	// A bare geometry document.
	d, err = ReadDataset(strings.NewReader(`{"type":"Point","coordinates":[5,5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 1 {
		t.Fatalf("bare geometry N = %d", d.N())
	}
	// Errors propagate.
	if _, err := ReadDataset(strings.NewReader(`{"type":"Bogus"}`)); err == nil {
		t.Fatal("unsupported type should fail")
	}
}

func FuzzParseMBR(f *testing.F) {
	seeds := []string{
		`{"type":"Point","coordinates":[3,4]}`,
		`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[0,0]}}]}`,
		`{"type":"GeometryCollection","geometries":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}`,
		`{"type":"Point","coordinates":[1e308,-1e308]}`,
		`{]`,
		`[]`,
		`123`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		r, ok, err := ParseMBR(data)
		if err != nil {
			return
		}
		if ok && !r.Valid() {
			t.Fatalf("accepted invalid rect %v", r)
		}
	})
}
