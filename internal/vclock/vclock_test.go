package vclock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Unix(0, 0)

func TestSimNowAdvances(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("fresh sim reads %v, want %v", s.Now(), epoch)
	}
	s.Advance(250 * time.Millisecond)
	if got := s.Since(epoch); got != 250*time.Millisecond {
		t.Fatalf("Since = %v, want 250ms", got)
	}
	// AdvanceTo into the past is a no-op.
	s.AdvanceTo(epoch)
	if got := s.Since(epoch); got != 250*time.Millisecond {
		t.Fatalf("AdvanceTo(past) moved the clock to %v", got)
	}
}

func TestSimTimerFiresAtDeadline(t *testing.T) {
	s := NewSim(epoch)
	tm := s.NewTimer(100 * time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("timer fired before any advance")
	default:
	}
	s.Advance(99 * time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("timer fired before its deadline")
	default:
	}
	s.Advance(time.Millisecond)
	got := <-tm.C
	if !got.Equal(epoch.Add(100 * time.Millisecond)) {
		t.Fatalf("timer delivered %v, want deadline time", got)
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(epoch)
	tm := s.NewTimer(50 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("first Stop of a pending timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	s.Advance(time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestSimEventsFireInDeadlineOrder(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	var order []int
	s.AfterFunc(30*time.Millisecond, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
	s.AfterFunc(10*time.Millisecond, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	s.AfterFunc(20*time.Millisecond, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	// Ties at one deadline fire in creation order.
	s.AfterFunc(40*time.Millisecond, func() { mu.Lock(); order = append(order, 4); mu.Unlock() })
	s.AfterFunc(40*time.Millisecond, func() { mu.Lock(); order = append(order, 5); mu.Unlock() })
	s.Advance(time.Second)
	want := []int{1, 2, 3, 4, 5}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestSimAfterFuncSeesDeadlineTime(t *testing.T) {
	s := NewSim(epoch)
	var at atomic.Int64
	s.AfterFunc(70*time.Millisecond, func() { at.Store(s.Now().UnixNano()) })
	s.Advance(time.Second) // one big sweep, not 70 small ones
	if got := time.Unix(0, at.Load()); !got.Equal(epoch.Add(70 * time.Millisecond)) {
		t.Fatalf("callback observed %v, want its own deadline", got)
	}
}

func TestSimSleepBlocksUntilAdvance(t *testing.T) {
	s := NewSim(epoch)
	woke := make(chan time.Duration, 1)
	go func() {
		start := s.Now()
		s.Sleep(40 * time.Millisecond)
		woke <- s.Since(start)
	}()
	s.BlockUntil(1) // sleeper registered
	s.Advance(40 * time.Millisecond)
	if slept := <-woke; slept != 40*time.Millisecond {
		t.Fatalf("slept %v of virtual time, want 40ms", slept)
	}
	// Zero and negative sleeps return immediately with no driver.
	s.Sleep(0)
	s.Sleep(-time.Second)
}

func TestSimAfterZeroDeliversImmediately(t *testing.T) {
	s := NewSim(epoch)
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) must deliver without an Advance")
	}
}

func TestSimPendingAndCompaction(t *testing.T) {
	s := NewSim(epoch)
	s.NewTimer(10 * time.Millisecond)
	tm := s.NewTimer(20 * time.Millisecond)
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	tm.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", got)
	}
	s.Advance(time.Second)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after sweep = %d, want 0", got)
	}
}

func TestWithTimeoutSimDeadline(t *testing.T) {
	s := NewSim(epoch)
	ctx, cancel := WithTimeout(context.Background(), s, 250*time.Millisecond)
	defer cancel()
	if dl, ok := ctx.Deadline(); !ok || !dl.Equal(epoch.Add(250*time.Millisecond)) {
		t.Fatalf("Deadline = %v %v, want virtual deadline", dl, ok)
	}
	select {
	case <-ctx.Done():
		t.Fatal("context done before the deadline")
	default:
	}
	if ctx.Err() != nil {
		t.Fatalf("premature Err %v", ctx.Err())
	}
	s.Advance(250 * time.Millisecond)
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context not done after the deadline passed")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", ctx.Err())
	}
}

func TestWithTimeoutSimCancel(t *testing.T) {
	s := NewSim(epoch)
	ctx, cancel := WithTimeout(context.Background(), s, time.Hour)
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ctx.Err())
	}
	// The timer was released: nothing pending, and a later sweep must
	// not disturb the recorded cause.
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after cancel = %d, want 0", got)
	}
	s.Advance(2 * time.Hour)
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("Err flipped to %v after sweep", ctx.Err())
	}
}

func TestWithTimeoutSimParentCancellation(t *testing.T) {
	s := NewSim(epoch)
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel := WithTimeout(parent, s, time.Hour)
	defer cancel()
	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second): // watchdog only; never sleeps on success
		t.Fatal("parent cancellation did not propagate")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ctx.Err())
	}
}

func TestWithTimeoutRealClockDelegates(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), Real(), time.Hour)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("real-clock context must carry a deadline")
	}
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ctx.Err())
	}
}

func TestBlockUntilManySleepers(t *testing.T) {
	s := NewSim(epoch)
	const n = 8
	var done sync.WaitGroup
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			s.Sleep(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	s.BlockUntil(n)
	s.Advance(n * time.Millisecond)
	done.Wait()
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("real Since went backwards")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("pending real timer Stop must report true")
	}
	af := c.AfterFunc(time.Hour, func() { t.Error("must never run") })
	if !af.Stop() {
		t.Fatal("pending real AfterFunc Stop must report true")
	}
	if (&Timer{}).Stop() {
		t.Fatal("zero Timer Stop must report false")
	}
}
