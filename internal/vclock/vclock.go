// Package vclock abstracts time behind an injectable Clock so that
// every duration-sensitive behavior of the serving stack — scatter
// deadlines, admission-queue timeouts, cache TTLs — can be driven by a
// deterministic simulated clock in tests instead of real sleeps.
//
// Two implementations are provided. Real() is a thin veneer over the
// time package for production. Sim is a virtual clock for the
// fault-injection harness (internal/faultsim): time stands still until
// a driver calls Advance, at which point every timer and sleeper whose
// virtual deadline has been reached fires in deadline order. A test
// that arranges work on a Sim clock and advances it in small quanta
// observes exactly the same timeout orderings as wall-clock execution
// — deadlines shorter than injected delays always expire first —
// without a single real time.Sleep on the assertion path.
//
// WithTimeout is the bridge to the context package: it behaves exactly
// like context.WithTimeout on the real clock and produces a
// virtual-deadline context on a Sim clock.
package vclock

import (
	"sync"
	"time"
)

// Clock is the time source injected through the serving stack. All
// implementations are safe for concurrent use.
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d (virtual d on a Sim).
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires on its channel C after d.
	NewTimer(d time.Duration) *Timer
	// AfterFunc runs f in its own goroutine (real clock) or inside the
	// advancing driver (Sim) once d has elapsed, unless stopped first.
	AfterFunc(d time.Duration, f func()) *Timer
}

// Timer is a stoppable pending event on either clock. C is non-nil
// only for timers created with NewTimer or After.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer, reporting whether it was still pending. A
// stopped timer never fires and never delivers on C.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}

// realClock implements Clock with the time package.
type realClock struct{}

// Real returns the system clock. Callers that receive a nil Clock in a
// config should substitute Real().
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (realClock) AfterFunc(d time.Duration, f func()) *Timer {
	t := time.AfterFunc(d, f)
	return &Timer{stop: t.Stop}
}

// simEvent is one pending virtual-time event: either a channel send
// (NewTimer, After, Sleep) or a callback (AfterFunc).
type simEvent struct {
	when time.Time
	seq  uint64 // creation order; ties on when fire in creation order
	ch   chan time.Time
	fn   func()
	done bool // fired or stopped
}

// Sim is a deterministic virtual clock. It starts at the time given to
// NewSim and moves only when Advance (or AdvanceTo) is called; pending
// events fire in (deadline, creation) order as the clock sweeps past
// them. The zero value is not usable; call NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	events  []*simEvent
	waiters *sync.Cond // broadcast whenever the pending-event set grows
}

// NewSim returns a virtual clock reading start. A common choice is
// time.Unix(0, 0): absolute values never matter, only differences.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	s.waiters = sync.NewCond(&s.mu)
	return s
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// schedule registers an event at now+d and returns it. Events with
// non-positive d fire on the next Advance (or immediately for channel
// events, matching time.After's prompt delivery for d <= 0).
func (s *Sim) schedule(d time.Duration, ch chan time.Time, fn func()) *simEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := &simEvent{when: s.now.Add(d), seq: s.seq, ch: ch, fn: fn}
	s.seq++
	if d <= 0 && ch != nil {
		// Already due: deliver without waiting for a driver tick.
		ev.done = true
		//spatialvet:ignore lockhold send on a fresh 1-buffered channel with no other sender; cannot block
		ch <- s.now // buffered, never blocks
		return ev
	}
	s.events = append(s.events, ev)
	s.waiters.Broadcast()
	return ev
}

// stopEvent cancels ev, reporting whether it was still pending.
func (s *Sim) stopEvent(ev *simEvent) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.done {
		return false
	}
	ev.done = true
	return true
}

// Sleep implements Clock: it blocks until the virtual clock has been
// advanced past now+d. Sleep(0) and negative sleeps return immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan time.Time, 1)
	s.schedule(d, ch, nil)
	<-ch
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.schedule(d, ch, nil)
	return ch
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	ev := s.schedule(d, ch, nil)
	return &Timer{C: ch, stop: func() bool { return s.stopEvent(ev) }}
}

// AfterFunc implements Clock. f runs synchronously inside the Advance
// call that sweeps past its deadline, with the clock unlocked.
func (s *Sim) AfterFunc(d time.Duration, f func()) *Timer {
	ev := s.schedule(d, nil, f)
	return &Timer{stop: func() bool { return s.stopEvent(ev) }}
}

// Pending returns the number of undelivered events (armed timers plus
// blocked sleepers). Drivers use it to decide whether advancing can
// unblock anything.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ev := range s.events {
		if !ev.done {
			n++
		}
	}
	return n
}

// BlockUntil waits until at least n events are pending on the clock —
// the rendezvous a test driver uses to know every worker has reached
// its sleep or timer before advancing.
func (s *Sim) BlockUntil(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		pending := 0
		for _, ev := range s.events {
			if !ev.done {
				pending++
			}
		}
		if pending >= n {
			return
		}
		s.waiters.Wait()
	}
}

// Advance moves the clock forward by d, firing every pending event
// whose deadline is reached, in (deadline, creation) order. Callbacks
// run with the clock unlocked and observe Now at their own deadline,
// exactly as a real timer would.
func (s *Sim) Advance(d time.Duration) { s.AdvanceTo(s.Now().Add(d)) }

// AdvanceTo moves the clock forward to t (no-op if t is not after the
// current virtual time), firing due events as Advance does.
func (s *Sim) AdvanceTo(t time.Time) {
	for {
		s.mu.Lock()
		if !t.After(s.now) {
			s.compactLocked()
			s.mu.Unlock()
			return
		}
		// Find the earliest (when, seq) pending event at or before t.
		var next *simEvent
		for _, ev := range s.events {
			if ev.done || ev.when.After(t) {
				continue
			}
			if next == nil || ev.when.Before(next.when) ||
				(ev.when.Equal(next.when) && ev.seq < next.seq) {
				next = ev
			}
		}
		if next == nil {
			s.now = t
			s.compactLocked()
			s.mu.Unlock()
			return
		}
		if next.when.After(s.now) {
			s.now = next.when
		}
		next.done = true
		fireAt, ch, fn := s.now, next.ch, next.fn
		s.mu.Unlock()
		if ch != nil {
			ch <- fireAt // buffered, never blocks
		}
		if fn != nil {
			fn()
		}
	}
}

// compactLocked drops delivered/stopped events so long simulations do
// not accumulate garbage. Callers hold s.mu.
func (s *Sim) compactLocked() {
	live := s.events[:0]
	for _, ev := range s.events {
		if !ev.done {
			live = append(live, ev)
		}
	}
	s.events = live
}
