package vclock

import (
	"context"
	"sync"
	"time"
)

// WithTimeout derives a context that is cancelled when d elapses on c.
// On the real clock it is exactly context.WithTimeout. On a Sim clock
// the deadline is virtual: the context's Done channel closes when a
// driver advances the clock past the deadline, and Err reports
// context.DeadlineExceeded just as a real deadline would. The returned
// CancelFunc must be called to release the timer, as with the context
// package.
func WithTimeout(parent context.Context, c Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if _, ok := c.(realClock); ok || c == nil {
		return context.WithTimeout(parent, d)
	}
	dc := &deadlineCtx{
		parent:   parent,
		deadline: c.Now().Add(d),
		done:     make(chan struct{}),
	}
	dc.timer = c.AfterFunc(d, func() { dc.cancel(context.DeadlineExceeded) })
	// Propagate parent cancellation. Background/TODO have a nil Done
	// channel and need no watcher.
	if pdone := parent.Done(); pdone != nil {
		go func() {
			select {
			case <-pdone:
				dc.cancel(parent.Err())
			case <-dc.done:
			}
		}()
	}
	return dc, func() { dc.cancel(context.Canceled) }
}

// deadlineCtx is a context whose deadline lives on a virtual clock.
type deadlineCtx struct {
	parent   context.Context
	deadline time.Time
	timer    *Timer

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// cancel finalizes the context with err; only the first cause wins.
func (dc *deadlineCtx) cancel(err error) {
	dc.mu.Lock()
	if dc.err != nil {
		dc.mu.Unlock()
		return
	}
	dc.err = err
	close(dc.done)
	dc.mu.Unlock()
	dc.timer.Stop()
}

// Deadline implements context.Context with the virtual deadline.
func (dc *deadlineCtx) Deadline() (time.Time, bool) { return dc.deadline, true }

// Done implements context.Context.
func (dc *deadlineCtx) Done() <-chan struct{} { return dc.done }

// Err implements context.Context.
func (dc *deadlineCtx) Err() error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.err
}

// Value implements context.Context by delegating to the parent.
func (dc *deadlineCtx) Value(key any) any { return dc.parent.Value(key) }
