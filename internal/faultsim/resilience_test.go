package faultsim

import (
	"fmt"
	"testing"

	"repro/internal/resilience"
	"repro/internal/shard"
)

// mustScenario pulls a named scenario out of the suite.
func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q missing from suite", name)
	}
	return sc
}

// TestHedgingCapsTailLatency runs the hedged-slow-shard scenario twice
// per seed — hedging on, hedging off — and asserts on virtual time that
// the hedge caps the tail: the slow shard sleeps 120ms only on first
// attempts, so a hedged request finishes at roughly the hedge delay
// while an unhedged one eats the full sleep. No real sleeps anywhere.
func TestHedgingCapsTailLatency(t *testing.T) {
	base := mustScenario(t, "hedged-slow-shard")
	for _, seed := range suiteSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			hedged, err := Run(base, seed)
			if err != nil {
				t.Fatalf("hedged run: %v", err)
			}
			unhedgedScenario := base
			unhedgedScenario.Resilience.Hedge.Disable = true
			unhedged, err := Run(unhedgedScenario, seed)
			if err != nil {
				t.Fatalf("unhedged run: %v", err)
			}
			if !hedged.Passed || !unhedged.Passed {
				t.Fatalf("runs must pass invariants: hedged=%v unhedged=%v",
					hedged.Violations, unhedged.Violations)
			}
			if hedged.Hedges == 0 || hedged.HedgeWins == 0 {
				t.Fatalf("hedging never engaged: launched %d, won %d", hedged.Hedges, hedged.HedgeWins)
			}
			if unhedged.Hedges != 0 {
				t.Fatalf("disabled hedging still launched %d hedges", unhedged.Hedges)
			}
			// The slow shard sleeps 120ms (virtual) on unhedged requests;
			// the hedge dodges it after at most Hedge.Max (50ms in the
			// scenario) plus scheduling quanta.
			if unhedged.P99Millis < 100 {
				t.Errorf("unhedged p99 = %.1fms, expected the 120ms slow shard to dominate", unhedged.P99Millis)
			}
			if hedged.P99Millis >= unhedged.P99Millis {
				t.Errorf("hedging did not cap the tail: hedged p99 %.1fms >= unhedged p99 %.1fms",
					hedged.P99Millis, unhedged.P99Millis)
			}
			if hedged.P99Millis > 60 {
				t.Errorf("hedged p99 = %.1fms, want <= 60ms (hedge delay cap 50ms plus slack)",
					hedged.P99Millis)
			}
		})
	}
}

// perRoundQuality tallies completed responses by quality per round.
func perRoundQuality(st *runState, rounds int) (full, coarse, uniform []int) {
	full = make([]int, rounds)
	coarse = make([]int, rounds)
	uniform = make([]int, rounds)
	for _, o := range st.outcomes {
		if o.err != nil {
			continue
		}
		switch o.resp.Quality {
		case shard.QualityFull.String():
			full[o.round]++
		case shard.QualityCoarse.String():
			coarse[o.round]++
		case shard.QualityUniform.String():
			uniform[o.round]++
		}
	}
	return full, coarse, uniform
}

// TestResilienceUnderConcurrentChaos re-runs the chaos scenario with
// the full resilience layer enabled. The suite keeps resilience off in
// multi-worker scenarios so the JSON report stays byte-identical run
// to run — breaker and adaptive-hedge decisions depend on the order
// concurrent workers record outcomes. This test supplies the coverage
// that trade-off gives up: twelve workers hammering shared breaker
// windows and latency histograms under -race, asserted against the
// serving invariants alone (never against schedule-dependent
// counters).
func TestResilienceUnderConcurrentChaos(t *testing.T) {
	sc := mustScenario(t, "chaos")
	sc.Name = "chaos-resilient"
	sc.Resilience = resilience.Config{}
	for _, seed := range suiteSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(sc, seed)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Passed {
				t.Fatalf("invariants violated: %v", rep.Violations)
			}
		})
	}
}

// TestBreakerTripAndRecovery white-boxes the breaker-trip scenario:
// during the fault rounds the failing shard's breaker opens and its
// requests degrade to coarse ladder answers (never uniform); once the
// faults stop and the cooldown elapses, half-open probes succeed, the
// breaker closes, and the final round serves nothing below full
// quality.
func TestBreakerTripAndRecovery(t *testing.T) {
	sc := mustScenario(t, "breaker-trip")
	for _, seed := range suiteSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			st, err := run(sc, seed)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rep := st.report
			if !rep.Passed {
				t.Fatalf("invariants violated: %v", rep.Violations)
			}
			if rep.BreakerOpens == 0 {
				t.Fatal("breaker never opened under sustained shard errors")
			}
			rounds := st.sc.Rounds
			full, coarse, uniform := perRoundQuality(st, rounds)
			for r := 0; r < rounds; r++ {
				if uniform[r] != 0 {
					t.Errorf("round %d: %d uniform responses; the ladder must absorb breaker degradation",
						r, uniform[r])
				}
			}
			faultCoarse := 0
			for r := 0; r < st.sc.FaultRounds; r++ {
				faultCoarse += coarse[r]
			}
			if faultCoarse == 0 {
				t.Error("fault rounds produced no coarse responses: the failing shard never degraded")
			}
			last := rounds - 1
			if coarse[last] != 0 || full[last] == 0 {
				t.Errorf("final round must be fully recovered: %d full, %d coarse", full[last], coarse[last])
			}
			// Some fault-round response must have observed the open breaker.
			sawOpen := false
			for _, o := range st.outcomes {
				if o.err != nil || o.round >= st.sc.FaultRounds {
					continue
				}
				for _, b := range o.resp.Breakers {
					if b == "open" {
						sawOpen = true
					}
				}
			}
			if !sawOpen {
				t.Error("no fault-round response reported an open breaker state")
			}
		})
	}
}

// TestLadderRecoveryMonotonic white-boxes the ladder-recovery scenario:
// a shard slower than the scatter deadline degrades its requests to
// coarse ladder answers during the fault rounds, never to uniform, and
// quality climbs monotonically back — the final round is entirely full
// quality.
func TestLadderRecoveryMonotonic(t *testing.T) {
	sc := mustScenario(t, "ladder-recovery")
	for _, seed := range suiteSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			st, err := run(sc, seed)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rep := st.report
			if !rep.Passed {
				t.Fatalf("invariants violated: %v", rep.Violations)
			}
			rounds := st.sc.Rounds
			full, coarse, uniform := perRoundQuality(st, rounds)
			for r := 0; r < rounds; r++ {
				if uniform[r] != 0 {
					t.Errorf("round %d: %d uniform responses; the ladder must absorb deadline degradation",
						r, uniform[r])
				}
			}
			if coarse[0] == 0 {
				t.Error("round 0 produced no coarse responses: the slow shard never degraded")
			}
			// Quality recovers monotonically once the faults stop: the
			// coarse share never grows from one post-fault round to the
			// next, and the final round is all full.
			for r := st.sc.FaultRounds; r+1 < rounds; r++ {
				if coarse[r+1] > coarse[r] {
					t.Errorf("coarse responses grew from round %d (%d) to round %d (%d) after faults stopped",
						r, coarse[r], r+1, coarse[r+1])
				}
			}
			last := rounds - 1
			if coarse[last] != 0 || full[last] == 0 {
				t.Errorf("final round must be fully recovered: %d full, %d coarse", full[last], coarse[last])
			}
		})
	}
}
