package faultsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/synthetic"
	"repro/internal/telemetry"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// Invariant names. A scenario may disable individual checks
// (Scenario.DisableInvariants) — the harness's own regression tests do
// exactly that to prove a seeded bug is caught by the named check and
// nothing else.
const (
	// InvNoSilentDegradation: a response not flagged Partial must equal
	// the un-faulted reference estimate — no estimate is ever silently
	// degraded.
	InvNoSilentDegradation = "no-silent-degradation"
	// InvNoPartialCached: a response must never report Cached and
	// Partial together; the cache admits only complete results.
	InvNoPartialCached = "no-partial-cached"
	// InvCachedAccurate: every cache hit equals the reference — a
	// degraded or poisoned value never enters the cache.
	InvCachedAccurate = "cached-accurate"
	// InvErrorsClassified: every request error is one of the expected
	// kinds (injected, shed, contained panic, context expiry) — no
	// anonymous failures.
	InvErrorsClassified = "errors-classified"
	// InvNoDeadlock: every request completes in bounded virtual time;
	// a request that exhausts its parent timeout, or a run that stops
	// making progress in real time, is a stuck flight.
	InvNoDeadlock = "no-deadlock"
	// InvShutdownDrains: graceful Shutdown completes within its
	// deadline and Serve returns http.ErrServerClosed.
	InvShutdownDrains = "shutdown-drains"
	// InvRecovers: with injection turned off after the storm, a fresh
	// query is answered completely and accurately — failures never
	// latch.
	InvRecovers = "recovers"
	// InvCleanRun (checked only when Scenario.ExpectClean): a run with
	// no configured faults must produce no partials, errors or sheds.
	InvCleanRun = "clean-run"
	// InvSnapshotEpochConsistent (cluster scenarios only): every
	// completed response derives from exactly one partition-map epoch —
	// the response's epoch matches the scatter's map epoch, and every
	// full-quality shard was answered by a worker serving that epoch.
	// A reshard concurrent with traffic must never tear a response
	// across statistics generations.
	InvSnapshotEpochConsistent = "snapshot-epoch-consistent"
	// InvConvergesToHead (cluster scenarios with ClusterSpec.Resync):
	// after the heal and the resync passes, every replica the final
	// partition map names holds its shard at the head epoch, and every
	// post-heal response is full quality at that epoch — snapshot
	// distribution is convergent, not a one-shot broadcast.
	InvConvergesToHead = "converges-to-head-epoch"
)

// AllInvariants lists every check the runner knows, in report order.
var AllInvariants = []string{
	InvNoSilentDegradation, InvNoPartialCached, InvCachedAccurate,
	InvErrorsClassified, InvNoDeadlock, InvShutdownDrains, InvRecovers,
	InvCleanRun, InvSnapshotEpochConsistent, InvConvergesToHead,
}

// Scenario is one named fault-injection run: a synthetic dataset and
// workload trace, a serving configuration, and an injection schedule.
// The zero value of every field takes a sensible default.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Dataset and statistics shape.
	Rows    int `json:"rows,omitempty"`    // default 2000
	Shards  int `json:"shards,omitempty"`  // default 4
	Buckets int `json:"buckets,omitempty"` // default 60

	// Workload trace: Queries queries replayed Rounds times by Workers
	// concurrent clients (round 2+ exercises the cache).
	Queries int     `json:"queries,omitempty"` // default 150
	Rounds  int     `json:"rounds,omitempty"`  // default 2
	Workers int     `json:"workers,omitempty"` // default 8
	QSize   float64 `json:"qsize,omitempty"`   // default 0.10

	// Serving tier knobs (virtual durations).
	MaxInFlight     int           `json:"max_in_flight,omitempty"`    // default 16
	QueueTimeout    time.Duration `json:"queue_timeout,omitempty"`    // default 20ms
	EstimateTimeout time.Duration `json:"estimate_timeout,omitempty"` // default 250ms
	CacheSize       int           `json:"cache_size,omitempty"`       // default 4096; negative disables
	CacheTTL        time.Duration `json:"cache_ttl,omitempty"`        // default none
	// RequestTimeout bounds one request end to end (virtual); a
	// request that needs it is stuck. Default 30s.
	RequestTimeout time.Duration `json:"request_timeout,omitempty"`

	// MidRunAnalyze issues an ANALYZE between rounds, exercising
	// rebuild faults against live traffic.
	MidRunAnalyze bool `json:"mid_run_analyze,omitempty"`

	// FaultRounds limits injection to the first N rounds: after round
	// FaultRounds completes the injector is disabled and the virtual
	// clock advanced by PostFaultAdvance, so later rounds observe
	// recovery (breaker cooldown, quality climbing back to full). Zero
	// keeps faults on for the whole trace.
	FaultRounds int `json:"fault_rounds,omitempty"`
	// PostFaultAdvance is the virtual time advanced when FaultRounds
	// disables injection. Default 3s — past the default breaker
	// OpenTimeout, so the next round's calls reach half-open probes.
	PostFaultAdvance time.Duration `json:"post_fault_advance,omitempty"`

	// LadderRungs forwards to shard.Config.LadderRungs for the serving
	// catalog (0 takes the shard default; negative disables the
	// degradation ladder).
	LadderRungs int `json:"ladder_rungs,omitempty"`
	// Resilience configures the serving catalog's breakers, retries and
	// hedging. The zero value enables the whole layer with defaults;
	// the reference catalog always runs with resilience disabled.
	Resilience resilience.Config `json:"resilience"`

	Faults Faults `json:"faults"`

	// Cluster, when set, runs the scenario against the distributed
	// tier: the serve stack fronts a cluster.Coordinator fanning out to
	// in-process worker nodes, with Cluster.Net as the network fault
	// schedule. See ClusterSpec for which fault knobs apply.
	Cluster *ClusterSpec `json:"cluster,omitempty"`

	// ExpectClean additionally asserts zero partials/errors/sheds —
	// only meaningful for a scenario with no configured faults.
	ExpectClean bool `json:"expect_clean,omitempty"`

	// DisableInvariants names checks to skip (see the Inv* constants).
	DisableInvariants []string `json:"disable_invariants,omitempty"`
}

func (s Scenario) withDefaults() Scenario {
	if s.Rows == 0 {
		s.Rows = 2000
	}
	if s.Shards == 0 {
		s.Shards = 4
	}
	if s.Buckets == 0 {
		s.Buckets = 60
	}
	if s.Queries == 0 {
		s.Queries = 150
	}
	if s.Rounds == 0 {
		s.Rounds = 2
	}
	if s.Workers == 0 {
		s.Workers = 8
	}
	if s.QSize == 0 {
		s.QSize = 0.10
	}
	if s.MaxInFlight == 0 {
		s.MaxInFlight = 16
	}
	if s.QueueTimeout == 0 {
		s.QueueTimeout = 20 * time.Millisecond
	}
	if s.EstimateTimeout == 0 {
		s.EstimateTimeout = 250 * time.Millisecond
	}
	if s.CacheSize == 0 {
		s.CacheSize = 4096
	}
	if s.RequestTimeout == 0 {
		s.RequestTimeout = 30 * time.Second
	}
	if s.PostFaultAdvance == 0 {
		s.PostFaultAdvance = 3 * time.Second
	}
	return s
}

// Violation is one invariant breach with enough detail to reproduce.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Report is the JSON result of one scenario run.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	Requests      int `json:"requests"`
	Completed     int `json:"completed"`
	Partials      int `json:"partials"`
	CacheHits     int `json:"cache_hits"`
	SharedFlights int `json:"shared_flights"`
	Shed          int `json:"shed"`
	ErrorsTotal   int `json:"errors_total"`
	PanicErrors   int `json:"panic_errors"`
	Timeouts      int `json:"timeouts"`

	// Completed responses by answer quality.
	QualityFull    int `json:"quality_full"`
	QualityCoarse  int `json:"quality_coarse"`
	QualityUniform int `json:"quality_uniform"`

	// Virtual end-to-end latency percentiles over completed requests.
	P50Millis float64 `json:"p50_millis"`
	P99Millis float64 `json:"p99_millis"`

	// Resilience activity, read from the serving catalog's telemetry.
	Retries      int64 `json:"retries"`
	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedge_wins"`
	BreakerOpens int64 `json:"breaker_opens"`

	InjectedDelays      int64 `json:"injected_delays"`
	InjectedErrors      int64 `json:"injected_errors"`
	InjectedPanics      int64 `json:"injected_panics"`
	InjectedSlowShards  int64 `json:"injected_slow_shards"`
	InjectedShardErrs   int64 `json:"injected_shard_errs"`
	InjectedBuildFails  int64 `json:"injected_build_fails"`
	InjectedAnalyzeErrs int64 `json:"injected_analyze_errs"`

	// Cluster accounting (cluster scenarios only; omitted otherwise).
	ClusterNodes         int    `json:"cluster_nodes,omitempty"`
	ClusterEpoch         uint64 `json:"cluster_epoch,omitempty"`
	StaleReplies         int64  `json:"stale_replies,omitempty"`
	NetPartitionRefusals int64  `json:"net_partition_refusals,omitempty"`
	NetDrops             int64  `json:"net_drops,omitempty"`
	NetDelays            int64  `json:"net_delays,omitempty"`
	ShipsDropped         int64  `json:"ships_dropped,omitempty"`
	// Self-healing activity (scenarios with ClusterSpec.Resync).
	ResyncPulls    int64 `json:"resync_pulls,omitempty"`
	ResyncReships  int64 `json:"resync_reships,omitempty"`
	ResyncFailures int64 `json:"resync_failures,omitempty"`
	StatePersists  int64 `json:"state_persists,omitempty"`

	SimElapsedMillis int64 `json:"sim_elapsed_millis"`

	// Request-trace accounting: how many span trees the ring retained,
	// how many the slow/degraded sampler kept, and how many records the
	// deterministic query log wrote.
	TracesRetained  int   `json:"traces_retained"`
	TracesSampled   int   `json:"traces_sampled"`
	QueryLogRecords int64 `json:"query_log_records"`

	InvariantsChecked []string    `json:"invariants_checked"`
	Violations        []Violation `json:"violations"`
	Passed            bool        `json:"passed"`
}

// outcome records one replayed request.
type outcome struct {
	idx   int // index into the query trace
	round int
	resp  serve.EstimateResponse
	err   error
	took  time.Duration // virtual
}

// runState carries everything one scenario run touches.
type runState struct {
	sc         Scenario
	seed       int64
	sim        *vclock.Sim
	dist       *dataset.Distribution
	queries    []geom.Rect
	refs       []float64
	backend    serve.Backend
	coord      *cluster.Coordinator
	net        *netTransport
	local      *cluster.Local
	workers    []*cluster.Worker
	workerCfgs []cluster.WorkerConfig
	stateRoot  string
	inj        *Injector
	srv        *serve.Server
	reg        *telemetry.Registry
	tracer     *reqtrace.Tracer
	qlog       *reqtrace.QueryLog
	qlogBuf    *bytes.Buffer

	mu       sync.Mutex
	outcomes []outcome

	completed  atomic.Int64
	report     Report
	disabled   map[string]bool
	violations []Violation
}

const simTable = "t"

// relTol is the estimate-match tolerance: scatter-gather sums shard
// contributions in arrival order, so identical answers may differ by
// float summation order. 1e-6 relative is far above any reordering
// noise and far below any real degradation.
const relTol = 1e-6

func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= relTol*scale
}

// Run executes the scenario under the given seed and returns its
// report. The error return is reserved for harness setup failures
// (bad scenario parameters); invariant breaches are reported in
// Report.Violations with Passed == false.
func Run(sc Scenario, seed int64) (Report, error) {
	st, err := run(sc, seed)
	if err != nil {
		return Report{}, err
	}
	return st.report, nil
}

// RunTraced is Run plus the run's observability artifacts: the
// retained span trees as NDJSON on traceOut and the deterministic
// query log on qlogOut (either may be nil). Under Workers == 1 both
// artifacts are byte-identical across runs of the same scenario and
// seed — the CI determinism gate diffs them.
func RunTraced(sc Scenario, seed int64, traceOut, qlogOut io.Writer) (Report, error) {
	st, err := run(sc, seed)
	if err != nil {
		return Report{}, err
	}
	if traceOut != nil {
		if err := reqtrace.WriteNDJSON(traceOut, st.tracer.Recent()); err != nil {
			return st.report, fmt.Errorf("faultsim: write traces: %w", err)
		}
	}
	if qlogOut != nil {
		if _, err := qlogOut.Write(st.qlogBuf.Bytes()); err != nil {
			return st.report, fmt.Errorf("faultsim: write query log: %w", err)
		}
	}
	return st.report, nil
}

// run is Run with the whole run state exposed, so the harness's own
// tests can assert on per-round outcomes, not just the report totals.
func run(sc Scenario, seed int64) (*runState, error) {
	sc = sc.withDefaults()
	st := &runState{
		sc:       sc,
		seed:     seed,
		sim:      vclock.NewSim(time.Unix(0, 0)),
		disabled: make(map[string]bool, len(sc.DisableInvariants)),
	}
	for _, name := range sc.DisableInvariants {
		st.disabled[name] = true
	}
	if err := st.setup(); err != nil {
		if st.stateRoot != "" {
			_ = os.RemoveAll(st.stateRoot) //spatialvet:ignore errdrop best-effort temp cleanup
		}
		return nil, err
	}
	st.replay()
	st.checkShutdown()
	st.checkRecovery()
	st.checkSpanTrees()
	st.checkClusterEpochs()
	st.checkClusterConvergence()
	st.finishReport()
	if st.stateRoot != "" {
		_ = os.RemoveAll(st.stateRoot) //spatialvet:ignore errdrop best-effort temp cleanup
	}
	return st, nil
}

// shardConfig is the scenario's sharding policy with the given
// resilience layer — shared by the reference catalog, the serving
// catalog and the cluster coordinator so all three build identical
// statistics.
func (st *runState) shardConfig(res resilience.Config) shard.Config {
	return shard.Config{
		Shards: st.sc.Shards, Buckets: st.sc.Buckets, Regions: 1024, Clock: st.sim,
		LadderRungs: st.sc.LadderRungs,
		Resilience:  res,
	}
}

// setInjectionDisabled flips every fault source at once: the backend
// injector and, in cluster mode, the simulated network.
func (st *runState) setInjectionDisabled(v bool) {
	st.inj.SetDisabled(v)
	if st.net != nil {
		st.net.SetDisabled(v)
	}
}

// violate records a breach unless the invariant is disabled.
func (st *runState) violate(inv, format string, args ...any) {
	if st.disabled[inv] {
		return
	}
	st.violations = append(st.violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// setup builds the dataset, trace, reference estimates, sharded
// catalog, injector and server — everything seed-derived.
func (st *runState) setup() error {
	rng := rand.New(rand.NewSource(st.seed))
	d := synthetic.CharminarRand(rng, st.sc.Rows, 1000, 10)
	st.dist = d
	queries, err := workload.GenerateRand(d, workload.Config{
		Count: st.sc.Queries, QSize: st.sc.QSize, Clamp: true,
	}, rng)
	if err != nil {
		return fmt.Errorf("faultsim: workload: %w", err)
	}
	st.queries = queries

	// Reference estimates come from a separate catalog with resilience
	// disabled: the shard build is deterministic in the distribution, so
	// it yields the exact full-quality answers, and keeping it apart
	// means reference traffic never touches the serving catalog's
	// breaker windows or latency histograms. Cluster runs share these
	// references — the coordinator builds the same shard set from the
	// same distribution and workers walk replicated copies of the same
	// histograms, so full-quality cluster answers are identical.
	refCat := shard.New(st.shardConfig(resilience.Config{Disable: true}))
	if err := refCat.Analyze(d); err != nil {
		return fmt.Errorf("faultsim: reference analyze: %w", err)
	}
	st.refs = make([]float64, len(queries))
	for i, q := range queries {
		res, err := refCat.Estimate(q)
		if err != nil {
			return fmt.Errorf("faultsim: reference estimate: %w", err)
		}
		st.refs[i] = res.Estimate
	}

	st.reg = telemetry.NewRegistry()
	if st.sc.Cluster != nil {
		// Distributed tier: coordinator + in-process workers behind the
		// network fault model (cluster.go).
		if err := st.setupCluster(); err != nil {
			return err
		}
		st.inj = NewInjector(st.backend, st.sim, st.seed, st.sc.Faults)
	} else {
		// The serving catalog runs the scenario's resilience policy. A
		// successful mid-run rebuild regenerates an identical shard set,
		// so references stay valid across ANALYZE.
		cat := shard.New(st.shardConfig(st.sc.Resilience))
		cat.EnableTelemetry(st.reg)
		if err := cat.Analyze(d); err != nil {
			return fmt.Errorf("faultsim: analyze: %w", err)
		}
		backend := NewCatalogBackend()
		backend.AddTable(simTable, d, cat)
		st.backend = backend
		st.inj = NewInjector(st.backend, st.sim, st.seed, st.sc.Faults)
		st.inj.InstallShardFaults(cat)
	}

	// The tracer retains every request of the run (ring sized to the
	// whole trace plus the shutdown and recovery probes), stamps spans
	// from the virtual clock, and copies each outcome into an in-memory
	// query log — both artifacts are byte-comparable across same-seed
	// sequential runs.
	st.qlogBuf = &bytes.Buffer{}
	st.qlog = reqtrace.NewQueryLog(st.qlogBuf)
	st.tracer = reqtrace.New(reqtrace.Config{
		Clock:    st.sim,
		Ring:     st.sc.Queries*st.sc.Rounds + 16,
		QueryLog: st.qlog,
	})
	st.tracer.EnableTelemetry(st.reg)

	// Exact cache keys (negative quantum): every trace entry maps to
	// its own reference estimate, so cache hits are checkable for
	// exact fidelity. Quantization collision behavior has its own
	// table-driven tests in internal/serve.
	st.srv = serve.New(st.inj, serve.Config{
		MaxInFlight:     st.sc.MaxInFlight,
		QueueTimeout:    st.sc.QueueTimeout,
		EstimateTimeout: st.sc.EstimateTimeout,
		CacheSize:       st.sc.CacheSize,
		CacheQuantum:    -1,
		CacheTTL:        st.sc.CacheTTL,
		Clock:           st.sim,
		Tracer:          st.tracer,
		RequestIDSeed:   st.seed,
	})
	st.srv.EnableTelemetry(st.reg)
	return nil
}

// replay drives the trace through the server: Workers goroutines per
// round, a clock driver advancing virtual time whenever the run is
// otherwise idle, and a real-time watchdog that converts a total stall
// into a no-deadlock violation instead of a hung test.
func (st *runState) replay() {
	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()

	stopDriver := make(chan struct{})
	driverDone := make(chan struct{})
	go st.driveClock(runCancel, stopDriver, driverDone)

	for round := 0; round < st.sc.Rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < st.sc.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(st.queries); i += st.sc.Workers {
					st.oneRequest(runCtx, round, i)
				}
			}(w)
		}
		wg.Wait()
		if st.sc.MidRunAnalyze && round == 0 {
			st.midRunAnalyze(runCtx)
		}
		if st.sc.Cluster != nil && st.sc.Cluster.Crash != nil &&
			round == st.sc.Cluster.Crash.AfterRound {
			st.crashRestart(st.sc.Cluster.Crash.Node)
		}
		if st.sc.FaultRounds > 0 && round+1 == st.sc.FaultRounds {
			// The storm is over: stop injecting and let the breaker
			// cooldowns elapse, so the remaining rounds replay recovery.
			st.setInjectionDisabled(true)
			st.sim.Advance(st.sc.PostFaultAdvance)
			// With the network healed, drive the scenario's self-healing
			// passes so the remaining rounds observe convergence.
			if st.sc.Cluster != nil && st.sc.Cluster.Resync != "" {
				st.resyncCluster()
			}
		}
	}
	close(stopDriver)
	<-driverDone
	// Release any shard goroutines still parked on injected virtual
	// sleeps so they drain before the report is cut.
	st.sim.Advance(st.sc.Faults.SlowShardDelay + st.sc.Faults.EstimateDelay + st.sc.RequestTimeout)
}

// oneRequest replays trace entry i and records the outcome. The
// request ID is the trace coordinate (query index, round), so a span
// tree or query-log line names the exact replay step it came from.
func (st *runState) oneRequest(runCtx context.Context, round, i int) {
	ctx, cancel := vclock.WithTimeout(runCtx, st.sim, st.sc.RequestTimeout)
	ctx = reqtrace.WithRequestID(ctx, fmt.Sprintf("q%03d-r%d", i, round))
	t0 := st.sim.Now()
	resp, err := st.srv.Estimate(ctx, simTable, st.queries[i])
	cancel()
	st.mu.Lock()
	st.outcomes = append(st.outcomes, outcome{idx: i, round: round, resp: resp, err: err, took: st.sim.Since(t0)})
	st.mu.Unlock()
	st.completed.Add(1)
}

// midRunAnalyze rebuilds statistics under injection; failures are
// expected (and classified), success must leave references intact —
// both are validated by the next round's estimates.
func (st *runState) midRunAnalyze(runCtx context.Context) {
	_, err := st.srv.Analyze(runCtx, simTable)
	if err != nil && !errors.Is(err, ErrInjected) && !errors.Is(err, ErrInjectedBuild) &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		st.violate(InvErrorsClassified, "mid-run analyze failed with unclassified error: %v", err)
	}
}

// driveClock advances virtual time while the run makes no progress —
// the discrete-event engine of the simulation. It never sleeps for
// real: it yields, and only when several consecutive yields saw no
// completed request AND virtual events are pending does it advance one
// quantum. A run with no real-time progress for a full watchdog period
// is declared deadlocked: the watchdog cancels every request and lets
// replay collect what it can.
func (st *runState) driveClock(runCancel context.CancelFunc, stop, done chan struct{}) {
	defer close(done)
	const quantum = time.Millisecond
	const watchdog = 10 * time.Second // real time; only reached on failure
	lastCount := int64(-1)
	//spatialvet:ignore walltime the watchdog must read real time: it detects runs where virtual time itself is wedged
	lastProgress := time.Now()
	idle := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		if c := st.completed.Load(); c != lastCount {
			lastCount = c
			//spatialvet:ignore walltime watchdog progress stamp; deliberately real time
			lastProgress = time.Now()
			idle = 0
			runtime.Gosched()
			continue
		}
		//spatialvet:ignore walltime watchdog expiry check; deliberately real time
		if time.Since(lastProgress) > watchdog {
			st.mu.Lock()
			st.violations = append(st.violations, Violation{
				Invariant: InvNoDeadlock,
				Detail: fmt.Sprintf("no request completed for %v of real time (%d done); cancelling run",
					watchdog, lastCount),
			})
			st.mu.Unlock()
			runCancel()
			//spatialvet:ignore walltime watchdog re-arm; deliberately real time
			lastProgress = time.Now() // let cancellation drain before re-firing
		}
		idle++
		if idle >= 4 && st.sim.Pending() > 0 {
			st.sim.Advance(quantum)
			idle = 0
		} else {
			runtime.Gosched()
		}
	}
}

// checkShutdown serves the real HTTP API on a loopback listener,
// issues a couple of requests, and verifies graceful Shutdown drains
// within its deadline. Injection is left enabled until after the
// requests so the drain happens on a server that just saw faults.
func (st *runState) checkShutdown() {
	if st.disabled[InvShutdownDrains] {
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.violate(InvShutdownDrains, "listen: %v", err)
		return
	}
	served := make(chan error, 1)
	go func() { served <- st.srv.Serve(ln) }()

	// Faults off for the probe requests themselves: the HTTP phase has
	// no clock driver, so a virtual-delay fault would hang the handler.
	st.setInjectionDisabled(true)
	q := st.queries[0]
	url := fmt.Sprintf("http://%s/estimate?table=%s&minx=%g&miny=%g&maxx=%g&maxy=%g",
		ln.Addr(), simTable, q.MinX, q.MinY, q.MaxX, q.MaxY)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(url)
		if err != nil {
			st.violate(InvShutdownDrains, "pre-shutdown request: %v", err)
			break
		}
		_ = resp.Body.Close() // probe request; body unused, close error uninteresting
	}

	//spatialvet:ignore walltime real HTTP drain deadline: the shutdown probe runs against a real listener with no clock driver
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := st.srv.Shutdown(ctx); err != nil {
		st.violate(InvShutdownDrains, "Shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		st.violate(InvShutdownDrains, "Serve returned %v, want http.ErrServerClosed", err)
	}
}

// checkRecovery proves failures do not latch: with injection disabled,
// a fresh query (never in the trace, never cached) must be answered
// completely and match the direct backend answer.
func (st *runState) checkRecovery() {
	if st.disabled[InvRecovers] {
		return
	}
	st.setInjectionDisabled(true)
	// A probe unlike any workload query: offset from the space center
	// with an odd aspect ratio.
	probe := geom.NewRect(111.5, 222.25, 613.75, 414.5)
	want, err := st.backend.EstimateContext(context.Background(), simTable, probe)
	if err != nil {
		st.violate(InvRecovers, "reference probe: %v", err)
		return
	}
	resp, err := st.srv.Estimate(context.Background(), simTable, probe)
	switch {
	case err != nil:
		st.violate(InvRecovers, "post-run probe failed: %v", err)
	case resp.Partial || resp.Quality != shard.QualityFull.String():
		st.violate(InvRecovers, "post-run probe degraded: %+v", resp)
	case !closeEnough(resp.Estimate, want.Estimate):
		st.violate(InvRecovers, "post-run probe estimate %g, want %g", resp.Estimate, want.Estimate)
	}
}

// checkSpanTrees re-derives the no-partial-cached and
// no-silent-degradation verdicts from the retained span trees,
// independently of the response structs: a cached response must have
// no shard.scatter span (the cache never reaches the backend) and
// must be full quality; a traced scatter's merge decision — the
// gatherer's shard_quality attribute — must grade exactly what the
// response reported, and any below-full merge must be flagged
// Partial. A response that lies about its provenance is caught here
// even if the response-level checks were fooled.
func (st *runState) checkSpanTrees() {
	for _, tr := range st.tracer.Recent() {
		o := tr.Outcome()
		if o.Err != "" {
			continue
		}
		id := tr.RequestID()
		scatters := tr.Root().Find("shard.scatter")
		if len(scatters) == 0 {
			// Cluster runs scatter under the coordinator's span; the
			// merge-grading convention (shard_quality in routing order)
			// is shared, so the same checks apply.
			scatters = tr.Root().Find("cluster.scatter")
		}
		if o.Cached {
			if len(scatters) != 0 {
				st.violate(InvNoPartialCached,
					"trace %s: cached response carries %d shard.scatter span(s) — cache hit reached the backend",
					id, len(scatters))
			}
			if o.Partial || o.Quality != shard.QualityFull.String() {
				st.violate(InvNoPartialCached,
					"trace %s: cached response graded %q (partial=%v)", id, o.Quality, o.Partial)
			}
			continue
		}
		if len(scatters) == 0 {
			// Shared-flight follower (or a pre-trace fast path): the
			// scatter ran under the leader's trace, which is checked on
			// its own.
			continue
		}
		scat := scatters[len(scatters)-1]
		merge, ok := scat.Attr("shard_quality")
		if !ok {
			st.violate(InvNoSilentDegradation, "trace %s: scatter span has no shard_quality merge decision", id)
			continue
		}
		worst := worstQualityIn(merge)
		if worst.String() != o.Quality {
			st.violate(InvNoSilentDegradation,
				"trace %s: span merge %q grades %s, response says %q", id, merge, worst, o.Quality)
		}
		if worst != shard.QualityFull && !o.Partial {
			st.violate(InvNoSilentDegradation,
				"trace %s: span merge %q is degraded but the response is not flagged Partial", id, merge)
		}
	}
}

// worstQualityIn grades a scatter span's shard_quality merge list
// ("0:full,2:coarse"): the worst per-shard quality, QualityFull for
// an empty list (zero relevant shards).
func worstQualityIn(list string) shard.Quality {
	worst := shard.QualityFull
	if list == "" {
		return worst
	}
	for _, part := range strings.Split(list, ",") {
		_, qs, ok := strings.Cut(part, ":")
		if !ok {
			continue
		}
		var q shard.Quality
		switch qs {
		case shard.QualityCoarse.String():
			q = shard.QualityCoarse
		case shard.QualityUniform.String():
			q = shard.QualityUniform
		}
		if q > worst {
			worst = q
		}
	}
	return worst
}

// counterValue reads one labeled counter from the run's registry.
func (st *runState) counterValue(name string, labels ...telemetry.Label) int64 {
	return int64(st.reg.Counter(name, "", labels...).Value())
}

// percentileMillis returns the q-quantile of the sorted virtual
// latencies, in milliseconds (nearest-rank).
func percentileMillis(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// finishReport runs the trace-level invariant checks and assembles the
// report.
func (st *runState) finishReport() {
	r := &st.report
	r.Scenario = st.sc.Name
	r.Seed = st.seed
	r.SimElapsedMillis = st.sim.Since(time.Unix(0, 0)).Milliseconds()
	r.InjectedDelays = st.inj.Delays.Load()
	r.InjectedErrors = st.inj.Errors.Load()
	r.InjectedPanics = st.inj.Panics.Load()
	r.InjectedSlowShards = st.inj.SlowShards.Load()
	r.InjectedShardErrs = st.inj.ShardErrs.Load()
	r.InjectedBuildFails = st.inj.BuildFails.Load()
	r.InjectedAnalyzeErrs = st.inj.AnalyzeErrs.Load()
	r.Retries = st.counterValue("resilience_retries_total")
	r.Hedges = st.counterValue("resilience_hedges_total")
	r.HedgeWins = st.counterValue("resilience_hedge_wins_total")
	r.BreakerOpens = st.counterValue("resilience_breaker_transitions_total",
		telemetry.Label{Key: "to", Value: resilience.StateOpen.String()})
	if st.coord != nil {
		r.ClusterNodes = len(st.workers)
		r.ClusterEpoch = st.coord.Epoch(simTable)
		r.StaleReplies = st.counterValue("cluster_stale_replies_total")
		r.BreakerOpens += st.counterValue("cluster_breaker_transitions_total",
			telemetry.Label{Key: "to", Value: resilience.StateOpen.String()})
		r.NetPartitionRefusals = st.net.PartitionRefusals.Load()
		r.NetDrops = st.net.Drops.Load()
		r.NetDelays = st.net.Delays.Load()
		r.ShipsDropped = st.net.ShipDrops.Load()
		r.ResyncPulls = st.counterValue("cluster_resync_pulls_total")
		r.ResyncReships = st.counterValue("cluster_resync_reships_total")
		r.ResyncFailures = st.counterValue("cluster_resync_failures_total")
		r.StatePersists = st.counterValue("cluster_state_persists_total")
	}
	r.TracesRetained = len(st.tracer.Recent())
	r.TracesSampled = len(st.tracer.Sampled())
	r.QueryLogRecords = int64(st.qlog.Records())

	st.mu.Lock()
	outcomes := st.outcomes
	st.mu.Unlock()
	r.Requests = len(outcomes)

	for _, o := range outcomes {
		ref := st.refs[o.idx]
		if o.err != nil {
			r.ErrorsTotal++
			switch {
			case errors.Is(o.err, serve.ErrShed):
				r.Shed++
			case errors.Is(o.err, serve.ErrEstimatePanic):
				r.PanicErrors++
			case errors.Is(o.err, context.DeadlineExceeded):
				r.Timeouts++
				// The estimate deadline degrades (Partial), it does not
				// error; only a stuck flight exhausts the much larger
				// per-request timeout.
				st.violate(InvNoDeadlock,
					"request %d exhausted its %v request timeout (took %v virtual)",
					o.idx, st.sc.RequestTimeout, o.took)
			case errors.Is(o.err, ErrInjected), errors.Is(o.err, context.Canceled):
				// Expected: injected failure, or the watchdog draining a
				// declared-dead run.
			default:
				st.violate(InvErrorsClassified, "request %d: unclassified error %v", o.idx, o.err)
			}
			continue
		}
		r.Completed++
		if o.resp.Partial {
			r.Partials++
		}
		switch o.resp.Quality {
		case shard.QualityFull.String():
			r.QualityFull++
		case shard.QualityCoarse.String():
			r.QualityCoarse++
		case shard.QualityUniform.String():
			r.QualityUniform++
		}
		if o.resp.Cached {
			r.CacheHits++
		}
		if o.resp.Shared {
			r.SharedFlights++
		}
		if o.resp.Cached && (o.resp.Partial || o.resp.Quality != shard.QualityFull.String()) {
			st.violate(InvNoPartialCached, "request %d: cached degraded response %+v", o.idx, o.resp)
		}
		if o.resp.Cached && !closeEnough(o.resp.Estimate, ref) {
			st.violate(InvCachedAccurate,
				"request %d: cache served %g, reference %g", o.idx, o.resp.Estimate, ref)
		}
		if !o.resp.Partial && o.resp.Quality != shard.QualityFull.String() {
			st.violate(InvNoSilentDegradation,
				"request %d: quality %q response not flagged Partial", o.idx, o.resp.Quality)
		}
		if !o.resp.Partial && !closeEnough(o.resp.Estimate, ref) {
			st.violate(InvNoSilentDegradation,
				"request %d: complete response %g diverges from reference %g (silently degraded?)",
				o.idx, o.resp.Estimate, ref)
		}
	}

	var tooks []time.Duration
	for _, o := range outcomes {
		if o.err == nil {
			tooks = append(tooks, o.took)
		}
	}
	sort.Slice(tooks, func(i, j int) bool { return tooks[i] < tooks[j] })
	r.P50Millis = percentileMillis(tooks, 0.50)
	r.P99Millis = percentileMillis(tooks, 0.99)

	if st.sc.ExpectClean && !st.disabled[InvCleanRun] {
		if n := r.Partials + r.ErrorsTotal; n != 0 {
			st.violate(InvCleanRun,
				"fault-free run produced %d partials and %d errors", r.Partials, r.ErrorsTotal)
		}
	}

	for _, inv := range AllInvariants {
		if st.disabled[inv] {
			continue
		}
		if inv == InvCleanRun && !st.sc.ExpectClean {
			continue
		}
		if inv == InvSnapshotEpochConsistent && st.sc.Cluster == nil {
			continue
		}
		if inv == InvConvergesToHead && (st.sc.Cluster == nil || st.sc.Cluster.Resync == "") {
			continue
		}
		r.InvariantsChecked = append(r.InvariantsChecked, inv)
	}
	r.Violations = st.violations
	if r.Violations == nil {
		r.Violations = []Violation{}
	}
	r.Passed = len(r.Violations) == 0
}
