package faultsim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// suiteSeeds are the fixed seeds CI replays the whole suite under.
var suiteSeeds = []int64{1, 42, 7}

// effectChecks asserts each scenario actually produced the disturbance
// it advertises — a passing run that injected nothing proves nothing.
var effectChecks = map[string]func(Report) error{
	"baseline": func(r Report) error {
		if r.ErrorsTotal != 0 || r.Partials != 0 {
			return fmt.Errorf("baseline not clean: %d errors, %d partials", r.ErrorsTotal, r.Partials)
		}
		if r.CacheHits == 0 {
			return fmt.Errorf("round 2 of a clean run should hit the cache")
		}
		return nil
	},
	"slow-shards": func(r Report) error {
		if r.InjectedSlowShards == 0 {
			return fmt.Errorf("no slow-shard faults fired")
		}
		if r.Partials == 0 {
			return fmt.Errorf("slow shards beyond the deadline must degrade some requests")
		}
		return nil
	},
	"backend-errors": func(r Report) error {
		if r.InjectedErrors == 0 || r.ErrorsTotal == 0 {
			return fmt.Errorf("no backend errors surfaced (injected %d, seen %d)",
				r.InjectedErrors, r.ErrorsTotal)
		}
		return nil
	},
	"panic-storm": func(r Report) error {
		if r.InjectedPanics == 0 || r.PanicErrors == 0 {
			return fmt.Errorf("no panics contained (injected %d, classified %d)",
				r.InjectedPanics, r.PanicErrors)
		}
		return nil
	},
	"overload": func(r Report) error {
		if r.Shed == 0 {
			return fmt.Errorf("overload run shed nothing")
		}
		return nil
	},
	"hedged-slow-shard": func(r Report) error {
		if r.InjectedSlowShards == 0 {
			return fmt.Errorf("no slow-shard faults fired")
		}
		if r.Hedges == 0 || r.HedgeWins == 0 {
			return fmt.Errorf("hedging never engaged (launched %d, won %d)", r.Hedges, r.HedgeWins)
		}
		if r.Partials != 0 {
			return fmt.Errorf("slow-but-within-deadline shard should never degrade, got %d partials", r.Partials)
		}
		return nil
	},
	"breaker-trip": func(r Report) error {
		if r.InjectedShardErrs == 0 {
			return fmt.Errorf("no shard errors fired")
		}
		if r.BreakerOpens == 0 {
			return fmt.Errorf("sustained shard errors never opened the breaker")
		}
		if r.QualityCoarse == 0 {
			return fmt.Errorf("breaker-gated requests should degrade to coarse ladder answers")
		}
		if r.QualityUniform != 0 {
			return fmt.Errorf("%d responses fell to uniform; the ladder should absorb breaker degradation", r.QualityUniform)
		}
		if r.QualityFull == 0 {
			return fmt.Errorf("no full-quality responses after recovery")
		}
		return nil
	},
	"ladder-recovery": func(r Report) error {
		if r.InjectedSlowShards == 0 {
			return fmt.Errorf("no slow-shard faults fired")
		}
		if r.QualityCoarse == 0 {
			return fmt.Errorf("deadline-missed shards should degrade to coarse ladder answers")
		}
		if r.QualityUniform != 0 {
			return fmt.Errorf("%d responses fell to uniform; the ladder should absorb deadline degradation", r.QualityUniform)
		}
		if r.QualityFull == 0 {
			return fmt.Errorf("no full-quality responses after recovery")
		}
		return nil
	},
	"rebuild-failures": func(r Report) error {
		if r.InjectedAnalyzeErrs+r.InjectedBuildFails == 0 {
			return fmt.Errorf("no rebuild faults fired")
		}
		return nil
	},
	"chaos": func(r Report) error {
		if r.InjectedDelays+r.InjectedErrors+r.InjectedPanics+r.InjectedSlowShards == 0 {
			return fmt.Errorf("chaos run injected nothing")
		}
		return nil
	},
	"cluster-baseline": func(r Report) error {
		if r.ClusterNodes != 3 {
			return fmt.Errorf("ran on %d nodes, want 3", r.ClusterNodes)
		}
		if r.ErrorsTotal != 0 || r.Partials != 0 {
			return fmt.Errorf("cluster baseline not clean: %d errors, %d partials", r.ErrorsTotal, r.Partials)
		}
		if r.CacheHits == 0 {
			return fmt.Errorf("round 2 of a clean cluster run should hit the cache")
		}
		return nil
	},
	"cluster-partition": func(r Report) error {
		if r.NetPartitionRefusals == 0 {
			return fmt.Errorf("no calls refused by the partition")
		}
		if r.Partials == 0 {
			return fmt.Errorf("a partitioned single-replica node must degrade some requests")
		}
		if r.QualityFull == 0 {
			return fmt.Errorf("no full-quality responses after the heal")
		}
		if r.ErrorsTotal != 0 {
			return fmt.Errorf("partition must degrade, not fail: %d request errors", r.ErrorsTotal)
		}
		return nil
	},
	"cluster-failover": func(r Report) error {
		if r.NetPartitionRefusals == 0 {
			return fmt.Errorf("no calls refused by the partition")
		}
		if r.Retries == 0 {
			return fmt.Errorf("failover never engaged the retry policy")
		}
		return nil
	},
	"cluster-stale-snapshot": func(r Report) error {
		if r.ShipsDropped == 0 {
			return fmt.Errorf("no snapshot ships dropped")
		}
		if r.StaleReplies == 0 {
			return fmt.Errorf("the stale node's replies were never rejected")
		}
		if r.ClusterEpoch != 2 {
			return fmt.Errorf("final map epoch %d, want 2 after the mid-run reshard", r.ClusterEpoch)
		}
		return nil
	},
	"cluster-flaky-net": func(r Report) error {
		if r.NetDrops+r.NetDelays == 0 {
			return fmt.Errorf("flaky network dropped and delayed nothing")
		}
		return nil
	},
}

// TestSuiteAllSeedsPass replays every suite scenario under each fixed
// seed: all invariants must hold, and each scenario must demonstrably
// inject its faults. The whole matrix runs on virtual time — wall
// clock stays in seconds.
func TestSuiteAllSeedsPass(t *testing.T) {
	for _, seed := range suiteSeeds {
		for _, sc := range Suite() {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", sc.Name, seed), func(t *testing.T) {
				t.Parallel()
				rep, err := Run(sc, seed)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				for _, v := range rep.Violations {
					t.Errorf("invariant %s violated: %s", v.Invariant, v.Detail)
				}
				if !rep.Passed {
					t.Fatalf("scenario failed under seed %d", seed)
				}
				if rep.Requests != sc.withDefaults().Queries*sc.withDefaults().Rounds {
					t.Errorf("replayed %d requests, want %d",
						rep.Requests, sc.withDefaults().Queries*sc.withDefaults().Rounds)
				}
				if check := effectChecks[sc.Name]; check != nil {
					if err := check(rep); err != nil {
						t.Errorf("scenario had no teeth: %v", err)
					}
				}
			})
		}
	}
}

// TestSeededBugIsCaught is the harness's own regression test: with the
// deliberately seeded DropPartialFlag bug (degraded results silently
// unflagged), the run MUST fail — specifically on the invariants that
// exist to catch it — and must pass again only when exactly those
// checks are disabled. If this test ever fails, the invariants have
// lost their teeth.
func TestSeededBugIsCaught(t *testing.T) {
	sc := Scenario{
		Name: "seeded-bug",
		Faults: Faults{
			SlowShardProb:   0.75,
			SlowShardDelay:  400 * time.Millisecond,
			DropPartialFlag: true,
		},
	}
	rep, err := Run(sc, 42)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Passed {
		t.Fatal("seeded silent-degradation bug was NOT caught — invariants have no teeth")
	}
	caught := map[string]int{}
	for _, v := range rep.Violations {
		caught[v.Invariant]++
	}
	if caught[InvNoSilentDegradation] == 0 {
		t.Errorf("bug not attributed to %s; violations: %v", InvNoSilentDegradation, caught)
	}
	for inv := range caught {
		if inv != InvNoSilentDegradation && inv != InvCachedAccurate {
			t.Errorf("unexpected collateral violation of %s", inv)
		}
	}

	// Disabling exactly the two checks that police result fidelity must
	// make the same buggy run pass — proof the detection lives in those
	// invariants and nowhere else.
	sc.DisableInvariants = []string{InvNoSilentDegradation, InvCachedAccurate}
	rep2, err := Run(sc, 42)
	if err != nil {
		t.Fatalf("Run (disabled): %v", err)
	}
	if !rep2.Passed {
		t.Errorf("run still failing with fidelity checks disabled: %+v", rep2.Violations)
	}
}

// TestInjectionDeterminism runs a serial, cache-free scenario twice
// under one seed: every outcome-affecting decision is a pure function
// of the seed, so the two reports must agree on all counts.
func TestInjectionDeterminism(t *testing.T) {
	sc := Scenario{
		Name:      "determinism",
		Workers:   1,  // serial: no scheduling freedom at all
		CacheSize: -1, // no cache: every request reaches the injector
		Queries:   80,
		// Resilience off: a hedged or retried shard attempt races its
		// cancellation in real scheduling, so whether an abandoned
		// attempt reaches the injection site — and bumps the injection
		// call counters compared here — is not a function of the seed.
		Resilience: noResilience(),
		Faults: Faults{
			EstimateDelayProb: 0.3,
			EstimateDelay:     400 * time.Millisecond, // > deadline: outcome is schedule-independent
			EstimateErrorProb: 0.2,
			EstimatePanicProb: 0.1,
			SlowShardProb:     0.5,
			SlowShardDelay:    400 * time.Millisecond,
		},
	}
	a, err := Run(sc, 1234)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(sc, 1234)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	type counts struct {
		Requests, Completed, Partials, Errors, Panics, Shed int
		InjDelay, InjErr, InjPanic, InjSlow                 int64
		Passed                                              bool
	}
	ca := counts{a.Requests, a.Completed, a.Partials, a.ErrorsTotal, a.PanicErrors, a.Shed,
		a.InjectedDelays, a.InjectedErrors, a.InjectedPanics, a.InjectedSlowShards, a.Passed}
	cb := counts{b.Requests, b.Completed, b.Partials, b.ErrorsTotal, b.PanicErrors, b.Shed,
		b.InjectedDelays, b.InjectedErrors, b.InjectedPanics, b.InjectedSlowShards, b.Passed}
	if ca != cb {
		t.Fatalf("same seed, different runs:\n  A: %+v\n  B: %+v", ca, cb)
	}
	// And a different seed must produce a different schedule (sanity
	// that the seed actually reaches the decisions).
	c, err := Run(sc, 4321)
	if err != nil {
		t.Fatalf("run C: %v", err)
	}
	if c.InjectedErrors == a.InjectedErrors && c.InjectedDelays == a.InjectedDelays &&
		c.InjectedPanics == a.InjectedPanics && c.Partials == a.Partials {
		t.Error("different seed produced an identical injection schedule (suspicious)")
	}
}

// TestReportJSON pins the report's JSON shape: the CLI and CI artifact
// depend on these fields.
func TestReportJSON(t *testing.T) {
	rep, err := Run(Scenario{Name: "json", Queries: 20, Rounds: 1, Workers: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "seed", "requests", "passed", "violations", "invariants_checked"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, raw)
		}
	}
}

// TestLookup covers suite lookup by name.
func TestLookup(t *testing.T) {
	if _, ok := Lookup("chaos"); !ok {
		t.Error("chaos scenario missing from suite")
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("unknown scenario should not resolve")
	}
}
