package faultsim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestClusterPartitionScenario replays the acceptance scenario — a
// coordinator over three workers with one partitioned — twice under
// one seed: every invariant (including snapshot-epoch-consistent)
// must hold, and both the reports and the observability artifacts
// must be byte-identical.
func TestClusterPartitionScenario(t *testing.T) {
	sc, ok := Lookup("cluster-partition")
	if !ok {
		t.Fatal("cluster-partition not in the suite")
	}
	var traceA, traceB, qlogA, qlogB bytes.Buffer
	a, err := RunTraced(sc, 99, &traceA, &qlogA)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	for _, v := range a.Violations {
		t.Errorf("invariant %s violated: %s", v.Invariant, v.Detail)
	}
	checked := false
	for _, inv := range a.InvariantsChecked {
		if inv == InvSnapshotEpochConsistent {
			checked = true
		}
	}
	if !checked {
		t.Errorf("cluster run did not check %s: %v", InvSnapshotEpochConsistent, a.InvariantsChecked)
	}
	if a.NetPartitionRefusals == 0 || a.Partials == 0 {
		t.Errorf("partition had no effect: %d refusals, %d partials", a.NetPartitionRefusals, a.Partials)
	}

	b, err := RunTraced(sc, 99, &traceB, &qlogB)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("same-seed cluster reports differ:\nA: %s\nB: %s", ja, jb)
	}
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Error("same-seed cluster span trees differ")
	}
	if !bytes.Equal(qlogA.Bytes(), qlogB.Bytes()) {
		t.Error("same-seed cluster query logs differ")
	}
}

// TestEpochInvariantScopedToCluster: single-node scenarios must not
// advertise the cluster-only epoch check.
func TestEpochInvariantScopedToCluster(t *testing.T) {
	rep, err := Run(Scenario{Name: "plain", ExpectClean: true, Resilience: noResilience()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range rep.InvariantsChecked {
		if inv == InvSnapshotEpochConsistent {
			t.Errorf("non-cluster run checked %s", inv)
		}
	}
}
