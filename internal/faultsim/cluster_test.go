package faultsim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestClusterPartitionScenario replays the acceptance scenario — a
// coordinator over three workers with one partitioned — twice under
// one seed: every invariant (including snapshot-epoch-consistent)
// must hold, and both the reports and the observability artifacts
// must be byte-identical.
func TestClusterPartitionScenario(t *testing.T) {
	sc, ok := Lookup("cluster-partition")
	if !ok {
		t.Fatal("cluster-partition not in the suite")
	}
	var traceA, traceB, qlogA, qlogB bytes.Buffer
	a, err := RunTraced(sc, 99, &traceA, &qlogA)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	for _, v := range a.Violations {
		t.Errorf("invariant %s violated: %s", v.Invariant, v.Detail)
	}
	checked := false
	for _, inv := range a.InvariantsChecked {
		if inv == InvSnapshotEpochConsistent {
			checked = true
		}
	}
	if !checked {
		t.Errorf("cluster run did not check %s: %v", InvSnapshotEpochConsistent, a.InvariantsChecked)
	}
	if a.NetPartitionRefusals == 0 || a.Partials == 0 {
		t.Errorf("partition had no effect: %d refusals, %d partials", a.NetPartitionRefusals, a.Partials)
	}

	b, err := RunTraced(sc, 99, &traceB, &qlogB)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("same-seed cluster reports differ:\nA: %s\nB: %s", ja, jb)
	}
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Error("same-seed cluster span trees differ")
	}
	if !bytes.Equal(qlogA.Bytes(), qlogB.Bytes()) {
		t.Error("same-seed cluster query logs differ")
	}
}

// runResyncScenario runs a self-healing scenario twice under one seed,
// asserting every invariant held (including converges-to-head-epoch)
// and that the reports and observability artifacts are byte-identical.
func runResyncScenario(t *testing.T, name string, seed int64) Report {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("%s not in the suite", name)
	}
	var traceA, traceB, qlogA, qlogB bytes.Buffer
	a, err := RunTraced(sc, seed, &traceA, &qlogA)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	for _, v := range a.Violations {
		t.Errorf("invariant %s violated: %s", v.Invariant, v.Detail)
	}
	checked := false
	for _, inv := range a.InvariantsChecked {
		if inv == InvConvergesToHead {
			checked = true
		}
	}
	if !checked {
		t.Errorf("resync run did not check %s: %v", InvConvergesToHead, a.InvariantsChecked)
	}

	b, err := RunTraced(sc, seed, &traceB, &qlogB)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("same-seed reports differ:\nA: %s\nB: %s", ja, jb)
	}
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Error("same-seed span trees differ")
	}
	if !bytes.Equal(qlogA.Bytes(), qlogB.Bytes()) {
		t.Error("same-seed query logs differ")
	}
	return a
}

// TestShipDropThenResync: a dropped snapshot ship to a single-replica
// node must be healed by the coordinator's anti-entropy re-ship, with
// the stale window visible in the stale-reply counter first.
func TestShipDropThenResync(t *testing.T) {
	rep := runResyncScenario(t, "ship-drop-then-resync", 99)
	if rep.ShipsDropped == 0 {
		t.Errorf("scenario dropped no ships")
	}
	if rep.ResyncReships == 0 {
		t.Errorf("reconciler re-shipped nothing; report: pulls=%d reships=%d", rep.ResyncPulls, rep.ResyncReships)
	}
	if rep.StaleReplies == 0 {
		t.Errorf("stale window never observed: the dropped ship should leave the node answering old-epoch")
	}
}

// TestWorkerCrashRestart: a worker killed after round 1 restarts from
// its state dir (serving its persisted epoch immediately — asserted
// inside the harness) and then pulls itself to head.
func TestWorkerCrashRestart(t *testing.T) {
	rep := runResyncScenario(t, "worker-crash-restart", 99)
	if rep.StatePersists == 0 {
		t.Errorf("stateful scenario persisted nothing")
	}
	if rep.ResyncPulls == 0 {
		t.Errorf("restarted worker pulled nothing; report: pulls=%d reships=%d", rep.ResyncPulls, rep.ResyncReships)
	}
}

// TestPartitionHeal: with a second replica hiding the partitioned
// node, the run stays clean while both resync directions converge the
// healed node to head.
func TestPartitionHeal(t *testing.T) {
	rep := runResyncScenario(t, "partition-heal", 99)
	if rep.Partials != 0 || rep.ErrorsTotal != 0 {
		t.Errorf("replicated heal was not clean: %d partials, %d errors", rep.Partials, rep.ErrorsTotal)
	}
	if rep.ResyncPulls+rep.ResyncReships == 0 {
		t.Errorf("no resync activity despite the missed ships")
	}
}

// TestEpochInvariantScopedToCluster: single-node scenarios must not
// advertise the cluster-only epoch check.
func TestEpochInvariantScopedToCluster(t *testing.T) {
	rep, err := Run(Scenario{Name: "plain", ExpectClean: true, Resilience: noResilience()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range rep.InvariantsChecked {
		if inv == InvSnapshotEpochConsistent {
			t.Errorf("non-cluster run checked %s", inv)
		}
	}
}
