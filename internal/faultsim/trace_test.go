package faultsim

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/trace"
)

// runTracedBytes runs the named suite scenario sequentially and
// returns its report plus both observability artifacts.
func runTracedBytes(t *testing.T, name string, seed int64) (Report, []byte, []byte) {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("suite scenario %q not found", name)
	}
	if sc.Workers > 1 {
		t.Fatalf("scenario %q is not sequential (Workers=%d); its traces are not byte-reproducible", name, sc.Workers)
	}
	var traces, qlog bytes.Buffer
	rep, err := RunTraced(sc, seed, &traces, &qlog)
	if err != nil {
		t.Fatalf("RunTraced(%q): %v", name, err)
	}
	return rep, traces.Bytes(), qlog.Bytes()
}

// TestSpanTreeDeterminism is the golden-trace gate: two runs of the
// same sequential scenario under the same seed must emit byte-identical
// span-tree NDJSON and byte-identical query logs. Any nondeterminism —
// a wall-clock timestamp, a map-ordered attribute, a racing span
// writer — breaks this immediately.
func TestSpanTreeDeterminism(t *testing.T) {
	const seed = 42
	rep1, tr1, ql1 := runTracedBytes(t, "breaker-trip", seed)
	rep2, tr2, ql2 := runTracedBytes(t, "breaker-trip", seed)

	if !rep1.Passed {
		t.Fatalf("breaker-trip run not passed: %+v", rep1.Violations)
	}
	if rep1.TracesRetained == 0 || len(tr1) == 0 {
		t.Fatalf("no traces retained (report %d, bytes %d)", rep1.TracesRetained, len(tr1))
	}
	if rep1.QueryLogRecords == 0 || len(ql1) == 0 {
		t.Fatalf("no query log records (report %d, bytes %d)", rep1.QueryLogRecords, len(ql1))
	}
	// The scenario degrades for two rounds, so the sampler must have
	// kept slow/degraded exemplars and the trees must show fallbacks.
	if rep1.TracesSampled == 0 {
		t.Error("degraded run sampled no traces")
	}
	if rep1.Partials == 0 {
		t.Error("breaker-trip produced no partials; the degradation path was not traced")
	}
	if !bytes.Contains(tr1, []byte("shard.scatter")) || !bytes.Contains(tr1, []byte("shard_quality")) {
		t.Error("trace NDJSON lacks scatter spans or merge decisions")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Errorf("span trees differ across same-seed runs:\nrun1 %d bytes, run2 %d bytes\nfirst divergence at byte %d",
			len(tr1), len(tr2), firstDiff(tr1, tr2))
	}
	if !bytes.Equal(ql1, ql2) {
		t.Errorf("query logs differ across same-seed runs:\nrun1 %d bytes, run2 %d bytes\nfirst divergence at byte %d",
			len(ql1), len(ql2), firstDiff(ql1, ql2))
	}
	if rep2.QueryLogRecords != rep1.QueryLogRecords {
		t.Errorf("query log record counts differ: %d vs %d", rep1.QueryLogRecords, rep2.QueryLogRecords)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestQueryLogReplay closes the loop the ISSUE requires: the NDJSON
// query log a run emits must join against the exact oracle into an
// internal/trace workload, survive a Save/Load round trip, and lose
// zero error-free records.
func TestQueryLogReplay(t *testing.T) {
	sc, ok := Lookup("breaker-trip")
	if !ok {
		t.Fatal("suite scenario breaker-trip not found")
	}
	st, err := run(sc, 7)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !st.report.Passed {
		t.Fatalf("run not passed: %+v", st.report.Violations)
	}

	recs, err := reqtrace.ReadQueryLog(bytes.NewReader(st.qlogBuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadQueryLog: %v", err)
	}
	if int64(len(recs)) != st.report.QueryLogRecords {
		t.Fatalf("read %d records, report says %d", len(recs), st.report.QueryLogRecords)
	}
	joinable := 0
	for _, r := range recs {
		if r.Err == "" {
			joinable++
		}
	}
	if joinable == 0 {
		t.Fatal("no error-free records to join")
	}

	oracle := exact.NewBruteForce(st.dist)
	joined, err := reqtrace.JoinTrace(recs, func(q geom.Rect) (int, error) {
		return oracle.Count(q), nil
	})
	if err != nil {
		t.Fatalf("JoinTrace: %v", err)
	}
	if joined.Len() != joinable {
		t.Fatalf("joined %d queries, want every error-free record (%d): records lost", joined.Len(), joinable)
	}

	path := filepath.Join(t.TempDir(), "replay.trace")
	if err := trace.Save(path, joined); err != nil {
		t.Fatalf("trace.Save: %v", err)
	}
	loaded, err := trace.Load(path)
	if err != nil {
		t.Fatalf("trace.Load: %v", err)
	}
	if loaded.Len() != joined.Len() {
		t.Fatalf("round trip lost records: saved %d, loaded %d", joined.Len(), loaded.Len())
	}
	for i := range joined.Queries {
		if loaded.Queries[i] != joined.Queries[i] {
			t.Fatalf("query %d changed in round trip: %v vs %v", i, loaded.Queries[i], joined.Queries[i])
		}
		if loaded.Actual[i] != joined.Actual[i] {
			t.Fatalf("actual %d changed in round trip: %d vs %d", i, loaded.Actual[i], joined.Actual[i])
		}
	}
}
