// Package faultsim is the deterministic simulation and fault-injection
// harness for the sharded estimation service. It exists because the
// failure paths of internal/shard and internal/serve — deadline expiry
// mid-scatter, shard build errors, cache/singleflight races, admission
// shedding, backend panics — are the behaviors a partition-based
// serving stack lives or dies on, and they deserve systematic,
// reproducible exercise rather than incidental coverage.
//
// Three pieces compose:
//
//   - a virtual clock (internal/vclock.Sim) threaded through the serve
//     and shard configs, so every timeout is simulated time and no test
//     sleeps for real;
//   - an Injector wrapping serve.Backend and the shard estimate/build
//     hooks, injecting delays, errors, panics and slow shards at
//     per-site probabilities derived from a scenario seed;
//   - a scenario Runner (scenario.go) that replays workload traces
//     against an in-process server under an injection schedule and
//     checks serving invariants, emitting a JSON Report.
//
// # Reproducibility
//
// Every injection decision is a pure function of (seed, fault site,
// request identity): the seeded *rand.Rand derives per-site salts once,
// and each call site hashes its salt with the request's table and
// query coordinates. Goroutine scheduling therefore cannot change
// *which* requests are faulted — rerunning a failing scenario with its
// reported seed replays the same injection schedule.
package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// ErrInjected marks a backend failure manufactured by the harness.
// Scenario invariants treat it as an expected, classified error.
var ErrInjected = errors.New("faultsim: injected backend error")

// ErrInjectedBuild marks an injected shard-build failure during a
// rebuild; AnalyzeContext surfaces it and the old shard set stays live.
var ErrInjectedBuild = errors.New("faultsim: injected shard build error")

// ErrInjectedShard marks an injected per-shard estimate failure. It
// fails individual shard-call attempts inside the scatter, feeding the
// retry policy and the shard's circuit breaker rather than the whole
// request.
var ErrInjectedShard = errors.New("faultsim: injected shard estimate error")

// Faults configures the injection schedule. All probabilities are in
// [0, 1]; zero disables the site. Durations are virtual time.
type Faults struct {
	// EstimateDelayProb delays a backend estimate by EstimateDelay
	// before it runs; a delay at or beyond the serving deadline turns
	// the request into a full uniformity-fallback Partial.
	EstimateDelayProb float64       `json:"estimate_delay_prob,omitempty"`
	EstimateDelay     time.Duration `json:"estimate_delay,omitempty"`
	// EstimateErrorProb fails a backend estimate with ErrInjected.
	EstimateErrorProb float64 `json:"estimate_error_prob,omitempty"`
	// EstimatePanicProb panics inside the backend estimate — the
	// singleflight layer must contain it (serve.ErrEstimatePanic).
	EstimatePanicProb float64 `json:"estimate_panic_prob,omitempty"`
	// AnalyzeErrorProb fails a backend rebuild outright.
	AnalyzeErrorProb float64 `json:"analyze_error_prob,omitempty"`
	// SlowShardProb marks each shard index slow for the whole run;
	// slow shards sleep SlowShardDelay (virtual) per estimate, so a
	// deadline shorter than the delay degrades exactly those shards to
	// their uniformity fallback.
	SlowShardProb  float64       `json:"slow_shard_prob,omitempty"`
	SlowShardDelay time.Duration `json:"slow_shard_delay,omitempty"`
	// SlowShards lists explicit shard indices that are slow for the
	// whole run (in addition to any SlowShardProb selections); they
	// sleep SlowShardDelay per estimate attempt.
	SlowShards []int `json:"slow_shards,omitempty"`
	// SlowShardFirstAttemptOnly restricts slowness to attempt 0 of each
	// shard call: retries and the hedge dodge it, modeling a hedge that
	// lands on a healthy replica. This is the knob behind the
	// hedging-caps-tail-latency scenario.
	SlowShardFirstAttemptOnly bool `json:"slow_shard_first_attempt_only,omitempty"`
	// ShardErrors lists shard indices whose estimate attempts all fail
	// with ErrInjectedShard, driving that shard's circuit breaker open
	// while the rest of the scatter keeps working.
	ShardErrors []int `json:"shard_errors,omitempty"`
	// BuildErrorProb fails individual shard builds during rebuilds.
	BuildErrorProb float64 `json:"build_error_prob,omitempty"`

	// DropPartialFlag is not a fault but a deliberately seeded BUG: it
	// clears Result.Partial on degraded results, making silent
	// degradation observable. It exists to prove the scenario
	// invariants have teeth — a run with this bug and any degradation
	// must fail the no-silent-degradation invariant (and, because the
	// unflagged result becomes cacheable, cached-accurate too).
	DropPartialFlag bool `json:"drop_partial_flag,omitempty"`
}

// fault sites, mixed into the per-site salts.
const (
	siteEstimateDelay = iota + 1
	siteEstimateError
	siteEstimatePanic
	siteAnalyzeError
	siteSlowShard
	siteBuildError
)

// Injector wraps a serve.Backend, injecting faults per Faults with
// seed-deterministic decisions. It also installs shard-level hooks
// (InstallShardFaults). Safe for concurrent use.
type Injector struct {
	backend serve.Backend
	clk     vclock.Clock
	faults  Faults
	salt    [8]uint64 // per-site salts, derived from the seed

	disabled atomic.Bool // bypass injection (post-run recovery probes)

	// Injection counters for the report.
	Delays      atomic.Int64
	Errors      atomic.Int64
	Panics      atomic.Int64
	SlowShards  atomic.Int64
	ShardErrs   atomic.Int64
	BuildFails  atomic.Int64
	AnalyzeErrs atomic.Int64

	buildAttempt atomic.Int64 // distinguishes successive rebuild attempts
}

// NewInjector wraps backend with the fault schedule. The seeded
// *rand.Rand derives one salt per fault site; every later decision is
// a pure hash of (salt, request identity), so scheduling never changes
// which requests are faulted.
func NewInjector(backend serve.Backend, clk vclock.Clock, seed int64, f Faults) *Injector {
	if clk == nil {
		clk = vclock.Real()
	}
	in := &Injector{backend: backend, clk: clk, faults: f}
	rng := rand.New(rand.NewSource(seed))
	for i := range in.salt {
		in.salt[i] = rng.Uint64() | 1 // never a zero salt
	}
	return in
}

// SetDisabled turns injection off (true) or back on (false); the
// runner disables faults for its post-run recovery probe.
func (in *Injector) SetDisabled(v bool) { in.disabled.Store(v) }

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mixer, plenty for fault-decision hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll maps (site salt, key parts) to a uniform [0, 1) float.
func (in *Injector) roll(site int, parts ...uint64) float64 {
	x := in.salt[site]
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return float64(x>>11) / float64(1<<53)
}

// rectKey folds a query rectangle and table into hash parts.
func rectKey(table string, q geom.Rect) []uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, c := range []byte(table) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return []uint64{
		h,
		math.Float64bits(q.MinX), math.Float64bits(q.MinY),
		math.Float64bits(q.MaxX), math.Float64bits(q.MaxY),
	}
}

// EstimateContext implements serve.Backend with injection around the
// wrapped backend's estimate.
func (in *Injector) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	if in.disabled.Load() {
		return in.backend.EstimateContext(ctx, table, q)
	}
	key := rectKey(table, q)
	f := in.faults
	if f.EstimateDelayProb > 0 && in.roll(siteEstimateDelay, key...) < f.EstimateDelayProb {
		in.Delays.Add(1)
		// A slow backend does not watch the caller's deadline — but the
		// injector wakes on ctx so simulated goroutines drain promptly;
		// the estimate below then runs against the already-dead context
		// and degrades exactly as a real overrun would.
		select {
		case <-in.clk.After(f.EstimateDelay):
		case <-ctx.Done():
		}
	}
	if f.EstimateErrorProb > 0 && in.roll(siteEstimateError, key...) < f.EstimateErrorProb {
		in.Errors.Add(1)
		return shard.Result{}, fmt.Errorf("%w: estimate %q %v", ErrInjected, table, q)
	}
	if f.EstimatePanicProb > 0 && in.roll(siteEstimatePanic, key...) < f.EstimatePanicProb {
		in.Panics.Add(1)
		panic(fmt.Sprintf("faultsim: injected panic: estimate %q %v", table, q))
	}
	res, err := in.backend.EstimateContext(ctx, table, q)
	if err == nil && f.DropPartialFlag && res.Partial {
		// Seeded bug: silent degradation. Scrubbing every degradation
		// marker (not just Partial) is what makes the bug silent — and
		// makes the degraded result cacheable.
		res.Partial = false
		res.ShardsMissed = 0
		res.Quality = shard.QualityFull
		res.FallbackShards = nil
	}
	return res, err
}

// AnalyzeContext implements serve.Backend with rebuild-failure
// injection.
func (in *Injector) AnalyzeContext(ctx context.Context, table string) error {
	attempt := in.buildAttempt.Add(1)
	if !in.disabled.Load() && in.faults.AnalyzeErrorProb > 0 &&
		in.roll(siteAnalyzeError, uint64(attempt)) < in.faults.AnalyzeErrorProb {
		in.AnalyzeErrs.Add(1)
		return fmt.Errorf("%w: analyze %q (attempt %d)", ErrInjected, table, attempt)
	}
	return in.backend.AnalyzeContext(ctx, table)
}

// Tables implements serve.Backend.
func (in *Injector) Tables() []string { return in.backend.Tables() }

// InstallShardFaults installs slow-shard, shard-error and
// build-failure hooks on sc. Slowness is decided once per shard index —
// a fixed subset of shards is slow for the whole run, modeling degraded
// replicas — and build failures are decided per (shard, rebuild
// attempt). The estimate hook sees the resilience attempt number, so
// first-attempt-only slowness lets retries and hedges dodge the fault.
func (in *Injector) InstallShardFaults(sc *shard.ShardedCatalog) {
	f := in.faults
	probSlow := f.SlowShardProb > 0 && f.SlowShardDelay > 0
	if probSlow || (len(f.SlowShards) > 0 && f.SlowShardDelay > 0) || len(f.ShardErrors) > 0 {
		slowIdx := make(map[int]bool, len(f.SlowShards))
		for _, i := range f.SlowShards {
			slowIdx[i] = true
		}
		errIdx := make(map[int]bool, len(f.ShardErrors))
		for _, i := range f.ShardErrors {
			errIdx[i] = true
		}
		sc.SetEstimateHook(func(idx, attempt int) error {
			if in.disabled.Load() {
				return nil
			}
			if errIdx[idx] {
				in.ShardErrs.Add(1)
				return fmt.Errorf("%w: shard %d (attempt %d)", ErrInjectedShard, idx, attempt)
			}
			slow := slowIdx[idx] || (probSlow && in.roll(siteSlowShard, uint64(idx)) < f.SlowShardProb)
			if slow && (!f.SlowShardFirstAttemptOnly || attempt == 0) {
				in.SlowShards.Add(1)
				in.clk.Sleep(f.SlowShardDelay)
			}
			return nil
		})
	}
	if f.BuildErrorProb > 0 {
		sc.SetBuildHook(func(idx int) error {
			if in.disabled.Load() {
				return nil
			}
			attempt := in.buildAttempt.Load()
			if in.roll(siteBuildError, uint64(idx), uint64(attempt)) < f.BuildErrorProb {
				in.BuildFails.Add(1)
				return fmt.Errorf("%w: shard %d (attempt %d)", ErrInjectedBuild, idx, attempt)
			}
			return nil
		})
	}
}
