package faultsim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/serve"
	"repro/internal/shard"
)

// CatalogBackend is a minimal serve.Backend over sharded statistics
// catalogs: one ShardedCatalog per table plus the distribution it was
// built from, so AnalyzeContext can rebuild. It is the backend the
// simulation harness serves — the full spatialdb engine is deliberately
// not involved, keeping scenarios focused on the shard/serve stack.
type CatalogBackend struct {
	mu     sync.RWMutex
	tables map[string]*backendTable
}

type backendTable struct {
	d  *dataset.Distribution
	sc *shard.ShardedCatalog
}

// NewCatalogBackend returns an empty backend; add tables with AddTable.
func NewCatalogBackend() *CatalogBackend {
	return &CatalogBackend{tables: make(map[string]*backendTable)}
}

// AddTable registers a built sharded catalog for name. The
// distribution is retained for rebuilds.
func (b *CatalogBackend) AddTable(name string, d *dataset.Distribution, sc *shard.ShardedCatalog) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tables[name] = &backendTable{d: d, sc: sc}
}

// Catalog returns the named table's sharded catalog (nil if absent),
// so scenarios can install shard-level fault hooks.
func (b *CatalogBackend) Catalog(name string) *shard.ShardedCatalog {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t := b.tables[name]
	if t == nil {
		return nil
	}
	return t.sc
}

// EstimateContext implements serve.Backend.
func (b *CatalogBackend) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	b.mu.RLock()
	t := b.tables[table]
	b.mu.RUnlock()
	if t == nil {
		return shard.Result{}, fmt.Errorf("faultsim: no table %q", table)
	}
	return t.sc.EstimateContext(ctx, q)
}

// AnalyzeContext implements serve.Backend by rebuilding the table's
// sharded statistics from its retained distribution.
func (b *CatalogBackend) AnalyzeContext(ctx context.Context, table string) error {
	b.mu.RLock()
	t := b.tables[table]
	b.mu.RUnlock()
	if t == nil {
		return fmt.Errorf("faultsim: no table %q", table)
	}
	return t.sc.AnalyzeContext(ctx, t.d)
}

// Status implements serve.StatusReporter: every table's analyzed
// state, shard count and per-shard breaker states, feeding the
// /healthz/ready endpoint.
func (b *CatalogBackend) Status() []serve.TableStatus {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]serve.TableStatus, 0, len(b.tables))
	for n, t := range b.tables {
		out = append(out, serve.TableStatus{
			Table:    n,
			Analyzed: t.sc.Analyzed(),
			Shards:   t.sc.Shards(),
			Breakers: t.sc.BreakerStates(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// Tables implements serve.Backend.
func (b *CatalogBackend) Tables() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.tables))
	for n := range b.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
