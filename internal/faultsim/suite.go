package faultsim

import (
	"time"

	"repro/internal/resilience"
)

// resilienceWithHedgeMax is the default resilience policy with the
// hedge delay capped, keeping the hedged scenario's tail bound tight
// even once the latency histogram has absorbed slow samples.
func resilienceWithHedgeMax(max time.Duration) resilience.Config {
	var c resilience.Config
	c.Hedge.Max = max
	return c
}

// resilienceNoHedge keeps breakers and retry-failover on but disables
// hedging. The faulted cluster scenarios use it: a hedge timer is
// armed inside a scatter goroutine, so its virtual deadline depends on
// whether the clock driver advanced a quantum before or after the
// goroutine reached resilience.Do — a real-scheduling race that moves
// the hedge's recorded fire time (and which replica's span lands in
// the trace) between same-seed runs. Remote calls do enough work per
// attempt to hit that window regularly, and the determinism gate
// diffs trace bytes, so cluster scenarios assert failover through
// retries (whose triggers are injected errors, decided by pure
// seed-derived rolls) and leave hedging to TestHedgingCapsTailLatency
// and the single-node hedged-slow-shard scenario.
func resilienceNoHedge() resilience.Config {
	var c resilience.Config
	c.Hedge.Disable = true
	return c
}

// noResilience turns the resilience layer off. The legacy multi-worker
// scenarios run without it: breaker trips and adaptive hedge delays
// depend on the order concurrent workers record outcomes, which
// Workers > 1 does not pin, and the suite report must stay
// byte-identical across runs of the same (scenario, seed). The
// dedicated Workers == 1 scenarios assert the resilience layer on a
// schedule-free trace instead, and TestResilienceUnderConcurrentChaos
// exercises it under real concurrency against the invariants alone.
func noResilience() resilience.Config {
	return resilience.Config{Disable: true}
}

// Suite returns the standard scenario set, from a fault-free baseline
// through a combined chaos run. Every injection decision and invariant
// verdict is deterministic in (scenario, seed); the aggregate counters
// of a multi-worker scenario (sheds under queue contention, TTL cache
// hits, virtual elapsed) additionally depend on goroutine scheduling,
// so byte-identical reports are guaranteed only for Workers == 1 —
// `cmd/faultsim -sequential` forces that, and CI's determinism job
// diffs two such runs. The full concurrent suite runs under -race for
// several fixed seeds (see cmd/faultsim and the Makefile faultsim
// target).
func Suite() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "no faults: every response complete, accurate, and clean",
			ExpectClean: true,
			Resilience:  noResilience(),
		},
		{
			Name:        "slow-shards",
			Description: "half the shards exceed the scatter deadline; degraded responses must be flagged Partial and never cached",
			Resilience:  noResilience(),
			Faults: Faults{
				SlowShardProb:  0.5,
				SlowShardDelay: 400 * time.Millisecond, // > EstimateTimeout
			},
		},
		{
			Name:        "backend-errors",
			Description: "estimates fail outright at 30%; errors must stay classified and never poison the cache",
			Resilience:  noResilience(),
			Faults: Faults{
				EstimateErrorProb: 0.3,
			},
		},
		{
			Name:        "panic-storm",
			Description: "backend panics mid-estimate; singleflight must contain every panic without stranding followers",
			Resilience:  noResilience(),
			Faults: Faults{
				EstimatePanicProb: 0.2,
			},
		},
		{
			Name:         "overload",
			Description:  "tiny admission gate, slow backend, no cache: load shedding under queue pressure",
			Workers:      16,
			MaxInFlight:  2,
			CacheSize:    -1,
			QueueTimeout: 10 * time.Millisecond,
			Resilience:   noResilience(),
			Faults: Faults{
				EstimateDelayProb: 0.5,
				EstimateDelay:     30 * time.Millisecond,
			},
		},
		{
			Name: "hedged-slow-shard",
			Description: "one shard slow on first attempts only; hedged calls dodge it and cap the tail latency " +
				"(compare p99 against the same scenario with hedging disabled)",
			Workers: 1, // sequential: virtual latencies are schedule-free
			Faults: Faults{
				SlowShards:                []int{1},
				SlowShardDelay:            120 * time.Millisecond, // < EstimateTimeout: unhedged runs stay full quality
				SlowShardFirstAttemptOnly: true,
			},
			Resilience: resilienceWithHedgeMax(50 * time.Millisecond),
		},
		{
			Name: "breaker-trip",
			Description: "one shard fails every attempt for two rounds; its breaker must open, requests must degrade " +
				"to coarse ladder answers (never uniform), and quality must return to full after the faults stop",
			Workers:     1, // sequential: half-open probes are not contended
			Rounds:      4,
			FaultRounds: 2,
			Faults: Faults{
				ShardErrors: []int{1},
			},
		},
		{
			Name: "ladder-recovery",
			Description: "one shard slower than the scatter deadline for two rounds; answers step down the degradation " +
				"ladder (coarse, not uniform) and climb back to full once the shard recovers",
			Workers:     1,
			Rounds:      4,
			FaultRounds: 2,
			Faults: Faults{
				SlowShards:     []int{1},
				SlowShardDelay: 400 * time.Millisecond, // > EstimateTimeout
			},
		},
		{
			Name:          "rebuild-failures",
			Description:   "mid-run ANALYZE with injected analyze and shard-build failures; the old shard set must keep serving",
			MidRunAnalyze: true,
			Resilience:    noResilience(),
			Faults: Faults{
				AnalyzeErrorProb: 0.5,
				BuildErrorProb:   0.5,
			},
		},
		{
			Name:        "cluster-baseline",
			Description: "distributed tier, no faults: coordinator + 3 workers, every response complete, accurate and clean",
			ExpectClean: true,
			Resilience:  noResilience(),
			Cluster:     &ClusterSpec{Nodes: 3, Replicas: 2},
		},
		{
			Name: "cluster-partition",
			Description: "one of 3 single-replica workers partitioned for two rounds; its shards must degrade to map " +
				"summaries (flagged Partial, never an error), epochs must stay consistent, and full quality must return after the heal",
			Workers:     1, // sequential: breaker trips are schedule-free
			Rounds:      4,
			FaultRounds: 2,
			Resilience:  resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 1,
				Net:      NetFaults{PartitionNodes: []int{1}},
			},
		},
		{
			Name: "cluster-failover",
			Description: "one worker partitioned but every shard has a second replica; retries fail over and the run " +
				"stays completely clean — replication hides a node loss",
			Workers:     1,
			ExpectClean: true,
			Resilience:  resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 2,
				Net:      NetFaults{PartitionNodes: []int{0}},
			},
		},
		{
			Name: "cluster-stale-snapshot",
			Description: "mid-run reshard whose snapshot ship to one node is dropped; the node keeps serving the old " +
				"epoch, the coordinator must reject those replies as stale and fail over to a fresh replica",
			Workers:       1,
			MidRunAnalyze: true,
			ExpectClean:   true,
			Resilience:    resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 2,
				Net:      NetFaults{ShipDropNodes: []int{0}},
			},
		},
		{
			Name: "cluster-flaky-net",
			Description: "20% call drops and 20% scatter-deadline-exceeding latency on the cluster network; degraded " +
				"responses must be flagged, cached answers accurate, and epochs never torn",
			Workers:    1,
			Resilience: resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 2,
				Net: NetFaults{
					DropProb:    0.2,
					LatencyProb: 0.2,
					Latency:     300 * time.Millisecond, // > EstimateTimeout
				},
			},
		},
		{
			Name: "ship-drop-then-resync",
			Description: "mid-run reshard whose ship to a single-replica node is dropped; the node serves stale until " +
				"the anti-entropy reconciler re-ships the gap, after which every node and the final rounds converge to head",
			Workers:       1,
			Rounds:        4,
			FaultRounds:   2,
			MidRunAnalyze: true,
			CacheSize:     -1, // resync must be observed by live traffic, not replayed cache hits
			Resilience:    resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 1,
				Resync:   "reconcile",
				Net:      NetFaults{ShipDropNodes: []int{1}},
			},
		},
		{
			Name: "worker-crash-restart",
			Description: "a stateful worker is crashed after round 1 and restarted from its state dir; it must serve its " +
				"persisted epoch immediately, then pull itself to head so the final rounds are fully converged",
			Workers:       1,
			Rounds:        4,
			FaultRounds:   2,
			MidRunAnalyze: true,
			CacheSize:     -1,
			Resilience:    resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:     3,
				Replicas:  1,
				Resync:    "pull",
				StateDirs: true,
				Net:       NetFaults{ShipDropNodes: []int{1}},
				Crash:     &CrashSpec{Node: 1, AfterRound: 1},
			},
		},
		{
			Name: "partition-heal",
			Description: "a replicated worker partitioned through a mid-run reshard misses its ships; after the heal " +
				"both resync directions (worker pull + reconciler re-ship) race benignly to converge it, and the run stays clean",
			Workers:       1,
			Rounds:        4,
			FaultRounds:   2,
			MidRunAnalyze: true,
			ExpectClean:   true,
			CacheSize:     -1,
			Resilience:    resilienceNoHedge(),
			Cluster: &ClusterSpec{
				Nodes:    3,
				Replicas: 2,
				Resync:   "both",
				Net:      NetFaults{PartitionNodes: []int{0}},
			},
		},
		{
			Name:          "chaos",
			Description:   "delays, errors, panics, slow shards, rebuild failures and queue pressure together",
			Workers:       12,
			MaxInFlight:   8,
			MidRunAnalyze: true,
			CacheTTL:      2 * time.Second,
			Resilience:    noResilience(),
			Faults: Faults{
				EstimateDelayProb: 0.2,
				EstimateDelay:     300 * time.Millisecond,
				EstimateErrorProb: 0.1,
				EstimatePanicProb: 0.05,
				SlowShardProb:     0.3,
				SlowShardDelay:    400 * time.Millisecond,
				AnalyzeErrorProb:  0.3,
				BuildErrorProb:    0.3,
			},
		},
	}
}

// Lookup returns the named suite scenario (ok == false if absent).
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Suite() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
