package faultsim

import "time"

// Suite returns the standard scenario set, from a fault-free baseline
// through a combined chaos run. Every scenario is deterministic in
// (scenario, seed); CI runs the full suite under -race for several
// fixed seeds (see cmd/faultsim and the Makefile faultsim target).
func Suite() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "no faults: every response complete, accurate, and clean",
			ExpectClean: true,
		},
		{
			Name:        "slow-shards",
			Description: "half the shards exceed the scatter deadline; degraded responses must be flagged Partial and never cached",
			Faults: Faults{
				SlowShardProb:  0.5,
				SlowShardDelay: 400 * time.Millisecond, // > EstimateTimeout
			},
		},
		{
			Name:        "backend-errors",
			Description: "estimates fail outright at 30%; errors must stay classified and never poison the cache",
			Faults: Faults{
				EstimateErrorProb: 0.3,
			},
		},
		{
			Name:        "panic-storm",
			Description: "backend panics mid-estimate; singleflight must contain every panic without stranding followers",
			Faults: Faults{
				EstimatePanicProb: 0.2,
			},
		},
		{
			Name:         "overload",
			Description:  "tiny admission gate, slow backend, no cache: load shedding under queue pressure",
			Workers:      16,
			MaxInFlight:  2,
			CacheSize:    -1,
			QueueTimeout: 10 * time.Millisecond,
			Faults: Faults{
				EstimateDelayProb: 0.5,
				EstimateDelay:     30 * time.Millisecond,
			},
		},
		{
			Name:          "rebuild-failures",
			Description:   "mid-run ANALYZE with injected analyze and shard-build failures; the old shard set must keep serving",
			MidRunAnalyze: true,
			Faults: Faults{
				AnalyzeErrorProb: 0.5,
				BuildErrorProb:   0.5,
			},
		},
		{
			Name:          "chaos",
			Description:   "delays, errors, panics, slow shards, rebuild failures and queue pressure together",
			Workers:       12,
			MaxInFlight:   8,
			MidRunAnalyze: true,
			CacheTTL:      2 * time.Second,
			Faults: Faults{
				EstimateDelayProb: 0.2,
				EstimateDelay:     300 * time.Millisecond,
				EstimateErrorProb: 0.1,
				EstimatePanicProb: 0.05,
				SlowShardProb:     0.3,
				SlowShardDelay:    400 * time.Millisecond,
				AnalyzeErrorProb:  0.3,
				BuildErrorProb:    0.3,
			},
		},
	}
}

// Lookup returns the named suite scenario (ok == false if absent).
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Suite() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
