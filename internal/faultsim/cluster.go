package faultsim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/vclock"
)

// ErrInjectedNet marks a coordinator→worker call or snapshot ship
// failed by the simulated network. The coordinator degrades the
// affected shard to its map summary rather than erroring the request,
// so this error never escapes a scenario — it only appears in call
// spans and injection counters.
var ErrInjectedNet = errors.New("faultsim: injected network fault")

// NetFaults is the network fault model for cluster scenarios. All
// probabilities are in [0, 1]; durations are virtual time. Faults
// apply only while injection is enabled — the initial snapshot ship
// during setup, the shutdown probes and the recovery probe all run on
// a healed network.
type NetFaults struct {
	// PartitionNodes lists node indices (into the cluster's node list)
	// unreachable while injection is on: every estimate call and
	// snapshot ship to them fails immediately.
	PartitionNodes []int `json:"partition_nodes,omitempty"`
	// DropProb drops individual coordinator→worker estimate calls,
	// decided per (node, shard, epoch, query) — a flaky link rather
	// than a dead node.
	DropProb float64 `json:"drop_prob,omitempty"`
	// LatencyProb delays individual estimate calls by Latency before
	// they reach the worker; a delay at or beyond the scatter deadline
	// degrades exactly the affected shards.
	LatencyProb float64       `json:"latency_prob,omitempty"`
	Latency     time.Duration `json:"latency,omitempty"`
	// ShipDropNodes lists node indices whose snapshot ships fail: a
	// reshard leaves them serving the previous epoch, exercising the
	// coordinator's stale-reply detection and replica failover.
	ShipDropNodes []int `json:"ship_drop_nodes,omitempty"`
}

// ClusterSpec switches a scenario to the distributed tier: the serve
// stack fronts a cluster.Coordinator fanning out to in-process worker
// nodes over the Local transport, wrapped in the network fault model.
// The shard-level fault knobs (SlowShards, ShardErrors, build hooks)
// do not apply in cluster mode — workers serve pure snapshot walks;
// use NetFaults instead.
type ClusterSpec struct {
	// Nodes is the worker node count. Default 3.
	Nodes int `json:"nodes,omitempty"`
	// Replicas is how many nodes hold each shard's snapshot. Default 1
	// (so a single partitioned node visibly degrades; set 2 to assert
	// failover instead).
	Replicas int `json:"replicas,omitempty"`
	// Net is the network fault schedule.
	Net NetFaults `json:"net"`
}

func (cs ClusterSpec) withDefaults() ClusterSpec {
	if cs.Nodes == 0 {
		cs.Nodes = 3
	}
	if cs.Replicas == 0 {
		cs.Replicas = 1
	}
	return cs
}

// network fault sites, mixed into the per-site salts.
const (
	siteNetDrop = iota
	siteNetLatency
)

// netTransport wraps a cluster.Transport with seed-deterministic
// network faults on the virtual clock: partitions, per-call drops and
// latency, and snapshot-ship failures. Decisions are pure functions of
// (seed, site, node, request identity), so goroutine scheduling never
// changes which calls are faulted.
type netTransport struct {
	inner cluster.Transport
	clk   vclock.Clock
	nf    NetFaults
	salt  [2]uint64

	partitioned map[cluster.NodeID]bool
	shipDrop    map[cluster.NodeID]bool

	disabled atomic.Bool

	// Injection counters for the report.
	PartitionRefusals atomic.Int64
	Drops             atomic.Int64
	Delays            atomic.Int64
	ShipDrops         atomic.Int64
}

func newNetTransport(inner cluster.Transport, clk vclock.Clock, seed int64, nf NetFaults, nodes []cluster.NodeID) *netTransport {
	nt := &netTransport{
		inner:       inner,
		clk:         clk,
		nf:          nf,
		partitioned: make(map[cluster.NodeID]bool, len(nf.PartitionNodes)),
		shipDrop:    make(map[cluster.NodeID]bool, len(nf.ShipDropNodes)),
	}
	for i := range nt.salt {
		// Site salts diverge from the Injector's (which consumes the
		// seed through math/rand) by construction.
		nt.salt[i] = splitmix64(uint64(seed)+uint64(i)*0x9e3779b97f4a7c15) | 1
	}
	for _, i := range nf.PartitionNodes {
		if i >= 0 && i < len(nodes) {
			nt.partitioned[nodes[i]] = true
		}
	}
	for _, i := range nf.ShipDropNodes {
		if i >= 0 && i < len(nodes) {
			nt.shipDrop[nodes[i]] = true
		}
	}
	return nt
}

// SetDisabled turns network faults off (true) or back on (false).
func (nt *netTransport) SetDisabled(v bool) { nt.disabled.Store(v) }

// roll maps (site salt, key parts) to a uniform [0, 1) float.
func (nt *netTransport) roll(site int, parts ...uint64) float64 {
	x := nt.salt[site]
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return float64(x>>11) / float64(1<<53)
}

// callKey folds one shard call's identity into hash parts: the target
// node, the shard coordinate and the query rectangle.
func callKey(node cluster.NodeID, req cluster.EstimateRequest) []uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, c := range []byte(node) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	parts := []uint64{h, uint64(req.Shard), req.Epoch}
	return append(parts, rectKey(req.Table, req.Query)...)
}

// Estimate implements cluster.Transport with network faults around the
// wrapped transport.
func (nt *netTransport) Estimate(ctx context.Context, node cluster.NodeID, req cluster.EstimateRequest) (cluster.EstimateReply, error) {
	if nt.disabled.Load() {
		return nt.inner.Estimate(ctx, node, req)
	}
	if nt.partitioned[node] {
		nt.PartitionRefusals.Add(1)
		return cluster.EstimateReply{}, fmt.Errorf("%w: node %s partitioned", ErrInjectedNet, node)
	}
	key := callKey(node, req)
	if nt.nf.DropProb > 0 && nt.roll(siteNetDrop, key...) < nt.nf.DropProb {
		nt.Drops.Add(1)
		return cluster.EstimateReply{}, fmt.Errorf("%w: call to %s dropped", ErrInjectedNet, node)
	}
	if nt.nf.LatencyProb > 0 && nt.nf.Latency > 0 &&
		nt.roll(siteNetLatency, key...) < nt.nf.LatencyProb {
		nt.Delays.Add(1)
		// The network does not watch the caller's deadline, but waking
		// on ctx drains simulated goroutines promptly; the inner call
		// then runs against the already-dead context.
		select {
		case <-nt.clk.After(nt.nf.Latency):
		case <-ctx.Done():
		}
	}
	return nt.inner.Estimate(ctx, node, req)
}

// Ship implements cluster.Transport: partitioned and ship-drop nodes
// never receive the snapshot, so they keep serving their previous
// epoch — the stale-snapshot model.
func (nt *netTransport) Ship(ctx context.Context, node cluster.NodeID, snap *cluster.Snapshot) (int, error) {
	if nt.disabled.Load() {
		return nt.inner.Ship(ctx, node, snap)
	}
	if nt.partitioned[node] || nt.shipDrop[node] {
		nt.ShipDrops.Add(1)
		return 0, fmt.Errorf("%w: ship to %s dropped", ErrInjectedNet, node)
	}
	return nt.inner.Ship(ctx, node, snap)
}

// setupCluster builds the distributed backend: worker nodes behind the
// Local transport, the network fault model, and a coordinator whose
// shard policy mirrors the single-node scenarios. The initial build
// and snapshot ship run with network faults disabled — partitions
// model serving-time failures, and every worker must start holding a
// live snapshot so the post-heal recovery invariant is meaningful.
func (st *runState) setupCluster() error {
	cs := st.sc.Cluster.withDefaults()
	local := cluster.NewLocal()
	nodes := make([]cluster.NodeID, cs.Nodes)
	for i := range nodes {
		nodes[i] = cluster.NodeID(fmt.Sprintf("node-%d", i))
		w := cluster.NewWorker(cluster.WorkerConfig{ID: nodes[i]})
		w.EnableTelemetry(st.reg)
		local.Register(nodes[i], w)
		st.workers = append(st.workers, w)
	}
	st.net = newNetTransport(local, st.sim, st.seed, cs.Net, nodes)
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Nodes:     nodes,
		Transport: st.net,
		Replicas:  cs.Replicas,
		Shard:     st.shardConfig(st.sc.Resilience),
	})
	if err != nil {
		return fmt.Errorf("faultsim: coordinator: %w", err)
	}
	coord.EnableTelemetry(st.reg)
	coord.AddTable(simTable, st.dist)
	st.net.SetDisabled(true)
	if err := coord.AnalyzeContext(context.Background(), simTable); err != nil {
		return fmt.Errorf("faultsim: cluster analyze: %w", err)
	}
	st.net.SetDisabled(false)
	st.coord = coord
	st.backend = coord
	return nil
}

// checkClusterEpochs is the snapshot-epoch-consistent invariant: every
// completed cluster response must be derived from exactly one
// partition-map epoch. It re-derives the verdict from the span trees,
// independently of the coordinator's own stale-reply rejection: the
// response's Epoch must equal the scatter span's epoch attribute, and
// every shard the merge graded full must show at least one worker
// answer served from that same epoch. Degraded shards are exempt — a
// map summary is by construction the map's own epoch.
func (st *runState) checkClusterEpochs() {
	if st.coord == nil || st.disabled[InvSnapshotEpochConsistent] {
		return
	}
	final := st.coord.Epoch(simTable)
	byID := make(map[string]*outcome, len(st.outcomes))
	st.mu.Lock()
	for i := range st.outcomes {
		o := &st.outcomes[i]
		byID[fmt.Sprintf("q%03d-r%d", o.idx, o.round)] = o
	}
	st.mu.Unlock()

	for _, tr := range st.tracer.Recent() {
		o := byID[tr.RequestID()]
		if o == nil || o.err != nil {
			continue
		}
		if o.resp.Epoch < 1 || o.resp.Epoch > final {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: response epoch %d outside published range [1, %d]",
				tr.RequestID(), o.resp.Epoch, final)
			continue
		}
		scatters := tr.Root().Find("cluster.scatter")
		if len(scatters) == 0 {
			// Cache hit or shared-flight follower: no scatter of its own.
			continue
		}
		scat := scatters[len(scatters)-1]
		epochAttr, ok := scat.Attr("epoch")
		if !ok {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: cluster.scatter span has no epoch attribute", tr.RequestID())
			continue
		}
		want := fmt.Sprintf("%d", o.resp.Epoch)
		if epochAttr != want {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: scatter ran under map epoch %s but the response reports epoch %d — torn swap",
				tr.RequestID(), epochAttr, o.resp.Epoch)
			continue
		}
		for _, call := range scat.Find("cluster.call") {
			ql, _ := call.Attr("quality")
			if ql != "full" {
				continue
			}
			served := false
			for _, wsp := range call.Find("worker.estimate") {
				if v, ok := wsp.Attr("epoch_served"); ok && v == epochAttr {
					served = true
					break
				}
			}
			if !served {
				shardIdx, _ := call.Attr("shard")
				st.violate(InvSnapshotEpochConsistent,
					"trace %s: shard %s graded full with no worker answer from map epoch %s",
					tr.RequestID(), shardIdx, epochAttr)
			}
		}
	}
}
