package faultsim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// ErrInjectedNet marks a coordinator→worker call or snapshot ship
// failed by the simulated network. The coordinator degrades the
// affected shard to its map summary rather than erroring the request,
// so this error never escapes a scenario — it only appears in call
// spans and injection counters.
var ErrInjectedNet = errors.New("faultsim: injected network fault")

// NetFaults is the network fault model for cluster scenarios. All
// probabilities are in [0, 1]; durations are virtual time. Faults
// apply only while injection is enabled — the initial snapshot ship
// during setup, the shutdown probes and the recovery probe all run on
// a healed network.
type NetFaults struct {
	// PartitionNodes lists node indices (into the cluster's node list)
	// unreachable while injection is on: every estimate call and
	// snapshot ship to them fails immediately.
	PartitionNodes []int `json:"partition_nodes,omitempty"`
	// DropProb drops individual coordinator→worker estimate calls,
	// decided per (node, shard, epoch, query) — a flaky link rather
	// than a dead node.
	DropProb float64 `json:"drop_prob,omitempty"`
	// LatencyProb delays individual estimate calls by Latency before
	// they reach the worker; a delay at or beyond the scatter deadline
	// degrades exactly the affected shards.
	LatencyProb float64       `json:"latency_prob,omitempty"`
	Latency     time.Duration `json:"latency,omitempty"`
	// ShipDropNodes lists node indices whose snapshot ships fail: a
	// reshard leaves them serving the previous epoch, exercising the
	// coordinator's stale-reply detection and replica failover.
	ShipDropNodes []int `json:"ship_drop_nodes,omitempty"`
}

// ClusterSpec switches a scenario to the distributed tier: the serve
// stack fronts a cluster.Coordinator fanning out to in-process worker
// nodes over the Local transport, wrapped in the network fault model.
// The shard-level fault knobs (SlowShards, ShardErrors, build hooks)
// do not apply in cluster mode — workers serve pure snapshot walks;
// use NetFaults instead.
type ClusterSpec struct {
	// Nodes is the worker node count. Default 3.
	Nodes int `json:"nodes,omitempty"`
	// Replicas is how many nodes hold each shard's snapshot. Default 1
	// (so a single partitioned node visibly degrades; set 2 to assert
	// failover instead).
	Replicas int `json:"replicas,omitempty"`
	// Net is the network fault schedule.
	Net NetFaults `json:"net"`
	// Resync selects the self-healing passes the runner drives
	// synchronously when injection is disabled at the FaultRounds
	// boundary: "reconcile" (coordinator anti-entropy re-ships),
	// "pull" (worker manifest-driven pulls), or "both". Empty runs no
	// resync — the PR-8 behavior. The passes run synchronously rather
	// than as background loops so same-seed runs stay byte-identical
	// (a loop's timers race the clock driver; see resilienceNoHedge).
	// Scenarios with Resync set are additionally checked against the
	// converges-to-head-epoch invariant.
	Resync string `json:"resync,omitempty"`
	// StateDirs gives every worker a run-scoped temp state directory,
	// so installs persist and a crash-restarted worker reloads them.
	StateDirs bool `json:"state_dirs,omitempty"`
	// Crash, when set, tears one worker down after the given round and
	// restarts it immediately as a fresh Worker under the same NodeID
	// (reloading its state dir when StateDirs is on) — the
	// crash-restart model.
	Crash *CrashSpec `json:"crash,omitempty"`
}

// CrashSpec schedules one worker crash-restart.
type CrashSpec struct {
	// Node indexes the cluster's node list.
	Node int `json:"node"`
	// AfterRound crashes the worker after this round completes
	// (0-based). The restart happens before the next round's traffic.
	AfterRound int `json:"after_round"`
}

func (cs ClusterSpec) withDefaults() ClusterSpec {
	if cs.Nodes == 0 {
		cs.Nodes = 3
	}
	if cs.Replicas == 0 {
		cs.Replicas = 1
	}
	return cs
}

// network fault sites, mixed into the per-site salts.
const (
	siteNetDrop = iota
	siteNetLatency
)

// netTransport wraps a cluster.Transport with seed-deterministic
// network faults on the virtual clock: partitions, per-call drops and
// latency, and snapshot-ship failures. Decisions are pure functions of
// (seed, site, node, request identity), so goroutine scheduling never
// changes which calls are faulted.
type netTransport struct {
	inner cluster.Transport
	clk   vclock.Clock
	nf    NetFaults
	salt  [2]uint64

	partitioned map[cluster.NodeID]bool
	shipDrop    map[cluster.NodeID]bool

	disabled atomic.Bool

	// Injection counters for the report.
	PartitionRefusals atomic.Int64
	Drops             atomic.Int64
	Delays            atomic.Int64
	ShipDrops         atomic.Int64
}

func newNetTransport(inner cluster.Transport, clk vclock.Clock, seed int64, nf NetFaults, nodes []cluster.NodeID) *netTransport {
	nt := &netTransport{
		inner:       inner,
		clk:         clk,
		nf:          nf,
		partitioned: make(map[cluster.NodeID]bool, len(nf.PartitionNodes)),
		shipDrop:    make(map[cluster.NodeID]bool, len(nf.ShipDropNodes)),
	}
	for i := range nt.salt {
		// Site salts diverge from the Injector's (which consumes the
		// seed through math/rand) by construction.
		nt.salt[i] = splitmix64(uint64(seed)+uint64(i)*0x9e3779b97f4a7c15) | 1
	}
	for _, i := range nf.PartitionNodes {
		if i >= 0 && i < len(nodes) {
			nt.partitioned[nodes[i]] = true
		}
	}
	for _, i := range nf.ShipDropNodes {
		if i >= 0 && i < len(nodes) {
			nt.shipDrop[nodes[i]] = true
		}
	}
	return nt
}

// SetDisabled turns network faults off (true) or back on (false).
func (nt *netTransport) SetDisabled(v bool) { nt.disabled.Store(v) }

// roll maps (site salt, key parts) to a uniform [0, 1) float.
func (nt *netTransport) roll(site int, parts ...uint64) float64 {
	x := nt.salt[site]
	for _, p := range parts {
		x = splitmix64(x ^ p)
	}
	return float64(x>>11) / float64(1<<53)
}

// callKey folds one shard call's identity into hash parts: the target
// node, the shard coordinate and the query rectangle.
func callKey(node cluster.NodeID, req cluster.EstimateRequest) []uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, c := range []byte(node) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	parts := []uint64{h, uint64(req.Shard), req.Epoch}
	return append(parts, rectKey(req.Table, req.Query)...)
}

// Estimate implements cluster.Transport with network faults around the
// wrapped transport.
func (nt *netTransport) Estimate(ctx context.Context, node cluster.NodeID, req cluster.EstimateRequest) (cluster.EstimateReply, error) {
	if nt.disabled.Load() {
		return nt.inner.Estimate(ctx, node, req)
	}
	if nt.partitioned[node] {
		nt.PartitionRefusals.Add(1)
		return cluster.EstimateReply{}, fmt.Errorf("%w: node %s partitioned", ErrInjectedNet, node)
	}
	key := callKey(node, req)
	if nt.nf.DropProb > 0 && nt.roll(siteNetDrop, key...) < nt.nf.DropProb {
		nt.Drops.Add(1)
		return cluster.EstimateReply{}, fmt.Errorf("%w: call to %s dropped", ErrInjectedNet, node)
	}
	if nt.nf.LatencyProb > 0 && nt.nf.Latency > 0 &&
		nt.roll(siteNetLatency, key...) < nt.nf.LatencyProb {
		nt.Delays.Add(1)
		// The network does not watch the caller's deadline, but waking
		// on ctx drains simulated goroutines promptly. A call whose
		// context died mid-delay never reaches the worker: the caller
		// has abandoned it, and letting it run late would stamp
		// worker-side spans at a schedule-dependent virtual time.
		select {
		case <-nt.clk.After(nt.nf.Latency):
		case <-ctx.Done():
			return cluster.EstimateReply{}, ctx.Err()
		}
	}
	return nt.inner.Estimate(ctx, node, req)
}

// Status implements cluster.Transport: a partitioned node's inventory
// is unreadable, so the anti-entropy reconciler sees it as unreachable
// until the heal — it cannot re-ship through a partition.
func (nt *netTransport) Status(ctx context.Context, node cluster.NodeID) (cluster.NodeStatus, error) {
	if !nt.disabled.Load() && nt.partitioned[node] {
		nt.PartitionRefusals.Add(1)
		return cluster.NodeStatus{}, fmt.Errorf("%w: node %s partitioned", ErrInjectedNet, node)
	}
	return nt.inner.Status(ctx, node)
}

// Ship implements cluster.Transport: partitioned and ship-drop nodes
// never receive the snapshot, so they keep serving their previous
// epoch — the stale-snapshot model.
func (nt *netTransport) Ship(ctx context.Context, node cluster.NodeID, snap *cluster.Snapshot) (int, error) {
	if nt.disabled.Load() {
		return nt.inner.Ship(ctx, node, snap)
	}
	if nt.partitioned[node] || nt.shipDrop[node] {
		nt.ShipDrops.Add(1)
		return 0, fmt.Errorf("%w: ship to %s dropped", ErrInjectedNet, node)
	}
	return nt.inner.Ship(ctx, node, snap)
}

// setupCluster builds the distributed backend: worker nodes behind the
// Local transport, the network fault model, and a coordinator whose
// shard policy mirrors the single-node scenarios. The initial build
// and snapshot ship run with network faults disabled — partitions
// model serving-time failures, and every worker must start holding a
// live snapshot so the post-heal recovery invariant is meaningful.
func (st *runState) setupCluster() error {
	cs := st.sc.Cluster.withDefaults()
	if cs.StateDirs {
		root, err := os.MkdirTemp("", "faultsim-state-")
		if err != nil {
			return fmt.Errorf("faultsim: state root: %w", err)
		}
		st.stateRoot = root
	}
	st.local = cluster.NewLocal()
	nodes := make([]cluster.NodeID, cs.Nodes)
	for i := range nodes {
		nodes[i] = cluster.NodeID(fmt.Sprintf("node-%d", i))
		cfg := cluster.WorkerConfig{
			ID:     nodes[i],
			Clock:  st.sim,
			Client: coordClient{st: st},
		}
		if cs.StateDirs {
			cfg.StateDir = filepath.Join(st.stateRoot, string(nodes[i]))
			// No fsync under the virtual clock: the driver pumps virtual
			// time whenever the run stalls in real time with a timer armed
			// (e.g. the analyze timeout during ships), so a multi-ms disk
			// sync would make sim-time totals depend on disk latency.
			cfg.StateNoSync = true
		}
		w := cluster.NewWorker(cfg)
		w.EnableTelemetry(st.reg)
		st.local.Register(nodes[i], w)
		st.workers = append(st.workers, w)
		st.workerCfgs = append(st.workerCfgs, cfg)
	}
	st.net = newNetTransport(st.local, st.sim, st.seed, cs.Net, nodes)
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Nodes:     nodes,
		Transport: st.net,
		Replicas:  cs.Replicas,
		Shard:     st.shardConfig(st.sc.Resilience),
	})
	if err != nil {
		return fmt.Errorf("faultsim: coordinator: %w", err)
	}
	coord.EnableTelemetry(st.reg)
	coord.AddTable(simTable, st.dist)
	st.net.SetDisabled(true)
	if err := coord.AnalyzeContext(context.Background(), simTable); err != nil {
		return fmt.Errorf("faultsim: cluster analyze: %w", err)
	}
	st.net.SetDisabled(false)
	st.coord = coord
	st.backend = coord
	return nil
}

// coordClient lets workers pull from the run's coordinator, resolved
// at call time — workers are built before the coordinator exists.
type coordClient struct{ st *runState }

// Manifest implements cluster.CoordinatorClient.
func (c coordClient) Manifest(ctx context.Context) (cluster.Manifest, error) {
	if err := ctx.Err(); err != nil {
		return cluster.Manifest{}, err
	}
	return c.st.coord.Manifest(), nil
}

// Fetch implements cluster.CoordinatorClient.
func (c coordClient) Fetch(ctx context.Context, table string, shard int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.st.coord.FetchEncoded(table, shard)
}

// crashRestart models a worker process crash and immediate restart: a
// fresh Worker replaces the old instance under the same NodeID and, if
// durable state is on, reloads its state dir. The restarted worker
// must be able to serve immediately from persisted snapshots — before
// any pull completes — which is asserted here with a direct probe.
func (st *runState) crashRestart(idx int) {
	if idx < 0 || idx >= len(st.workers) {
		return
	}
	cfg := st.workerCfgs[idx]
	w := cluster.NewWorker(cfg)
	w.EnableTelemetry(st.reg)
	if cfg.StateDir != "" {
		loaded, _, err := w.LoadState()
		if err != nil {
			st.violate(InvConvergesToHead, "restart %s: load state: %v", cfg.ID, err)
		}
		if loaded == 0 {
			st.violate(InvConvergesToHead,
				"restarted worker %s reloaded no persisted snapshots — it cannot serve until a pull completes", cfg.ID)
		} else {
			// Serve-immediately probe: the first held snapshot must answer
			// at its persisted epoch with no network involved.
			s := w.Status()[0]
			reply, err := w.Estimate(context.Background(), cluster.EstimateRequest{
				Table: s.Table, Shard: s.Shard, Epoch: s.Epoch, Query: st.queries[0],
			})
			if err != nil {
				st.violate(InvConvergesToHead, "restarted worker %s probe: %v", cfg.ID, err)
			} else if reply.Epoch != s.Epoch {
				st.violate(InvConvergesToHead,
					"restarted worker %s probe served epoch %d, persisted %d", cfg.ID, reply.Epoch, s.Epoch)
			}
		}
	}
	st.local.Register(cfg.ID, w)
	st.workers[idx] = w
}

// resyncCluster drives the scenario's self-healing passes
// synchronously (see ClusterSpec.Resync for why not background
// loops). Mode "reconcile" exercises the coordinator's anti-entropy
// re-ships alone, "pull" the workers' manifest-driven catch-up alone,
// "both" the full convergent protocol.
func (st *runState) resyncCluster() {
	if st.coord == nil || st.sc.Cluster == nil {
		return
	}
	mode := st.sc.Cluster.Resync
	ctx := context.Background()
	if mode == "reconcile" || mode == "both" {
		st.coord.ReconcileOnce(ctx)
	}
	if mode == "pull" || mode == "both" {
		for _, w := range st.workers {
			if _, err := w.ResyncOnce(ctx); err != nil {
				st.violate(InvConvergesToHead, "worker %s pull resync: %v", w.ID(), err)
			}
		}
	}
}

// checkClusterConvergence is the converges-to-head-epoch invariant,
// checked for cluster scenarios that enable resync: after the heal and
// resync passes, (a) every replica named by the final partition map
// must hold its shard at the head epoch (worker-status-derived), and
// (b) every final-round non-cached response must be full quality at
// the head epoch, with its scatter span stamped accordingly
// (span-tree-derived) — healing that does not reach served traffic is
// no healing at all.
func (st *runState) checkClusterConvergence() {
	if st.coord == nil || st.sc.Cluster == nil || st.sc.Cluster.Resync == "" ||
		st.disabled[InvConvergesToHead] {
		return
	}
	head := st.coord.Epoch(simTable)
	pm := st.coord.Map(simTable)
	if pm == nil {
		st.violate(InvConvergesToHead, "no partition map published")
		return
	}
	byID := make(map[cluster.NodeID]*cluster.Worker, len(st.workers))
	for _, w := range st.workers {
		byID[w.ID()] = w
	}
	for i := range pm.Shards {
		route := &pm.Shards[i]
		for _, node := range route.Nodes {
			w := byID[node]
			if w == nil {
				st.violate(InvConvergesToHead, "map routes shard %d to unknown node %s", route.Index, node)
				continue
			}
			got := uint64(0)
			for _, s := range w.Status() {
				if s.Table == simTable && s.Shard == route.Index {
					got = s.Epoch
					break
				}
			}
			if got != head {
				st.violate(InvConvergesToHead,
					"node %s holds %s/%d at epoch %d, head is %d — resync did not converge",
					node, simTable, route.Index, got, head)
			}
		}
	}
	// Span-derived half: the last round runs post-heal when FaultRounds
	// bounds the storm; its traffic must be served from the head epoch
	// at full quality.
	if st.sc.FaultRounds <= 0 || st.sc.Rounds <= st.sc.FaultRounds {
		return
	}
	lastSuffix := fmt.Sprintf("-r%d", st.sc.Rounds-1)
	wantEpoch := fmt.Sprintf("%d", head)
	for _, tr := range st.tracer.Recent() {
		id := tr.RequestID()
		if !strings.HasSuffix(id, lastSuffix) {
			continue
		}
		o := tr.Outcome()
		if o.Err != "" {
			st.violate(InvConvergesToHead, "trace %s: post-heal request errored: %s", id, o.Err)
			continue
		}
		scatters := tr.Root().Find("cluster.scatter")
		if len(scatters) == 0 {
			continue // cache hit or shared-flight follower
		}
		scat := scatters[len(scatters)-1]
		if epochAttr, ok := scat.Attr("epoch"); !ok || epochAttr != wantEpoch {
			st.violate(InvConvergesToHead,
				"trace %s: post-heal scatter ran under epoch %s, head is %s", id, epochAttr, wantEpoch)
		}
		if o.Quality != shard.QualityFull.String() {
			st.violate(InvConvergesToHead,
				"trace %s: post-heal response graded %q, want full — the cluster did not heal", id, o.Quality)
		}
	}
}

// checkClusterEpochs is the snapshot-epoch-consistent invariant: every
// completed cluster response must be derived from exactly one
// partition-map epoch. It re-derives the verdict from the span trees,
// independently of the coordinator's own stale-reply rejection: the
// response's Epoch must equal the scatter span's epoch attribute, and
// every shard the merge graded full must show at least one worker
// answer served from that same epoch. Degraded shards are exempt — a
// map summary is by construction the map's own epoch.
func (st *runState) checkClusterEpochs() {
	if st.coord == nil || st.disabled[InvSnapshotEpochConsistent] {
		return
	}
	final := st.coord.Epoch(simTable)
	byID := make(map[string]*outcome, len(st.outcomes))
	st.mu.Lock()
	for i := range st.outcomes {
		o := &st.outcomes[i]
		byID[fmt.Sprintf("q%03d-r%d", o.idx, o.round)] = o
	}
	st.mu.Unlock()

	for _, tr := range st.tracer.Recent() {
		o := byID[tr.RequestID()]
		if o == nil || o.err != nil {
			continue
		}
		if o.resp.Epoch < 1 || o.resp.Epoch > final {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: response epoch %d outside published range [1, %d]",
				tr.RequestID(), o.resp.Epoch, final)
			continue
		}
		scatters := tr.Root().Find("cluster.scatter")
		if len(scatters) == 0 {
			// Cache hit or shared-flight follower: no scatter of its own.
			continue
		}
		scat := scatters[len(scatters)-1]
		epochAttr, ok := scat.Attr("epoch")
		if !ok {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: cluster.scatter span has no epoch attribute", tr.RequestID())
			continue
		}
		want := fmt.Sprintf("%d", o.resp.Epoch)
		if epochAttr != want {
			st.violate(InvSnapshotEpochConsistent,
				"trace %s: scatter ran under map epoch %s but the response reports epoch %d — torn swap",
				tr.RequestID(), epochAttr, o.resp.Epoch)
			continue
		}
		for _, call := range scat.Find("cluster.call") {
			ql, _ := call.Attr("quality")
			if ql != "full" {
				continue
			}
			served := false
			for _, wsp := range call.Find("worker.estimate") {
				if v, ok := wsp.Attr("epoch_served"); ok && v == epochAttr {
					served = true
					break
				}
			}
			if !served {
				shardIdx, _ := call.Attr("shard")
				st.violate(InvSnapshotEpochConsistent,
					"trace %s: shard %s graded full with no worker answer from map epoch %s",
					tr.RequestID(), shardIdx, epochAttr)
			}
		}
	}
}
