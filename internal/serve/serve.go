// Package serve is the scale-out serving tier over the estimation
// stack: an HTTP JSON API (/estimate, /analyze, /healthz) fronted by
// an LRU cache of quantized query results, singleflight deduplication
// of concurrent identical misses, and a semaphore admission gate that
// sheds excess load after a bounded queue wait. It exists so that the
// heavy-traffic path of the ROADMAP — millions of cheap estimate
// lookups against statistics that rebuild rarely — hits the histograms
// only when it must.
//
// The layering per request is: parse → cache lookup → singleflight
// (leader only: admission gate → backend with a per-request deadline)
// → cache fill. Degraded results — anything below full Quality, such
// as answers from the shard degradation ladder or the uniformity
// fallback — are returned to the caller but never cached: a deadline
// hiccup or an open breaker must not poison the cache until the next
// ANALYZE.
//
// Health is split: /healthz/live answers 200 whenever the process
// serves, /healthz/ready degrades to 503 while any table is
// unanalyzed or any shard circuit breaker is open (backends opt in via
// StatusReporter), and the legacy /healthz keeps its original shape.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Backend is the estimation engine the server fronts. Implementations
// must be safe for concurrent use; *spatialdb.DB satisfies this.
type Backend interface {
	// EstimateContext estimates q against the named table's
	// statistics, degrading gracefully under ctx pressure.
	EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error)
	// AnalyzeContext (re)builds the named table's statistics.
	AnalyzeContext(ctx context.Context, table string) error
	// Tables lists the tables that can be estimated against.
	Tables() []string
}

// TableStatus describes one table's serving health for readiness.
type TableStatus struct {
	Table    string `json:"table"`
	Analyzed bool   `json:"analyzed"`
	Shards   int    `json:"shards,omitempty"`
	// Breakers is the per-shard circuit-breaker state ("closed",
	// "half_open", "open"); empty when the backend runs no breakers.
	Breakers []string `json:"breakers,omitempty"`
}

// StatusReporter is the optional Backend extension feeding the
// readiness endpoint. Backends that cannot report health simply don't
// implement it and readiness reduces to liveness.
type StatusReporter interface {
	// Status reports every table's health.
	Status() []TableStatus
}

// Config tunes the serving tier. The zero value serves with sensible
// defaults.
type Config struct {
	// MaxInFlight bounds concurrent backend estimates (the admission
	// gate width). Default 64.
	MaxInFlight int
	// QueueTimeout is how long an admitted-over-capacity request may
	// wait for a slot before being shed with 503. Default 100ms.
	QueueTimeout time.Duration
	// EstimateTimeout is the per-request scatter-gather deadline; when
	// it expires the backend degrades to a Partial result. Default
	// 250ms.
	EstimateTimeout time.Duration
	// AnalyzeTimeout bounds an /analyze rebuild. Default 2m.
	AnalyzeTimeout time.Duration
	// CacheSize is the LRU capacity in entries. Default 4096;
	// negative disables caching.
	CacheSize int
	// CacheQuantum is the query-coordinate quantization step: queries
	// snapped to the same lattice cell share a cache entry. Default
	// 1e-6 (far below any meaningful geometric resolution; see
	// DESIGN.md "cache key quantization"). Zero keeps the default;
	// negative disables quantization (exact-rect keys).
	CacheQuantum float64
	// CacheTTL bounds the age of a cached estimate, measured on Clock.
	// Expired entries are treated as misses and dropped lazily. Zero
	// (the default) keeps entries until eviction or ANALYZE
	// invalidation.
	CacheTTL time.Duration
	// Clock is the time source for deadlines, queue timeouts, cache TTL
	// and latency metrics. Nil means the system clock; the fault
	// simulation harness injects a vclock.Sim to test every timing
	// behavior without real sleeps.
	Clock vclock.Clock
	// Tracer records request-scoped span traces, the slow/degraded
	// sampler and the query log (see internal/reqtrace). Nil disables
	// tracing entirely — every span call becomes a no-op.
	Tracer *reqtrace.Tracer
	// RequestIDSeed seeds the generator of request IDs minted when a
	// caller supplies none (no X-Request-Id header, nothing in the
	// context). Default 1; with a fixed seed and serial requests the
	// minted IDs are deterministic, which the fault simulation's
	// byte-identical trace gate relies on.
	RequestIDSeed int64
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.EstimateTimeout == 0 {
		c.EstimateTimeout = 250 * time.Millisecond
	}
	if c.AnalyzeTimeout == 0 {
		c.AnalyzeTimeout = 2 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.CacheQuantum == 0 {
		c.CacheQuantum = 1e-6
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.RequestIDSeed == 0 {
		c.RequestIDSeed = 1
	}
	return c
}

// Server is the serving tier. Create with New, mount Handler on any
// mux or serve directly with Serve, and stop with Shutdown.
type Server struct {
	cfg     Config
	backend Backend
	clk     vclock.Clock
	cache   *lruCache
	flights *flightGroup
	gate    *gate
	httpSrv *http.Server

	// idMu guards idRng: request-ID generation must be raceless and,
	// under serial load, deterministic in RequestIDSeed.
	idMu  sync.Mutex
	idRng *rand.Rand

	// Telemetry (nil-safe when EnableTelemetry was never called).
	reg            *telemetry.Registry
	hits           *telemetry.Counter
	misses         *telemetry.Counter
	suppressed     *telemetry.Counter
	shed           *telemetry.Counter
	queueTimeouts  *telemetry.Counter
	partials       *telemetry.Counter
	qualityCtr     [3]*telemetry.Counter
	requestSeconds *telemetry.Histogram
	cacheEntries   *telemetry.Gauge
	inFlight       *telemetry.Gauge
}

// New creates a server over the backend.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		backend: backend,
		clk:     cfg.Clock,
		flights: newFlightGroup(),
		gate:    newGate(cfg.MaxInFlight, cfg.QueueTimeout, cfg.Clock),
		idRng:   rand.New(rand.NewSource(cfg.RequestIDSeed)),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize, cfg.CacheTTL, cfg.Clock)
	}
	// The http.Server is created up front so Serve and Shutdown can be
	// called from different goroutines without racing on the field.
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return s
}

// EnableTelemetry registers the serving metrics in reg: cache
// hit/miss/singleflight-suppression counters, shed and queue-timeout
// counters, request latencies, and live cache/in-flight gauges. A nil
// reg leaves telemetry disabled. Call before Serve: the metric fields
// are written plainly and must not race with request handling.
func (s *Server) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.hits = reg.Counter("serve_cache_hits_total", "Estimate cache hits.")
	s.misses = reg.Counter("serve_cache_misses_total", "Estimate cache misses (backend consulted).")
	s.suppressed = reg.Counter("serve_singleflight_suppressed_total",
		"Duplicate concurrent estimates answered by another caller's flight.")
	s.shed = reg.Counter("serve_shed_total",
		"Requests shed by the admission gate after the queue timeout.")
	s.queueTimeouts = reg.Counter("serve_queue_timeout_total",
		"Admission waits that hit the queue timeout (same events as serve_shed_total).")
	s.partials = reg.Counter("serve_partial_results_total",
		"Estimates served degraded (below full quality; never cached).")
	for _, q := range []shard.Quality{shard.QualityFull, shard.QualityCoarse, shard.QualityUniform} {
		s.qualityCtr[q] = reg.Counter("serve_quality_total",
			"Estimates served by answer quality level.",
			telemetry.Label{Key: "level", Value: q.String()})
	}
	s.requestSeconds = reg.Histogram("serve_request_seconds",
		"End-to-end estimate latency including cache and admission.",
		telemetry.DefaultLatencyBuckets)
	s.cacheEntries = reg.Gauge("serve_cache_entries", "Live estimate cache entries.")
	s.inFlight = reg.Gauge("serve_in_flight", "Backend estimates currently executing.")
}

// EstimateResponse is the JSON body of /estimate and the return of
// Estimate.
type EstimateResponse struct {
	Table    string     `json:"table"`
	Query    [4]float64 `json:"query"` // minx, miny, maxx, maxy
	Estimate float64    `json:"estimate"`
	// Partial reports graceful degradation: part of the answer came
	// from a shard's degradation ladder (a coarser Min-Skew rung or
	// the uniformity fallback) instead of its full histogram.
	Partial bool `json:"partial"`
	// Quality grades the answer: "full", "coarse" (some shard answered
	// from a coarser Min-Skew rung) or "uniform" (some shard fell all
	// the way to the uniformity assumption). Cached answers are always
	// "full" — nothing below full quality enters the cache.
	Quality string `json:"quality"`
	// Cached reports the answer came from the LRU without touching the
	// backend.
	Cached bool `json:"cached"`
	// Shared reports the answer was computed by a concurrent identical
	// request's flight.
	Shared        bool `json:"shared,omitempty"`
	ShardsQueried int  `json:"shards_queried"`
	ShardsMissed  int  `json:"shards_missed,omitempty"`
	// FallbackShards lists the shard indices answered below full
	// quality.
	FallbackShards []int `json:"fallback_shards,omitempty"`
	// Breakers is the per-shard circuit-breaker state observed by this
	// estimate; empty when breakers are disabled.
	Breakers []string `json:"breakers,omitempty"`
	// Epoch is the build epoch of the statistics snapshot that
	// produced the answer (see shard.ShardedCatalog.Epoch). A cached
	// answer keeps the epoch it was computed at, so clients can detect
	// reads that predate the latest ANALYZE or partition-map swap.
	Epoch uint64 `json:"epoch,omitempty"`
	// RequestID identifies the request across the response, the error
	// body, the X-Request-Id header, the span trace and the query log.
	// Taken from the caller (X-Request-Id header or context) or minted
	// from the server's seeded generator.
	RequestID string `json:"request_id,omitempty"`
}

// newRequestID mints a request ID from the seeded generator.
func (s *Server) newRequestID() string {
	s.idMu.Lock()
	id := s.idRng.Uint64()
	s.idMu.Unlock()
	return fmt.Sprintf("%016x", id)
}

// resolveRequestID returns the caller's request ID from ctx or mints
// one.
func (s *Server) resolveRequestID(ctx context.Context) string {
	if id := reqtrace.RequestIDFrom(ctx); id != "" {
		return id
	}
	return s.newRequestID()
}

// errClass names an estimate failure for span traces and query logs.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrEstimatePanic):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "backend"
	}
}

// finishTrace seals the request's trace with the response outcome.
func (s *Server) finishTrace(tr *reqtrace.Trace, resp EstimateResponse, err error) {
	tr.Finish(reqtrace.Outcome{
		Table:         resp.Table,
		Query:         resp.Query,
		Estimate:      resp.Estimate,
		Quality:       resp.Quality,
		Partial:       resp.Partial,
		Cached:        resp.Cached,
		Shared:        resp.Shared,
		ShardsQueried: resp.ShardsQueried,
		ShardsMissed:  resp.ShardsMissed,
		Err:           errClass(err),
	})
}

// Estimate runs the full serving path — cache, singleflight, gate,
// backend — for one query. It is the engine behind the /estimate
// handler and is exported for in-process callers and benchmarks.
func (s *Server) Estimate(ctx context.Context, table string, q geom.Rect) (EstimateResponse, error) {
	start := s.clk.Now()
	defer func() { s.requestSeconds.Observe(s.clk.Since(start).Seconds()) }()
	if !q.Valid() {
		return EstimateResponse{}, fmt.Errorf("serve: invalid query rectangle %v", q)
	}
	reqID := s.resolveRequestID(ctx)
	ctx, tr := s.cfg.Tracer.StartRequest(ctx, reqID)
	resp := EstimateResponse{Table: table, Query: [4]float64{q.MinX, q.MinY, q.MaxX, q.MaxY}, RequestID: reqID}
	key := quantizeKey(table, q, s.cfg.CacheQuantum)
	if s.cache != nil {
		cs := reqtrace.SpanFrom(ctx).StartChild("serve.cache")
		res, ok := s.cache.get(key)
		if ok {
			cs.SetAttr("outcome", "hit")
			cs.End()
			s.hits.Inc()
			resp.Estimate, resp.Partial, resp.Cached = res.Estimate, res.Partial, true
			resp.Quality = res.Quality.String()
			resp.ShardsQueried, resp.ShardsMissed = res.ShardsQueried, res.ShardsMissed
			resp.Epoch = res.Epoch
			s.noteQuality(res.Quality)
			s.finishTrace(tr, resp, nil)
			return resp, nil
		}
		cs.SetAttr("outcome", "miss")
		cs.End()
	}
	s.misses.Inc()
	// The flight span belongs to this caller's trace; only the leader's
	// closure runs, so gate and backend spans attach to the leader's
	// flight while followers' flight spans stay childless with
	// role=follower.
	fs := reqtrace.SpanFrom(ctx).StartChild("serve.flight")
	res, err, shared := s.flights.do(ctx, key, func() (shard.Result, error) {
		gs := fs.StartChild("serve.gate")
		if err := s.gate.acquire(ctx); err != nil {
			gs.SetAttr("outcome", errClass(err))
			gs.End()
			return shard.Result{}, err
		}
		gs.SetAttr("outcome", "admitted")
		gs.End()
		defer s.gate.release()
		s.inFlight.Set(float64(s.gate.inFlight()))
		ectx, cancel := vclock.WithTimeout(ctx, s.clk, s.cfg.EstimateTimeout)
		defer cancel()
		bs := fs.StartChild("serve.backend")
		defer bs.End()
		return s.backend.EstimateContext(reqtrace.ContextWithSpan(ectx, bs), table, q)
	})
	if shared {
		fs.SetAttr("role", "follower")
		s.suppressed.Inc()
	} else {
		fs.SetAttr("role", "leader")
	}
	fs.End()
	if err != nil {
		if errors.Is(err, ErrShed) {
			s.shed.Inc()
			s.queueTimeouts.Inc()
		}
		s.finishTrace(tr, resp, err)
		return EstimateResponse{}, err
	}
	if res.Partial || res.Quality != shard.QualityFull {
		// Degraded answers are served but never cached: a deadline
		// hiccup or open breaker must not pin a coarse estimate until
		// the next ANALYZE.
		s.partials.Inc()
	} else if s.cache != nil && !shared {
		// Only complete full-quality results enter the cache, and only
		// once per flight (the leader writes; followers would be
		// re-writes).
		s.cache.add(key, res)
		s.cacheEntries.Set(float64(s.cache.len()))
	}
	resp.Estimate, resp.Partial, resp.Shared = res.Estimate, res.Partial, shared
	resp.Quality = res.Quality.String()
	resp.ShardsQueried, resp.ShardsMissed = res.ShardsQueried, res.ShardsMissed
	resp.FallbackShards, resp.Breakers = res.FallbackShards, res.Breakers
	resp.Epoch = res.Epoch
	s.noteQuality(res.Quality)
	s.finishTrace(tr, resp, nil)
	return resp, nil
}

// noteQuality counts one served estimate at its quality level.
func (s *Server) noteQuality(q shard.Quality) {
	if q >= 0 && int(q) < len(s.qualityCtr) {
		s.qualityCtr[q].Inc()
	}
}

// AnalyzeResponse is the JSON body of /analyze.
type AnalyzeResponse struct {
	Table   string  `json:"table"`
	Seconds float64 `json:"seconds"`
}

// Analyze rebuilds the named table's statistics and invalidates its
// cached estimates.
func (s *Server) Analyze(ctx context.Context, table string) (AnalyzeResponse, error) {
	actx, cancel := vclock.WithTimeout(ctx, s.clk, s.cfg.AnalyzeTimeout)
	defer cancel()
	start := s.clk.Now()
	if err := s.backend.AnalyzeContext(actx, table); err != nil {
		return AnalyzeResponse{}, err
	}
	if s.cache != nil {
		s.cache.invalidateTable(table)
		s.cacheEntries.Set(float64(s.cache.len()))
	}
	return AnalyzeResponse{Table: table, Seconds: s.clk.Since(start).Seconds()}, nil
}

// Handler returns the API mux: /estimate, /analyze, /healthz (legacy),
// /healthz/live, /healthz/ready, and — when a Tracer is configured —
// /debug/traces.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/estimate/batch", s.handleEstimateBatch)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/healthz/live", s.handleLive)
	mux.HandleFunc("/healthz/ready", s.handleReady)
	if s.cfg.Tracer != nil {
		mux.Handle("/debug/traces", s.cfg.Tracer.Handler())
	}
	return mux
}

// requestCounter counts one API request by endpoint and status code.
func (s *Server) requestCounter(endpoint string, code int) *telemetry.Counter {
	if s.reg == nil {
		return nil
	}
	return s.reg.Counter("serve_requests_total",
		"API requests by endpoint and status code.",
		telemetry.Label{Key: "endpoint", Value: endpoint},
		telemetry.Label{Key: "code", Value: strconv.Itoa(code)})
}

// writeJSON writes v with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, code int, v any) {
	s.requestCounter(endpoint, code).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) // client gone is the only failure; nothing to do
}

// errorBody is the JSON error envelope: every error and shed response
// carries the message, the status code, and the request ID, so a
// failed request is joinable against its span trace and query-log
// record.
type errorBody struct {
	Error     string `json:"error"`
	Code      int    `json:"code"`
	RequestID string `json:"request_id,omitempty"`
}

// writeError maps an error to a status code and JSON body.
func (s *Server) writeError(w http.ResponseWriter, endpoint, reqID string, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrShed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrEstimatePanic):
		code = http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	}
	s.writeJSON(w, endpoint, code, errorBody{Error: err.Error(), Code: code, RequestID: reqID})
}

// parseRectParams reads minx/miny/maxx/maxy query parameters.
func parseRectParams(r *http.Request) (geom.Rect, error) {
	var vals [4]float64
	for i, name := range [...]string{"minx", "miny", "maxx", "maxy"} {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return geom.Rect{}, fmt.Errorf("missing parameter %q", name)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("bad parameter %q: %v", name, err)
		}
		vals[i] = v
	}
	q := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
	if !q.Valid() {
		return geom.Rect{}, fmt.Errorf("invalid rectangle %v", q)
	}
	return q, nil
}

// httpRequestID resolves the request ID for an HTTP request — the
// client's X-Request-Id or a minted one — and echoes it on the
// response header.
func (s *Server) httpRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = s.newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	return id
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	reqID := s.httpRequestID(w, r)
	table := r.URL.Query().Get("table")
	if table == "" {
		s.writeJSON(w, "estimate", http.StatusBadRequest,
			errorBody{Error: "missing parameter \"table\"", Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	q, err := parseRectParams(r)
	if err != nil {
		s.writeJSON(w, "estimate", http.StatusBadRequest,
			errorBody{Error: err.Error(), Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	resp, err := s.Estimate(reqtrace.WithRequestID(r.Context(), reqID), table, q)
	if err != nil {
		s.writeError(w, "estimate", reqID, err)
		return
	}
	s.writeJSON(w, "estimate", http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	reqID := s.httpRequestID(w, r)
	if r.Method != http.MethodPost {
		s.writeJSON(w, "analyze", http.StatusMethodNotAllowed,
			errorBody{Error: "POST required", Code: http.StatusMethodNotAllowed, RequestID: reqID})
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		s.writeJSON(w, "analyze", http.StatusBadRequest,
			errorBody{Error: "missing parameter \"table\"", Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	resp, err := s.Analyze(r.Context(), table)
	if err != nil {
		s.writeError(w, "analyze", reqID, err)
		return
	}
	s.writeJSON(w, "analyze", http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "healthz", http.StatusOK, struct {
		Status string   `json:"status"`
		Tables []string `json:"tables"`
	}{Status: "ok", Tables: s.backend.Tables()})
}

// handleLive is the liveness probe: 200 whenever the process can
// answer HTTP at all. Restart-worthy failures only.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "live", http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "live"})
}

// readyBody is the JSON body of /healthz/ready.
type readyBody struct {
	Status  string        `json:"status"`
	Tables  []TableStatus `json:"tables,omitempty"`
	Reasons []string      `json:"reasons,omitempty"`
}

// handleReady is the readiness probe: 503 while any table is
// unanalyzed or any shard circuit breaker is open, so load balancers
// route around a degraded replica without restarting it. Backends that
// don't implement StatusReporter are always ready.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	sr, ok := s.backend.(StatusReporter)
	if !ok {
		s.writeJSON(w, "ready", http.StatusOK, readyBody{Status: "ready"})
		return
	}
	tables := sr.Status()
	var reasons []string
	for _, t := range tables {
		if !t.Analyzed {
			reasons = append(reasons, fmt.Sprintf("table %q not analyzed", t.Table))
			continue
		}
		for i, b := range t.Breakers {
			if b == "open" {
				reasons = append(reasons, fmt.Sprintf("table %q shard %d breaker open", t.Table, i))
			}
		}
	}
	body := readyBody{Status: "ready", Tables: tables, Reasons: reasons}
	if len(reasons) > 0 {
		body.Status = "degraded"
		s.writeJSON(w, "ready", http.StatusServiceUnavailable, body)
		return
	}
	s.writeJSON(w, "ready", http.StatusOK, body)
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after a clean Shutdown that error is
// http.ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops the server: in-flight requests get until
// ctx's deadline to finish, then connections are closed.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}
