package serve

import (
	"net"
	"testing"

	"repro/internal/geom"
	"repro/internal/shard"
)

// net_Listen opens a loopback listener for server tests.
func net_Listen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2, 0, nil)
	k := func(i float64) cacheKey {
		return quantizeKey("t", geom.NewRect(i, i, i+1, i+1), 1)
	}
	c.add(k(1), shard.Result{Estimate: 1})
	c.add(k(2), shard.Result{Estimate: 2})
	// Touch k1 so k2 is the eviction victim.
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 should be present")
	}
	c.add(k(3), shard.Result{Estimate: 3})
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 should have survived (recently used)")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Fatal("k3 should be present")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRURefreshExisting(t *testing.T) {
	c := newLRUCache(2, 0, nil)
	k := quantizeKey("t", geom.NewRect(0, 0, 1, 1), 1)
	c.add(k, shard.Result{Estimate: 1})
	c.add(k, shard.Result{Estimate: 9})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 (refresh, not duplicate)", c.len())
	}
	res, ok := c.get(k)
	if !ok || res.Estimate != 9 {
		t.Fatalf("get = %+v %v, want refreshed estimate 9", res, ok)
	}
}

func TestInvalidateTableSelective(t *testing.T) {
	c := newLRUCache(8, 0, nil)
	ka := quantizeKey("a", geom.NewRect(0, 0, 1, 1), 1)
	kb := quantizeKey("b", geom.NewRect(0, 0, 1, 1), 1)
	c.add(ka, shard.Result{Estimate: 1})
	c.add(kb, shard.Result{Estimate: 2})
	c.invalidateTable("a")
	if _, ok := c.get(ka); ok {
		t.Fatal("table a should be invalidated")
	}
	if _, ok := c.get(kb); !ok {
		t.Fatal("table b must survive a's invalidation")
	}
}

func TestQuantizeKeySnapsNeighbours(t *testing.T) {
	q1 := geom.NewRect(0.10, 0.20, 10.10, 10.20)
	q2 := geom.NewRect(0.12, 0.18, 10.08, 10.22) // within 0.5 lattice
	if quantizeKey("t", q1, 0.5) != quantizeKey("t", q2, 0.5) {
		t.Error("nearby rects should share a key at quantum 0.5")
	}
	q3 := geom.NewRect(5, 5, 15, 15)
	if quantizeKey("t", q1, 0.5) == quantizeKey("t", q3, 0.5) {
		t.Error("distant rects must not share a key")
	}
	// Quantum <= 0 keys on the exact rectangle.
	if quantizeKey("t", q1, -1) == quantizeKey("t", q2, -1) {
		t.Error("negative quantum must use exact keys")
	}
}
