package serve

import (
	"container/list"
	"math"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// cacheKey identifies a cached estimate: the table plus the query
// rectangle snapped to the quantization lattice. Keys hold the
// quantized float64 lattice indices directly, so arbitrary coordinate
// magnitudes never overflow an integer conversion.
type cacheKey struct {
	table          string
	x0, y0, x1, y1 float64
}

// quantizeKey snaps q to multiples of quantum. Queries within the same
// lattice cell share one cache entry; estimates vary smoothly below
// the lattice scale, so collisions answer with a neighbour's estimate,
// which is the deliberate trade the cache makes (see DESIGN.md).
func quantizeKey(table string, q geom.Rect, quantum float64) cacheKey {
	if quantum <= 0 {
		return cacheKey{table: table, x0: q.MinX, y0: q.MinY, x1: q.MaxX, y1: q.MaxY}
	}
	return cacheKey{
		table: table,
		x0:    math.Round(q.MinX / quantum),
		y0:    math.Round(q.MinY / quantum),
		x1:    math.Round(q.MaxX / quantum),
		y1:    math.Round(q.MaxY / quantum),
	}
}

// cacheEntry is one LRU slot. expires is the zero Time when the cache
// has no TTL.
type cacheEntry struct {
	key     cacheKey
	res     shard.Result
	expires time.Time
}

// lruCache is a mutex-guarded fixed-capacity LRU of query results with
// an optional TTL measured on the injected clock. Exposition-grade
// estimates are tiny (a Result struct), so the cache is value-based
// and copy-out; entries never alias caller memory. Expired entries are
// dropped lazily on lookup — a stale estimate is never served, but no
// background sweeper is needed.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	clk vclock.Clock
	ll  *list.List // front = most recent; values are *cacheEntry
	m   map[cacheKey]*list.Element
}

func newLRUCache(capacity int, ttl time.Duration, clk vclock.Clock) *lruCache {
	if clk == nil {
		clk = vclock.Real()
	}
	return &lruCache{
		cap: capacity,
		ttl: ttl,
		clk: clk,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached result and whether it was present, promoting
// the entry to most-recently-used. An entry past its TTL is removed
// and reported as a miss.
func (c *lruCache) get(k cacheKey) (shard.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return shard.Result{}, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.clk.Now().After(e.expires) {
		c.ll.Remove(el)
		delete(c.m, k)
		return shard.Result{}, false
	}
	c.ll.MoveToFront(el)
	return e.res, true
}

// add inserts or refreshes an entry, evicting the least-recently-used
// slot when full.
func (c *lruCache) add(k cacheKey, res shard.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.clk.Now().Add(c.ttl)
	}
	if el, ok := c.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.res, e.expires = res, expires
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, res: res, expires: expires})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// invalidateTable drops every entry of the named table (after an
// ANALYZE its estimates are stale).
func (c *lruCache) invalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*cacheEntry); e.key.table == table {
			c.ll.Remove(el)
			delete(c.m, e.key)
		}
	}
}

// len returns the live entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
