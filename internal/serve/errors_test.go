package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/reqtrace"
)

var errBackendBoom = errors.New("backend boom")

// getErrorBody issues req against the handler and decodes the JSON
// error envelope, asserting status and Content-Type.
func getErrorBody(t *testing.T, h http.Handler, req *http.Request, wantCode int) (errorBody, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("%s %s: status %d, want %d (body %s)", req.Method, req.URL, rec.Code, wantCode, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type %q", ct)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, rec.Body.String())
	}
	if body.Code != wantCode {
		t.Errorf("body code %d, want %d", body.Code, wantCode)
	}
	if body.Error == "" {
		t.Error("body error message empty")
	}
	return body, rec
}

// TestErrorBodyEveryPath walks every /estimate and /analyze early-exit
// path and asserts the structured JSON error envelope: message, status
// code, and the request ID — echoed from X-Request-Id when the caller
// sent one, minted otherwise, always repeated on the response header.
func TestErrorBodyEveryPath(t *testing.T) {
	t.Run("missing table", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?minx=0&miny=0&maxx=1&maxy=1", nil)
		req.Header.Set("X-Request-Id", "cli-1")
		body, rec := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "cli-1" || rec.Header().Get("X-Request-Id") != "cli-1" {
			t.Errorf("request ID not echoed: body %q header %q", body.RequestID, rec.Header().Get("X-Request-Id"))
		}
	})
	t.Run("missing rect param", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1", nil)
		req.Header.Set("X-Request-Id", "cli-2")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "cli-2" {
			t.Errorf("request ID %q", body.RequestID)
		}
	})
	t.Run("bad rect", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=5&miny=0&maxx=1&maxy=1", nil)
		body, rec := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID == "" || rec.Header().Get("X-Request-Id") != body.RequestID {
			t.Errorf("minted request ID missing or not echoed: body %q header %q",
				body.RequestID, rec.Header().Get("X-Request-Id"))
		}
	})
	t.Run("backend error", func(t *testing.T) {
		b := &stubBackend{err: errBackendBoom}
		h := New(b, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil)
		req.Header.Set("X-Request-Id", "cli-3")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "cli-3" {
			t.Errorf("request ID %q", body.RequestID)
		}
	})
	t.Run("shed 503", func(t *testing.T) {
		block := make(chan struct{})
		b := &stubBackend{block: block}
		s := New(b, Config{MaxInFlight: 1, QueueTimeout: time.Millisecond, CacheSize: -1})
		h := s.Handler()
		// Occupy the only gate slot with a blocked in-process estimate,
		// using a distinct rect so the HTTP request can't join its flight.
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = s.Estimate(context.Background(), "roads", q(50, 50, 60, 60))
		}()
		waitInFlight(t, s, 1)
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil)
		req.Header.Set("X-Request-Id", "cli-4")
		body, _ := getErrorBody(t, h, req, http.StatusServiceUnavailable)
		if body.RequestID != "cli-4" {
			t.Errorf("request ID %q", body.RequestID)
		}
		close(block)
		<-done
	})
	t.Run("panic 500", func(t *testing.T) {
		b := &panicBackend{}
		b.armed.Store(true)
		h := New(b, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil)
		req.Header.Set("X-Request-Id", "cli-5")
		body, _ := getErrorBody(t, h, req, http.StatusInternalServerError)
		if body.RequestID != "cli-5" {
			t.Errorf("request ID %q", body.RequestID)
		}
	})
	t.Run("timeout 504", func(t *testing.T) {
		b := &stubBackend{err: context.DeadlineExceeded}
		h := New(b, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil)
		req.Header.Set("X-Request-Id", "cli-6")
		body, _ := getErrorBody(t, h, req, http.StatusGatewayTimeout)
		if body.RequestID != "cli-6" {
			t.Errorf("request ID %q", body.RequestID)
		}
	})
	t.Run("analyze needs POST", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("GET", "/analyze?table=roads", nil)
		req.Header.Set("X-Request-Id", "cli-7")
		body, _ := getErrorBody(t, h, req, http.StatusMethodNotAllowed)
		if body.RequestID != "cli-7" {
			t.Errorf("request ID %q", body.RequestID)
		}
	})
	t.Run("analyze missing table", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/analyze", nil)
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID == "" {
			t.Error("minted request ID missing")
		}
	})
}

// waitInFlight spins until the gate reports n in-flight estimates.
func waitInFlight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.gate.inFlight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("gate never reached %d in-flight", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSuccessCarriesRequestID: the happy path carries the same request
// ID in the JSON body and the X-Request-Id response header, and minted
// IDs are deterministic in RequestIDSeed.
func TestSuccessCarriesRequestID(t *testing.T) {
	h := New(&stubBackend{}, Config{RequestIDSeed: 7}).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RequestID == "" || resp.RequestID != rec.Header().Get("X-Request-Id") {
		t.Errorf("request ID body %q header %q", resp.RequestID, rec.Header().Get("X-Request-Id"))
	}

	// Same seed, fresh server: the first minted ID must repeat.
	h2 := New(&stubBackend{}, Config{RequestIDSeed: 7}).Handler()
	rec2 := httptest.NewRecorder()
	h2.ServeHTTP(rec2, httptest.NewRequest("GET", "/estimate?table=roads&minx=0&miny=0&maxx=1&maxy=1", nil))
	var resp2 EstimateResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.RequestID != resp.RequestID {
		t.Errorf("minted IDs differ across same-seed servers: %q vs %q", resp.RequestID, resp2.RequestID)
	}

	// A context-provided ID (the faultsim path) wins over minting.
	s := New(&stubBackend{}, Config{})
	resp3, err := s.Estimate(reqtrace.WithRequestID(context.Background(), "ctx-id"), "roads", q(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.RequestID != "ctx-id" {
		t.Errorf("context request ID lost: %q", resp3.RequestID)
	}
}
