package serve

import (
	"context"
	"sync"

	"repro/internal/shard"
)

// flightGroup deduplicates concurrent identical estimate misses: the
// first caller for a key becomes the leader and computes; followers
// block until the leader finishes and share its result. Unlike the
// x/sync implementation this one is specialized to (Result, error) and
// lets a follower abandon the wait when its own context dies — the
// leader keeps computing for the remaining waiters.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{} // closed when res/err are final
	res  shard.Result
	err  error
	dups int // followers that joined
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[cacheKey]*flightCall)}
}

// do returns the result of fn for key, running fn exactly once across
// concurrent callers. shared reports whether this caller joined an
// existing flight (true) or led it (false). A follower whose ctx ends
// first returns ctx.Err(); the flight itself is unaffected.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (shard.Result, error)) (res shard.Result, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err, true
		case <-ctx.Done():
			return shard.Result{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}
