package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/shard"
)

// ErrEstimatePanic reports that the backend panicked while computing
// an estimate. The singleflight layer converts the panic into this
// error so that the leader and every follower get a clean failure
// instead of a crashed goroutine and a flight that never completes;
// handlers map it to 500.
var ErrEstimatePanic = errors.New("serve: backend panicked during estimate")

// flightGroup deduplicates concurrent identical estimate misses: the
// first caller for a key becomes the leader and computes; followers
// block until the leader finishes and share its result. Unlike the
// x/sync implementation this one is specialized to (Result, error) and
// lets a follower abandon the wait when its own context dies — the
// leader keeps computing for the remaining waiters.
//
// A panicking fn is contained: the flight completes with
// ErrEstimatePanic, the key is released, and followers are woken. The
// alternative — letting the panic unwind past do — would strand every
// follower on a done channel that never closes, a deadlock the fault
// simulation harness (internal/faultsim) exists to catch.
type flightGroup struct {
	mu sync.Mutex
	m  map[cacheKey]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{} // closed when res/err are final
	res  shard.Result
	err  error
	dups int // followers that joined
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[cacheKey]*flightCall)}
}

// do returns the result of fn for key, running fn exactly once across
// concurrent callers. shared reports whether this caller joined an
// existing flight (true) or led it (false). A follower whose ctx ends
// first returns ctx.Err(); the flight itself is unaffected.
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (shard.Result, error)) (res shard.Result, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err, true
		case <-ctx.Done():
			return shard.Result{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// The flight must complete — map entry released, done closed — on
	// every exit path, including a panic inside fn. The panic is
	// converted to an error rather than re-raised: estimate requests
	// are independent, and one poisoned query must not take down the
	// process serving the others.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.res, c.err = shard.Result{}, fmt.Errorf("%w: %v", ErrEstimatePanic, r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.res, c.err = fn()
	}()
	return c.res, c.err, false
}
