package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// qualityBackend returns a scripted sequence of shard.Results.
type qualityBackend struct {
	mu      sync.Mutex
	results []shard.Result
	calls   int
}

func (b *qualityBackend) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	res := b.results[0]
	if len(b.results) > 1 {
		b.results = b.results[1:]
	}
	b.calls++
	return res, nil
}

func (b *qualityBackend) AnalyzeContext(ctx context.Context, table string) error { return nil }
func (b *qualityBackend) Tables() []string                                       { return []string{"roads"} }

// TestDegradedQualityNotCachedThroughQuantizedKey is the regression
// the quality gate exists for: a coarse answer and a full answer can
// share one quantized cache key, and the coarse one must never be the
// entry that later queries in the cell are served from. The backend is
// scripted to answer coarse first — if the gate only looked at Partial
// (here deliberately false, the silent-degradation shape), the coarse
// estimate would be cached and poison the neighbor.
func TestDegradedQualityNotCachedThroughQuantizedKey(t *testing.T) {
	b := &qualityBackend{results: []shard.Result{
		// Below-full quality but unflagged: the exact shape a buggy
		// upstream would produce; the cache gate must still refuse it.
		{Estimate: 10, Partial: false, Quality: shard.QualityCoarse, ShardsQueried: 2,
			ShardsMissed: 1, FallbackShards: []int{1}},
		{Estimate: 42, Partial: false, Quality: shard.QualityFull, ShardsQueried: 2},
	}}
	reg := telemetry.NewRegistry()
	s := New(b, Config{CacheQuantum: 1.0})
	s.EnableTelemetry(reg)
	ctx := context.Background()

	r1, err := s.Estimate(ctx, "roads", q(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Quality != shard.QualityCoarse.String() {
		t.Fatalf("first response quality %q, want coarse", r1.Quality)
	}
	if len(r1.FallbackShards) != 1 || r1.FallbackShards[0] != 1 {
		t.Fatalf("FallbackShards = %v, want [1]", r1.FallbackShards)
	}

	// Same lattice cell (within the 1.0 quantum): a cached coarse entry
	// would serve 10 here; the backend's full answer is 42.
	r2, err := s.Estimate(ctx, "roads", q(0.1, 0.1, 10.1, 10.1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("coarse result leaked into the cache and served a neighbor")
	}
	if r2.Estimate != 42 || r2.Quality != shard.QualityFull.String() {
		t.Fatalf("second response %+v, want the backend's full answer 42", r2)
	}

	// The full answer IS cacheable: a third neighbor hits it.
	r3, err := s.Estimate(ctx, "roads", q(0.2, 0.2, 10.2, 10.2))
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached || r3.Estimate != 42 || r3.Quality != shard.QualityFull.String() {
		t.Fatalf("third response %+v, want cached full 42", r3)
	}
	if b.calls != 2 {
		t.Fatalf("backend consulted %d times, want 2", b.calls)
	}
	if got := reg.Counter("serve_quality_total", "",
		telemetry.Label{Key: "level", Value: "coarse"}).Value(); got != 1 {
		t.Errorf("serve_quality_total{level=coarse} = %d, want 1", got)
	}
	if got := reg.Counter("serve_quality_total", "",
		telemetry.Label{Key: "level", Value: "full"}).Value(); got != 2 {
		t.Errorf("serve_quality_total{level=full} = %d, want 2", got)
	}
}

// statusBackend is a stub Backend with a scripted Status.
type statusBackend struct {
	stubBackend
	status []TableStatus
}

func (b *statusBackend) Status() []TableStatus { return b.status }

// TestLivenessAlwaysOK pins /healthz/live: 200 whenever the process
// answers HTTP, regardless of table or breaker health.
func TestLivenessAlwaysOK(t *testing.T) {
	b := &statusBackend{status: []TableStatus{{Table: "roads", Analyzed: false}}}
	srv := httptest.NewServer(New(b, Config{}).Handler())
	defer srv.Close()
	resp := mustGet(t, srv.URL+"/healthz/live")
	if resp.code != 200 {
		t.Fatalf("liveness = %d, want 200", resp.code)
	}
	if resp.body["status"] != "live" {
		t.Fatalf("liveness body %v", resp.body)
	}
}

// TestReadinessGates pins /healthz/ready: 503 while any table is
// unanalyzed or any breaker is open; 200 once everything serves full
// answers; 200 for backends that don't report status at all.
func TestReadinessGates(t *testing.T) {
	cases := []struct {
		name   string
		status []TableStatus
		want   int
	}{
		{"ready", []TableStatus{
			{Table: "roads", Analyzed: true, Shards: 4, Breakers: []string{"closed", "closed", "closed", "closed"}},
		}, 200},
		{"unanalyzed-table", []TableStatus{
			{Table: "roads", Analyzed: true, Shards: 4},
			{Table: "rails", Analyzed: false},
		}, 503},
		{"open-breaker", []TableStatus{
			{Table: "roads", Analyzed: true, Shards: 4, Breakers: []string{"closed", "open", "closed", "closed"}},
		}, 503},
		{"half-open-is-ready", []TableStatus{
			{Table: "roads", Analyzed: true, Shards: 2, Breakers: []string{"half_open", "closed"}},
		}, 200},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := &statusBackend{status: tc.status}
			srv := httptest.NewServer(New(b, Config{}).Handler())
			defer srv.Close()
			resp := mustGet(t, srv.URL+"/healthz/ready")
			if resp.code != tc.want {
				t.Fatalf("readiness = %d (%v), want %d", resp.code, resp.body, tc.want)
			}
			wantStatus := "ready"
			if tc.want == 503 {
				wantStatus = "degraded"
			}
			if resp.body["status"] != wantStatus {
				t.Fatalf("readiness body status %v, want %q", resp.body["status"], wantStatus)
			}
			if tc.want == 503 {
				if reasons, ok := resp.body["reasons"].([]any); !ok || len(reasons) == 0 {
					t.Fatalf("degraded readiness must name reasons, got %v", resp.body)
				}
			}
		})
	}

	t.Run("no-status-reporter", func(t *testing.T) {
		srv := httptest.NewServer(New(&stubBackend{}, Config{}).Handler())
		defer srv.Close()
		resp := mustGet(t, srv.URL+"/healthz/ready")
		if resp.code != 200 || resp.body["status"] != "ready" {
			t.Fatalf("backend without StatusReporter: %d %v, want 200 ready", resp.code, resp.body)
		}
	})
}

// TestEstimateResponseCarriesQuality pins the HTTP response shape: the
// quality grade, fallback shard list and breaker states all surface in
// the /estimate JSON.
func TestEstimateResponseCarriesQuality(t *testing.T) {
	b := &qualityBackend{results: []shard.Result{{
		Estimate: 7, Partial: true, Quality: shard.QualityCoarse,
		ShardsQueried: 3, ShardsMissed: 1, FallbackShards: []int{2},
		Breakers: []string{"closed", "closed", "open"},
	}}}
	srv := httptest.NewServer(New(b, Config{}).Handler())
	defer srv.Close()
	resp := mustGet(t, srv.URL+"/estimate?table=roads&minx=0&miny=0&maxx=5&maxy=5")
	if resp.code != 200 {
		t.Fatalf("estimate = %d: %v", resp.code, resp.body)
	}
	if resp.body["quality"] != "coarse" {
		t.Errorf("quality = %v, want coarse", resp.body["quality"])
	}
	if fb, ok := resp.body["fallback_shards"].([]any); !ok || len(fb) != 1 || fb[0] != float64(2) {
		t.Errorf("fallback_shards = %v, want [2]", resp.body["fallback_shards"])
	}
	if br, ok := resp.body["breakers"].([]any); !ok || len(br) != 3 || br[2] != "open" {
		t.Errorf("breakers = %v, want [closed closed open]", resp.body["breakers"])
	}
}

// httpResult is a decoded JSON response plus its status code.
type httpResult struct {
	code int
	body map[string]any
}

func mustGet(t *testing.T, url string) httpResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return httpResult{code: resp.StatusCode, body: body}
}
