package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// stubBatchBackend adds a native batch method to stubBackend so tests
// can assert the server prefers it over the per-query loop.
type stubBatchBackend struct {
	stubBackend
	batches atomic.Int64
}

func (b *stubBatchBackend) EstimateBatchContext(ctx context.Context, table string, qs []geom.Rect) ([]shard.Result, error) {
	b.batches.Add(1)
	out := make([]shard.Result, 0, len(qs))
	for _, q := range qs {
		r, err := b.stubBackend.EstimateContext(ctx, table, q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// postBatch issues a POST /estimate/batch with the given body.
func postBatch(t *testing.T, h http.Handler, body string, reqID string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/estimate/batch", strings.NewReader(body))
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeBatch(t *testing.T, rec *httptest.ResponseRecorder) BatchResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v (%s)", err, rec.Body.String())
	}
	return resp
}

func TestBatchEndpointRoundTrip(t *testing.T) {
	b := &stubBackend{}
	h := New(b, Config{}).Handler()
	rec := postBatch(t, h,
		`{"table":"roads","queries":[[0,0,10,10],[1,1,3,3]]}`, "batch-1")
	resp := decodeBatch(t, rec)
	if resp.Table != "roads" || len(resp.Items) != 2 {
		t.Fatalf("table %q, %d items", resp.Table, len(resp.Items))
	}
	if resp.RequestID != "batch-1" || rec.Header().Get("X-Request-Id") != "batch-1" {
		t.Errorf("request ID not echoed: body %q header %q",
			resp.RequestID, rec.Header().Get("X-Request-Id"))
	}
	// stubBackend answers with q.Area().
	if resp.Items[0].Estimate != 100 || resp.Items[1].Estimate != 4 {
		t.Errorf("estimates %v, %v; want 100, 4", resp.Items[0].Estimate, resp.Items[1].Estimate)
	}
	for i, it := range resp.Items {
		if it.Quality != "full" || it.Error != "" || it.Cached {
			t.Errorf("item %d: %+v", i, it)
		}
	}
	if resp.Errors != 0 || resp.CacheHits != 0 {
		t.Errorf("errors %d, cache hits %d", resp.Errors, resp.CacheHits)
	}
}

// TestBatchItemErrorIsolation: one inverted rectangle yields one
// item-level error; the rest of the batch is answered normally.
func TestBatchItemErrorIsolation(t *testing.T) {
	b := &stubBackend{}
	h := New(b, Config{}).Handler()
	rec := postBatch(t, h,
		`{"table":"roads","queries":[[0,0,2,2],[5,0,0,5],[0,0,4,4]]}`, "")
	resp := decodeBatch(t, rec)
	if resp.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", resp.Errors)
	}
	bad := resp.Items[1]
	if bad.Error == "" || bad.Code != http.StatusBadRequest || bad.Estimate != 0 {
		t.Fatalf("bad item: %+v", bad)
	}
	if resp.Items[0].Estimate != 4 || resp.Items[2].Estimate != 16 {
		t.Fatalf("good items not answered: %+v", resp.Items)
	}
}

// TestBatchCachePerItem: cache hits are taken per item; misses fill
// the cache for subsequent single-query requests, and cached answers
// never touch the backend.
func TestBatchCachePerItem(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{})
	ctx := context.Background()
	if _, err := s.Estimate(ctx, "roads", q(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	resp, err := s.EstimateBatch(ctx, "roads", [][4]float64{{0, 0, 10, 10}, {1, 1, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Items[0].Cached || resp.Items[1].Cached {
		t.Fatalf("cached flags wrong: %+v", resp.Items)
	}
	if resp.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", resp.CacheHits)
	}
	if got := b.estimates.Load(); got != 2 { // priming call + one batch miss
		t.Fatalf("backend consulted %d times, want 2", got)
	}
	// The batch miss filled the cache: a single query now hits.
	r, err := s.Estimate(ctx, "roads", q(1, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Fatal("batch results must fill the cache")
	}
}

// TestBatchIntraBatchDedup: identical queries within one batch are
// walked once; the copies report Shared.
func TestBatchIntraBatchDedup(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{CacheSize: -1})
	resp, err := s.EstimateBatch(context.Background(), "roads",
		[][4]float64{{0, 0, 3, 3}, {0, 0, 3, 3}, {0, 0, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.estimates.Load(); got != 1 {
		t.Fatalf("backend consulted %d times, want 1", got)
	}
	if resp.Items[0].Shared {
		t.Fatal("the leading copy is the one that walked")
	}
	for i := 1; i < 3; i++ {
		it := resp.Items[i]
		if !it.Shared || it.Estimate != resp.Items[0].Estimate {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
}

// TestBatchPartialNeverCached: degraded batch answers are served but
// not cached.
func TestBatchPartialNeverCached(t *testing.T) {
	b := &stubBackend{partial: true}
	s := New(b, Config{})
	ctx := context.Background()
	queries := [][4]float64{{0, 0, 5, 5}}
	if _, err := s.EstimateBatch(ctx, "roads", queries); err != nil {
		t.Fatal(err)
	}
	resp, err := s.EstimateBatch(ctx, "roads", queries)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Items[0].Cached || resp.CacheHits != 0 {
		t.Fatalf("partial result was cached: %+v", resp.Items[0])
	}
}

// TestBatchAdmissionOncePerRequest: the gate admits the whole batch as
// one request — a saturated gate sheds it with a single 503 and a
// single shed-counter bump, not one per query.
func TestBatchAdmissionOncePerRequest(t *testing.T) {
	block := make(chan struct{})
	b := &stubBackend{block: block}
	s := New(b, Config{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond, CacheSize: -1})
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	defer close(block)

	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = s.Estimate(context.Background(), "roads", q(0, 0, 1, 1))
	}()
	<-started
	// Wait for the slot holder to reach the backend.
	for i := 0; b.estimates.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if b.estimates.Load() == 0 {
		t.Fatal("slot holder never reached the backend")
	}

	rec := postBatch(t, s.Handler(),
		`{"table":"roads","queries":[[0,0,2,2],[0,0,4,4],[0,0,6,6]]}`, "batch-shed")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if eb.Code != http.StatusServiceUnavailable || eb.RequestID != "batch-shed" {
		t.Fatalf("error body %+v", eb)
	}
	if rec.Header().Get("X-Request-Id") != "batch-shed" {
		t.Errorf("X-Request-Id %q", rec.Header().Get("X-Request-Id"))
	}
	if got := reg.Counter("serve_shed_total", "").Value(); got != 1 {
		t.Fatalf("serve_shed_total = %d, want 1 (one admission per batch)", got)
	}
}

// TestBatchUsesNativeBatchBackend: a BatchBackend gets one batch call
// for all unique misses instead of a per-query loop.
func TestBatchUsesNativeBatchBackend(t *testing.T) {
	b := &stubBatchBackend{}
	s := New(b, Config{CacheSize: -1})
	resp, err := s.EstimateBatch(context.Background(), "roads",
		[][4]float64{{0, 0, 1, 1}, {0, 0, 2, 2}, {0, 0, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.batches.Load(); got != 1 {
		t.Fatalf("batch backend called %d times, want 1", got)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("%d items", len(resp.Items))
	}
}

// TestBatchErrorBodyEveryPath covers every early-exit path of the
// /estimate/batch handler: each must answer the structured error
// envelope with the echoed request ID.
func TestBatchErrorBodyEveryPath(t *testing.T) {
	t.Run("method not allowed", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("GET", "/estimate/batch", nil)
		req.Header.Set("X-Request-Id", "bm-1")
		body, rec := getErrorBody(t, h, req, http.StatusMethodNotAllowed)
		if body.RequestID != "bm-1" || rec.Header().Get("X-Request-Id") != "bm-1" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
	t.Run("malformed json", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/estimate/batch", strings.NewReader(`{"table":`))
		req.Header.Set("X-Request-Id", "bm-2")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "bm-2" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
	t.Run("missing table", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/estimate/batch",
			strings.NewReader(`{"queries":[[0,0,1,1]]}`))
		req.Header.Set("X-Request-Id", "bm-3")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "bm-3" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
	t.Run("table from query param", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/estimate/batch?table=roads",
			strings.NewReader(`{"queries":[[0,0,1,1]]}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d, body %s", rec.Code, rec.Body.String())
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/estimate/batch",
			strings.NewReader(`{"table":"roads","queries":[]}`))
		req.Header.Set("X-Request-Id", "bm-4")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "bm-4" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
	t.Run("oversized batch", func(t *testing.T) {
		h := New(&stubBackend{}, Config{}).Handler()
		var sb bytes.Buffer
		sb.WriteString(`{"table":"roads","queries":[`)
		for i := 0; i <= MaxBatchQueries; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(`[0,0,1,1]`)
		}
		sb.WriteString(`]}`)
		req := httptest.NewRequest("POST", "/estimate/batch", &sb)
		req.Header.Set("X-Request-Id", "bm-5")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "bm-5" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
	t.Run("backend error", func(t *testing.T) {
		h := New(&stubBackend{err: errBackendBoom}, Config{}).Handler()
		req := httptest.NewRequest("POST", "/estimate/batch",
			strings.NewReader(`{"table":"roads","queries":[[0,0,1,1]]}`))
		req.Header.Set("X-Request-Id", "bm-6")
		body, _ := getErrorBody(t, h, req, http.StatusBadRequest)
		if body.RequestID != "bm-6" {
			t.Errorf("request ID not echoed: %+v", body)
		}
	})
}
