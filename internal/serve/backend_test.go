package serve

import "repro/internal/spatialdb"

// The engine is the production backend; keep the interface honest.
var _ Backend = (*spatialdb.DB)(nil)
