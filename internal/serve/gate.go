package serve

import (
	"context"
	"errors"
	"time"
)

// errShed reports an admission rejection: every backend slot stayed
// busy for the whole queue timeout. Handlers map it to 503.
var errShed = errors.New("serve: overloaded, request shed after queue timeout")

// gate is a counting-semaphore admission controller with a bounded
// queue wait: a request either gets a slot within queueTimeout or is
// shed. Shedding early under overload keeps served latency bounded
// instead of letting every request crawl (the classic admission-control
// argument).
type gate struct {
	sem          chan struct{}
	queueTimeout time.Duration
}

func newGate(slots int, queueTimeout time.Duration) *gate {
	return &gate{sem: make(chan struct{}, slots), queueTimeout: queueTimeout}
}

// acquire obtains a slot, failing with errShed after the queue timeout
// or the context error if ctx dies first. The fast path (free slot) is
// a single non-blocking channel send.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(g.queueTimeout)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees a slot.
func (g *gate) release() { <-g.sem }

// inFlight returns the currently held slots (for telemetry).
func (g *gate) inFlight() int { return len(g.sem) }
