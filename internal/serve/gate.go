package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/vclock"
)

// ErrShed reports an admission rejection: every backend slot stayed
// busy for the whole queue timeout. Handlers map it to 503. It is
// exported so out-of-package callers (the fault-simulation harness,
// in-process clients) can classify shed requests.
var ErrShed = errors.New("serve: overloaded, request shed after queue timeout")

// gate is a counting-semaphore admission controller with a bounded
// queue wait: a request either gets a slot within queueTimeout or is
// shed. Shedding early under overload keeps served latency bounded
// instead of letting every request crawl (the classic admission-control
// argument). The queue timeout runs on the injected clock, so the
// whole shedding behavior is testable under simulated time.
type gate struct {
	sem          chan struct{}
	queueTimeout time.Duration
	clk          vclock.Clock
}

func newGate(slots int, queueTimeout time.Duration, clk vclock.Clock) *gate {
	if clk == nil {
		clk = vclock.Real()
	}
	return &gate{sem: make(chan struct{}, slots), queueTimeout: queueTimeout, clk: clk}
}

// acquire obtains a slot, failing with ErrShed after the queue timeout
// or the context error if ctx dies first. The fast path (free slot) is
// a single non-blocking channel send.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	timer := g.clk.NewTimer(g.queueTimeout)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-timer.C:
		return ErrShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees a slot.
func (g *gate) release() { <-g.sem }

// inFlight returns the currently held slots (for telemetry).
func (g *gate) inFlight() int { return len(g.sem) }
