package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
)

// panicBackend panics on every estimate until armed is cleared.
type panicBackend struct {
	armed   atomic.Bool
	started chan struct{} // closed once the first estimate is underway
	release chan struct{} // the panicking estimate waits here
	once    sync.Once
}

func (b *panicBackend) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	if b.armed.Load() {
		if b.started != nil {
			b.once.Do(func() { close(b.started) })
			<-b.release
		}
		panic("panicBackend: boom")
	}
	return shard.Result{Estimate: 7, ShardsQueried: 1}, nil
}

func (b *panicBackend) AnalyzeContext(ctx context.Context, table string) error { return nil }
func (b *panicBackend) Tables() []string                                       { return []string{"roads"} }

// TestBackendPanicContained pins the singleflight panic contract: a
// panicking backend must surface as ErrEstimatePanic to the leader AND
// to every follower coalesced onto the flight — a stranded follower
// here is the deadlock the fault-injection harness was built to catch.
// The poisoned flight must also be fully retired: the next request
// reaches the backend again and a recovered backend serves normally.
func TestBackendPanicContained(t *testing.T) {
	b := &panicBackend{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	b.armed.Store(true)
	s := New(b, Config{CacheSize: 16})
	ctx := context.Background()
	query := q(0, 0, 5, 5)

	// Leader enters the flight and parks inside the backend; followers
	// pile onto the same key before the panic fires.
	results := make(chan error, 3)
	go func() {
		_, err := s.Estimate(ctx, "roads", query)
		results <- err
	}()
	<-b.started
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Estimate(ctx, "roads", query)
			results <- err
		}()
	}
	// Give the followers a moment to join the flight, then let the
	// leader panic.
	time.Sleep(10 * time.Millisecond)
	close(b.release)

	for i := 0; i < 3; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrEstimatePanic) {
				t.Fatalf("request %d: got %v, want ErrEstimatePanic", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request never returned: panic stranded the flight")
		}
	}

	// The panic must not be cached and the flight must be gone: a
	// recovered backend serves the same key fresh.
	b.armed.Store(false)
	resp, err := s.Estimate(ctx, "roads", query)
	if err != nil {
		t.Fatalf("estimate after recovery: %v", err)
	}
	if resp.Cached || resp.Shared {
		t.Fatalf("post-panic response should be fresh, got %+v", resp)
	}
	if resp.Estimate != 7 {
		t.Fatalf("estimate %v, want 7", resp.Estimate)
	}
}
