package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// stubBackend is a controllable Backend: per-call delay, failure
// injection, and call counting.
type stubBackend struct {
	mu        sync.Mutex
	estimates atomic.Int64
	analyzes  atomic.Int64
	delay     time.Duration
	block     chan struct{} // when non-nil, estimates wait here
	err       error
	partial   bool
}

func (b *stubBackend) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	b.estimates.Add(1)
	b.mu.Lock()
	delay, block, err, partial := b.delay, b.block, b.err, b.partial
	b.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return shard.Result{Estimate: 1, Partial: true, ShardsQueried: 1, ShardsMissed: 1}, nil
		}
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return shard.Result{Estimate: 1, Partial: true, ShardsQueried: 1, ShardsMissed: 1}, nil
		}
	}
	if err != nil {
		return shard.Result{}, err
	}
	return shard.Result{Estimate: q.Area(), Partial: partial, ShardsTotal: 2, ShardsQueried: 2}, nil
}

func (b *stubBackend) AnalyzeContext(ctx context.Context, table string) error {
	b.analyzes.Add(1)
	b.mu.Lock()
	err := b.err
	b.mu.Unlock()
	return err
}

func (b *stubBackend) Tables() []string { return []string{"roads"} }

func q(x0, y0, x1, y1 float64) geom.Rect { return geom.NewRect(x0, y0, x1, y1) }

func TestEstimateCacheHit(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{})
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	ctx := context.Background()

	r1, err := s.Estimate(ctx, "roads", q(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first lookup cannot be cached")
	}
	r2, err := s.Estimate(ctx, "roads", q(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical second lookup must hit the cache")
	}
	if r2.Estimate != r1.Estimate {
		t.Fatalf("cached estimate %v != original %v", r2.Estimate, r1.Estimate)
	}
	if got := b.estimates.Load(); got != 1 {
		t.Fatalf("backend consulted %d times, want 1", got)
	}
	if reg.Counter("serve_cache_hits_total", "").Value() != 1 {
		t.Error("hit counter should be 1")
	}
	if reg.Counter("serve_cache_misses_total", "").Value() != 1 {
		t.Error("miss counter should be 1")
	}
}

func TestEstimateCacheQuantization(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{CacheQuantum: 0.5})
	ctx := context.Background()
	if _, err := s.Estimate(ctx, "roads", q(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	// Within half a quantum of the first query: same lattice cell.
	r2, err := s.Estimate(ctx, "roads", q(0.1, 0.1, 10.1, 10.1))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("query within the same lattice cell should hit")
	}
	// A different table must not share entries.
	r3, err := s.Estimate(ctx, "other", q(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("different table must miss")
	}
}

func TestPartialResultsNotCached(t *testing.T) {
	b := &stubBackend{partial: true}
	s := New(b, Config{})
	ctx := context.Background()
	r1, err := s.Estimate(ctx, "roads", q(0, 0, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Partial {
		t.Fatal("stub should have produced a partial result")
	}
	r2, err := s.Estimate(ctx, "roads", q(0, 0, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cached {
		t.Fatal("partial results must not be cached")
	}
	if b.estimates.Load() != 2 {
		t.Fatalf("backend consulted %d times, want 2", b.estimates.Load())
	}
}

func TestAnalyzeInvalidatesCache(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{})
	ctx := context.Background()
	if _, err := s.Estimate(ctx, "roads", q(0, 0, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(ctx, "roads"); err != nil {
		t.Fatal(err)
	}
	r, err := s.Estimate(ctx, "roads", q(0, 0, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("analyze must invalidate the table's cached estimates")
	}
}

func TestSingleflightSuppressesDuplicates(t *testing.T) {
	block := make(chan struct{})
	b := &stubBackend{block: block}
	s := New(b, Config{})
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	ctx := context.Background()

	const racers = 8
	var wg sync.WaitGroup
	results := make([]EstimateResponse, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Estimate(ctx, "roads", q(0, 0, 7, 7))
		}(i)
	}
	// Let the leader reach the backend and the followers pile up, then
	// release everyone.
	deadline := time.Now().Add(2 * time.Second)
	for b.estimates.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let followers join the flight
	close(block)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if got := b.estimates.Load(); got != 1 {
		t.Fatalf("backend consulted %d times, want 1 (singleflight)", got)
	}
	shared := 0
	for _, r := range results {
		if r.Shared {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no racer reported a shared flight")
	}
	if got := reg.Counter("serve_singleflight_suppressed_total", "").Value(); got == 0 {
		t.Error("suppression counter should be > 0")
	}
}

func TestAdmissionGateSheds(t *testing.T) {
	block := make(chan struct{})
	b := &stubBackend{block: block}
	s := New(b, Config{MaxInFlight: 1, QueueTimeout: 30 * time.Millisecond, CacheSize: -1})
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	ctx := context.Background()

	// Occupy the only slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Estimate(ctx, "roads", q(0, 0, 1, 1))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for b.estimates.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// A different query (different flight) must shed after the queue
	// timeout.
	_, err := s.Estimate(ctx, "roads", q(5, 5, 6, 6))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if got := reg.Counter("serve_shed_total", "").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	close(block)
	wg.Wait()
}

func TestHTTPEndpoints(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{})
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// /healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string   `json:"status"`
		Tables []string `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("/healthz: %d %+v", resp.StatusCode, health)
	}
	if len(health.Tables) != 1 || health.Tables[0] != "roads" {
		t.Fatalf("/healthz tables: %v", health.Tables)
	}

	// /estimate
	resp, err = http.Get(ts.URL + "/estimate?table=roads&minx=0&miny=0&maxx=10&maxy=10")
	if err != nil {
		t.Fatal(err)
	}
	var est EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/estimate: status %d", resp.StatusCode)
	}
	if est.Estimate != 100 { // stub returns q.Area()
		t.Fatalf("/estimate: got %v, want 100", est.Estimate)
	}

	// /estimate parameter validation
	for _, bad := range []string{
		"/estimate?minx=0&miny=0&maxx=1&maxy=1",             // no table
		"/estimate?table=roads&minx=0",                      // missing coords
		"/estimate?table=roads&minx=a&miny=0&maxx=1&maxy=1", // non-numeric
		"/estimate?table=roads&minx=5&miny=0&maxx=1&maxy=1", // inverted
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// /analyze requires POST
	resp, err = http.Get(ts.URL + "/analyze?table=roads")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("/analyze GET: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/analyze?table=roads", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var an AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&an); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || an.Table != "roads" {
		t.Fatalf("/analyze POST: %d %+v", resp.StatusCode, an)
	}
	if b.analyzes.Load() != 1 {
		t.Fatalf("backend analyzes = %d, want 1", b.analyzes.Load())
	}

	// Request counters carried endpoint/code labels.
	if got := reg.Counter("serve_requests_total", "",
		telemetry.Label{Key: "endpoint", Value: "healthz"},
		telemetry.Label{Key: "code", Value: "200"}).Value(); got != 1 {
		t.Errorf("healthz 200 counter = %d, want 1", got)
	}
}

func TestHTTPBackendError(t *testing.T) {
	b := &stubBackend{err: fmt.Errorf("no such table")}
	s := New(b, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/estimate?table=nope&minx=0&miny=0&maxx=1&maxy=1")
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || body.Error == "" {
		t.Fatalf("backend error: %d %+v", resp.StatusCode, body)
	}
}

func TestServeAndGracefulShutdown(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{})
	ln, err := net_Listen(t)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	// The endpoint must answer while serving.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
