package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// Table-driven edge cases for cache-key quantization: lattice-boundary
// straddling, point queries, coordinates far outside any data MBR, and
// exact (negative-quantum) keying. The invariant under test is
// twofold: queries that must share an entry do, queries that must not
// never do, and no coordinate magnitude panics or overflows the key.
func TestQuantizeKeyEdgeCases(t *testing.T) {
	const q5 = 0.5
	cases := []struct {
		name    string
		quantum float64
		a, b    geom.Rect
		same    bool
	}{
		{
			// 0.24/0.5 rounds to 0, 0.26/0.5 rounds to 1: the two
			// queries straddle the lattice-cell boundary at 0.25.
			name:    "boundary-straddle-splits",
			quantum: q5,
			a:       geom.NewRect(0.24, 0, 1, 1),
			b:       geom.NewRect(0.26, 0, 1, 1),
			same:    false,
		},
		{
			// Both inside the same cell (round to 0): deliberate
			// collision, one entry.
			name:    "same-cell-collides",
			quantum: q5,
			a:       geom.NewRect(0.01, 0.01, 1.01, 1.01),
			b:       geom.NewRect(0.24, 0.24, 1.24, 1.24),
			same:    true,
		},
		{
			// Exactly on the half-cell boundary: Round is
			// half-away-from-zero on both sides of zero, so +0.25 and
			// -0.25 land in different cells, not a shared "cell 0".
			name:    "half-boundary-signs-split",
			quantum: q5,
			a:       geom.NewRect(0.25, 0, 1, 1),
			b:       geom.NewRect(-0.25, 0, 1, 1),
			same:    false,
		},
		{
			name:    "point-queries-same-cell",
			quantum: q5,
			a:       geom.PointRect(geom.Point{X: 3.01, Y: 3.01}),
			b:       geom.PointRect(geom.Point{X: 3.02, Y: 3.02}),
			same:    true,
		},
		{
			name:    "point-queries-different-cells",
			quantum: q5,
			a:       geom.PointRect(geom.Point{X: 3.01, Y: 3.01}),
			b:       geom.PointRect(geom.Point{X: 3.51, Y: 3.01}),
			same:    false,
		},
		{
			// Far outside any data MBR, at magnitudes where v/quantum
			// is ~1e306 — must stay finite, keyed, and distinct.
			name:    "huge-coordinates-distinct",
			quantum: 1e-6,
			a:       geom.NewRect(1e300, 1e300, 1e300+1, 1e300+1),
			b:       geom.NewRect(-1e300, -1e300, -1e300+1, -1e300+1),
			same:    false,
		},
		{
			// Denormal-scale coordinates collapse into cell 0 at any
			// sane quantum — a collision, not a crash.
			name:    "tiny-coordinates-collide",
			quantum: 1e-6,
			a:       geom.NewRect(1e-300, 0, 2e-300, 1e-300),
			b:       geom.NewRect(3e-300, 0, 4e-300, 2e-300),
			same:    true,
		},
		{
			// Negative quantum disables quantization: nearly-equal but
			// distinct floats must key separately.
			name:    "exact-keys-split-nearby",
			quantum: -1,
			a:       geom.NewRect(0.1, 0.1, 1, 1),
			b:       geom.NewRect(0.1+1e-12, 0.1, 1, 1),
			same:    false,
		},
		{
			name:    "zero-quantum-is-exact",
			quantum: 0,
			a:       geom.NewRect(0.1, 0.1, 1, 1),
			b:       geom.NewRect(0.1+1e-12, 0.1, 1, 1),
			same:    false,
		},
		{
			// Identical rects always share, whatever the quantum.
			name:    "identical-share-exact",
			quantum: -1,
			a:       geom.NewRect(1e300, -1e300, 1e301, 1e300),
			b:       geom.NewRect(1e300, -1e300, 1e301, 1e300),
			same:    true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ka := quantizeKey("roads", tc.a, tc.quantum)
			kb := quantizeKey("roads", tc.b, tc.quantum)
			for _, v := range []float64{ka.x0, ka.y0, ka.x1, ka.y1, kb.x0, kb.y0, kb.x1, kb.y1} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite key component %v (keys %+v, %+v)", v, ka, kb)
				}
			}
			if (ka == kb) != tc.same {
				t.Errorf("keys equal = %v, want %v (a=%+v b=%+v)", ka == kb, tc.same, ka, kb)
			}
			// The table is part of the key regardless of quantization.
			if other := quantizeKey("rivers", tc.a, tc.quantum); other == ka {
				t.Error("different tables must never share a key")
			}
		})
	}
}

// TestQuantizedCollisionServesNeighbor pins the documented trade: two
// distinct queries inside one lattice cell share a cache entry, and
// the second is answered with the first's estimate — served as a hit,
// never a panic or a backend call.
func TestQuantizedCollisionServesNeighbor(t *testing.T) {
	b := &stubBackend{}
	s := New(b, Config{CacheQuantum: 0.5, CacheSize: 16})
	ctx := context.Background()

	r1, err := s.Estimate(ctx, "roads", q(0.01, 0.01, 10.01, 10.01))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Estimate(ctx, "roads", q(0.05, 0.05, 10.05, 10.05))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("same-cell neighbor should be a cache hit")
	}
	if r2.Estimate != r1.Estimate {
		t.Fatalf("collision must serve the cached estimate: %v != %v", r2.Estimate, r1.Estimate)
	}
	if got := b.estimates.Load(); got != 1 {
		t.Fatalf("backend called %d times, want 1", got)
	}
	// The straddling neighbor is a different cell: fresh computation.
	r3, err := s.Estimate(ctx, "roads", q(0.26, 0.01, 10.26, 10.01))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("cross-boundary query must not hit the neighbor's entry")
	}
}

// TestCacheTTLExpiresOnVirtualClock drives the cache TTL on the
// simulated clock: an entry is served before its TTL and dropped
// after, with no real sleeping.
func TestCacheTTLExpiresOnVirtualClock(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	b := &stubBackend{}
	s := New(b, Config{CacheSize: 16, CacheTTL: time.Minute, Clock: sim})
	ctx := context.Background()
	query := q(0, 0, 10, 10)

	if _, err := s.Estimate(ctx, "roads", query); err != nil {
		t.Fatal(err)
	}
	sim.Advance(59 * time.Second)
	r2, err := s.Estimate(ctx, "roads", query)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("entry inside TTL must be served from cache")
	}
	sim.Advance(2 * time.Second) // now 61s past insertion
	r3, err := s.Estimate(ctx, "roads", query)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("entry past TTL must be recomputed")
	}
	if got := b.estimates.Load(); got != 2 {
		t.Fatalf("backend called %d times, want 2 (initial + post-expiry)", got)
	}
	// Direct cache check: the expired entry was removed, not retained.
	c := newLRUCache(4, time.Minute, sim)
	c.add(cacheKey{table: "t"}, shard.Result{Estimate: 1})
	sim.Advance(2 * time.Minute)
	if _, ok := c.get(cacheKey{table: "t"}); ok {
		t.Fatal("expired entry still served")
	}
	if c.len() != 0 {
		t.Fatalf("expired entry still resident: len=%d", c.len())
	}
}
