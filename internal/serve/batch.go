package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/shard"
	"repro/internal/vclock"
)

// Batch estimation endpoint. A planner probing hundreds of candidate
// predicates pays the serving tier's per-request overhead — request ID,
// trace, admission, deadline — once per batch instead of once per
// query. The layering per batch is: parse → per-item validation →
// per-item cache lookup → intra-batch dedup → admission gate (once) →
// backend batch call under one deadline → per-item cache fill.
//
// Error isolation is per item for anything item-shaped (an invalid
// rectangle yields an item-level error while the rest of the batch is
// answered) and per request for anything request-shaped (shed
// admission, backend failure, malformed JSON), which always returns the
// structured errorBody with the request ID. Batches do not join the
// cross-request singleflight: duplicate queries within one batch are
// deduplicated (the copies report Shared), but two concurrent batches
// may walk the same query twice.

// BatchBackend is the optional Backend extension for amortized
// multi-query estimation; *spatialdb.DB and *cluster.Coordinator
// implement it. Backends without it are served by looping
// EstimateContext under the same admission slot and deadline.
type BatchBackend interface {
	// EstimateBatchContext estimates every query against the named
	// table's statistics snapshot, one Result per query, in order.
	EstimateBatchContext(ctx context.Context, table string, qs []geom.Rect) ([]shard.Result, error)
}

// MaxBatchQueries bounds one /estimate/batch request.
const MaxBatchQueries = 4096

// maxBatchBody bounds the /estimate/batch request body (4 MiB holds a
// full MaxBatchQueries batch with room to spare).
const maxBatchBody = 4 << 20

// BatchRequest is the JSON body of /estimate/batch.
type BatchRequest struct {
	Table string `json:"table"`
	// Queries are [minx, miny, maxx, maxy] rectangles.
	Queries [][4]float64 `json:"queries"`
}

// BatchItem is one query's answer within a BatchResponse. Either the
// estimate fields or Error/Code are set, never both.
type BatchItem struct {
	Query    [4]float64 `json:"query"`
	Estimate float64    `json:"estimate"`
	Quality  string     `json:"quality,omitempty"`
	Partial  bool       `json:"partial,omitempty"`
	Cached   bool       `json:"cached,omitempty"`
	// Shared reports the answer was computed once for an identical
	// query earlier in the same batch.
	Shared bool   `json:"shared,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	// Error and Code report an item-level failure (an invalid
	// rectangle); the rest of the batch is unaffected.
	Error string `json:"error,omitempty"`
	Code  int    `json:"code,omitempty"`
}

// BatchResponse is the JSON body of /estimate/batch.
type BatchResponse struct {
	Table     string      `json:"table"`
	Items     []BatchItem `json:"items"`
	CacheHits int         `json:"cache_hits"`
	Errors    int         `json:"errors"`
	RequestID string      `json:"request_id,omitempty"`
}

// EstimateBatch runs the batched serving path for one table. It is the
// engine behind /estimate/batch and is exported for in-process callers
// and benchmarks.
func (s *Server) EstimateBatch(ctx context.Context, table string, queries [][4]float64) (BatchResponse, error) {
	start := s.clk.Now()
	defer func() { s.requestSeconds.Observe(s.clk.Since(start).Seconds()) }()
	reqID := s.resolveRequestID(ctx)
	ctx, tr := s.cfg.Tracer.StartRequest(ctx, reqID)
	resp := BatchResponse{Table: table, Items: make([]BatchItem, len(queries)), RequestID: reqID}
	bs := reqtrace.SpanFrom(ctx).StartChild("serve.batch")
	bs.SetInt("queries", len(queries))

	// Per-item validation and cache lookup; misses are deduplicated by
	// cache key so an identical query is walked once per batch. The
	// first item for a key is the leader; later copies report Shared.
	type missRef struct {
		item, uniq int
		shared     bool
	}
	var (
		missQs    []geom.Rect
		missRefs  []missRef
		uniqByKey = make(map[cacheKey]int)
	)
	for i, qv := range queries {
		it := &resp.Items[i]
		it.Query = qv
		q := geom.Rect{MinX: qv[0], MinY: qv[1], MaxX: qv[2], MaxY: qv[3]}
		if !q.Valid() {
			it.Error = fmt.Sprintf("invalid rectangle %v", q)
			it.Code = http.StatusBadRequest
			resp.Errors++
			continue
		}
		key := quantizeKey(table, q, s.cfg.CacheQuantum)
		if s.cache != nil {
			if res, ok := s.cache.get(key); ok {
				s.hits.Inc()
				resp.CacheHits++
				fillBatchItem(it, res, true, false)
				s.noteQuality(res.Quality)
				continue
			}
		}
		s.misses.Inc()
		if u, ok := uniqByKey[key]; ok {
			// Duplicate within the batch: reuse the earlier walk.
			missRefs = append(missRefs, missRef{item: i, uniq: u, shared: true})
			continue
		}
		uniqByKey[key] = len(missQs)
		missRefs = append(missRefs, missRef{item: i, uniq: len(missQs)})
		missQs = append(missQs, q)
	}
	bs.SetInt("cache_hits", resp.CacheHits)
	bs.SetInt("invalid", resp.Errors)
	bs.SetInt("backend_queries", len(missQs))

	if len(missQs) > 0 {
		// One admission slot and one deadline cover the whole batch.
		gs := bs.StartChild("serve.gate")
		if err := s.gate.acquire(ctx); err != nil {
			gs.SetAttr("outcome", errClass(err))
			gs.End()
			bs.End()
			if errors.Is(err, ErrShed) {
				s.shed.Inc()
				s.queueTimeouts.Inc()
			}
			s.finishBatchTrace(tr, table, resp, err)
			return BatchResponse{}, err
		}
		gs.SetAttr("outcome", "admitted")
		gs.End()
		s.inFlight.Set(float64(s.gate.inFlight()))
		ectx, cancel := vclock.WithTimeout(ctx, s.clk, s.cfg.EstimateTimeout)
		bks := bs.StartChild("serve.backend")
		results, err := s.batchBackend(reqtrace.ContextWithSpan(ectx, bks), table, missQs)
		bks.End()
		cancel()
		s.gate.release()
		if err != nil {
			bs.End()
			s.finishBatchTrace(tr, table, resp, err)
			return BatchResponse{}, err
		}
		for _, ref := range missRefs {
			res := results[ref.uniq]
			it := &resp.Items[ref.item]
			fillBatchItem(it, res, false, ref.shared)
			if res.Partial || res.Quality != shard.QualityFull {
				s.partials.Inc()
			}
			s.noteQuality(res.Quality)
		}
		if s.cache != nil {
			for key, u := range uniqByKey {
				if res := results[u]; !res.Partial && res.Quality == shard.QualityFull {
					s.cache.add(key, res)
				}
			}
			s.cacheEntries.Set(float64(s.cache.len()))
		}
	}
	bs.End()
	s.finishBatchTrace(tr, table, resp, nil)
	return resp, nil
}

// batchBackend calls the backend's native batch method when it has
// one, else loops EstimateContext under the already-held admission
// slot and deadline.
func (s *Server) batchBackend(ctx context.Context, table string, qs []geom.Rect) ([]shard.Result, error) {
	if bb, ok := s.backend.(BatchBackend); ok {
		return bb.EstimateBatchContext(ctx, table, qs)
	}
	out := make([]shard.Result, 0, len(qs))
	for _, q := range qs {
		r, err := s.backend.EstimateContext(ctx, table, q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// fillBatchItem copies one backend result into its response item.
func fillBatchItem(it *BatchItem, res shard.Result, cached, shared bool) {
	it.Estimate = res.Estimate
	it.Partial = res.Partial
	it.Quality = res.Quality.String()
	it.Cached = cached
	it.Shared = shared
	it.Epoch = res.Epoch
}

// finishBatchTrace seals a batch request's trace with an aggregate
// outcome: the batch size as ShardsQueried is meaningless here, so the
// outcome carries the table, the worst item quality, and the error
// class.
func (s *Server) finishBatchTrace(tr *reqtrace.Trace, table string, resp BatchResponse, err error) {
	worst := shard.QualityFull
	partial := false
	var total float64
	for _, it := range resp.Items {
		if it.Error != "" {
			continue
		}
		total += it.Estimate
		if it.Partial {
			partial = true
		}
		switch it.Quality {
		case shard.QualityUniform.String():
			worst = worseBatchQuality(worst, shard.QualityUniform)
		case shard.QualityCoarse.String():
			worst = worseBatchQuality(worst, shard.QualityCoarse)
		}
	}
	tr.Finish(reqtrace.Outcome{
		Table:    table,
		Estimate: total,
		Quality:  worst.String(),
		Partial:  partial,
		Err:      errClass(err),
	})
}

// worseBatchQuality mirrors shard.worseQuality for the aggregate grade.
func worseBatchQuality(a, b shard.Quality) shard.Quality {
	if b > a {
		return b
	}
	return a
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	reqID := s.httpRequestID(w, r)
	if r.Method != http.MethodPost {
		s.writeJSON(w, "estimate_batch", http.StatusMethodNotAllowed,
			errorBody{Error: "POST required", Code: http.StatusMethodNotAllowed, RequestID: reqID})
		return
	}
	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeJSON(w, "estimate_batch", http.StatusBadRequest,
			errorBody{Error: "bad request body: " + err.Error(), Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	if req.Table == "" {
		req.Table = r.URL.Query().Get("table")
	}
	if req.Table == "" {
		s.writeJSON(w, "estimate_batch", http.StatusBadRequest,
			errorBody{Error: "missing table", Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	if len(req.Queries) == 0 {
		s.writeJSON(w, "estimate_batch", http.StatusBadRequest,
			errorBody{Error: "empty batch", Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		s.writeJSON(w, "estimate_batch", http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), MaxBatchQueries),
				Code: http.StatusBadRequest, RequestID: reqID})
		return
	}
	resp, err := s.EstimateBatch(reqtrace.WithRequestID(r.Context(), reqID), req.Table, req.Queries)
	if err != nil {
		s.writeError(w, "estimate_batch", reqID, err)
		return
	}
	s.writeJSON(w, "estimate_batch", http.StatusOK, resp)
}
