package tiger

import (
	"math/rand"
	"testing"
)

// RoadNetworkRand with a generator seeded like cfg.Seed must reproduce
// RoadNetwork exactly.
func TestRoadNetworkRandMatchesSeeded(t *testing.T) {
	cfg := DefaultNJRoad()
	cfg.Segments = 2000

	seeded := RoadNetwork(cfg)
	injected := RoadNetworkRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
	if seeded.N() != injected.N() {
		t.Fatalf("got %d vs %d segments", seeded.N(), injected.N())
	}
	for i := 0; i < seeded.N(); i++ {
		if seeded.Rect(i) != injected.Rect(i) {
			t.Fatalf("segment %d: %v != %v", i, seeded.Rect(i), injected.Rect(i))
		}
	}
}
