package tiger

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestRT1RoundTrip(t *testing.T) {
	segments := []Segment{
		{X1: -74.123456, Y1: 40.5, X2: -74.1, Y2: 40.6},
		{X1: 0, Y1: 0, X2: 1, Y2: 1},
		{X1: -1.000001, Y1: -2.000002, X2: -0.5, Y2: -0.25},
	}
	var buf bytes.Buffer
	if err := WriteRT1(&buf, segments); err != nil {
		t.Fatal(err)
	}
	d, err := ReadRT1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != len(segments) {
		t.Fatalf("N = %d, want %d", d.N(), len(segments))
	}
	for i, s := range segments {
		want := s.Rect()
		got := d.Rect(i)
		for _, pair := range [][2]float64{
			{got.MinX, want.MinX}, {got.MinY, want.MinY},
			{got.MaxX, want.MaxX}, {got.MaxY, want.MaxY},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-6 {
				t.Fatalf("segment %d: got %v, want %v", i, got, want)
			}
		}
	}
}

func TestRT1RecordFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRT1(&buf, []Segment{{X1: -74.5, Y1: 40.25, X2: -74.25, Y2: 40.5}}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimRight(buf.String(), "\n")
	if len(line) != 228 {
		t.Fatalf("record length = %d, want 228", len(line))
	}
	if line[0] != '1' {
		t.Fatalf("record type = %q, want '1'", line[0])
	}
	// FRLONG field (cols 191-200, zero-based 190:200).
	if got := line[190:200]; got != "-074500000" {
		t.Fatalf("FRLONG field = %q, want -074500000", got)
	}
	if got := line[200:209]; got != "+40250000" {
		t.Fatalf("FRLAT field = %q, want +40250000", got)
	}
}

func TestReadRT1SkipsOtherRecordTypes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRT1(&buf, []Segment{{X1: 0, Y1: 0, X2: 1, Y2: 1}}); err != nil {
		t.Fatal(err)
	}
	mixed := "2" + strings.Repeat(" ", 100) + "\n" + buf.String() + "4short\n"
	d, err := ReadRT1(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 1 {
		t.Fatalf("N = %d, want 1 (other record types skipped)", d.N())
	}
}

func TestReadRT1Errors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"short record", "1 too short\n"},
		{"garbage coords", "1" + strings.Repeat("x", 227) + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadRT1(strings.NewReader(c.in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Blank lines are fine.
	if d, err := ReadRT1(strings.NewReader("\n\n")); err != nil || d.N() != 0 {
		t.Fatalf("blank input: %v, N=%d", err, d.N())
	}
}

func TestParseCoord(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"+074123456", 74.123456, true},
		{"-074123456", -74.123456, true},
		{" +40250000", 40.25, true},
		{"          ", 0, false},
		{"+07412345x", 0, false},
	}
	for _, c := range cases {
		got, err := parseCoord(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseCoord(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && math.Abs(got-c.want) > 1e-9 {
			t.Errorf("parseCoord(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestRoadNetworkProperties(t *testing.T) {
	cfg := DefaultNJRoad()
	cfg.Segments = 50000 // scaled for test speed
	d := RoadNetwork(cfg)
	if d.N() != cfg.Segments {
		t.Fatalf("N = %d, want %d", d.N(), cfg.Segments)
	}
	bound := geom.NewRect(0, 0, cfg.Space, cfg.Space)
	for i, r := range d.Rects() {
		if !r.Valid() || !bound.Contains(r) {
			t.Fatalf("rect %d = %v escapes space", i, r)
		}
	}
	// Road segments are tiny relative to the space (mild size skew).
	if d.AvgWidth() > cfg.Space/50 || d.AvgHeight() > cfg.Space/50 {
		t.Fatalf("segments too large: Wavg=%g Havg=%g", d.AvgWidth(), d.AvgHeight())
	}
	// Placement skew: the densest 20x20-cell must hold far more than
	// the uniform share.
	const g = 20
	var counts [g * g]int
	for _, r := range d.Rects() {
		c := r.Center()
		x := int(c.X / (cfg.Space / g))
		y := int(c.Y / (cfg.Space / g))
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		counts[y*g+x]++
	}
	max, nonEmpty := 0, 0
	for _, v := range counts {
		if v > max {
			max = v
		}
		if v > 0 {
			nonEmpty++
		}
	}
	uniformShare := cfg.Segments / (g * g)
	if max < 5*uniformShare {
		t.Fatalf("densest cell %d not >> uniform share %d: no urban skew", max, uniformShare)
	}
	// Rural background keeps most of the state covered.
	if nonEmpty < g*g/2 {
		t.Fatalf("only %d/%d cells populated; rural coverage missing", nonEmpty, g*g)
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	cfg := DefaultNJRoad()
	cfg.Segments = 2000
	a := RoadNetwork(cfg)
	b := RoadNetwork(cfg)
	for i := range a.Rects() {
		if a.Rect(i) != b.Rect(i) {
			t.Fatalf("rect %d differs across runs", i)
		}
	}
	cfg.Seed++
	c := RoadNetwork(cfg)
	diff := false
	for i := range a.Rects() {
		if a.Rect(i) != c.Rect(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical networks")
	}
}

func TestRoadNetworkEmpty(t *testing.T) {
	d := RoadNetwork(RoadNetConfig{Segments: 0})
	if d.N() != 0 {
		t.Fatalf("N = %d, want 0", d.N())
	}
}

func TestNJRoadScaling(t *testing.T) {
	d := NJRoad(1000)
	if d.N() != 1000 {
		t.Fatalf("N = %d, want 1000", d.N())
	}
}
