package tiger

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRT1 asserts the RT1 reader never panics and that accepted
// inputs produce valid distributions.
func FuzzReadRT1(f *testing.F) {
	var good bytes.Buffer
	_ = WriteRT1(&good, []Segment{{X1: -74.5, Y1: 40.25, X2: -74.25, Y2: 40.5}})
	seeds := []string{
		good.String(),
		"",
		"\n\n",
		"2 other record type\n",
		"1 short\n",
		"1" + strings.Repeat("x", 227) + "\n",
		"1" + strings.Repeat(" ", 227) + "\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<16 {
			return
		}
		d, err := ReadRT1(strings.NewReader(s))
		if err != nil {
			return
		}
		for i := 0; i < d.N(); i++ {
			if !d.Rect(i).Valid() {
				t.Fatalf("accepted invalid rect %v", d.Rect(i))
			}
		}
	})
}
