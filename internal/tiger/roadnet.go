package tiger

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// RoadNetConfig parameterizes the synthetic state road network that
// substitutes for the TIGER NJ Road dataset. The defaults of
// DefaultNJRoad approximate New Jersey's road data: ~414K short
// segments, heavy placement skew around a handful of urban cores, a
// sparse rural background, and long thin highway chains.
type RoadNetConfig struct {
	// Segments is the approximate number of road segments to generate.
	Segments int
	// Space is the side length of the square region in coordinate units.
	Space float64
	// Cities is the number of population centers. City weights are
	// Zipf-distributed (rank-1 city ≈ the metro area).
	Cities int
	// UrbanShare is the fraction of segments in city street grids.
	UrbanShare float64
	// HighwayShare is the fraction of segments in inter-city highways.
	HighwayShare float64
	// The remainder is rural local roads scattered uniformly.

	Seed int64
}

// DefaultNJRoad returns the configuration used for the paper's NJ Road
// experiments: 414,442 segments, matching the TIGER count.
func DefaultNJRoad() RoadNetConfig {
	return RoadNetConfig{
		Segments:     414442,
		Space:        10000,
		Cities:       24,
		UrbanShare:   0.70,
		HighwayShare: 0.12,
		Seed:         1999,
	}
}

// RoadNetwork generates the synthetic road segments and returns their
// bounding boxes as a Distribution. Determinism follows from the seed.
func RoadNetwork(cfg RoadNetConfig) *dataset.Distribution {
	return RoadNetworkRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// RoadNetworkRand is RoadNetwork drawing from an injected generator;
// cfg.Seed is ignored in favor of the generator's state.
func RoadNetworkRand(rng *rand.Rand, cfg RoadNetConfig) *dataset.Distribution {
	if cfg.Segments <= 0 {
		return dataset.FromRects(nil)
	}
	segments := make([]Segment, 0, cfg.Segments)

	// Population centers with Zipf weights: the rank-1 city dominates.
	type city struct {
		x, y   float64
		weight float64
		radius float64
	}
	cities := make([]city, cfg.Cities)
	var wsum float64
	for i := range cities {
		w := 1 / math.Pow(float64(i+1), 1.0)
		cities[i] = city{
			x:      rng.Float64() * cfg.Space,
			y:      rng.Float64() * cfg.Space,
			weight: w,
			// Larger cities sprawl further.
			radius: cfg.Space * (0.015 + 0.05*w),
		}
		wsum += w
	}

	clampSeg := func(s Segment) Segment {
		c := func(v float64) float64 {
			if v < 0 {
				return 0
			}
			if v > cfg.Space {
				return cfg.Space
			}
			return v
		}
		return Segment{X1: c(s.X1), Y1: c(s.Y1), X2: c(s.X2), Y2: c(s.Y2)}
	}

	// Urban street grids: short axis-aligned blocks laid out in runs
	// ("streets") radiating through each city with Gaussian falloff.
	urban := int(cfg.UrbanShare * float64(cfg.Segments))
	blockLen := cfg.Space / 400 // a city block
	for len(segments) < urban {
		// Pick a city by weight.
		u := rng.Float64() * wsum
		var ct city
		for _, c := range cities {
			if u -= c.weight; u <= 0 {
				ct = c
				break
			}
		}
		// A street: a run of consecutive blocks, horizontal or vertical,
		// anchored at a Gaussian offset from the city center.
		x := ct.x + rng.NormFloat64()*ct.radius
		y := ct.y + rng.NormFloat64()*ct.radius
		run := 3 + rng.Intn(12)
		horizontal := rng.Intn(2) == 0
		for b := 0; b < run && len(segments) < urban; b++ {
			var s Segment
			if horizontal {
				s = Segment{X1: x + float64(b)*blockLen, Y1: y, X2: x + float64(b+1)*blockLen, Y2: y}
			} else {
				s = Segment{X1: x, Y1: y + float64(b)*blockLen, X2: x, Y2: y + float64(b+1)*blockLen}
			}
			segments = append(segments, clampSeg(s))
		}
	}

	// Highways: polylines between random city pairs, subdivided into
	// short segments with lateral jitter (roads are not straight).
	highway := int(cfg.HighwayShare * float64(cfg.Segments))
	segLen := cfg.Space / 250
	for len(segments) < urban+highway {
		a := cities[rng.Intn(len(cities))]
		b := cities[rng.Intn(len(cities))]
		dx, dy := b.x-a.x, b.y-a.y
		dist := math.Hypot(dx, dy)
		if dist < cfg.Space/20 {
			continue
		}
		steps := int(dist / segLen)
		px, py := a.x, a.y
		for s := 1; s <= steps && len(segments) < urban+highway; s++ {
			t := float64(s) / float64(steps)
			jitter := cfg.Space / 500
			nx := a.x + dx*t + rng.NormFloat64()*jitter
			ny := a.y + dy*t + rng.NormFloat64()*jitter
			segments = append(segments, clampSeg(Segment{X1: px, Y1: py, X2: nx, Y2: ny}))
			px, py = nx, ny
		}
	}

	// Rural roads: short segments scattered uniformly.
	for len(segments) < cfg.Segments {
		x, y := rng.Float64()*cfg.Space, rng.Float64()*cfg.Space
		ang := rng.Float64() * 2 * math.Pi
		l := blockLen * (1 + 2*rng.Float64())
		segments = append(segments, clampSeg(Segment{
			X1: x, Y1: y,
			X2: x + l*math.Cos(ang), Y2: y + l*math.Sin(ang),
		}))
	}

	return BoundingBoxes(segments)
}

// NJRoad generates the default NJ-Road-like dataset scaled to n
// segments (pass 0 for the full 414,442).
func NJRoad(n int) *dataset.Distribution {
	cfg := DefaultNJRoad()
	if n > 0 {
		cfg.Segments = n
	}
	return RoadNetwork(cfg)
}
