// Package tiger provides the TIGER/Line substrate the paper evaluates
// on (Section 5.1.1). The U.S. Census TIGER files themselves are not
// redistributable here, so the package supplies two pieces:
//
//   - a reader and writer for the coordinate subset of TIGER/Line
//     Record Type 1 ("complete chains"), the fixed-width format in
//     which the 1992 TIGER road data ships. Only the from/to longitude
//     and latitude fields are interpreted; every segment becomes the
//     bounding box of the chain, exactly as the paper computes
//     "bounding boxes of all the line segments";
//
//   - a synthetic road-network generator (see roadnet.go) that
//     reproduces the statistical properties of state road data — dense
//     urban street grids around Zipf-weighted population centers,
//     inter-city highways, and sparse rural roads — so the NJ Road
//     experiments run end to end without census data.
package tiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Record Type 1 layout (1992 technical documentation): each record is a
// fixed-width line of 228 characters. The fields this package reads are
// the chain endpoints, stored as signed integers with six implied
// decimal places:
//
//	columns 191-200  FRLONG  from-node longitude (10 chars, +/-)
//	columns 201-209  FRLAT   from-node latitude   (9 chars, +/-)
//	columns 210-219  TOLONG  to-node longitude   (10 chars, +/-)
//	columns 220-228  TOLAT   to-node latitude     (9 chars, +/-)
const (
	rt1Length  = 228
	frlongOff  = 190 // zero-based offsets
	frlongLen  = 10
	frlatOff   = 200
	frlatLen   = 9
	tolongOff  = 209
	tolongLen  = 10
	tolatOff   = 219
	tolatLen   = 9
	coordScale = 1e6
)

// ReadRT1 parses TIGER/Line Record Type 1 lines from r and returns the
// bounding boxes of the chains' from/to endpoints. Records of the
// wrong length or with unparsable coordinate fields are rejected. The
// record type indicator (column 1) must be '1'; other record types are
// skipped so concatenated TIGER files can be fed directly.
func ReadRT1(r io.Reader) (*dataset.Distribution, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	d := &dataset.Distribution{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) == 0 {
			continue
		}
		if line[0] != '1' {
			continue // other record types (2, 4, 5, ...) carry no chain endpoints
		}
		if len(line) < rt1Length {
			return nil, fmt.Errorf("tiger: line %d: record length %d < %d", lineNo, len(line), rt1Length)
		}
		frlong, err := parseCoord(line[frlongOff : frlongOff+frlongLen])
		if err != nil {
			return nil, fmt.Errorf("tiger: line %d: FRLONG: %v", lineNo, err)
		}
		frlat, err := parseCoord(line[frlatOff : frlatOff+frlatLen])
		if err != nil {
			return nil, fmt.Errorf("tiger: line %d: FRLAT: %v", lineNo, err)
		}
		tolong, err := parseCoord(line[tolongOff : tolongOff+tolongLen])
		if err != nil {
			return nil, fmt.Errorf("tiger: line %d: TOLONG: %v", lineNo, err)
		}
		tolat, err := parseCoord(line[tolatOff : tolatOff+tolatLen])
		if err != nil {
			return nil, fmt.Errorf("tiger: line %d: TOLAT: %v", lineNo, err)
		}
		rect := geom.NewRect(frlong, frlat, tolong, tolat)
		if err := d.Add(rect); err != nil {
			return nil, fmt.Errorf("tiger: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tiger: read: %v", err)
	}
	return d, nil
}

// parseCoord converts a fixed-width signed TIGER coordinate field with
// six implied decimals to degrees.
func parseCoord(field string) (float64, error) {
	s := strings.TrimSpace(field)
	if s == "" {
		return 0, fmt.Errorf("empty coordinate field")
	}
	// TIGER pads with '+' sign and leading zeros, e.g. "+074123456".
	v, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad coordinate %q: %v", field, err)
	}
	return float64(v) / coordScale, nil
}

// WriteRT1 writes one Record Type 1 line per segment, representing each
// rectangle's diagonal as a chain from its lower-left to its
// upper-right corner. Only the coordinate fields carry data; the rest
// of the record is space-filled except the record type indicator.
func WriteRT1(w io.Writer, segments []Segment) error {
	bw := bufio.NewWriter(w)
	for _, s := range segments {
		rec := make([]byte, rt1Length)
		for i := range rec {
			rec[i] = ' '
		}
		rec[0] = '1'
		putCoord(rec[frlongOff:frlongOff+frlongLen], s.X1)
		putCoord(rec[frlatOff:frlatOff+frlatLen], s.Y1)
		putCoord(rec[tolongOff:tolongOff+tolongLen], s.X2)
		putCoord(rec[tolatOff:tolatOff+tolatLen], s.Y2)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// putCoord renders v (degrees) as a signed, zero-padded integer with
// six implied decimals into the fixed-width field dst.
func putCoord(dst []byte, v float64) {
	n := int64(v * coordScale)
	sign := byte('+')
	if n < 0 {
		sign = '-'
		n = -n
	}
	s := strconv.FormatInt(n, 10)
	// Right-align with zero padding after the sign.
	dst[0] = sign
	pad := len(dst) - 1 - len(s)
	for i := 1; i <= pad; i++ {
		dst[i] = '0'
	}
	copy(dst[1+pad:], s)
}

// Segment is a line segment in the plane (a degenerate "complete
// chain" with no shape points).
type Segment struct {
	X1, Y1, X2, Y2 float64
}

// Rect returns the bounding box of the segment, the representation the
// paper's experiments use.
func (s Segment) Rect() geom.Rect {
	return geom.NewRect(s.X1, s.Y1, s.X2, s.Y2)
}

// BoundingBoxes converts segments to their bounding boxes as a
// Distribution.
func BoundingBoxes(segments []Segment) *dataset.Distribution {
	rects := make([]geom.Rect, len(segments))
	for i, s := range segments {
		rects[i] = s.Rect()
	}
	return dataset.FromRects(rects)
}
