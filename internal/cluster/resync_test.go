package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/synthetic"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// newResyncCluster wires a coordinator over in-process workers that
// each carry a pull client back to the coordinator — the full
// self-healing loop in one process.
func newResyncCluster(t *testing.T, n, replicas int, scfg shard.Config) (*Coordinator, *Local, []NodeID) {
	t.Helper()
	local := NewLocal()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(string(rune('a'+i)) + "-node")
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Nodes:     nodes,
		Transport: local,
		Replicas:  replicas,
		Shard:     scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range nodes {
		local.Register(id, NewWorker(WorkerConfig{
			ID:     id,
			Client: LocalCoordinatorClient{C: coord},
			Retry:  resilience.RetryConfig{Disable: true},
		}))
	}
	return coord, local, nodes
}

// assignedShards returns the shard indexes the live map routes to node.
func assignedShards(pm *PartitionMap, node NodeID) []int {
	var out []int
	for i := range pm.Shards {
		if containsNode(pm.Shards[i].Nodes, node) {
			out = append(out, pm.Shards[i].Index)
		}
	}
	return out
}

// TestStatePersistAndReload: a worker with a state directory persists
// every install, and a fresh worker over the same directory serves
// byte-identical estimates immediately after LoadState — before any
// network pull.
func TestStatePersistAndReload(t *testing.T) {
	for _, noSync := range []bool{false, true} {
		name := "sync"
		if noSync {
			name = "nosync"
		}
		t.Run(name, func(t *testing.T) {
			sc, queries := buildCatalog(t, shard.Config{Shards: 4, Buckets: 80})
			dir := t.TempDir()
			w := NewWorker(WorkerConfig{ID: "n0", StateDir: dir, StateNoSync: noSync})
			exports := sc.Export()
			for _, ex := range exports {
				data, err := FromExport("dot.s/table", ex).Encode()
				if err != nil {
					t.Fatal(err)
				}
				if err := w.InstallEncoded(data); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.PersistErr(); err != nil {
				t.Fatalf("persist error: %v", err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != len(exports) {
				t.Fatalf("state dir holds %d files, want %d", len(ents), len(exports))
			}
			for _, ent := range ents {
				// The escaped table name must keep path separators and dots
				// from escaping the state directory.
				if strings.ContainsAny(ent.Name(), "/") || !strings.HasSuffix(ent.Name(), ".snap") {
					t.Fatalf("suspicious state file name %q", ent.Name())
				}
			}

			restarted := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
			loaded, skipped, err := restarted.LoadState()
			if err != nil {
				t.Fatal(err)
			}
			if loaded != len(exports) || skipped != 0 {
				t.Fatalf("LoadState = (%d, %d), want (%d, 0)", loaded, skipped, len(exports))
			}
			for _, q := range queries[:10] {
				for _, ex := range exports {
					req := EstimateRequest{Table: "dot.s/table", Shard: ex.Index, Epoch: ex.Epoch, Query: q}
					want, err := w.Estimate(context.Background(), req)
					if err != nil {
						t.Fatal(err)
					}
					got, err := restarted.Estimate(context.Background(), req)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
						t.Fatalf("shard %d query %v: reloaded %g != original %g",
							ex.Index, q, got.Estimate, want.Estimate)
					}
					if got.Epoch != want.Epoch {
						t.Fatalf("shard %d: reloaded epoch %d != %d", ex.Index, got.Epoch, want.Epoch)
					}
				}
			}
		})
	}
}

// TestStatePersistKeepsNewestEpoch: a persist racing a newer install
// (newer generation already current by the time the older write gets
// the lock) must not roll the on-disk file back to the older epoch.
func TestStatePersistKeepsNewestEpoch(t *testing.T) {
	sc, _ := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	dir := t.TempDir()
	w := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
	old := FromExport("t", sc.Export()[0])
	newer := FromExport("t", sc.Export()[0])
	newer.Epoch = old.Epoch + 1
	w.Install(newer)
	// Replay the loser of the race: the older generation's deferred
	// state-dir write runs after the newer one is already current.
	w.persist(old, nil)

	restarted := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
	if _, _, err := restarted.LoadState(); err != nil {
		t.Fatal(err)
	}
	if got := restarted.installedEpoch("t", old.Shard); got != newer.Epoch {
		t.Fatalf("reloaded epoch %d, want %d", got, newer.Epoch)
	}
}

// TestLoadStateSkipsCorrupt: corrupt, truncated, oversized and alien
// files in the state directory are skipped — never fatal, never
// installed.
func TestLoadStateSkipsCorrupt(t *testing.T) {
	sc, _ := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	dir := t.TempDir()
	w := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
	for _, ex := range sc.Export() {
		w.Install(FromExport("t", ex))
	}
	good := 2

	// One torn/corrupt snapshot (CRC catches it), one truncated, one
	// leftover temp file, one unrelated file, one subdirectory.
	name0 := stateFileName("t", 0)
	data, err := os.ReadFile(filepath.Join(dir, name0))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x10
	for name, body := range map[string][]byte{
		"corrupt.snap":      corrupt,
		"torn.snap":         data[:len(data)/3],
		name0 + ".tmp-1234": data,
		"README":            []byte("not a snapshot"),
	} {
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.snap"), 0o755); err != nil {
		t.Fatal(err)
	}

	restarted := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
	loaded, skipped, err := restarted.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != good || skipped != 5 {
		t.Fatalf("LoadState = (%d, %d), want (%d, 5)", loaded, skipped, good)
	}
	if got := len(restarted.Status()); got != good {
		t.Fatalf("status lists %d snapshots, want %d", got, good)
	}

	// A tiny body cap rejects even the valid files (the fetch-side
	// defense applies to disk too — the file may not be ours).
	tiny := NewWorker(WorkerConfig{ID: "n0", StateDir: dir, MaxSnapshotBytes: 16})
	loaded, _, err = tiny.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 {
		t.Fatalf("oversized files loaded %d snapshots, want 0", loaded)
	}
}

// TestResyncOncePullsAssigned: a worker that missed every ship (fresh
// boot after the ANALYZE) pulls exactly its assigned shards from the
// manifest and then serves them at the live epoch.
func TestResyncOncePullsAssigned(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 4, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	coord, local, nodes := newResyncCluster(t, 3, 1, scfg)
	coord.AddTable("t", d)

	// Take node b off the transport during ANALYZE: its ships drop.
	missed := nodes[1]
	wb := local.Worker(missed)
	local.mu.Lock()
	delete(local.workers, missed)
	local.mu.Unlock()
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	local.Register(missed, wb)

	want := assignedShards(coord.Map("t"), missed)
	if len(want) == 0 {
		t.Skip("no shard assigned to the dropped node")
	}
	if got := len(wb.Status()); got != 0 {
		t.Fatalf("dropped node holds %d snapshots before resync", got)
	}
	stats, err := wb.ResyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != len(want) || stats.Failed != 0 {
		t.Fatalf("ResyncOnce = %+v, want %d pulls", stats, len(want))
	}
	st := wb.Status()
	if len(st) != len(want) {
		t.Fatalf("node holds %d snapshots after resync, want %d", len(st), len(want))
	}
	for _, s := range st {
		if s.Epoch != coord.Epoch("t") {
			t.Fatalf("shard %d at epoch %d, want %d", s.Shard, s.Epoch, coord.Epoch("t"))
		}
	}

	// With every replica back in place, a scatter answers full quality.
	res, err := coord.EstimateContext(context.Background(), "t", geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != shard.QualityFull || res.Partial {
		t.Fatalf("post-resync estimate degraded: %+v", res)
	}

	// A second pass is a no-op: convergence is stable.
	stats, err = wb.ResyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != 0 || stats.Failed != 0 {
		t.Fatalf("second pass not idempotent: %+v", stats)
	}
}

// TestResyncOnceUnassignedDoesNotMirror: a registered-but-unassigned
// worker must not pull the whole cluster's snapshots; a worker holding
// a stale epoch catches up even for shards the new map moved away.
func TestResyncOnceUnassignedDoesNotMirror(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 3, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	coord, _, _ := newResyncCluster(t, 3, 1, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}

	outsider := NewWorker(WorkerConfig{ID: "z-node", Client: LocalCoordinatorClient{C: coord}})
	stats, err := outsider.ResyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != 0 {
		t.Fatalf("unassigned worker mirrored %d snapshots", stats.Pulled)
	}

	// But once it holds a shard — however it got it — a stale epoch is
	// caught up regardless of assignment: holders serve exact-epoch
	// answers during the bridge, so they should track head.
	pub := coord.table("t").pub.Load()
	outsider.Install(pub.snaps[0])
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	stats, err = outsider.ResyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != 1 {
		t.Fatalf("stale holder pulled %d, want 1 catch-up", stats.Pulled)
	}
	if got := outsider.installedEpoch("t", pub.snaps[0].Shard); got != coord.Epoch("t") {
		t.Fatalf("holder at epoch %d, want %d", got, coord.Epoch("t"))
	}
}

// TestEstimateGapPiggyback: an estimate request naming an epoch ahead
// of the installed snapshot records the gap, wakes the resync kick,
// and the next pull pass clears it.
func TestEstimateGapPiggyback(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 3, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	coord, local, nodes := newResyncCluster(t, 2, 2, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	w := local.Worker(nodes[0])

	// Miss the second ANALYZE's ships, then see a request for it.
	local.mu.Lock()
	delete(local.workers, nodes[0])
	local.mu.Unlock()
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	local.Register(nodes[0], w)

	head := coord.Epoch("t")
	reply, err := w.Estimate(context.Background(), EstimateRequest{
		Table: "t", Shard: 0, Epoch: head, Query: geom.NewRect(0, 0, 10, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != head-1 {
		t.Fatalf("stale reply epoch %d, want %d", reply.Epoch, head-1)
	}
	if got := w.ExpectedEpoch("t"); got != head {
		t.Fatalf("piggybacked expectation %d, want %d", got, head)
	}
	select {
	case <-w.kick:
	default:
		t.Fatal("gap detection did not kick the resync loop")
	}

	if _, err := w.ResyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := w.ExpectedEpoch("t"); got != 0 {
		t.Fatalf("expectation %d survived a pull pass at head", got)
	}
	if got := w.installedEpoch("t", 0); got != head {
		t.Fatalf("worker at epoch %d after pull, want %d", got, head)
	}
}

// shipFilter wraps a Transport and fails Ship calls to nodes in deny.
type shipFilter struct {
	Transport
	mu   sync.Mutex
	deny map[NodeID]bool
}

func (f *shipFilter) Ship(ctx context.Context, node NodeID, snap *Snapshot) (int, error) {
	f.mu.Lock()
	denied := f.deny[node]
	f.mu.Unlock()
	if denied {
		return 0, errors.New("shipFilter: injected ship failure")
	}
	return f.Transport.Ship(ctx, node, snap)
}

func (f *shipFilter) allow(node NodeID) {
	f.mu.Lock()
	delete(f.deny, node)
	f.mu.Unlock()
}

// TestReconcileOnceReships: the coordinator's anti-entropy pass
// detects a node that missed its ships, re-ships the published
// snapshots, and drives the per-node lag gauge back to zero.
func TestReconcileOnceReships(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 4, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	local := NewLocal()
	nodes := []NodeID{"a-node", "b-node", "c-node"}
	filt := &shipFilter{Transport: local, deny: map[NodeID]bool{"b-node": true}}
	coord, err := NewCoordinator(CoordinatorConfig{
		Nodes:     nodes,
		Transport: filt,
		Replicas:  1,
		Shard:     scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range nodes {
		local.Register(id, NewWorker(WorkerConfig{ID: id}))
	}
	reg := telemetry.NewRegistry()
	coord.EnableTelemetry(reg)

	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	missed := assignedShards(coord.Map("t"), "b-node")
	if len(missed) == 0 {
		t.Skip("no shard assigned to the denied node")
	}

	// While ships still fail, the pass reports failures and a nonzero lag.
	stats := coord.ReconcileOnce(context.Background())
	if stats.Failures == 0 || stats.Reshipped != 0 {
		t.Fatalf("pass under failure = %+v, want failures and no reships", stats)
	}
	if lag := lagGauge(reg, "b-node"); lag == 0 {
		t.Fatal("lag gauge zero while the node is missing snapshots")
	}

	// Heal and reconcile: the gap closes in one pass.
	filt.allow("b-node")
	stats = coord.ReconcileOnce(context.Background())
	if stats.Reshipped != len(missed) || stats.Failures != 0 {
		t.Fatalf("healing pass = %+v, want %d reships", stats, len(missed))
	}
	if lag := lagGauge(reg, "b-node"); lag != 0 {
		t.Fatalf("lag gauge %g after convergence, want 0", lag)
	}
	st := local.Worker("b-node").Status()
	if len(st) != len(missed) {
		t.Fatalf("node holds %d snapshots, want %d", len(st), len(missed))
	}
	for _, s := range st {
		if s.Epoch != coord.Epoch("t") {
			t.Fatalf("shard %d reshipped at epoch %d, want %d", s.Shard, s.Epoch, coord.Epoch("t"))
		}
	}

	// Converged cluster: the next pass is a no-op.
	stats = coord.ReconcileOnce(context.Background())
	if stats.Reshipped != 0 || stats.Failures != 0 {
		t.Fatalf("post-convergence pass not idempotent: %+v", stats)
	}
}

// lagGauge reads the per-node snapshot-lag gauge from reg.
func lagGauge(reg *telemetry.Registry, node string) float64 {
	return reg.Gauge("cluster_snapshot_lag_epochs",
		"Epochs a worker's installed snapshots trail the live partition map, per node (after the last anti-entropy pass).",
		telemetry.Label{Key: "node", Value: node}).Value()
}

// TestInstallEncodedCorruptKeepsPrevious is the crash-safety half of
// the install contract: a snapshot that fails to decode — whatever the
// corruption — is rejected whole, and the previously installed
// generation keeps serving byte-identical answers.
func TestInstallEncodedCorruptKeepsPrevious(t *testing.T) {
	sc, queries := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	ex := sc.Export()[0]
	snap := FromExport("t", ex)
	raw, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	next := FromExport("t", ex)
	next.Epoch = ex.Epoch + 1
	nextRaw, err := next.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		sentinel error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrSnapshotCorrupt},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrSnapshotMagic},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[24] ^= 0x08
			return c
		}, ErrSnapshotChecksum},
		{"flipped checksum byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}, ErrSnapshotChecksum},
		{"truncated mid-body", func(b []byte) []byte { return b[:2*len(b)/3] }, ErrSnapshotChecksum},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[9] = 0x63
			refreshChecksum(c)
			return c
		}, ErrSnapshotVersion},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			w := NewWorker(WorkerConfig{ID: "n0", StateDir: dir})
			if err := w.InstallEncoded(raw); err != nil {
				t.Fatal(err)
			}
			req := EstimateRequest{Table: "t", Shard: ex.Index, Epoch: ex.Epoch}
			before := make([]float64, len(queries))
			for i, q := range queries {
				req.Query = q
				reply, err := w.Estimate(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				before[i] = reply.Estimate
			}

			// The corrupted next-epoch ship must fail with the exact codec
			// sentinel and change nothing.
			err := w.InstallEncoded(c.mutate(nextRaw))
			if err == nil {
				t.Fatal("corrupt install must error")
			}
			if !errors.Is(err, c.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, c.sentinel)
			}
			if got := w.installedEpoch("t", ex.Index); got != ex.Epoch {
				t.Fatalf("installed epoch %d after rejected install, want %d", got, ex.Epoch)
			}
			for i, q := range queries {
				req.Query = q
				reply, err := w.Estimate(context.Background(), req)
				if err != nil {
					t.Fatalf("estimate after rejected install: %v", err)
				}
				if math.Float64bits(reply.Estimate) != math.Float64bits(before[i]) {
					t.Fatalf("query %v: estimate drifted %g != %g after rejected install",
						q, reply.Estimate, before[i])
				}
				if reply.Epoch != ex.Epoch {
					t.Fatalf("query %v served epoch %d, want %d", q, reply.Epoch, ex.Epoch)
				}
			}
			// And nothing corrupt was persisted.
			ents, err2 := os.ReadDir(dir)
			if err2 != nil {
				t.Fatal(err2)
			}
			if len(ents) != 1 {
				t.Fatalf("state dir holds %d files, want only the good snapshot", len(ents))
			}
		})
	}
}

// TestSnapshotUploadBodyLimit: the worker's snapshot endpoint cuts an
// oversized upload off at MaxSnapshotBytes with a structured 413.
func TestSnapshotUploadBodyLimit(t *testing.T) {
	w := NewWorker(WorkerConfig{ID: "n0", MaxSnapshotBytes: 64})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/cluster/snapshot",
		bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var we workerError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatalf("413 body not structured JSON: %v", err)
	}
	if we.Code != http.StatusRequestEntityTooLarge || !strings.Contains(we.Error, "64 byte limit") {
		t.Fatalf("413 body %+v, want the limit named", we)
	}
	if got := len(w.Status()); got != 0 {
		t.Fatalf("oversized upload installed %d snapshots", got)
	}

	// A well-formed snapshot within the limit of a default worker still
	// installs — the bound is about size, not format.
	sc, _ := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	data, err := FromExport("t", sc.Export()[0]).Encode()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorker(WorkerConfig{ID: "n1"})
	srv2 := httptest.NewServer(w2.Handler())
	defer srv2.Close()
	resp2, err := http.Post(srv2.URL+"/cluster/snapshot", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Fatalf("valid upload status %d, want 204", resp2.StatusCode)
	}
	if got := len(w2.Status()); got != 1 {
		t.Fatalf("valid upload installed %d snapshots, want 1", got)
	}
}

// TestHTTPPullProtocol runs the whole pull path over real HTTP: the
// coordinator's manifest/fetch handler on one side, an
// HTTPCoordinatorClient-equipped worker on the other.
func TestHTTPPullProtocol(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 3, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	coord, _, nodes := newResyncCluster(t, 1, 1, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	client := &HTTPCoordinatorClient{Addr: srv.Listener.Addr().String()}

	m, err := client.Manifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) != 1 || m.Tables[0].Table != "t" || m.Tables[0].Epoch != coord.Epoch("t") {
		t.Fatalf("HTTP manifest %+v does not match the coordinator", m)
	}
	if len(m.Tables[0].Shards) != scfg.Shards {
		t.Fatalf("manifest lists %d shards, want %d", len(m.Tables[0].Shards), scfg.Shards)
	}

	// A restarted replica of the only node, pulling over HTTP, converges
	// to the full assignment.
	w := NewWorker(WorkerConfig{
		ID:     nodes[0],
		Client: client,
		Retry:  resilience.RetryConfig{Disable: true},
	})
	stats, err := w.ResyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != scfg.Shards || stats.Failed != 0 {
		t.Fatalf("HTTP resync = %+v, want %d pulls", stats, scfg.Shards)
	}
	for _, s := range w.Status() {
		if s.Epoch != coord.Epoch("t") {
			t.Fatalf("shard %d pulled at epoch %d, want %d", s.Shard, s.Epoch, coord.Epoch("t"))
		}
	}

	// Structured errors surface through the client.
	if _, err := client.Fetch(context.Background(), "absent", 0); err == nil ||
		!strings.Contains(err.Error(), "absent") {
		t.Fatalf("fetch of unknown table = %v, want a named error", err)
	}
}

// TestHTTPTransportStatus: the reconciler's status probe round-trips a
// worker's inventory over real HTTP.
func TestHTTPTransportStatus(t *testing.T) {
	sc, _ := buildCatalog(t, shard.Config{Shards: 3, Buckets: 40})
	w := NewWorker(WorkerConfig{ID: "w0"})
	for _, ex := range sc.Export() {
		w.Install(FromExport("t", ex))
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	tr := &HTTPTransport{}
	st, err := tr.Status(context.Background(), NodeID(srv.Listener.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "w0" {
		t.Fatalf("status node %q, want w0", st.Node)
	}
	want := w.Status()
	if len(st.Snapshots) != len(want) {
		t.Fatalf("status lists %d snapshots, want %d", len(st.Snapshots), len(want))
	}
	for i := range want {
		if st.Snapshots[i] != want[i] {
			t.Fatalf("snapshot %d: %+v != %+v", i, st.Snapshots[i], want[i])
		}
	}
}

// TestEstimateConsistencyDuringResync is the mid-reshard race check
// extended with an active resync: while maps swap and a lagging node
// is concurrently healed by pull and anti-entropy passes, estimates
// never mix epochs and full-quality answers stay bit-identical to the
// reference. Run under -race.
func TestEstimateConsistencyDuringResync(t *testing.T) {
	d := synthetic.Charminar(1200, 1000, 10, 31)
	scfg := shard.Config{Shards: 4, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	ref := shard.New(scfg)
	if err := ref.Analyze(d); err != nil {
		t.Fatal(err)
	}
	coord, local, nodes := newResyncCluster(t, 3, 2, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	// Node b misses the second ANALYZE entirely — the healing work below
	// has real gaps to close while estimates fly.
	lagging := local.Worker(nodes[1])
	local.mu.Lock()
	delete(local.workers, nodes[1])
	local.mu.Unlock()
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	local.Register(nodes[1], lagging)

	queries, err := workload.Generate(d, workload.Config{Count: 40, QSize: 0.15, Seed: 11, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}

	const swaps = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g*13+i)%len(queries)]
				res, err := coord.EstimateContext(context.Background(), "t", q)
				if err != nil {
					errs <- err
					return
				}
				if res.Epoch < 1 || res.Epoch > swaps+2 {
					errs <- errTornEpoch(res.Epoch)
					return
				}
				if res.Quality == shard.QualityFull {
					want, err := ref.EstimateContext(context.Background(), q)
					if err != nil {
						errs <- err
						return
					}
					if math.Float64bits(res.Estimate) != math.Float64bits(want.Estimate) {
						errs <- errMixedEstimate{got: res.Estimate, want: want.Estimate}
						return
					}
				}
			}
		}(g)
	}
	// The healing goroutine: pull and anti-entropy passes racing the
	// estimators and the map swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := lagging.ResyncOnce(context.Background()); err != nil {
				errs <- err
				return
			}
			coord.ReconcileOnce(context.Background())
		}
	}()
	for i := 0; i < swaps; i++ {
		if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After one final quiesced pass, the lagging node is fully converged.
	if _, err := lagging.ResyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	head := coord.Epoch("t")
	if head != swaps+2 {
		t.Fatalf("final epoch = %d, want %d", head, swaps+2)
	}
	for _, idx := range assignedShards(coord.Map("t"), nodes[1]) {
		if got := lagging.installedEpoch("t", idx); got != head {
			t.Fatalf("lagging node shard %d at epoch %d after heal, want %d", idx, got, head)
		}
	}
}
