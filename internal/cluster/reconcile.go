package cluster

import (
	"context"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// ReconcileStats summarizes one anti-entropy pass.
type ReconcileStats struct {
	// Nodes is how many nodes were inspected (breaker-open nodes are
	// skipped and not counted here).
	Nodes int
	// SkippedOpen is how many nodes were skipped because their circuit
	// breaker was open — the estimate path already considers them down,
	// and a resync ship would only prolong the outage window.
	SkippedOpen int
	// Reshipped is how many snapshots were re-shipped to close gaps.
	Reshipped int
	// Failures counts failed status probes and failed re-ships.
	Failures int
}

// nodeReconcile is one node's outcome, gathered by ReconcileOnce.
type nodeReconcile struct {
	lag       uint64
	reshipped int
	failures  int
}

// ReconcileOnce runs one anti-entropy pass: read every node's
// installed-snapshot inventory, diff it against the live partition
// maps, and re-ship any snapshot the node should hold but does not
// hold at the current epoch. Nodes are processed with bounded
// concurrency (CoordinatorConfig.ReconcileConcurrency) and the pass
// never takes the coordinator's locks across a network call, so the
// estimate path is never blocked. Per node it publishes the
// cluster_snapshot_lag_epochs gauge: how many epochs the node still
// trails the map after the pass (0 when fully converged, the map epoch
// when unreachable).
func (c *Coordinator) ReconcileOnce(ctx context.Context) ReconcileStats {
	var stats ReconcileStats
	// Snapshot the diff targets once; maps and published sets are
	// immutable values behind atomic pointers.
	type target struct {
		pm  *PartitionMap
		pub *publishedSnaps
	}
	targets := make([]target, 0, 4)
	for _, name := range c.Tables() {
		ts := c.table(name)
		if ts == nil {
			continue
		}
		pm := ts.pm.Load()
		pub := ts.pub.Load()
		if pm == nil || pub == nil {
			continue
		}
		targets = append(targets, target{pm: pm, pub: pub})
	}
	if len(targets) == 0 {
		return stats
	}

	var mu sync.Mutex
	sem := make(chan struct{}, c.cfg.ReconcileConcurrency)
	var wg sync.WaitGroup
	for _, node := range c.cfg.Nodes {
		if br := c.breakers[node]; br != nil && br.State() == resilience.StateOpen {
			stats.SkippedOpen++
			continue
		}
		stats.Nodes++
		wg.Add(1)
		go func(node NodeID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var nr nodeReconcile
			st, err := c.cfg.Transport.Status(ctx, node)
			if err != nil {
				// Unknown inventory: report the worst-case lag and try
				// again next pass rather than blind-shipping everything.
				nr.failures++
				for _, t := range targets {
					if t.pm.Epoch > nr.lag {
						nr.lag = t.pm.Epoch
					}
				}
			} else {
				have := make(map[snapKey]uint64, len(st.Snapshots))
				for _, s := range st.Snapshots {
					have[snapKey{table: s.Table, shard: s.Shard}] = s.Epoch
				}
				for _, t := range targets {
					c.reconcileNodeTable(ctx, node, t.pm, t.pub, have, &nr)
				}
			}
			c.noteLag(node, nr.lag)
			mu.Lock()
			stats.Reshipped += nr.reshipped
			stats.Failures += nr.failures
			mu.Unlock()
		}(node)
	}
	wg.Wait()
	if stats.Failures > 0 {
		c.resyncFails.Add(uint64(stats.Failures))
	}
	return stats
}

// reconcileNodeTable closes one (node, table) gap set: every shard
// routed to the node must be installed at the map epoch, anything
// older (or missing) gets the published snapshot re-shipped.
func (c *Coordinator) reconcileNodeTable(ctx context.Context, node NodeID, pm *PartitionMap, pub *publishedSnaps, have map[snapKey]uint64, nr *nodeReconcile) {
	for i := range pm.Shards {
		route := &pm.Shards[i]
		wanted := false
		for _, n := range route.Nodes {
			if n == node {
				wanted = true
				break
			}
		}
		if !wanted {
			continue
		}
		cur := have[snapKey{table: pm.Table, shard: route.Index}]
		if cur >= pm.Epoch {
			continue
		}
		var snap *Snapshot
		for _, s := range pub.snaps {
			if s.Shard == route.Index {
				snap = s
				break
			}
		}
		if snap == nil {
			continue
		}
		n, err := c.cfg.Transport.Ship(ctx, node, snap)
		c.noteShip(node, n, err)
		if err != nil {
			nr.failures++
			if lag := pm.Epoch - cur; lag > nr.lag {
				nr.lag = lag
			}
			continue
		}
		nr.reshipped++
		c.reships.Inc()
	}
}

// noteLag publishes one node's post-pass snapshot lag.
func (c *Coordinator) noteLag(node NodeID, lag uint64) {
	c.mu.RLock()
	reg := c.reg
	c.mu.RUnlock()
	if reg == nil {
		return
	}
	reg.Gauge("cluster_snapshot_lag_epochs",
		"Epochs a worker's installed snapshots trail the live partition map, per node (after the last anti-entropy pass).",
		telemetry.Label{Key: "node", Value: string(node)}).Set(float64(lag))
}

// RunReconcileLoop runs anti-entropy passes every interval on the
// coordinator's clock until ctx is done. Each pass runs under a
// deadline of one interval, so a wedged node cannot make passes pile
// up. Intended for production coordinators; deterministic harnesses
// call ReconcileOnce directly instead of racing a background loop
// against the virtual clock.
func (c *Coordinator) RunReconcileLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	for {
		t := c.clk.NewTimer(interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		pctx, cancel := vclock.WithTimeout(ctx, c.clk, interval)
		c.ReconcileOnce(pctx)
		cancel()
	}
}
