package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Manifest is the coordinator's published view of what every worker
// should hold: per table, the live partition-map epoch and each
// shard's replica set. Workers diff it against their installed
// snapshots to find gaps they must pull (see Worker.ResyncOnce).
type Manifest struct {
	Tables []ManifestTable `json:"tables"`
}

// ManifestTable is one table's expected (epoch, shard→nodes) set.
type ManifestTable struct {
	Table  string          `json:"table"`
	Epoch  uint64          `json:"epoch"`
	Shards []ManifestShard `json:"shards"`
}

// ManifestShard names one shard and the nodes expected to hold its
// current-epoch snapshot.
type ManifestShard struct {
	Shard int      `json:"shard"`
	Nodes []NodeID `json:"nodes"`
}

// NodeStatus is one worker's installed-snapshot inventory, as served
// on GET /cluster/status and consumed by the anti-entropy reconciler.
type NodeStatus struct {
	Node      NodeID           `json:"node"`
	Snapshots []SnapshotStatus `json:"snapshots"`
}

// CoordinatorClient is the worker's view of the coordinator for
// pull/catch-up resync: the expected-state manifest and a fetch RPC
// returning one shard's current snapshot in SPSNAP1 wire form.
type CoordinatorClient interface {
	Manifest(ctx context.Context) (Manifest, error)
	Fetch(ctx context.Context, table string, shard int) ([]byte, error)
}

// LocalCoordinatorClient serves pulls from an in-process coordinator
// (tests and the fault simulation harness).
type LocalCoordinatorClient struct {
	C *Coordinator
}

// Manifest implements CoordinatorClient.
func (l LocalCoordinatorClient) Manifest(ctx context.Context) (Manifest, error) {
	if err := ctx.Err(); err != nil {
		return Manifest{}, err
	}
	return l.C.Manifest(), nil
}

// Fetch implements CoordinatorClient.
func (l LocalCoordinatorClient) Fetch(ctx context.Context, table string, shard int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.C.FetchEncoded(table, shard)
}

// HTTPCoordinatorClient pulls from a remote coordinator's manifest
// endpoint (see Coordinator.Handler); Addr is its cluster host:port.
type HTTPCoordinatorClient struct {
	Addr string
	// Scheme defaults to "http".
	Scheme string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (c *HTTPCoordinatorClient) scheme() string {
	if c.Scheme != "" {
		return c.Scheme
	}
	return "http"
}

func (c *HTTPCoordinatorClient) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// get issues one GET and returns the body, decoding the coordinator's
// structured error on a non-200.
func (c *HTTPCoordinatorClient) get(ctx context.Context, u string, limit int64) ([]byte, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: build request: %w", err)
	}
	resp, err := c.client().Do(hr)
	if err != nil {
		return nil, fmt.Errorf("%w: coordinator %s: %v", ErrUnreachable, c.Addr, err)
	}
	defer resp.Body.Close() //spatialvet:ignore errdrop response body close on read path
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("%w: coordinator %s: read reply: %v", ErrUnreachable, c.Addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		var we workerError
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return nil, fmt.Errorf("cluster: coordinator %s: %s", c.Addr, we.Error)
		}
		return nil, fmt.Errorf("cluster: coordinator %s: HTTP %d", c.Addr, resp.StatusCode)
	}
	return body, nil
}

// Manifest implements CoordinatorClient over GET /cluster/manifest.
func (c *HTTPCoordinatorClient) Manifest(ctx context.Context) (Manifest, error) {
	body, err := c.get(ctx, fmt.Sprintf("%s://%s/cluster/manifest", c.scheme(), c.Addr), 4<<20)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return Manifest{}, fmt.Errorf("cluster: coordinator %s: decode manifest: %v", c.Addr, err)
	}
	return m, nil
}

// Fetch implements CoordinatorClient over GET /cluster/fetch.
func (c *HTTPCoordinatorClient) Fetch(ctx context.Context, table string, shard int) ([]byte, error) {
	params := url.Values{
		"table": {table},
		"shard": {strconv.Itoa(shard)},
	}
	u := fmt.Sprintf("%s://%s/cluster/fetch?%s", c.scheme(), c.Addr, params.Encode())
	return c.get(ctx, u, defaultMaxSnapshotBody)
}

// Manifest returns the coordinator's expected-state manifest: every
// analyzed table's live epoch and shard replica sets, tables sorted by
// name. Unanalyzed tables are omitted — there is nothing to pull yet.
func (c *Coordinator) Manifest() Manifest {
	var m Manifest
	for _, name := range c.Tables() {
		pm := c.Map(name)
		if pm == nil {
			continue
		}
		mt := ManifestTable{Table: name, Epoch: pm.Epoch, Shards: make([]ManifestShard, 0, len(pm.Shards))}
		for i := range pm.Shards {
			mt.Shards = append(mt.Shards, ManifestShard{
				Shard: pm.Shards[i].Index,
				Nodes: pm.Shards[i].Nodes,
			})
		}
		m.Tables = append(m.Tables, mt)
	}
	return m
}

// FetchEncoded returns the encoded current-epoch snapshot for (table,
// shard). The snapshot set is retained at publish time — stored before
// the partition-map swap — so a fetch can always serve at least the
// epoch the live map routes by.
func (c *Coordinator) FetchEncoded(table string, shard int) ([]byte, error) {
	ts := c.table(table)
	if ts == nil {
		return nil, fmt.Errorf("cluster: no table %q", table)
	}
	pub := ts.pub.Load()
	if pub == nil {
		return nil, fmt.Errorf("%w: %s/%d not yet analyzed", ErrNoSnapshot, table, shard)
	}
	for _, snap := range pub.snaps {
		if snap.Shard == shard {
			return snap.Encode()
		}
	}
	return nil, fmt.Errorf("%w: %s/%d not in the published set", ErrNoSnapshot, table, shard)
}

// Handler serves the coordinator's side of the pull protocol:
//
//	GET /cluster/manifest — expected (table, epoch, shard→nodes) set
//	GET /cluster/fetch    — one shard's current snapshot (SPSNAP1)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/manifest", c.handleManifest)
	mux.HandleFunc("/cluster/fetch", c.handleFetch)
	return mux
}

func (c *Coordinator) handleManifest(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeWorkerJSON(rw, http.StatusMethodNotAllowed,
			workerError{Error: "GET required", Code: http.StatusMethodNotAllowed})
		return
	}
	writeWorkerJSON(rw, http.StatusOK, c.Manifest())
}

func (c *Coordinator) handleFetch(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeWorkerJSON(rw, http.StatusMethodNotAllowed,
			workerError{Error: "GET required", Code: http.StatusMethodNotAllowed})
		return
	}
	q := r.URL.Query()
	table := q.Get("table")
	if table == "" {
		writeWorkerJSON(rw, http.StatusBadRequest,
			workerError{Error: "cluster: missing table parameter", Code: http.StatusBadRequest})
		return
	}
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil {
		writeWorkerJSON(rw, http.StatusBadRequest,
			workerError{Error: fmt.Sprintf("cluster: bad shard parameter: %v", err), Code: http.StatusBadRequest})
		return
	}
	data, err := c.FetchEncoded(table, shard)
	if err != nil {
		writeWorkerJSON(rw, http.StatusNotFound,
			workerError{Error: err.Error(), Code: http.StatusNotFound})
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(data) //spatialvet:ignore errdrop client gone is the only failure
}
