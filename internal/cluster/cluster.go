// Package cluster promotes the in-process sharded catalog
// (internal/shard) to a distributed estimation tier. Three roles:
//
//   - A Coordinator owns a versioned partition map per table — epoch
//     numbered, spatially derived from the same Min-Skew partitioning
//     the sharded catalog uses — and fans estimates out to worker
//     nodes with the existing scatter-gather semantics: route-box
//     pruning, deadline-aware gather, per-remote-node circuit
//     breakers, budgeted retries that fail over to the next replica,
//     p95 hedging, and the degradation ladder.
//   - Workers serve per-shard estimates from replicated Min-Skew
//     snapshots. Any worker can serve any shard it holds a snapshot
//     for, giving N-way read scaling.
//   - Snapshot shipping moves the statistics: histograms are tiny
//     relative to the data they summarize (the paper's core economy),
//     so a rebuild serializes each shard — full histogram, degradation
//     ladder, uniformity fallback — and ships it to the shard's
//     replicas before the coordinator swaps in the new map.
//
// # Epoch protocol
//
// Every partition map carries the build epoch of the shard set it
// routes to (shard.ShardedCatalog.Epoch). Workers keep the current
// and previous snapshot per (table, shard), so during a live reshard
// an in-flight request routed by the old map still gets an
// exact-epoch answer. A worker's reply always states the epoch it
// served; the coordinator rejects mismatched replies as stale, fails
// over to the next replica, and only then degrades — answering from
// the map-embedded coarse summary, which is epoch-consistent with the
// map by construction. A response therefore never mixes statistics
// generations. Map swaps are atomic pointer stores: an estimate loads
// the map exactly once, so concurrent resharding never tears a
// request.
package cluster

import (
	"errors"

	"repro/internal/core"
	"repro/internal/geom"
)

// NodeID identifies a worker node. For the HTTP transport it is the
// node's host:port address; the in-process transport treats it as an
// opaque registry key.
type NodeID string

// Transport-level and protocol-level sentinel errors.
var (
	// ErrUnreachable: the transport could not deliver the call (the
	// cluster analogue of a connection failure). Breakers count it.
	ErrUnreachable = errors.New("cluster: node unreachable")
	// ErrNoSnapshot: the worker holds no snapshot for the requested
	// (table, shard) — it missed the shipping round.
	ErrNoSnapshot = errors.New("cluster: no snapshot for requested shard")
	// ErrStaleSnapshot: the worker answered from a different epoch
	// than the partition map expected. The coordinator treats it as a
	// failed attempt and fails over to the next replica.
	ErrStaleSnapshot = errors.New("cluster: snapshot epoch mismatch")
)

// ShardRoute is one shard's entry in a partition map: the routing
// geometry, the replicas holding its snapshot, and the coordinator's
// local degradation summaries. All fields are immutable after the map
// is published.
type ShardRoute struct {
	// Index is the shard's position in routing order.
	Index int
	// Region is the partition cell the shard was assigned.
	Region geom.Rect
	// RouteBox is the shard MBR padded for exact pruning: a query
	// that cannot reach it contributes zero in this shard.
	RouteBox geom.Rect
	// Rows is the shard's rectangle count.
	Rows int
	// Nodes lists the replicas holding this shard's snapshot, primary
	// first. Attempt n of a shard call goes to Nodes[n mod len], so a
	// retry or hedge is a failover to the next replica.
	Nodes []NodeID
	// Coarse is the shard's coarsest degradation-ladder rung, kept
	// coordinator-side (it is the smallest skew-aware summary) so a
	// shard whose every replica is unreachable still gets a
	// skew-aware, epoch-consistent answer. Nil when the shard has no
	// ladder.
	Coarse *core.BucketEstimator
	// Fallback is the single-bucket uniformity summary — the last
	// resort, also epoch-consistent with the map.
	Fallback core.Bucket
}

// PartitionMap is the versioned routing state for one table. Maps are
// immutable once published; resharding builds a complete new map and
// swaps the pointer atomically.
type PartitionMap struct {
	// Table is the table the map routes.
	Table string
	// Epoch is the statistics build epoch every route in the map —
	// and every snapshot it points at — belongs to.
	Epoch uint64
	// Rows is the total rectangle count across shards.
	Rows int
	// Shards holds one route per shard, in routing order.
	Shards []ShardRoute
}
