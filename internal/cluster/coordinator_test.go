package cluster

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/synthetic"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// newLocalCluster wires a coordinator over n in-process workers.
func newLocalCluster(t *testing.T, n, replicas int, scfg shard.Config) (*Coordinator, *Local, []NodeID) {
	t.Helper()
	local := NewLocal()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(string(rune('a'+i)) + "-node")
		local.Register(nodes[i], NewWorker(WorkerConfig{ID: nodes[i]}))
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Nodes:     nodes,
		Transport: local,
		Replicas:  replicas,
		Shard:     scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord, local, nodes
}

// TestCoordinatorMatchesInProcessCatalog: a cluster estimate over
// replicated snapshots equals the in-process sharded catalog built
// with the same policy, bit for bit — routing, per-shard walks and
// merge order are all identical.
func TestCoordinatorMatchesInProcessCatalog(t *testing.T) {
	d := synthetic.Charminar(2500, 1000, 10, 21)
	scfg := shard.Config{Shards: 4, Buckets: 80, Resilience: resilience.Config{Disable: true}}
	ref := shard.New(scfg)
	if err := ref.Analyze(d); err != nil {
		t.Fatal(err)
	}
	coord, _, _ := newLocalCluster(t, 3, 2, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	if got := coord.Epoch("t"); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	queries, err := workload.Generate(d, workload.Config{Count: 120, QSize: 0.1, Seed: 5, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := ref.EstimateContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.EstimateContext(context.Background(), "t", q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Quality != shard.QualityFull || got.Partial {
			t.Fatalf("query %v degraded: %+v", q, got)
		}
		if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
			t.Fatalf("query %v: cluster %g != in-process %g", q, got.Estimate, want.Estimate)
		}
		if got.ShardsQueried != want.ShardsQueried {
			t.Fatalf("query %v: fanout %d != %d", q, got.ShardsQueried, want.ShardsQueried)
		}
		if got.Epoch != 1 {
			t.Fatalf("query %v: epoch %d, want 1", q, got.Epoch)
		}
	}
}

// TestCoordinatorDegradedNotFailed: with a single replica on an
// unreachable node, estimates still answer — degraded and flagged —
// from the map-embedded summaries.
func TestCoordinatorDegradedNotFailed(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 3, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	coord, local, nodes := newLocalCluster(t, 3, 1, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	// Unregister one node: every shard whose only replica it was is now
	// unreachable.
	gone := nodes[1]
	local.mu.Lock()
	delete(local.workers, gone)
	local.mu.Unlock()

	pm := coord.Map("t")
	wantDegraded := make(map[int]bool)
	for _, route := range pm.Shards {
		if route.Nodes[0] == gone {
			wantDegraded[route.Index] = true
		}
	}
	if len(wantDegraded) == 0 {
		t.Skip("no shard assigned to the removed node")
	}
	q := geom.NewRect(0, 0, 1000, 1000) // touches everything
	res, err := coord.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatalf("estimate must degrade, not fail: %v", err)
	}
	if !res.Partial || res.Quality == shard.QualityFull {
		t.Fatalf("want degraded result, got %+v", res)
	}
	for _, idx := range res.FallbackShards {
		if !wantDegraded[idx] {
			t.Fatalf("shard %d degraded but its replica is alive", idx)
		}
	}
	if res.Estimate <= 0 {
		t.Fatalf("degraded estimate %g, want > 0", res.Estimate)
	}
}

// TestCoordinatorReplicaFailover: with two replicas and retries
// enabled, losing the primary keeps answers at full quality — the
// retry fails over to the surviving replica.
func TestCoordinatorReplicaFailover(t *testing.T) {
	d := synthetic.Charminar(1500, 1000, 10, 9)
	scfg := shard.Config{Shards: 3, Buckets: 60}
	coord, local, nodes := newLocalCluster(t, 3, 2, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	local.mu.Lock()
	delete(local.workers, nodes[0])
	local.mu.Unlock()

	q := geom.NewRect(0, 0, 1000, 1000)
	res, err := coord.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != shard.QualityFull {
		t.Fatalf("failover should hold full quality, got %+v", res)
	}
}

// TestPartitionMapHotReload is the hot-reload race check: concurrent
// estimates during repeated map swaps observe either the old or the
// new epoch — never a torn mix — and full-quality answers always
// match the reference for that data. Run under -race.
func TestPartitionMapHotReload(t *testing.T) {
	d := synthetic.Charminar(1200, 1000, 10, 31)
	clk := vclock.NewSim(time.Unix(0, 0))
	scfg := shard.Config{Shards: 4, Buckets: 60, Clock: clk,
		Resilience: resilience.Config{Disable: true}}
	ref := shard.New(scfg)
	if err := ref.Analyze(d); err != nil {
		t.Fatal(err)
	}
	coord, _, _ := newLocalCluster(t, 3, 2, scfg)
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Generate(d, workload.Config{Count: 40, QSize: 0.15, Seed: 11, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}

	const swaps = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g*13+i)%len(queries)]
				res, err := coord.EstimateContext(context.Background(), "t", q)
				if err != nil {
					errs <- err
					return
				}
				if res.Epoch < 1 || res.Epoch > swaps+1 {
					errs <- errTornEpoch(res.Epoch)
					return
				}
				if res.Quality == shard.QualityFull {
					want, err := ref.EstimateContext(context.Background(), q)
					if err != nil {
						errs <- err
						return
					}
					// The data never changes across swaps, so every full
					// answer — whatever epoch served it — is the reference
					// value exactly.
					if math.Float64bits(res.Estimate) != math.Float64bits(want.Estimate) {
						errs <- errMixedEstimate{got: res.Estimate, want: want.Estimate}
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < swaps; i++ {
		if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := coord.Epoch("t"); got != swaps+1 {
		t.Fatalf("final epoch = %d, want %d", got, swaps+1)
	}
}

type errTornEpoch uint64

func (e errTornEpoch) Error() string { return "estimate observed epoch out of range" }

type errMixedEstimate struct{ got, want float64 }

func (e errMixedEstimate) Error() string { return "full-quality estimate does not match reference" }
