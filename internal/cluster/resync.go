package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/resilience"
	"repro/internal/vclock"
)

// Worker-side pull/catch-up resync: the worker learns the expected
// (table, epoch, shard→nodes) set from the coordinator's manifest —
// and, piggybacked, from estimate requests that name an epoch ahead of
// what it holds — and pulls every missing or stale snapshot through
// the fetch RPC. Combined with the coordinator's anti-entropy re-ship
// pass this makes snapshot distribution convergent: a dropped ship, a
// partition during ANALYZE, or a crash-restart all heal without
// waiting for the next ANALYZE.

// ResyncStats summarizes one pull pass.
type ResyncStats struct {
	// Pulled is how many snapshots were fetched and installed.
	Pulled int
	// Failed is how many needed pulls failed (fetch or install).
	Failed int
}

// noteGap records that an estimate request named an epoch ahead of the
// installed snapshot and wakes the resync loop. The kick is
// non-blocking: gap detection must never slow an estimate.
func (w *Worker) noteGap(table string, epoch uint64) {
	w.mu.Lock()
	if epoch > w.expected[table] {
		w.expected[table] = epoch
	}
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// ExpectedEpoch returns the highest epoch estimate traffic has named
// for table — 0 when no gap has been observed.
func (w *Worker) ExpectedEpoch(table string) uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.expected[table]
}

// installedEpoch returns the current generation's epoch for (table,
// shard), 0 when nothing is installed.
func (w *Worker) installedEpoch(table string, shard int) uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	e := w.snaps[snapKey{table: table, shard: shard}]
	if e == nil || e.cur == nil {
		return 0
	}
	return e.cur.Epoch
}

// fetchJitterKey pins one pull's retry-backoff jitter to its identity
// (see resilience.CallPolicy.JitterKey).
func fetchJitterKey(table string, shard int, epoch uint64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	for _, c := range []byte(table) {
		mix(uint64(c))
	}
	mix(uint64(shard))
	mix(epoch)
	if h == 0 {
		h = 1 // zero disables keyed jitter; keep the key always-on
	}
	return h
}

// ResyncOnce runs one pull pass against the coordinator's manifest: a
// shard is pulled when this worker holds it at an older epoch than the
// manifest (catch-up), or holds nothing but the manifest assigns the
// shard to this node (missed ship, fresh boot). Each pull retries with
// decorrelated-jitter backoff within ctx's deadline budget, reusing
// the resilience layer on the worker's clock. Installs go through the
// normal path, so a worker serving epoch N while pulling N+1 keeps
// both generations live and never mixes them in one answer.
func (w *Worker) ResyncOnce(ctx context.Context) (ResyncStats, error) {
	var stats ResyncStats
	if w.cfg.Client == nil {
		return stats, fmt.Errorf("cluster: worker %s has no coordinator client", w.cfg.ID)
	}
	m, err := w.cfg.Client.Manifest(ctx)
	if err != nil {
		w.resyncFails.Inc()
		return stats, fmt.Errorf("cluster: manifest: %w", err)
	}
	for _, mt := range m.Tables {
		for _, ms := range mt.Shards {
			cur := w.installedEpoch(mt.Table, ms.Shard)
			if cur >= mt.Epoch {
				continue
			}
			if cur == 0 && !containsNode(ms.Nodes, w.cfg.ID) {
				// Not ours and never was: an unassigned worker must not
				// mirror the whole cluster.
				continue
			}
			if w.pullOne(ctx, mt.Table, ms.Shard, mt.Epoch) {
				stats.Pulled++
			} else {
				stats.Failed++
			}
		}
		// The manifest is at least as fresh as any gap traffic reported;
		// clear the piggybacked expectation up to its epoch.
		w.mu.Lock()
		if w.expected[mt.Table] <= mt.Epoch {
			delete(w.expected, mt.Table)
		}
		w.mu.Unlock()
	}
	return stats, nil
}

// pullOne fetches and installs one snapshot, reporting success.
func (w *Worker) pullOne(ctx context.Context, table string, shard int, epoch uint64) bool {
	data, _, err := resilience.Do(ctx, resilience.CallPolicy{
		Clock:     w.clk,
		Retry:     w.retrier,
		JitterKey: fetchJitterKey(table, shard, epoch),
	}, func(actx context.Context, _ int) ([]byte, error) {
		return w.cfg.Client.Fetch(actx, table, shard)
	})
	if err == nil {
		if int64(len(data)) > w.cfg.MaxSnapshotBytes {
			err = fmt.Errorf("cluster: fetched snapshot %s/%d exceeds %d byte limit",
				table, shard, w.cfg.MaxSnapshotBytes)
		} else {
			err = w.InstallEncoded(data)
		}
	}
	if err != nil {
		w.resyncFails.Inc()
		return false
	}
	w.pulls.Inc()
	return true
}

// containsNode reports whether nodes names id.
func containsNode(nodes []NodeID, id NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}

// RunResyncLoop pulls every interval on the worker's clock — or
// sooner, when estimate traffic detects a gap — until ctx is done.
// Each pass runs under a deadline of one interval, which is also the
// retry budget for its pulls. Intended for production workers;
// deterministic harnesses call ResyncOnce directly instead of racing a
// background loop against the virtual clock.
func (w *Worker) RunResyncLoop(ctx context.Context, interval time.Duration) {
	if w.cfg.Client == nil || interval <= 0 {
		return
	}
	for {
		t := w.clk.NewTimer(interval)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		case <-w.kick:
			t.Stop()
		}
		pctx, cancel := vclock.WithTimeout(ctx, w.clk, interval)
		if _, err := w.ResyncOnce(pctx); err != nil {
			// Already counted in cluster_resync_failures_total; the next
			// tick (or kick) tries again.
			_ = err
		}
		cancel()
	}
}
