package cluster

import (
	"context"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// buildCatalog is the shared fixture: a sharded catalog over a skewed
// synthetic distribution, plus a query workload.
func buildCatalog(t *testing.T, cfg shard.Config) (*shard.ShardedCatalog, []geom.Rect) {
	t.Helper()
	d := synthetic.Charminar(2000, 1000, 10, 7)
	sc := shard.New(cfg)
	if err := sc.Analyze(d); err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Generate(d, workload.Config{Count: 60, QSize: 0.12, Seed: 3, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	return sc, queries
}

func TestSnapshotRoundTrip(t *testing.T) {
	sc, _ := buildCatalog(t, shard.Config{Shards: 4, Buckets: 80})
	for _, ex := range sc.Export() {
		snap := FromExport("t", ex)
		data, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("shard %d: %v", ex.Index, err)
		}
		if back.Table != "t" || back.Shard != ex.Index || back.Epoch != ex.Epoch || back.Rows != ex.Rows {
			t.Fatalf("shard %d identity lost: %+v", ex.Index, back)
		}
		if back.Region != ex.Region || back.MBR != ex.MBR || back.RouteBox != ex.RouteBox {
			t.Fatalf("shard %d geometry lost", ex.Index)
		}
		if back.Fallback != ex.Fallback {
			t.Fatalf("shard %d fallback lost: %+v != %+v", ex.Index, back.Fallback, ex.Fallback)
		}
		if len(back.Ladder) != len(ex.Ladder) {
			t.Fatalf("shard %d ladder: %d rungs, want %d", ex.Index, len(back.Ladder), len(ex.Ladder))
		}
		wantBuckets := ex.Hist.Buckets()
		gotBuckets := back.Hist.Buckets()
		if len(gotBuckets) != len(wantBuckets) {
			t.Fatalf("shard %d buckets: %d, want %d", ex.Index, len(gotBuckets), len(wantBuckets))
		}
		for i := range wantBuckets {
			if gotBuckets[i] != wantBuckets[i] {
				t.Fatalf("shard %d bucket %d: %+v != %+v", ex.Index, i, gotBuckets[i], wantBuckets[i])
			}
		}
	}
}

// TestReplicatedSnapshotByteIdenticalEstimates is the acceptance
// check: a worker serving a replicated snapshot must return
// byte-identical estimates to the node that built the histogram.
func TestReplicatedSnapshotByteIdenticalEstimates(t *testing.T) {
	sc, queries := buildCatalog(t, shard.Config{Shards: 4, Buckets: 80})
	w := NewWorker(WorkerConfig{ID: "n0"})
	exports := sc.Export()
	for _, ex := range exports {
		snap := FromExport("t", ex)
		data, err := snap.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.InstallEncoded(data); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		for _, ex := range exports {
			want := ex.Hist.Estimate(q)
			reply, err := w.Estimate(context.Background(), EstimateRequest{
				Table: "t", Shard: ex.Index, Epoch: ex.Epoch, Query: q,
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(reply.Estimate) != math.Float64bits(want) {
				t.Fatalf("shard %d query %v: replica %g != builder %g",
					ex.Index, q, reply.Estimate, want)
			}
			if reply.Epoch != ex.Epoch {
				t.Fatalf("shard %d: replica epoch %d, want %d", ex.Index, reply.Epoch, ex.Epoch)
			}
		}
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	sc, _ := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	snap := FromExport("t", sc.Export()[0])
	raw, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		sentinel error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrSnapshotCorrupt},
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, ErrSnapshotMagic},
		{"flipped payload bit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[20] ^= 0x40
			return c
		}, ErrSnapshotChecksum},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ErrSnapshotChecksum},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(c.mutate(raw))
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, c.sentinel) {
				t.Fatalf("error %v does not wrap %v", err, c.sentinel)
			}
		})
	}

	// Future version: re-checksum a body with a bumped version field so
	// the version check, not the checksum, rejects it.
	future := append([]byte(nil), raw...)
	future[9] = 0x63
	refreshChecksum(future)
	if _, err := Decode(future); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version error = %v", err)
	}

	// Corrupt embedded histogram: the core sentinel surfaces through.
	badHist := append([]byte(nil), raw...)
	// The first embedded histogram starts after the fixed header; its
	// magic "SPHIST2\n" is findable by scan.
	idx := indexOf(badHist, []byte("SPHIST2\n"))
	if idx < 0 {
		t.Fatal("no embedded histogram magic found")
	}
	badHist[idx] = 'X'
	refreshChecksum(badHist)
	if _, err := Decode(badHist); !errors.Is(err, core.ErrSnapshotMagic) {
		t.Fatalf("embedded histogram error = %v", err)
	}
}

// refreshChecksum recomputes the trailing CRC over a mutated payload.
func refreshChecksum(b []byte) {
	body := b[len(snapMagic) : len(b)-4]
	sum := crc32.Checksum(body, snapCRC)
	b[len(b)-4] = byte(sum >> 24)
	b[len(b)-3] = byte(sum >> 16)
	b[len(b)-2] = byte(sum >> 8)
	b[len(b)-1] = byte(sum)
}

func indexOf(b, sub []byte) int {
	for i := 0; i+len(sub) <= len(b); i++ {
		match := true
		for j := range sub {
			if b[i+j] != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
