package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// CoordinatorConfig configures the cluster coordinator.
type CoordinatorConfig struct {
	// Nodes lists the worker nodes, in a fixed order that replica
	// assignment and breaker reporting follow.
	Nodes []NodeID
	// Transport delivers shard calls and snapshot ships.
	Transport Transport
	// Replicas is how many nodes hold each shard's snapshot. Default
	// 2, capped at len(Nodes).
	Replicas int
	// Shard mirrors the in-process sharding policy: the coordinator
	// builds statistics exactly like a ShardedCatalog (same shards,
	// buckets, regions, ladder), then ships them. Shard.Resilience is
	// repurposed per-remote-node: breakers guard nodes, retries fail
	// over to the next replica, hedging races one.
	Shard shard.Config
	// ReconcileConcurrency bounds how many nodes one anti-entropy pass
	// inspects and re-ships concurrently. Default 2.
	ReconcileConcurrency int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	c.Shard = func(sc shard.Config) shard.Config {
		// Reuse shard's defaulting by building a throwaway catalog.
		return shard.New(sc).Config()
	}(c.Shard)
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Nodes) {
		c.Replicas = len(c.Nodes)
	}
	if c.ReconcileConcurrency <= 0 {
		c.ReconcileConcurrency = 2
	}
	return c
}

// minScatterBudget mirrors shard's: below this remaining deadline the
// coordinator answers from map summaries instead of launching calls
// it will abandon.
const minScatterBudget = 500 * time.Microsecond

// tableState is one table's routing state: the retained distribution
// (for rebuilds), the local build catalog, the atomically swapped
// partition map, and the published snapshot set behind the pull
// protocol's fetch RPC.
type tableState struct {
	d   *dataset.Distribution
	cat *shard.ShardedCatalog
	pm  atomic.Pointer[PartitionMap]
	pub atomic.Pointer[publishedSnaps]
}

// publishedSnaps retains one epoch's full snapshot set for fetch and
// anti-entropy re-ships. It is stored before the partition-map swap,
// so the fetchable epoch is never behind the epoch the map routes by.
type publishedSnaps struct {
	epoch uint64
	snaps []*Snapshot
}

// Coordinator owns the partition maps and fans estimates out to
// worker nodes. It implements serve.Backend and serve.StatusReporter,
// so the existing HTTP serving tier (cache, singleflight, admission,
// tracing) fronts a cluster unchanged.
type Coordinator struct {
	cfg CoordinatorConfig
	clk vclock.Clock

	mu     sync.RWMutex
	tables map[string]*tableState

	// breakers maps each node to its circuit breaker; built once in
	// NewCoordinator, the map itself is immutable (values lock
	// themselves). Nil when breakers are disabled.
	breakers map[NodeID]*resilience.Breaker
	retrier  *resilience.Retrier
	// callLatency is the always-on remote-call latency histogram
	// feeding the adaptive hedge delay.
	callLatency *telemetry.Histogram

	// Telemetry (nil-safe until EnableTelemetry).
	reg         *telemetry.Registry
	estimates   *telemetry.Counter
	partials    *telemetry.Counter
	staleCalls  *telemetry.Counter
	retries     *telemetry.Counter
	hedges      *telemetry.Counter
	hedgeWins   *telemetry.Counter
	shipBytes   *telemetry.Histogram
	reships     *telemetry.Counter
	resyncFails *telemetry.Counter
}

// NewCoordinator builds a coordinator over the given nodes and
// transport. Statistics are empty until AnalyzeContext.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one node")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a transport")
	}
	c := &Coordinator{
		cfg:    cfg,
		clk:    cfg.Shard.Clock,
		tables: make(map[string]*tableState),
	}
	c.callLatency, _ = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets)
	res := cfg.Shard.Resilience
	if res.BreakersEnabled() {
		c.breakers = make(map[NodeID]*resilience.Breaker, len(cfg.Nodes))
		for _, n := range cfg.Nodes {
			node := n
			c.breakers[n] = resilience.NewBreaker(res.Breaker, c.clk,
				func(_, to resilience.State) { c.noteBreakerTransition(node, to) })
		}
	}
	if res.RetriesEnabled() {
		c.retrier = resilience.NewRetrier(res.Retry, c.clk,
			rand.New(rand.NewSource(res.Seed)))
	}
	return c, nil
}

// EnableTelemetry registers the coordinator's metrics in reg.
func (c *Coordinator) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.estimates = reg.Counter("cluster_estimates_total",
		"Cluster scatter-gather estimates served by the coordinator.")
	c.partials = reg.Counter("cluster_partial_results_total",
		"Cluster estimates with at least one shard answered from a map summary.")
	c.staleCalls = reg.Counter("cluster_stale_replies_total",
		"Worker replies rejected for serving a different epoch than the partition map.")
	// Same series the in-process catalog uses, so dashboards and the
	// fault-simulation report read one place regardless of tier.
	c.retries = reg.Counter("resilience_retries_total",
		"Shard-call attempts relaunched after a failed attempt.")
	c.hedges = reg.Counter("resilience_hedges_total",
		"Hedged shard-call attempts launched.")
	c.hedgeWins = reg.Counter("resilience_hedge_wins_total",
		"Hedged attempts that produced the winning result.")
	c.shipBytes = reg.Histogram("cluster_snapshot_bytes",
		"Encoded size of shard snapshots shipped to workers.", snapshotBytesBuckets)
	c.reships = reg.Counter("cluster_resync_reships_total",
		"Snapshots re-shipped to lagging workers by the anti-entropy reconciler.")
	c.resyncFails = reg.Counter("cluster_resync_failures_total",
		"Failed resync operations (status probes, re-ships, pulls).")
}

// noteBreakerTransition mirrors the shard catalog's: per-node breaker
// state gauge plus the transition counter.
func (c *Coordinator) noteBreakerTransition(node NodeID, to resilience.State) {
	c.mu.RLock()
	reg := c.reg
	c.mu.RUnlock()
	if reg == nil {
		return
	}
	reg.Gauge("cluster_breaker_state",
		"Per-node circuit breaker state (0 closed, 1 half-open, 2 open).",
		telemetry.Label{Key: "node", Value: string(node)}).Set(float64(to))
	reg.Counter("cluster_breaker_transitions_total",
		"Node circuit breaker state transitions by destination state.",
		telemetry.Label{Key: "to", Value: to.String()}).Inc()
}

// noteShip counts one snapshot ship attempt in telemetry.
func (c *Coordinator) noteShip(node NodeID, bytes int, err error) {
	c.mu.RLock()
	reg := c.reg
	shipBytes := c.shipBytes
	c.mu.RUnlock()
	if err == nil {
		shipBytes.Observe(float64(bytes))
	}
	if reg == nil {
		return
	}
	result := "ok"
	if err != nil {
		result = "error"
	}
	reg.Counter("cluster_ship_total",
		"Shard snapshot ships to workers, by node and result.",
		telemetry.Label{Key: "node", Value: string(node)},
		telemetry.Label{Key: "result", Value: result}).Inc()
}

// AddTable registers a distribution under name. Statistics build on
// the next AnalyzeContext.
func (c *Coordinator) AddTable(name string, d *dataset.Distribution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[name] = &tableState{d: d, cat: shard.New(c.cfg.Shard)}
}

func (c *Coordinator) table(name string) *tableState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables implements serve.Backend: registered table names, sorted.
func (c *Coordinator) Tables() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Epoch returns the published partition-map epoch for table (0 before
// the first successful AnalyzeContext).
func (c *Coordinator) Epoch(table string) uint64 {
	ts := c.table(table)
	if ts == nil {
		return 0
	}
	pm := ts.pm.Load()
	if pm == nil {
		return 0
	}
	return pm.Epoch
}

// Map returns the live partition map for table (nil before the first
// AnalyzeContext). The map is immutable.
func (c *Coordinator) Map(table string) *PartitionMap {
	ts := c.table(table)
	if ts == nil {
		return nil
	}
	return ts.pm.Load()
}

// replicasFor assigns shard i its replica nodes: Replicas consecutive
// nodes starting at i mod N, so shards spread evenly and replica sets
// of adjacent shards overlap minimally.
func (c *Coordinator) replicasFor(i int) []NodeID {
	nodes := make([]NodeID, 0, c.cfg.Replicas)
	for r := 0; r < c.cfg.Replicas; r++ {
		nodes = append(nodes, c.cfg.Nodes[(i+r)%len(c.cfg.Nodes)])
	}
	return nodes
}

// AnalyzeContext implements serve.Backend: rebuild the table's
// statistics from the retained distribution, ship every shard's
// snapshot to its replicas, then publish the new partition map with
// one atomic swap. In-flight estimates keep the old map — and workers
// keep the old snapshots one generation deep — so no request is
// dropped or torn by a reshard. Ship failures do not fail the
// rebuild: the affected replicas simply serve a stale epoch until the
// next ship, which the estimate path detects and routes around.
func (c *Coordinator) AnalyzeContext(ctx context.Context, name string) error {
	ts := c.table(name)
	if ts == nil {
		return fmt.Errorf("cluster: no table %q", name)
	}
	if err := ts.cat.AnalyzeContext(ctx, ts.d); err != nil {
		return err
	}
	exports := ts.cat.Export()
	pm := &PartitionMap{Table: name, Epoch: ts.cat.Epoch(), Rows: ts.cat.Rows()}
	pub := &publishedSnaps{epoch: pm.Epoch, snaps: make([]*Snapshot, 0, len(exports))}
	for _, ex := range exports {
		route := ShardRoute{
			Index:    ex.Index,
			Region:   ex.Region,
			RouteBox: ex.RouteBox,
			Rows:     ex.Rows,
			Nodes:    c.replicasFor(ex.Index),
			Fallback: ex.Fallback,
		}
		if len(ex.Ladder) > 0 {
			route.Coarse = ex.Ladder[len(ex.Ladder)-1]
		}
		snap := FromExport(name, ex)
		pub.snaps = append(pub.snaps, snap)
		for _, node := range route.Nodes {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cluster: analyze: %w", err)
			}
			n, err := c.cfg.Transport.Ship(ctx, node, snap)
			c.noteShip(node, n, err)
		}
		pm.Shards = append(pm.Shards, route)
	}
	// The published set must be fetchable before the map routes by its
	// epoch: a worker that sees the new epoch can always pull it.
	ts.pub.Store(pub)
	ts.pm.Store(pm)
	c.mu.RLock()
	reg := c.reg
	c.mu.RUnlock()
	if reg != nil {
		reg.Gauge("cluster_map_epoch",
			"Published partition-map epoch per table.",
			telemetry.Label{Key: "table", Value: name}).Set(float64(pm.Epoch))
	}
	return nil
}

// Status implements serve.StatusReporter. Breakers are per node, in
// Nodes order.
func (c *Coordinator) Status() []serve.TableStatus {
	names := c.Tables()
	out := make([]serve.TableStatus, 0, len(names))
	for _, name := range names {
		st := serve.TableStatus{Table: name}
		if pm := c.Map(name); pm != nil {
			st.Analyzed = true
			st.Shards = len(pm.Shards)
			st.Breakers = c.BreakerStates()
		}
		out = append(out, st)
	}
	return out
}

// BreakerStates returns the breaker state per node, in Nodes order;
// nil when breakers are disabled.
func (c *Coordinator) BreakerStates() []string {
	if len(c.breakers) == 0 {
		return nil
	}
	out := make([]string, len(c.cfg.Nodes))
	for i, n := range c.cfg.Nodes {
		out[i] = c.breakers[n].State().String()
	}
	return out
}

// routeDegraded answers q from the map-embedded summaries: the
// coarsest ladder rung when the shard has one, else the uniformity
// fallback. Both are derived from the same build as the map's epoch,
// so degraded answers never mix statistics generations.
func routeDegraded(route *ShardRoute, q geom.Rect) (float64, shard.Quality) {
	if route.Coarse != nil {
		return route.Coarse.Estimate(q), shard.QualityCoarse
	}
	return route.Fallback.Estimate(q), shard.QualityUniform
}

// clusterAnswer carries one shard call's result to the gatherer.
type clusterAnswer struct {
	idx     int
	est     float64
	quality shard.Quality
}

// EstimateContext implements serve.Backend: route by the partition
// map's shard boxes, fan out to worker nodes, gather with the same
// deadline-aware merge the in-process catalog uses. The map pointer
// is loaded exactly once, so a concurrent reshard can never tear one
// request across epochs. Degradation is graceful and explicit: an
// unreachable, breaker-open, or stale-answering shard is answered
// from the map's own coarse summary and flagged, never an error.
func (c *Coordinator) EstimateContext(ctx context.Context, table string, q geom.Rect) (shard.Result, error) {
	if !q.Valid() {
		return shard.Result{}, fmt.Errorf("cluster: invalid query rectangle %v", q)
	}
	ts := c.table(table)
	if ts == nil {
		return shard.Result{}, fmt.Errorf("cluster: no table %q", table)
	}
	pm := ts.pm.Load()
	if pm == nil {
		return shard.Result{}, fmt.Errorf("cluster: no statistics for %q; run AnalyzeContext first", table)
	}

	relevant := make([]int, 0, len(pm.Shards))
	for i := range pm.Shards {
		if pm.Shards[i].RouteBox.Intersects(q) {
			relevant = append(relevant, i)
		}
	}
	c.estimates.Inc()
	res := shard.Result{ShardsTotal: len(pm.Shards), ShardsQueried: len(relevant), Epoch: pm.Epoch}

	// The cluster scatter span mirrors shard.scatter: the gatherer
	// alone grades the merge and seals the span, so trace-driven
	// invariant checks read one goroutine's verdict.
	scat := reqtrace.SpanFrom(ctx).StartChild("cluster.scatter")
	scat.SetInt("shards_total", len(pm.Shards))
	scat.SetInt("fanout", len(relevant))
	scat.SetInt("epoch", int(pm.Epoch))
	done := func(relevant []int, quality map[int]shard.Quality) (shard.Result, error) {
		res = c.finish(res, relevant, quality)
		if scat != nil {
			scat.SetAttr("quality", res.Quality.String())
			scat.SetAttr("shard_quality", qualityList(relevant, quality))
			if len(res.FallbackShards) > 0 {
				scat.SetAttr("fallback_shards", intList(res.FallbackShards))
			}
			scat.End()
		}
		return res, nil
	}
	if len(relevant) == 0 {
		return done(nil, nil)
	}

	// Deadline nearly spent: answer every shard from map summaries.
	if deadline, ok := ctx.Deadline(); ctx.Err() != nil ||
		(ok && deadline.Sub(c.clk.Now()) < minScatterBudget) {
		scat.Event("deadline.pre_scatter")
		quality := make(map[int]shard.Quality, len(relevant))
		var total float64
		for _, idx := range relevant {
			route := &pm.Shards[idx]
			sp := startCallSpan(scat, route)
			est, ql := routeDegraded(route, q)
			endCallSpan(sp, est, ql)
			total += est
			quality[idx] = ql
		}
		res.Estimate = total
		return done(relevant, quality)
	}

	// Scatter: one goroutine per relevant shard, spans pre-created in
	// routing order for deterministic trace shape.
	hedgeDelay := c.hedgeDelay()
	answers := make(chan clusterAnswer, len(relevant))
	reqID := reqtrace.RequestIDFrom(ctx)
	for _, idx := range relevant {
		go func(idx int, sp *reqtrace.Span) {
			pprof.Do(ctx, pprof.Labels("request_id", reqID, "shard", strconv.Itoa(idx)),
				func(ctx context.Context) {
					answers <- c.callShard(ctx, pm, idx, q, hedgeDelay, sp)
				})
		}(idx, startCallSpan(scat, &pm.Shards[idx]))
	}

	// Gather, mirroring shard.EstimateContext: accumulate per shard,
	// total in routing order (float addition is not associative), and
	// on a mid-scatter deadline drain what raced in, then answer the
	// rest from map summaries.
	quality := make(map[int]shard.Quality, len(relevant))
	ests := make(map[int]float64, len(relevant))
	for len(quality) < len(relevant) {
		select {
		case a := <-answers:
			ests[a.idx] = a.est
			quality[a.idx] = a.quality
		case <-ctx.Done():
			scat.Event("deadline.mid_scatter")
			for drained := true; drained && len(quality) < len(relevant); {
				select {
				case a := <-answers:
					ests[a.idx] = a.est
					quality[a.idx] = a.quality
				default:
					drained = false
				}
			}
			for _, idx := range relevant {
				if _, ok := quality[idx]; ok {
					continue
				}
				route := &pm.Shards[idx]
				est, ql := routeDegraded(route, q)
				scat.Event("ladder.fallback", reqtrace.Int("shard", idx),
					reqtrace.Str("quality", ql.String()))
				ests[idx] = est
				quality[idx] = ql
			}
			res.Estimate = sumInOrder(relevant, ests)
			return done(relevant, quality)
		}
	}
	res.Estimate = sumInOrder(relevant, ests)
	return done(relevant, quality)
}

// Compile-time check: the coordinator serves batches too.
var _ serve.BatchBackend = (*Coordinator)(nil)

// EstimateBatchContext implements serve.BatchBackend: one Result per
// query, in order. Remote fan-out dominates a cluster estimate, so the
// batch reuses the per-query scatter unchanged — the amortization the
// batch API buys here is the serving tier's per-request work (request
// ID, trace, admission, cache pass), not the scatter itself. Each
// query still loads the partition-map pointer once, so a concurrent
// reshard can split a batch across epochs but never tear one query.
func (c *Coordinator) EstimateBatchContext(ctx context.Context, table string, qs []geom.Rect) ([]shard.Result, error) {
	out := make([]shard.Result, 0, len(qs))
	for _, q := range qs {
		r, err := c.EstimateContext(ctx, table, q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// hedgeDelay resolves the adaptive hedge trigger: remote calls always
// have a tail worth hedging, so unlike the in-process catalog this is
// gated only on the policy.
func (c *Coordinator) hedgeDelay() time.Duration {
	if !c.cfg.Shard.Resilience.HedgingEnabled() {
		return 0
	}
	return c.cfg.Shard.Resilience.Hedge.DelayFrom(c.callLatency)
}

// callShard produces one shard's answer: attempts rotate through the
// shard's replicas (attempt n → replica n mod R), so a retry or hedge
// is a failover. Per-node breakers gate each attempt; a reply from
// the wrong epoch counts as a failed attempt (the node is healthy but
// its snapshot is stale) and moves to the next replica. When every
// attempt is spent the shard degrades to the map's own summaries.
func (c *Coordinator) callShard(ctx context.Context, pm *PartitionMap, idx int, q geom.Rect, hedgeDelay time.Duration, sp *reqtrace.Span) clusterAnswer {
	route := &pm.Shards[idx]
	if len(route.Nodes) == 0 {
		est, ql := routeDegraded(route, q)
		endCallSpan(sp, est, ql)
		return clusterAnswer{idx: idx, est: est, quality: ql}
	}
	req := EstimateRequest{Table: pm.Table, Shard: route.Index, Epoch: pm.Epoch, Query: q}
	est, stats, err := resilience.Do(reqtrace.ContextWithSpan(ctx, sp), resilience.CallPolicy{
		Clock:      c.clk,
		Retry:      c.retrier,
		HedgeDelay: hedgeDelay,
		JitterKey:  jitterKey(pm.Table, route.Index, pm.Epoch, q),
	}, func(actx context.Context, attempt int) (float64, error) {
		node := route.Nodes[attempt%len(route.Nodes)]
		br := c.breakers[node]
		tok, ok := br.Allow()
		if !ok {
			return 0, fmt.Errorf("cluster: node %s breaker open", node)
		}
		t0 := c.clk.Now()
		reply, err := c.cfg.Transport.Estimate(actx, node, req)
		c.callLatency.Observe(c.clk.Since(t0).Seconds())
		if err != nil {
			br.Record(tok, false)
			return 0, err
		}
		br.Record(tok, true)
		if reply.Epoch != pm.Epoch {
			// The node answered, so its breaker stays healthy — but the
			// answer is from another statistics generation and must not
			// be merged into this map's response.
			c.staleCalls.Inc()
			return 0, fmt.Errorf("%w: node %s served epoch %d, map epoch %d",
				ErrStaleSnapshot, node, reply.Epoch, pm.Epoch)
		}
		return reply.Estimate, nil
	})
	c.retries.Add(uint64(stats.Retries))
	c.hedges.Add(uint64(stats.Hedges))
	if stats.HedgeWon {
		c.hedgeWins.Inc()
	}
	sp.SetInt("attempts", stats.Attempts)
	if err != nil {
		sp.SetAttr("error", err.Error())
		if dl, ok := ctx.Deadline(); ok && errors.Is(err, context.DeadlineExceeded) {
			// The call logically ended when its deadline expired; this
			// goroutine may be observing that long after the clock moved
			// on, and a wake-up-time stamp would be schedule-dependent.
			sp.EndNoLaterThan(dl)
		}
		dest, ql := routeDegraded(route, q)
		endCallSpan(sp, dest, ql)
		return clusterAnswer{idx: idx, est: dest, quality: ql}
	}
	endCallSpan(sp, est, shard.QualityFull)
	return clusterAnswer{idx: idx, est: est, quality: shard.QualityFull}
}

// jitterKey folds one shard call's identity into the key that pins
// its retry-backoff jitter (see resilience.CallPolicy.JitterKey).
func jitterKey(table string, shardIdx int, epoch uint64, q geom.Rect) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	for _, c := range []byte(table) {
		mix(uint64(c))
	}
	mix(uint64(shardIdx))
	mix(epoch)
	mix(math.Float64bits(q.MinX))
	mix(math.Float64bits(q.MinY))
	mix(math.Float64bits(q.MaxX))
	mix(math.Float64bits(q.MaxY))
	if h == 0 {
		h = 1 // zero disables keyed jitter; keep the key always-on
	}
	return h
}

// finish grades the merged result, mirroring the in-process catalog.
func (c *Coordinator) finish(res shard.Result, relevant []int, quality map[int]shard.Quality) shard.Result {
	for _, idx := range relevant {
		ql := quality[idx]
		if ql > res.Quality {
			res.Quality = ql
		}
		if ql != shard.QualityFull {
			res.FallbackShards = append(res.FallbackShards, idx)
		}
	}
	sort.Ints(res.FallbackShards)
	res.ShardsMissed = len(res.FallbackShards)
	res.Partial = res.Quality != shard.QualityFull
	res.Breakers = c.BreakerStates()
	if res.Partial {
		c.partials.Inc()
	}
	return res
}

// sumInOrder totals per-shard estimates in routing order.
func sumInOrder(relevant []int, ests map[int]float64) float64 {
	var total float64
	for _, idx := range relevant {
		total += ests[idx]
	}
	return total
}

// startCallSpan opens one shard call's span with its static routing
// attributes.
func startCallSpan(scat *reqtrace.Span, route *ShardRoute) *reqtrace.Span {
	sp := scat.StartChild("cluster.call")
	sp.SetInt("shard", route.Index)
	sp.SetAttr("route_box", route.RouteBox.String())
	sp.SetAttr("nodes", nodeList(route.Nodes))
	return sp
}

// endCallSpan seals one shard call's span with its answer.
func endCallSpan(sp *reqtrace.Span, est float64, ql shard.Quality) {
	sp.SetAttr("quality", ql.String())
	sp.SetFloat("estimate", est)
	sp.End()
}

// qualityList renders the gatherer's per-shard qualities in routing
// order ("0:full,2:coarse") — the same convention shard.scatter uses,
// so the trace-driven invariant checks grade cluster responses with
// identical logic.
func qualityList(relevant []int, quality map[int]shard.Quality) string {
	var b strings.Builder
	for i, idx := range relevant {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
		b.WriteByte(':')
		b.WriteString(quality[idx].String())
	}
	return b.String()
}

// intList renders ints as "1,3,7".
func intList(v []int) string {
	var b strings.Builder
	for i, n := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// nodeList renders node IDs as "a,b".
func nodeList(v []NodeID) string {
	var b strings.Builder
	for i, n := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(n))
	}
	return b.String()
}
