package cluster

import (
	"context"
	"math"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// startWorkerServer runs a worker behind an httptest server and
// returns its NodeID (host:port) for the HTTP transport.
func startWorkerServer(t *testing.T, w *Worker) NodeID {
	t.Helper()
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return NodeID(u.Host)
}

// TestHTTPTransportEndToEnd drives the full distributed path over real
// HTTP: the coordinator ships snapshots to two worker servers, fans
// estimates out to them, and the answers match an in-process catalog
// built with the same policy bit for bit.
func TestHTTPTransportEndToEnd(t *testing.T) {
	d := synthetic.Charminar(1800, 1000, 10, 17)
	scfg := shard.Config{Shards: 3, Buckets: 60, Resilience: resilience.Config{Disable: true}}
	ref := shard.New(scfg)
	if err := ref.Analyze(d); err != nil {
		t.Fatal(err)
	}

	workers := []*Worker{
		NewWorker(WorkerConfig{ID: "w0", Tracer: reqtrace.New(reqtrace.Config{})}),
		NewWorker(WorkerConfig{ID: "w1", Tracer: reqtrace.New(reqtrace.Config{})}),
	}
	nodes := []NodeID{startWorkerServer(t, workers[0]), startWorkerServer(t, workers[1])}
	coord, err := NewCoordinator(CoordinatorConfig{
		Nodes:     nodes,
		Transport: &HTTPTransport{},
		Replicas:  2,
		Shard:     scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	// Every shard replicated to both nodes.
	for i, w := range workers {
		if got := len(w.Status()); got != 3 {
			t.Fatalf("worker %d holds %d snapshots, want 3", i, got)
		}
	}

	queries, err := workload.Generate(d, workload.Config{Count: 30, QSize: 0.1, Seed: 13, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, err := ref.EstimateContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.EstimateContext(context.Background(), "t", q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Quality != shard.QualityFull {
			t.Fatalf("query %v over HTTP degraded: %+v", q, got)
		}
		if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
			t.Fatalf("query %v: HTTP cluster %g != in-process %g", q, got.Estimate, want.Estimate)
		}
	}
}

// TestHTTPTransportTracePropagation: the request ID and calling span
// cross the HTTP hop in headers, so the worker's trace joins the
// coordinator's request.
func TestHTTPTransportTracePropagation(t *testing.T) {
	d := synthetic.Charminar(800, 1000, 10, 5)
	scfg := shard.Config{Shards: 2, Buckets: 40, Resilience: resilience.Config{Disable: true}}
	wtr := reqtrace.New(reqtrace.Config{})
	w := NewWorker(WorkerConfig{ID: "w0", Tracer: wtr})
	node := startWorkerServer(t, w)
	coord, err := NewCoordinator(CoordinatorConfig{
		Nodes:     []NodeID{node},
		Transport: &HTTPTransport{},
		Replicas:  1,
		Shard:     scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.AddTable("t", d)
	if err := coord.AnalyzeContext(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}

	ctr := reqtrace.New(reqtrace.Config{})
	ctx, tr := ctr.StartRequest(context.Background(), "req-e2e-42")
	queries, err := workload.Generate(d, workload.Config{Count: 1, QSize: 0.2, Seed: 2, Clamp: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.EstimateContext(ctx, "t", queries[0])
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish(reqtrace.Outcome{Table: "t", Estimate: res.Estimate, Quality: res.Quality.String()})

	traces := wtr.Recent()
	if len(traces) == 0 {
		t.Fatal("worker recorded no traces")
	}
	for _, wt := range traces {
		if wt.RequestID() != "req-e2e-42" {
			t.Fatalf("worker trace request ID %q, want req-e2e-42", wt.RequestID())
		}
		parent, ok := wt.Root().Attr("parent_span")
		if !ok || parent != "cluster.call" {
			t.Fatalf("worker root parent_span = %q (ok=%v), want cluster.call", parent, ok)
		}
		served := wt.Root().Find("worker.estimate")
		if len(served) != 1 {
			t.Fatalf("worker trace has %d worker.estimate spans, want 1", len(served))
		}
	}
}

// TestWorkerServesPreviousEpoch: after a reshard installs epoch 2, a
// request routed by an old epoch-1 map still gets an exact epoch-1
// answer from the held previous generation.
func TestWorkerServesPreviousEpoch(t *testing.T) {
	sc, queries := buildCatalog(t, shard.Config{Shards: 2, Buckets: 40})
	w := NewWorker(WorkerConfig{ID: "w0"})
	first := sc.Export()
	for _, ex := range first {
		w.Install(FromExport("t", ex))
	}
	// Re-analyze: epoch advances, histograms rebuilt.
	d2 := synthetic.Charminar(2400, 1000, 10, 77)
	if err := sc.Analyze(d2); err != nil {
		t.Fatal(err)
	}
	second := sc.Export()
	if second[0].Epoch != first[0].Epoch+1 {
		t.Fatalf("epoch did not advance: %d -> %d", first[0].Epoch, second[0].Epoch)
	}
	for _, ex := range second {
		w.Install(FromExport("t", ex))
	}
	q := queries[0]
	for _, ex := range first {
		reply, err := w.Estimate(context.Background(), EstimateRequest{
			Table: "t", Shard: ex.Index, Epoch: ex.Epoch, Query: q,
		})
		if err != nil {
			t.Fatal(err)
		}
		if reply.Epoch != ex.Epoch {
			t.Fatalf("shard %d: served epoch %d, want previous generation %d",
				ex.Index, reply.Epoch, ex.Epoch)
		}
		want := ex.Hist.Estimate(q)
		if math.Float64bits(reply.Estimate) != math.Float64bits(want) {
			t.Fatalf("shard %d: previous-epoch estimate %g != %g", ex.Index, reply.Estimate, want)
		}
	}
	// An unknown epoch falls through to current — the mismatch is
	// exposed in the reply, not hidden.
	reply, err := w.Estimate(context.Background(), EstimateRequest{
		Table: "t", Shard: 0, Epoch: 99, Query: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != second[0].Epoch {
		t.Fatalf("unknown epoch served %d, want current %d", reply.Epoch, second[0].Epoch)
	}
}
