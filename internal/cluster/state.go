package cluster

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// Durable worker state: each installed snapshot's SPSNAP1 encoding is
// kept at <StateDir>/<escape(table)>__<shard>.snap. The wire format
// already carries a CRC over the body, so a reload validates integrity
// for free, and writes go through a temp file + rename so a crash
// mid-write can never leave a torn current file. Only the current
// generation is persisted — the previous generation exists to bridge a
// live reshard, which a restart by definition is not in the middle of.

// stateFileName maps a snapshot identity to its file name. Table names
// are path-escaped so separators and dots cannot escape the state dir;
// the file itself records the identity, so names are never parsed.
func stateFileName(table string, shard int) string {
	return fmt.Sprintf("%s__%d.snap", url.PathEscape(table), shard)
}

// persist writes snap's encoding to the state directory. encoded may
// be nil (Install from a decoded snapshot), in which case it is
// re-encoded here. Failures never fail the install — the in-memory
// swap already happened — they latch into PersistErr and are counted.
func (w *Worker) persist(snap *Snapshot, encoded []byte) {
	w.persistMu.Lock()
	defer w.persistMu.Unlock()
	// A newer generation may have been installed (and persisted) while
	// this one waited for the lock; writing would roll the file back.
	if cur := w.installedEpoch(snap.Table, snap.Shard); cur > snap.Epoch {
		return
	}
	var err error
	if encoded == nil {
		encoded, err = snap.Encode()
		if err != nil {
			w.persistErr = fmt.Errorf("cluster: persist %s/%d: %w", snap.Table, snap.Shard, err)
			return
		}
	}
	if err := atomicWrite(w.cfg.StateDir, stateFileName(snap.Table, snap.Shard), encoded, !w.cfg.StateNoSync); err != nil {
		w.persistErr = fmt.Errorf("cluster: persist %s/%d: %w", snap.Table, snap.Shard, err)
		return
	}
	w.persists.Inc()
}

// atomicWrite lands data at dir/name via a same-directory temp file
// and rename, so readers only ever see a complete file. sync controls
// the pre-rename fsync (see WorkerConfig.StateNoSync).
func atomicWrite(dir, name string, data []byte, sync bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()        //spatialvet:ignore errdrop already failing; write error wins
		_ = os.Remove(tmpName) //spatialvet:ignore errdrop best-effort temp cleanup
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()        //spatialvet:ignore errdrop already failing; sync error wins
			_ = os.Remove(tmpName) //spatialvet:ignore errdrop best-effort temp cleanup
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) //spatialvet:ignore errdrop best-effort temp cleanup
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmpName) //spatialvet:ignore errdrop best-effort temp cleanup
		return err
	}
	return nil
}

// PersistErr returns the latched state-dir write error, if any. The
// worker keeps serving from memory regardless; operators surface this
// to know durability is degraded.
func (w *Worker) PersistErr() error {
	w.persistMu.Lock()
	defer w.persistMu.Unlock()
	return w.persistErr
}

// LoadState reloads every persisted snapshot from the state directory
// into memory, so a restarted worker serves immediately — possibly a
// stale epoch, which pull resync then catches up to head. Corrupt or
// truncated files (the codec's CRC catches both) and leftover temp
// files are skipped, not fatal: a worker with partial state is
// strictly better than one with none. Returns how many snapshots were
// loaded and how many files were skipped.
func (w *Worker) LoadState() (loaded, skipped int, err error) {
	if w.cfg.StateDir == "" {
		return 0, 0, fmt.Errorf("cluster: worker %s has no state directory", w.cfg.ID)
	}
	entries, err := os.ReadDir(w.cfg.StateDir)
	if os.IsNotExist(err) {
		return 0, 0, nil // first boot: nothing persisted yet
	}
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: load state: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".snap") {
			skipped++
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(w.cfg.StateDir, ent.Name()))
		if rerr != nil || int64(len(data)) > w.cfg.MaxSnapshotBytes {
			skipped++
			continue
		}
		snap, derr := Decode(data)
		if derr != nil {
			skipped++
			continue
		}
		w.installMem(snap)
		loaded++
	}
	return loaded, skipped, nil
}
