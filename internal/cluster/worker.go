package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// EstimateRequest is one shard call from the coordinator to a worker.
type EstimateRequest struct {
	Table string
	Shard int
	// Epoch is the statistics generation the coordinator's partition
	// map expects; the worker answers from the matching snapshot when
	// it holds one.
	Epoch uint64
	Query geom.Rect
}

// EstimateReply is a worker's answer to one shard call. Epoch states
// which snapshot generation actually produced the estimate — the
// coordinator compares it against the map epoch to detect staleness.
type EstimateReply struct {
	Estimate float64 `json:"estimate"`
	Epoch    uint64  `json:"epoch"`
	Node     NodeID  `json:"node"`
}

// WorkerConfig configures a worker node.
type WorkerConfig struct {
	// ID names the node in replies and status output. For pull resync
	// it must match the name the coordinator's partition map routes to
	// this worker, so the worker can recognize its own assignments in
	// the manifest.
	ID NodeID
	// Tracer, when non-nil, records a trace per served HTTP estimate,
	// joined to the coordinator's request via the propagation headers.
	Tracer *reqtrace.Tracer
	// StateDir, when non-empty, persists every installed snapshot
	// (atomic write of the checksummed SPSNAP1 encoding) so a restarted
	// worker can serve immediately via LoadState.
	StateDir string
	// Client, when non-nil, is the coordinator the worker pulls missing
	// snapshots from (see ResyncOnce).
	Client CoordinatorClient
	// Clock times resync backoff and loop intervals. Default real time.
	Clock vclock.Clock
	// Retry tunes the fetch retry policy: deadline-budgeted attempts
	// with decorrelated-jitter backoff. The zero value takes the
	// resilience defaults; Retry.Disable makes each pull single-shot.
	Retry resilience.RetryConfig
	// MaxSnapshotBytes bounds one uploaded or fetched snapshot body.
	// Default 64 MiB.
	MaxSnapshotBytes int64
	// StateNoSync skips the fsync in state-dir writes, trading crash
	// durability of the very last write for predictable latency. The
	// deterministic harness sets it because its clock driver races real
	// I/O stalls; production workers should leave it off.
	StateNoSync bool
}

// Worker serves per-shard estimates from installed snapshots. All
// methods are safe for concurrent use; snapshot installs are atomic
// swaps that keep the previous epoch alive, so requests routed by the
// coordinator's old map during a reshard still get exact-epoch
// answers.
type Worker struct {
	cfg     WorkerConfig
	clk     vclock.Clock
	retrier *resilience.Retrier

	mu    sync.RWMutex
	snaps map[snapKey]*snapEntry
	// expected tracks the highest epoch estimate requests have named
	// per table — evidence of a gap when it exceeds what is installed.
	expected map[string]uint64

	// persistMu serializes state-dir writes so concurrent installs for
	// the same shard can never leave an older generation on disk.
	persistMu  sync.Mutex
	persistErr error // guarded by persistMu; latched, surfaced by PersistErr

	// kick wakes the resync loop early when a gap is detected;
	// buffered so gap detection never blocks an estimate.
	kick chan struct{}

	// Telemetry (nil-safe before EnableTelemetry).
	installs     *telemetry.Counter
	installBytes *telemetry.Histogram
	estimates    *telemetry.Counter
	staleServes  *telemetry.Counter
	pulls        *telemetry.Counter
	resyncFails  *telemetry.Counter
	persists     *telemetry.Counter
}

type snapKey struct {
	table string
	shard int
}

// snapEntry holds the current snapshot and the previous epoch's, the
// two generations a live reshard can route to.
type snapEntry struct {
	cur, prev *Snapshot
}

// NewWorker returns an empty worker; feed it snapshots with Install,
// LoadState, or pull resync.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.MaxSnapshotBytes <= 0 {
		cfg.MaxSnapshotBytes = defaultMaxSnapshotBody
	}
	w := &Worker{
		cfg:      cfg,
		clk:      cfg.Clock,
		snaps:    make(map[snapKey]*snapEntry),
		expected: make(map[string]uint64),
		kick:     make(chan struct{}, 1),
	}
	if cfg.Client != nil && !cfg.Retry.Disable {
		w.retrier = resilience.NewRetrier(cfg.Retry, w.clk, nil)
	}
	return w
}

// ID returns the worker's node ID.
func (w *Worker) ID() NodeID { return w.cfg.ID }

// snapshotBytesBuckets bound the installed-snapshot size histogram.
var snapshotBytesBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// EnableTelemetry registers the worker's metrics in reg.
func (w *Worker) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.installs = reg.Counter("cluster_worker_installs_total",
		"Shard snapshots installed on this worker.")
	w.installBytes = reg.Histogram("cluster_snapshot_bytes",
		"Encoded size of installed shard snapshots.", snapshotBytesBuckets)
	w.estimates = reg.Counter("cluster_worker_estimates_total",
		"Shard estimate calls served from installed snapshots.")
	w.staleServes = reg.Counter("cluster_worker_stale_serves_total",
		"Shard calls answered from a snapshot epoch other than the requested one.")
	w.pulls = reg.Counter("cluster_resync_pulls_total",
		"Missing or stale snapshots this worker pulled from the coordinator.")
	w.resyncFails = reg.Counter("cluster_resync_failures_total",
		"Failed resync operations (status probes, re-ships, pulls).")
	w.persists = reg.Counter("cluster_state_persists_total",
		"Installed snapshots persisted to the worker's state directory.")
}

// Install atomically makes snap the current snapshot for its
// (table, shard), demoting the previously current one to the held
// previous generation, and persists it when a state directory is
// configured.
func (w *Worker) Install(snap *Snapshot) {
	w.installMem(snap)
	if w.cfg.StateDir != "" {
		w.persist(snap, nil)
	}
}

// installMem is Install without the state-dir write — the memory-only
// path LoadState uses so reloading does not rewrite identical files.
func (w *Worker) installMem(snap *Snapshot) {
	key := snapKey{table: snap.Table, shard: snap.Shard}
	w.mu.Lock()
	e := w.snaps[key]
	if e == nil {
		e = &snapEntry{}
		w.snaps[key] = e
	}
	if e.cur != nil && e.cur.Epoch != snap.Epoch {
		e.prev = e.cur
	}
	e.cur = snap
	w.mu.Unlock()
	w.installs.Inc()
}

// InstallEncoded decodes and installs a shipped snapshot, observing
// its wire size. A snapshot that fails to decode — bad magic, wrong
// version, checksum mismatch, truncation — is rejected whole: the
// previously installed generations stay live and untouched.
func (w *Worker) InstallEncoded(data []byte) error {
	snap, err := Decode(data)
	if err != nil {
		return err
	}
	w.installBytes.Observe(float64(len(data)))
	w.installMem(snap)
	if w.cfg.StateDir != "" {
		w.persist(snap, data)
	}
	return nil
}

// lookup picks the snapshot to answer req from: the exact-epoch
// generation when held (current or previous), else whatever is
// current — the reply's epoch exposes the mismatch to the
// coordinator.
func (w *Worker) lookup(req EstimateRequest) (*Snapshot, error) {
	// Copy the generation pointers while holding the lock: a concurrent
	// install mutates the entry in place, and snapshots themselves are
	// immutable once installed.
	var cur, prev *Snapshot
	w.mu.RLock()
	if e := w.snaps[snapKey{table: req.Table, shard: req.Shard}]; e != nil {
		cur, prev = e.cur, e.prev
	}
	w.mu.RUnlock()
	if cur == nil {
		return nil, fmt.Errorf("%w: %s/%d on node %s", ErrNoSnapshot, req.Table, req.Shard, w.cfg.ID)
	}
	if cur.Epoch == req.Epoch {
		return cur, nil
	}
	if prev != nil && prev.Epoch == req.Epoch {
		return prev, nil
	}
	return cur, nil
}

// Estimate answers one shard call from the worker's snapshots. The
// estimate is a pure walk of the replicated histogram, so it is
// byte-identical to the building node's answer for the same epoch.
func (w *Worker) Estimate(ctx context.Context, req EstimateRequest) (EstimateReply, error) {
	if !req.Query.Valid() {
		return EstimateReply{}, fmt.Errorf("cluster: invalid query rectangle %v", req.Query)
	}
	snap, err := w.lookup(req)
	if err != nil {
		return EstimateReply{}, err
	}
	sp := reqtrace.SpanFrom(ctx).StartChild("worker.estimate")
	sp.SetAttr("node", string(w.cfg.ID))
	sp.SetInt("shard", req.Shard)
	sp.SetInt("epoch_requested", int(req.Epoch))
	sp.SetInt("epoch_served", int(snap.Epoch))
	est := snap.Hist.Estimate(req.Query)
	sp.SetFloat("estimate", est)
	sp.End()
	w.estimates.Inc()
	if snap.Epoch != req.Epoch {
		w.staleServes.Inc()
	}
	if snap.Epoch < req.Epoch {
		// The coordinator's map is ahead of what we hold: record the
		// gap and wake the resync loop — the piggybacked half of gap
		// detection (the manifest is the other half).
		w.noteGap(req.Table, req.Epoch)
	}
	return EstimateReply{Estimate: est, Epoch: snap.Epoch, Node: w.cfg.ID}, nil
}

// SnapshotStatus describes one installed snapshot for /cluster/status.
type SnapshotStatus struct {
	Table   string `json:"table"`
	Shard   int    `json:"shard"`
	Epoch   uint64 `json:"epoch"`
	Rows    int    `json:"rows"`
	Buckets int    `json:"buckets"`
}

// Status lists the worker's installed snapshots, sorted by (table,
// shard) so output is deterministic.
func (w *Worker) Status() []SnapshotStatus {
	w.mu.RLock()
	out := make([]SnapshotStatus, 0, len(w.snaps))
	for k, e := range w.snaps {
		if e.cur == nil {
			continue
		}
		out = append(out, SnapshotStatus{
			Table:   k.table,
			Shard:   k.shard,
			Epoch:   e.cur.Epoch,
			Rows:    e.cur.Rows,
			Buckets: len(e.cur.Hist.Buckets()),
		})
	}
	w.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// defaultMaxSnapshotBody bounds an uploaded or fetched snapshot when
// WorkerConfig.MaxSnapshotBytes is unset.
const defaultMaxSnapshotBody = 64 << 20

// workerError is the JSON error body of the worker endpoints.
type workerError struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// Handler serves the worker protocol:
//
//	PUT  /cluster/snapshot  — install an encoded snapshot
//	GET  /cluster/estimate  — serve one shard call
//	GET  /cluster/status    — list installed snapshots
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/snapshot", w.handleSnapshot)
	mux.HandleFunc("/cluster/estimate", w.handleEstimate)
	mux.HandleFunc("/cluster/status", w.handleStatus)
	return mux
}

func writeWorkerJSON(rw http.ResponseWriter, code int, body any) {
	rw.Header().Set("Content-Type", "application/json; charset=utf-8")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(body) // client gone is the only failure
}

func (w *Worker) handleSnapshot(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		writeWorkerJSON(rw, http.StatusMethodNotAllowed,
			workerError{Error: "PUT required", Code: http.StatusMethodNotAllowed})
		return
	}
	// MaxBytesReader cuts the connection off at the limit — a huge or
	// malicious ship can never balloon this worker's memory.
	data, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.cfg.MaxSnapshotBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeWorkerJSON(rw, http.StatusRequestEntityTooLarge,
				workerError{Error: fmt.Sprintf("snapshot exceeds %d byte limit", mbe.Limit),
					Code: http.StatusRequestEntityTooLarge})
			return
		}
		writeWorkerJSON(rw, http.StatusBadRequest,
			workerError{Error: fmt.Sprintf("read body: %v", err), Code: http.StatusBadRequest})
		return
	}
	if err := w.InstallEncoded(data); err != nil {
		writeWorkerJSON(rw, http.StatusBadRequest,
			workerError{Error: err.Error(), Code: http.StatusBadRequest})
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

func (w *Worker) handleEstimate(rw http.ResponseWriter, r *http.Request) {
	req, err := parseEstimateParams(r)
	if err != nil {
		writeWorkerJSON(rw, http.StatusBadRequest,
			workerError{Error: err.Error(), Code: http.StatusBadRequest})
		return
	}
	// Bind this node's trace to the coordinator's request: same
	// request ID, parent span recorded on the root.
	ctx, tr := w.cfg.Tracer.StartRemoteRequest(r.Context(), r.Header,
		fmt.Sprintf("%s-%s-%d", w.cfg.ID, req.Table, req.Shard))
	reply, err := w.Estimate(ctx, req)
	out := reqtrace.Outcome{
		Table: req.Table,
		Query: [4]float64{req.Query.MinX, req.Query.MinY, req.Query.MaxX, req.Query.MaxY},
	}
	if err != nil {
		out.Err = "backend"
	} else {
		out.Estimate = reply.Estimate
		out.Quality = shard.QualityFull.String()
	}
	tr.Finish(out)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrNoSnapshot) {
			code = http.StatusNotFound
		}
		writeWorkerJSON(rw, code, workerError{Error: err.Error(), Code: code})
		return
	}
	writeWorkerJSON(rw, http.StatusOK, reply)
}

func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	writeWorkerJSON(rw, http.StatusOK, NodeStatus{Node: w.cfg.ID, Snapshots: w.Status()})
}

// parseEstimateParams reads a shard call from URL query parameters:
// table, shard, epoch, minx/miny/maxx/maxy.
func parseEstimateParams(r *http.Request) (EstimateRequest, error) {
	q := r.URL.Query()
	req := EstimateRequest{Table: q.Get("table")}
	if req.Table == "" {
		return req, fmt.Errorf("cluster: missing table parameter")
	}
	shardIdx, err := strconv.Atoi(q.Get("shard"))
	if err != nil {
		return req, fmt.Errorf("cluster: bad shard parameter: %v", err)
	}
	req.Shard = shardIdx
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		return req, fmt.Errorf("cluster: bad epoch parameter: %v", err)
	}
	req.Epoch = epoch
	coords := [4]float64{}
	for i, name := range [...]string{"minx", "miny", "maxx", "maxy"} {
		v, err := strconv.ParseFloat(q.Get(name), 64)
		if err != nil {
			return req, fmt.Errorf("cluster: bad %s parameter: %v", name, err)
		}
		coords[i] = v
	}
	req.Query = geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
	if !req.Query.Valid() {
		return req, fmt.Errorf("cluster: invalid query rectangle %v", req.Query)
	}
	return req, nil
}
