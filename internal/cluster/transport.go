package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"repro/internal/reqtrace"
)

// Transport delivers coordinator→worker calls. Two implementations:
// HTTP for real deployments, Local for in-process clusters (tests and
// the fault simulation harness). Ship returns the encoded snapshot
// size in bytes, feeding the shipping telemetry. Status reads a
// worker's installed-snapshot inventory — the anti-entropy
// reconciler's input.
type Transport interface {
	Estimate(ctx context.Context, node NodeID, req EstimateRequest) (EstimateReply, error)
	Ship(ctx context.Context, node NodeID, snap *Snapshot) (int, error)
	Status(ctx context.Context, node NodeID) (NodeStatus, error)
}

// Local is an in-process transport: a registry of workers addressed
// by NodeID, called directly. Ship still round-trips the snapshot
// through Encode/Decode, so the wire format is exercised even in
// simulation.
type Local struct {
	mu      sync.RWMutex
	workers map[NodeID]*Worker
}

// NewLocal returns an empty in-process transport.
func NewLocal() *Local {
	return &Local{workers: make(map[NodeID]*Worker)}
}

// Register adds (or replaces) a worker under id.
func (l *Local) Register(id NodeID, w *Worker) {
	l.mu.Lock()
	l.workers[id] = w
	l.mu.Unlock()
}

// Worker returns the registered worker (nil if absent).
func (l *Local) Worker(id NodeID) *Worker {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.workers[id]
}

// Estimate implements Transport by calling the worker directly. The
// context — and with it the request ID and calling span — crosses the
// "hop" intact, so worker spans nest under the coordinator's call
// span in one trace.
func (l *Local) Estimate(ctx context.Context, node NodeID, req EstimateRequest) (EstimateReply, error) {
	w := l.Worker(node)
	if w == nil {
		return EstimateReply{}, fmt.Errorf("%w: %s", ErrUnreachable, node)
	}
	return w.Estimate(ctx, req)
}

// Ship implements Transport: encode, decode, install — the same bytes
// a real wire would carry.
func (l *Local) Ship(ctx context.Context, node NodeID, snap *Snapshot) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	w := l.Worker(node)
	if w == nil {
		return 0, fmt.Errorf("%w: %s", ErrUnreachable, node)
	}
	data, err := snap.Encode()
	if err != nil {
		return 0, err
	}
	if err := w.InstallEncoded(data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Status implements Transport by reading the worker's inventory
// directly.
func (l *Local) Status(ctx context.Context, node NodeID) (NodeStatus, error) {
	if err := ctx.Err(); err != nil {
		return NodeStatus{}, err
	}
	w := l.Worker(node)
	if w == nil {
		return NodeStatus{}, fmt.Errorf("%w: %s", ErrUnreachable, node)
	}
	return NodeStatus{Node: w.ID(), Snapshots: w.Status()}, nil
}

// HTTPTransport reaches workers over HTTP; NodeID is the worker's
// host:port. Request identity and the calling span propagate in the
// X-Request-Id and X-Parent-Span headers.
type HTTPTransport struct {
	// Scheme defaults to "http".
	Scheme string
	// Client defaults to http.DefaultClient; production callers
	// should set timeouts via the request context.
	Client *http.Client
}

func (t *HTTPTransport) scheme() string {
	if t.Scheme != "" {
		return t.Scheme
	}
	return "http"
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Estimate implements Transport over GET /cluster/estimate.
func (t *HTTPTransport) Estimate(ctx context.Context, node NodeID, req EstimateRequest) (EstimateReply, error) {
	params := url.Values{
		"table": {req.Table},
		"shard": {strconv.Itoa(req.Shard)},
		"epoch": {strconv.FormatUint(req.Epoch, 10)},
		"minx":  {strconv.FormatFloat(req.Query.MinX, 'g', -1, 64)},
		"miny":  {strconv.FormatFloat(req.Query.MinY, 'g', -1, 64)},
		"maxx":  {strconv.FormatFloat(req.Query.MaxX, 'g', -1, 64)},
		"maxy":  {strconv.FormatFloat(req.Query.MaxY, 'g', -1, 64)},
	}
	u := fmt.Sprintf("%s://%s/cluster/estimate?%s", t.scheme(), node, params.Encode())
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return EstimateReply{}, fmt.Errorf("cluster: build request: %w", err)
	}
	reqtrace.InjectHTTP(ctx, hr.Header)
	resp, err := t.client().Do(hr)
	if err != nil {
		return EstimateReply{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, node, err)
	}
	defer resp.Body.Close() //spatialvet:ignore errdrop response body close on read path
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return EstimateReply{}, fmt.Errorf("%w: %s: read reply: %v", ErrUnreachable, node, err)
	}
	if resp.StatusCode != http.StatusOK {
		var we workerError
		if json.Unmarshal(body, &we) == nil && we.Error != "" {
			return EstimateReply{}, fmt.Errorf("cluster: node %s: %s", node, we.Error)
		}
		return EstimateReply{}, fmt.Errorf("cluster: node %s: HTTP %d", node, resp.StatusCode)
	}
	var reply EstimateReply
	if err := json.Unmarshal(body, &reply); err != nil {
		return EstimateReply{}, fmt.Errorf("cluster: node %s: decode reply: %v", node, err)
	}
	return reply, nil
}

// Status implements Transport over GET /cluster/status.
func (t *HTTPTransport) Status(ctx context.Context, node NodeID) (NodeStatus, error) {
	u := fmt.Sprintf("%s://%s/cluster/status", t.scheme(), node)
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return NodeStatus{}, fmt.Errorf("cluster: build request: %w", err)
	}
	resp, err := t.client().Do(hr)
	if err != nil {
		return NodeStatus{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, node, err)
	}
	defer resp.Body.Close() //spatialvet:ignore errdrop response body close on read path
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return NodeStatus{}, fmt.Errorf("%w: %s: read reply: %v", ErrUnreachable, node, err)
	}
	if resp.StatusCode != http.StatusOK {
		return NodeStatus{}, fmt.Errorf("cluster: node %s: HTTP %d", node, resp.StatusCode)
	}
	var st NodeStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return NodeStatus{}, fmt.Errorf("cluster: node %s: decode status: %v", node, err)
	}
	return st, nil
}

// Ship implements Transport over PUT /cluster/snapshot.
func (t *HTTPTransport) Ship(ctx context.Context, node NodeID, snap *Snapshot) (int, error) {
	data, err := snap.Encode()
	if err != nil {
		return 0, err
	}
	u := fmt.Sprintf("%s://%s/cluster/snapshot", t.scheme(), node)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return 0, fmt.Errorf("cluster: build request: %w", err)
	}
	hr.Header.Set("Content-Type", "application/octet-stream")
	reqtrace.InjectHTTP(ctx, hr.Header)
	resp, err := t.client().Do(hr)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrUnreachable, node, err)
	}
	defer resp.Body.Close() //spatialvet:ignore errdrop response body close on write path
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //spatialvet:ignore errdrop best-effort error body
		return 0, fmt.Errorf("cluster: ship to %s: HTTP %d: %s", node, resp.StatusCode, bytes.TrimSpace(body))
	}
	return len(data), nil
}
