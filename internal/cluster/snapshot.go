package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/shard"
)

// Snapshot is one shard's complete serving state, shipped from the
// coordinator to the shard's replicas: identity (table, shard index,
// epoch), routing geometry, the full Min-Skew histogram, the
// degradation ladder, and the uniformity fallback. A worker holding a
// snapshot can answer the shard's estimates byte-identically to the
// node that built it — the histograms round-trip through the
// checksummed core v2 format with exact float bits.
type Snapshot struct {
	Table string
	Shard int
	Epoch uint64
	Rows  int
	// Region, MBR, RouteBox mirror shard.Export.
	Region   geom.Rect
	MBR      geom.Rect
	RouteBox geom.Rect
	// Hist is the shard's full histogram; Ladder its coarser rungs,
	// finest first.
	Hist   *core.BucketEstimator
	Ladder []*core.BucketEstimator
	// Fallback is the single-bucket uniformity summary.
	Fallback core.Bucket
}

// FromExport lifts a shard.Export into a shippable snapshot.
func FromExport(table string, ex shard.Export) *Snapshot {
	return &Snapshot{
		Table:    table,
		Shard:    ex.Index,
		Epoch:    ex.Epoch,
		Rows:     ex.Rows,
		Region:   ex.Region,
		MBR:      ex.MBR,
		RouteBox: ex.RouteBox,
		Hist:     ex.Hist,
		Ladder:   ex.Ladder,
		Fallback: ex.Fallback,
	}
}

// Snapshot wire format, versioned and checksummed like the core
// histogram format it embeds:
//
//	magic "SPSNAP1\n"
//	uint16 format version (currently 1)
//	uint16 table length, table bytes
//	uint32 shard index
//	uint64 epoch
//	uint64 rows
//	region, mbr, routeBox: 4 float64 each
//	fallback bucket: 4 float64 box, uint64 count, 3 float64 stats
//	uint16 histogram count (full + ladder rungs, ≥ 1)
//	per histogram: uint32 byte length, core v2 histogram bytes
//	uint32 CRC-32C of everything after the magic
const (
	snapMagic   = "SPSNAP1\n"
	snapVersion = 1
	// maxSnapHistograms bounds the histogram count field; the ladder
	// is a handful of rungs, never dozens.
	maxSnapHistograms = 16
	// maxSnapHistBytes bounds one embedded histogram's length prefix.
	maxSnapHistBytes = 1 << 28
)

// Snapshot decode sentinels, mirroring the core serializer's.
var (
	ErrSnapshotMagic    = errors.New("cluster: unrecognized snapshot magic")
	ErrSnapshotVersion  = errors.New("cluster: unsupported snapshot version")
	ErrSnapshotChecksum = errors.New("cluster: snapshot checksum mismatch")
	ErrSnapshotCorrupt  = errors.New("cluster: corrupt snapshot")
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the snapshot.
func (s *Snapshot) Encode() ([]byte, error) {
	if s.Hist == nil {
		return nil, fmt.Errorf("cluster: encode snapshot without histogram")
	}
	if len(s.Table) > math.MaxUint16 {
		return nil, fmt.Errorf("cluster: table name too long (%d bytes)", len(s.Table))
	}
	var body bytes.Buffer
	var buf [8]byte
	binary.BigEndian.PutUint16(buf[:2], snapVersion)
	body.Write(buf[:2])
	binary.BigEndian.PutUint16(buf[:2], uint16(len(s.Table)))
	body.Write(buf[:2])
	body.WriteString(s.Table)
	binary.BigEndian.PutUint32(buf[:4], uint32(s.Shard))
	body.Write(buf[:4])
	binary.BigEndian.PutUint64(buf[:], s.Epoch)
	body.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(s.Rows))
	body.Write(buf[:])
	for _, r := range [...]geom.Rect{s.Region, s.MBR, s.RouteBox} {
		writeRect(&body, r)
	}
	writeRect(&body, s.Fallback.Box)
	binary.BigEndian.PutUint64(buf[:], uint64(s.Fallback.Count))
	body.Write(buf[:])
	for _, v := range [...]float64{s.Fallback.AvgW, s.Fallback.AvgH, s.Fallback.AvgDensity} {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		body.Write(buf[:])
	}
	hists := append([]*core.BucketEstimator{s.Hist}, s.Ladder...)
	if len(hists) > maxSnapHistograms {
		return nil, fmt.Errorf("cluster: too many histograms (%d)", len(hists))
	}
	binary.BigEndian.PutUint16(buf[:2], uint16(len(hists)))
	body.Write(buf[:2])
	for _, h := range hists {
		raw, err := h.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("cluster: encode histogram: %w", err)
		}
		binary.BigEndian.PutUint32(buf[:4], uint32(len(raw)))
		body.Write(buf[:4])
		body.Write(raw)
	}

	out := make([]byte, 0, len(snapMagic)+body.Len()+4)
	out = append(out, snapMagic...)
	out = append(out, body.Bytes()...)
	binary.BigEndian.PutUint32(buf[:4], crc32.Checksum(body.Bytes(), snapCRC))
	return append(out, buf[:4]...), nil
}

func writeRect(b *bytes.Buffer, r geom.Rect) {
	var buf [8]byte
	for _, v := range [...]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		b.Write(buf[:])
	}
}

// Decode deserializes a snapshot written by Encode, verifying the
// checksum before interpreting the payload. Failures wrap
// ErrSnapshotMagic, ErrSnapshotVersion, ErrSnapshotChecksum, or
// ErrSnapshotCorrupt (embedded histogram failures wrap the core
// sentinels too).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %q", ErrSnapshotMagic, data[:len(snapMagic)])
	}
	body := data[len(snapMagic) : len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, snapCRC); got != want {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrSnapshotChecksum, want, got)
	}
	d := &snapDecoder{b: body}
	version := d.u16()
	if d.err == nil && version != snapVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrSnapshotVersion, version, snapVersion)
	}
	s := &Snapshot{}
	s.Table = d.str(int(d.u16()))
	s.Shard = int(d.u32())
	s.Epoch = d.u64()
	rows := d.u64()
	s.Region = d.rect()
	s.MBR = d.rect()
	s.RouteBox = d.rect()
	s.Fallback.Box = d.rect()
	cnt := d.u64()
	s.Fallback.AvgW = d.f64()
	s.Fallback.AvgH = d.f64()
	s.Fallback.AvgDensity = d.f64()
	nHists := int(d.u16())
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, d.err)
	}
	if rows > math.MaxInt32 || cnt > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible row count", ErrSnapshotCorrupt)
	}
	s.Rows = int(rows)
	s.Fallback.Count = int(cnt)
	if nHists < 1 || nHists > maxSnapHistograms {
		return nil, fmt.Errorf("%w: implausible histogram count %d", ErrSnapshotCorrupt, nHists)
	}
	for i := 0; i < nHists; i++ {
		hlen := int(d.u32())
		if d.err == nil && (hlen <= 0 || hlen > maxSnapHistBytes) {
			return nil, fmt.Errorf("%w: implausible histogram length %d", ErrSnapshotCorrupt, hlen)
		}
		raw := d.bytes(hlen)
		if d.err != nil {
			return nil, fmt.Errorf("%w: histogram %d: %v", ErrSnapshotCorrupt, i, d.err)
		}
		h, err := core.ReadHistogram(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot histogram %d: %w", i, err)
		}
		if i == 0 {
			s.Hist = h
		} else {
			s.Ladder = append(s.Ladder, h)
		}
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, d.rem())
	}
	return s, nil
}

// snapDecoder is a cursor over the checksummed body with a latched
// error, so the happy path reads straight through.
type snapDecoder struct {
	b   []byte
	off int
	err error
}

func (d *snapDecoder) rem() int { return len(d.b) - d.off }

func (d *snapDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.rem() < n {
		d.err = fmt.Errorf("truncated at offset %d (want %d bytes, have %d)", d.off, n, d.rem())
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *snapDecoder) u16() uint16 {
	p := d.bytes(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (d *snapDecoder) u32() uint32 {
	p := d.bytes(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (d *snapDecoder) u64() uint64 {
	p := d.bytes(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (d *snapDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *snapDecoder) str(n int) string {
	p := d.bytes(n)
	if p == nil {
		return ""
	}
	return string(p)
}

func (d *snapDecoder) rect() geom.Rect {
	return geom.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
}
