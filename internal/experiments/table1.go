package experiments

import (
	"fmt"

	"repro/internal/tiger"
)

// Table1Sizes are the input sizes of Table 1 (50K and 400K in the
// paper).
var Table1Sizes = []int{50000, 400000}

// Table1Buckets are the bucket budgets of Table 1.
var Table1Buckets = []int{100, 750}

// Table1 reproduces Table 1: construction time in seconds for each
// partitioning technique at two input sizes and two bucket budgets.
// The datasets are NJ-Road-like networks scaled to the requested sizes.
// Absolute times depend on the machine; the reproduction target is the
// shape — Min-Skew nearly flat in N and beta, Equi-*/R-Tree growing
// steeply with N.
func (e *Env) Table1() (*Table, error) {
	techniques := []string{"Min-Skew", "Equi-Area", "Equi-Count", "R-Tree", "Uniform"}
	t := &Table{
		Title:    "Table 1: construction time in seconds",
		RowLabel: "Technique",
		Rows:     techniques,
	}
	for _, n := range Table1Sizes {
		for _, buckets := range Table1Buckets {
			t.Columns = append(t.Columns, fmt.Sprintf("N=%dK b=%d", n/1000, buckets))
		}
	}
	t.Values = make([][]float64, len(techniques))
	for i := range t.Values {
		t.Values[i] = make([]float64, len(t.Columns))
	}

	col := 0
	for _, n := range Table1Sizes {
		d := tiger.NJRoad(n)
		for _, buckets := range Table1Buckets {
			for row, name := range techniques {
				_, elapsed, err := e.buildTechnique(name, d, buckets, 10000)
				if err != nil {
					return nil, fmt.Errorf("table1: %s N=%d b=%d: %v", name, n, buckets, err)
				}
				t.Values[row][col] = elapsed.Seconds()
			}
			col++
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Min-Skew grows mildly with N (one density sweep); Equi-Area/Equi-Count/R-Tree grow steeply; Uniform is trivial",
		"absolute seconds are machine-dependent (paper used a Sparc ULTRA-30)")
	return t, nil
}
