package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Fig8 reproduces Figure 8: average relative error versus query size
// on the NJ Road dataset with 100 buckets, for every technique.
// Min-Skew uses 10,000 grid regions as in the paper.
func (e *Env) Fig8() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Figure 8: relative error vs. query size (NJ Road, 100 buckets)",
		RowLabel: "QSize",
		Columns:  append([]string(nil), Techniques...),
	}
	ests := make(map[string]core.Estimator, len(Techniques))
	for _, name := range Techniques {
		est, _, err := e.buildTechnique(name, e.NJRoad, buckets, core.DefaultRegions)
		if err != nil {
			return nil, fmt.Errorf("fig8: %s: %v", name, err)
		}
		ests[name] = est
	}
	for _, qsize := range workload.QSizes {
		row := make([]float64, len(Techniques))
		for c, name := range Techniques {
			rel, err := e.evalError(e.NJRoad, ests[name], qsize)
			if err != nil {
				return nil, fmt.Errorf("fig8: %s at %.0f%%: %v", name, qsize*100, err)
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%.0f%%", qsize*100))
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: Min-Skew lowest by >50%; Equi-*/R-Tree mid; Sample/Uniform/Fractal worst (~0.8-0.9 at 2%)",
		"errors decrease left to right (larger queries cover buckets fully)")
	return t, nil
}

// Fig9Buckets is the bucket sweep of Figure 9.
var Fig9Buckets = []int{50, 100, 200, 350, 500, 750}

// Fig9 reproduces Figure 9: error versus number of buckets on NJ Road
// for the two query sizes the paper plots (5% and 25%).
func (e *Env) Fig9() ([]*Table, error) {
	qsizes := []float64{0.05, 0.25}
	columns := []string{"Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample"}
	out := make([]*Table, len(qsizes))
	for i, qsize := range qsizes {
		out[i] = &Table{
			Title:    fmt.Sprintf("Figure 9: relative error vs. buckets (NJ Road, QSize = %.0f%%)", qsize*100),
			RowLabel: "Buckets",
			Columns:  columns,
			Notes: []string{
				"paper shape: errors fall with more buckets; technique gaps shrink; Min-Skew lowest throughout",
			},
		}
	}
	for _, buckets := range Fig9Buckets {
		rows := make([][]float64, len(qsizes))
		for i := range rows {
			rows[i] = make([]float64, len(columns))
		}
		for c, name := range columns {
			// Build each technique once per bucket budget and evaluate
			// it at every query size.
			est, _, err := e.buildTechnique(name, e.NJRoad, buckets, core.DefaultRegions)
			if err != nil {
				return nil, fmt.Errorf("fig9: %s at %d buckets: %v", name, buckets, err)
			}
			for i, qsize := range qsizes {
				rel, err := e.evalError(e.NJRoad, est, qsize)
				if err != nil {
					return nil, err
				}
				rows[i][c] = rel
			}
		}
		for i := range qsizes {
			out[i].Rows = append(out[i].Rows, fmt.Sprintf("%d", buckets))
			out[i].Values = append(out[i].Values, rows[i])
		}
	}
	return out, nil
}

// Fig10Regions is the grid-resolution sweep of Figure 10.
var Fig10Regions = []int{100, 500, 1000, 2500, 5000, 10000, 30000, 90000}

// fig10 runs the region sweep over one dataset.
func (e *Env) fig10(d *dataset.Distribution, title string, note string) (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    title,
		RowLabel: "Regions",
		Columns:  []string{"QSize 5%", "QSize 25%"},
	}
	for _, regions := range Fig10Regions {
		est, err := e.buildTechniqueMinSkew(d, buckets, regions, 0)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 2)
		for c, qsize := range []float64{0.05, 0.25} {
			rel, err := e.evalError(d, est, qsize)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d", regions))
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes, note)
	return t, nil
}

func (e *Env) buildTechniqueMinSkew(d *dataset.Distribution, buckets, regions, refinements int) (core.Estimator, error) {
	return core.NewMinSkew(d, core.MinSkewConfig{
		Buckets: buckets, Regions: regions, Refinements: refinements,
	})
}

// Fig10a reproduces Figure 10(a): Min-Skew error versus grid regions
// on NJ Road — errors fall then flatten.
func (e *Env) Fig10a() (*Table, error) {
	return e.fig10(e.NJRoad,
		"Figure 10(a): Min-Skew error vs. regions (NJ Road, 100 buckets)",
		"paper shape: error decreases with regions then flattens")
}

// Fig10b reproduces Figure 10(b): the same sweep on the synthetic
// Charminar dataset — small queries keep improving but large-query
// error worsens with too many regions.
func (e *Env) Fig10b() (*Table, error) {
	return e.fig10(e.Charminar,
		"Figure 10(b): Min-Skew error vs. regions (Charminar, 100 buckets)",
		"paper shape: 5% error falls with regions; 25% error rises beyond a point")
}

// Fig11Refinements is the refinement sweep of Figure 11.
var Fig11Refinements = []int{0, 1, 2, 3, 4, 5, 6, 7, 8}

// Fig11 reproduces Figure 11: the impact of progressive refinement on
// the Charminar large-query error at the 30,000-region data point of
// Figure 10(b). The reference row reports the minimum error achieved
// anywhere in the Figure 10(b) sweep (the paper's horizontal line).
func (e *Env) Fig11() (*Table, error) {
	const buckets = 100
	const regions = 30000
	const qsize = 0.25
	t := &Table{
		Title:    "Figure 11: progressive refinement (Charminar, 30000 regions, 100 buckets, QSize = 25%)",
		RowLabel: "Refinements",
		Columns:  []string{"error"},
	}
	for _, refs := range Fig11Refinements {
		est, err := e.buildTechniqueMinSkew(e.Charminar, buckets, regions, refs)
		if err != nil {
			return nil, err
		}
		rel, err := e.evalError(e.Charminar, est, qsize)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d", refs))
		t.Values = append(t.Values, []float64{rel})
	}
	// The paper's horizontal reference: best region count from Fig 10(b).
	best := math.Inf(1)
	for _, regions := range Fig10Regions {
		est, err := e.buildTechniqueMinSkew(e.Charminar, buckets, regions, 0)
		if err != nil {
			return nil, err
		}
		rel, err := e.evalError(e.Charminar, est, qsize)
		if err != nil {
			return nil, err
		}
		if rel < best {
			best = rel
		}
	}
	t.Rows = append(t.Rows, "best-regions")
	t.Values = append(t.Values, []float64{best})
	t.Notes = append(t.Notes,
		"paper shape: refinements cut the error by >55%, approach but not reach the best fixed region count, and too many refinements hurt")
	return t, nil
}
