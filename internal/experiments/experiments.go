// Package experiments reproduces every figure and table of the paper's
// evaluation (Section 5): error versus query size (Figure 8), error
// versus bucket count (Figure 9), Min-Skew's sensitivity to the grid
// resolution on real-life and synthetic data (Figures 10a and 10b),
// the impact of progressive refinement (Figure 11), and the
// construction-time comparison (Table 1).
//
// Each experiment returns a Table whose rows and columns mirror the
// paper's axes, so the harness output can be compared line by line
// with the published graphs.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/synthetic"
	"repro/internal/tiger"
	"repro/internal/workload"
)

// Options scales the experiments. The zero value is replaced by
// Defaults; tests use reduced scales.
type Options struct {
	// NJRoadSize is the size of the NJ-Road-like dataset (the paper's
	// TIGER set has 414,442 rectangles).
	NJRoadSize int
	// CharminarSize is the size of the synthetic Charminar dataset
	// (40,000 in the paper).
	CharminarSize int
	// Queries per workload (10,000 in the paper).
	Queries int
	// Seed for data and workload generation.
	Seed int64
}

// Defaults returns the paper-scale options.
func Defaults() Options {
	return Options{
		NJRoadSize:    414442,
		CharminarSize: 40000,
		Queries:       10000,
		Seed:          1999,
	}
}

// withDefaults fills zero fields from Defaults.
func (o Options) withDefaults() Options {
	def := Defaults()
	if o.NJRoadSize == 0 {
		o.NJRoadSize = def.NJRoadSize
	}
	if o.CharminarSize == 0 {
		o.CharminarSize = def.CharminarSize
	}
	if o.Queries == 0 {
		o.Queries = def.Queries
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	return o
}

// Table is a printable experiment result.
type Table struct {
	Title string
	// RowLabel names the row axis (e.g. "QSize").
	RowLabel string
	Columns  []string
	Rows     []string
	// Values[r][c]; NaN cells print as "-".
	Values [][]float64
	Notes  []string
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.RowLabel)
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, row := range t.Values {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := "-"
			if v == v { // not NaN
				s = fmt.Sprintf("%.4g", v)
			}
			cells[i][j] = s
			if len(s) > widths[j+1] {
				widths[j+1] = len(s)
			}
		}
	}
	for j, c := range t.Columns {
		if len(c) > widths[j+1] {
			widths[j+1] = len(c)
		}
	}
	head := fmt.Sprintf("%-*s", widths[0], t.RowLabel)
	for j, c := range t.Columns {
		head += fmt.Sprintf("  %*s", widths[j+1], c)
	}
	if _, err := fmt.Fprintln(w, head); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(head))); err != nil {
		return err
	}
	for i, r := range t.Rows {
		line := fmt.Sprintf("%-*s", widths[0], r)
		for j := range t.Columns {
			line += fmt.Sprintf("  %*s", widths[j+1], cells[i][j])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as RFC-4180 CSV. The title and notes are
// omitted — only the header and data rows are emitted, so the output
// loads directly into analysis tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.RowLabel}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range t.Rows {
		rec := make([]string, 0, len(t.Columns)+1)
		rec = append(rec, r)
		for _, v := range t.Values[i] {
			if v != v { // NaN
				rec = append(rec, "")
			} else {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Env caches the datasets and oracles shared by the experiments.
type Env struct {
	Opts      Options
	NJRoad    *dataset.Distribution
	Charminar *dataset.Distribution

	njOracle   exact.Oracle
	charOracle exact.Oracle

	// truth caches ground-truth counts per (dataset, qsize) so the
	// oracle runs once per workload rather than once per technique.
	truth map[truthKey]*truthEntry
}

type truthKey struct {
	d     *dataset.Distribution
	qsize float64
}

type truthEntry struct {
	queries []geom.Rect
	actual  []int
}

// NewEnv generates (or regenerates) the experiment datasets.
func NewEnv(opts Options) *Env {
	opts = opts.withDefaults()
	e := &Env{Opts: opts}
	e.NJRoad = tiger.NJRoad(opts.NJRoadSize)
	e.Charminar = synthetic.Charminar(opts.CharminarSize, 10000, 100, opts.Seed)
	e.njOracle = exact.NewAuto(e.NJRoad)
	e.charOracle = exact.NewAuto(e.Charminar)
	return e
}

// oracleFor returns the cached exact oracle for a dataset.
func (e *Env) oracleFor(d *dataset.Distribution) exact.Oracle {
	switch d {
	case e.NJRoad:
		return e.njOracle
	case e.Charminar:
		return e.charOracle
	default:
		return exact.NewAuto(d)
	}
}

// evalError runs the workload through the estimator and returns the
// paper's average relative error. Workloads and their exact answers
// are cached per (dataset, query size).
func (e *Env) evalError(d *dataset.Distribution, est core.Estimator, qsize float64) (float64, error) {
	te, err := e.groundTruth(d, qsize)
	if err != nil {
		return 0, err
	}
	ests := make([]float64, len(te.queries))
	for i, q := range te.queries {
		ests[i] = est.Estimate(q)
	}
	return metrics.AvgRelativeError(te.actual, ests)
}

// groundTruth returns the cached workload and exact counts for a
// dataset and query size, computing them on first use.
func (e *Env) groundTruth(d *dataset.Distribution, qsize float64) (*truthEntry, error) {
	if e.truth == nil {
		e.truth = make(map[truthKey]*truthEntry)
	}
	key := truthKey{d: d, qsize: qsize}
	if te, ok := e.truth[key]; ok {
		return te, nil
	}
	qs, err := workload.Generate(d, workload.Config{
		Count: e.Opts.Queries, QSize: qsize, Seed: e.Opts.Seed + int64(qsize*1000), Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	oracle := e.oracleFor(d)
	te := &truthEntry{queries: qs, actual: make([]int, len(qs))}
	for i, q := range qs {
		te.actual[i] = oracle.Count(q)
	}
	e.truth[key] = te
	return te, nil
}

// buildTechnique constructs the named technique over d with the given
// bucket budget, also reporting the construction time. Sample receives
// the paper's liberal 2x space: 4*buckets rectangles (Section 5.4).
func (e *Env) buildTechnique(name string, d *dataset.Distribution, buckets, regions int) (core.Estimator, time.Duration, error) {
	start := time.Now()
	var est core.Estimator
	var err error
	switch name {
	case "Min-Skew":
		est, err = core.NewMinSkew(d, core.MinSkewConfig{Buckets: buckets, Regions: regions})
	case "Equi-Area":
		est, err = core.NewEquiArea(d, buckets)
	case "Equi-Count":
		est, err = core.NewEquiCount(d, buckets)
	case "R-Tree":
		est, err = core.NewRTreeHist(d, core.RTreeHistConfig{Buckets: buckets})
	case "Sample":
		est, err = core.NewSample(d, 4*buckets, e.Opts.Seed)
	case "Uniform":
		est, err = core.NewUniform(d)
	case "Fractal":
		est, err = core.NewFractal(d, 2, 8)
	case "AVI":
		// 1-D buckets cost 3 words vs the spatial bucket's 8: same
		// byte budget.
		est, err = core.NewAVI(d, buckets*8/3, core.AVIEquiDepth)
	default:
		return nil, 0, fmt.Errorf("experiments: unknown technique %q", name)
	}
	return est, time.Since(start), err
}

// Techniques lists the techniques in the order the paper's graphs
// present them.
var Techniques = []string{"Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample", "Uniform", "Fractal"}
