package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// testEnv builds a heavily scaled-down environment so the full
// experiment matrix runs in seconds. The qualitative shapes the tests
// assert are the ones the paper reports.
func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(Options{
		NJRoadSize:    30000,
		CharminarSize: 10000,
		Queries:       300,
		Seed:          7,
	})
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := Defaults()
	if o != d {
		t.Fatalf("withDefaults = %+v, want %+v", o, d)
	}
	o = Options{Queries: 5}.withDefaults()
	if o.Queries != 5 || o.NJRoadSize != d.NJRoadSize {
		t.Fatalf("partial defaults broken: %+v", o)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:    "demo",
		RowLabel: "row",
		Columns:  []string{"a", "b"},
		Rows:     []string{"r1", "r2"},
		Values:   [][]float64{{1.5, math.NaN()}, {0.25, 100}},
		Notes:    []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "row", "r1", "1.5", "-", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBuildTechniqueUnknown(t *testing.T) {
	e := NewEnv(Options{NJRoadSize: 100, CharminarSize: 100, Queries: 10, Seed: 1})
	if _, _, err := e.buildTechnique("Nope", e.NJRoad, 10, 100); err == nil {
		t.Fatal("unknown technique should fail")
	}
}

func TestFig8Shape(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || len(tab.Columns) != len(Techniques) {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	col := func(name string) int {
		for i, c := range tab.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %s", name)
		return -1
	}
	ms, ec, ea, sm := col("Min-Skew"), col("Equi-Count"), col("Equi-Area"), col("Sample")
	// Min-Skew must beat the equi-partitionings and sampling at every
	// query size (the paper's headline result).
	for r := range tab.Rows {
		v := tab.Values[r]
		if v[ms] > v[ec] || v[ms] > v[ea] {
			t.Errorf("row %s: Min-Skew %.3f not best (equi-count %.3f, equi-area %.3f)",
				tab.Rows[r], v[ms], v[ec], v[ea])
		}
		if v[ms] > v[sm] {
			t.Errorf("row %s: Min-Skew %.3f worse than Sample %.3f", tab.Rows[r], v[ms], v[sm])
		}
	}
	// Errors decrease with query size for Min-Skew (first vs last row).
	if tab.Values[0][ms] < tab.Values[len(tab.Rows)-1][ms] {
		t.Errorf("Min-Skew error grew with query size: %.3f -> %.3f",
			tab.Values[0][ms], tab.Values[len(tab.Rows)-1][ms])
	}
}

func TestFig9Shape(t *testing.T) {
	e := testEnv(t)
	tabs, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != len(Fig9Buckets) {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		// Min-Skew (col 0): more buckets should not make things much
		// worse; compare 50 vs 750 buckets.
		first, last := tab.Values[0][0], tab.Values[len(tab.Rows)-1][0]
		if last > first*1.5+0.02 {
			t.Errorf("%s: Min-Skew error rose from %.3f (50 buckets) to %.3f (750)", tab.Title, first, last)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	e := testEnv(t)
	ta, err := e.Fig10a()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Fig10b()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{ta, tb} {
		if len(tab.Rows) != len(Fig10Regions) || len(tab.Columns) != 2 {
			t.Fatalf("%s: shape %dx%d", tab.Title, len(tab.Rows), len(tab.Columns))
		}
		// Few regions are bad for small queries: the first row's 5%
		// error should exceed the best 5% error in the sweep.
		best := math.Inf(1)
		for _, row := range tab.Values {
			if row[0] < best {
				best = row[0]
			}
		}
		if tab.Values[0][0] <= best {
			t.Errorf("%s: coarsest grid is already optimal for small queries", tab.Title)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	e := testEnv(t)
	tab, err := e.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig11Refinements)+1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[len(tab.Rows)-1] != "best-regions" {
		t.Fatalf("last row = %s", tab.Rows[len(tab.Rows)-1])
	}
	// Some refinement count should beat zero refinements.
	zero := tab.Values[0][0]
	best := math.Inf(1)
	for i := 1; i < len(Fig11Refinements); i++ {
		if tab.Values[i][0] < best {
			best = tab.Values[i][0]
		}
	}
	if best >= zero {
		t.Errorf("no refinement count improved on zero: zero=%.3f best=%.3f", zero, best)
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("construction-time table is slow")
	}
	e := NewEnv(Options{NJRoadSize: 1000, CharminarSize: 1000, Queries: 10, Seed: 3})
	// Shrink the matrix for the test.
	oldSizes, oldBuckets := Table1Sizes, Table1Buckets
	Table1Sizes = []int{2000, 8000}
	Table1Buckets = []int{20, 50}
	defer func() { Table1Sizes, Table1Buckets = oldSizes, oldBuckets }()

	tab, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(tab.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for r, name := range tab.Rows {
		for c := range tab.Columns {
			if tab.Values[r][c] < 0 {
				t.Fatalf("%s col %d: negative time", name, c)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	e := testEnv(t)
	am, err := e.AblationMarginal()
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Rows) != 2 {
		t.Fatalf("marginal ablation rows = %d", len(am.Rows))
	}
	ar, err := e.AblationRTreeLoad()
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.Rows) != 4 {
		t.Fatalf("rtree ablation rows = %d", len(ar.Rows))
	}
	// STR should not be slower than repeated insertion.
	if ar.Values[1][2] > ar.Values[0][2]*2+0.05 {
		t.Errorf("STR build %.3fs slower than repeated insert %.3fs", ar.Values[1][2], ar.Values[0][2])
	}
	as, err := e.AblationRefinementSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Rows) != 4 || len(as.Columns) != 3 {
		t.Fatalf("refinement sweep shape %dx%d", len(as.Rows), len(as.Columns))
	}
	al, err := e.AblationLocalGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Rows) != 2 || len(al.Columns) != 4 {
		t.Fatalf("local-greedy ablation shape %dx%d", len(al.Rows), len(al.Columns))
	}
	ao, err := e.AblationOptimal()
	if err != nil {
		t.Fatal(err)
	}
	if len(ao.Rows) != 3 || len(ao.Columns) != 5 {
		t.Fatalf("optimal ablation shape %dx%d", len(ao.Rows), len(ao.Columns))
	}
	for r := range ao.Rows {
		if ratio := ao.Values[r][2]; ratio < 1-1e-9 {
			t.Errorf("%s: greedy/optimal skew ratio %g below 1", ao.Rows[r], ratio)
		}
	}
}

func TestSequoiaExperiment(t *testing.T) {
	e := NewEnv(Options{NJRoadSize: 1000, CharminarSize: 1000, Queries: 200, Seed: 7})
	tab, err := e.SequoiaPointData()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Fractal (last column) should beat Uniform (column 3) on point
	// data for at least one query size — its home turf.
	better := false
	for r := range tab.Rows {
		if tab.Values[r][4] < tab.Values[r][3] {
			better = true
		}
	}
	if !better {
		t.Error("fractal never beat uniform on point data")
	}
}

func TestFeedbackAdaptationExperiment(t *testing.T) {
	e := testEnv(t)
	tab, err := e.FeedbackAdaptation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Columns) != 3 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Feedback must not make the weak Uniform base (row 0) worse, and
	// should improve it meaningfully.
	if tab.Values[0][1] > tab.Values[0][0] {
		t.Errorf("feedback made Uniform worse: %.3f -> %.3f", tab.Values[0][0], tab.Values[0][1])
	}
	if tab.Values[0][2] < 0.2 {
		t.Errorf("Uniform improvement only %.2f; expected substantial adaptation", tab.Values[0][2])
	}
}

func TestAVIComparisonExperiment(t *testing.T) {
	e := testEnv(t)
	tab, err := e.AVIComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// AVI (column 2) should beat Uniform (column 3) but lose to
	// Min-Skew (column 0) on skewed road data, at least at small sizes.
	if tab.Values[0][2] >= tab.Values[0][3] {
		t.Errorf("AVI %.3f not better than Uniform %.3f at 2%%", tab.Values[0][2], tab.Values[0][3])
	}
	if tab.Values[0][0] >= tab.Values[0][2] {
		t.Errorf("Min-Skew %.3f not better than AVI %.3f at 2%%", tab.Values[0][0], tab.Values[0][2])
	}
}

func TestPointQueriesExperiment(t *testing.T) {
	e := testEnv(t)
	tab, err := e.PointQueries()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Min-Skew (row 0) should beat Uniform (row 5) on point queries.
	if tab.Values[0][0] >= tab.Values[5][0] {
		t.Errorf("point queries: Min-Skew %.3f not better than Uniform %.3f",
			tab.Values[0][0], tab.Values[5][0])
	}
	for r, name := range tab.Rows {
		v := tab.Values[r][0]
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("%s: bad point-query error %g", name, v)
		}
	}
}

func TestAutoTuneExperiment(t *testing.T) {
	e := testEnv(t)
	tab, err := e.AutoTune()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Columns) != 5 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for r := range tab.Rows {
		if tab.Values[r][0] < 64 {
			t.Errorf("%s: chose implausibly coarse resolution %g", tab.Rows[r], tab.Values[r][0])
		}
		// Auto accuracy within 2.5x of the fixed default at 5%.
		if tab.Values[r][1] > tab.Values[r][3]*2.5+0.05 {
			t.Errorf("%s: auto error %.3f far worse than fixed %.3f", tab.Rows[r], tab.Values[r][1], tab.Values[r][3])
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{
		RowLabel: "row",
		Columns:  []string{"a", "b,with comma"},
		Rows:     []string{"r1", "r2"},
		Values:   [][]float64{{1.5, math.NaN()}, {0.25, 100}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != `row,a,"b,with comma"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "r1,1.5," {
		t.Fatalf("row 1 = %q (NaN should be empty)", lines[1])
	}
	if lines[2] != "r2,0.25,100" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}
