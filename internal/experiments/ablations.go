package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/synthetic"
	"repro/internal/workload"
)

// Ablations beyond the paper, exercising the design decisions called
// out in DESIGN.md.

// AblationMarginal compares the paper's marginal-distribution split
// search against the exact two-dimensional spatial-skew search on both
// datasets (error at two query sizes plus construction time).
func (e *Env) AblationMarginal() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Ablation: marginal vs. full-2D split search (100 buckets, 10000 regions)",
		RowLabel: "Variant",
		Columns:  []string{"NJ 5%", "NJ 25%", "Char 5%", "Char 25%", "build(s)"},
	}
	for _, full := range []bool{false, true} {
		name := "marginal"
		if full {
			name = "full-2D"
		}
		row := make([]float64, len(t.Columns))
		start := time.Now()
		nj, err := core.NewMinSkew(e.NJRoad, core.MinSkewConfig{Buckets: buckets, Regions: 10000, FullSplitSearch: full})
		if err != nil {
			return nil, err
		}
		ch, err := core.NewMinSkew(e.Charminar, core.MinSkewConfig{Buckets: buckets, Regions: 10000, FullSplitSearch: full})
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		for c, cfg := range []struct {
			est core.Estimator
			ds  int
			q   float64
		}{
			{nj, 0, 0.05}, {nj, 0, 0.25}, {ch, 1, 0.05}, {ch, 1, 0.25},
		} {
			d := e.NJRoad
			if cfg.ds == 1 {
				d = e.Charminar
			}
			rel, err := e.evalError(d, cfg.est, cfg.q)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		row[4] = build.Seconds()
		t.Rows = append(t.Rows, name)
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes, "expectation: comparable accuracy; marginal search is the cheaper faithful default")
	return t, nil
}

// AblationRTreeLoad compares the paper's repeated-insertion R-tree
// grouping against STR bulk loading, in both accuracy and build time.
func (e *Env) AblationRTreeLoad() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Ablation: R-Tree grouping construction (NJ Road, 100 buckets)",
		RowLabel: "Variant",
		Columns:  []string{"err 5%", "err 25%", "build(s)", "buckets"},
	}
	for _, method := range []core.RTreeLoad{core.LoadInsert, core.LoadSTR, core.LoadHilbert} {
		name := method.String()
		start := time.Now()
		est, err := core.NewRTreeHist(e.NJRoad, core.RTreeHistConfig{Buckets: buckets, Method: method})
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		row := make([]float64, len(t.Columns))
		for c, q := range []float64{0.05, 0.25} {
			rel, err := e.evalError(e.NJRoad, est, q)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		row[2] = build.Seconds()
		row[3] = est.SpaceBuckets()
		t.Rows = append(t.Rows, name)
		t.Values = append(t.Values, row)
	}
	// A quadtree leaf tiling as a fourth index-derived grouping:
	// regular quartering instead of data-driven node boundaries.
	start := time.Now()
	qh, err := core.NewQuadTreeHist(e.NJRoad, buckets)
	if err != nil {
		return nil, err
	}
	build := time.Since(start)
	row := make([]float64, len(t.Columns))
	for c, q := range []float64{0.05, 0.25} {
		rel, err := e.evalError(e.NJRoad, qh, q)
		if err != nil {
			return nil, err
		}
		row[c] = rel
	}
	row[2] = build.Seconds()
	row[3] = qh.SpaceBuckets()
	t.Rows = append(t.Rows, "quadtree-leaves")
	t.Values = append(t.Values, row)

	t.Notes = append(t.Notes, "expectation: STR builds orders of magnitude faster at similar accuracy; quadtree leaves show the cost of skew-blind boundaries")
	return t, nil
}

// AblationOptimal measures how close greedy Min-Skew comes to the
// exact dynamic-programming optimum (which the paper dismisses as
// infeasible at scale, Section 4) on small instances.
func (e *Env) AblationOptimal() (*Table, error) {
	t := &Table{
		Title:    "Ablation: greedy Min-Skew vs. exact optimal BSP (small instances)",
		RowLabel: "Instance",
		Columns:  []string{"greedy skew", "optimal skew", "ratio", "greedy err", "optimal err"},
	}
	instances := []struct {
		name string
		d    *dataset.Distribution
	}{
		{"charminar-2k", synthetic.Charminar(2000, 1000, 10, 41)},
		{"clusters-2k", synthetic.Clusters(2000, 4, 1000, 0.05, 2, 15, 42)},
		{"uniform-2k", synthetic.Uniform(2000, 1000, 2, 15, 43)},
	}
	cfg := core.OptimalBSPConfig{Buckets: 8, Regions: 144}
	for _, inst := range instances {
		greedySkew, optimalSkew, err := core.PartitionSkews(inst.d, cfg)
		if err != nil {
			return nil, err
		}
		greedyEst, err := core.NewMinSkew(inst.d, core.MinSkewConfig{
			Buckets: cfg.Buckets, Regions: cfg.Regions, FullSplitSearch: true,
		})
		if err != nil {
			return nil, err
		}
		optEst, err := core.NewOptimalBSP(inst.d, cfg)
		if err != nil {
			return nil, err
		}
		ge, err := e.evalError(inst.d, greedyEst, 0.10)
		if err != nil {
			return nil, err
		}
		oe, err := e.evalError(inst.d, optEst, 0.10)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if optimalSkew > 0 {
			ratio = greedySkew / optimalSkew
		}
		t.Rows = append(t.Rows, inst.name)
		t.Values = append(t.Values, []float64{greedySkew, optimalSkew, ratio, ge, oe})
	}
	t.Notes = append(t.Notes,
		"greedy skew is lower-bounded by the DP optimum; small ratios justify the paper's heuristic")
	return t, nil
}

// AblationLocalGreedy compares the paper's global greedy bucket choice
// against local recursive budget splitting.
func (e *Env) AblationLocalGreedy() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Ablation: global greedy vs. local recursive Min-Skew (100 buckets, 10000 regions)",
		RowLabel: "Variant",
		Columns:  []string{"NJ 5%", "NJ 25%", "Char 5%", "Char 25%"},
	}
	for _, local := range []bool{false, true} {
		name := "global-greedy"
		if local {
			name = "local-recursive"
		}
		nj, err := core.NewMinSkew(e.NJRoad, core.MinSkewConfig{Buckets: buckets, Regions: 10000, LocalGreedy: local})
		if err != nil {
			return nil, err
		}
		ch, err := core.NewMinSkew(e.Charminar, core.MinSkewConfig{Buckets: buckets, Regions: 10000, LocalGreedy: local})
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(t.Columns))
		for c, cfg := range []struct {
			est core.Estimator
			ds  int
			q   float64
		}{{nj, 0, 0.05}, {nj, 0, 0.25}, {ch, 1, 0.05}, {ch, 1, 0.25}} {
			d := e.NJRoad
			if cfg.ds == 1 {
				d = e.Charminar
			}
			rel, err := e.evalError(d, cfg.est, cfg.q)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, name)
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes, "expectation: global greedy places buckets where skew is, beating fixed local budgets")
	return t, nil
}

// PointQueries evaluates every technique on a pure point-query
// workload (Section 3.1's point-query formulas), reporting the paper's
// relative-error metric. Query points are centers of input rectangles
// so every query has a non-empty answer.
func (e *Env) PointQueries() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Extension: point-query workload (NJ Road, 100 buckets)",
		RowLabel: "Technique",
		Columns:  []string{"relerr"},
	}
	for _, name := range []string{"Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample", "Uniform"} {
		est, _, err := e.buildTechnique(name, e.NJRoad, buckets, 10000)
		if err != nil {
			return nil, err
		}
		rel, err := e.evalError(e.NJRoad, est, 0) // QSize 0 = point queries
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, name)
		t.Values = append(t.Values, []float64{rel})
	}
	t.Notes = append(t.Notes, "point queries are degenerate rectangles; bucket densities answer them directly")
	return t, nil
}

// AutoTune evaluates the automatic grid-resolution selection
// (answering the paper's Section 5.5.3 open question) against the
// fixed 10,000-region default and the best/worst fixed resolutions.
func (e *Env) AutoTune() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Extension: automatic region selection vs. fixed grids (100 buckets)",
		RowLabel: "Dataset",
		Columns:  []string{"auto regions", "auto 5%", "auto 25%", "fixed-10k 5%", "fixed-10k 25%"},
	}
	for _, ds := range []struct {
		name string
		d    *dataset.Distribution
	}{{"NJRoad", e.NJRoad}, {"Charminar", e.Charminar}} {
		auto, info, err := core.NewMinSkewAuto(ds.d, core.AutoMinSkewConfig{Buckets: buckets})
		if err != nil {
			return nil, err
		}
		fixed, err := core.NewMinSkew(ds.d, core.MinSkewConfig{Buckets: buckets, Regions: 10000})
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(t.Columns))
		row[0] = float64(info.Regions)
		for i, pair := range []struct {
			est core.Estimator
			q   float64
			col int
		}{
			{auto, 0.05, 1}, {auto, 0.25, 2}, {fixed, 0.05, 3}, {fixed, 0.25, 4},
		} {
			_ = i
			rel, err := e.evalError(ds.d, pair.est, pair.q)
			if err != nil {
				return nil, err
			}
			row[pair.col] = rel
		}
		t.Rows = append(t.Rows, ds.name)
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes,
		"expectation: auto-chosen resolutions land near the fixed default's accuracy without a tuning sweep")
	return t, nil
}

// FeedbackAdaptation measures how much query-feedback learning
// ([CR94]-style adaptive estimation) improves each base technique
// after a training workload, scored on a held-out workload.
func (e *Env) FeedbackAdaptation() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Extension: query-feedback adaptation (NJ Road, QSize 10%)",
		RowLabel: "Base",
		Columns:  []string{"before", "after", "improvement"},
	}
	bounds, _ := e.NJRoad.MBR()
	train, err := workload.Generate(e.NJRoad, workload.Config{
		Count: e.Opts.Queries, QSize: 0.10, Seed: e.Opts.Seed + 5000, Clamp: true,
	})
	if err != nil {
		return nil, err
	}
	oracle := e.oracleFor(e.NJRoad)
	for _, name := range []string{"Uniform", "Equi-Area", "Min-Skew"} {
		base, _, err := e.buildTechnique(name, e.NJRoad, buckets, 10000)
		if err != nil {
			return nil, err
		}
		fb, err := feedback.New(base, bounds, feedback.Config{GridX: 24, GridY: 24, LearningRate: 0.3})
		if err != nil {
			return nil, err
		}
		before, err := e.evalError(e.NJRoad, fb, 0.10)
		if err != nil {
			return nil, err
		}
		for _, q := range train {
			fb.Observe(q, oracle.Count(q))
		}
		after, err := e.evalError(e.NJRoad, fb, 0.10)
		if err != nil {
			return nil, err
		}
		improvement := 0.0
		if before > 0 {
			improvement = 1 - after/before
		}
		t.Rows = append(t.Rows, name)
		t.Values = append(t.Values, []float64{before, after, improvement})
	}
	t.Notes = append(t.Notes,
		"expectation: feedback rescues weak bases (Uniform) substantially; strong bases (Min-Skew) have less systematic bias to correct")
	return t, nil
}

// AVIComparison quantifies the attribute-value-independence fallacy:
// two one-dimensional marginal histograms with the same byte budget
// against the two-dimensional partitionings, across query sizes.
func (e *Env) AVIComparison() (*Table, error) {
	const buckets = 100
	t := &Table{
		Title:    "Extension: AVI marginal histograms vs. 2-D partitionings (NJ Road, equal bytes)",
		RowLabel: "QSize",
		Columns:  []string{"Min-Skew", "Equi-Count", "AVI", "Uniform"},
	}
	ests := make(map[string]core.Estimator)
	for _, name := range t.Columns {
		est, _, err := e.buildTechnique(name, e.NJRoad, buckets, 10000)
		if err != nil {
			return nil, err
		}
		ests[name] = est
	}
	for _, qsize := range []float64{0.02, 0.05, 0.10, 0.25} {
		row := make([]float64, len(t.Columns))
		for c, name := range t.Columns {
			rel, err := e.evalError(e.NJRoad, ests[name], qsize)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%.0f%%", qsize*100))
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes,
		"expectation: AVI beats the trivial Uniform but loses to the 2-D partitionings wherever x-y correlation matters")
	return t, nil
}

// SequoiaPointData evaluates the techniques on a Sequoia-like point
// dataset, the setting the fractal technique of [BF95] was designed
// for. The paper extends the fractal method to rectangles (where it
// loses badly, Figure 8); this extension shows it in its home domain.
func (e *Env) SequoiaPointData() (*Table, error) {
	const buckets = 100
	d := synthetic.SequoiaPoints(62556, 10000, e.Opts.Seed) // Sequoia's site count
	t := &Table{
		Title:    "Extension: Sequoia-like point data, error vs. query size (100 buckets)",
		RowLabel: "QSize",
		Columns:  []string{"Min-Skew", "Equi-Count", "Sample", "Uniform", "Fractal"},
	}
	ests := make(map[string]core.Estimator)
	for _, name := range t.Columns {
		est, _, err := e.buildTechnique(name, d, buckets, 10000)
		if err != nil {
			return nil, err
		}
		ests[name] = est
	}
	for _, qsize := range []float64{0.02, 0.05, 0.10, 0.25} {
		row := make([]float64, len(t.Columns))
		for c, name := range t.Columns {
			rel, err := e.evalError(d, ests[name], qsize)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%.0f%%", qsize*100))
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes,
		"expectation: the fractal power law is far more competitive on points than on rectangles, while Min-Skew still leads")
	return t, nil
}

// AblationRefinementSweep extends Figure 11 across region budgets to
// show where progressive refinement pays off.
func (e *Env) AblationRefinementSweep() (*Table, error) {
	const buckets = 100
	regionsList := []int{10000, 30000, 90000}
	t := &Table{
		Title:    "Ablation: refinement x regions (Charminar, QSize 25%, 100 buckets)",
		RowLabel: "Refinements",
	}
	for _, r := range regionsList {
		t.Columns = append(t.Columns, fmt.Sprintf("regions=%d", r))
	}
	for _, refs := range []int{0, 2, 4, 6} {
		row := make([]float64, len(regionsList))
		for c, regions := range regionsList {
			est, err := core.NewMinSkew(e.Charminar, core.MinSkewConfig{
				Buckets: buckets, Regions: regions, Refinements: refs,
			})
			if err != nil {
				return nil, err
			}
			rel, err := e.evalError(e.Charminar, est, 0.25)
			if err != nil {
				return nil, err
			}
			row[c] = rel
		}
		t.Rows = append(t.Rows, fmt.Sprintf("%d", refs))
		t.Values = append(t.Values, row)
	}
	t.Notes = append(t.Notes, "expectation: refinement helps most at high region counts where plain Min-Skew over-fits the corners")
	return t, nil
}
