package spatialdb

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/reqtrace"
	"repro/internal/synthetic"
	"repro/internal/trace"
)

// TestREPLQuerylogJoin drives the querylog-join command end to end: a
// served query log joins against the live index's exact counts into an
// internal/trace file with zero loss, skipping errored records and
// other tables' traffic.
func TestREPLQuerylogJoin(t *testing.T) {
	db := newTestDB(t)
	if err := db.Create("roads", synthetic.Uniform(2000, 1000, 5, 20, 1)); err != nil {
		t.Fatal(err)
	}
	repl := &REPL{DB: db}

	dir := t.TempDir()
	logPath := filepath.Join(dir, "estimates.ndjson")
	outPath := filepath.Join(dir, "replay.trace")
	var buf bytes.Buffer
	ql := reqtrace.NewQueryLog(&buf)
	ql.Record(reqtrace.Record{RequestID: "a", Table: "roads", Query: [4]float64{0, 0, 200, 200}, Estimate: 80, Quality: "full"})
	ql.Record(reqtrace.Record{RequestID: "b", Table: "roads", Query: [4]float64{100, 100, 900, 900}, Estimate: 1200, Quality: "coarse", Partial: true})
	ql.Record(reqtrace.Record{RequestID: "c", Table: "other", Query: [4]float64{0, 0, 1, 1}})
	ql.Record(reqtrace.Record{RequestID: "d", Table: "roads", Err: "shed"})
	if err := os.WriteFile(logPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := repl.Exec("querylog-join "+logPath+" roads "+outPath, &out); err != nil {
		t.Fatalf("querylog-join: %v", err)
	}
	if !strings.Contains(out.String(), "joined 2 queries") || !strings.Contains(out.String(), "loss 0") {
		t.Errorf("unexpected output: %s", out.String())
	}

	loaded, err := trace.Load(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("trace has %d queries, want 2", loaded.Len())
	}
	for i, q := range loaded.Queries {
		want, err := db.Count("roads", q)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Actual[i] != want {
			t.Errorf("query %d: joined actual %d, index count %d", i, loaded.Actual[i], want)
		}
	}

	// Missing/empty cases fail loudly instead of writing empty traces.
	if err := repl.Exec("querylog-join "+logPath+" nosuch "+outPath, &out); err == nil {
		t.Error("join with no matching records should fail")
	}
	if err := repl.Exec("querylog-join "+filepath.Join(dir, "missing.ndjson")+" roads "+outPath, &out); err == nil {
		t.Error("join of a missing file should fail")
	}
}
