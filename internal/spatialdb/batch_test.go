package spatialdb

import (
	"context"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/synthetic"
)

// TestEstimateBatchContextMatchesSingle covers both engine paths —
// the monolithic histogram and the sharded catalog — and holds the
// batch answers bit-identical to per-query EstimateContext.
func TestEstimateBatchContextMatchesSingle(t *testing.T) {
	qs := []geom.Rect{
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(100, 100, 300, 300),
		geom.PointRect(geom.Point{X: 500, Y: 500}),
	}
	run := func(t *testing.T, db *DB) {
		ctx := context.Background()
		got, err := db.EstimateBatchContext(ctx, "t", qs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(qs) {
			t.Fatalf("%d results for %d queries", len(got), len(qs))
		}
		for i, q := range qs {
			want, err := db.EstimateContext(ctx, "t", q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got[i].Estimate) != math.Float64bits(want.Estimate) {
				t.Errorf("query %d: batch %v, single %v", i, got[i].Estimate, want.Estimate)
			}
			if got[i].ShardsQueried != want.ShardsQueried {
				t.Errorf("query %d: routed %d, single %d", i, got[i].ShardsQueried, want.ShardsQueried)
			}
		}
	}
	d := synthetic.Charminar(3000, 1000, 10, 23)
	t.Run("monolithic", func(t *testing.T) {
		db := newTestDB(t)
		if err := db.Create("t", d); err != nil {
			t.Fatal(err)
		}
		if err := db.Analyze("t"); err != nil {
			t.Fatal(err)
		}
		run(t, db)
	})
	t.Run("sharded", func(t *testing.T) {
		db := newTestDB(t)
		db.SetShardPolicy(shard.Config{Shards: 4, Buckets: 40, Regions: 1024})
		if err := db.Create("t", d); err != nil {
			t.Fatal(err)
		}
		if err := db.Analyze("t"); err != nil {
			t.Fatal(err)
		}
		run(t, db)
	})
}
