package spatialdb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/synthetic"
	"repro/internal/telemetry"
)

// TestTelemetryEndToEnd drives a full session — create, analyze,
// count, explain, feedback, insert, delete — with telemetry enabled
// and asserts every layer's metrics show up non-zero in the
// Prometheus exposition.
func TestTelemetryEndToEnd(t *testing.T) {
	db := New(catalog.Config{Buckets: 40, Regions: 900})
	reg := telemetry.NewRegistry()
	db.EnableTelemetry(reg)
	if db.Telemetry() != reg {
		t.Fatal("Telemetry() should return the enabled registry")
	}

	d := synthetic.Uniform(2000, 1000, 5, 20, 7)
	if err := db.Create("roads", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("roads"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableFeedback("roads"); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 400, 400)
	if _, err := db.Count("roads", q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain("roads", q); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("roads", geom.NewRect(1, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("roads", geom.NewRect(1, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`spatialdb_queries_total{op="count",table="roads"} 1`,
		`spatialdb_queries_total{op="analyze",table="roads"} 1`,
		`spatialdb_op_seconds_count{op="count",table="roads"} 1`,
		`catalog_analyze_total 1`,
		`catalog_analyze_seconds_count 1`,
		`spatialest_estimates_total{`,
		`spatialest_estimate_seconds_count{`,
		`rtree_node_accesses_total{table="roads"}`,
		`rtree_inserts_total{table="roads"} 1`,
		`rtree_deletes_total{table="roads"} 1`,
		`feedback_observations_total{table="roads"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The index search for Count must have touched at least the root.
	if strings.Contains(out, `rtree_node_accesses_total{table="roads"} 0`) {
		t.Error("node accesses should be non-zero after Count")
	}

	// The catalog retained a structured build trace for the analyze.
	tr := db.cat.BuildTrace("roads")
	if tr == nil {
		t.Fatal("no build trace retained")
	}
	if tr.Splits() == 0 {
		t.Error("build trace recorded no splits")
	}
}

// TestTelemetryDisabledIsInert checks the nil-registry path: no
// metrics anywhere, estimators unwrapped, zero allocations of
// telemetry state.
func TestTelemetryDisabledIsInert(t *testing.T) {
	db := New(catalog.Config{Buckets: 40, Regions: 900})
	db.EnableTelemetry(nil) // explicit nil is a no-op
	if db.Telemetry() != nil {
		t.Fatal("registry should stay nil")
	}
	d := synthetic.Uniform(500, 1000, 5, 20, 7)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count("t", geom.NewRect(0, 0, 500, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain("t", geom.NewRect(0, 0, 500, 500)); err != nil {
		t.Fatal(err)
	}
	if tr := db.cat.BuildTrace("t"); tr != nil {
		t.Error("build trace should not be retained when telemetry is off")
	}
}

// TestREPLMetricsCommand exercises the metrics REPL command in both
// formats and the disabled case.
func TestREPLMetricsCommand(t *testing.T) {
	db := New(catalog.Config{Buckets: 40, Regions: 900})
	r := &REPL{DB: db}
	var buf bytes.Buffer
	if err := r.Exec("metrics", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "telemetry disabled") {
		t.Fatalf("want disabled notice, got %q", buf.String())
	}

	db.EnableTelemetry(telemetry.NewRegistry())
	script := []string{
		"gen roads uniform 500",
		"analyze roads",
		"count roads 0 0 500 500",
	}
	for _, line := range script {
		if err := r.Exec(line, &bytes.Buffer{}); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	buf.Reset()
	if err := r.Exec("metrics", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE spatialdb_queries_total counter") {
		t.Errorf("prometheus output missing TYPE line:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.Exec("metrics json", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"catalog_analyze_total": 1`) {
		t.Errorf("json output missing analyze counter:\n%s", buf.String())
	}
	if err := r.Exec("metrics bogus", &bytes.Buffer{}); err == nil {
		t.Error("metrics with bad argument should error")
	}
}
