package spatialdb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/geojson"
	"repro/internal/geom"
	"repro/internal/reqtrace"
	"repro/internal/trace"
	"repro/internal/wkt"
)

// REPL interprets a small command language over a DB. Every command
// writes its result to the writer; errors are returned, not printed,
// so callers choose whether to abort or continue.
type REPL struct {
	DB *DB
	// Quit is set once the quit command runs.
	Quit bool
}

// errWriter wraps the command output writer and latches the first
// write error, so command code can print freely and surface the
// failure once at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...interface{}) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}

func (ew *errWriter) println(args ...interface{}) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintln(ew.w, args...)
	}
}

func (ew *errWriter) print(args ...interface{}) {
	if ew.err == nil {
		_, ew.err = fmt.Fprint(ew.w, args...)
	}
}

// Help is the REPL command reference.
const Help = `commands:
  gen <table> charminar|njroad|uniform <n>   generate a table
  load <table> <path>                        load .txt/.bin/.wkt/.geojson file
  ls                                         list tables
  analyze <table>                            build Min-Skew statistics
  explain <table> <x1> <y1> <x2> <y2>        plan a range query
  count <table> <x1> <y1> <x2> <y2>          exact count via the index
  select <table> <x1> <y1> <x2> <y2> [k]     fetch up to k matching rows
  insert <table> <x1> <y1> <x2> <y2>         insert one rectangle
  delete <table> <x1> <y1> <x2> <y2>         delete exact-match rows
  feedback <table>                           learn from executed counts
  knn <table> <x> <y> <k>                    k nearest rows to a point
  join <table-a> <table-b>                   estimated join cardinality
  stats <table>                              table and statistics state
  metrics [json]                             dump telemetry (Prometheus or JSON)
  querylog-join <path> <table> <out>         join a served query log with exact counts into a trace file
  drop <table>                               drop a table
  help                                       this text
  quit                                       exit`

// Exec runs one command line.
func (r *REPL) Exec(line string, w io.Writer) error {
	ew := &errWriter{w: w}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return ew.err
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	switch cmd {
	case "help":
		ew.println(Help)
		return ew.err
	case "quit", "exit":
		r.Quit = true
		return ew.err
	case "ls":
		for _, name := range r.DB.Tables() {
			s, err := r.DB.Stats(name)
			if err != nil {
				return err
			}
			ew.printf("%s: %d rows, %s\n", name, s.Rows, s.IndexInfo)
		}
		return ew.err
	case "gen":
		return r.gen(args, ew)
	case "load":
		return r.load(args, ew)
	case "analyze":
		if len(args) != 1 {
			return fmt.Errorf("usage: analyze <table>")
		}
		if err := r.DB.Analyze(args[0]); err != nil {
			return err
		}
		s, err := r.DB.Stats(args[0])
		if err != nil {
			return err
		}
		ew.printf("analyzed %s: %d buckets\n", args[0], s.Buckets)
		return ew.err
	case "explain":
		name, q, err := tableAndRect(args)
		if err != nil {
			return err
		}
		plan, err := r.DB.Explain(name, q)
		if err != nil {
			return err
		}
		ew.println(plan)
		return ew.err
	case "count":
		name, q, err := tableAndRect(args)
		if err != nil {
			return err
		}
		n, err := r.DB.Count(name, q)
		if err != nil {
			return err
		}
		ew.println(n)
		return ew.err
	case "select":
		return r.sel(args, ew)
	case "insert":
		name, q, err := tableAndRect(args)
		if err != nil {
			return err
		}
		if err := r.DB.Insert(name, q); err != nil {
			return err
		}
		ew.println("inserted 1")
		return ew.err
	case "delete":
		name, q, err := tableAndRect(args)
		if err != nil {
			return err
		}
		n, err := r.DB.Delete(name, q)
		if err != nil {
			return err
		}
		ew.printf("deleted %d\n", n)
		return ew.err
	case "feedback":
		if len(args) != 1 {
			return fmt.Errorf("usage: feedback <table>")
		}
		if err := r.DB.EnableFeedback(args[0]); err != nil {
			return err
		}
		ew.printf("feedback learning enabled for %s\n", args[0])
		return ew.err
	case "knn":
		if len(args) != 4 {
			return fmt.Errorf("usage: knn <table> <x> <y> <k>")
		}
		x, err1 := strconv.ParseFloat(args[1], 64)
		y, err2 := strconv.ParseFloat(args[2], 64)
		k, err3 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil || err3 != nil || k < 1 {
			return fmt.Errorf("bad knn arguments")
		}
		nbs, err := r.DB.Nearest(args[0], x, y, k)
		if err != nil {
			return err
		}
		for _, nb := range nbs {
			ew.printf("%v dist=%.3f\n", nb.Rect, nb.Dist)
		}
		ew.printf("(%d rows)\n", len(nbs))
		return ew.err
	case "join":
		if len(args) != 2 {
			return fmt.Errorf("usage: join <table-a> <table-b>")
		}
		est, err := r.DB.EstimateJoin(args[0], args[1])
		if err != nil {
			return err
		}
		ew.printf("estimated join cardinality: %.1f\n", est)
		return ew.err
	case "stats":
		if len(args) != 1 {
			return fmt.Errorf("usage: stats <table>")
		}
		s, err := r.DB.Stats(args[0])
		if err != nil {
			return err
		}
		ew.printf("%s: rows=%d deleted=%d index=%s", s.Name, s.Rows, s.Deleted, s.IndexInfo)
		if s.HasHist {
			ew.printf(" hist=%d-buckets stale=%.2f rebuild=%v", s.Buckets, s.Stale, s.NeedsScan)
		} else {
			ew.print(" hist=none")
		}
		ew.println()
		return ew.err
	case "metrics", ".metrics":
		reg := r.DB.Telemetry()
		if reg == nil {
			ew.println("telemetry disabled (enable with DB.EnableTelemetry)")
			return ew.err
		}
		if len(args) == 1 && strings.EqualFold(args[0], "json") {
			if err := reg.WriteJSON(ew.w); err != nil {
				return err
			}
			return ew.err
		}
		if len(args) != 0 {
			return fmt.Errorf("usage: metrics [json]")
		}
		if err := reg.WritePrometheus(ew.w); err != nil {
			return err
		}
		return ew.err
	case "querylog-join":
		return r.querylogJoin(args, ew)
	case "drop":
		if len(args) != 1 {
			return fmt.Errorf("usage: drop <table>")
		}
		if err := r.DB.Drop(args[0]); err != nil {
			return err
		}
		ew.printf("dropped %s\n", args[0])
		return ew.err
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (r *REPL) gen(args []string, ew *errWriter) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: gen <table> charminar|njroad|uniform <n>")
	}
	name, kind := args[0], args[1]
	n, err := strconv.Atoi(args[2])
	if err != nil || n < 1 {
		return fmt.Errorf("bad size %q", args[2])
	}
	d, err := Generate(kind, n)
	if err != nil {
		return err
	}
	if err := r.DB.Create(name, d); err != nil {
		return err
	}
	ew.printf("created %s with %d rows\n", name, d.N())
	return ew.err
}

func (r *REPL) load(args []string, ew *errWriter) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: load <table> <path>")
	}
	name, path := args[0], args[1]
	var d *dataset.Distribution
	var err error
	switch {
	case strings.HasSuffix(path, ".wkt"):
		var f *os.File
		if f, err = os.Open(path); err == nil {
			d, err = wkt.ReadDataset(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	case strings.HasSuffix(path, ".json"), strings.HasSuffix(path, ".geojson"):
		var f *os.File
		if f, err = os.Open(path); err == nil {
			d, err = geojson.ReadDataset(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	default:
		d, err = dataset.Load(path)
	}
	if err != nil {
		return err
	}
	if err := r.DB.Create(name, d); err != nil {
		return err
	}
	ew.printf("created %s with %d rows\n", name, d.N())
	return ew.err
}

func (r *REPL) sel(args []string, ew *errWriter) error {
	limit := 10
	if len(args) == 6 {
		v, err := strconv.Atoi(args[5])
		if err != nil {
			return fmt.Errorf("bad limit %q", args[5])
		}
		limit = v
		args = args[:5]
	}
	name, q, err := tableAndRect(args)
	if err != nil {
		return err
	}
	rows, err := r.DB.Select(name, q, limit)
	if err != nil {
		return err
	}
	for _, row := range rows {
		ew.println(row)
	}
	ew.printf("(%d rows)\n", len(rows))
	return ew.err
}

// tableAndRect parses "<table> x1 y1 x2 y2".
func tableAndRect(args []string) (string, geom.Rect, error) {
	if len(args) != 5 {
		return "", geom.Rect{}, fmt.Errorf("want <table> <x1> <y1> <x2> <y2>")
	}
	var vals [4]float64
	for i := 0; i < 4; i++ {
		v, err := strconv.ParseFloat(args[i+1], 64)
		if err != nil {
			return "", geom.Rect{}, fmt.Errorf("bad coordinate %q", args[i+1])
		}
		vals[i] = v
	}
	return args[0], geom.NewRect(vals[0], vals[1], vals[2], vals[3]), nil
}

// querylogJoin closes the production-replay loop: it reads a query
// log captured by the serving tier (-query-log), keeps the named
// table's error-free records, joins each query with its exact count
// from the live index, and saves the result in internal/trace format —
// then loads it back and reports the loss, which must be zero.
func (r *REPL) querylogJoin(args []string, ew *errWriter) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: querylog-join <path> <table> <out>")
	}
	path, table, out := args[0], args[1], args[2]
	recs, err := reqtrace.ReadQueryLogFile(path)
	if err != nil {
		return err
	}
	matched := make([]reqtrace.Record, 0, len(recs))
	skipped := 0
	for _, rec := range recs {
		switch {
		case rec.Table != table:
			// Another table's traffic: not an error, just out of scope.
		case rec.Err != "":
			skipped++
		default:
			matched = append(matched, rec)
		}
	}
	if len(matched) == 0 {
		return fmt.Errorf("querylog-join: no joinable records for table %q in %s", table, path)
	}
	joined, err := reqtrace.JoinTrace(matched, func(q geom.Rect) (int, error) {
		return r.DB.Count(table, q)
	})
	if err != nil {
		return err
	}
	if err := trace.Save(out, joined); err != nil {
		return err
	}
	loaded, err := trace.Load(out)
	if err != nil {
		return err
	}
	ew.printf("joined %d queries from %s (skipped %d errored), wrote %s, loss %d\n",
		joined.Len(), path, skipped, out, joined.Len()-loaded.Len())
	return ew.err
}

// Run reads commands until EOF or quit, printing errors to w without
// stopping (interactive semantics).
func (r *REPL) Run(in io.Reader, w io.Writer) error {
	ew := &errWriter{w: w}
	sc := bufio.NewScanner(in)
	for !r.Quit && sc.Scan() {
		if err := r.Exec(sc.Text(), w); err != nil {
			ew.printf("error: %v\n", err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return ew.err
}
