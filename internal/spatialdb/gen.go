package spatialdb

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/synthetic"
	"repro/internal/tiger"
)

// Generate builds one of the named example datasets: the paper's
// Charminar corner distribution, the scaled TIGER NJ-Road network, or
// a uniform control. Seeds are fixed, so two nodes generating the same
// (kind, n) hold identical data — the cluster coordinator relies on
// this to make generated tables reproducible across restarts.
func Generate(kind string, n int) (*dataset.Distribution, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset size must be positive, got %d", n)
	}
	switch kind {
	case "charminar":
		return synthetic.Charminar(n, 10000, 100, 1999), nil
	case "njroad":
		return tiger.NJRoad(n), nil
	case "uniform":
		return synthetic.Uniform(n, 10000, 10, 100, 1999), nil
	}
	return nil, fmt.Errorf("unknown generator %q (want charminar, njroad or uniform)", kind)
}
