// Package spatialdb is a miniature spatial database engine that ties
// the library together the way a real system would: tables of
// rectangles backed by an R*-tree index, a statistics catalog of
// Min-Skew histograms maintained through inserts and deletes, an
// optional sharded statistics tier for scatter-gather estimation, and
// a cost-based planner choosing access paths from the estimates. It
// exists to demonstrate and integration-test the full stack; the
// spatialdb command wraps it in a REPL and, with -serve-addr, an HTTP
// estimation service.
//
// All DB methods are safe for concurrent use: the REPL and the serving
// tier share one engine, so table and shard state is guarded by a
// readers-writer lock while the catalog, indexes and feedback learners
// keep their own internal synchronization.
package spatialdb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/geom"
	"repro/internal/planner"
	"repro/internal/rtree"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Table is a named set of rectangles with a spatial index.
type Table struct {
	name  string
	rects []geom.Rect
	index *rtree.Tree
	// live tracks deletions; len(live) == len(rects), false = deleted.
	live    []bool
	deleted int
	// fb, when non-nil, wraps the table's histogram with query-feedback
	// learning; executed Counts feed it automatically.
	fb *feedback.Estimator
}

// N returns the number of live rows.
func (t *Table) N() int { return len(t.rects) - t.deleted }

// DB is the engine: tables plus a statistics catalog and an optional
// sharded statistics tier. All methods are safe for concurrent use.
type DB struct {
	// mu guards tables, shards, shardCfg and reg. The catalog and the
	// per-table indexes synchronize themselves; mu is never held while
	// a statistics build runs.
	mu       sync.RWMutex
	tables   map[string]*Table
	shards   map[string]*shard.ShardedCatalog
	shardCfg shard.Config // Shards > 1 enables the sharded tier

	cat   *catalog.Catalog
	model planner.CostModel
	// reg, when non-nil, receives runtime telemetry from every layer:
	// per-operation query counters and latencies here, estimator
	// latencies via core.Instrument, catalog ANALYZE metrics, feedback
	// drift, and R*-tree node-access counters.
	reg *telemetry.Registry
}

// The engine is the production serving backend; keep both interfaces
// honest at compile time.
var (
	_ serve.Backend        = (*DB)(nil)
	_ serve.BatchBackend   = (*DB)(nil)
	_ serve.StatusReporter = (*DB)(nil)
)

// New creates an empty engine with the given statistics policy.
func New(cfg catalog.Config) *DB {
	return &DB{
		tables: make(map[string]*Table),
		shards: make(map[string]*shard.ShardedCatalog),
		cat:    catalog.New(cfg),
		model:  planner.DefaultCostModel(),
	}
}

// SetShardPolicy enables (Shards > 1) or disables (Shards <= 1) the
// sharded statistics tier. With a policy set, every ANALYZE also
// builds a spatially sharded catalog for the table and EstimateContext
// scatter-gathers it; without one, EstimateContext walks the
// monolithic histogram. Existing sharded catalogs are dropped when the
// tier is disabled.
func (db *DB) SetShardPolicy(cfg shard.Config) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.shardCfg = cfg
	if cfg.Shards <= 1 {
		db.shards = make(map[string]*shard.ShardedCatalog)
	}
}

// EnableTelemetry threads the registry through every layer of the
// engine: the statistics catalog, the spatial indexes of all current
// and future tables, any feedback learners, and the engine's own
// per-operation counters and latency histograms. Estimator wrappers
// are installed lazily by Explain. A nil reg leaves telemetry
// disabled; every instrumentation point is then a no-op.
func (db *DB) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.reg = reg
	db.cat.EnableTelemetry(reg)
	for name, t := range db.tables {
		t.index.EnableTelemetry(reg, telemetry.Label{Key: "table", Value: name})
		if t.fb != nil {
			t.fb.EnableTelemetry(reg, telemetry.Label{Key: "table", Value: name})
		}
	}
	for _, sc := range db.shards {
		sc.EnableTelemetry(reg)
	}
}

// Telemetry returns the engine's registry (nil when disabled).
func (db *DB) Telemetry() *telemetry.Registry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.reg
}

// opCounter counts one engine operation; nil-safe when disabled.
// Callers hold db.mu (either mode).
func (db *DB) opCounter(op, table string) *telemetry.Counter {
	if db.reg == nil {
		return nil
	}
	return db.reg.Counter("spatialdb_queries_total",
		"Engine operations executed, by operation and table.",
		telemetry.Label{Key: "op", Value: op},
		telemetry.Label{Key: "table", Value: table})
}

// opSeconds times one engine operation; nil-safe when disabled.
// Callers hold db.mu (either mode).
func (db *DB) opSeconds(op, table string) *telemetry.Histogram {
	if db.reg == nil {
		return nil
	}
	return db.reg.Histogram("spatialdb_op_seconds",
		"Latency of engine operations, by operation and table.",
		telemetry.DefaultLatencyBuckets,
		telemetry.Label{Key: "op", Value: op},
		telemetry.Label{Key: "table", Value: table})
}

// Create registers a table over the given rectangles, building its
// index with STR packing.
func (db *DB) Create(name string, d *dataset.Distribution) error {
	if name == "" {
		return fmt.Errorf("spatialdb: empty table name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("spatialdb: table %q already exists", name)
	}
	rects := append([]geom.Rect(nil), d.Rects()...)
	t := &Table{
		name:  name,
		rects: rects,
		index: rtree.STRLoad(rects, 64),
		live:  make([]bool, len(rects)),
	}
	for i := range t.live {
		t.live[i] = true
	}
	if db.reg != nil {
		t.index.EnableTelemetry(db.reg, telemetry.Label{Key: "table", Value: name})
	}
	db.tables[name] = t
	return nil
}

// Drop removes a table and its statistics, sharded or not.
func (db *DB) Drop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("spatialdb: no table %q", name)
	}
	delete(db.tables, name)
	delete(db.shards, name)
	db.cat.Drop(name)
	return nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// table looks a table up; callers hold db.mu (either mode).
func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("spatialdb: no table %q", name)
	}
	return t, nil
}

// Analyze builds the table's statistics. Any feedback layer is reset:
// fresh statistics have no observed bias yet.
func (db *DB) Analyze(name string) error {
	return db.AnalyzeContext(context.Background(), name)
}

// AnalyzeContext builds the table's statistics, honoring ctx: an
// expired or cancelled context abandons the rebuild and leaves the
// previously installed statistics (monolithic and sharded) live. When
// a shard policy is set, the sharded catalog is rebuilt alongside the
// monolithic histogram. db.mu is not held during the builds, so
// concurrent reads and estimates proceed against the old statistics
// until the new ones are swapped in.
func (db *DB) AnalyzeContext(ctx context.Context, name string) error {
	db.mu.RLock()
	t, err := db.table(name)
	if err != nil {
		db.mu.RUnlock()
		return err
	}
	db.opCounter("analyze", name).Inc()
	dist := db.liveDistribution(t)
	cfg := db.shardCfg
	sc := db.shards[name]
	reg := db.reg
	db.mu.RUnlock()

	if err := db.cat.AnalyzeContext(ctx, name, dist); err != nil {
		return err
	}
	var shardErr error
	if cfg.Shards > 1 {
		if sc == nil {
			sc = shard.New(cfg)
			if reg != nil {
				sc.EnableTelemetry(reg)
			}
		}
		if err := sc.AnalyzeContext(ctx, dist); err != nil {
			shardErr = fmt.Errorf("spatialdb: sharded analyze %q: %w", name, err)
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	// The table may have been dropped or the policy changed while the
	// build ran; install only what is still wanted. Concurrent rebuilds
	// of the same table are last-writer-wins. The feedback layer is
	// reset unconditionally: the monolithic histogram it wrapped has
	// been replaced even if the sharded build was abandoned.
	if tt, ok := db.tables[name]; ok {
		tt.fb = nil
		if shardErr == nil && cfg.Shards > 1 && db.shardCfg.Shards > 1 {
			db.shards[name] = sc
		}
	}
	return shardErr
}

// EstimateContext estimates the number of rows of name intersecting q.
// With a sharded catalog built for the table it scatter-gathers the
// shards, degrading gracefully under ctx pressure (Result.Partial);
// otherwise it walks the monolithic histogram, reporting it as a
// single queried "shard". The table must have been analyzed.
func (db *DB) EstimateContext(ctx context.Context, name string, q geom.Rect) (shard.Result, error) {
	db.mu.RLock()
	sc := db.shards[name]
	db.opCounter("estimate", name).Inc()
	lat := db.opSeconds("estimate", name)
	db.mu.RUnlock()
	var start time.Time
	if lat != nil {
		start = time.Now()
	}
	defer lat.ObserveSince(start)

	if sc != nil {
		return sc.EstimateContext(ctx, q)
	}
	est, err := db.cat.Estimate(name, q)
	if err != nil {
		return shard.Result{}, err
	}
	return shard.Result{Estimate: est, ShardsTotal: 1, ShardsQueried: 1}, nil
}

// EstimateBatchContext estimates every query in qs against name's
// statistics, one Result per query in order, implementing
// serve.BatchBackend. A sharded table answers the whole batch from one
// statistics snapshot (shard.ShardedCatalog.EstimateBatchContext); a
// monolithic table walks its histogram per query. The batch counts as
// one "estimate_batch" operation in the telemetry, not len(qs)
// estimates.
func (db *DB) EstimateBatchContext(ctx context.Context, name string, qs []geom.Rect) ([]shard.Result, error) {
	db.mu.RLock()
	sc := db.shards[name]
	db.opCounter("estimate_batch", name).Inc()
	lat := db.opSeconds("estimate_batch", name)
	db.mu.RUnlock()
	var start time.Time
	if lat != nil {
		start = time.Now()
	}
	defer lat.ObserveSince(start)

	if sc != nil {
		return sc.EstimateBatchContext(ctx, qs)
	}
	out := make([]shard.Result, 0, len(qs))
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		est, err := db.cat.Estimate(name, q)
		if err != nil {
			return nil, err
		}
		out = append(out, shard.Result{Estimate: est, ShardsTotal: 1, ShardsQueried: 1})
	}
	return out, nil
}

// Status reports per-table serving health for the readiness probe:
// whether usable statistics exist and, for sharded tables, the
// per-shard circuit-breaker states. It implements serve.StatusReporter
// so /healthz/ready can distinguish "process up" from "serving full
// answers".
func (db *DB) Status() []serve.TableStatus {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]serve.TableStatus, 0, len(db.tables))
	for name := range db.tables {
		st := serve.TableStatus{Table: name, Analyzed: db.cat.Histogram(name) != nil}
		if sc := db.shards[name]; sc != nil {
			st.Analyzed = st.Analyzed && sc.Analyzed()
			st.Shards = sc.Shards()
			st.Breakers = sc.BreakerStates()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// EnableFeedback turns on query-feedback learning for a table: every
// Count executed through the engine trains a correction grid that
// Explain consults. The table must have statistics.
func (db *DB) EnableFeedback(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return err
	}
	hist := db.cat.Histogram(name)
	if hist == nil {
		return fmt.Errorf("spatialdb: table %q has no statistics; run ANALYZE first", name)
	}
	bounds, ok := db.liveDistribution(t).MBR()
	if !ok {
		return fmt.Errorf("spatialdb: table %q is empty", name)
	}
	fb, err := feedback.New(hist, bounds, feedback.Config{})
	if err != nil {
		return err
	}
	if db.reg != nil {
		fb.EnableTelemetry(db.reg, telemetry.Label{Key: "table", Value: name})
	}
	t.fb = fb
	return nil
}

// liveDistribution materializes the non-deleted rows. Callers hold
// db.mu (either mode); the returned distribution owns its slice and
// stays valid after the lock is released.
func (db *DB) liveDistribution(t *Table) *dataset.Distribution {
	rects := make([]geom.Rect, 0, t.N())
	for i, r := range t.rects {
		if t.live[i] {
			rects = append(rects, r)
		}
	}
	return dataset.FromRects(rects)
}

// Insert adds a row, updating the index and (incrementally) the
// statistics.
func (db *DB) Insert(name string, r geom.Rect) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return fmt.Errorf("spatialdb: invalid rectangle %v", r)
	}
	db.opCounter("insert", name).Inc()
	id := len(t.rects)
	t.rects = append(t.rects, r)
	t.live = append(t.live, true)
	t.index.Insert(r, id)
	db.cat.NoteInsert(name, r)
	return nil
}

// Delete removes every live row exactly equal to r and returns how
// many were removed.
func (db *DB) Delete(name string, r geom.Rect) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	db.opCounter("delete", name).Inc()
	removed := 0
	var ids []int
	t.index.Search(r, func(got geom.Rect, id int) bool {
		if got == r && t.live[id] {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		if t.index.Delete(r, id) {
			t.live[id] = false
			t.deleted++
			removed++
			db.cat.NoteDelete(name, r)
		}
	}
	return removed, nil
}

// Count returns the exact number of live rows intersecting q, via the
// index.
func (db *DB) Count(name string, q geom.Rect) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	db.opCounter("count", name).Inc()
	lat := db.opSeconds("count", name)
	var start time.Time
	if lat != nil {
		start = time.Now()
	}
	count := 0
	t.index.Search(q, func(_ geom.Rect, id int) bool {
		if t.live[id] {
			count++
		}
		return true
	})
	lat.ObserveSince(start)
	// An executed query's true result size is free training signal.
	if t.fb != nil {
		t.fb.Observe(q, count)
	}
	return count, nil
}

// Select returns up to limit live rows intersecting q (limit <= 0
// means no limit).
func (db *DB) Select(name string, q geom.Rect, limit int) ([]geom.Rect, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	db.opCounter("select", name).Inc()
	var out []geom.Rect
	t.index.Search(q, func(r geom.Rect, id int) bool {
		if !t.live[id] {
			return true
		}
		out = append(out, r)
		return limit <= 0 || len(out) < limit
	})
	return out, nil
}

// Nearest returns the k live rows nearest to the point.
func (db *DB) Nearest(name string, x, y float64, k int) ([]rtree.Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	db.opCounter("nearest", name).Inc()
	// Over-fetch to skip deleted rows, then trim.
	fetch := k + t.deleted
	raw := t.index.NearestNeighbors(fetch, geom.Point{X: x, Y: y})
	out := make([]rtree.Neighbor, 0, k)
	for _, nb := range raw {
		if t.live[nb.ID] {
			out = append(out, nb)
			if len(out) == k {
				break
			}
		}
	}
	return out, nil
}

// Explain plans the query using the table's statistics.
func (db *DB) Explain(name string, q geom.Rect) (planner.Plan, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return planner.Plan{}, err
	}
	hist := db.cat.Histogram(name)
	if hist == nil {
		return planner.Plan{}, fmt.Errorf("spatialdb: table %q has no statistics; run ANALYZE", name)
	}
	db.opCounter("explain", name).Inc()
	var est core.Estimator = hist
	if t.fb != nil {
		est = t.fb
	}
	// Instrument is identity when telemetry is disabled, so the planner
	// sees the raw estimator unless metrics were asked for.
	est = core.Instrument(est, db.reg, telemetry.Label{Key: "table", Value: name})
	p, err := planner.New(est, t.N(), db.model)
	if err != nil {
		return planner.Plan{}, err
	}
	return p.Choose(q), nil
}

// EstimateJoin returns the estimated intersection-join cardinality of
// two tables from their statistics.
func (db *DB) EstimateJoin(a, b string) (float64, error) {
	ha := db.cat.Histogram(a)
	hb := db.cat.Histogram(b)
	if ha == nil || hb == nil {
		return 0, fmt.Errorf("spatialdb: both tables need statistics; run ANALYZE")
	}
	return planner.EstimateJoin(ha, hb)
}

// Stats describes a table and its statistics state.
type Stats struct {
	Name      string
	Rows      int
	Deleted   int
	IndexInfo string
	HasHist   bool
	Buckets   int
	Stale     float64
	NeedsScan bool
}

// Stats reports the table's state.
func (db *DB) Stats(name string) (Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Name:      name,
		Rows:      t.N(),
		Deleted:   t.deleted,
		IndexInfo: fmt.Sprintf("R*-tree height=%d fanout=%d", t.index.Height(), t.index.MaxEntries()),
	}
	if hist := db.cat.Histogram(name); hist != nil {
		s.HasHist = true
		s.Buckets = len(hist.Buckets())
		s.Stale = hist.StaleFraction()
		s.NeedsScan = db.cat.Stale(name)
	}
	return s, nil
}

// Histogram exposes a table's histogram (nil if not analyzed).
func (db *DB) Histogram(name string) *core.BucketEstimator {
	return db.cat.Histogram(name)
}

// SaveStats persists the catalog to a directory.
func (db *DB) SaveStats(dir string) error { return db.cat.Save(dir) }

// LoadStats loads persisted statistics.
func (db *DB) LoadStats(dir string) error { return db.cat.Load(dir) }

// String summarizes the engine.
func (db *DB) String() string {
	return fmt.Sprintf("spatialdb{%s}", strings.Join(db.Tables(), ", "))
}
