package spatialdb

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"os"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/synthetic"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	return New(catalog.Config{Buckets: 40, Regions: 900})
}

func TestCreateDropTables(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(1000, 1000, 5, 20, 1)
	if err := db.Create("roads", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Create("roads", d); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if err := db.Create("", d); err == nil {
		t.Fatal("empty name should fail")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "roads" {
		t.Fatalf("Tables = %v", got)
	}
	if err := db.Drop("nope"); err == nil {
		t.Fatal("dropping missing table should fail")
	}
	if err := db.Drop("roads"); err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 0 {
		t.Fatal("table not dropped")
	}
}

func TestCountSelectMatchBruteForce(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Clusters(3000, 4, 1000, 0.04, 2, 12, 2)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(200, 200, 600, 600)
	want := 0
	for _, r := range d.Rects() {
		if r.Intersects(q) {
			want++
		}
	}
	got, err := db.Count("t", q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	rows, err := db.Select("t", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want {
		t.Fatalf("Select returned %d rows, want %d", len(rows), want)
	}
	limited, err := db.Select("t", q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 5 {
		t.Fatalf("limited Select returned %d rows", len(limited))
	}
	if _, err := db.Count("missing", q); err == nil {
		t.Fatal("count on missing table should fail")
	}
}

func TestInsertDeleteAndStats(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(2000, 1000, 5, 20, 3)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	r := geom.NewRect(100, 100, 120, 120)
	for i := 0; i < 10; i++ {
		if err := db.Insert("t", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("t", geom.Rect{MinX: 5, MinY: 5, MaxX: 1, MaxY: 1}); err == nil {
		t.Fatal("invalid rect should fail")
	}
	s, err := db.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 2010 {
		t.Fatalf("Rows = %d", s.Rows)
	}
	if !s.HasHist || s.Stale == 0 {
		t.Fatalf("stats not tracking churn: %+v", s)
	}
	// The duplicate inserts are all found and deletable.
	n, err := db.Delete("t", r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("Delete removed %d, want 10", n)
	}
	s, _ = db.Stats("t")
	if s.Rows != 2000 || s.Deleted != 10 {
		t.Fatalf("after delete: %+v", s)
	}
	// Deleted rows no longer match queries.
	got, _ := db.Count("t", r)
	wantCount := 0
	for _, rr := range d.Rects() {
		if rr.Intersects(r) {
			wantCount++
		}
	}
	if got != wantCount {
		t.Fatalf("Count after delete = %d, want %d", got, wantCount)
	}
}

func TestNearest(t *testing.T) {
	db := newTestDB(t)
	rects := []geom.Rect{
		geom.NewRect(0, 0, 1, 1),
		geom.NewRect(10, 10, 11, 11),
		geom.NewRect(20, 20, 21, 21),
		geom.NewRect(100, 100, 101, 101),
	}
	if err := db.Create("t", dataset.New(rects)); err != nil {
		t.Fatal(err)
	}
	nbs, err := db.Nearest("t", 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 2 || nbs[0].Rect != rects[0] || nbs[1].Rect != rects[1] {
		t.Fatalf("Nearest = %v", nbs)
	}
	// Deleted rows are skipped.
	if _, err := db.Delete("t", rects[0]); err != nil {
		t.Fatal(err)
	}
	nbs, err = db.Nearest("t", 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 2 || nbs[0].Rect != rects[1] || nbs[1].Rect != rects[2] {
		t.Fatalf("Nearest after delete = %v", nbs)
	}
	if _, err := db.Nearest("missing", 0, 0, 1); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestExplainUsesEstimates(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(50000, 10000, 10, 40, 4)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain("t", geom.NewRect(0, 0, 10, 10)); err == nil {
		t.Fatal("explain before analyze should fail")
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	tiny, err := db.Explain("t", geom.NewRect(5000, 5000, 5020, 5020))
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Access.String() != "IndexScan" {
		t.Fatalf("tiny query plan = %v", tiny)
	}
	big, err := db.Explain("t", geom.NewRect(0, 0, 10000, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if big.Access.String() != "SeqScan" {
		t.Fatalf("big query plan = %v", big)
	}
}

func TestFeedbackIntegration(t *testing.T) {
	// Clustered data under a Uniform-ish weak summary: use few buckets
	// so the base statistics are coarse and feedback has bias to fix.
	weak := New(catalog.Config{Buckets: 2, Regions: 64})
	d := synthetic.Clusters(20000, 3, 1000, 0.02, 2, 8, 11)
	if err := weak.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := weak.EnableFeedback("t"); err == nil {
		t.Fatal("feedback before analyze should fail")
	}
	if err := weak.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	if err := weak.EnableFeedback("t"); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 400, 400)
	before, err := weak.Explain("t", q)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := weak.Count("t", q) // observing trains the correction
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := weak.Count("t", q); err != nil {
			t.Fatal(err)
		}
	}
	after, err := weak.Explain("t", q)
	if err != nil {
		t.Fatal(err)
	}
	errBefore := math.Abs(before.Rows - float64(actual))
	errAfter := math.Abs(after.Rows - float64(actual))
	if errAfter >= errBefore {
		t.Fatalf("feedback did not improve the estimate: |%.1f-%d| -> |%.1f-%d|",
			before.Rows, actual, after.Rows, actual)
	}
	// Re-ANALYZE resets the feedback layer.
	if err := weak.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	reset, err := weak.Explain("t", q)
	if err != nil {
		t.Fatal(err)
	}
	if reset.Rows != before.Rows {
		t.Fatalf("re-analyze should drop corrections: %.1f vs %.1f", reset.Rows, before.Rows)
	}
	// Unknown table errors.
	if err := weak.EnableFeedback("missing"); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestEstimateJoinThroughDB(t *testing.T) {
	db := newTestDB(t)
	a := synthetic.Uniform(1000, 1000, 5, 20, 5)
	b := synthetic.Uniform(800, 1000, 5, 20, 6)
	if err := db.Create("a", a); err != nil {
		t.Fatal(err)
	}
	if err := db.Create("b", b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EstimateJoin("a", "b"); err == nil {
		t.Fatal("join before analyze should fail")
	}
	if err := db.Analyze("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("b"); err != nil {
		t.Fatal(err)
	}
	est, err := db.EstimateJoin("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, ra := range a.Rects() {
		for _, rb := range b.Rects() {
			if ra.Intersects(rb) {
				exact++
			}
		}
	}
	if math.Abs(est-float64(exact))/float64(exact) > 0.3 {
		t.Fatalf("join estimate %g vs exact %d", est, exact)
	}
}

func TestStatsPersistence(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(1000, 1000, 5, 20, 7)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveStats(dir); err != nil {
		t.Fatal(err)
	}
	db2 := newTestDB(t)
	if err := db2.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadStats(dir); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 400, 400)
	p1, err := db.Explain("t", q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db2.Explain("t", q)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Rows != p2.Rows {
		t.Fatalf("persisted stats give different estimate: %g vs %g", p1.Rows, p2.Rows)
	}
}

func TestREPLSession(t *testing.T) {
	db := newTestDB(t)
	repl := &REPL{DB: db}
	script := `
# comment line

gen roads uniform 2000
ls
analyze roads
explain roads 100 100 300 300
count roads 100 100 300 300
select roads 100 100 300 300 3
insert roads 1 1 2 2
delete roads 1 1 2 2
stats roads
join roads roads
drop roads
quit
ls
`
	var out bytes.Buffer
	if err := repl.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"created roads with 2000 rows",
		"analyzed roads: 40 buckets",
		"IndexScan",
		"(3 rows)",
		"inserted 1",
		"deleted 1",
		"stale=",
		"estimated join cardinality",
		"dropped roads",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("REPL output missing %q:\n%s", want, text)
		}
	}
	if !repl.Quit {
		t.Fatal("quit did not stop the REPL")
	}
}

func TestREPLErrors(t *testing.T) {
	repl := &REPL{DB: newTestDB(t)}
	var out bytes.Buffer
	bad := []string{
		"bogus",
		"gen",
		"gen t nope 10",
		"gen t uniform x",
		"load t",
		"load t /nonexistent/file.txt",
		"analyze",
		"analyze missing",
		"explain t 1 2 3",
		"count missing 0 0 1 1",
		"select t 0 0 1 1 notanumber",
		"insert t 0 0 1",
		"join a",
		"stats",
		"drop",
		"drop missing",
	}
	for _, cmd := range bad {
		if err := repl.Exec(cmd, &out); err == nil {
			t.Errorf("Exec(%q) should fail", cmd)
		}
	}
	// Run continues past errors.
	var buf bytes.Buffer
	if err := repl.Run(strings.NewReader("bogus\nhelp\n"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "error:") || !strings.Contains(buf.String(), "commands:") {
		t.Fatalf("Run error handling broken:\n%s", buf.String())
	}
}

func TestREPLLoadFile(t *testing.T) {
	dir := t.TempDir()
	d := dataset.New([]geom.Rect{geom.NewRect(0, 0, 1, 1), geom.NewRect(2, 2, 3, 3)})
	path := dir + "/data.txt"
	if err := dataset.Save(path, d); err != nil {
		t.Fatal(err)
	}
	wktPath := dir + "/data.wkt"
	if err := writeFile(wktPath, "POINT (1 1)\nLINESTRING (0 0, 5 5)\n"); err != nil {
		t.Fatal(err)
	}
	repl := &REPL{DB: newTestDB(t)}
	var out bytes.Buffer
	if err := repl.Exec("load t1 "+path, &out); err != nil {
		t.Fatal(err)
	}
	if err := repl.Exec("load t2 "+wktPath, &out); err != nil {
		t.Fatal(err)
	}
	gjPath := dir + "/data.geojson"
	gj := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Point","coordinates":[1,1]}},
		{"type":"Feature","geometry":{"type":"Point","coordinates":[2,2]}}
	]}`
	if err := writeFile(gjPath, gj); err != nil {
		t.Fatal(err)
	}
	if err := repl.Exec("load t3 "+gjPath, &out); err != nil {
		t.Fatal(err)
	}
	if got := repl.DB.Tables(); len(got) != 3 {
		t.Fatalf("Tables = %v", got)
	}
	n, err := repl.DB.Count("t2", geom.NewRect(0, 0, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wkt table count = %d", n)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
