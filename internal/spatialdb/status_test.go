package spatialdb

import (
	"testing"

	"repro/internal/shard"
	"repro/internal/synthetic"
)

// TestStatusReportsReadiness covers the readiness surface: unanalyzed
// tables report Analyzed=false, analyzed monolithic tables report no
// shard detail, and sharded tables expose shard counts plus per-shard
// breaker states.
func TestStatusReportsReadiness(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(2000, 1000, 5, 20, 1)
	if err := db.Create("roads", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Create("rails", d); err != nil {
		t.Fatal(err)
	}

	st := db.Status()
	if len(st) != 2 || st[0].Table != "rails" || st[1].Table != "roads" {
		t.Fatalf("Status = %+v, want rails and roads sorted", st)
	}
	for _, s := range st {
		if s.Analyzed {
			t.Errorf("table %q reports analyzed before ANALYZE", s.Table)
		}
	}

	// Monolithic analyze: ready, no shard detail.
	if err := db.Analyze("roads"); err != nil {
		t.Fatal(err)
	}
	st = db.Status()
	if !st[1].Analyzed || st[1].Shards != 0 || len(st[1].Breakers) != 0 {
		t.Fatalf("monolithic roads status = %+v, want analyzed with no shard detail", st[1])
	}
	if st[0].Analyzed {
		t.Fatalf("rails became analyzed without ANALYZE: %+v", st[0])
	}

	// Sharded analyze: shard count and breaker states appear.
	db.SetShardPolicy(shard.Config{Shards: 4})
	if err := db.Analyze("rails"); err != nil {
		t.Fatal(err)
	}
	st = db.Status()
	if !st[0].Analyzed || st[0].Shards != 4 {
		t.Fatalf("sharded rails status = %+v, want 4 analyzed shards", st[0])
	}
	if len(st[0].Breakers) != 4 {
		t.Fatalf("rails breakers = %v, want one state per shard", st[0].Breakers)
	}
	for _, b := range st[0].Breakers {
		if b != "closed" {
			t.Errorf("fresh breaker state %q, want closed", b)
		}
	}
}
