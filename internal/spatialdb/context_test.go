package spatialdb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/synthetic"
)

func TestEstimateContextMonolithicFallback(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(2000, 1000, 5, 20, 7)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 700, 700)
	res, err := db.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("monolithic path can never be partial")
	}
	if res.ShardsTotal != 1 || res.ShardsQueried != 1 {
		t.Fatalf("monolithic path should report one shard, got %+v", res)
	}
	want := db.Histogram("t").Estimate(q)
	if !geom.FloatEq(res.Estimate, want) {
		t.Fatalf("EstimateContext = %g, histogram = %g", res.Estimate, want)
	}
}

func TestShardPolicyEstimateContext(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Clusters(4000, 4, 1000, 0.04, 2, 12, 11)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	db.SetShardPolicy(shard.Config{Shards: 4})
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 1000, 1000)
	res, err := db.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTotal != 4 {
		t.Fatalf("ShardsTotal = %d, want 4", res.ShardsTotal)
	}
	if res.Partial {
		t.Fatalf("unpressured estimate must be complete: %+v", res)
	}
	// The whole-space query touches every shard and must sum to ~N.
	n := float64(d.N())
	if res.Estimate < 0.9*n || res.Estimate > 1.1*n {
		t.Fatalf("whole-space estimate %g far from N=%g", res.Estimate, n)
	}

	// Disabling the policy reverts to the monolithic path.
	db.SetShardPolicy(shard.Config{})
	res, err = db.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTotal != 1 {
		t.Fatalf("after disabling policy ShardsTotal = %d, want 1", res.ShardsTotal)
	}
}

func TestDropRemovesShardedCatalog(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(1000, 1000, 5, 20, 3)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	db.SetShardPolicy(shard.Config{Shards: 2})
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EstimateContext(context.Background(), "t", geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("estimate on dropped table must fail")
	}
}

func TestAnalyzeContextCancelKeepsServing(t *testing.T) {
	db := newTestDB(t)
	d := synthetic.Uniform(3000, 1000, 5, 20, 5)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	db.SetShardPolicy(shard.Config{Shards: 4})
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 900, 900)
	before, err := db.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.AnalyzeContext(ctx, "t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	after, err := db.EstimateContext(context.Background(), "t", q)
	if err != nil {
		t.Fatal(err)
	}
	if !geom.FloatEq(before.Estimate, after.Estimate) {
		t.Fatalf("abandoned rebuild changed estimates: %g -> %g",
			before.Estimate, after.Estimate)
	}
}

// TestConcurrentOpsDuringRebuild drives reads, writes and estimates
// while ANALYZE rebuilds both statistics tiers; meaningful under
// -race, which CI runs for this package.
func TestConcurrentOpsDuringRebuild(t *testing.T) {
	db := New(catalog.Config{Buckets: 24, Regions: 400})
	d := synthetic.Clusters(2000, 3, 1000, 0.05, 2, 12, 9)
	if err := db.Create("t", d); err != nil {
		t.Fatal(err)
	}
	db.SetShardPolicy(shard.Config{Shards: 4})
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := geom.NewRect(float64(w*50), 0, float64(w*50)+300, 300)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				if _, err := db.EstimateContext(ctx, "t", q); err != nil {
					cancel()
					t.Errorf("estimate: %v", err)
					return
				}
				cancel()
				if _, err := db.Count("t", q); err != nil {
					t.Errorf("count: %v", err)
					return
				}
				if err := db.Insert("t", geom.NewRect(1, 1, 2, 2)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := db.Analyze("t"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
