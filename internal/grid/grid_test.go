package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func buildTest(t *testing.T, rects []geom.Rect, nx, ny int) *Grid {
	t.Helper()
	g, err := Build(dataset.New(rects), nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(dataset.New(nil), 4, 4); err == nil {
		t.Fatal("empty distribution should fail")
	}
	if _, err := BuildOver([]geom.Rect{geom.NewRect(0, 0, 1, 1)}, geom.NewRect(0, 0, 1, 1), 0, 4); err == nil {
		t.Fatal("zero dimension should fail")
	}
	if _, err := BuildOver(nil, geom.Rect{MinX: 2, MaxX: 1, MinY: 0, MaxY: 1}, 2, 2); err == nil {
		t.Fatal("invalid bounds should fail")
	}
}

func TestDims(t *testing.T) {
	nx, ny := Dims(10000, geom.NewRect(0, 0, 100, 100))
	if nx != 100 || ny != 100 {
		t.Errorf("Dims(10000, square) = %dx%d, want 100x100", nx, ny)
	}
	nx, ny = Dims(100, geom.NewRect(0, 0, 400, 100))
	if nx < ny {
		t.Errorf("wide bounds should get more columns: %dx%d", nx, ny)
	}
	if nx*ny < 80 || nx*ny > 125 {
		t.Errorf("Dims(100) product too far off: %d", nx*ny)
	}
	nx, ny = Dims(0, geom.NewRect(0, 0, 1, 1))
	if nx < 1 || ny < 1 {
		t.Errorf("Dims must return at least 1x1, got %dx%d", nx, ny)
	}
	// Degenerate bounds fall back to a square grid.
	nx, ny = Dims(16, geom.NewRect(0, 0, 0, 0))
	if nx != 4 || ny != 4 {
		t.Errorf("Dims(16, degenerate) = %dx%d, want 4x4", nx, ny)
	}
}

func TestDensityCountsIntersections(t *testing.T) {
	// 2x2 grid over [0,10]^2; one rect covering the lower-left quadrant
	// only, one spanning all four cells.
	rects := []geom.Rect{
		geom.NewRect(0, 0, 4, 4),
		geom.NewRect(1, 1, 9, 9),
		geom.NewRect(0, 0, 10, 10), // forces the MBR
	}
	g := buildTest(t, rects, 2, 2)
	if got := g.Density(0, 0); got != 3 {
		t.Errorf("Density(0,0) = %g, want 3", got)
	}
	if got := g.Density(1, 0); got != 2 {
		t.Errorf("Density(1,0) = %g, want 2", got)
	}
	if got := g.Density(0, 1); got != 2 {
		t.Errorf("Density(0,1) = %g, want 2", got)
	}
	if got := g.Density(1, 1); got != 2 {
		t.Errorf("Density(1,1) = %g, want 2", got)
	}
}

func TestRectTouchingBoundaryCellCounted(t *testing.T) {
	// A rect ending exactly on the grid midline intersects both cells.
	rects := []geom.Rect{
		geom.NewRect(0, 0, 5, 5),
		geom.NewRect(0, 0, 10, 10),
	}
	g := buildTest(t, rects, 2, 2)
	// (5,5) lies in cell (1,1) by the floor convention; the small rect
	// is counted in cells (0,0),(1,0),(0,1),(1,1).
	if got := g.Density(1, 1); got != 2 {
		t.Errorf("Density(1,1) = %g, want 2", got)
	}
}

func TestCellAndBlockRects(t *testing.T) {
	g := buildTest(t, []geom.Rect{geom.NewRect(0, 0, 10, 20)}, 5, 4)
	if got := g.CellRect(0, 0); got != geom.NewRect(0, 0, 2, 5) {
		t.Errorf("CellRect(0,0) = %v", got)
	}
	if got := g.CellRect(4, 3); got != geom.NewRect(8, 15, 10, 20) {
		t.Errorf("CellRect(4,3) = %v", got)
	}
	b := Block{X0: 1, Y0: 1, X1: 3, Y1: 2}
	if got := g.BlockRect(b); got != geom.NewRect(2, 5, 8, 15) {
		t.Errorf("BlockRect = %v", got)
	}
	if b.Cells() != 6 {
		t.Errorf("Cells = %d, want 6", b.Cells())
	}
	full := g.FullBlock()
	if g.BlockRect(full) != g.Bounds() {
		t.Errorf("full block rect %v != bounds %v", g.BlockRect(full), g.Bounds())
	}
}

// naiveSum computes block sums directly from cell densities.
func naiveSum(g *Grid, b Block) (sum, sumsq float64) {
	for y := b.Y0; y <= b.Y1; y++ {
		for x := b.X0; x <= b.X1; x++ {
			v := g.Density(x, y)
			sum += v
			sumsq += v * v
		}
	}
	return sum, sumsq
}

func randBlock(rng *rand.Rand, g *Grid) Block {
	x0 := rng.Intn(g.NX())
	x1 := x0 + rng.Intn(g.NX()-x0)
	y0 := rng.Intn(g.NY())
	y1 := y0 + rng.Intn(g.NY()-y0)
	return Block{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

func TestPropertyPrefixSumsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rects []geom.Rect
	for i := 0; i < 400; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*20, y+rng.Float64()*20))
	}
	g := buildTest(t, rects, 17, 13)
	for i := 0; i < 500; i++ {
		b := randBlock(rng, g)
		wantSum, wantSq := naiveSum(g, b)
		if got := g.Sum(b); math.Abs(got-wantSum) > 1e-6 {
			t.Fatalf("Sum(%+v) = %g, want %g", b, got, wantSum)
		}
		if got := g.SumSq(b); math.Abs(got-wantSq) > 1e-6 {
			t.Fatalf("SumSq(%+v) = %g, want %g", b, got, wantSq)
		}
	}
}

func TestSkewDefinition(t *testing.T) {
	// Grid with known densities: use disjoint point-rects placed in
	// distinct cells of a 2x1 grid: densities 3 and 1.
	rects := []geom.Rect{
		geom.NewRect(1, 1, 1, 1), geom.NewRect(2, 2, 2, 2), geom.NewRect(3, 3, 3, 3),
		geom.NewRect(12, 2, 12, 2),
		geom.NewRect(0, 0, 20, 4), // spans both cells: densities become 4 and 2
	}
	g := buildTest(t, rects, 2, 1)
	if g.Density(0, 0) != 4 || g.Density(1, 0) != 2 {
		t.Fatalf("densities = %g, %g; want 4, 2", g.Density(0, 0), g.Density(1, 0))
	}
	// mean = 3, variance = ((4-3)^2 + (2-3)^2)/2 = 1, skew = 2 * 1 = 2.
	if got := g.Skew(g.FullBlock()); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Skew = %g, want 2", got)
	}
	// Single-cell blocks always have zero skew.
	if got := g.Skew(Block{0, 0, 0, 0}); got != 0 {
		t.Fatalf("single-cell skew = %g, want 0", got)
	}
}

func TestPropertySkewNonNegativeAndSplitReduces(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var rects []geom.Rect
	for i := 0; i < 300; i++ {
		x, y := rng.Float64()*50, rng.Float64()*50
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5))
	}
	g := buildTest(t, rects, 10, 10)
	for i := 0; i < 300; i++ {
		b := randBlock(rng, g)
		s := g.Skew(b)
		if s < 0 {
			t.Fatalf("negative skew %g for %+v", s, b)
		}
		// Any vertical split must not increase total SSE: SSE is
		// superadditive under partitioning into sub-blocks.
		if b.X0 < b.X1 {
			cut := b.X0 + rng.Intn(b.X1-b.X0)
			left := Block{b.X0, b.Y0, cut, b.Y1}
			right := Block{cut + 1, b.Y0, b.X1, b.Y1}
			if g.Skew(left)+g.Skew(right) > s+1e-6 {
				t.Fatalf("split increased skew: %g + %g > %g for %+v cut %d",
					g.Skew(left), g.Skew(right), s, b, cut)
			}
		}
	}
}

func TestMarginals(t *testing.T) {
	rects := []geom.Rect{
		geom.NewRect(0, 0, 20, 4), // whole area -> MBR
		geom.NewRect(1, 1, 1, 1),
		geom.NewRect(12, 3, 12, 3),
	}
	g := buildTest(t, rects, 4, 2)
	full := g.FullBlock()
	mx := g.MarginalX(full, nil)
	my := g.MarginalY(full, nil)
	if len(mx) != 4 || len(my) != 2 {
		t.Fatalf("marginal lengths = %d, %d", len(mx), len(my))
	}
	// Column sums must add up to the total mass, same for rows.
	var sx, sy float64
	for _, v := range mx {
		sx += v
	}
	for _, v := range my {
		sy += v
	}
	total := g.TotalMass()
	if math.Abs(sx-total) > 1e-9 || math.Abs(sy-total) > 1e-9 {
		t.Fatalf("marginal sums %g, %g != total %g", sx, sy, total)
	}
	// Reuse buffer path.
	buf := make([]float64, 1)
	mx2 := g.MarginalX(full, buf)
	for i := range mx {
		if mx[i] != mx2[i] {
			t.Fatalf("MarginalX reuse mismatch at %d", i)
		}
	}
}

func TestPropertyMarginalsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var rects []geom.Rect
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*30, rng.Float64()*30
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*8, y+rng.Float64()*8))
	}
	g := buildTest(t, rects, 9, 7)
	for i := 0; i < 200; i++ {
		b := randBlock(rng, g)
		mx := g.MarginalX(b, nil)
		for j, got := range mx {
			var want float64
			for y := b.Y0; y <= b.Y1; y++ {
				want += g.Density(b.X0+j, y)
			}
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("MarginalX[%d] = %g, want %g for %+v", j, got, want, b)
			}
		}
		my := g.MarginalY(b, nil)
		for j, got := range my {
			var want float64
			for x := b.X0; x <= b.X1; x++ {
				want += g.Density(x, b.Y0+j)
			}
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("MarginalY[%d] = %g, want %g for %+v", j, got, want, b)
			}
		}
	}
}

func TestTotalMassAtLeastN(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var rects []geom.Rect
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64(), y+rng.Float64()))
	}
	g := buildTest(t, rects, 8, 8)
	if g.TotalMass() < float64(len(rects)) {
		t.Fatalf("TotalMass %g < N %d", g.TotalMass(), len(rects))
	}
	if g.MaxDensity() < 1 {
		t.Fatalf("MaxDensity %g < 1", g.MaxDensity())
	}
}

func TestSingleRectGrid(t *testing.T) {
	// Degenerate data: one point rectangle. The MBR has zero area but
	// the grid must still be constructible and consistent.
	g := buildTest(t, []geom.Rect{geom.NewRect(5, 5, 5, 5)}, 4, 4)
	if g.TotalMass() != 1 {
		t.Fatalf("TotalMass = %g, want 1", g.TotalMass())
	}
	if g.Skew(g.FullBlock()) < 0 {
		t.Fatal("negative skew on degenerate grid")
	}
}
