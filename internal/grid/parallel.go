package grid

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// BuildParallel is Build with the density sweep sharded across
// workers goroutines (0 selects GOMAXPROCS). Each worker accumulates
// into a private copy of the density array, which are then summed;
// the result is identical to Build. Worth using from roughly a
// million rectangles up, or for very fine grids.
func BuildParallel(d *dataset.Distribution, nx, ny, workers int) (*Grid, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("grid: cannot build over an empty distribution")
	}
	return BuildOverParallel(d.Rects(), mbr, nx, ny, workers)
}

// BuildOverParallel is BuildOver with a parallel density sweep.
func BuildOverParallel(rects []geom.Rect, bounds geom.Rect, nx, ny, workers int) (*Grid, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("grid: dimensions must be positive, got %dx%d", nx, ny)
	}
	if !bounds.Valid() {
		return nil, fmt.Errorf("grid: invalid bounds %v", bounds)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rects) {
		workers = len(rects)
	}
	g := &Grid{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cellW:  bounds.Width() / float64(nx),
		cellH:  bounds.Height() / float64(ny),
		dens:   make([]float64, nx*ny),
	}
	if workers <= 1 {
		for _, r := range rects {
			g.accumulate(r)
		}
		g.buildPrefixSums()
		return g, nil
	}

	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(rects) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > len(rects) {
			end = len(rects)
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w int, part []geom.Rect) {
			defer wg.Done()
			dens := make([]float64, nx*ny)
			for _, r := range part {
				x0, y0 := g.cellOf(r.MinX, r.MinY)
				x1, y1 := g.cellOf(r.MaxX, r.MaxY)
				for y := y0; y <= y1; y++ {
					row := y * nx
					for x := x0; x <= x1; x++ {
						dens[row+x]++
					}
				}
			}
			partials[w] = dens
		}(w, rects[start:end])
	}
	wg.Wait()
	for _, p := range partials {
		if p == nil {
			continue
		}
		for i, v := range p {
			g.dens[i] += v
		}
	}
	g.buildPrefixSums()
	return g, nil
}

// accumulate adds one rectangle's contribution to the density array.
func (g *Grid) accumulate(r geom.Rect) {
	x0, y0 := g.cellOf(r.MinX, r.MinY)
	x1, y1 := g.cellOf(r.MaxX, r.MaxY)
	for y := y0; y <= y1; y++ {
		row := y * g.nx
		for x := x0; x <= x1; x++ {
			g.dens[row+x]++
		}
	}
}
