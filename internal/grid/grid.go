// Package grid implements the uniform grid of rectangular regions and
// their spatial densities described in Section 4 of the paper. The
// spatial density of a grid cell is the number of input rectangles that
// intersect the cell; the grid is the compact approximation of the input
// that the Min-Skew construction algorithm partitions.
//
// The grid maintains two-dimensional prefix sums of the densities and of
// their squares, so that the sum, mean, and spatial skew (count-weighted
// variance, Definition 4.1) of any axis-aligned block of cells can be
// computed in O(1), and marginal frequency distributions of a block in
// O(side length).
package grid

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Grid is a uniform partitioning of a bounding rectangle into NX x NY
// cells, each holding its spatial density.
type Grid struct {
	bounds geom.Rect
	nx, ny int
	cellW  float64
	cellH  float64

	dens []float64 // row-major: dens[y*nx+x]
	// prefix sums over (nx+1) x (ny+1): ps[y*(nx+1)+x] is the sum of
	// dens over cells [0,x) x [0,y). ps2 is the same for squares.
	ps  []float64
	ps2 []float64
}

// Dims chooses grid dimensions (nx, ny) whose product approximates the
// requested number of regions while keeping the cells as close to
// square as possible for the given bounds. Both dimensions are at
// least 1.
func Dims(regions int, bounds geom.Rect) (nx, ny int) {
	if regions < 1 {
		regions = 1
	}
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 || h <= 0 {
		// Degenerate bounds: fall back to a square grid.
		n := int(math.Round(math.Sqrt(float64(regions))))
		if n < 1 {
			n = 1
		}
		return n, n
	}
	aspect := w / h
	fx := math.Sqrt(float64(regions) * aspect)
	nx = int(math.Round(fx))
	if nx < 1 {
		nx = 1
	}
	ny = int(math.Round(float64(regions) / float64(nx)))
	if ny < 1 {
		ny = 1
	}
	return nx, ny
}

// Build sweeps the distribution once and returns the density grid with
// the given dimensions over the distribution's MBR. It returns an error
// for an empty distribution or non-positive dimensions.
func Build(d *dataset.Distribution, nx, ny int) (*Grid, error) {
	mbr, ok := d.MBR()
	if !ok {
		return nil, fmt.Errorf("grid: cannot build over an empty distribution")
	}
	return BuildOver(d.Rects(), mbr, nx, ny)
}

// BuildOver builds the density grid with the given dimensions over an
// explicit bounding rectangle. Rectangles outside bounds contribute to
// the boundary cells they would be clamped into, which keeps the total
// mass consistent when callers pass a bound smaller than the data MBR.
func BuildOver(rects []geom.Rect, bounds geom.Rect, nx, ny int) (*Grid, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("grid: dimensions must be positive, got %dx%d", nx, ny)
	}
	if !bounds.Valid() {
		return nil, fmt.Errorf("grid: invalid bounds %v", bounds)
	}
	g := &Grid{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cellW:  bounds.Width() / float64(nx),
		cellH:  bounds.Height() / float64(ny),
		dens:   make([]float64, nx*ny),
	}
	for _, r := range rects {
		x0, y0 := g.cellOf(r.MinX, r.MinY)
		x1, y1 := g.cellOf(r.MaxX, r.MaxY)
		for y := y0; y <= y1; y++ {
			row := y * nx
			for x := x0; x <= x1; x++ {
				g.dens[row+x]++
			}
		}
	}
	g.buildPrefixSums()
	return g, nil
}

// cellOf maps a coordinate to the cell indices containing it, clamped to
// the grid.
func (g *Grid) cellOf(x, y float64) (cx, cy int) {
	if g.cellW > 0 {
		cx = int((x - g.bounds.MinX) / g.cellW)
	}
	if g.cellH > 0 {
		cy = int((y - g.bounds.MinY) / g.cellH)
	}
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *Grid) buildPrefixSums() {
	w := g.nx + 1
	g.ps = make([]float64, w*(g.ny+1))
	g.ps2 = make([]float64, w*(g.ny+1))
	for y := 0; y < g.ny; y++ {
		var rowSum, rowSum2 float64
		for x := 0; x < g.nx; x++ {
			v := g.dens[y*g.nx+x]
			rowSum += v
			rowSum2 += v * v
			g.ps[(y+1)*w+x+1] = g.ps[y*w+x+1] + rowSum
			g.ps2[(y+1)*w+x+1] = g.ps2[y*w+x+1] + rowSum2
		}
	}
}

// NX returns the number of columns.
func (g *Grid) NX() int { return g.nx }

// NY returns the number of rows.
func (g *Grid) NY() int { return g.ny }

// Regions returns the total number of grid cells.
func (g *Grid) Regions() int { return g.nx * g.ny }

// Bounds returns the rectangle the grid covers.
func (g *Grid) Bounds() geom.Rect { return g.bounds }

// CellWidth returns the width of one cell.
func (g *Grid) CellWidth() float64 { return g.cellW }

// CellHeight returns the height of one cell.
func (g *Grid) CellHeight() float64 { return g.cellH }

// Density returns the spatial density of cell (x, y).
func (g *Grid) Density(x, y int) float64 { return g.dens[y*g.nx+x] }

// CellRect returns the spatial extent of cell (x, y).
func (g *Grid) CellRect(x, y int) geom.Rect {
	return geom.Rect{
		MinX: g.bounds.MinX + float64(x)*g.cellW,
		MinY: g.bounds.MinY + float64(y)*g.cellH,
		MaxX: g.bounds.MinX + float64(x+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(y+1)*g.cellH,
	}
}

// Block is an inclusive range of grid cells [X0,X1] x [Y0,Y1]. It is the
// unit the Min-Skew BSP splits.
type Block struct {
	X0, Y0, X1, Y1 int
}

// FullBlock returns the block covering the entire grid.
func (g *Grid) FullBlock() Block {
	return Block{X0: 0, Y0: 0, X1: g.nx - 1, Y1: g.ny - 1}
}

// Cells returns the number of cells in the block.
func (b Block) Cells() int { return (b.X1 - b.X0 + 1) * (b.Y1 - b.Y0 + 1) }

// Valid reports whether b is a non-empty block.
func (b Block) Valid() bool { return b.X0 <= b.X1 && b.Y0 <= b.Y1 }

// BlockRect returns the spatial extent of a block.
func (g *Grid) BlockRect(b Block) geom.Rect {
	return geom.Rect{
		MinX: g.bounds.MinX + float64(b.X0)*g.cellW,
		MinY: g.bounds.MinY + float64(b.Y0)*g.cellH,
		MaxX: g.bounds.MinX + float64(b.X1+1)*g.cellW,
		MaxY: g.bounds.MinY + float64(b.Y1+1)*g.cellH,
	}
}

// Sum returns the total density over the block in O(1).
func (g *Grid) Sum(b Block) float64 {
	w := g.nx + 1
	return g.ps[(b.Y1+1)*w+b.X1+1] - g.ps[b.Y0*w+b.X1+1] -
		g.ps[(b.Y1+1)*w+b.X0] + g.ps[b.Y0*w+b.X0]
}

// SumSq returns the total squared density over the block in O(1).
func (g *Grid) SumSq(b Block) float64 {
	w := g.nx + 1
	return g.ps2[(b.Y1+1)*w+b.X1+1] - g.ps2[b.Y0*w+b.X1+1] -
		g.ps2[(b.Y1+1)*w+b.X0] + g.ps2[b.Y0*w+b.X0]
}

// Skew returns the spatial skew of a block per Definition 4.1: the
// number of regions in the block times the statistical variance of
// their densities, i.e. the sum of squared deviations from the block
// mean. It is never negative.
func (g *Grid) Skew(b Block) float64 {
	if b.Cells() == 0 {
		return 0
	}
	n := float64(b.Cells())
	s := g.Sum(b)
	sse := g.SumSq(b) - s*s/n
	if sse < 0 {
		// Floating point cancellation can produce a tiny negative.
		return 0
	}
	return sse
}

// MarginalX fills dst with the column sums of the block's densities
// (the marginal frequency distribution along the x dimension) and
// returns it. dst is grown if needed; pass nil to allocate.
func (g *Grid) MarginalX(b Block, dst []float64) []float64 {
	n := b.X1 - b.X0 + 1
	dst = resize(dst, n)
	w := g.nx + 1
	top, bot := (b.Y1+1)*w, b.Y0*w
	for i := 0; i < n; i++ {
		x := b.X0 + i
		dst[i] = g.ps[top+x+1] - g.ps[bot+x+1] - g.ps[top+x] + g.ps[bot+x]
	}
	return dst
}

// MarginalY fills dst with the row sums of the block's densities (the
// marginal frequency distribution along the y dimension) and returns
// it.
func (g *Grid) MarginalY(b Block, dst []float64) []float64 {
	n := b.Y1 - b.Y0 + 1
	dst = resize(dst, n)
	w := g.nx + 1
	for i := 0; i < n; i++ {
		y := b.Y0 + i
		dst[i] = g.ps[(y+1)*w+b.X1+1] - g.ps[y*w+b.X1+1] -
			g.ps[(y+1)*w+b.X0] + g.ps[y*w+b.X0]
	}
	return dst
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// TotalMass returns the sum of all cell densities. Because a rectangle
// increments every cell it touches, the total mass is at least the
// number of input rectangles.
func (g *Grid) TotalMass() float64 { return g.Sum(g.FullBlock()) }

// MaxDensity returns the largest cell density in the grid.
func (g *Grid) MaxDensity() float64 {
	max := 0.0
	for _, v := range g.dens {
		if v > max {
			max = v
		}
	}
	return max
}
