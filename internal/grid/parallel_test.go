package grid

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestBuildParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var rects []geom.Rect
	for i := 0; i < 20000; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*30, y+rng.Float64()*30))
	}
	d := dataset.New(rects)
	seq, err := Build(d, 37, 29)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 7, 16} {
		par, err := BuildParallel(d, 37, 29, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for y := 0; y < seq.NY(); y++ {
			for x := 0; x < seq.NX(); x++ {
				if seq.Density(x, y) != par.Density(x, y) {
					t.Fatalf("workers=%d: density(%d,%d) = %g, want %g",
						workers, x, y, par.Density(x, y), seq.Density(x, y))
				}
			}
		}
		if seq.TotalMass() != par.TotalMass() {
			t.Fatalf("workers=%d: mass mismatch", workers)
		}
		// Prefix sums must agree too.
		b := Block{X0: 3, Y0: 2, X1: 30, Y1: 25}
		if seq.Sum(b) != par.Sum(b) || seq.Skew(b) != par.Skew(b) {
			t.Fatalf("workers=%d: block aggregates differ", workers)
		}
	}
}

func TestBuildParallelErrors(t *testing.T) {
	if _, err := BuildParallel(dataset.New(nil), 4, 4, 2); err == nil {
		t.Fatal("empty distribution should fail")
	}
	if _, err := BuildOverParallel(nil, geom.NewRect(0, 0, 1, 1), 0, 1, 2); err == nil {
		t.Fatal("bad dims should fail")
	}
	if _, err := BuildOverParallel(nil, geom.Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}, 2, 2, 2); err == nil {
		t.Fatal("bad bounds should fail")
	}
}

func TestBuildParallelFewRects(t *testing.T) {
	// More workers than rectangles.
	d := dataset.New([]geom.Rect{geom.NewRect(0, 0, 1, 1), geom.NewRect(5, 5, 6, 6)})
	g, err := BuildParallel(d, 8, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalMass() < 2 {
		t.Fatalf("mass = %g", g.TotalMass())
	}
}

func BenchmarkBuildSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var rects []geom.Rect
	for i := 0; i < 200000; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		rects = append(rects, geom.NewRect(x, y, x+20, y+20))
	}
	d := dataset.New(rects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, 100, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var rects []geom.Rect
	for i := 0; i < 200000; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		rects = append(rects, geom.NewRect(x, y, x+20, y+20))
	}
	d := dataset.New(rects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildParallel(d, 100, 100, 0); err != nil {
			b.Fatal(err)
		}
	}
}
