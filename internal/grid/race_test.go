package grid

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TestBuildParallelRaceStress hammers BuildOverParallel from many
// goroutines with varying worker counts over shared input, checking
// every result against the sequential build. Run under -race this
// exercises the worker sharding and the partial-sum merge.
func TestBuildParallelRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rects := make([]geom.Rect, 0, 8000)
	for i := 0; i < 8000; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*15, y+rng.Float64()*15))
	}
	d := dataset.New(rects)
	mbr, ok := d.MBR()
	if !ok {
		t.Fatal("empty dataset MBR")
	}
	want, err := BuildOver(d.Rects(), mbr, 48, 48)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				g, err := BuildOverParallel(d.Rects(), mbr, 48, 48, workers)
				if err != nil {
					errs <- err
					return
				}
				for c := range g.dens {
					// Densities are rectangle counts, so the parallel
					// merge must agree with the sequential sweep exactly.
					if g.dens[c] != want.dens[c] { //spatialvet:ignore floatcmp integer-valued counts
						t.Errorf("workers=%d cell %d: got %g, want %g", workers, c, g.dens[c], want.dens[c])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGridConcurrentEstimates checks that a built grid is safe for
// concurrent read-only estimation (the query-time contract).
func TestGridConcurrentEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	rects := make([]geom.Rect, 0, 3000)
	for i := 0; i < 3000; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		rects = append(rects, geom.NewRect(x, y, x+1, y+1))
	}
	g := buildTest(t, rects, 32, 32)

	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			full := g.FullBlock()
			for i := 0; i < 500; i++ {
				x0, y0 := local.Intn(g.NX()), local.Intn(g.NY())
				b := Block{X0: x0, Y0: y0, X1: x0 + local.Intn(g.NX()-x0), Y1: y0 + local.Intn(g.NY()-y0)}
				if s := g.Sum(b); s < 0 || s > g.Sum(full) {
					t.Errorf("block sum %g out of range for %+v", s, b)
					return
				}
				if sk := g.Skew(b); sk < -1e-9 {
					t.Errorf("negative skew %g for %+v", sk, b)
					return
				}
				g.MarginalX(b, nil)
				g.MarginalY(b, nil)
			}
		}(int64(p))
	}
	wg.Wait()
}
