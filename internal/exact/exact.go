// Package exact computes true query result sizes — the number of input
// rectangles with a non-empty intersection with a query rectangle
// (Section 2 of the paper). These exact answers are the ground truth
// against which the estimation techniques are scored.
//
// Two oracles are provided: a brute-force scan, and a grid-bucketed
// oracle that hashes each rectangle into the uniform grid cells it
// touches so that a query only inspects candidates from the cells it
// overlaps. The bucketed oracle makes 10,000-query evaluation over
// hundreds of thousands of rectangles practical.
package exact

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Oracle answers exact selectivity queries over a fixed distribution.
type Oracle interface {
	// Count returns the number of input rectangles intersecting q.
	Count(q geom.Rect) int
	// N returns the input size, for converting counts to selectivities.
	N() int
}

// BruteForce scans the whole input for every query. It is the reference
// implementation used to validate the faster oracles in tests.
type BruteForce struct {
	rects []geom.Rect
}

// NewBruteForce returns a brute-force oracle over d.
func NewBruteForce(d *dataset.Distribution) *BruteForce {
	return &BruteForce{rects: d.Rects()}
}

// Count implements Oracle.
func (b *BruteForce) Count(q geom.Rect) int {
	c := 0
	for _, r := range b.rects {
		if r.Intersects(q) {
			c++
		}
	}
	return c
}

// N implements Oracle.
func (b *BruteForce) N() int { return len(b.rects) }

// GridOracle is a uniform-grid spatial hash. Each rectangle is stored
// in every cell it intersects; a query gathers candidates from its
// cells and deduplicates rectangles spanning multiple cells by testing
// a canonical home cell.
type GridOracle struct {
	rects  []geom.Rect
	bounds geom.Rect
	nx, ny int
	cellW  float64
	cellH  float64
	cells  [][]int32
}

// NewGridOracle builds a grid oracle over d with roughly targetCells
// cells (clamped to at least 1). A good default is one cell per few
// input rectangles; Auto chooses that automatically.
func NewGridOracle(d *dataset.Distribution, targetCells int) *GridOracle {
	mbr, ok := d.MBR()
	if !ok {
		return &GridOracle{nx: 1, ny: 1, cells: make([][]int32, 1), bounds: geom.Rect{}}
	}
	if targetCells < 1 {
		targetCells = 1
	}
	n := int(math.Round(math.Sqrt(float64(targetCells))))
	if n < 1 {
		n = 1
	}
	g := &GridOracle{
		rects:  d.Rects(),
		bounds: mbr,
		nx:     n,
		ny:     n,
		cellW:  mbr.Width() / float64(n),
		cellH:  mbr.Height() / float64(n),
		cells:  make([][]int32, n*n),
	}
	for i, r := range g.rects {
		x0, y0 := g.cellOf(r.MinX, r.MinY)
		x1, y1 := g.cellOf(r.MaxX, r.MaxY)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				g.cells[y*g.nx+x] = append(g.cells[y*g.nx+x], int32(i))
			}
		}
	}
	return g
}

// NewAuto builds a grid oracle with a cell count scaled to the input
// size (about one cell per 4 rectangles, capped at 1024x1024).
func NewAuto(d *dataset.Distribution) *GridOracle {
	cells := d.N() / 4
	if cells > 1024*1024 {
		cells = 1024 * 1024
	}
	if cells < 16 {
		cells = 16
	}
	return NewGridOracle(d, cells)
}

func (g *GridOracle) cellOf(x, y float64) (cx, cy int) {
	if g.cellW > 0 {
		cx = int((x - g.bounds.MinX) / g.cellW)
	}
	if g.cellH > 0 {
		cy = int((y - g.bounds.MinY) / g.cellH)
	}
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// Count implements Oracle. A rectangle intersecting the query is
// counted exactly once: only the cell containing the top-left corner of
// the (rectangle ∩ query extent within the grid) region reports it.
func (g *GridOracle) Count(q geom.Rect) int {
	if len(g.rects) == 0 {
		return 0
	}
	if !q.Intersects(g.bounds) {
		return 0
	}
	qx0, qy0 := g.cellOf(q.MinX, q.MinY)
	qx1, qy1 := g.cellOf(q.MaxX, q.MaxY)
	count := 0
	for y := qy0; y <= qy1; y++ {
		for x := qx0; x <= qx1; x++ {
			for _, idx := range g.cells[y*g.nx+x] {
				r := g.rects[idx]
				if !r.Intersects(q) {
					continue
				}
				// Deduplicate: count r only in the first (lowest x, y)
				// query cell that r occupies, so rectangles spanning
				// several query cells are counted once.
				rx0, ry0 := g.cellOf(r.MinX, r.MinY)
				homeX, homeY := rx0, ry0
				if homeX < qx0 {
					homeX = qx0
				}
				if homeY < qy0 {
					homeY = qy0
				}
				if homeX == x && homeY == y {
					count++
				}
			}
		}
	}
	return count
}

// N implements Oracle.
func (g *GridOracle) N() int { return len(g.rects) }
