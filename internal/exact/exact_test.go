package exact

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func randDist(rng *rand.Rand, n int, space, maxSide float64) *dataset.Distribution {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rng.Float64()*space, rng.Float64()*space
		rects[i] = geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide)
	}
	return dataset.New(rects)
}

func TestBruteForceBasics(t *testing.T) {
	d := dataset.New([]geom.Rect{
		geom.NewRect(0, 0, 1, 1),
		geom.NewRect(2, 2, 3, 3),
		geom.NewRect(0.5, 0.5, 2.5, 2.5),
	})
	o := NewBruteForce(d)
	if o.N() != 3 {
		t.Fatalf("N = %d", o.N())
	}
	if got := o.Count(geom.NewRect(0, 0, 0.6, 0.6)); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := o.Count(geom.NewRect(10, 10, 11, 11)); got != 0 {
		t.Fatalf("miss Count = %d, want 0", got)
	}
	// Point query hitting the overlap of rects 1 and 2.
	if got := o.Count(geom.PointRect(geom.Point{X: 2.2, Y: 2.2})); got != 2 {
		t.Fatalf("point Count = %d, want 2", got)
	}
}

func TestGridOracleEmpty(t *testing.T) {
	o := NewGridOracle(dataset.New(nil), 100)
	if o.N() != 0 {
		t.Fatalf("N = %d", o.N())
	}
	if got := o.Count(geom.NewRect(0, 0, 1, 1)); got != 0 {
		t.Fatalf("Count on empty = %d", got)
	}
}

func TestGridOracleMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := randDist(rng, 3000, 1000, 40)
	bf := NewBruteForce(d)
	for _, cells := range []int{1, 16, 256, 4096} {
		o := NewGridOracle(d, cells)
		for i := 0; i < 300; i++ {
			x, y := rng.Float64()*1100-50, rng.Float64()*1100-50
			q := geom.NewRect(x, y, x+rng.Float64()*400, y+rng.Float64()*400)
			want := bf.Count(q)
			if got := o.Count(q); got != want {
				t.Fatalf("cells=%d query %v: Count = %d, want %d", cells, q, got, want)
			}
		}
	}
}

func TestGridOraclePointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	d := randDist(rng, 2000, 500, 30)
	bf := NewBruteForce(d)
	o := NewAuto(d)
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		q := geom.PointRect(p)
		if got, want := o.Count(q), bf.Count(q); got != want {
			t.Fatalf("point %v: Count = %d, want %d", p, got, want)
		}
	}
}

func TestGridOracleQueryOutsideMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	d := randDist(rng, 100, 100, 10)
	o := NewAuto(d)
	if got := o.Count(geom.NewRect(-500, -500, -400, -400)); got != 0 {
		t.Fatalf("far query Count = %d", got)
	}
	// Query covering everything counts everything.
	if got := o.Count(geom.NewRect(-1000, -1000, 1000, 1000)); got != d.N() {
		t.Fatalf("covering query Count = %d, want %d", got, d.N())
	}
}

func TestGridOracleDegenerateData(t *testing.T) {
	// All rectangles identical points: zero-area MBR.
	rects := make([]geom.Rect, 50)
	for i := range rects {
		rects[i] = geom.NewRect(7, 7, 7, 7)
	}
	d := dataset.New(rects)
	o := NewAuto(d)
	if got := o.Count(geom.NewRect(0, 0, 10, 10)); got != 50 {
		t.Fatalf("degenerate Count = %d, want 50", got)
	}
	if got := o.Count(geom.NewRect(8, 8, 10, 10)); got != 0 {
		t.Fatalf("degenerate miss = %d, want 0", got)
	}
}

func BenchmarkGridOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	d := randDist(rng, 100000, 10000, 50)
	o := NewAuto(d)
	queries := make([]geom.Rect, 512)
	for i := range queries {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		queries[i] = geom.NewRect(x, y, x+500, y+500)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Count(queries[i%len(queries)])
	}
}
