package svgplot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestRenderBasics(t *testing.T) {
	d := dataset.New([]geom.Rect{
		geom.NewRect(0, 0, 10, 10),
		geom.NewRect(50, 50, 60, 70),
	})
	world, _ := d.MBR()
	var buf bytes.Buffer
	p := New(world, 600).Title("demo").Data(d).Boxes([]geom.Rect{world}, "")
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<title>demo</title>", "fill-opacity", "stroke=\"#d62728\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
	// 2 data rects + 1 box + background = 4 <rect.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Fatalf("rect count = %d, want 4", got)
	}
}

func TestAspectRatioAndDegenerates(t *testing.T) {
	// Wide world: height scales down.
	p := New(geom.NewRect(0, 0, 200, 100), 600)
	if p.height != 300 {
		t.Fatalf("height = %d, want 300", p.height)
	}
	// Degenerate world must not panic or produce zero sizes.
	p = New(geom.NewRect(5, 5, 5, 5), 0)
	var buf bytes.Buffer
	if err := p.Boxes([]geom.Rect{geom.NewRect(5, 5, 5, 5)}, "black").Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<rect") {
		t.Fatal("degenerate box not rendered")
	}
}

func TestTransformFlipsY(t *testing.T) {
	p := New(geom.NewRect(0, 0, 100, 100), 100)
	// A rect at the top of the world maps to the top of the image
	// (small y).
	_, yTop, _, _ := p.transform(geom.NewRect(0, 90, 10, 100))
	_, yBot, _, _ := p.transform(geom.NewRect(0, 0, 10, 10))
	if yTop >= yBot {
		t.Fatalf("y not flipped: top=%g bottom=%g", yTop, yBot)
	}
}
