// Package svgplot renders datasets and partitionings as standalone SVG
// documents, reproducing the paper's illustrations: the Charminar
// dataset (Figure 1) and the Equi-Area, Equi-Count, R-Tree and
// Min-Skew partitionings (Figures 2-4 and 7).
package svgplot

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Plot accumulates layers and writes an SVG document.
type Plot struct {
	world  geom.Rect
	width  int
	height int
	layers []layer
	title  string
}

type layer struct {
	rects   []geom.Rect
	fill    string
	stroke  string
	opacity float64
	strokeW float64
}

// New creates a plot of the given world rectangle rendered at the
// given pixel width; the height follows from the aspect ratio.
func New(world geom.Rect, widthPx int) *Plot {
	if widthPx < 1 {
		widthPx = 640
	}
	h := widthPx
	if world.Width() > 0 && world.Height() > 0 {
		h = int(float64(widthPx) * world.Height() / world.Width())
	}
	if h < 1 {
		h = 1
	}
	return &Plot{world: world, width: widthPx, height: h}
}

// Title sets the document title comment.
func (p *Plot) Title(s string) *Plot {
	p.title = s
	return p
}

// Data adds the distribution's rectangles as a translucent filled
// layer.
func (p *Plot) Data(d *dataset.Distribution) *Plot {
	p.layers = append(p.layers, layer{
		rects: d.Rects(), fill: "#1f77b4", stroke: "none", opacity: 0.25, strokeW: 0,
	})
	return p
}

// Boxes adds outline rectangles (bucket boundaries).
func (p *Plot) Boxes(rects []geom.Rect, color string) *Plot {
	if color == "" {
		color = "#d62728"
	}
	p.layers = append(p.layers, layer{
		rects: rects, fill: "none", stroke: color, opacity: 1, strokeW: 1,
	})
	return p
}

// Render writes the SVG document.
func (p *Plot) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		p.width, p.height, p.width, p.height)
	if p.title != "" {
		fmt.Fprintf(bw, "<!-- %s -->\n<title>%s</title>\n", p.title, p.title)
	}
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", p.width, p.height)
	for _, l := range p.layers {
		fmt.Fprintf(bw, `<g fill="%s" stroke="%s" fill-opacity="%g" stroke-width="%g">`+"\n",
			l.fill, l.stroke, l.opacity, l.strokeW)
		for _, r := range l.rects {
			x, y, wd, ht := p.transform(r)
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"/>`+"\n", x, y, wd, ht)
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// transform maps world coordinates to pixel coordinates (SVG y grows
// downward, so the world is flipped vertically).
func (p *Plot) transform(r geom.Rect) (x, y, w, h float64) {
	sx := float64(p.width)
	sy := float64(p.height)
	if p.world.Width() > 0 {
		sx = float64(p.width) / p.world.Width()
	}
	if p.world.Height() > 0 {
		sy = float64(p.height) / p.world.Height()
	}
	x = (r.MinX - p.world.MinX) * sx
	w = r.Width() * sx
	h = r.Height() * sy
	y = float64(p.height) - (r.MaxY-p.world.MinY)*sy
	// Hairline minimum so degenerate rects remain visible.
	if w < 0.5 {
		w = 0.5
	}
	if h < 0.5 {
		h = 0.5
	}
	return x, y, w, h
}
